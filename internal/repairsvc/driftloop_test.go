package repairsvc

// Long-horizon drift-loop scenario tests: inject distribution drift into
// served traffic and prove the whole closed loop through public surfaces
// only — the Go API, /metrics scrapes, /v1/refs and /v1/metrics JSON. The
// core invariant rides along the whole way: every 2xx response from the
// watched server is byte-identical to a loop-disabled server answering the
// same requests, because repairs pin explicit fingerprints and the loop
// never touches the serving engine.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/driftwatch"
	"otfair/internal/monitor"
	"otfair/internal/obs"
	"otfair/internal/planstore"
	"otfair/internal/rng"
	"otfair/internal/simulate"
)

// driftGroup and driftShift define the injected drift: the damaging,
// group-conditional kind (the s-conditional relationship itself changes).
var (
	driftGroup = dataset.Group{U: 0, S: 1}
	driftShift = []float64{2.0, 2.0}
)

// shiftedTable draws n paper-scenario records with frac of the drift shift
// applied to the drift group (frac 0 = stationary, 1 = fully drifted).
func shiftedTable(t testing.TB, seed uint64, n int, frac float64) *dataset.Table {
	t.Helper()
	sampler, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	tbl, err := dataset.NewTable(simulate.Paper().Dim, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := sampler.Draw(r)
		if rec.U == driftGroup.U && rec.S == driftGroup.S {
			for k := range rec.X {
				rec.X[k] += frac * driftShift[k]
			}
		}
		if err := tbl.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// scrapeProm fetches /metrics and indexes the exposition by name{labels}.
func scrapeProm(t testing.TB, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	byKey := make(map[string]float64, len(samples))
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	return byKey
}

func TestDriftScenario(t *testing.T) {
	const (
		nResearch   = 400
		nStationary = 150
		nDrifted    = 400
	)
	sampler, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	research, err := sampler.Table(rng.New(1), nResearch)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Design(research, core.Options{NQ: 30})
	if err != nil {
		t.Fatal(err)
	}

	// The fresh research source the loop refits from: a small sample of the
	// population traffic has drifted to.
	fresh := shiftedTable(t, 2, nResearch, 1)
	srcPath := filepath.Join(t.TempDir(), "fresh-research.csv")
	f, err := os.Create(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	mkServer := func(watch bool) (*httptest.Server, string) {
		store, serr := planstore.Open(t.TempDir(), planstore.Options{})
		if serr != nil {
			t.Fatal(serr)
		}
		id, _, perr := store.Put(plan)
		if perr != nil {
			t.Fatal(perr)
		}
		opts := ServerOptions{
			MetricWindow: 4096,
			Monitor:      monitor.Options{Window: 128, CheckEvery: 32},
		}
		if watch {
			opts.DriftWatch = &driftwatch.Config{
				AlarmAfter:    2,
				QuietAfter:    64,
				ReservoirSize: 256,
				MaxERise:      0.05,
				MaxDamageRise: 10,
				Seed:          1,
			}
			opts.RecalibrateFrom = srcPath
		}
		handler, herr := NewServer(store, opts)
		if herr != nil {
			t.Fatal(herr)
		}
		srv := httptest.NewServer(handler)
		t.Cleanup(srv.Close)
		return srv, id
	}

	watched, id := mkServer(true)
	control, cid := mkServer(false)
	if cid != id {
		t.Fatalf("plan fingerprints diverge: %s vs %s", id, cid)
	}

	// repairBoth sends one identical repair to both servers and asserts the
	// watched server's bytes equal the loop-disabled server's.
	repairBoth := func(seq int, tbl *dataset.Table) {
		t.Helper()
		path := fmt.Sprintf("/v1/repair?plan=%s&seed=%d&workers=1", id, seq)
		read := func(base string) []byte {
			resp := postCSV(t, base+path, tbl)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("request %d: %s: %s", seq, resp.Status, body)
			}
			b, rerr := io.ReadAll(resp.Body)
			if rerr != nil {
				t.Fatal(rerr)
			}
			return b
		}
		if a, b := read(watched.URL), read(control.URL); !bytes.Equal(a, b) {
			t.Fatalf("request %d: watched server diverged from loop-disabled server (%d vs %d bytes)", seq, len(a), len(b))
		}
	}

	stateKey := `otfair_drift_state{artefact="` + id + `"}`
	ksKey := `otfair_drift_score{artefact="` + id + `",stat="ks"}`
	swapKey := `otfair_recalibrations_total{outcome="swapped"}`

	// Phase 1: stationary traffic. The watcher must stay quiet.
	for i := 0; i < 2; i++ {
		repairBoth(i, shiftedTable(t, uint64(100+i), nStationary, 0))
	}
	if st := scrapeProm(t, watched.URL)[stateKey]; st != float64(driftwatch.StateOK) {
		t.Fatalf("stationary traffic moved the state machine to %v", st)
	}

	// Phase 2: drifted traffic until the loop lands a swap. Requests keep
	// flowing while the loop refits and canaries, and each one is checked
	// byte-identical against the loop-disabled server.
	deadline := time.Now().Add(60 * time.Second)
	seq := 10
	var m map[string]float64
	for {
		repairBoth(seq, shiftedTable(t, uint64(200+seq), nDrifted, 1))
		seq++
		m = scrapeProm(t, watched.URL)
		if m[swapKey] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no swap after %d requests: state=%v ks=%v rolled_back=%v refit_failed=%v reasons: empty=%v nan=%v e=%v damage=%v",
				seq, m[stateKey], m[ksKey],
				m[`otfair_recalibrations_total{outcome="rolled_back"}`],
				m[`otfair_recalibrations_total{outcome="refit_failed"}`],
				m[`otfair_canary_failures_total{reason="empty_reservoir"}`],
				m[`otfair_canary_failures_total{reason="nan_metric"}`],
				m[`otfair_canary_failures_total{reason="e_regressed"}`],
				m[`otfair_canary_failures_total{reason="damage_regressed"}`])
		}
	}
	if m[swapKey] != 1 {
		t.Errorf("recalibrations swapped = %v, want exactly 1", m[swapKey])
	}
	for _, to := range []string{"warning", "alarmed", "recalibrating", "canarying", "swapped"} {
		key := `otfair_drift_transitions_total{artefact="` + id + `",to="` + to + `"}`
		if m[key] < 1 {
			t.Errorf("transition to %s never exported (%v)", to, m[key])
		}
	}

	// The ref namespace records the swap: lineage → a different, fetchable
	// plan fingerprint.
	resp, err := http.Get(watched.URL + "/v1/refs")
	if err != nil {
		t.Fatal(err)
	}
	var refsOut struct {
		Refs map[string]string `json:"refs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&refsOut); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	newID, ok := refsOut.Refs[id]
	if !ok || newID == id {
		t.Fatalf("refs after swap = %v, want lineage %s repointed", refsOut.Refs, id)
	}
	planResp, err := http.Get(watched.URL + "/v1/plans/" + newID)
	if err != nil {
		t.Fatal(err)
	}
	planResp.Body.Close()
	if planResp.StatusCode != http.StatusOK {
		t.Fatalf("swapped-in plan %s not servable: %s", newID, planResp.Status)
	}

	// Phase 3: score recovery. The monitor was rebound to the refitted
	// plan, so continued drifted traffic now matches the reference and the
	// exported drift score drops below the alarm bound.
	for i := 0; i < 4; i++ {
		repairBoth(seq, shiftedTable(t, uint64(300+seq), nDrifted, 1))
		seq++
	}
	m = scrapeProm(t, watched.URL)
	if ks := m[ksKey]; !(ks < 1) {
		t.Errorf("drift score did not recover after the swap: ks=%v", ks)
	}
	if st := m[stateKey]; st != float64(driftwatch.StateOK) && st != float64(driftwatch.StateSwapped) {
		t.Errorf("post-swap state = %v, want ok or swapped", st)
	}

	// The JSON dashboard view agrees with the exposition.
	jresp, err := http.Get(watched.URL + "/v1/metrics?plan=" + id)
	if err != nil {
		t.Fatal(err)
	}
	var jm struct {
		Driftwatch driftwatch.Snapshot `json:"driftwatch"`
	}
	if err := json.NewDecoder(jresp.Body).Decode(&jm); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if jm.Driftwatch.LastOutcome != driftwatch.OutcomeSwapped {
		t.Errorf("JSON driftwatch last_outcome = %q, want swapped", jm.Driftwatch.LastOutcome)
	}
	if jm.Driftwatch.Artefact != id {
		t.Errorf("JSON driftwatch artefact = %q, want %q", jm.Driftwatch.Artefact, id)
	}
}

// TestDriftLoopWithoutSourceRollsBack: an alarmed plan with no configured
// recalibration source must finish refit_failed and keep serving the
// incumbent — the alarm is exported, nothing breaks.
func TestDriftLoopWithoutSourceRollsBack(t *testing.T) {
	research, err := func() (*dataset.Table, error) {
		sampler, serr := simulate.NewSampler(simulate.Paper())
		if serr != nil {
			return nil, serr
		}
		return sampler.Table(rng.New(3), 400)
	}()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Design(research, core.Options{NQ: 30})
	if err != nil {
		t.Fatal(err)
	}
	store, err := planstore.Open(t.TempDir(), planstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := store.Put(plan)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := NewServer(store, ServerOptions{
		Monitor:    monitor.Options{Window: 128, CheckEvery: 32},
		DriftWatch: &driftwatch.Config{AlarmAfter: 2, QuietAfter: 64},
		// RecalibrateFrom deliberately unset.
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	failKey := `otfair_recalibrations_total{outcome="refit_failed"}`
	deadline := time.Now().Add(30 * time.Second)
	var m map[string]float64
	for seq := 0; ; seq++ {
		resp := postCSV(t, fmt.Sprintf("%s/v1/repair?plan=%s&seed=%d&workers=1", srv.URL, id, seq),
			shiftedTable(t, uint64(400+seq), 400, 1))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("repair during alarm: %s", resp.Status)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		m = scrapeProm(t, srv.URL)
		if m[failKey] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refit_failed never exported; state=%v", m[`otfair_drift_state{artefact="`+id+`"}`])
		}
	}
	if st := m[`otfair_drift_state{artefact="`+id+`"}`]; st != float64(driftwatch.StateRolledBack) {
		t.Errorf("state after failed refit = %v, want rolled_back", st)
	}
	// No swap happened: the ref namespace is untouched.
	resp, err := http.Get(srv.URL + "/v1/refs")
	if err != nil {
		t.Fatal(err)
	}
	var refsOut struct {
		Refs map[string]string `json:"refs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&refsOut); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(refsOut.Refs) != 0 {
		t.Errorf("refs after failed refit = %v, want none", refsOut.Refs)
	}
}

// TestDriftSeriesCardinalityBound: drift series carry artefact label values
// only from the store-resolved bound-plan set. Request-supplied garbage —
// well-formed fingerprints that do not exist, malformed ids — must never
// mint a series.
func TestDriftSeriesCardinalityBound(t *testing.T) {
	plan, _, archive := testData(t, 31, 300, 400, 30)
	store, err := planstore.Open(t.TempDir(), planstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := store.Put(plan)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := NewServer(store, ServerOptions{DriftWatch: &driftwatch.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	// Bind the real plan, then attack with ids that must not bind.
	resp := postCSV(t, srv.URL+"/v1/repair?plan="+id+"&workers=1", archive)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair: %s", resp.Status)
	}
	for _, bad := range []string{
		"ffffffffffffffffffffffffffffffff", // well-formed, absent
		"not-a-fingerprint",                // malformed
		"<script>alert(1)</script>",       // hostile
	} {
		r := postCSV(t, srv.URL+"/v1/repair?plan="+bad, archive)
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			t.Fatalf("garbage plan id %q served", bad)
		}
	}

	got, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer got.Body.Close()
	samples, err := obs.ParseText(got.Body)
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	artefacts := map[string]bool{}
	for _, s := range samples {
		if s.Name == "otfair_drift_state" || s.Name == "otfair_drift_score" ||
			s.Name == "otfair_drift_transitions_total" {
			artefacts[s.Labels] = true
			if !strings.Contains(s.Labels, `artefact="`+id+`"`) {
				t.Errorf("drift series with artefact outside the bound set: %s{%s}", s.Name, s.Labels)
			}
		}
	}
	if len(artefacts) == 0 {
		t.Fatal("no drift series exported for the bound plan")
	}
}

// TestScrapeFreshnessAndBlindSeries: the artefact-age gauges and aggregated
// blind series are present and honest on a server that has stored plans but
// imputed nothing yet.
func TestScrapeFreshnessAndBlindSeries(t *testing.T) {
	plan, _, _ := testData(t, 32, 200, 50, 20)
	store, err := planstore.Open(t.TempDir(), planstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Put(plan); err != nil {
		t.Fatal(err)
	}
	handler, err := NewServer(store, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	m := scrapeProm(t, srv.URL)
	age, ok := m[`otfair_artefact_age_seconds{kind="plan"}`]
	if !ok {
		t.Fatal("plan artefact age series missing")
	}
	if math.IsNaN(age) || age < 0 || age > 300 {
		t.Errorf("plan artefact age = %v, want a small positive age", age)
	}
	calAge, ok := m[`otfair_artefact_age_seconds{kind="calibration"}`]
	if !ok {
		t.Fatal("calibration artefact age series missing")
	}
	if !math.IsNaN(calAge) {
		t.Errorf("empty calibration namespace age = %v, want NaN", calAge)
	}
	// Nothing imputed yet: the confidence gauges are honest NaNs, the
	// counters honest zeros.
	if v, ok := m["otfair_blind_mean_confidence"]; !ok || !math.IsNaN(v) {
		t.Errorf("blind mean confidence = %v (present %v), want NaN", v, ok)
	}
	if v := m["otfair_blind_imputed_total"]; v != 0 {
		t.Errorf("blind imputed = %v, want 0", v)
	}
	if _, ok := m[`otfair_blind_ambiguity_total{bin="0"}`]; !ok {
		t.Error("ambiguity histogram series missing")
	}
}
