package repairsvc

import (
	"errors"
	"testing"

	"otfair/internal/dataset"
	"otfair/internal/rng"
	"otfair/internal/shardrun"
)

// TestEngineRejectsNegativeOptions: option validation now lives in
// shardrun.Options.withDefaults — nonsensical values return a typed error
// instead of being clamped silently (and the two serving engines can no
// longer drift in how they treat them).
func TestEngineRejectsNegativeOptions(t *testing.T) {
	plan, _, _ := testData(t, 40, 250, 10, 20)
	for _, opts := range []Options{{Workers: -1}, {ChunkSize: -1}, {Workers: -3, ChunkSize: -4096}} {
		_, err := NewEngine(plan, opts)
		var oe *shardrun.OptionError
		if !errors.As(err, &oe) {
			t.Errorf("NewEngine(%+v) = %v, want *shardrun.OptionError", opts, err)
		}
	}
	// Zero still means "defaults".
	if _, err := NewEngine(plan, Options{}); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}

// TestEngineAbsurdFanOutStaysCheap: a request-supplied worker count far
// beyond the data (the ?workers= path) must cost memory and goroutines
// proportional to the records, not the number — per-shard state is sized
// by shardrun.Slots. The repair itself must still complete and stay
// deterministic.
func TestEngineAbsurdFanOutStaysCheap(t *testing.T) {
	plan, _, archive := testData(t, 41, 250, 64, 20)
	engine, err := NewEngine(plan, Options{Workers: 1 << 30, ChunkSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *dataset.Table {
		out, _, err := engine.RepairTable(rng.New(2), archive)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := dataset.NewTable(archive.Dim(), archive.Names())
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := engine.RepairStream(rng.New(2), dataset.NewSliceStream(archive), streamed.Append); err != nil {
			t.Fatal(err)
		}
		return out
	}
	tablesEqual(t, run(), run())
}
