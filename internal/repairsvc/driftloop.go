package repairsvc

// The recalibration loop: what happens after the drift watcher alarms.
// driftCheck runs once per repair request (off the per-record path) and —
// when DriftCheckEvery is set — on every tick of the drift timer, so an
// idle-but-drifted artefact still recalibrates. It feeds the watcher the
// monitor's KS/PSI ratios and the blind engines' posterior-confidence
// drift; when the watcher reaches alarmed, the run is claimed and handed
// to the shared refit pool (bounded workers + queue across all lineages),
// which executes
//
//	fetch (researchfeed: retry/backoff + circuit breaker + fingerprint;
//	       unchanged content since the last judged run → refit_skipped_stale)
//	  → validate (min records, dimension vs the incumbent plan)
//	  → refit (core.Design on the fetched research set, same options)
//	  → canary (shadow-repair the reservoir split into judge and held-out
//	            halves under old and new; the verdict must pass on both)
//	  → swap  (planstore ref CAS lineage → candidate; monitor rebind;
//	           blind calibration refit rides along)
//	  or rollback (incumbent stays; quiet period guards the alarm loop).
//
// Nothing here touches the serve path: repairs pin explicit fingerprints,
// ps.engine is never replaced, and the only serving-state mutation is the
// monitor rebind under ps.mu — the same lock every tap already takes. The
// responses of a server running this loop are byte-identical to one with
// the loop disabled.

import (
	"context"
	"errors"
	"log/slog"
	"maps"
	"math"
	"slices"

	"otfair/internal/blind"
	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/driftwatch"
	"otfair/internal/fairmetrics"
	"otfair/internal/monitor"
	"otfair/internal/planstore"
	"otfair/internal/researchfeed"
	"otfair/internal/rng"
)

// driftCheck folds the current drift telemetry into the plan's watcher and
// hands the recalibration run to the shared refit pool when the watcher
// alarms. Called once per repair request after the stream finishes and on
// every drift-timer tick; the snapshot under ps.mu is cheap (the monitor
// aggregates incrementally).
func (s *Server) driftCheck(ps *planState) {
	ps.mu.Lock()
	snap := ps.mon.Snapshot()
	worst, haveConf := 0.0, false
	// Tied |drift| magnitudes of opposite sign would make `worst` depend on
	// map order; walking calibrations in sorted ID order pins the fold.
	for _, cid := range slices.Sorted(maps.Keys(ps.blind)) {
		entry := ps.blind[cid]
		t := entry.engine.Totals()
		if t.Imputed == 0 {
			continue
		}
		d := t.MeanConfidence() - entry.engine.Calibration().ResearchConfidence()
		if !haveConf || math.Abs(d) > math.Abs(worst) {
			worst = d
		}
	}
	ps.mu.Unlock()

	ps.watch.SetScores(snap.MaxKSRatio, snap.MaxPSIRatio)
	if haveConf {
		ps.watch.SetConfidenceDrift(worst)
	}
	if ps.watch.State() != driftwatch.StateAlarmed {
		return
	}
	// Claim the loop slot before claiming the alarm, so a lost CAS leaves
	// the watcher alarmed for the next check instead of stranded.
	if !ps.loopRunning.CompareAndSwap(false, true) {
		return
	}
	runID, ok := ps.watch.ShouldRecalibrate()
	if !ok {
		ps.loopRunning.Store(false)
		return
	}
	if !s.refit.enqueue(refitJob{ps: ps, runID: runID}) {
		// The shared budget is saturated. Finish the run as refit_failed —
		// the watcher lands in rolled_back with its quiet period, exactly
		// as if the refit had been tried and failed — rather than park an
		// unbounded backlog of claims.
		ps.watch.Finish(driftwatch.OutcomeRefitFailed, "",
			slog.String("error", "shared refit queue full"))
		ps.loopRunning.Store(false)
	}
}

// runDriftTimer drives timerDriftCheck every DriftCheckEvery until Close.
// The cadence comes from the injected clock, so tests schedule it without
// real sleeps and the lint contract (no raw timers in repairsvc) holds.
func (s *Server) runDriftTimer() {
	defer s.timerWG.Done()
	for {
		select {
		case <-s.timerStop:
			return
		case <-s.opts.Clock.After(s.opts.DriftCheckEvery):
			s.timerDriftCheck()
		}
	}
}

// timerDriftCheck runs one drift check over every bound plan, in sorted
// lineage order so log and transition order is reproducible. TickQuiet
// first: for an idle artefact the timer is the only thing that can drain
// a post-loop quiet period (traffic normally does it record by record).
func (s *Server) timerDriftCheck() {
	s.mu.Lock()
	states := make([]*planState, 0, len(s.states))
	for _, id := range slices.Sorted(maps.Keys(s.states)) {
		states = append(states, s.states[id])
	}
	s.mu.Unlock()
	for _, ps := range states {
		if ps.watch == nil {
			continue
		}
		ps.watch.TickQuiet()
		s.driftCheck(ps)
	}
}

// runDriftLoop executes one alarm → fetch → refit → canary → swap/rollback
// run on a refit-pool worker. Every exit path goes through Watcher.Finish,
// so the state machine always lands in swapped or rolled_back and the
// quiet period always starts. ctx is the pool's: a server Close aborts
// in-flight fetches and backoff sleeps.
func (s *Server) runDriftLoop(ctx context.Context, ps *planState, runID string) {
	defer ps.loopRunning.Store(false)
	w := ps.watch
	logger := w.Logger().With(slog.String("run", runID))

	if s.feed == nil {
		// Alarmed with nothing to act with: the alarm is still exported,
		// the loop just cannot refit.
		w.Finish(driftwatch.OutcomeRefitFailed, "",
			slog.String("error", "no recalibration source configured"))
		return
	}
	oldPlan := ps.engine.Plan()
	snap, err := s.feed.Fetch(ctx)
	if err != nil {
		// Breaker-open and exhausted-retry failures land here alike: the
		// quiet period plus the breaker's own OpenFor window give the feed
		// time to recover instead of thrashing the retry ladder.
		w.Finish(driftwatch.OutcomeRefitFailed, "", slog.String("error", err.Error()),
			slog.Bool("breaker_open", errors.Is(err, researchfeed.ErrBreakerOpen)))
		return
	}
	ps.mu.Lock()
	lastFP := ps.lastResearchFP
	ps.mu.Unlock()
	if lastFP != "" && lastFP == snap.Fingerprint {
		// The feed is healthy but delivered the records the last completed
		// run already designed and judged on; a refit would reproduce that
		// exact candidate. Decline, and let the quiet period absorb the
		// alarm until the feed actually changes.
		w.Finish(driftwatch.OutcomeRefitSkippedStale, "",
			slog.String("fingerprint", snap.Fingerprint))
		return
	}
	if verr := researchfeed.Validate(snap.Table, s.opts.FeedMinRecords, oldPlan.Dim); verr != nil {
		// A degenerate or mismatched research set must be refused with its
		// precise reason, not surfaced as a downstream design error.
		w.Finish(driftwatch.OutcomeRefitFailed, "", slog.String("error", verr.Error()),
			slog.String("feed_reject", verr.(*researchfeed.ValidationError).Reason))
		return
	}
	research := snap.Table
	// Same design options as the incumbent: the refit tracks the drifted
	// population, it does not change the experiment.
	newPlan, err := core.Design(research, oldPlan.Opts)
	if err != nil {
		w.Finish(driftwatch.OutcomeRefitFailed, "", slog.String("error", err.Error()))
		return
	}
	newID, _, err := s.store.Put(newPlan)
	if err != nil {
		w.Finish(driftwatch.OutcomeRefitFailed, "", slog.String("error", err.Error()))
		return
	}
	logger.Info("refit complete", slog.String("candidate", newID),
		slog.Int("research_records", research.Len()),
		slog.String("research_fingerprint", snap.Fingerprint))

	w.StartCanary()
	judge, held := w.ReservoirSplit()
	oldJudge := canaryStats(oldPlan, judge, s.opts.Metric)
	newJudge := canaryStats(newPlan, judge, s.opts.Metric)
	oldHeld := canaryStats(oldPlan, held, s.opts.Metric)
	newHeld := canaryStats(newPlan, held, s.opts.Metric)
	verdict := driftwatch.JudgeSplit(oldJudge, newJudge, oldHeld, newHeld, *s.opts.DriftWatch)
	evidence := []slog.Attr{
		slog.String("candidate", newID),
		slog.Int("judge_sample", len(judge)), slog.Int("held_sample", len(held)),
		slog.Float64("e_old", oldJudge.E), slog.Float64("e_new", newJudge.E),
		slog.Float64("e_old_held", oldHeld.E), slog.Float64("e_new_held", newHeld.E),
		slog.Float64("damage_old", oldJudge.Damage), slog.Float64("damage_new", newJudge.Damage),
	}
	if !verdict.Pass {
		// Do NOT record the fingerprint on a rollback: the verdict was a
		// function of this reservoir, and the next alarm judges the same
		// content against fresh traffic — it may legitimately pass then.
		evidence = append(evidence, slog.String("slice", verdict.Slice))
		w.Finish(driftwatch.OutcomeRolledBack, verdict.Reason, evidence...)
		return
	}
	// Canary passed on both halves: land the swap. The ref CAS names the
	// current incumbent (which, after a previous run, is not the lineage
	// itself), so two loops racing on one lineage cannot silently
	// overwrite each other.
	expected := s.refs.Resolve(ps.id)
	if err := casRefRetry(s.refs, ps.id, expected, newID); err != nil {
		w.Finish(driftwatch.OutcomeRefitFailed, "", slog.String("error", err.Error()))
		return
	}
	// Rebind the drift monitor to the candidate: its reference windows now
	// describe the population traffic actually drifted to, which is what
	// makes the exported drift score recover after the swap. The serving
	// engine is deliberately untouched — repairs pin explicit fingerprints.
	if mon, merr := monitor.New(newPlan, s.opts.Monitor); merr == nil {
		ps.mu.Lock()
		ps.mon = mon
		ps.mu.Unlock()
	} else {
		logger.Warn("monitor rebind failed", slog.String("error", merr.Error()))
	}
	s.recalibrateBlind(ps, newPlan, research, logger)
	// A landed swap settles the run against this feed content: the next
	// alarm on an unchanged feed would design this exact plan again and
	// swap it onto itself, so it skips as refit_skipped_stale instead.
	ps.mu.Lock()
	ps.lastResearchFP = snap.Fingerprint
	ps.mu.Unlock()
	w.Finish(driftwatch.OutcomeSwapped, "", evidence...)
}

// casRefRetry lands a ref swap with one conflict retry: when the first
// CompareAndSwap loses to a concurrent writer (ErrRefConflict), the ref
// is re-resolved and the swap retried once against the fresh incumbent.
// One retry is the right amount — the caller's claim (loopRunning / the
// watcher state machine) means a second conflict on the same lineage is a
// genuine fight that deserves the error, not a loop.
func casRefRetry(refs *planstore.Refs, lineage, expected, target string) error {
	err := refs.CompareAndSwap(lineage, expected, target)
	if errors.Is(err, planstore.ErrRefConflict) {
		err = refs.CompareAndSwap(lineage, refs.Resolve(lineage), target)
	}
	return err
}

// recalibrateBlind refits the blind calibration against the candidate plan
// and repoints every bound calibration lineage at it. Best-effort: blind
// serving keeps working on the old calibrations either way (they pin their
// own plan fingerprint), so a failure here degrades the ride-along, not the
// plan swap.
func (s *Server) recalibrateBlind(ps *planState, newPlan *core.Plan, research *dataset.Table, logger *slog.Logger) {
	ps.mu.Lock()
	// Repoint lineages in sorted order so refit logs and error attribution
	// are reproducible across runs.
	calIDs := slices.Sorted(maps.Keys(ps.blind))
	ps.mu.Unlock()
	if len(calIDs) == 0 {
		return
	}
	newCal, err := blind.NewCalibration(newPlan, research)
	if err != nil {
		logger.Warn("blind calibration refit failed", slog.String("error", err.Error()))
		return
	}
	ncID, _, err := s.cals.Put(newCal)
	if err != nil {
		logger.Warn("storing refitted calibration failed", slog.String("error", err.Error()))
		return
	}
	for _, cid := range calIDs {
		// Resolve-then-CAS races with any concurrent repoint of the same
		// calibration lineage (two plans sharing one calibration can run
		// loops concurrently); casRefRetry re-resolves and retries once
		// before the failure is surfaced.
		if err := casRefRetry(s.refs, cid, s.refs.Resolve(cid), ncID); err != nil {
			logger.Warn("calibration ref swap failed",
				slog.String("lineage", cid), slog.String("error", err.Error()))
		}
	}
}

// canaryStats shadow-repairs the reservoir sample under one plan and
// measures the result with the serving metric configuration. Any failure —
// dimension mismatch, repair error, an E the sample cannot support — yields
// NaN stats, which Judge rejects as nan_metric: a swap that cannot be
// justified must not happen.
func canaryStats(plan *core.Plan, sample []dataset.Record, metric fairmetrics.Config) driftwatch.CanaryStats {
	if len(sample) == 0 {
		return driftwatch.CanaryStats{}
	}
	nan := driftwatch.CanaryStats{E: math.NaN(), Damage: math.NaN(), Records: len(sample)}
	before, err := dataset.NewTable(plan.Dim, nil)
	if err != nil {
		return nan
	}
	for _, rec := range sample {
		if before.Append(rec) != nil {
			return nan
		}
	}
	// Fixed seed: both sides of the comparison repair the same sample with
	// the same randomness, so the verdict measures the plans, not the draw.
	rp, err := core.NewRepairer(plan, rng.New(1), core.RepairOptions{})
	if err != nil {
		return nan
	}
	after, err := rp.RepairTable(before)
	if err != nil {
		return nan
	}
	e, err := fairmetrics.E(after, metric)
	if err != nil {
		return nan
	}
	dmg, err := fairmetrics.Damage(before, after)
	if err != nil {
		return nan
	}
	return driftwatch.CanaryStats{E: e, Damage: dmg, Records: len(sample)}
}
