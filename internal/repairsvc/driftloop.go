package repairsvc

// The recalibration loop: what happens after the drift watcher alarms.
// driftCheck runs once per repair request (off the per-record path) and
// feeds the watcher the monitor's KS/PSI ratios and the blind engines'
// posterior-confidence drift; when the watcher reaches alarmed, exactly one
// goroutine per plan state claims the run and executes
//
//	refit (core.Design on the configured fresh research set, same options)
//	  → canary (shadow-repair the reservoir sample under old and new,
//	            judge E and damage under the configured tolerances)
//	  → swap  (planstore ref CAS lineage → candidate; monitor rebind;
//	           blind calibration refit rides along)
//	  or rollback (incumbent stays; quiet period guards the alarm loop).
//
// Nothing here touches the serve path: repairs pin explicit fingerprints,
// ps.engine is never replaced, and the only serving-state mutation is the
// monitor rebind under ps.mu — the same lock every tap already takes. The
// responses of a server running this loop are byte-identical to one with
// the loop disabled.

import (
	"log/slog"
	"maps"
	"math"
	"os"
	"slices"

	"otfair/internal/blind"
	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/driftwatch"
	"otfair/internal/fairmetrics"
	"otfair/internal/monitor"
	"otfair/internal/rng"
)

// driftCheck folds the current drift telemetry into the plan's watcher and
// launches the recalibration loop when the watcher alarms. Called once per
// repair request after the stream finishes; the snapshot under ps.mu is
// cheap (the monitor aggregates incrementally).
func (s *Server) driftCheck(ps *planState) {
	ps.mu.Lock()
	snap := ps.mon.Snapshot()
	worst, haveConf := 0.0, false
	// Tied |drift| magnitudes of opposite sign would make `worst` depend on
	// map order; walking calibrations in sorted ID order pins the fold.
	for _, cid := range slices.Sorted(maps.Keys(ps.blind)) {
		entry := ps.blind[cid]
		t := entry.engine.Totals()
		if t.Imputed == 0 {
			continue
		}
		d := t.MeanConfidence() - entry.engine.Calibration().ResearchConfidence()
		if !haveConf || math.Abs(d) > math.Abs(worst) {
			worst = d
		}
		haveConf = true
	}
	ps.mu.Unlock()

	ps.watch.SetScores(snap.MaxKSRatio, snap.MaxPSIRatio)
	if haveConf {
		ps.watch.SetConfidenceDrift(worst)
	}
	if ps.watch.State() != driftwatch.StateAlarmed {
		return
	}
	// Claim the loop slot before claiming the alarm, so a lost CAS leaves
	// the watcher alarmed for the next check instead of stranded.
	if !ps.loopRunning.CompareAndSwap(false, true) {
		return
	}
	runID, ok := ps.watch.ShouldRecalibrate()
	if !ok {
		ps.loopRunning.Store(false)
		return
	}
	go s.runDriftLoop(ps, runID)
}

// runDriftLoop executes one alarm → refit → canary → swap/rollback run.
// Every exit path goes through Watcher.Finish, so the state machine always
// lands in swapped or rolled_back and the quiet period always starts.
func (s *Server) runDriftLoop(ps *planState, runID string) {
	defer ps.loopRunning.Store(false)
	w := ps.watch
	logger := w.Logger().With(slog.String("run", runID))

	if s.opts.RecalibrateFrom == "" {
		// Alarmed with nothing to act with: the alarm is still exported,
		// the loop just cannot refit.
		w.Finish(driftwatch.OutcomeRefitFailed, "",
			slog.String("error", "no recalibration source configured"))
		return
	}
	oldPlan := ps.engine.Plan()
	research, err := readResearchCSV(s.opts.RecalibrateFrom)
	if err != nil {
		w.Finish(driftwatch.OutcomeRefitFailed, "", slog.String("error", err.Error()))
		return
	}
	// Same design options as the incumbent: the refit tracks the drifted
	// population, it does not change the experiment.
	newPlan, err := core.Design(research, oldPlan.Opts)
	if err != nil {
		w.Finish(driftwatch.OutcomeRefitFailed, "", slog.String("error", err.Error()))
		return
	}
	newID, _, err := s.store.Put(newPlan)
	if err != nil {
		w.Finish(driftwatch.OutcomeRefitFailed, "", slog.String("error", err.Error()))
		return
	}
	logger.Info("refit complete", slog.String("candidate", newID),
		slog.Int("research_records", research.Len()))

	w.StartCanary()
	sample := w.ReservoirSample()
	oldStats := canaryStats(oldPlan, sample, s.opts.Metric)
	newStats := canaryStats(newPlan, sample, s.opts.Metric)
	verdict := driftwatch.Judge(oldStats, newStats, *s.opts.DriftWatch)
	evidence := []slog.Attr{
		slog.String("candidate", newID), slog.Int("sample", len(sample)),
		slog.Float64("e_old", oldStats.E), slog.Float64("e_new", newStats.E),
		slog.Float64("damage_old", oldStats.Damage), slog.Float64("damage_new", newStats.Damage),
	}
	if !verdict.Pass {
		w.Finish(driftwatch.OutcomeRolledBack, verdict.Reason, evidence...)
		return
	}

	// Canary passed: land the swap. The ref CAS names the current incumbent
	// (which, after a previous run, is not the lineage itself), so two loops
	// racing on one lineage cannot silently overwrite each other.
	expected := s.refs.Resolve(ps.id)
	if err := s.refs.CompareAndSwap(ps.id, expected, newID); err != nil {
		w.Finish(driftwatch.OutcomeRefitFailed, "", slog.String("error", err.Error()))
		return
	}
	// Rebind the drift monitor to the candidate: its reference windows now
	// describe the population traffic actually drifted to, which is what
	// makes the exported drift score recover after the swap. The serving
	// engine is deliberately untouched — repairs pin explicit fingerprints.
	if mon, merr := monitor.New(newPlan, s.opts.Monitor); merr == nil {
		ps.mu.Lock()
		ps.mon = mon
		ps.mu.Unlock()
	} else {
		logger.Warn("monitor rebind failed", slog.String("error", merr.Error()))
	}
	s.recalibrateBlind(ps, newPlan, research, logger)
	w.Finish(driftwatch.OutcomeSwapped, "", evidence...)
}

// recalibrateBlind refits the blind calibration against the candidate plan
// and repoints every bound calibration lineage at it. Best-effort: blind
// serving keeps working on the old calibrations either way (they pin their
// own plan fingerprint), so a failure here degrades the ride-along, not the
// plan swap.
func (s *Server) recalibrateBlind(ps *planState, newPlan *core.Plan, research *dataset.Table, logger *slog.Logger) {
	ps.mu.Lock()
	// Repoint lineages in sorted order so refit logs and error attribution
	// are reproducible across runs.
	calIDs := slices.Sorted(maps.Keys(ps.blind))
	ps.mu.Unlock()
	if len(calIDs) == 0 {
		return
	}
	newCal, err := blind.NewCalibration(newPlan, research)
	if err != nil {
		logger.Warn("blind calibration refit failed", slog.String("error", err.Error()))
		return
	}
	ncID, _, err := s.cals.Put(newCal)
	if err != nil {
		logger.Warn("storing refitted calibration failed", slog.String("error", err.Error()))
		return
	}
	for _, cid := range calIDs {
		if err := s.refs.CompareAndSwap(cid, s.refs.Resolve(cid), ncID); err != nil {
			logger.Warn("calibration ref swap failed",
				slog.String("lineage", cid), slog.String("error", err.Error()))
		}
	}
}

// canaryStats shadow-repairs the reservoir sample under one plan and
// measures the result with the serving metric configuration. Any failure —
// dimension mismatch, repair error, an E the sample cannot support — yields
// NaN stats, which Judge rejects as nan_metric: a swap that cannot be
// justified must not happen.
func canaryStats(plan *core.Plan, sample []dataset.Record, metric fairmetrics.Config) driftwatch.CanaryStats {
	if len(sample) == 0 {
		return driftwatch.CanaryStats{}
	}
	nan := driftwatch.CanaryStats{E: math.NaN(), Damage: math.NaN(), Records: len(sample)}
	before, err := dataset.NewTable(plan.Dim, nil)
	if err != nil {
		return nan
	}
	for _, rec := range sample {
		if before.Append(rec) != nil {
			return nan
		}
	}
	// Fixed seed: both sides of the comparison repair the same sample with
	// the same randomness, so the verdict measures the plans, not the draw.
	rp, err := core.NewRepairer(plan, rng.New(1), core.RepairOptions{})
	if err != nil {
		return nan
	}
	after, err := rp.RepairTable(before)
	if err != nil {
		return nan
	}
	e, err := fairmetrics.E(after, metric)
	if err != nil {
		return nan
	}
	dmg, err := fairmetrics.Damage(before, after)
	if err != nil {
		return nan
	}
	return driftwatch.CanaryStats{E: e, Damage: dmg, Records: len(sample)}
}

// readResearchCSV loads the configured fresh research set.
func readResearchCSV(path string) (*dataset.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}
