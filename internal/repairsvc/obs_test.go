package repairsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/obs"
	"otfair/internal/planstore"
	"otfair/internal/rng"
	"otfair/internal/shardrun"
)

// newObsTestServer boots a server with the given observability options and
// returns the test server, the stored plan id, and the Server itself.
func newObsTestServer(t *testing.T, plan *core.Plan, opts ServerOptions) (*httptest.Server, string, *Server) {
	t.Helper()
	store, err := planstore.Open(t.TempDir(), planstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := store.Put(plan)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := NewServer(store, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv, id, handler
}

// sampleMap indexes parsed exposition samples by series key.
func sampleMap(samples []obs.Sample) map[string]float64 {
	m := make(map[string]float64, len(samples))
	for _, s := range samples {
		m[s.Key()] = s.Value
	}
	return m
}

// TestPrometheusEndpoint runs a repair and asserts GET /metrics serves
// parseable exposition text carrying the acceptance-criteria series:
// request latency by route, per-stage spans, shard runner timings, store
// read latencies, and the records counter.
func TestPrometheusEndpoint(t *testing.T) {
	plan, _, archive := testData(t, 31, 250, 800, 30)
	srv, id, _ := newObsTestServer(t, plan, ServerOptions{MetricWindow: 1024})

	resp := postCSV(t, srv.URL+"/v1/repair?plan="+id+"&seed=3&workers=2", archive)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair: %s", resp.Status)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", mresp.Status)
	}
	if ct := mresp.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.TextContentType)
	}
	samples, err := obs.ParseText(mresp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	m := sampleMap(samples)

	if got := m[`otfair_repair_records_total`]; got != float64(archive.Len()) {
		t.Errorf("otfair_repair_records_total = %v, want %d", got, archive.Len())
	}
	if got := m[`otfair_http_request_seconds_count{route="repair"}`]; got != 1 {
		t.Errorf("repair route request count = %v, want 1", got)
	}
	if got := m[`otfair_repair_stage_seconds_count{stage="shard_execute"}`]; got < 1 {
		t.Errorf("shard_execute stage count = %v, want >= 1", got)
	}
	if got := m[`otfair_repair_stage_seconds_count{stage="spool"}`]; got < 1 {
		t.Errorf("spool stage count = %v, want >= 1", got)
	}
	if got := m[`otfair_shards_total`]; got < 1 {
		t.Errorf("otfair_shards_total = %v, want >= 1", got)
	}
	if got := m[`otfair_shard_seconds_count`]; got < 1 {
		t.Errorf("otfair_shard_seconds_count = %v, want >= 1", got)
	}
	// Read-latency series exist for both namespaces even before a cold read.
	for _, key := range []string{
		`otfair_store_read_seconds_count{store="plan"}`,
		`otfair_store_read_seconds_count{store="calibration"}`,
		`otfair_build_info`,
	} {
		if _, ok := m[key]; !ok && key != "otfair_build_info" {
			t.Errorf("series %s missing from exposition", key)
		}
	}
	// build info carries labels; find it by family.
	var foundBuild bool
	for _, s := range samples {
		if s.Name == "otfair_build_info" {
			foundBuild = true
			if s.Value != 1 {
				t.Errorf("otfair_build_info = %v, want 1", s.Value)
			}
		}
	}
	if !foundBuild {
		t.Error("otfair_build_info missing from exposition")
	}
}

// TestMetricsJSONPlanOptional pins the /v1/metrics contract: server-wide
// sections without ?plan=, plan sections appended with it, and an explicit
// JSON content type either way.
func TestMetricsJSONPlanOptional(t *testing.T) {
	plan, _, archive := testData(t, 32, 200, 300, 25)
	srv, id, _ := newObsTestServer(t, plan, ServerOptions{MetricWindow: 1024})
	resp := postCSV(t, srv.URL+"/v1/repair?plan="+id+"&seed=1&workers=1", archive)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	get := func(url string) map[string]any {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s", url, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type = %q, want application/json", ct)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	wide := get(srv.URL + "/v1/metrics")
	for _, key := range []string{"observability", "resilience", "store", "calibration_store", "design_cache"} {
		if _, ok := wide[key]; !ok {
			t.Errorf("server-wide metrics missing %q", key)
		}
	}
	if _, ok := wide["engine"]; ok {
		t.Error("server-wide metrics should not carry plan sections")
	}
	ob, ok := wide["observability"].(map[string]any)
	if !ok {
		t.Fatal("observability section has wrong shape")
	}
	if _, ok := ob["stage_seconds"]; !ok {
		t.Error("observability missing stage_seconds")
	}

	planned := get(srv.URL + "/v1/metrics?plan=" + id)
	for _, key := range []string{"engine", "drift", "metric", "blind", "observability"} {
		if _, ok := planned[key]; !ok {
			t.Errorf("plan metrics missing %q", key)
		}
	}
}

func TestBuildInfoEndpoint(t *testing.T) {
	plan, _, _ := testData(t, 33, 150, 100, 20)
	srv, _, _ := newObsTestServer(t, plan, ServerOptions{})
	resp, err := http.Get(srv.URL + "/v1/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/buildinfo: %s", resp.Status)
	}
	var out struct {
		Version  string `json:"version"`
		Go       string `json:"go"`
		Revision string `json:"revision"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.Go, "go1") {
		t.Errorf("go = %q, want a go1.x version", out.Go)
	}
	if out.Version == "" || out.Revision == "" {
		t.Errorf("empty identity fields: %+v", out)
	}
}

// syncBuffer makes a bytes.Buffer safe for the slog handler, which may be
// written from request goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowRequestTrackingAndLogging turns the slow threshold down to a
// nanosecond so every repair lands in the slow ring, and checks the ring
// surfaces through /v1/metrics with 32-hex request IDs that also appear in
// the structured log.
func TestSlowRequestTrackingAndLogging(t *testing.T) {
	plan, _, archive := testData(t, 34, 200, 300, 25)
	var logBuf syncBuffer
	srv, id, _ := newObsTestServer(t, plan, ServerOptions{
		MetricWindow: 1024,
		SlowRequest:  time.Nanosecond,
		TraceSample:  1,
		Logger:       slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	resp := postCSV(t, srv.URL+"/v1/repair?plan="+id+"&seed=2&workers=1", archive)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair: %s", resp.Status)
	}

	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var out struct {
		Observability struct {
			SlowTotal    uint64 `json:"slow_requests_total"`
			SlowRequests []struct {
				RequestID string            `json:"request_id"`
				Total     string            `json:"total"`
				Stages    map[string]string `json:"stages"`
				Detail    string            `json:"detail"`
			} `json:"slow_requests"`
		} `json:"observability"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Observability.SlowTotal < 1 || len(out.Observability.SlowRequests) < 1 {
		t.Fatalf("slow requests not recorded: total=%d ring=%d",
			out.Observability.SlowTotal, len(out.Observability.SlowRequests))
	}
	sr := out.Observability.SlowRequests[len(out.Observability.SlowRequests)-1]
	if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(sr.RequestID) {
		t.Errorf("request id %q is not 32 hex chars", sr.RequestID)
	}
	if _, ok := sr.Stages["shard_execute"]; !ok {
		t.Errorf("slow record missing shard_execute stage: %v", sr.Stages)
	}
	// Sampled at 1: the decode span was timed per record.
	if _, ok := sr.Stages["decode"]; !ok {
		t.Errorf("sampled slow record missing decode stage: %v", sr.Stages)
	}
	if !strings.Contains(sr.Detail, "plan="+id) {
		t.Errorf("detail %q missing plan fingerprint", sr.Detail)
	}

	logs := logBuf.String()
	if !strings.Contains(logs, sr.RequestID) {
		t.Errorf("request id %s absent from logs:\n%s", sr.RequestID, logs)
	}
	if !strings.Contains(logs, `"level":"WARN"`) || !strings.Contains(logs, "repair request") {
		t.Errorf("slow repair not logged at Warn:\n%s", logs)
	}
	if !strings.Contains(logs, `"component":"repairsvc"`) {
		t.Errorf("log lines missing component key:\n%s", logs)
	}
}

// TestEngineObsAllocDelta pins the instrumentation overhead contract at
// the engine level: repairing with a bound shardrun.Obs performs no
// per-record allocations beyond the uninstrumented engine. The serial path
// is the tightest one — every record flows through the instrumented
// Isolated call.
func TestEngineObsAllocDelta(t *testing.T) {
	plan, _, archive := testData(t, 35, 200, 2000, 30)
	run := func(o *shardrun.Obs) float64 {
		engine, err := NewEngine(plan, Options{Workers: 1, Obs: o})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(7)
		sink := func(dataset.Record) error { return nil }
		return testing.AllocsPerRun(3, func() {
			in := dataset.NewSliceStream(archive)
			if _, _, err := engine.RepairStreamContext(context.Background(), r, in, sink); err != nil {
				t.Fatal(err)
			}
		})
	}
	o := &shardrun.Obs{
		ShardSeconds: obs.NewHistogram(obs.DefLatencyBuckets()),
		ChunkRecords: obs.NewHistogram(obs.DefSizeBuckets()),
		Shards:       &obs.Counter{},
		Panics:       &obs.Counter{},
	}
	plain := run(nil)
	instrumented := run(o)
	// Any fixed per-run overhead is fine; per-record overhead is not. With
	// 2000 records, even 1/100 alloc per record dwarfs run-constant noise.
	if delta := instrumented - plain; delta > float64(archive.Len())/100 {
		t.Fatalf("instrumented repair allocates %.1f more per run than plain (%.1f vs %.1f) over %d records",
			delta, instrumented, plain, archive.Len())
	}
	if o.Shards.Load() == 0 {
		t.Fatal("instrumented run recorded no shards")
	}
}
