package repairsvc

// The resilience layer of the HTTP front end: a bounded admission gate in
// front of the repair engines (load is shed with 429 + Retry-After
// instead of being queued without limit), a drain state for graceful
// shutdown (new work is refused with 503 while in-flight requests
// finish), and the server-wide counters that make degradation observable
// in /v1/metrics. The design principle throughout is degrade, don't
// collapse: every refusal is cheap, typed and counted, and no overload
// path ever touches an engine or the store.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"

	"otfair/internal/planstore"
	"otfair/internal/shardrun"
)

// errShed marks a request refused by the admission gate; handlers map it
// to 429 with a Retry-After hint.
var errShed = errors.New("repairsvc: admission budget exhausted")

// admission is the two-budget gate: a concurrent-request slot count and
// a total spooled-bytes budget across all admitted requests. Both are
// plain counters under one mutex — admission decisions must be cheap
// precisely when the server is busiest.
type admission struct {
	mu          sync.Mutex
	inflight    int
	queuedBytes int64
	maxInflight int   // <= 0 = unlimited
	maxBytes    int64 // <= 0 = unlimited
}

// tryAcquire claims one request slot, reporting false when the
// concurrency budget is spent.
func (g *admission) tryAcquire() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.maxInflight > 0 && g.inflight >= g.maxInflight {
		return false
	}
	g.inflight++
	return true
}

// release returns a request slot.
func (g *admission) release() {
	g.mu.Lock()
	g.inflight--
	g.mu.Unlock()
}

// reserve claims n bytes of the spool budget, reporting false when the
// budget would be exceeded.
func (g *admission) reserve(n int64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.maxBytes > 0 && g.queuedBytes+n > g.maxBytes {
		return false
	}
	g.queuedBytes += n
	return true
}

// free returns n bytes of the spool budget.
func (g *admission) free(n int64) {
	if n == 0 {
		return
	}
	g.mu.Lock()
	g.queuedBytes -= n
	g.mu.Unlock()
}

// snapshot reports the gate's current occupancy.
func (g *admission) snapshot() (inflight int, queuedBytes int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight, g.queuedBytes
}

// resilienceCounters are the server-wide degradation counters surfaced
// in /v1/metrics. Cumulative and monotone, like every counter in this
// repository.
type resilienceCounters struct {
	// Shed counts requests refused by the admission gate (429).
	Shed atomic.Uint64
	// DeadlineExceeded counts repairs aborted by the per-request budget.
	DeadlineExceeded atomic.Uint64
	// Disconnects counts repairs aborted because the client went away.
	Disconnects atomic.Uint64
	// Panics counts worker panics converted to *ShardPanicError — each
	// one failed a single request, not the process.
	Panics atomic.Uint64
}

// spoolChunk is the reservation granularity of the byte-budget spool
// copy: small enough that concurrent spools interleave fairly, large
// enough that the gate mutex is not contended per read.
const spoolChunk = 256 << 10

// spoolBody copies the request body into the spool, reserving the byte
// budget chunk by chunk as the copy progresses (Content-Length is
// client-supplied and absent on chunked uploads, so the only honest
// accounting is of bytes actually landed). It returns the bytes
// reserved — the caller must free them when the request completes —
// and errShed when the budget runs out mid-copy.
func (s *Server) spoolBody(spool *bodySpool, body io.Reader) (reserved int64, err error) {
	for {
		if !s.gate.reserve(spoolChunk) {
			return reserved, errShed
		}
		reserved += spoolChunk
		n, cerr := io.CopyN(spool, body, spoolChunk)
		if n < spoolChunk {
			// Short chunk (EOF or error): return the unused reservation.
			s.gate.free(spoolChunk - n)
			reserved -= spoolChunk - n
		}
		if cerr == io.EOF {
			return reserved, nil
		}
		if cerr != nil {
			return reserved, cerr
		}
	}
}

// shed writes the 429 every gate refusal maps to, with the Retry-After
// hint load balancers and well-behaved clients back off on.
func (s *Server) shed(w http.ResponseWriter, format string, args ...any) {
	s.res.Shed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(s.opts.RetryAfterSeconds))
	httpError(w, http.StatusTooManyRequests, format, args...)
}

// BeginDrain puts the server into drain mode: /readyz starts failing (so
// orchestrators stop routing here), new repair requests are refused with
// 503, and in-flight requests run to completion. cmd/fairserved calls it
// on SIGTERM before http.Server.Shutdown. Draining is one-way — a
// draining server is on its way out.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// refuseDraining writes the 503 a draining server answers new repair
// work with. Retry-After carries the same hint as shedding: the client
// should go elsewhere, and soon.
func (s *Server) refuseDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.opts.RetryAfterSeconds))
	httpError(w, http.StatusServiceUnavailable, "server is draining")
}

// handleReady is the readiness probe, split from /healthz liveness: a
// process can be alive (do not restart it) yet unready (do not route to
// it). Unready when draining, and when the artefact store fails a
// writability round-trip — a server that cannot persist plans will fail
// most useful work, so it should stop receiving traffic before it fails
// requests.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(s.opts.RetryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
		return
	}
	if err := checkWritable(s.store.Dir()); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": fmt.Sprintf("store not writable: %v", err)})
		return
	}
	s.mu.Lock()
	bound := len(s.states)
	s.mu.Unlock()
	inflight, queued := s.gate.snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"ready":        true,
		"bound_plans":  bound,
		"inflight":     inflight,
		"queued_bytes": queued,
	})
}

// checkWritable round-trips a temp file through dir: create, write,
// read back, remove. A full or read-only disk fails here, in the probe,
// instead of in a client's request.
func checkWritable(dir string) error {
	f, err := os.CreateTemp(dir, ".readyz-*")
	if err != nil {
		return err
	}
	name := f.Name()
	defer os.Remove(name)
	if _, err := f.Write([]byte("ok")); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	got, err := os.ReadFile(name)
	if err != nil {
		return err
	}
	if string(got) != "ok" {
		return fmt.Errorf("read back %q, want %q", got, "ok")
	}
	return nil
}

// noteFailure buckets a failed repair into the resilience counters. ctx
// is the request's (possibly deadline-wrapped) context: when the client
// disconnects, the engine's cancellation and the sink's write-to-dead-
// connection error race, so the classification consults both the error
// and the context state rather than trusting whichever surfaced first.
func (s *Server) noteFailure(ctx context.Context, err error) {
	var sp *shardrun.ShardPanicError
	switch {
	case errors.As(err, &sp):
		s.res.Panics.Add(1)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded):
		s.res.DeadlineExceeded.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(ctx.Err(), context.Canceled) || clientGone(err):
		s.res.Disconnects.Add(1)
	}
}

// clientGone reports whether err is a write failure to a connection the
// peer already closed — the disconnect's other face.
func clientGone(err error) bool {
	return errors.Is(err, syscall.EPIPE) || errors.Is(err, syscall.ECONNRESET) || errors.Is(err, net.ErrClosed)
}

// resilienceSnapshot assembles the /v1/metrics resilience section. The
// quarantine count is the stores' (both namespaces), so a corrupt
// artefact shows up here whichever tier it was read through.
func (s *Server) resilienceSnapshot() map[string]any {
	inflight, queued := s.gate.snapshot()
	return map[string]any{
		"shed":              s.res.Shed.Load(),
		"deadline_exceeded": s.res.DeadlineExceeded.Load(),
		"disconnects":       s.res.Disconnects.Load(),
		"panics":            s.res.Panics.Load(),
		"quarantined":       s.store.Stats().Quarantined + s.cals.Stats().Quarantined,
		"draining":          s.draining.Load(),
		"inflight":          inflight,
		"queued_bytes":      queued,
		"max_inflight":      s.gate.maxInflight,
		"max_queued_bytes":  s.gate.maxBytes,
	}
}

// resilienceStatus maps the resilience-layer error classes to their
// statuses: store corruption and worker panics are server faults (500,
// distinguishable by their typed error strings), a shed spool is 429,
// and a blown deadline is 503 — the client's budget, not its request,
// was the problem. Errors outside these classes report ok == false and
// fall through to the ordinary mapping.
func resilienceStatus(err error) (status int, ok bool) {
	var corrupt *planstore.CorruptArtefactError
	var panicked *shardrun.ShardPanicError
	switch {
	case errors.As(err, &corrupt), errors.As(err, &panicked):
		return http.StatusInternalServerError, true
	case errors.Is(err, errShed):
		return http.StatusTooManyRequests, true
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, true
	}
	return 0, false
}
