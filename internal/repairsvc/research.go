package repairsvc

// POST /v1/research: the staging half of researchfeed.StagedSource. A
// data owner pushes a candidate research set (text/csv body) into the
// content-addressed research namespace; the drift loop's staged source
// then refits from the newest staged set on the next alarm or timer
// tick. Staging is authenticated — a research set steers every future
// refit, so accepting one is a control-plane operation, not a data-plane
// one — and disabled entirely unless a token is configured.

import (
	"crypto/subtle"
	"net/http"

	"otfair/internal/dataset"
	"otfair/internal/researchfeed"
)

// handleResearchPost stages one research set.
func (s *Server) handleResearchPost(w http.ResponseWriter, r *http.Request) {
	if s.opts.ResearchToken == "" {
		httpError(w, http.StatusForbidden, "research staging is disabled (no -research-token configured)")
		return
	}
	// Constant-time comparison: an equality short-circuit would leak
	// token-prefix timing to whoever can reach the endpoint.
	want := "Bearer " + s.opts.ResearchToken
	got := r.Header.Get("Authorization")
	if len(got) != len(want) || subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
		w.Header().Set("WWW-Authenticate", `Bearer realm="research staging"`)
		httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
		return
	}
	if ct := mediaType(r); ct != "" && ct != "text/csv" {
		httpError(w, http.StatusUnsupportedMediaType, "stage research as text/csv, got %q", ct)
		return
	}
	s.limitBody(w, r)
	tbl, err := dataset.ReadCSV(r.Body)
	if err != nil {
		httpError(w, errStatusOr(err, http.StatusBadRequest), "invalid research csv: %v", err)
		return
	}
	// The same floor the drift loop applies on fetch: rejecting at the
	// door tells the data owner now instead of a refit_failed later.
	// Dimension is not checked here — the set may target any lineage.
	if verr := researchfeed.Validate(tbl, s.opts.FeedMinRecords, 0); verr != nil {
		httpError(w, http.StatusUnprocessableEntity, "research set rejected: %v", verr)
		return
	}
	id, created, err := s.research.Put(tbl)
	if err != nil {
		httpError(w, errStatus(err), "storing research set: %v", err)
		return
	}
	code := http.StatusCreated
	if !created {
		code = http.StatusOK
	}
	writeJSON(w, code, map[string]any{
		"id": id, "records": tbl.Len(), "dim": tbl.Dim(), "existed": !created,
	})
}
