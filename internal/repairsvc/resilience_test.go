package repairsvc

// HTTP-level resilience tests: mid-stream client disconnects (both
// engines, both wire formats), admission-gate shedding, per-request
// deadlines, panic isolation, store quarantine surfacing, and drain.
// Each scenario asserts three things: the typed status the client sees,
// the resilience counters the operator sees, and that the process keeps
// nothing behind (goroutines, spool files).

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/faultinject"
	"otfair/internal/planstore"
)

// leakCheck fails the test if the goroutine count has not returned to
// its baseline once every cleanup registered after it has run. Register
// it BEFORE starting servers: t.Cleanup is LIFO, so this check runs
// after httptest.Server.Close has reaped the handler goroutines.
func leakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Errorf("goroutine leak: %d at start, %d after cleanup\n%s",
					base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	})
}

// spoolDirCheck points the spool at a fresh directory and fails the test
// if any spool file survives it.
func spoolDirCheck(t *testing.T) {
	t.Helper()
	dir := t.TempDir()
	t.Setenv("TMPDIR", dir)
	t.Cleanup(func() {
		left, err := filepath.Glob(filepath.Join(dir, "fairserved-repair-*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(left) > 0 {
			t.Errorf("spool files left behind: %v", left)
		}
	})
}

// resilienceServer boots a server with the given options over a fresh
// store holding plan.
func resilienceServer(t *testing.T, plan *core.Plan, opts ServerOptions) (*httptest.Server, *Server, string) {
	t.Helper()
	store, err := planstore.Open(t.TempDir(), planstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := store.Put(plan)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := NewServer(store, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv, handler, id
}

func tableCSV(t *testing.T, tbl *dataset.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func tableNDJSON(t *testing.T, tbl *dataset.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := 0; i < tbl.Len(); i++ {
		rec := tbl.At(i)
		wr := wireRecord{X: rec.X, U: rec.U}
		if rec.S != dataset.SUnknown {
			s := rec.S
			wr.S = &s
		}
		if err := enc.Encode(wr); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// resilienceMetrics fetches the /v1/metrics resilience section.
func resilienceMetrics(t *testing.T, srv *httptest.Server, planID string) map[string]any {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/metrics?plan=" + planID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Resilience map[string]any `json:"resilience"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Resilience
}

// waitCounter polls the resilience section until key reaches at least
// want (counters are updated after the handler unwinds, which races the
// client observing the aborted transfer).
func waitCounter(t *testing.T, srv *httptest.Server, planID, key string, want float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		res := resilienceMetrics(t, srv, planID)
		if v, _ := res[key].(float64); v >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("resilience[%q] never reached %v: %v", key, want, resilienceMetrics(t, srv, planID))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMidStreamDisconnect: a client that goes away mid-response aborts
// the repair promptly on every engine × format combination; the handler
// unwinds (no goroutine leak), the spool is reclaimed, and the
// disconnect is counted. The shard.slow fault paces the server so the
// cancel always lands while chunks remain — without it the repair could
// finish before the disconnect is seen, and the test would assert
// nothing.
func TestMidStreamDisconnect(t *testing.T) {
	leakCheck(t)
	spoolDirCheck(t)

	plan, research, archive := testData(t, 31, 250, 12500, 30)
	inj := faultinject.New(1).Set(faultinject.ShardSlow, faultinject.Rule{Every: 1, Delay: 200 * time.Millisecond})
	srv, _, planID := resilienceServer(t, plan, ServerOptions{MetricWindow: 4096, Fault: inj})
	calID := fitOverHTTP(t, srv, planID, research)
	unlabelled := archive.DropS()

	cases := []struct {
		name        string
		query       string
		contentType string
		body        []byte
	}{
		{"labelled-csv", "plan=" + planID + "&seed=3&workers=2", "text/csv", tableCSV(t, archive)},
		{"labelled-ndjson", "plan=" + planID + "&seed=3&workers=2&format=ndjson", "application/x-ndjson", tableNDJSON(t, archive)},
		{"blind-csv", "calibration=" + calID + "&method=hard&seed=3&workers=2", "text/csv", tableCSV(t, unlabelled)},
		{"blind-ndjson", "calibration=" + calID + "&method=hard&seed=3&workers=2&format=ndjson", "application/x-ndjson", tableNDJSON(t, unlabelled)},
	}
	disconnects := 0.0
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/repair?"+tc.query, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", tc.contentType)
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatalf("response never started: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("repair: %s: %s", resp.Status, body)
			}
			// Read a little of the stream, then vanish.
			if _, err := io.ReadFull(resp.Body, make([]byte, 512)); err != nil {
				t.Fatalf("reading stream prefix: %v", err)
			}
			cancel()
			if _, err := io.Copy(io.Discard, resp.Body); err == nil {
				t.Error("disconnected transfer completed cleanly — the abort was not surfaced")
			}
			disconnects++
			waitCounter(t, srv, planID, "disconnects", disconnects)
		})
	}
}

// TestAdmissionGateShedsConcurrent: with a one-request budget, a second
// repair is refused with 429 + Retry-After while the first is still
// uploading, and admitted again once the slot frees.
func TestAdmissionGateShedsConcurrent(t *testing.T) {
	leakCheck(t)
	plan, _, archive := testData(t, 32, 250, 600, 30)
	srv, _, planID := resilienceServer(t, plan, ServerOptions{MetricWindow: 4096, MaxInflight: 1})
	body := tableCSV(t, archive)
	url := srv.URL + "/v1/repair?plan=" + planID + "&seed=1&workers=1"

	// First request: hold the slot by holding the upload open.
	pr, pw := io.Pipe()
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(url, "text/csv", pr)
		if err != nil {
			done <- result{0, err}
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		done <- result{resp.StatusCode, nil}
	}()
	if _, err := pw.Write(body[:16]); err != nil {
		t.Fatal(err)
	}
	// The write above only returns once the handler is consuming the
	// body, which is past the gate: the slot is held.

	resp, err := http.Post(url, "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	shedBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload request: %s: %s, want 429", resp.Status, shedBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After hint")
	}

	// Finish the first upload; its repair completes normally.
	if _, err := pw.Write(body[16:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	first := <-done
	if first.err != nil || first.status != http.StatusOK {
		t.Fatalf("held request finished with (%d, %v), want 200", first.status, first.err)
	}

	// Slot free again: the next request is admitted.
	resp2, err := http.Post(url, "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-drain request: %s, want 200", resp2.Status)
	}
	if res := resilienceMetrics(t, srv, planID); res["shed"].(float64) != 1 {
		t.Errorf("shed counter = %v, want 1", res["shed"])
	}
}

// TestQueuedBytesBudgetSheds: a spool budget smaller than one
// reservation chunk sheds every repair upload with 429.
func TestQueuedBytesBudgetSheds(t *testing.T) {
	plan, _, archive := testData(t, 33, 250, 400, 30)
	srv, _, planID := resilienceServer(t, plan, ServerOptions{MetricWindow: 4096, MaxQueuedBytes: 1024})
	resp, err := http.Post(srv.URL+"/v1/repair?plan="+planID+"&seed=1", "text/csv", bytes.NewReader(tableCSV(t, archive)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("spool over budget: %s, want 429", resp.Status)
	}
	if res := resilienceMetrics(t, srv, planID); res["shed"].(float64) != 1 {
		t.Errorf("shed counter = %v, want 1", res["shed"])
	}
}

// TestDeadlineExceededBeforeFirstByte: a request budget the repair
// cannot meet answers a clean 503 when nothing has been sent, and is
// counted. The slow fault makes the overrun deterministic.
func TestDeadlineExceededBeforeFirstByte(t *testing.T) {
	leakCheck(t)
	spoolDirCheck(t)
	plan, _, archive := testData(t, 34, 250, 400, 30)
	inj := faultinject.New(2).Set(faultinject.ShardSlow, faultinject.Rule{Every: 1, Delay: 150 * time.Millisecond})
	srv, _, planID := resilienceServer(t, plan, ServerOptions{MetricWindow: 4096, Fault: inj})

	resp, err := http.Post(srv.URL+"/v1/repair?plan="+planID+"&seed=1&workers=1&deadline_ms=30", "text/csv", bytes.NewReader(tableCSV(t, archive)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("blown deadline: %s: %s, want 503", resp.Status, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("503 body does not name the deadline: %s", body)
	}
	waitCounter(t, srv, planID, "deadline_exceeded", 1)
}

// TestWorkerPanicIsolation: an injected worker panic fails its own
// request with a typed 500 naming the shard; the process, the engine
// binding and the next request are untouched, and the output after the
// fault is byte-identical to an unfaulted serve.
func TestWorkerPanicIsolation(t *testing.T) {
	leakCheck(t)
	plan, _, archive := testData(t, 35, 250, 600, 30)
	body := tableCSV(t, archive)

	// Reference bytes from an unfaulted server.
	ref, _, refID := resilienceServer(t, plan, ServerOptions{MetricWindow: 4096})
	refResp, err := http.Post(ref.URL+"/v1/repair?plan="+refID+"&seed=9&workers=1", "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(refResp.Body)
	refResp.Body.Close()
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("reference repair: %s", refResp.Status)
	}

	inj := faultinject.New(5).Set(faultinject.ShardPanic, faultinject.Rule{Every: 1, Limit: 1})
	srv, _, planID := resilienceServer(t, plan, ServerOptions{MetricWindow: 4096, Fault: inj})

	resp, err := http.Post(srv.URL+"/v1/repair?plan="+planID+"&seed=9&workers=1", "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking repair: %s: %s, want 500", resp.Status, errBody)
	}
	if !strings.Contains(string(errBody), "panic in shard") {
		t.Errorf("500 body does not carry the shard coordinates: %s", errBody)
	}

	// The panic was the request's, not the process's: the next identical
	// request (fault exhausted) succeeds byte-identically.
	resp2, err := http.Post(srv.URL+"/v1/repair?plan="+planID+"&seed=9&workers=1", "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-panic repair: %s, want 200", resp2.Status)
	}
	if !bytes.Equal(got, want) {
		t.Error("post-panic repair bytes differ from the unfaulted reference")
	}
	if res := resilienceMetrics(t, srv, planID); res["panics"].(float64) != 1 {
		t.Errorf("panics counter = %v, want 1", res["panics"])
	}
}

// TestCorruptPlanSurfacesQuarantine: a plan whose disk bytes were
// corrupted behind the store's back fails its repair with the typed 500
// and shows up in the metrics quarantine counter — while healthy plans
// on the same server keep serving.
func TestCorruptPlanSurfacesQuarantine(t *testing.T) {
	dir := t.TempDir()
	store, err := planstore.Open(dir, planstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	badPlan, _, archive := testData(t, 36, 250, 300, 30)
	goodPlan, _, _ := testData(t, 37, 250, 300, 25)
	badID, _, err := store.Put(badPlan)
	if err != nil {
		t.Fatal(err)
	}
	goodID, _, err := store.Put(goodPlan)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, badID+".json"), []byte("not a plan"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory (cold cache) backs the server,
	// so the first bind reads the corrupt bytes from disk.
	store2, err := planstore.Open(dir, planstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	handler, err := NewServer(store2, ServerOptions{MetricWindow: 4096})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/repair?plan="+badID+"&seed=1", "text/csv", bytes.NewReader(tableCSV(t, archive)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt plan repair: %s: %s, want 500", resp.Status, body)
	}
	if !strings.Contains(string(body), "quarantined") {
		t.Errorf("500 body does not mention quarantine: %s", body)
	}
	if _, err := os.Stat(filepath.Join(store2.QuarantineDir(), badID+".json")); err != nil {
		t.Errorf("corrupt plan not in quarantine: %v", err)
	}
	res := resilienceMetrics(t, srv, goodID)
	if res["quarantined"].(float64) != 1 {
		t.Errorf("quarantined counter = %v, want 1", res["quarantined"])
	}
}

// TestDrainRefusesNewWork: after BeginDrain, repairs answer 503 with
// Retry-After, /readyz flips unready, and /healthz stays alive — the
// liveness/readiness split that lets an orchestrator drain without
// restarting.
func TestDrainRefusesNewWork(t *testing.T) {
	plan, _, archive := testData(t, 38, 250, 300, 30)
	srv, handler, planID := resilienceServer(t, plan, ServerOptions{MetricWindow: 4096})

	// Ready before the drain.
	ready, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain: %s, want 200", ready.Status)
	}

	handler.BeginDrain()

	resp, err := http.Post(srv.URL+"/v1/repair?plan="+planID+"&seed=1", "text/csv", bytes.NewReader(tableCSV(t, archive)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("repair while draining: %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 carries no Retry-After hint")
	}

	unready, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var probe struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(unready.Body).Decode(&probe); err != nil {
		t.Fatal(err)
	}
	unready.Body.Close()
	if unready.StatusCode != http.StatusServiceUnavailable || probe.Ready || probe.Reason != "draining" {
		t.Fatalf("/readyz while draining: %s %+v, want 503 draining", unready.Status, probe)
	}

	alive, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	alive.Body.Close()
	if alive.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining: %s, want 200 (liveness is not readiness)", alive.Status)
	}
}

// TestBadDeadlineRejected: a malformed or non-positive deadline_ms is a
// 400, not a silently ignored knob.
func TestBadDeadlineRejected(t *testing.T) {
	plan, _, archive := testData(t, 39, 250, 100, 25)
	srv, _, planID := resilienceServer(t, plan, ServerOptions{MetricWindow: 4096})
	for _, v := range []string{"abc", "0", "-5"} {
		resp, err := http.Post(srv.URL+"/v1/repair?plan="+planID+"&deadline_ms="+v, "text/csv", bytes.NewReader(tableCSV(t, archive)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("deadline_ms=%s: %s, want 400", v, resp.Status)
		}
	}
}
