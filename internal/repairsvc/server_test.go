package repairsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/planstore"
	"otfair/internal/rng"
)

// newTestServer boots a server over a fresh store and registers the plan.
func newTestServer(t *testing.T, plan *core.Plan) (*httptest.Server, string) {
	t.Helper()
	store, err := planstore.Open(t.TempDir(), planstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := store.Put(plan)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := NewServer(store, ServerOptions{MetricWindow: 4096})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv, id
}

func postCSV(t *testing.T, url string, tbl *dataset.Table) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServeRepairByteIdentical is the serve-path equivalence test: POST
// /v1/repair with workers=1 and a fixed seed produces byte-identical output
// to the in-process Repairer.RepairTable at the same seed — design → store
// → serve → repair equals design → repair.
func TestServeRepairByteIdentical(t *testing.T) {
	plan, _, archive := testData(t, 21, 300, 2000, 40)
	srv, id := newTestServer(t, plan)

	resp := postCSV(t, srv.URL+"/v1/repair?plan="+id+"&seed=17&workers=1", archive)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("repair: %s: %s", resp.Status, body)
	}
	served, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	rp, err := core.NewRepairer(plan, rng.New(17), core.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := rp.RepairTable(archive)
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV bytes.Buffer
	if err := want.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, wantCSV.Bytes()) {
		t.Fatalf("served bytes differ from in-process repair (%d vs %d bytes)", len(served), wantCSV.Len())
	}
}

// TestServeRepairParallelDeterministic checks that a sharded serve repair
// is reproducible across identical requests.
func TestServeRepairParallelDeterministic(t *testing.T) {
	plan, _, archive := testData(t, 22, 250, 1200, 30)
	srv, id := newTestServer(t, plan)
	url := srv.URL + "/v1/repair?plan=" + id + "&seed=5&workers=4"
	read := func() []byte {
		resp := postCSV(t, url, archive)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("repair: %s", resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := read(), read(); !bytes.Equal(a, b) {
		t.Fatal("identical sharded requests returned different bytes")
	}
}

func TestServeNDJSONRoundTrip(t *testing.T) {
	plan, _, archive := testData(t, 23, 250, 400, 30)
	srv, id := newTestServer(t, plan)

	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	for i := 0; i < archive.Len(); i++ {
		rec := archive.At(i)
		s := rec.S
		if err := enc.Encode(wireRecord{X: rec.X, S: &s, U: rec.U}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(srv.URL+"/v1/repair?plan="+id+"&seed=1&workers=1&format=ndjson", "application/x-ndjson", &in)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("repair: %s: %s", resp.Status, body)
	}
	out, err := dataset.NewTable(archive.Dim(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var wr wireRecord
		if err := dec.Decode(&wr); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		rec := dataset.Record{X: wr.X, U: wr.U, S: dataset.SUnknown}
		if wr.S != nil {
			rec.S = *wr.S
		}
		if err := out.Append(rec); err != nil {
			t.Fatal(err)
		}
	}

	// NDJSON and CSV are transport encodings of the same repair: the
	// repaired values must match the in-process reference exactly (floats
	// survive JSON round-trips bit-exactly at default precision).
	rp, err := core.NewRepairer(plan, rng.New(1), core.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := rp.RepairTable(archive)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, out, want)
}

func TestPlanLifecycleOverHTTP(t *testing.T) {
	plan, research, _ := testData(t, 24, 300, 10, 30)
	srv, id := newTestServer(t, plan)

	// Upload the serialized plan: content addressing must dedupe.
	raw, err := plan.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/plans", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		ID      string `json:"id"`
		Existed bool   `json:"existed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if up.ID != id || !up.Existed {
		t.Errorf("upload: id=%s existed=%v, want %s/true", up.ID, up.Existed, id)
	}

	// Designing over HTTP from the same research data and options also
	// lands on the same fingerprint (Algorithm 1 is pure).
	resp = postCSV(t, srv.URL+"/v1/plans?nq=30", research)
	var designed struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&designed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if designed.ID != id {
		t.Errorf("design-over-HTTP id %s != stored %s", designed.ID, id)
	}

	// Listing and download.
	resp, err = http.Get(srv.URL + "/v1/plans")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Plans []string `json:"plans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Plans) != 1 || list.Plans[0] != id {
		t.Errorf("plans = %v", list.Plans)
	}
	resp, err = http.Get(srv.URL + "/v1/plans/" + id)
	if err != nil {
		t.Fatal(err)
	}
	downloaded, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(downloaded, raw) {
		t.Error("downloaded plan differs from canonical bytes")
	}

	// Unknown and malformed plan IDs.
	resp, err = http.Get(srv.URL + "/v1/plans/ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown plan: %s, want 404", resp.Status)
	}
	resp, err = http.Post(srv.URL+"/v1/repair?plan=nope", "text/csv", strings.NewReader("s,u,x1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("malformed plan id accepted")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	plan, _, archive := testData(t, 25, 300, 1500, 40)
	srv, id := newTestServer(t, plan)

	resp := postCSV(t, srv.URL+"/v1/repair?plan="+id+"&seed=2&workers=1", archive)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err := http.Get(srv.URL + "/v1/metrics?plan=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Engine struct {
			Records int64 `json:"records"`
			Values  int64 `json:"values"`
		} `json:"engine"`
		Drift struct {
			Seen         int64 `json:"seen"`
			WatchedCells int   `json:"watched_cells"`
		} `json:"drift"`
		Metric struct {
			EOriginal    *float64 `json:"e_original"`
			ERepaired    *float64 `json:"e_repaired"`
			WindowFilled int      `json:"window_filled"`
		} `json:"metric"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Engine.Records != int64(archive.Len()) {
		t.Errorf("records = %d, want %d", m.Engine.Records, archive.Len())
	}
	if m.Engine.Values != int64(archive.Len()*archive.Dim()) {
		t.Errorf("values = %d, want %d", m.Engine.Values, archive.Len()*archive.Dim())
	}
	if m.Drift.Seen != int64(archive.Len()) || m.Drift.WatchedCells == 0 {
		t.Errorf("drift seen=%d cells=%d", m.Drift.Seen, m.Drift.WatchedCells)
	}
	if m.Metric.EOriginal == nil || m.Metric.ERepaired == nil {
		t.Fatal("metrics endpoint reported no E values")
	}
	if !(*m.Metric.ERepaired < *m.Metric.EOriginal) {
		t.Errorf("E did not improve: %v -> %v", *m.Metric.EOriginal, *m.Metric.ERepaired)
	}
	if m.Metric.WindowFilled != archive.Len() {
		t.Errorf("window filled = %d, want %d", m.Metric.WindowFilled, archive.Len())
	}

	// Healthz while at it.
	resp2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("healthz: %s", resp2.Status)
	}
}

// TestServerConcurrentTraffic mixes repair, metrics and list requests from
// many goroutines; under -race this certifies the serving layer.
func TestServerConcurrentTraffic(t *testing.T) {
	plan, _, archive := testData(t, 26, 250, 600, 30)
	srv, id := newTestServer(t, plan)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				resp := postCSV(t, fmt.Sprintf("%s/v1/repair?plan=%s&seed=%d&workers=2", srv.URL, id, g+1), archive)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("repair: %s", resp.Status)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mresp, err := http.Get(srv.URL + "/v1/metrics?plan=" + id)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, mresp.Body)
				mresp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
}

// TestBoundPlanStateEviction checks that the serving tier's per-plan state
// is LRU-bounded: touching more plans than MaxBoundPlans evicts the
// coldest, while the store keeps serving every plan.
func TestBoundPlanStateEviction(t *testing.T) {
	store, err := planstore.Open(t.TempDir(), planstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for seed := uint64(40); seed < 44; seed++ {
		plan, _, _ := testData(t, seed, 200, 10, 12)
		id, _, err := store.Put(plan)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	handler, err := NewServer(store, ServerOptions{MaxBoundPlans: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	for _, id := range ids {
		resp, err := http.Get(srv.URL + "/v1/metrics?plan=" + id)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics %s: %s", id, resp.Status)
		}
	}
	handler.mu.Lock()
	bound := len(handler.states)
	handler.mu.Unlock()
	if bound != 2 {
		t.Errorf("bound states = %d, want 2", bound)
	}
	// Evicted plans rebind transparently on the next touch.
	resp, err := http.Get(srv.URL + "/v1/metrics?plan=" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("rebind after eviction: %s", resp.Status)
	}
}
