// Package repairsvc is the serving layer of the repository: a batched,
// sharded implementation of Algorithm 2 (the Engine) and an HTTP front end
// (the Server) that together turn a once-designed repair plan into a
// long-running archival-repair service — the deployment mode the paper's
// design/apply split exists for.
//
// The Engine owns one immutable core.PlanSampler — every (u, s, feature,
// support-row) multinomial of the plan resolved into an alias table once,
// at bind time — and fans incoming records across worker goroutines, each
// holding its own core.Repairer over the shared sampler with a
// deterministic rng.Split stream. Determinism contract:
//
//   - Workers == 1 consumes the caller's RNG stream directly, so output is
//     byte-identical to core.Repairer.RepairTable / RepairStream with the
//     same seed — the property the serve-path equivalence tests pin.
//   - Workers > 1 shards a table contiguously with per-shard streams
//     r.Split(w), byte-identical to core.RepairTableParallel; streams are
//     repaired in chunks with per-(chunk, shard) streams, reproducible for
//     a fixed (seed, workers, chunk size) regardless of scheduling.
//
// The shard/chunk machinery itself — the split formulas, the clamp rule,
// the serial drain — lives in internal/shardrun, shared with the blind
// engine (blindsvc), so the determinism contract has exactly one owner.
package repairsvc

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/faultinject"
	"otfair/internal/rng"
	"otfair/internal/shardrun"
)

// ctxCheckEvery is how many records the serial streaming path repairs
// between context polls: cancellation lands within this many records, and
// the hot path pays a counter decrement, not a context mutex, per record.
const ctxCheckEvery = 64

// Options configures an Engine.
type Options struct {
	// Workers is the shard fan-out (0 = GOMAXPROCS, 1 = the serial
	// byte-compatible mode). Negative values are rejected with a
	// *shardrun.OptionError.
	Workers int
	// ChunkSize is the number of records repaired per parallel wave in
	// streaming mode (0 = shardrun.DefaultChunkSize). Larger chunks
	// amortize fan-out overhead; smaller chunks bound latency and memory.
	// Negative values are rejected with a *shardrun.OptionError.
	ChunkSize int
	// Repair is passed through to every shard repairer.
	Repair core.RepairOptions
	// Fault is the fault-injection harness (nil in production): each shard
	// consults the shard.slow and shard.panic points before repairing its
	// span, so the soak can exercise slow workers and panic isolation.
	Fault *faultinject.Injector
	// Obs receives shard and chunk timings from the runner (nil =
	// uninstrumented). Like Fault it never influences execution, so output
	// is byte-identical with or without it.
	Obs *shardrun.Obs
}

// withDefaults validates and defaults the sharding knobs through
// shardrun.Options — one shared path for both serving engines, so the two
// can no longer drift in how they treat nonsensical values.
func (o Options) withDefaults() (Options, error) {
	so, err := shardrun.Options{Workers: o.Workers, ChunkSize: o.ChunkSize}.WithDefaults()
	if err != nil {
		return o, err
	}
	o.Workers, o.ChunkSize = so.Workers, so.ChunkSize
	return o, nil
}

// shard returns the (validated) shardrun view of the options.
func (o Options) shard() shardrun.Options {
	return shardrun.Options{Workers: o.Workers, ChunkSize: o.ChunkSize, Obs: o.Obs}
}

// Totals are the engine's cumulative serving counters, aggregated across
// all requests and shards. Table repairs are all-or-nothing: a failed
// RepairTable contributes nothing (its output is discarded). Stream
// repairs count the records actually emitted to the sink, so a request
// that fails mid-stream still accounts the traffic it served.
type Totals struct {
	// Records and Values count repaired records and feature values.
	Records, Values int64
	// Clamped and EmptyRowFallbacks aggregate core.Diagnostics.
	Clamped, EmptyRowFallbacks int64
}

// Engine is a batched repairer bound to one plan. It is safe for
// concurrent use: all mutable state is atomic, and the sampler is
// immutable.
type Engine struct {
	plan    *core.Plan
	sampler *core.PlanSampler
	opts    Options

	records   atomic.Int64
	values    atomic.Int64
	clamped   atomic.Int64
	fallbacks atomic.Int64
}

// NewEngine precomputes the plan's alias tables and returns an engine.
func NewEngine(plan *core.Plan, opts Options) (*Engine, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	sampler, err := core.NewPlanSampler(plan)
	if err != nil {
		return nil, err
	}
	return &Engine{plan: plan, sampler: sampler, opts: opts}, nil
}

// Plan returns the bound plan.
func (e *Engine) Plan() *core.Plan { return e.plan }

// Sampler returns the precomputed (immutable) alias-table state, so other
// engines over the same plan — the blind serving layer binds one per
// calibration — can share it instead of rebuilding.
func (e *Engine) Sampler() *core.PlanSampler { return e.sampler }

// withWorkers derives an engine with a different fan-out over the same
// plan and precomputed sampler — the per-request ?workers= override path,
// which must not rebuild the alias tables. Counters start at zero; the
// caller folds them back into the primary engine via account.
func (e *Engine) withWorkers(workers int) (*Engine, error) {
	opts := e.opts
	opts.Workers = workers
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Engine{plan: e.plan, sampler: e.sampler, opts: opts}, nil
}

// Totals returns a snapshot of the cumulative counters.
func (e *Engine) Totals() Totals {
	return Totals{
		Records:           e.records.Load(),
		Values:            e.values.Load(),
		Clamped:           e.clamped.Load(),
		EmptyRowFallbacks: e.fallbacks.Load(),
	}
}

func (e *Engine) account(n int, d core.Diagnostics) {
	e.records.Add(int64(n))
	e.values.Add(d.Repaired)
	e.clamped.Add(d.Clamped)
	e.fallbacks.Add(d.EmptyRowFallbacks)
}

// RepairTable repairs a table. With Workers == 1 it is byte-identical to
// core.Repairer.RepairTable on the same RNG; with Workers == w > 1 it is
// byte-identical to core.RepairTableParallel with w workers, including its
// clamp to a single Split(0) shard on tables smaller than w.
func (e *Engine) RepairTable(r *rng.RNG, t *dataset.Table) (*dataset.Table, core.Diagnostics, error) {
	return e.RepairTableContext(context.Background(), r, t)
}

// RepairTableContext is RepairTable under a context: a ctx already
// cancelled at entry fails before any repair with ctx.Err(). Table repair
// is all-or-nothing (the output table is returned whole or not at all),
// so unlike the streaming path there is no truncation contract to honour
// mid-table; the entry check is what a serving layer needs to drop work
// for an abandoned request before paying for it.
func (e *Engine) RepairTableContext(ctx context.Context, r *rng.RNG, t *dataset.Table) (*dataset.Table, core.Diagnostics, error) {
	var diag core.Diagnostics
	if r == nil {
		return nil, diag, errors.New("repairsvc: nil rng")
	}
	if t == nil {
		return nil, diag, errors.New("repairsvc: nil table")
	}
	if t.Dim() != e.plan.Dim {
		return nil, diag, fmt.Errorf("repairsvc: table dimension %d does not match plan %d", t.Dim(), e.plan.Dim)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, diag, err
		}
	}
	if e.opts.Workers == 1 {
		rp, err := core.NewRepairerShared(e.sampler, r, e.opts.Repair)
		if err != nil {
			return nil, diag, err
		}
		var out *dataset.Table
		// Serial table repair runs in the calling goroutine; isolate it the
		// way the fan-out isolates its workers, so a panicking repair fails
		// this request with a typed error instead of the process.
		err = shardrun.IsolatedObs(e.opts.Obs, func() error {
			e.opts.Fault.Delay(faultinject.ShardSlow)
			e.opts.Fault.Panic(faultinject.ShardPanic)
			var rerr error
			out, rerr = rp.RepairTable(t)
			return rerr
		})
		if err != nil {
			return nil, diag, err
		}
		diag = rp.Diagnostics()
		e.account(t.Len(), diag)
		return out, diag, nil
	}
	out, diag, err := core.RepairTableParallelSharedObs(e.sampler, r, e.opts.Repair, t, e.opts.Workers, e.opts.Obs)
	if err != nil {
		return nil, diag, err
	}
	e.account(t.Len(), diag)
	return out, diag, nil
}

// RepairStream consumes a record stream and emits repaired records to sink
// in input order. With one worker it holds a single repairer over the
// caller's stream (byte-identical to core.Repairer.RepairStream); with more
// it repairs chunks of ChunkSize across per-(chunk, shard) split streams,
// holding at most one chunk in memory. The sink always runs serially, in
// order, from the calling goroutine.
func (e *Engine) RepairStream(r *rng.RNG, in dataset.Stream, sink func(dataset.Record) error) (int, core.Diagnostics, error) {
	return e.RepairStreamContext(context.Background(), r, in, sink)
}

// RepairStreamContext is RepairStream under a context — the serving
// layer's per-request deadline and client-disconnect path. Cancellation
// surfaces as ctx.Err() within ctxCheckEvery records (serial mode) or at
// the next chunk boundary (chunked mode), and only ever truncates the
// sink's output: every record delivered before the cancellation is
// byte-identical to the uncancelled run at the same seed, because the
// contiguous-shard RNG split formula depends on positions and chunk
// indices, never on where the stream stops.
func (e *Engine) RepairStreamContext(ctx context.Context, r *rng.RNG, in dataset.Stream, sink func(dataset.Record) error) (int, core.Diagnostics, error) {
	var diag core.Diagnostics
	if r == nil {
		return 0, diag, errors.New("repairsvc: nil rng")
	}
	if in == nil {
		return 0, diag, errors.New("repairsvc: nil stream")
	}
	if in.Dim() != e.plan.Dim {
		return 0, diag, fmt.Errorf("repairsvc: stream dimension %d does not match plan %d", in.Dim(), e.plan.Dim)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if e.opts.Workers <= 1 {
		rp, err := core.NewRepairerShared(e.sampler, r, e.opts.Repair)
		if err != nil {
			return 0, diag, err
		}
		var n int
		err = shardrun.IsolatedObs(e.opts.Obs, func() error {
			e.opts.Fault.Delay(faultinject.ShardSlow)
			e.opts.Fault.Panic(faultinject.ShardPanic)
			var serr error
			n, serr = rp.RepairStream(dataset.WithContext(ctx, in, ctxCheckEvery), sink)
			return serr
		})
		diag = rp.Diagnostics()
		e.account(n, diag)
		return n, diag, err
	}
	return e.repairStreamChunked(ctx, r, in, sink)
}

// repairStreamChunked is the parallel streaming body, delegated to
// shardrun.Stream (per-(chunk, shard) split streams, bounded memory, serial
// sink); emitted traffic is accounted on every exit path, matching the
// serial mode.
func (e *Engine) repairStreamChunked(ctx context.Context, r *rng.RNG, in dataset.Stream, sink func(dataset.Record) error) (total int, diag core.Diagnostics, err error) {
	defer func() { e.account(total, diag) }()
	// A chunk never uses more shards than it has records, so per-shard
	// state is sized by min(Workers, ChunkSize) — a request-supplied
	// fan-out of a billion must not balloon the allocation.
	diags := make([]core.Diagnostics, shardrun.Slots(e.opts.Workers, e.opts.ChunkSize))
	err = shardrun.Stream(ctx, r, e.opts.shard(), in.Next,
		func(_ uint64, w int, rr *rng.RNG, chunk, out []dataset.Record, lo, hi int) error {
			e.opts.Fault.Delay(faultinject.ShardSlow)
			e.opts.Fault.Panic(faultinject.ShardPanic)
			rp, err := core.NewRepairerShared(e.sampler, rr, e.opts.Repair)
			if err != nil {
				return err
			}
			for i := lo; i < hi; i++ {
				rec, err := rp.RepairRecord(chunk[i])
				if err != nil {
					return err
				}
				out[i] = rec
			}
			diags[w] = rp.Diagnostics()
			return nil
		},
		func(out []dataset.Record) error {
			// Merge the chunk's per-shard diagnostics in shard-index order
			// (bit-stable aggregation), then sink serially in input order.
			for w := range diags {
				diag.Merge(diags[w])
				diags[w] = core.Diagnostics{}
			}
			for _, rec := range out {
				if err := sink(rec); err != nil {
					return err
				}
				total++
			}
			return nil
		})
	return total, diag, err
}
