package repairsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"otfair/internal/blind"
	"otfair/internal/blindsvc"
	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/driftwatch"
	"otfair/internal/fairmetrics"
	"otfair/internal/faultinject"
	"otfair/internal/kde"
	"otfair/internal/monitor"
	"otfair/internal/obs"
	"otfair/internal/planstore"
	"otfair/internal/researchfeed"
	"otfair/internal/rng"
)

// ServerOptions configures the HTTP front end.
type ServerOptions struct {
	// Workers is the default repair fan-out for requests that do not set
	// ?workers= (0 = GOMAXPROCS).
	Workers int
	// MetricWindow is the per-plan rolling window (records) the /v1/metrics
	// E estimates are computed on (default 2048).
	MetricWindow int
	// Metric configures the E estimator used by /v1/metrics.
	Metric fairmetrics.Config
	// Monitor configures the per-plan drift monitor fed by repair traffic.
	Monitor monitor.Options
	// MaxAlarms bounds the recent-alarm ring kept per plan (default 32).
	MaxAlarms int
	// MaxBodyBytes caps request bodies (default 1 GiB, -1 = unlimited).
	// The repair spool and the design/upload readers honour it, so one
	// request cannot fill the disk or RAM.
	MaxBodyBytes int64
	// MaxBoundPlans bounds the per-plan serving states held in memory
	// (default 64). Each bound plan pins its engine's alias tables and two
	// metric windows; touching more distinct plans than this evicts the
	// least-recently-used state (its cumulative counters, windows and
	// recent alarms reset if the plan is bound again — the durable tier is
	// the store, not the serving state).
	MaxBoundPlans int
	// CalibrationCacheSize bounds the calibration store's in-memory LRU
	// (default: the planstore default). cmd/fairserved wires -cache here
	// so both artefact tiers size together.
	CalibrationCacheSize int
	// MaxBoundCalibrations bounds the blind engines bound per plan
	// (default 8). Each holds the pooled plan's alias tables, so without a
	// cap a stream of novel calibrations against one hot plan would grow
	// memory without limit; the least-recently-used engine is evicted and
	// rebinds transparently on the next touch.
	MaxBoundCalibrations int
	// MaxInflight bounds concurrently admitted repair requests
	// (default 64, -1 = unlimited). Excess load is shed with 429 and a
	// Retry-After hint instead of queueing without bound.
	MaxInflight int
	// MaxQueuedBytes bounds the total request-body bytes spooled to disk
	// across all admitted repair requests (default 4 GiB, -1 = unlimited).
	// A spool that would exceed it is shed with 429 mid-upload.
	MaxQueuedBytes int64
	// DefaultDeadline is the server-wide per-request repair budget
	// (0 = none). Requests may tighten or set it with ?deadline_ms=; a
	// blown budget aborts the repair at the engines' cancellation
	// boundaries and answers 503 when no byte has been sent.
	DefaultDeadline time.Duration
	// RetryAfterSeconds is the Retry-After hint on shed and draining
	// responses (default 1).
	RetryAfterSeconds int
	// Fault is the fault-injection harness (nil in production), passed
	// through to every engine the server binds. The stores carry their
	// own injector via planstore.Options.
	Fault *faultinject.Injector
	// Registry receives every Prometheus family the server exports
	// (default: a fresh registry). Passing one in lets cmd/fairserved add
	// process-level series next to the server's and serve them all from
	// GET /metrics.
	Registry *obs.Registry
	// SlowRequest is the total-duration threshold at and above which a
	// repair request is counted slow, retained in the slow ring (surfaced
	// by /v1/metrics) and logged at Warn (0 = slow tracking off).
	SlowRequest time.Duration
	// TraceSample turns on fine-grained per-record decode/encode span
	// timing for every N-th repair request (1 = all, 0 = never). Coarse
	// request-level stage spans are always recorded; sampling only gates
	// the spans that cost a clock read per record.
	TraceSample uint64
	// Logger receives structured request logs (nil = discard). Repair
	// requests log at Info with their request ID; slow ones at Warn with a
	// stage breakdown.
	Logger *slog.Logger
	// DriftWatch, when non-nil, arms the drift-observability control loop:
	// every bound plan gets a driftwatch.Watcher fed by the monitor's KS/PSI
	// ratios and the blind engines' confidence drift, and an alarmed plan
	// triggers the recalibration loop (refit from RecalibrateFrom, canary on
	// a reservoir of recent traffic, atomic ref swap on pass). The loop runs
	// in its own goroutine off the serve path, and repairs keep pinning
	// their explicit fingerprints — a swap never changes the bytes of any
	// in-flight or future request.
	DriftWatch *driftwatch.Config
	// RecalibrateFrom is the fresh research CSV the loop refits from. An
	// alarmed plan with no configured source finishes refit_failed — the
	// alarm is still exported, there is just nothing to act with.
	RecalibrateFrom string
	// RecalibrateURL is an HTTP research feed the loop refits from (ETag
	// change detection, per-attempt timeouts). Source precedence:
	// FeedSource, then RecalibrateURL, then RecalibrateFrom, then the
	// staged namespace when ResearchToken enables it.
	RecalibrateURL string
	// ResearchToken, when non-empty, enables the authenticated
	// POST /v1/research staging endpoint; with no URL or file source
	// configured, staged sets become the drift loop's refit source.
	ResearchToken string
	// FeedSource overrides the refit source entirely (tests, embedders).
	FeedSource researchfeed.Source
	// FeedRetry is the seeded backoff retry policy wrapped around every
	// refit fetch.
	FeedRetry researchfeed.RetryPolicy
	// FeedBreaker tunes the feed circuit breaker.
	FeedBreaker researchfeed.BreakerConfig
	// FeedAttemptTimeout bounds each HTTP feed attempt when the server
	// builds the source from RecalibrateURL (default 10s).
	FeedAttemptTimeout time.Duration
	// FeedMinRecords is the sanity floor a fetched research set must
	// clear before it may refit a plan (0 = default 16, negative = no
	// floor). POST /v1/research enforces the same floor at the door.
	FeedMinRecords int
	// DriftCheckEvery, when positive (with DriftWatch armed), runs a
	// timer-driven drift check over every bound plan so idle-but-drifted
	// artefacts still recalibrate without waiting for repair traffic
	// (0 = checks only ride repair requests).
	DriftCheckEvery time.Duration
	// RefitWorkers bounds concurrent refits across all lineages
	// (default 1) — the shared refit budget.
	RefitWorkers int
	// RefitQueue bounds refit jobs waiting for a worker (default 4); an
	// alarm past it lands refit_failed instead of queueing unboundedly.
	RefitQueue int
	// Clock injects the wall clock the feed and drift timer use (nil =
	// system clock). The serve path never reads it — determinism there
	// is lint-enforced.
	Clock researchfeed.Clock
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MetricWindow <= 0 {
		o.MetricWindow = 2048
	}
	if o.MaxAlarms <= 0 {
		o.MaxAlarms = 32
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 1 << 30
	}
	if o.MaxBoundPlans <= 0 {
		o.MaxBoundPlans = 64
	}
	if o.MaxBoundCalibrations <= 0 {
		o.MaxBoundCalibrations = 8
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 64
	}
	if o.MaxQueuedBytes == 0 {
		o.MaxQueuedBytes = 4 << 30
	}
	if o.RetryAfterSeconds <= 0 {
		o.RetryAfterSeconds = 1
	}
	if o.FeedMinRecords == 0 {
		o.FeedMinRecords = 16
	}
	if o.RefitWorkers <= 0 {
		o.RefitWorkers = 1
	}
	if o.RefitQueue <= 0 {
		o.RefitQueue = 4
	}
	if o.Clock == nil {
		o.Clock = researchfeed.SystemClock{}
	}
	return o
}

// limitBody applies the configured request-body cap; exceeding it makes
// reads fail with *http.MaxBytesError, reported as 413.
func (s *Server) limitBody(w http.ResponseWriter, r *http.Request) {
	if s.opts.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
}

// errStatus maps an error to its HTTP status: body-cap overruns are 413,
// store misses 404, malformed plan IDs 400, anything else 500.
func errStatus(err error) int {
	return errStatusOr(err, http.StatusInternalServerError)
}

// errCalibrationMismatch marks a plan/calibration pairing the client got
// wrong — a conflict between two valid artefacts, not a server fault.
var errCalibrationMismatch = errors.New("repairsvc: calibration/plan mismatch")

// errStatusOr is errStatus with a caller-chosen fallback for errors the
// mapping does not recognize.
func errStatusOr(err error, fallback int) int {
	if code, ok := resilienceStatus(err); ok {
		return code
	}
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, planstore.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, planstore.ErrBadID):
		return http.StatusBadRequest
	case errors.Is(err, errCalibrationMismatch):
		return http.StatusConflict
	default:
		return fallback
	}
}

// Server exposes plan design, storage, repair and metrics over HTTP:
//
//	POST /v1/plans               design (text/csv research body) or upload (JSON)
//	GET  /v1/plans               list stored plan fingerprints
//	GET  /v1/plans/{id}          download one plan (canonical JSON)
//	POST /v1/calibrations        fit a blind calibration (text/csv research
//	                             body, ?plan=<id>) or upload one (JSON)
//	GET  /v1/calibrations        list stored calibration fingerprints
//	GET  /v1/calibrations/{id}   download one calibration (canonical JSON)
//	POST /v1/repair              repair a CSV or NDJSON record stream; with
//	                             ?calibration=<id> the stream may carry no
//	                             s labels (blind repair)
//	GET  /v1/metrics             JSON serving state: resilience, store and
//	                             observability summaries always; drift, E
//	                             and blind telemetry with ?plan=
//	GET  /metrics                Prometheus text exposition of the metric
//	                             registry
//	GET  /v1/buildinfo           build identity (version, go, vcs revision)
//	GET  /healthz                liveness (200 as long as the process runs)
//	GET  /readyz                 readiness (503 while draining or when the
//	                             store fails a writability round-trip)
//
// It is an http.Handler; wrap it in an http.Server for timeouts and
// graceful shutdown (cmd/fairserved does, calling BeginDrain first so
// readiness flips before the listener closes).
type Server struct {
	store    *planstore.Store
	cals     *planstore.CalibrationStore
	refs     *planstore.Refs
	research *planstore.ResearchStore
	opts     ServerOptions
	mux      *http.ServeMux

	gate     admission
	draining atomic.Bool
	res      resilienceCounters
	om       *serverObs

	// Drift machinery (nil / zero unless DriftWatch is armed): the
	// research feed refits fetch through, the shared refit pool, and the
	// idle-artefact check timer.
	feed      *researchfeed.Feed
	refit     *refitPool
	timerStop chan struct{}
	timerWG   sync.WaitGroup
	closeOnce sync.Once

	mu     sync.Mutex
	states map[string]*planState
	clock  uint64 // monotone LRU clock for states, guarded by mu
}

// planState is the per-plan serving state: the bound engine plus the
// observability side (drift monitor and rolling metric windows, both fed
// serially from the repair sink path under mu) and the blind engines bound
// per calibration, all sharing the labelled engine's sampler.
type planState struct {
	// id is the fingerprint this state was bound under — the lineage the
	// drift loop records its ref swaps against.
	id     string
	engine *Engine
	// watch is the drift state machine (nil unless ServerOptions.DriftWatch);
	// it has its own lock and scrape-safe atomics, so it is fed outside mu.
	watch *driftwatch.Watcher
	// loopRunning serializes the recalibration loop: at most one goroutine
	// per plan state, claimed with a CAS after the watcher alarms.
	loopRunning atomic.Bool
	// lastUsed is the Server.clock value of the most recent touch,
	// guarded by Server.mu.
	lastUsed uint64

	mu sync.Mutex
	// lastResearchFP is the feed content fingerprint the last *completed*
	// loop run (swap or rollback) was judged on, guarded by mu. A later
	// alarm whose fetch returns the same fingerprint finishes
	// refit_skipped_stale: rerunning the design would reproduce the same
	// candidate and the same verdict. Transient failures do not record
	// it, so a refit_failed alarm retries on the next check.
	lastResearchFP string
	mon         *monitor.Monitor
	alarms      []monitor.Alarm // ring of the most recent MaxAlarms
	alarmsTotal int64
	original    *recordWindow
	repaired    *recordWindow
	blind       map[string]*blindEntry // calibration id -> bound engine
	blindClock  uint64                 // monotone LRU clock for blind, guarded by mu
}

// blindEntry tracks one bound blind engine with its LRU recency.
type blindEntry struct {
	engine   *blindsvc.Engine
	lastUsed uint64
}

// recordWindow is a fixed-capacity ring of labelled records.
type recordWindow struct {
	dim  int
	buf  []dataset.Record
	next int
	full bool
}

func newRecordWindow(dim, capacity int) *recordWindow {
	return &recordWindow{dim: dim, buf: make([]dataset.Record, capacity)}
}

func (w *recordWindow) add(rec dataset.Record) {
	if rec.S == dataset.SUnknown {
		return
	}
	w.buf[w.next] = rec
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
}

// table materializes the window (nil when empty).
func (w *recordWindow) table() *dataset.Table {
	n := w.next
	if w.full {
		n = len(w.buf)
	}
	if n == 0 {
		return nil
	}
	t, err := dataset.NewTable(w.dim, nil)
	if err != nil {
		return nil
	}
	for i := 0; i < n; i++ {
		if t.Append(w.buf[i]) != nil {
			return nil
		}
	}
	return t
}

// NewServer builds the HTTP layer over a plan store. The calibration
// namespace is opened under the same store root, so one directory
// provisions both artefact tiers.
func NewServer(store *planstore.Store, opts ServerOptions) (*Server, error) {
	if store == nil {
		return nil, errors.New("repairsvc: nil store")
	}
	cals, err := planstore.OpenCalibrations(store.Dir(), planstore.Options{CacheSize: opts.CalibrationCacheSize, Fault: opts.Fault, Logger: opts.Logger})
	if err != nil {
		return nil, err
	}
	refs, err := planstore.OpenRefs(store.Dir(), opts.Logger)
	if err != nil {
		return nil, err
	}
	research, err := planstore.OpenResearch(store.Dir(), planstore.Options{CacheSize: opts.CalibrationCacheSize, Fault: opts.Fault, Logger: opts.Logger})
	if err != nil {
		return nil, err
	}
	s := &Server{
		store:    store,
		cals:     cals,
		refs:     refs,
		research: research,
		opts:     opts.withDefaults(),
		mux:      http.NewServeMux(),
		states:   make(map[string]*planState),
	}
	s.gate = admission{maxInflight: s.opts.MaxInflight, maxBytes: s.opts.MaxQueuedBytes}
	// Bind the observability assembly after the stores exist (it hooks
	// their read latencies) and before any route can run.
	s.om = newServerObs(s)
	// Drift machinery, only when the watcher is armed: a plain serving
	// deployment runs zero background goroutines, same as before.
	if s.opts.DriftWatch != nil {
		if src := s.feedSource(); src != nil {
			s.feed = researchfeed.New(src, researchfeed.Config{
				Retry:    s.opts.FeedRetry,
				Breaker:  s.opts.FeedBreaker,
				Clock:    s.opts.Clock,
				Fault:    s.opts.Fault,
				Registry: s.om.reg,
				Logger:   s.opts.Logger,
			})
		}
		s.refit = newRefitPool(s, s.opts.RefitWorkers, s.opts.RefitQueue)
		if s.opts.DriftCheckEvery > 0 {
			s.timerStop = make(chan struct{})
			s.timerWG.Add(1)
			go s.runDriftTimer()
		}
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /v1/buildinfo", s.handleBuildInfo)
	s.mux.HandleFunc("POST /v1/plans", s.handlePlansPost)
	s.mux.HandleFunc("GET /v1/plans", s.handlePlansList)
	s.mux.HandleFunc("GET /v1/plans/{id}", s.handlePlanGet)
	s.mux.HandleFunc("POST /v1/calibrations", s.handleCalibrationsPost)
	s.mux.HandleFunc("GET /v1/calibrations", s.handleCalibrationsList)
	s.mux.HandleFunc("GET /v1/calibrations/{id}", s.handleCalibrationGet)
	s.mux.HandleFunc("POST /v1/repair", s.handleRepair)
	s.mux.HandleFunc("POST /v1/research", s.handleResearchPost)
	s.mux.HandleFunc("GET /v1/refs", s.handleRefsList)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics", s.handleMetricsProm)
	return s, nil
}

// feedSource picks the drift loop's research source: an explicit
// FeedSource wins, then the HTTP URL, then the local file, then the
// staged namespace when the staging endpoint is enabled. Nil when no
// source is configured — the loop then finishes alarms refit_failed.
func (s *Server) feedSource() researchfeed.Source {
	switch {
	case s.opts.FeedSource != nil:
		return s.opts.FeedSource
	case s.opts.RecalibrateURL != "":
		return &researchfeed.HTTPSource{URL: s.opts.RecalibrateURL, AttemptTimeout: s.opts.FeedAttemptTimeout}
	case s.opts.RecalibrateFrom != "":
		return &researchfeed.FileSource{Path: s.opts.RecalibrateFrom}
	case s.opts.ResearchToken != "":
		return &researchfeed.StagedSource{Store: s.research}
	}
	return nil
}

// Close stops the server's background drift machinery — the check timer
// and the refit worker pool, cancelling any in-flight refit's fetch or
// backoff sleep — and waits for it to exit. It does not touch in-flight
// HTTP requests (that is BeginDrain + http.Server.Shutdown's job) and is
// a no-op on a server without DriftWatch. Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.timerStop != nil {
			close(s.timerStop)
		}
		s.timerWG.Wait()
		if s.refit != nil {
			s.refit.close()
		}
	})
}

// Refs exposes the lineage → active fingerprint namespace the drift loop
// swaps through.
func (s *Server) Refs() *planstore.Refs { return s.refs }

// handleRefsList reports every lineage → active mapping: which artefacts
// the recalibration loop has replaced, and with what.
func (s *Server) handleRefsList(w http.ResponseWriter, r *http.Request) {
	m, err := s.refs.List()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"refs": m})
}

// Registry exposes the server's metric registry so callers can register
// additional series (process stats, build gauges) on the same /metrics
// exposition.
func (s *Server) Registry() *obs.Registry { return s.om.reg }

// Calibrations exposes the calibration namespace the server serves from.
func (s *Server) Calibrations() *planstore.CalibrationStore { return s.cals }

// Prewarm loads persisted plans and calibrations from disk into the store
// LRUs, so the first requests after a boot pay neither the read nor the
// deserialization; cmd/fairserved runs it behind -prewarm. Each walk stops
// at its namespace's LRU capacity — loading more would only evict what was
// just warmed. An unreadable artefact is skipped, not fatal: a prewarm
// boot must not be less available than a cold one, which would also have
// served every healthy artefact and only errored the bad id on demand. It
// returns the number of plans and calibrations warmed and of artefacts
// skipped; err reports only listing failures.
func (s *Server) Prewarm() (plans, cals, skipped int, err error) {
	ids, err := s.store.IDs()
	if err != nil {
		return 0, 0, 0, err
	}
	for _, id := range ids {
		if plans >= s.store.CacheCap() {
			break
		}
		if _, err := s.store.Get(id); err != nil {
			skipped++
			continue
		}
		plans++
	}
	calIDs, err := s.cals.IDs()
	if err != nil {
		return plans, 0, skipped, err
	}
	for _, id := range calIDs {
		if cals >= s.cals.CacheCap() {
			break
		}
		if _, err := s.cals.Get(id); err != nil {
			skipped++
			continue
		}
		cals++
	}
	return plans, cals, skipped, nil
}

// ServeHTTP implements http.Handler. Every request passes through the
// route metrics: latency histogram and a (route, code) counter, with
// deliberate mid-stream aborts (http.ErrAbortHandler) counted and
// re-panicked so net/http still tears the connection down.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	route := routeLabel(r)
	rec := &statusRecorder{ResponseWriter: w}
	start := time.Now() //otfair:nondet-ok request-latency histogram timing; never reaches the response body
	defer func() {
		v := recover()
		//otfair:nondet-ok request-latency histogram timing; never reaches the response body
		s.om.requestDone(route, rec.code, time.Since(start), v != nil)
		if v != nil {
			panic(v)
		}
	}()
	s.mux.ServeHTTP(rec, r)
}

// state returns (building if needed) the serving state for a stored plan.
func (s *Server) state(id string) (*planState, error) {
	s.mu.Lock()
	if ps, ok := s.states[id]; ok {
		s.clock++
		ps.lastUsed = s.clock
		s.mu.Unlock()
		return ps, nil
	}
	s.mu.Unlock()
	// Resolve and bind outside the map lock: sampler construction is the
	// expensive part and two racing requests at worst build it twice, with
	// one winner.
	plan, err := s.store.Get(id)
	if err != nil {
		return nil, err
	}
	engine, err := NewEngine(plan, Options{Workers: s.opts.Workers, Fault: s.opts.Fault, Obs: s.om.shard})
	if err != nil {
		return nil, err
	}
	mon, err := monitor.New(plan, s.opts.Monitor)
	if err != nil {
		return nil, err
	}
	ps := &planState{
		id:       id,
		engine:   engine,
		mon:      mon,
		original: newRecordWindow(plan.Dim, s.opts.MetricWindow),
		repaired: newRecordWindow(plan.Dim, s.opts.MetricWindow),
		blind:    make(map[string]*blindEntry),
	}
	if s.opts.DriftWatch != nil {
		// The artefact label value is the store-resolved plan id — never
		// request input — and the watcher set is bounded by MaxBoundPlans,
		// which is what keeps the drift series cardinality bounded.
		cfg := *s.opts.DriftWatch
		if cfg.Logger == nil {
			cfg.Logger = s.opts.Logger
		}
		ps.watch = driftwatch.New(id, cfg, s.om.reg)
	}
	s.mu.Lock()
	if prior, ok := s.states[id]; ok {
		ps = prior
	} else {
		s.states[id] = ps
		// Bound the serving tier: evict the least-recently-used states so
		// memory scales with the hot set, not with every plan ever touched.
		// The store below remains the durable tier.
		for len(s.states) > s.opts.MaxBoundPlans {
			var coldID string
			var coldUsed uint64
			first := true
			// Full-scan min with a total tie-break (lastUsed, then ID), so
			// the victim is a pure function of the bound set.
			//otfair:nondet-ok order-independent min: tie on lastUsed breaks on plan ID
			for sid, st := range s.states {
				if sid != id && (first || st.lastUsed < coldUsed ||
					(st.lastUsed == coldUsed && sid < coldID)) {
					coldID, coldUsed, first = sid, st.lastUsed, false
				}
			}
			if first {
				break
			}
			delete(s.states, coldID)
		}
	}
	s.clock++
	ps.lastUsed = s.clock
	s.mu.Unlock()
	return ps, nil
}

// mediaType extracts the request's media type, dropping parameters like
// charset (many clients default to "type; charset=utf-8").
func mediaType(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		return mt
	}
	return ct
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// handleHealth is pure liveness: 200 for as long as the process can
// serve anything at all, draining included (restarting a draining server
// would defeat the drain). Routability belongs to /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	bound := len(s.states)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "bound_plans": bound, "draining": s.draining.Load()})
}

// designOptionsFromQuery assembles core design options from request query
// parameters (nq, t, amount, solver, kernel, bandwidth, target, barycenter,
// epsilon), leaving absent ones at their library defaults.
func designOptionsFromQuery(r *http.Request) (core.Options, error) {
	var opts core.Options
	q := r.URL.Query()
	var err error
	if v := q.Get("nq"); v != "" {
		if opts.NQ, err = strconv.Atoi(v); err != nil {
			return opts, fmt.Errorf("bad nq %q", v)
		}
	}
	if v := q.Get("t"); v != "" {
		if opts.T, err = strconv.ParseFloat(v, 64); err != nil {
			return opts, fmt.Errorf("bad t %q", v)
		}
	}
	if v := q.Get("amount"); v != "" {
		if opts.Amount, err = strconv.ParseFloat(v, 64); err != nil {
			return opts, fmt.Errorf("bad amount %q", v)
		}
		opts.AmountSet = true
	}
	if v := q.Get("epsilon"); v != "" {
		if opts.SinkhornEpsilon, err = strconv.ParseFloat(v, 64); err != nil {
			return opts, fmt.Errorf("bad epsilon %q", v)
		}
	}
	if opts.Solver, err = core.ParseSolver(q.Get("solver")); err != nil {
		return opts, err
	}
	if opts.Target, err = core.ParseTarget(q.Get("target")); err != nil {
		return opts, err
	}
	if opts.Barycenter, err = core.ParseBarycenter(q.Get("barycenter")); err != nil {
		return opts, err
	}
	if opts.Kernel, err = kde.ParseKernel(q.Get("kernel")); err != nil {
		return opts, err
	}
	if opts.Bandwidth, err = kde.ParseBandwidth(q.Get("bandwidth")); err != nil {
		return opts, err
	}
	return opts, nil
}

// handlePlansPost designs a plan from a research CSV body (Content-Type
// text/csv) or registers an uploaded serialized plan (application/json).
// Either way the plan lands in the store and the response carries its
// content fingerprint.
func (s *Server) handlePlansPost(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	var (
		plan *core.Plan
		err  error
	)
	switch ct := mediaType(r); {
	case ct == "application/json":
		plan, err = core.ReadPlan(r.Body)
		if err != nil {
			httpError(w, errStatusOr(err, http.StatusBadRequest), "invalid plan upload: %v", err)
			return
		}
	case ct == "text/csv" || ct == "":
		research, rerr := dataset.ReadCSV(r.Body)
		if rerr != nil {
			httpError(w, errStatusOr(rerr, http.StatusBadRequest), "invalid research csv: %v", rerr)
			return
		}
		opts, oerr := designOptionsFromQuery(r)
		if oerr != nil {
			httpError(w, http.StatusBadRequest, "%v", oerr)
			return
		}
		plan, err = core.Design(research, opts)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "design failed: %v", err)
			return
		}
	default:
		httpError(w, http.StatusUnsupportedMediaType, "send research data as text/csv or a plan as application/json, got %q", ct)
		return
	}
	id, created, err := s.store.Put(plan)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "storing plan: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":      id,
		"dim":     plan.Dim,
		"names":   plan.Names,
		"nq":      plan.Opts.NQ,
		"solver":  plan.Opts.Solver.String(),
		"existed": !created,
	})
}

func (s *Server) handlePlansList(w http.ResponseWriter, r *http.Request) {
	ids, err := s.store.IDs()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"plans": ids})
}

func (s *Server) handlePlanGet(w http.ResponseWriter, r *http.Request) {
	plan, err := s.store.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, errStatus(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := plan.WriteJSON(w); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

// handleRepair streams records through the plan's engine: CSV or NDJSON in,
// the same format out. Query parameters:
//
//	plan         plan fingerprint (required unless calibration is given,
//	             which implies its own plan)
//	calibration  calibration fingerprint; switches to blind repair, so the
//	             stream may carry records with no s label
//	method       blind method (hard, draw, mix, pooled; default hard) —
//	             only meaningful with calibration
//	seed         RNG seed (default 1); with workers=1 the output is
//	             byte-identical to the in-process (blind) Repairer at the
//	             same seed
//	workers      shard fan-out (default: server-wide setting)
//	format       csv (default) or ndjson, for both directions
//	deadline_ms  per-request repair budget in milliseconds; overrides the
//	             server-wide default. A blown budget aborts at the
//	             engines' cancellation boundaries: 503 when nothing was
//	             sent, a truncated (aborted) transfer otherwise.
//
// Admission is bounded: past MaxInflight concurrent repairs or
// MaxQueuedBytes of spooled bodies the request is shed with 429 and a
// Retry-After hint, before it costs an engine or the store anything.
// A draining server refuses new repairs with 503.
func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	// Trace the whole request. tw fronts every write so the finalize below
	// can report the status; the finalize itself runs on every exit path —
	// early error, success, and the deliberate mid-stream abort panic —
	// and re-panics so net/http still sees ErrAbortHandler.
	tr := s.om.tracer.Start()
	tw := &trackedResponse{ResponseWriter: w}
	w = tw
	var (
		planID, calID string
		records       int
	)
	defer func() {
		v := recover()
		s.om.finishRepair(tr, planID, calID, records, tw.code, v != nil)
		if v != nil {
			panic(v)
		}
	}()

	tr.Begin(obs.StageAdmission)
	if s.draining.Load() {
		s.refuseDraining(w)
		return
	}
	if !s.gate.tryAcquire() {
		s.shed(w, "concurrent repair budget exhausted")
		return
	}
	defer s.gate.release()

	s.limitBody(w, r)
	q := r.URL.Query()

	// The request context carries the client disconnect; layer the
	// deadline budget (request override, then server default) on top.
	ctx := r.Context()
	budget := s.opts.DefaultDeadline
	if v := q.Get("deadline_ms"); v != "" {
		ms, derr := strconv.ParseInt(v, 10, 64)
		if derr != nil || ms <= 0 {
			httpError(w, http.StatusBadRequest, "bad deadline_ms %q", v)
			return
		}
		budget = time.Duration(ms) * time.Millisecond
	}
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	planID = q.Get("plan")
	calID = q.Get("calibration")
	id := planID
	if id == "" && calID == "" {
		httpError(w, http.StatusBadRequest, "missing plan parameter")
		return
	}

	workers := 0
	if v := q.Get("workers"); v != "" {
		n, werr := strconv.Atoi(v)
		if werr != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad workers %q", v)
			return
		}
		workers = n
	}

	// run abstracts over the labelled and blind engines: it repairs the
	// stream and folds any derived-engine traffic back into the plan's
	// primary counters.
	var (
		ps  *planState
		run func(context.Context, *rng.RNG, dataset.Stream, func(dataset.Record) error) (int, error)
		err error
	)
	if calID == "" {
		ps, err = s.state(id)
		if err != nil {
			httpError(w, errStatus(err), "%v", err)
			return
		}
		engine := ps.engine
		if workers > 0 {
			if engine, err = ps.engine.withWorkers(workers); err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
		run = func(rctx context.Context, rg *rng.RNG, in dataset.Stream, sink func(dataset.Record) error) (int, error) {
			n, diag, err := engine.RepairStreamContext(rctx, rg, in, sink)
			if engine != ps.engine {
				ps.engine.account(n, diag)
			}
			return n, err
		}
	} else {
		method, merr := blind.ParseMethod(q.Get("method"))
		if merr != nil {
			httpError(w, http.StatusBadRequest, "%v", merr)
			return
		}
		var primary *blindsvc.Engine
		ps, primary, err = s.blindState(id, calID)
		if err != nil {
			httpError(w, errStatus(err), "%v", err)
			return
		}
		engine := primary
		if workers > 0 {
			if engine, err = primary.WithWorkers(workers); err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
		run = func(rctx context.Context, rg *rng.RNG, in dataset.Stream, sink func(dataset.Record) error) (int, error) {
			n, st, diag, err := engine.RepairStreamContext(rctx, rg, method, in, sink)
			if engine != primary {
				primary.Account(n, st, diag)
			}
			return n, err
		}
	}

	seed := uint64(1)
	if v := q.Get("seed"); v != "" {
		if seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			httpError(w, http.StatusBadRequest, "bad seed %q", v)
			return
		}
	}

	format := q.Get("format")
	if format == "" {
		if mediaType(r) == "application/x-ndjson" {
			format = "ndjson"
		} else {
			format = "csv"
		}
	}

	tr.End(obs.StageAdmission)

	// Spool the request body before writing any response byte. Go's
	// HTTP/1.1 server tears down the request body on the first response
	// write, and half-duplex clients (curl) deadlock on true bidirectional
	// streams anyway; a disk spool keeps memory O(1) in records while the
	// response still streams out as repair progresses.
	tr.Begin(obs.StageSpool)
	spool, err := newBodySpool()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "spooling request: %v", err)
		return
	}
	defer spool.Close()
	// The spool draws on the server-wide queued-bytes budget for the
	// request's whole lifetime (the bytes occupy the disk until the spool
	// closes, not just while they upload).
	reserved, err := s.spoolBody(spool, r.Body)
	defer s.gate.free(reserved)
	if err != nil {
		if errors.Is(err, errShed) {
			s.shed(w, "queued-bytes budget exhausted")
			return
		}
		httpError(w, errStatusOr(err, http.StatusBadRequest), "reading request: %v", err)
		return
	}
	if _, err := spool.Seek(0, io.SeekStart); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	tr.End(obs.StageSpool)

	// tw (created at the top) tracks whether any response byte has left:
	// after that, errors must truncate the stream (at a record boundary —
	// the codec writers buffer whole rows), never append a JSON error into
	// a CSV/NDJSON body.
	var (
		in      dataset.Stream
		sink    func(dataset.Record) error
		finish  func() error
		openErr error
	)
	switch format {
	case "csv":
		in, sink, finish, openErr = s.csvPipe(tw, spool, ps.engine.Plan())
	case "ndjson":
		in, sink, finish, openErr = s.ndjsonPipe(tw, spool, ps.engine.Plan())
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q", format)
		return
	}
	if openErr != nil {
		httpError(w, http.StatusBadRequest, "%v", openErr)
		return
	}

	// Wrap the sink to feed the observability state. The engine calls the
	// sink serially from this goroutine, so one lock acquisition per record
	// is uncontended in the common single-request case.
	observed := in
	tap := func(orig dataset.Record) {
		ps.mu.Lock()
		ps.original.add(orig)
		alarms, _ := ps.mon.Observe(orig)
		if len(alarms) > 0 {
			ps.alarmsTotal += int64(len(alarms))
			ps.alarms = append(ps.alarms, alarms...)
			if over := len(ps.alarms) - s.opts.MaxAlarms; over > 0 {
				ps.alarms = append(ps.alarms[:0], ps.alarms[over:]...)
			}
		}
		ps.mu.Unlock()
		// The watcher has its own lock and only copies records the
		// reservoir actually admits, so this is O(1) per record and stays
		// off the response path entirely when drift-watch is disabled.
		if ps.watch != nil {
			ps.watch.Observe(orig)
		}
	}
	tapped := &tapStream{inner: observed, tap: tap, tr: tr}
	repairedSink := func(rec dataset.Record) error {
		ps.mu.Lock()
		ps.repaired.add(rec)
		ps.mu.Unlock()
		// Per-record encode timing only on trace-sampled requests: the
		// clock reads are the cost being sampled away.
		if tr.Sampled() {
			start := time.Now() //otfair:nondet-ok sampled-trace encode timing; trace spans never reach repaired records
			err := sink(rec)
			//otfair:nondet-ok sampled-trace encode timing; trace spans never reach repaired records
			tr.Add(obs.StageEncode, time.Since(start))
			return err
		}
		return sink(rec)
	}

	// The run wall covers decode, repair and encode interleaved; the
	// sampled decode/encode accumulators are backed out so shard_execute
	// reports engine time. Unsampled requests report the whole wall there.
	runStart := time.Now() //otfair:nondet-ok trace stage wall-clock accounting; trace spans never reach repaired records
	n, err := run(ctx, rng.New(seed), tapped, repairedSink)
	records = n
	//otfair:nondet-ok trace stage wall-clock accounting; trace spans never reach repaired records
	tr.Set(obs.StageShardExecute, time.Since(runStart)-tr.Get(obs.StageDecode)-tr.Get(obs.StageEncode))
	// Feed the drift state machine once per request (not per record): the
	// monitor's window statistics barely move within one stream, and a
	// per-request cadence is what AlarmAfter consecutive alarming updates
	// counts. Runs for failed repairs too — the records already observed
	// are real traffic evidence.
	if ps.watch != nil && n > 0 {
		s.driftCheck(ps)
	}
	if err != nil {
		s.noteFailure(ctx, err)
		if !tw.started {
			// Nothing sent yet: the client gets a clean, typed JSON error —
			// 503 for a blown deadline, 500 for a worker panic or a corrupt
			// artefact, 422 for a bad stream (e.g. dimension mismatch, bad
			// first record). A vanished client gets the aborted connection
			// it can no longer observe.
			if errors.Is(err, context.Canceled) {
				panic(http.ErrAbortHandler)
			}
			httpError(w, errStatusOr(err, http.StatusUnprocessableEntity), "repair failed after %d records: %v", n, err)
			return
		}
		// Mid-stream: abort the connection so the client observes a failed
		// transfer (no terminating chunk) instead of a complete-looking 200
		// with silently missing records. ErrAbortHandler is net/http's
		// sanctioned way to do exactly this. Deadline and disconnect land
		// here too: cancellation truncates the stream at an engine
		// boundary, and the abort is what makes the truncation loud.
		panic(http.ErrAbortHandler)
	}
	tr.Begin(obs.StageFlush)
	if err := finish(); err != nil {
		return
	}
	tr.End(obs.StageFlush)
}

// bodySpool is a request-body spool file whose directory entry is unlinked
// the moment it is created: the open descriptor keeps the spooled bytes
// readable for the duration of the request, while no failure mode — a
// mid-copy read error, an early handler return, a panicking handler, even
// a killed process — can leave the file behind on disk. On platforms that
// cannot unlink an open file, Close removes it instead (covering every
// in-process exit path; only a hard kill can then leak, as before).
type bodySpool struct {
	*os.File
	unlinked bool
}

// newBodySpool creates an anonymous spool file in the temp directory.
func newBodySpool() (*bodySpool, error) {
	f, err := os.CreateTemp("", "fairserved-repair-*")
	if err != nil {
		return nil, err
	}
	sp := &bodySpool{File: f}
	if err := os.Remove(f.Name()); err == nil {
		sp.unlinked = true
	}
	return sp, nil
}

func (sp *bodySpool) Close() error {
	err := sp.File.Close()
	if !sp.unlinked {
		if rerr := os.Remove(sp.Name()); rerr != nil && !errors.Is(rerr, os.ErrNotExist) && err == nil {
			err = rerr
		}
	}
	return err
}

// trackedResponse records whether any header or byte has been written,
// and the first status code, for the request log.
type trackedResponse struct {
	http.ResponseWriter
	started bool
	code    int
}

func (t *trackedResponse) WriteHeader(code int) {
	t.started = true
	if t.code == 0 {
		t.code = code
	}
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackedResponse) Write(b []byte) (int, error) {
	t.started = true
	if t.code == 0 {
		t.code = http.StatusOK
	}
	return t.ResponseWriter.Write(b)
}

// tapStream forwards Next while exposing each record to the observability
// tap before repair. Records are validated here — the wire codecs parse
// shape but not label ranges or feature finiteness — so a malformed record
// fails the request loudly instead of repairing garbage, and the monitor
// and metric windows only ever see valid records.
type tapStream struct {
	inner dataset.Stream
	tap   func(dataset.Record)
	// tr accumulates per-record decode time on trace-sampled requests
	// (nil-safe; Next is called serially from the request goroutine).
	tr *obs.Trace
}

func (t *tapStream) Next() (dataset.Record, error) {
	var start time.Time
	sampled := t.tr.Sampled()
	if sampled {
		start = time.Now() //otfair:nondet-ok sampled-trace decode timing; trace spans never reach repaired records
	}
	rec, err := t.inner.Next()
	if sampled {
		//otfair:nondet-ok sampled-trace decode timing; trace spans never reach repaired records
		t.tr.Add(obs.StageDecode, time.Since(start))
	}
	if err != nil {
		return rec, err
	}
	if err := rec.Validate(t.inner.Dim()); err != nil {
		return dataset.Record{}, err
	}
	t.tap(rec)
	return rec, nil
}

func (t *tapStream) Dim() int { return t.inner.Dim() }

// handleMetrics reports serving state as JSON. The server-wide sections —
// resilience counters, store stats, design cache, and the observability
// section (histogram summaries, slow-request records) — are always
// present. With ?plan= it adds that plan's engine counters, drift monitor
// status with recent alarms, the E metric before/after on the rolling
// windows, and per-calibration blind telemetry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	designHits, designMisses := core.DesignCacheStats()
	out := map[string]any{
		"resilience":        s.resilienceSnapshot(),
		"store":             s.store.Stats(),
		"calibration_store": s.cals.Stats(),
		"design_cache": map[string]uint64{
			"hits":   designHits,
			"misses": designMisses,
		},
		"observability": s.om.observability(),
	}

	id := r.URL.Query().Get("plan")
	if id == "" {
		writeJSON(w, http.StatusOK, out)
		return
	}
	ps, err := s.state(id)
	if err != nil {
		httpError(w, errStatus(err), "%v", err)
		return
	}
	totals := ps.engine.Totals()

	ps.mu.Lock()
	snap := ps.mon.Snapshot()
	recent := make([]string, len(ps.alarms))
	for i, a := range ps.alarms {
		recent[i] = a.String()
	}
	alarmsTotal := ps.alarmsTotal
	origTable := ps.original.table()
	repTable := ps.repaired.table()
	ps.mu.Unlock()

	metric := map[string]any{"window": s.opts.MetricWindow}
	// E is undefined until every observed u-population carries both
	// s-classes; report what is computable and say why otherwise.
	if origTable != nil {
		if e, err := fairmetrics.E(origTable, s.opts.Metric); err == nil {
			metric["e_original"] = e
		} else {
			metric["e_original_error"] = err.Error()
		}
		metric["window_filled"] = origTable.Len()
	} else {
		metric["window_filled"] = 0
	}
	if repTable != nil {
		if e, err := fairmetrics.E(repTable, s.opts.Metric); err == nil {
			metric["e_repaired"] = e
		} else {
			metric["e_repaired_error"] = err.Error()
		}
	}

	out["plan"] = id
	out["engine"] = map[string]any{
		"records":             totals.Records,
		"values":              totals.Values,
		"clamped":             totals.Clamped,
		"empty_row_fallbacks": totals.EmptyRowFallbacks,
	}
	out["drift"] = map[string]any{
		"seen":          snap.Seen,
		"fired":         snap.Fired,
		"watched_cells": snap.WatchedCells,
		"full_windows":  snap.FullWindows,
		"alarms_total":  alarmsTotal,
		"recent":        recent,
	}
	out["metric"] = metric
	out["blind"] = blindMetrics(ps)
	if ps.watch != nil {
		out["driftwatch"] = ps.watch.Snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}
