package repairsvc

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"otfair/internal/blind"
	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/planstore"
	"otfair/internal/rng"
	"otfair/internal/simulate"
)

// blindTestServer boots a server, stores the plan, and returns the ids plus
// the research/unlabelled-archive tables of the scenario.
func blindTestServer(t *testing.T, seed uint64, nR, nA, nq int) (srv *httptest.Server, planID string, research, unlabelled *dataset.Table, plan *core.Plan) {
	t.Helper()
	sampler, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	research, archive, err := sampler.ResearchArchive(rng.New(seed), nR, nA)
	if err != nil {
		t.Fatal(err)
	}
	plan, err = core.Design(research, core.Options{NQ: nq})
	if err != nil {
		t.Fatal(err)
	}
	store, err := planstore.Open(t.TempDir(), planstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	planID, _, err = store.Put(plan)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := NewServer(store, ServerOptions{MetricWindow: 4096})
	if err != nil {
		t.Fatal(err)
	}
	srv = httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv, planID, research, archive.DropS(), plan
}

// fitOverHTTP posts the research CSV to /v1/calibrations and returns the id.
func fitOverHTTP(t *testing.T, srv *httptest.Server, planID string, research *dataset.Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := research.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/calibrations?plan="+planID, "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("calibration fit: %s: %s", resp.Status, body)
	}
	var fit struct {
		ID                 string  `json:"id"`
		Plan               string  `json:"plan"`
		ResearchConfidence float64 `json:"research_confidence"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fit); err != nil {
		t.Fatal(err)
	}
	if fit.Plan != planID {
		t.Fatalf("calibration bound to plan %s, want %s", fit.Plan, planID)
	}
	if !(fit.ResearchConfidence > 0.5 && fit.ResearchConfidence <= 1) {
		t.Fatalf("research confidence %v outside (0.5, 1]", fit.ResearchConfidence)
	}
	return fit.ID
}

// TestServeBlindRepairByteIdentical is the blind serve-path equivalence
// test: POST /v1/repair with calibration=<id>, workers=1 and a fixed seed
// produces byte-identical output to the in-process blind.Repairer at the
// same seed — fit → store → serve → blind-repair equals fit → blind-repair
// — for every blind method.
func TestServeBlindRepairByteIdentical(t *testing.T) {
	srv, planID, research, unlabelled, plan := blindTestServer(t, 61, 300, 1500, 40)
	calID := fitOverHTTP(t, srv, planID, research)

	for _, method := range []string{"hard", "draw", "mix", "pooled"} {
		url := srv.URL + "/v1/repair?calibration=" + calID + "&method=" + method + "&seed=19&workers=1"
		resp := postCSV(t, url, unlabelled)
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("%s: %s: %s", method, resp.Status, body)
		}
		served, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}

		m, err := blind.ParseMethod(method)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := blind.New(plan, research, rng.New(19), blind.Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.RepairTable(unlabelled)
		if err != nil {
			t.Fatal(err)
		}
		var wantCSV bytes.Buffer
		if err := want.WriteCSV(&wantCSV); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(served, wantCSV.Bytes()) {
			t.Fatalf("method %s: served bytes differ from in-process blind repair (%d vs %d bytes)", method, len(served), wantCSV.Len())
		}
	}
}

// TestServeBlindNDJSONAndMetrics round-trips an unlabelled NDJSON stream
// (null s both directions) and checks the per-calibration blind telemetry
// lands in /v1/metrics.
func TestServeBlindNDJSONAndMetrics(t *testing.T) {
	srv, planID, research, unlabelled, _ := blindTestServer(t, 62, 250, 800, 30)
	calID := fitOverHTTP(t, srv, planID, research)

	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	for i := 0; i < unlabelled.Len(); i++ {
		rec := unlabelled.At(i)
		if err := enc.Encode(wireRecord{X: rec.X, U: rec.U}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(srv.URL+"/v1/repair?calibration="+calID+"&method=draw&seed=1&workers=2&format=ndjson",
		"application/x-ndjson", &in)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("blind ndjson repair: %s: %s", resp.Status, body)
	}
	dec := json.NewDecoder(resp.Body)
	n := 0
	for {
		var wr wireRecord
		if err := dec.Decode(&wr); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if wr.S != nil {
			t.Fatal("blind repair invented an s label")
		}
		if len(wr.X) != unlabelled.Dim() {
			t.Fatalf("record %d has %d features", n, len(wr.X))
		}
		n++
	}
	if n != unlabelled.Len() {
		t.Fatalf("round-tripped %d of %d records", n, unlabelled.Len())
	}

	resp, err = http.Get(srv.URL + "/v1/metrics?plan=" + planID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Blind map[string]struct {
			Records            int64   `json:"records"`
			Imputed            int64   `json:"imputed"`
			LabelsUsed         int64   `json:"labels_used"`
			MeanConfidence     float64 `json:"mean_confidence"`
			ResearchConfidence float64 `json:"research_confidence"`
			ConfidenceDrift    float64 `json:"confidence_drift"`
			AmbiguityHistogram []int64 `json:"ambiguity_histogram"`
		} `json:"blind"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	bm, ok := m.Blind[calID]
	if !ok {
		t.Fatalf("metrics carry no blind section for calibration %s (got %v)", calID, m.Blind)
	}
	if bm.Records != int64(unlabelled.Len()) || bm.Imputed != int64(unlabelled.Len()) || bm.LabelsUsed != 0 {
		t.Errorf("blind counters %+v, want all %d records imputed", bm, unlabelled.Len())
	}
	if !(bm.MeanConfidence > 0.5 && bm.MeanConfidence <= 1) {
		t.Errorf("mean confidence %v outside (0.5, 1]", bm.MeanConfidence)
	}
	if bm.ConfidenceDrift != bm.MeanConfidence-bm.ResearchConfidence {
		t.Errorf("drift %v != mean %v - research %v", bm.ConfidenceDrift, bm.MeanConfidence, bm.ResearchConfidence)
	}
	var hist int64
	for _, c := range bm.AmbiguityHistogram {
		hist += c
	}
	if hist != bm.Imputed {
		t.Errorf("ambiguity histogram mass %d != imputed %d", hist, bm.Imputed)
	}
}

// TestBoundBlindEngineEviction checks that the per-plan blind-engine tier
// is LRU-bounded: touching more calibrations than MaxBoundCalibrations
// evicts the coldest, and evicted calibrations rebind transparently.
func TestBoundBlindEngineEviction(t *testing.T) {
	sampler, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	research, archive, err := sampler.ResearchArchive(rng.New(64), 250, 40)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Design(research, core.Options{NQ: 20})
	if err != nil {
		t.Fatal(err)
	}
	store, err := planstore.Open(t.TempDir(), planstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	planID, _, err := store.Put(plan)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := NewServer(store, ServerOptions{MaxBoundCalibrations: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	unlabelled := archive.DropS()

	// Three distinct calibrations for one plan (different research
	// subsets hash to different fingerprints).
	var calIDs []string
	for drop := 0; drop < 3; drop++ {
		sub, err := dataset.NewTable(research.Dim(), research.Names())
		if err != nil {
			t.Fatal(err)
		}
		for i := drop; i < research.Len(); i++ {
			if err := sub.Append(research.At(i)); err != nil {
				t.Fatal(err)
			}
		}
		calIDs = append(calIDs, fitOverHTTP(t, srv, planID, sub))
	}
	for _, calID := range calIDs {
		resp := postCSV(t, srv.URL+"/v1/repair?calibration="+calID+"&seed=1&workers=1", unlabelled)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("repair with %s: %s", calID, resp.Status)
		}
	}
	ps, err := handler.state(planID)
	if err != nil {
		t.Fatal(err)
	}
	ps.mu.Lock()
	bound := len(ps.blind)
	ps.mu.Unlock()
	if bound != 2 {
		t.Errorf("bound blind engines = %d, want 2", bound)
	}
	// The evicted calibration rebinds transparently.
	resp := postCSV(t, srv.URL+"/v1/repair?calibration="+calIDs[0]+"&seed=1&workers=1", unlabelled)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("rebind after eviction: %s", resp.Status)
	}
}

// TestCalibrationLifecycleOverHTTP covers upload dedup, listing, download
// and the error paths of the calibration surface.
func TestCalibrationLifecycleOverHTTP(t *testing.T) {
	srv, planID, research, unlabelled, plan := blindTestServer(t, 63, 250, 50, 25)
	calID := fitOverHTTP(t, srv, planID, research)

	// Download is the canonical bytes; re-uploading dedupes.
	resp, err := http.Get(srv.URL + "/v1/calibrations/" + calID)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	cal, err := blind.NewCalibration(plan, research)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cal.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want) {
		t.Error("downloaded calibration differs from a local fit's canonical bytes")
	}
	resp, err = http.Post(srv.URL+"/v1/calibrations", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		ID      string `json:"id"`
		Existed bool   `json:"existed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if up.ID != calID || !up.Existed {
		t.Errorf("upload: id=%s existed=%v, want %s/true", up.ID, up.Existed, calID)
	}

	// Listing.
	resp, err = http.Get(srv.URL + "/v1/calibrations")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Calibrations []string `json:"calibrations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Calibrations) != 1 || list.Calibrations[0] != calID {
		t.Errorf("calibrations = %v", list.Calibrations)
	}

	// Unlabelled repair without a calibration must fail loudly, not 200.
	resp = postCSV(t, srv.URL+"/v1/repair?plan="+planID+"&seed=1&workers=1", unlabelled)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("unlabelled stream repaired without a calibration")
	}

	// Mismatched plan/calibration pairs are rejected up front as a
	// conflict, and so is an upload naming a conflicting ?plan=.
	resp = postCSV(t, srv.URL+"/v1/repair?plan=ffffffffffffffffffffffffffffffff&calibration="+calID, unlabelled)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("calibration against a foreign plan id: %s, want 409", resp.Status)
	}
	resp, err = http.Post(srv.URL+"/v1/calibrations?plan=ffffffffffffffffffffffffffffffff", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("upload with conflicting plan parameter: %s, want 409", resp.Status)
	}

	// Unknown calibration, missing plan on fit, bad method.
	resp, err = http.Get(srv.URL + "/v1/calibrations/ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown calibration: %s, want 404", resp.Status)
	}
	resp = postCSV(t, srv.URL+"/v1/calibrations", research)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("fit without plan: %s, want 400", resp.Status)
	}
	resp = postCSV(t, srv.URL+"/v1/repair?calibration="+calID+"&method=nonsense", unlabelled)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad method: %s, want 400", resp.Status)
	}
}
