package repairsvc

// The shared refit budget: one bounded worker pool and queue across every
// bound lineage, replacing the old unbounded per-artefact
// `go s.runDriftLoop(...)`. A deployment serving many drifting plans now
// refits at a fixed concurrency — each refit is a full core.Design plus
// two shadow repairs, so N plans alarming together must not mean N
// simultaneous designs — and an alarm that cannot find queue room lands
// refit_failed instead of waiting, keeping the watcher state machine
// moving.

import (
	"context"
	"sync"
)

// refitJob is one claimed recalibration run.
type refitJob struct {
	ps    *planState
	runID string
}

// refitPool runs refit jobs on a fixed set of workers. Workers receive a
// context cancelled by close, so a feed retry ladder sleeping inside a
// job aborts promptly on shutdown.
type refitPool struct {
	jobs   chan refitJob
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func newRefitPool(s *Server, workers, depth int) *refitPool {
	ctx, cancel := context.WithCancel(context.Background())
	p := &refitPool{jobs: make(chan refitJob, depth), ctx: ctx, cancel: cancel}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case j := <-p.jobs:
					s.runDriftLoop(ctx, j.ps, j.runID)
				}
			}
		}()
	}
	return p
}

// enqueue offers a job to the shared budget without blocking — the
// callers are the serve path and the drift timer, and neither may wait
// on refit capacity. Reports whether the job was admitted.
func (p *refitPool) enqueue(j refitJob) bool {
	select {
	case p.jobs <- j:
		return true
	//otfair:nondet-ok bounded-queue admission off the response path; a full queue lands refit_failed, never a served byte
	default:
		return false
	}
}

// depth reports the jobs waiting in the queue (the
// otfair_refit_queue_depth gauge; 0 on a nil pool, i.e. drift disabled).
func (p *refitPool) depth() int {
	if p == nil {
		return 0
	}
	return len(p.jobs)
}

// close cancels in-flight jobs and waits for the workers to exit.
func (p *refitPool) close() {
	p.cancel()
	p.wg.Wait()
}
