package repairsvc

// The blind half of the HTTP surface: calibration artefact lifecycle
// (fit, upload, list, download) and the serving-state binding that lets
// POST /v1/repair accept s-unlabelled streams. A calibration is fitted
// once against a stored plan (POST /v1/calibrations with the research CSV)
// and persisted content-addressed next to the plans; repair requests then
// name it with ?calibration=<id> and pick a blind method per request.

import (
	"fmt"
	"net/http"

	"otfair/internal/blind"
	"otfair/internal/blindsvc"
	"otfair/internal/dataset"
)

// blindState resolves the serving state for a (plan, calibration) pair:
// the plan's labelled state (binding it if needed) plus the blind engine
// for the calibration, built once per (plan, calibration) and sharing the
// labelled engine's alias tables. planID may be empty — the calibration
// knows the plan it was fitted against; when given, it must match.
func (s *Server) blindState(planID, calID string) (*planState, *blindsvc.Engine, error) {
	cal, err := s.cals.Get(calID)
	if err != nil {
		return nil, nil, err
	}
	if planID == "" {
		planID = cal.PlanID()
	} else if planID != cal.PlanID() {
		return nil, nil, fmt.Errorf("%w: calibration %s was fitted for plan %s, not %s", errCalibrationMismatch, calID, cal.PlanID(), planID)
	}
	ps, err := s.state(planID)
	if err != nil {
		return nil, nil, err
	}
	ps.mu.Lock()
	if entry, ok := ps.blind[calID]; ok {
		ps.blindClock++
		entry.lastUsed = ps.blindClock
		eng := entry.engine
		ps.mu.Unlock()
		return ps, eng, nil
	}
	ps.mu.Unlock()
	// Bind outside the lock: the pooled plan's alias tables are the
	// expensive part and two racing requests at worst build them twice,
	// with one winner.
	eng, err := blindsvc.NewEngineShared(ps.engine.Plan(), cal, ps.engine.Sampler(), blindsvc.Options{Workers: s.opts.Workers, Fault: s.opts.Fault, Obs: s.om.shard})
	if err != nil {
		return nil, nil, err
	}
	ps.mu.Lock()
	if prior, ok := ps.blind[calID]; ok {
		eng = prior.engine
	} else {
		ps.blind[calID] = &blindEntry{engine: eng}
		// Bound the blind tier like the labelled one: each engine pins a
		// pooled-plan sampler, so memory must scale with the hot
		// calibration set, not with every calibration ever touched.
		for len(ps.blind) > s.opts.MaxBoundCalibrations {
			var coldID string
			var coldUsed uint64
			first := true
			// Full-scan min with a total tie-break (lastUsed, then ID), so
			// the victim is a pure function of the cache contents.
			//otfair:nondet-ok order-independent min: tie on lastUsed breaks on calibration ID
			for cid, entry := range ps.blind {
				if cid != calID && (first || entry.lastUsed < coldUsed ||
					(entry.lastUsed == coldUsed && cid < coldID)) {
					coldID, coldUsed, first = cid, entry.lastUsed, false
				}
			}
			if first {
				break
			}
			delete(ps.blind, coldID)
		}
	}
	ps.blindClock++
	ps.blind[calID].lastUsed = ps.blindClock
	ps.mu.Unlock()
	return ps, eng, nil
}

// handleCalibrationsPost fits a calibration from a research CSV body
// (text/csv, ?plan=<id> naming the stored plan it calibrates) or registers
// an uploaded serialized calibration (application/json). Either way the
// artefact lands in the calibration store and the response carries its
// content fingerprint.
func (s *Server) handleCalibrationsPost(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	var (
		cal *blind.Calibration
		err error
	)
	switch ct := mediaType(r); {
	case ct == "application/json":
		cal, err = blind.ReadCalibration(r.Body)
		if err != nil {
			httpError(w, errStatusOr(err, http.StatusBadRequest), "invalid calibration upload: %v", err)
			return
		}
		// An uploaded calibration carries its own plan binding; a
		// conflicting ?plan= is a client error, not something to silently
		// ignore. (The plan itself may arrive later — fleet peers upload
		// in either order — so its absence from the store is not checked.)
		if planID := r.URL.Query().Get("plan"); planID != "" && planID != cal.PlanID() {
			httpError(w, http.StatusConflict, "uploaded calibration was fitted for plan %s, not %s", cal.PlanID(), planID)
			return
		}
	case ct == "text/csv" || ct == "":
		planID := r.URL.Query().Get("plan")
		if planID == "" {
			httpError(w, http.StatusBadRequest, "missing plan parameter")
			return
		}
		plan, perr := s.store.Get(planID)
		if perr != nil {
			httpError(w, errStatus(perr), "%v", perr)
			return
		}
		research, rerr := dataset.ReadCSV(r.Body)
		if rerr != nil {
			httpError(w, errStatusOr(rerr, http.StatusBadRequest), "invalid research csv: %v", rerr)
			return
		}
		cal, err = blind.NewCalibration(plan, research)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "calibration failed: %v", err)
			return
		}
	default:
		httpError(w, http.StatusUnsupportedMediaType, "send research data as text/csv or a calibration as application/json, got %q", ct)
		return
	}
	id, created, err := s.cals.Put(cal)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "storing calibration: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":                  id,
		"plan":                cal.PlanID(),
		"dim":                 cal.Dim(),
		"research_records":    cal.ResearchRecords(),
		"research_confidence": cal.ResearchConfidence(),
		"existed":             !created,
	})
}

func (s *Server) handleCalibrationsList(w http.ResponseWriter, r *http.Request) {
	ids, err := s.cals.IDs()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"calibrations": ids})
}

func (s *Server) handleCalibrationGet(w http.ResponseWriter, r *http.Request) {
	cal, err := s.cals.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, errStatus(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := cal.WriteJSON(w); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

// blindMetrics snapshots the per-calibration blind telemetry of one plan
// state for /v1/metrics: imputation traffic, the posterior-confidence mean
// with its drift from the research-time baseline, and the ambiguity
// histogram.
func blindMetrics(ps *planState) map[string]any {
	ps.mu.Lock()
	engines := make(map[string]*blindsvc.Engine, len(ps.blind))
	//otfair:nondet-ok map-to-map copy; key set is order-free and JSON marshaling sorts keys
	for id, entry := range ps.blind {
		engines[id] = entry.engine
	}
	ps.mu.Unlock()
	out := make(map[string]any, len(engines))
	//otfair:nondet-ok map-to-map copy; the response map is serialized with sorted keys
	for id, eng := range engines {
		totals := eng.Totals()
		cal := eng.Calibration()
		entry := map[string]any{
			"records":             totals.Records,
			"labels_used":         totals.LabelsUsed,
			"imputed":             totals.Imputed,
			"research_confidence": cal.ResearchConfidence(),
			"ambiguity_histogram": totals.AmbiguityBins,
		}
		// Confidence statistics are undefined until something was imputed
		// (pooled traffic and fully labelled streams never consult the
		// posterior); reporting a zero mean would read as a huge spurious
		// negative drift, so the fields are omitted instead.
		if totals.Imputed > 0 {
			entry["mean_confidence"] = totals.MeanConfidence()
			// Drift of the serving-time posterior confidence against the
			// research baseline: strongly negative means the archive is far
			// more ambiguous than the data the calibration was fitted on.
			entry["confidence_drift"] = totals.MeanConfidence() - cal.ResearchConfidence()
		}
		out[id] = entry
	}
	return out
}
