package repairsvc

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"otfair/internal/core"
	"otfair/internal/dataset"
)

// The repair endpoint is a record-stream transformer, so both wire formats
// are implemented as (input Stream, output sink, finish) triples around the
// request/response bodies. Response headers and the CSV header row are
// written lazily on the first repaired record, so validation errors that
// precede any output (unknown plan, dimension mismatch) still produce clean
// JSON errors.

// csvPipe adapts the dataset CSV layout ("s,u,<features...>").
func (s *Server) csvPipe(w http.ResponseWriter, body io.Reader, plan *core.Plan) (dataset.Stream, func(dataset.Record) error, func() error, error) {
	in, err := dataset.NewCSVStream(body)
	if err != nil {
		return nil, nil, nil, err
	}
	var cw *csv.Writer
	row := make([]string, 2+plan.Dim)
	ensure := func() {
		if cw != nil {
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		w.WriteHeader(http.StatusOK)
		cw = csv.NewWriter(w)
		cw.Write(append([]string{"s", "u"}, plan.Names...))
	}
	sink := func(rec dataset.Record) error {
		ensure()
		if rec.S == dataset.SUnknown {
			row[0] = ""
		} else {
			row[0] = strconv.Itoa(rec.S)
		}
		row[1] = strconv.Itoa(rec.U)
		for k, v := range rec.X {
			row[2+k] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		return cw.Write(row)
	}
	finish := func() error {
		ensure() // header-only response for an empty stream
		cw.Flush()
		return cw.Error()
	}
	return in, sink, finish, nil
}

// wireRecord is the NDJSON record shape, identical both directions. A
// missing or null s marks an unknown protected attribute (which the repair
// path rejects — estimate labels first).
type wireRecord struct {
	X []float64 `json:"x"`
	S *int      `json:"s"`
	U int       `json:"u"`
}

// ndjsonStream decodes one wireRecord per line.
type ndjsonStream struct {
	sc   *bufio.Scanner
	dim  int
	line int
}

func (n *ndjsonStream) Dim() int { return n.dim }

func (n *ndjsonStream) Next() (dataset.Record, error) {
	for n.sc.Scan() {
		n.line++
		raw := n.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var wr wireRecord
		if err := json.Unmarshal(raw, &wr); err != nil {
			return dataset.Record{}, fmt.Errorf("repairsvc: ndjson line %d: %w", n.line, err)
		}
		if len(wr.X) != n.dim {
			return dataset.Record{}, fmt.Errorf("repairsvc: ndjson line %d: %d features, want %d", n.line, len(wr.X), n.dim)
		}
		rec := dataset.Record{X: wr.X, U: wr.U, S: dataset.SUnknown}
		if wr.S != nil {
			rec.S = *wr.S
		}
		return rec, nil
	}
	if err := n.sc.Err(); err != nil {
		return dataset.Record{}, err
	}
	return dataset.Record{}, io.EOF
}

// ndjsonPipe adapts newline-delimited JSON records.
func (s *Server) ndjsonPipe(w http.ResponseWriter, body io.Reader, plan *core.Plan) (dataset.Stream, func(dataset.Record) error, func() error, error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	in := &ndjsonStream{sc: sc, dim: plan.Dim}
	var bw *bufio.Writer
	enc := (*json.Encoder)(nil)
	ensure := func() {
		if bw != nil {
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		bw = bufio.NewWriter(w)
		enc = json.NewEncoder(bw)
	}
	sink := func(rec dataset.Record) error {
		ensure()
		wr := wireRecord{X: rec.X, U: rec.U}
		if rec.S != dataset.SUnknown {
			s := rec.S
			wr.S = &s
		}
		return enc.Encode(wr)
	}
	finish := func() error {
		ensure()
		return bw.Flush()
	}
	return in, sink, finish, nil
}
