package repairsvc

// The deterministic fault-injection soak (tentpole part of the
// resilience work, run under -race by `make soak`). A seeded injector
// schedules shard delays, shard panics and store read faults while a
// concurrent client mix — both engines, both wire formats, varying
// worker counts, some requests with hopeless deadlines, some clients
// that vanish mid-stream — hammers one server behind a small admission
// gate. The contract under test is the whole PR in one sentence: every
// request that succeeds returns bytes identical to an unfaulted serve,
// every request that fails fails with a typed status, and the process
// sheds and recovers instead of leaking or corrupting.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"otfair/internal/faultinject"
	"otfair/internal/obs"
)

// soakCombo is one request shape: engine × wire format × worker count.
type soakCombo struct {
	name        string
	query       string
	contentType string
	body        []byte
}

func soakCombos(t *testing.T, planID, calID string, labelledCSV, labelledND, blindCSV, blindND []byte) []soakCombo {
	t.Helper()
	var combos []soakCombo
	for _, workers := range []int{1, 2} {
		w := strconv.Itoa(workers)
		combos = append(combos,
			soakCombo{"labelled-csv-w" + w, "plan=" + planID + "&seed=7&workers=" + w, "text/csv", labelledCSV},
			soakCombo{"labelled-ndjson-w" + w, "plan=" + planID + "&seed=7&workers=" + w + "&format=ndjson", "application/x-ndjson", labelledND},
			soakCombo{"blind-csv-w" + w, "calibration=" + calID + "&method=hard&seed=7&workers=" + w, "text/csv", blindCSV},
			soakCombo{"blind-ndjson-w" + w, "calibration=" + calID + "&method=hard&seed=7&workers=" + w + "&format=ndjson", "application/x-ndjson", blindND},
		)
	}
	return combos
}

// soakOutcome classifies one request.
type soakOutcome struct {
	combo    string
	status   int  // 0 when the transfer aborted before/during the response
	complete bool // a 200 whose body arrived fully
	match    bool // ...and matched the unfaulted reference
	aborted  bool // transport error (expected for canceled / deadline-cut streams)
}

func TestSoak(t *testing.T) {
	leakCheck(t)
	spoolDirCheck(t)

	nReq := 64
	if v := os.Getenv("OTFAIR_SOAK_REQUESTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("OTFAIR_SOAK_REQUESTS=%q is not a positive integer", v)
		}
		nReq = n
	}

	plan, research, archive := testData(t, 41, 250, 2000, 30)
	unlabelled := archive.DropS()

	// Reference bytes per combo, from a server with no faults injected.
	refSrv, _, refPlanID := resilienceServer(t, plan, ServerOptions{MetricWindow: 4096})
	refCalID := fitOverHTTP(t, refSrv, refPlanID, research)
	refCombos := soakCombos(t, refPlanID, refCalID,
		tableCSV(t, archive), tableNDJSON(t, archive),
		tableCSV(t, unlabelled), tableNDJSON(t, unlabelled))
	refs := make(map[string][]byte, len(refCombos))
	for _, c := range refCombos {
		resp, err := http.Post(refSrv.URL+"/v1/repair?"+c.query, c.contentType, bytes.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("reference %s: %s %v", c.name, resp.Status, err)
		}
		refs[c.name] = raw
	}

	// The system under soak: seeded faults on every hook the engines and
	// store expose, behind a deliberately small admission gate.
	inj := faultinject.New(1701).
		Set(faultinject.ShardSlow, faultinject.Rule{Every: 3, Delay: 2 * time.Millisecond}).
		Set(faultinject.ShardPanic, faultinject.Rule{Every: 11}).
		Set(faultinject.StoreRead, faultinject.Rule{Every: 2, Limit: 2, Err: errors.New("injected read fault")})
	// Tracing and structured logging run at full tilt during the soak —
	// every request traced with per-record sampling, every request logged —
	// so the instrumentation is exercised under the same races and faults
	// as the serving paths it watches.
	srv, _, planID := resilienceServer(t, plan, ServerOptions{
		MetricWindow: 4096,
		MaxInflight:  4,
		Fault:        inj,
		SlowRequest:  time.Millisecond,
		TraceSample:  1,
		Logger:       slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	calID := fitOverHTTP(t, srv, planID, research)
	combos := soakCombos(t, planID, calID,
		tableCSV(t, archive), tableNDJSON(t, archive),
		tableCSV(t, unlabelled), tableNDJSON(t, unlabelled))

	// Request mix, decided up front so the schedule is a pure function of
	// the request index: every 7th request gets a deadline it cannot meet,
	// every 6th client hangs up mid-stream.
	outcomes := make([]soakOutcome, nReq)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i := 0; i < nReq; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			c := combos[i%len(combos)]
			tinyDeadline := i%7 == 3
			hangUp := i%6 == 5
			out := soakOutcome{combo: c.name}

			query := c.query
			if tinyDeadline {
				query += "&deadline_ms=1"
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/repair?"+query, bytes.NewReader(c.body))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", c.contentType)
			resp, err := srv.Client().Do(req)
			if err != nil {
				out.aborted = true
				outcomes[i] = out
				return
			}
			defer resp.Body.Close()
			out.status = resp.StatusCode
			if hangUp {
				// Read a sliver, then vanish.
				io.ReadFull(resp.Body, make([]byte, 256))
				cancel()
				io.Copy(io.Discard, resp.Body)
				out.aborted = true
				outcomes[i] = out
				return
			}
			raw, rerr := io.ReadAll(resp.Body)
			if rerr != nil {
				// Mid-stream abort (deadline or panic after first byte): the
				// transfer must die, not end in a well-formed short response.
				out.aborted = true
				outcomes[i] = out
				return
			}
			if resp.StatusCode == http.StatusOK {
				out.complete = true
				out.match = bytes.Equal(raw, refs[c.name])
			} else {
				// Typed failures arrive as JSON error bodies.
				var e struct {
					Error string `json:"error"`
				}
				if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
					t.Errorf("req %d (%s): status %d with untyped body %q", i, c.name, resp.StatusCode, raw)
				}
			}
			outcomes[i] = out
		}(i)
	}
	wg.Wait()

	counts := map[int]int{}
	succeeded, aborted, mismatched := 0, 0, 0
	for i, out := range outcomes {
		switch {
		case out.aborted:
			aborted++
		case out.complete:
			succeeded++
			if !out.match {
				mismatched++
				t.Errorf("req %d (%s): 200 body differs from the unfaulted reference", i, out.combo)
			}
		default:
			counts[out.status]++
			switch out.status {
			case http.StatusTooManyRequests, http.StatusInternalServerError, http.StatusServiceUnavailable:
				// The typed overload/fault statuses the resilience layer maps to.
			default:
				t.Errorf("req %d (%s): untyped failure status %d", i, out.combo, out.status)
			}
		}
	}
	t.Logf("soak: %d requests — %d succeeded byte-identical, %d aborted transfers, failures by status: %v",
		nReq, succeeded, aborted, counts)
	if succeeded == 0 {
		t.Error("soak produced no successful requests — the mix is all faults, nothing was verified")
	}
	if mismatched > 0 {
		t.Errorf("%d of %d successful requests were not byte-identical", mismatched, succeeded)
	}

	// The failures were counted, not just survived.
	res := resilienceMetrics(t, srv, planID)
	var total float64
	for _, k := range []string{"shed", "deadline_exceeded", "disconnects", "panics"} {
		v, _ := res[k].(float64)
		total += v
	}
	if total == 0 && succeeded < nReq {
		t.Errorf("requests failed but no resilience counter moved: %v", res)
	}

	// A live scrape of the soaked server must still parse and carry the
	// key series. (Exact request counts are racy here: hang-up clients
	// return before their handlers finish, so assert presence, not totals.)
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	samples, perr := obs.ParseText(mresp.Body)
	mresp.Body.Close()
	if perr != nil {
		t.Fatalf("post-soak /metrics does not parse: %v", perr)
	}
	m := sampleMap(samples)
	if m[`otfair_shard_seconds_count`] < 1 {
		t.Error("post-soak scrape: no shard timings recorded")
	}
	if m[`otfair_repair_stage_seconds_count{stage="shard_execute"}`] < 1 {
		t.Error("post-soak scrape: no shard_execute stage spans recorded")
	}
	if m[`otfair_http_request_seconds_count{route="repair"}`] < float64(succeeded) {
		t.Errorf("post-soak scrape: repair route count %v < %d successes",
			m[`otfair_http_request_seconds_count{route="repair"}`], succeeded)
	}
}
