package repairsvc

// The observability assembly of the HTTP front end: one obs.Registry
// holding every Prometheus family the server exports, one obs.Tracer
// generating request IDs and per-stage span slabs for the repair path, and
// the slog request log. Everything here is bound once in NewServer;
// per-request work is histogram observes and counter adds (plus one
// request-ID allocation per trace), and per-record work is exactly the
// nil-checks the engines and codecs were instrumented with.

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"otfair/internal/blind"
	"otfair/internal/blindsvc"
	"otfair/internal/core"
	"otfair/internal/obs"
	"otfair/internal/planstore"
	"otfair/internal/shardrun"
)

// serverObs is the server's bound instrumentation: the registry, the
// tracer, the request logger, and every preresolved instrument the hot
// handlers touch.
type serverObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	log    *slog.Logger

	// Per-route request latency histograms, preresolved so the middleware
	// never hits the registry mutex for a known route.
	routeSeconds map[string]*obs.Histogram
	// Repair-path instruments.
	stageSeconds  [obs.NumStages]*obs.Histogram
	recordsTotal  *obs.Counter
	recordsPerReq *obs.Histogram
	aborted       *obs.Counter
	// shard is handed to every engine the server binds (both labelled and
	// blind share it: the runner is one subsystem).
	shard *shardrun.Obs
}

// routes is the fixed route-label set; unknown paths collapse to "other"
// so request-supplied paths can never mint new series.
var routes = []string{
	"healthz", "readyz", "buildinfo", "plans", "plan_get",
	"calibrations", "calibration_get", "repair", "research", "refs", "metrics", "metrics_prom", "other",
}

// routeLabel maps a request to its route label without touching r.Pattern
// (unset on the outer request) or allocating.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/healthz":
		return "healthz"
	case "/readyz":
		return "readyz"
	case "/v1/buildinfo":
		return "buildinfo"
	case "/v1/plans":
		return "plans"
	case "/v1/calibrations":
		return "calibrations"
	case "/v1/repair":
		return "repair"
	case "/v1/research":
		return "research"
	case "/v1/refs":
		return "refs"
	case "/v1/metrics":
		return "metrics"
	case "/metrics":
		return "metrics_prom"
	}
	switch {
	case strings.HasPrefix(p, "/v1/plans/"):
		return "plan_get"
	case strings.HasPrefix(p, "/v1/calibrations/"):
		return "calibration_get"
	}
	return "other"
}

// newServerObs assembles the registry: the handler-side instruments, the
// engine/runner hook set, the store read-latency bindings, and the
// func-backed exports of the pre-existing cumulative state (resilience
// counters, store stats, gate occupancy) that must not be counted twice.
func newServerObs(s *Server) *serverObs {
	reg := s.opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := s.opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	om := &serverObs{
		reg: reg,
		tracer: obs.NewTracer(obs.TracerOptions{
			SlowThreshold: s.opts.SlowRequest,
			SampleEvery:   s.opts.TraceSample,
		}),
		log:          logger,
		routeSeconds: make(map[string]*obs.Histogram, len(routes)),
	}

	lat := obs.DefLatencyBuckets()
	for _, route := range routes {
		om.routeSeconds[route] = reg.HistogramL("otfair_http_request_seconds",
			"HTTP request latency by route.", lat, "route", route)
	}
	for i, name := range obs.StageNames() {
		om.stageSeconds[i] = reg.HistogramL("otfair_repair_stage_seconds",
			"Repair request time by stage (decode/encode only on trace-sampled requests).",
			//otfair:cardinality-ok StageNames is obs's fixed compile-time stage list
			lat, "stage", name)
	}
	om.recordsTotal = reg.Counter("otfair_repair_records_total",
		"Records emitted by the repair endpoint across all plans.")
	om.recordsPerReq = reg.Histogram("otfair_repair_request_records",
		"Records per repair request.", obs.DefSizeBuckets())
	om.aborted = reg.Counter("otfair_http_aborted_total",
		"Responses aborted mid-stream (connection torn down on purpose).")

	om.shard = &shardrun.Obs{
		ShardSeconds: reg.Histogram("otfair_shard_seconds",
			"Wall time of each shard closure in the runner.", lat),
		ChunkRecords: reg.Histogram("otfair_shard_chunk_records",
			"Records per streamed chunk in the runner.", obs.DefSizeBuckets()),
		Shards: reg.Counter("otfair_shards_total", "Shard closures run."),
		Panics: reg.Counter("otfair_shard_panics_total", "Shard closures that panicked."),
	}

	// Store read latencies, one series per namespace.
	s.store.SetReadLatency(reg.HistogramL("otfair_store_read_seconds",
		"Artefact disk-read latency (memory misses; retries included).", lat, "store", "plan"))
	s.cals.SetReadLatency(reg.HistogramL("otfair_store_read_seconds",
		"Artefact disk-read latency (memory misses; retries included).", lat, "store", "calibration"))
	s.research.SetReadLatency(reg.HistogramL("otfair_store_read_seconds",
		"Artefact disk-read latency (memory misses; retries included).", lat, "store", "research"))

	// Shared refit budget backlog. Reads the pool at scrape time; the
	// pool is bound once in NewServer before any scrape can happen, and a
	// drift-disabled server reports a truthful zero.
	reg.GaugeFunc("otfair_refit_queue_depth",
		"Refit jobs waiting in the shared recalibration queue.",
		func() float64 { return float64(s.refit.depth()) })

	// Func-backed exports of cumulative state owned elsewhere. Reading at
	// scrape time is what keeps these single-sourced: the JSON endpoint and
	// the exposition always agree.
	for _, ns := range []struct {
		label string
		stats func() planstore.Stats
	}{
		{"plan", s.store.Stats},
		{"calibration", s.cals.Stats},
		{"research", s.research.Stats},
	} {
		st := ns.stats
		for _, op := range []struct {
			op string
			fn func(planstore.Stats) uint64
		}{
			{"mem_hit", func(v planstore.Stats) uint64 { return v.MemHits }},
			{"disk_hit", func(v planstore.Stats) uint64 { return v.DiskHits }},
			{"miss", func(v planstore.Stats) uint64 { return v.Misses }},
			{"put", func(v planstore.Stats) uint64 { return v.Puts }},
			{"dup_put", func(v planstore.Stats) uint64 { return v.DupPuts }},
			{"eviction", func(v planstore.Stats) uint64 { return v.Evictions }},
			{"read_retry", func(v planstore.Stats) uint64 { return v.ReadRetries }},
			{"quarantined", func(v planstore.Stats) uint64 { return v.Quarantined }},
		} {
			fn := op.fn
			reg.CounterFunc("otfair_store_ops_total", "Artefact store operations by namespace and op.",
				func() float64 { return float64(fn(st())) }, "store", ns.label, "op", op.op)
		}
	}

	// Artefact freshness, sampled at scrape time from the stores' file
	// mtimes — the fleet-level "is anything recalibrating?" signal that
	// pairs with the drift series: a swapped recalibration moves this
	// toward zero.
	for _, ns := range []struct {
		kind   string
		newest func() (time.Time, error)
	}{
		{"plan", s.store.NewestMTime},
		{"calibration", s.cals.NewestMTime},
		{"research", s.research.NewestMTime},
	} {
		newest := ns.newest
		reg.GaugeFunc("otfair_artefact_age_seconds",
			"Age of the youngest stored artefact per namespace (NaN while the namespace is empty).",
			func() float64 {
				mt, err := newest()
				if err != nil || mt.IsZero() {
					return math.NaN()
				}
				//otfair:nondet-ok scrape-time age gauge; never reaches a served repair byte
				return time.Since(mt).Seconds()
			}, "kind", ns.kind)
	}

	// Blind telemetry, aggregated across every bound blind engine at scrape
	// time. Aggregation is what bounds the cardinality: the series carry no
	// calibration label, so an unbounded calibration population cannot mint
	// series. Evicting a cold blind engine drops its contribution (the
	// serving state is not the durable tier); rate() users should treat
	// resets like restarts.
	reg.GaugeFunc("otfair_blind_mean_confidence",
		"Mean MAP-posterior confidence over imputed records, all bound calibrations (NaN before any imputation).",
		func() float64 {
			a := s.blindAggregate()
			if a.Imputed == 0 {
				return math.NaN()
			}
			return a.ConfidenceSum / float64(a.Imputed)
		})
	reg.GaugeFunc("otfair_blind_confidence_drift",
		"Imputation-weighted drift of serving-time posterior confidence from the research baseline (NaN before any imputation).",
		func() float64 {
			a := s.blindAggregate()
			if a.Imputed == 0 {
				return math.NaN()
			}
			return (a.ConfidenceSum - a.BaseSum) / float64(a.Imputed)
		})
	reg.CounterFunc("otfair_blind_imputed_total",
		"Records repaired under the posterior (s label imputed), all bound calibrations.",
		func() float64 { return float64(s.blindAggregate().Imputed) })
	reg.CounterFunc("otfair_blind_labels_used_total",
		"Blind-endpoint records that arrived with an observed s label, all bound calibrations.",
		func() float64 { return float64(s.blindAggregate().LabelsUsed) })
	for i := 0; i < blind.AmbiguityBinCount; i++ {
		i := i
		reg.CounterFunc("otfair_blind_ambiguity_total",
			"Imputed records by posterior-ambiguity bin (bin 0 = most confident, highest bin = coin-flip).",
			func() float64 { return float64(s.blindAggregate().Bins[i]) }, "bin", strconv.Itoa(i))
	}

	reg.CounterFunc("otfair_shed_total", "Requests refused by the admission gate.",
		func() float64 { return float64(s.res.Shed.Load()) })
	reg.CounterFunc("otfair_deadline_exceeded_total", "Repairs aborted by the per-request budget.",
		func() float64 { return float64(s.res.DeadlineExceeded.Load()) })
	reg.CounterFunc("otfair_disconnects_total", "Repairs aborted by client disconnect.",
		func() float64 { return float64(s.res.Disconnects.Load()) })
	reg.CounterFunc("otfair_worker_panics_total", "Worker panics converted to per-request errors.",
		func() float64 { return float64(s.res.Panics.Load()) })
	reg.CounterFunc("otfair_slow_requests_total", "Repair requests at or past the slow threshold.",
		func() float64 { return float64(om.tracer.SlowTotal()) })
	reg.GaugeFunc("otfair_inflight_requests", "Admitted repair requests in flight.",
		func() float64 { in, _ := s.gate.snapshot(); return float64(in) })
	reg.GaugeFunc("otfair_queued_bytes", "Spooled request-body bytes occupying the queue budget.",
		func() float64 { _, qb := s.gate.snapshot(); return float64(qb) })
	reg.GaugeFunc("otfair_bound_plans", "Plan serving states held in memory.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.states)) })
	reg.GaugeFunc("otfair_draining", "1 while the server is draining.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("otfair_design_cache_hits_total", "Design warm-start cache hits.",
		func() float64 { h, _ := core.DesignCacheStats(); return float64(h) })
	reg.CounterFunc("otfair_design_cache_misses_total", "Design warm-start cache misses.",
		func() float64 { _, m := core.DesignCacheStats(); return float64(m) })

	version, goVersion, revision := buildInfo()
	reg.GaugeFunc("otfair_build_info", "Build metadata; value is always 1.",
		func() float64 { return 1 },
		//otfair:cardinality-ok build identity is constant for the process lifetime: one series per binary
		"version", version, "go", goVersion, "revision", revision)

	return om
}

// blindAgg is the scrape-time fold of every bound blind engine's counters.
type blindAgg struct {
	LabelsUsed, Imputed int64
	// ConfidenceSum accumulates max(γ, 1−γ) over imputed records; BaseSum
	// accumulates Imputed × research-time baseline confidence, so
	// (ConfidenceSum − BaseSum) / Imputed is the imputation-weighted drift.
	ConfidenceSum, BaseSum float64
	Bins                   [blind.AmbiguityBinCount]int64
}

// blindAggregate folds the blind telemetry of every bound plan state. Lock
// order is Server.mu then planState.mu, the same order every handler uses,
// and engine counters are read outside both locks.
func (s *Server) blindAggregate() blindAgg {
	var a blindAgg
	s.mu.Lock()
	states := make([]*planState, 0, len(s.states))
	//otfair:nondet-ok scrape-time commutative fold: every state's counters are summed
	for _, ps := range s.states {
		states = append(states, ps)
	}
	s.mu.Unlock()
	for _, ps := range states {
		ps.mu.Lock()
		engines := make([]*blindsvc.Engine, 0, len(ps.blind))
		//otfair:nondet-ok scrape-time commutative fold: every engine's counters are summed
		for _, entry := range ps.blind {
			engines = append(engines, entry.engine)
		}
		ps.mu.Unlock()
		for _, eng := range engines {
			t := eng.Totals()
			a.LabelsUsed += t.LabelsUsed
			a.Imputed += t.Imputed
			a.ConfidenceSum += t.ConfidenceSum
			a.BaseSum += float64(t.Imputed) * eng.Calibration().ResearchConfidence()
			for i, v := range t.AmbiguityBins {
				a.Bins[i] += v
			}
		}
	}
	return a
}

// buildInfo extracts version/go/revision from the embedded build info,
// with honest placeholders when built outside a module or VCS checkout.
func buildInfo() (version, goVersion, revision string) {
	version, goVersion, revision = "unknown", runtime.Version(), "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	} else if bi.Main.Version == "(devel)" {
		version = "devel"
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			revision = kv.Value
		}
	}
	return
}

// requestDone records one finished HTTP request in the route metrics.
func (om *serverObs) requestDone(route string, code int, d time.Duration, aborted bool) {
	if code == 0 {
		code = http.StatusOK
	}
	om.routeSeconds[route].ObserveDuration(d)
	om.reg.CounterL("otfair_http_requests_total", "HTTP requests by route and status code.",
		//otfair:cardinality-ok route comes from routeLabel's fixed set and code from the server's chosen statuses
		"route", route, "code", strconv.Itoa(code)).Inc()
	if aborted {
		om.aborted.Inc()
	}
}

// finishRepair completes a repair request's trace: per-stage histograms,
// records accounting, the slow ring, and the structured request log line.
// The detail string is only composed when something will read it (slow
// ring or log), keeping the happy path to histogram observes.
func (om *serverObs) finishRepair(tr *obs.Trace, plan, cal string, records, status int, aborted bool) {
	artefact := plan
	if cal != "" {
		artefact = cal
	}
	detail := fmt.Sprintf("plan=%s calibration=%s records=%d status=%d aborted=%t", plan, cal, records, status, aborted)
	res := om.tracer.Finish(tr, detail)
	for st, d := range res.Stages {
		if d > 0 {
			om.stageSeconds[st].ObserveDuration(d)
		}
	}
	if records > 0 {
		om.recordsTotal.Add(uint64(records))
		om.recordsPerReq.Observe(float64(records))
	}
	lvl := slog.LevelInfo
	if res.Slow {
		lvl = slog.LevelWarn
	}
	om.log.LogAttrs(context.Background(), lvl, "repair request",
		slog.String("component", "repairsvc"),
		slog.String("request_id", res.ID),
		slog.String("artefact", artefact),
		slog.String("plan", plan),
		slog.String("calibration", cal),
		slog.Int("records", records),
		slog.Int("status", status),
		slog.Bool("aborted", aborted),
		slog.Bool("slow", res.Slow),
		slog.Duration("total", res.Total),
		slog.Duration("spool", res.Stages[obs.StageSpool]),
		slog.Duration("shard_execute", res.Stages[obs.StageShardExecute]),
	)
}

// histSummary renders a histogram for the JSON metrics endpoint: count,
// mean and the standard latency quantiles, estimated by bucket
// interpolation (the same estimate histogram_quantile would give a
// Prometheus server scraping /metrics).
func histSummary(h *obs.Histogram) map[string]any {
	s := h.Snapshot()
	return map[string]any{
		"count": s.Count,
		"mean":  s.Mean(),
		"p50":   s.Quantile(0.50),
		"p95":   s.Quantile(0.95),
		"p99":   s.Quantile(0.99),
	}
}

// observability assembles the /v1/metrics "observability" section:
// histogram summaries for the request/stage/shard latencies and the
// trace-sampled slow-request records.
func (om *serverObs) observability() map[string]any {
	stages := make(map[string]any, obs.NumStages)
	for i, name := range obs.StageNames() {
		stages[name] = histSummary(om.stageSeconds[i])
	}
	slow := om.tracer.Slow()
	slowOut := make([]map[string]any, len(slow))
	for i, sr := range slow {
		stageDur := make(map[string]string, obs.NumStages)
		for st, d := range sr.Stages {
			if d > 0 {
				stageDur[obs.Stage(st).String()] = d.String()
			}
		}
		slowOut[i] = map[string]any{
			"request_id": sr.ID,
			"at":         sr.At.UTC().Format(time.RFC3339Nano),
			"total":      sr.Total.String(),
			"stages":     stageDur,
			"detail":     sr.Detail,
		}
	}
	return map[string]any{
		"request_seconds": map[string]any{
			"repair":  histSummary(om.routeSeconds["repair"]),
			"metrics": histSummary(om.routeSeconds["metrics"]),
		},
		"stage_seconds":       stages,
		"shard_seconds":       histSummary(om.shard.ShardSeconds),
		"shards_total":        om.shard.Shards.Load(),
		"shard_panics_total":  om.shard.Panics.Load(),
		"records_total":       om.recordsTotal.Load(),
		"request_records":     histSummary(om.recordsPerReq),
		"slow_requests_total": om.tracer.SlowTotal(),
		"slow_requests":       slowOut,
	}
}

// statusRecorder captures the response status for the route metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.code == 0 {
		sr.code = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.code == 0 {
		sr.code = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// handleMetricsProm serves the Prometheus text exposition.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.TextContentType)
	s.om.reg.WritePrometheus(w)
}

// handleBuildInfo reports the build's identity from the embedded build
// info — what exactly is running, for fleet auditing and bug reports.
func (s *Server) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	version, goVersion, revision := buildInfo()
	writeJSON(w, http.StatusOK, map[string]any{
		"version":  version,
		"go":       goVersion,
		"revision": revision,
	})
}
