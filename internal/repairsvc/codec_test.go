package repairsvc

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// The NDJSON error-path contract: a request that fails after the response
// has started must abort the connection — the client observes a failed
// transfer, either as an error on the POST itself (nothing flushed yet) or
// as an error reading the body (stream torn mid-transfer) — never a clean,
// complete-looking 200 with silently missing records. A request whose very
// first record is bad fails before any output and gets a clean JSON error
// instead. These tests pin both halves for the three malformation classes:
// a syntactically broken line mid-stream, an oversized record, and a
// record with the wrong feature count.

// ndjsonBody encodes n valid records for the given plan dimension followed
// by the provided raw tail lines.
func ndjsonBody(t *testing.T, dim, n int, tail ...string) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		for k := range x {
			x[k] = float64(i%3) + 0.25*float64(k)
		}
		s := i % 2
		if err := enc.Encode(wireRecord{X: x, S: &s, U: (i / 2) % 2}); err != nil {
			t.Fatal(err)
		}
	}
	for _, line := range tail {
		buf.WriteString(line + "\n")
	}
	return &buf
}

// postNDJSON sends the body with workers=1 (the serial mode, so records
// sink one at a time and mid-stream failures happen after output started).
// It folds transport- and read-level failures into one error: either means
// the transfer did not complete cleanly.
func postNDJSON(t *testing.T, url string, body io.Reader) (status int, read []byte, err error) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", body)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	read, err = io.ReadAll(resp.Body)
	return resp.StatusCode, read, err
}

func TestNDJSONMalformedLineMidStreamAborts(t *testing.T) {
	plan, _, _ := testData(t, 71, 250, 10, 25)
	srv, id := newTestServer(t, plan)
	url := srv.URL + "/v1/repair?plan=" + id + "&seed=1&workers=1&format=ndjson"

	_, read, err := postNDJSON(t, url, ndjsonBody(t, plan.Dim, 8, `{"x": [1.0, broken`))
	if err == nil {
		t.Fatalf("malformed mid-stream line returned a clean complete response (%d bytes)", len(read))
	}
	// Whatever arrived before the abort is whole records, never a torn row.
	if len(read) > 0 && !bytes.HasSuffix(bytes.TrimRight(read, "\n"), []byte("}")) {
		t.Error("aborted stream truncated mid-record")
	}
}

func TestNDJSONOversizedRecordAborts(t *testing.T) {
	plan, _, _ := testData(t, 72, 250, 10, 25)
	srv, id := newTestServer(t, plan)
	url := srv.URL + "/v1/repair?plan=" + id + "&seed=1&workers=1&format=ndjson"

	// One line past the scanner's 4 MiB cap.
	huge := `{"x": [0.1, ` + strings.Repeat("0,", 3*1024*1024) + `0.2], "s": 0, "u": 0}`
	_, read, err := postNDJSON(t, url, ndjsonBody(t, plan.Dim, 5, huge))
	if err == nil {
		t.Fatalf("oversized record returned a clean complete response (%d bytes)", len(read))
	}

	// The same record as the very first line fails before any output: the
	// client gets a clean JSON error, not a torn stream.
	status, read, err := postNDJSON(t, url, ndjsonBody(t, plan.Dim, 0, huge))
	if err != nil {
		t.Fatalf("first-record failure should produce a readable error body: %v", err)
	}
	if status == http.StatusOK {
		t.Fatalf("oversized first record accepted: %s", read)
	}
	var msg struct {
		Error string `json:"error"`
	}
	if uerr := json.Unmarshal(read, &msg); uerr != nil || msg.Error == "" {
		t.Errorf("error body is not the JSON error shape: %q", read)
	}
}

func TestNDJSONMissingColumnAborts(t *testing.T) {
	plan, _, _ := testData(t, 73, 250, 10, 25)
	srv, id := newTestServer(t, plan)
	url := srv.URL + "/v1/repair?plan=" + id + "&seed=1&workers=1&format=ndjson"

	// A record with one feature missing, mid-stream.
	short := `{"x": [0.5], "s": 1, "u": 0}`
	if plan.Dim <= 1 {
		t.Fatal("test scenario needs dim >= 2")
	}
	_, read, err := postNDJSON(t, url, ndjsonBody(t, plan.Dim, 6, short))
	if err == nil {
		t.Fatalf("missing-column record returned a clean complete response (%d bytes)", len(read))
	}

	// First line: clean 4xx JSON error.
	status, read, err := postNDJSON(t, url, ndjsonBody(t, plan.Dim, 0, short))
	if err != nil {
		t.Fatal(err)
	}
	if status == http.StatusOK {
		t.Fatalf("missing-column first record accepted: %s", read)
	}
}
