package repairsvc

// Research-feed scenario tests: the drift loop driven through feed
// outages, recoveries, timers and the staging endpooint, all asserted
// through public surfaces (/metrics scrapes, /v1/refs, HTTP responses).
// The byte-identity invariant from driftloop_test.go rides along: a
// watched server under feed chaos answers every 2xx byte-identically to a
// loop-disabled server.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/driftwatch"
	"otfair/internal/monitor"
	"otfair/internal/planstore"
	"otfair/internal/researchfeed"
	"otfair/internal/rng"
	"otfair/internal/simulate"
)

func TestCASRefRetryRecoversFromConflict(t *testing.T) {
	refs, err := planstore.OpenRefs(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lineage := strings.Repeat("a", 32)
	stolen := strings.Repeat("b", 32)
	target := strings.Repeat("c", 32)

	// A concurrent writer repoints the lineage after we resolved our
	// expected incumbent: the stale-expected CAS must conflict, and
	// casRefRetry must re-resolve and land the swap on the second try.
	staleExpected := refs.Resolve(lineage)
	if err := refs.CompareAndSwap(lineage, refs.Resolve(lineage), stolen); err != nil {
		t.Fatalf("concurrent swap: %v", err)
	}
	if err := refs.CompareAndSwap(lineage, staleExpected, target); err == nil {
		t.Fatal("stale-expected CAS did not conflict; the race this test guards is gone")
	}
	if err := casRefRetry(refs, lineage, staleExpected, target); err != nil {
		t.Fatalf("casRefRetry did not recover from the conflict: %v", err)
	}
	if got := refs.Resolve(lineage); got != target {
		t.Fatalf("lineage resolves to %s, want %s", got, target)
	}
	// No conflict at all: the plain path still works.
	other := strings.Repeat("d", 32)
	if err := casRefRetry(refs, lineage, target, other); err != nil {
		t.Fatalf("conflict-free casRefRetry: %v", err)
	}
	if got := refs.Resolve(lineage); got != other {
		t.Fatalf("lineage resolves to %s, want %s", got, other)
	}
}

// writeFreshCSV materializes a drifted research table as a CSV file and
// returns its path.
func writeFreshCSV(t *testing.T, tbl *dataset.Table) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fresh-research.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// seedPlan designs the incumbent plan from stationary research and stores
// it, returning the store and fingerprint.
func seedPlan(t *testing.T, seed uint64, nResearch int) (*planstore.Store, string) {
	t.Helper()
	sampler, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	research, err := sampler.Table(rng.New(seed), nResearch)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Design(research, core.Options{NQ: 30})
	if err != nil {
		t.Fatal(err)
	}
	store, err := planstore.Open(t.TempDir(), planstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := store.Put(plan)
	if err != nil {
		t.Fatal(err)
	}
	return store, id
}

// TestDriftTimerRecalibratesIdleArtefact: the acceptance scenario for the
// drift timer. One burst of drifted traffic arms the monitor and fills the
// canary reservoir, then traffic stops entirely; with -drift-check-every
// armed, the timer alone must walk the watcher to alarmed, run the refit
// and land the swap — zero further repair requests.
func TestDriftTimerRecalibratesIdleArtefact(t *testing.T) {
	leakCheck(t)
	store, id := seedPlan(t, 1, 400)
	srcPath := writeFreshCSV(t, shiftedTable(t, 2, 400, 1))
	handler, err := NewServer(store, ServerOptions{
		Monitor: monitor.Options{Window: 128, CheckEvery: 32},
		DriftWatch: &driftwatch.Config{
			AlarmAfter:    2,
			QuietAfter:    64,
			ReservoirSize: 256,
			MaxERise:      0.05,
			MaxDamageRise: 10,
			Seed:          1,
		},
		RecalibrateFrom: srcPath,
		DriftCheckEvery: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(handler.Close)
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)

	// The only repair traffic of the test: one drifted burst.
	resp := postCSV(t, srv.URL+"/v1/repair?plan="+id+"&seed=1&workers=1",
		shiftedTable(t, 100, 400, 1))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seeding repair: %s", resp.Status)
	}

	// From here on the timer is the only driver. Scrapes observe, they do
	// not feed the watcher.
	swapKey := `otfair_recalibrations_total{outcome="swapped"}`
	deadline := time.Now().Add(30 * time.Second)
	var m map[string]float64
	for {
		m = scrapeProm(t, srv.URL)
		if m[swapKey] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle artefact never recalibrated: state=%v swapped=%v failed=%v",
				m[`otfair_drift_state{artefact="`+id+`"}`], m[swapKey],
				m[`otfair_recalibrations_total{outcome="refit_failed"}`])
		}
		time.Sleep(5 * time.Millisecond)
	}
	if m[swapKey] != 1 {
		t.Errorf("swapped = %v, want exactly 1", m[swapKey])
	}
	if _, ok := m["otfair_refit_queue_depth"]; !ok {
		t.Error("otfair_refit_queue_depth gauge not exported")
	}
	// The swap is visible in the ref namespace without any request having
	// driven it.
	refsResp, err := http.Get(srv.URL + "/v1/refs")
	if err != nil {
		t.Fatal(err)
	}
	var refsOut struct {
		Refs map[string]string `json:"refs"`
	}
	if err := json.NewDecoder(refsResp.Body).Decode(&refsOut); err != nil {
		t.Fatal(err)
	}
	refsResp.Body.Close()
	if newID, ok := refsOut.Refs[id]; !ok || newID == id {
		t.Fatalf("refs after idle swap = %v, want lineage %s repointed", refsOut.Refs, id)
	}
}

// TestFeedOutageScenario: the feed goes down, the loop degrades to
// refit_failed with the circuit breaker opening, the feed recovers, the
// breaker closes through its half-open probe and the swap lands; a later
// alarm on unchanged content (ETag 304) skips as refit_skipped_stale.
// Every 2xx response along the way is byte-identical to a loop-disabled
// server, and no goroutine outlives the server.
func TestFeedOutageScenario(t *testing.T) {
	leakCheck(t)
	const openFor = 50 * time.Millisecond

	fresh := shiftedTable(t, 2, 400, 1)
	var freshCSV bytes.Buffer
	if err := fresh.WriteCSV(&freshCSV); err != nil {
		t.Fatal(err)
	}
	var upMu sync.Mutex
	upstreamUp := false
	var feedGets, feed304s int
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		upMu.Lock()
		defer upMu.Unlock()
		feedGets++
		if !upstreamUp {
			http.Error(w, "research warehouse offline", http.StatusInternalServerError)
			return
		}
		if r.Header.Get("If-None-Match") == `"fresh-v1"` {
			feed304s++
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Etag", `"fresh-v1"`)
		w.Header().Set("Content-Type", "text/csv")
		w.Write(freshCSV.Bytes())
	}))
	t.Cleanup(upstream.Close)

	store, id := seedPlan(t, 1, 400)
	watchedHandler, err := NewServer(store, ServerOptions{
		MetricWindow: 4096,
		Monitor:      monitor.Options{Window: 128, CheckEvery: 32},
		DriftWatch: &driftwatch.Config{
			AlarmAfter:    2,
			QuietAfter:    32,
			ReservoirSize: 256,
			MaxERise:      0.05,
			MaxDamageRise: 10,
			Seed:          1,
		},
		RecalibrateURL: upstream.URL,
		FeedRetry:      researchfeed.RetryPolicy{Attempts: 2, Base: time.Millisecond, Max: 4 * time.Millisecond, Seed: 7},
		FeedBreaker:    researchfeed.BreakerConfig{Threshold: 2, OpenFor: openFor},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(watchedHandler.Close)
	watched := httptest.NewServer(watchedHandler)
	t.Cleanup(watched.Close)

	controlStore, cid := seedPlan(t, 1, 400)
	controlHandler, err := NewServer(controlStore, ServerOptions{
		MetricWindow: 4096,
		Monitor:      monitor.Options{Window: 128, CheckEvery: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	control := httptest.NewServer(controlHandler)
	t.Cleanup(control.Close)
	if cid != id {
		t.Fatalf("plan fingerprints diverge: %s vs %s", id, cid)
	}

	// repairBoth sends one identical drifted repair to both servers and
	// asserts byte identity; frac scales the injected drift.
	seq := 0
	repairBoth := func(frac float64) {
		t.Helper()
		seq++
		tbl := shiftedTable(t, uint64(500+seq), 400, frac)
		path := fmt.Sprintf("/v1/repair?plan=%s&seed=%d&workers=1", id, seq)
		read := func(base string) []byte {
			resp := postCSV(t, base+path, tbl)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("request %d: %s: %s", seq, resp.Status, body)
			}
			b, rerr := io.ReadAll(resp.Body)
			if rerr != nil {
				t.Fatal(rerr)
			}
			return b
		}
		if a, b := read(watched.URL), read(control.URL); !bytes.Equal(a, b) {
			t.Fatalf("request %d: watched server diverged from loop-disabled server (%d vs %d bytes)", seq, len(a), len(b))
		}
	}
	waitFor := func(phase string, cond func(map[string]float64) bool, frac float64) map[string]float64 {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			repairBoth(frac)
			m := scrapeProm(t, watched.URL)
			if cond(m) {
				return m
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: condition never met after %d requests: breaker=%v errors=%v open=%v ok=%v swapped=%v failed=%v stale=%v",
					phase, seq,
					m["otfair_feed_breaker_state"],
					m[`otfair_feed_fetches_total{outcome="error"}`],
					m[`otfair_feed_fetches_total{outcome="breaker_open"}`],
					m[`otfair_feed_fetches_total{outcome="ok"}`],
					m[`otfair_recalibrations_total{outcome="swapped"}`],
					m[`otfair_recalibrations_total{outcome="refit_failed"}`],
					m[`otfair_recalibrations_total{outcome="refit_skipped_stale"}`])
			}
		}
	}

	// Phase 1: feed down. Alarms degrade to refit_failed, the error
	// cycles trip the breaker, and serving never wavers.
	m := waitFor("outage", func(m map[string]float64) bool {
		return m[`otfair_feed_fetches_total{outcome="error"}`] >= 2 &&
			m["otfair_feed_breaker_state"] == float64(researchfeed.BreakerOpen)
	}, 1)
	if m[`otfair_recalibrations_total{outcome="refit_failed"}`] < 1 {
		t.Errorf("outage alarms did not land refit_failed: %v",
			m[`otfair_recalibrations_total{outcome="refit_failed"}`])
	}
	if m[`otfair_recalibrations_total{outcome="swapped"}`] != 0 {
		t.Errorf("swap landed while the feed was down")
	}

	// Phase 2: with the breaker open, the next alarm fast-fails without a
	// retry ladder.
	waitFor("breaker-open fast fail", func(m map[string]float64) bool {
		return m[`otfair_feed_fetches_total{outcome="breaker_open"}`] >= 1
	}, 1)

	// Phase 3: the feed recovers. Past OpenFor the half-open probe
	// succeeds, the breaker closes, and the refit finally lands.
	upMu.Lock()
	upstreamUp = true
	upMu.Unlock()
	time.Sleep(openFor)
	m = waitFor("recovery", func(m map[string]float64) bool {
		return m[`otfair_recalibrations_total{outcome="swapped"}`] >= 1
	}, 1)
	if st := m["otfair_feed_breaker_state"]; st != float64(researchfeed.BreakerClosed) {
		t.Errorf("breaker state after recovery = %v, want closed", st)
	}
	if m[`otfair_feed_fetches_total{outcome="ok"}`] < 1 {
		t.Error("no ok fetch counted after recovery")
	}
	if age, ok := m["otfair_feed_age_seconds"]; !ok || age < 0 || age > 300 {
		t.Errorf("feed age after success = %v (present %v), want a small non-negative age", age, ok)
	}

	// Phase 4: the population drifts further, but the feed content is
	// unchanged — the conditional GET answers 304, the cached snapshot
	// fingerprints identically to the content the swap was judged on, and
	// the loop declines with refit_skipped_stale instead of redesigning
	// the same plan.
	m = waitFor("stale skip", func(m map[string]float64) bool {
		return m[`otfair_recalibrations_total{outcome="refit_skipped_stale"}`] >= 1
	}, 2)
	if m[`otfair_feed_fetches_total{outcome="not_modified"}`] < 1 {
		t.Errorf("stale skip landed without a not_modified fetch: %v",
			m[`otfair_feed_fetches_total{outcome="not_modified"}`])
	}
	if m[`otfair_recalibrations_total{outcome="swapped"}`] != 1 {
		t.Errorf("stale content re-swapped: swapped = %v, want exactly 1",
			m[`otfair_recalibrations_total{outcome="swapped"}`])
	}
	upMu.Lock()
	g, n304 := feedGets, feed304s
	upMu.Unlock()
	if g == 0 || n304 == 0 {
		t.Errorf("upstream saw %d gets, %d conditional 304s; want both positive", g, n304)
	}
}

// TestDriftRefitFromStagedSource: with no file or URL source, a research
// set staged through POST /v1/research becomes the drift loop's refit
// source, and the landed swap's research fingerprint is the staged
// artefact's id.
func TestDriftRefitFromStagedSource(t *testing.T) {
	leakCheck(t)
	const token = "stage-me-token"
	store, id := seedPlan(t, 1, 400)
	handler, err := NewServer(store, ServerOptions{
		Monitor: monitor.Options{Window: 128, CheckEvery: 32},
		DriftWatch: &driftwatch.Config{
			AlarmAfter:    2,
			QuietAfter:    64,
			ReservoirSize: 256,
			MaxERise:      0.05,
			MaxDamageRise: 10,
			Seed:          1,
		},
		ResearchToken: token,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(handler.Close)
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)

	// Stage the fresh research set the loop should refit from.
	var body bytes.Buffer
	if err := shiftedTable(t, 2, 400, 1).WriteCSV(&body); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/research", &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var staged struct {
		ID      string `json:"id"`
		Records int    `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&staged); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || staged.Records != 400 {
		t.Fatalf("staging: %s, records=%d", resp.Status, staged.Records)
	}

	// Drifted traffic alarms the watcher; the loop refits from the staged
	// set and swaps.
	swapKey := `otfair_recalibrations_total{outcome="swapped"}`
	deadline := time.Now().Add(30 * time.Second)
	var m map[string]float64
	for seq := 0; ; seq++ {
		resp := postCSV(t, fmt.Sprintf("%s/v1/repair?plan=%s&seed=%d&workers=1", srv.URL, id, seq),
			shiftedTable(t, uint64(700+seq), 400, 1))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("repair: %s", resp.Status)
		}
		m = scrapeProm(t, srv.URL)
		if m[swapKey] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no swap from staged source: state=%v failed=%v",
				m[`otfair_drift_state{artefact="`+id+`"}`],
				m[`otfair_recalibrations_total{outcome="refit_failed"}`])
		}
	}
	if m[`otfair_feed_fetches_total{outcome="ok"}`] < 1 {
		t.Error("staged source never fetched ok")
	}
}

func TestResearchStagingEndpointAuth(t *testing.T) {
	stageTable := func() *bytes.Buffer {
		var buf bytes.Buffer
		if err := shiftedTable(t, 9, 64, 0).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	post := func(srv *httptest.Server, auth, contentType string, body io.Reader) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/research", body)
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	t.Run("disabled without token", func(t *testing.T) {
		store, _ := seedPlan(t, 21, 200)
		handler, err := NewServer(store, ServerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(handler)
		t.Cleanup(srv.Close)
		if resp := post(srv, "Bearer whatever", "text/csv", stageTable()); resp.StatusCode != http.StatusForbidden {
			t.Fatalf("tokenless server answered %s, want 403", resp.Status)
		}
	})

	store, _ := seedPlan(t, 22, 200)
	handler, err := NewServer(store, ServerOptions{ResearchToken: "correct-token"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)

	t.Run("missing auth", func(t *testing.T) {
		resp := post(srv, "", "text/csv", stageTable())
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("missing auth answered %s, want 401", resp.Status)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Error("401 without a WWW-Authenticate challenge")
		}
	})
	t.Run("wrong token", func(t *testing.T) {
		if resp := post(srv, "Bearer wrong-token!!", "text/csv", stageTable()); resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("wrong token answered %s, want 401", resp.Status)
		}
	})
	t.Run("wrong media type", func(t *testing.T) {
		if resp := post(srv, "Bearer correct-token", "application/json", strings.NewReader("{}")); resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("json body answered %s, want 415", resp.Status)
		}
	})
	t.Run("below min records", func(t *testing.T) {
		var buf bytes.Buffer
		if err := shiftedTable(t, 9, 4, 0).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		// Default FeedMinRecords is 16; a 4-record set is refused at the
		// door with 422, not accepted and rejected at refit time.
		if resp := post(srv, "Bearer correct-token", "text/csv", &buf); resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("degenerate set answered %s, want 422", resp.Status)
		}
	})
	t.Run("stage and dedup", func(t *testing.T) {
		resp := post(srv, "Bearer correct-token", "text/csv", stageTable())
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("first stage answered %s, want 201", resp.Status)
		}
		var first struct {
			ID      string `json:"id"`
			Records int    `json:"records"`
			Dim     int    `json:"dim"`
			Existed bool   `json:"existed"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
			t.Fatal(err)
		}
		if first.Records != 64 || first.Existed {
			t.Fatalf("first stage: %+v", first)
		}
		// Restaging identical content answers 200 with existed=true and
		// the same content-addressed id.
		again := post(srv, "Bearer correct-token", "text/csv", stageTable())
		if again.StatusCode != http.StatusOK {
			t.Fatalf("restage answered %s, want 200", again.Status)
		}
		var second struct {
			ID      string `json:"id"`
			Existed bool   `json:"existed"`
		}
		if err := json.NewDecoder(again.Body).Decode(&second); err != nil {
			t.Fatal(err)
		}
		if !second.Existed || second.ID != first.ID {
			t.Fatalf("restage: %+v, want existed with id %s", second, first.ID)
		}
	})
}
