package repairsvc

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"otfair/internal/planstore"
)

// countSpools counts request-body spool files in the temp directory.
func countSpools(t *testing.T) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(os.TempDir(), "fairserved-repair-*"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// failingReader delivers some bytes, then fails mid-copy — a client that
// died halfway through uploading its archive.
type failingReader struct {
	data []byte
	err  error
}

func (f *failingReader) Read(p []byte) (int, error) {
	if len(f.data) == 0 {
		return 0, f.err
	}
	n := copy(p, f.data)
	f.data = f.data[n:]
	return n, nil
}

// TestRepairSpoolNeverLeaks audits the repair-spool lifecycle: after forced
// mid-copy failures, early handler returns past the spool point, mid-stream
// repair aborts and plain successes, no spooled body file may remain on
// disk. The spool is unlinked the moment it is created, so the invariant
// holds at every instant, not just after handler exit.
func TestRepairSpoolNeverLeaks(t *testing.T) {
	// Isolate the temp dir so concurrent tests (or leftovers from other
	// processes) cannot interfere with the count.
	t.Setenv("TMPDIR", t.TempDir())

	plan, _, archive := testData(t, 31, 250, 600, 30)
	store, err := planstore.Open(t.TempDir(), planstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := store.Put(plan)
	if err != nil {
		t.Fatal(err)
	}
	// A small body cap lets one request force the mid-copy MaxBytesError
	// path too.
	srv, err := NewServer(store, ServerOptions{MaxBodyBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}

	var archiveCSV bytes.Buffer
	if err := archive.WriteCSV(&archiveCSV); err != nil {
		t.Fatal(err)
	}
	csvBody := archiveCSV.Bytes()

	cases := []struct {
		name   string
		target string
		body   io.Reader
		status int // 0 = panic (aborted connection) is acceptable
	}{
		{
			name:   "mid-copy read failure",
			target: "/v1/repair?plan=" + id + "&seed=1&workers=1",
			body:   &failingReader{data: csvBody[:len(csvBody)/2], err: errors.New("client died")},
			status: http.StatusBadRequest,
		},
		{
			name:   "mid-copy body-cap overrun",
			target: "/v1/repair?plan=" + id + "&seed=1",
			body:   io.MultiReader(bytes.NewReader(csvBody), bytes.NewReader(make([]byte, 2<<20))),
			status: http.StatusRequestEntityTooLarge,
		},
		{
			name:   "early return after spool (unknown format)",
			target: "/v1/repair?plan=" + id + "&seed=1&format=parquet",
			body:   bytes.NewReader(csvBody),
			status: http.StatusBadRequest,
		},
		{
			name:   "mid-stream repair abort (malformed record)",
			target: "/v1/repair?plan=" + id + "&seed=1&workers=1",
			body:   strings.NewReader("s,u,x0,x1\n0,1,0.5,0.5\n0,9,0.5,0.5\n"),
			status: 0,
		},
		{
			name:   "success",
			target: "/v1/repair?plan=" + id + "&seed=1&workers=1",
			body:   bytes.NewReader(csvBody),
			status: http.StatusOK,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodPost, tc.target, tc.body)
			req.Header.Set("Content-Type", "text/csv")
			rec := httptest.NewRecorder()
			func() {
				defer func() {
					if p := recover(); p != nil {
						if p != http.ErrAbortHandler {
							panic(p)
						}
						if tc.status != 0 {
							t.Errorf("unexpected handler abort")
						}
					}
				}()
				srv.ServeHTTP(rec, req)
				if tc.status != 0 && rec.Code != tc.status {
					t.Errorf("status = %d, want %d (body %q)", rec.Code, tc.status, rec.Body.String())
				}
			}()
			if n := countSpools(t); n != 0 {
				t.Errorf("%d spool file(s) left on disk", n)
			}
		})
	}
}

// TestBodySpoolUnlinkedImmediately pins the mechanism itself: the spool has
// no directory entry from the moment it exists (so even a killed process
// cannot leak it), while its contents stay readable through the open
// descriptor.
func TestBodySpoolUnlinkedImmediately(t *testing.T) {
	t.Setenv("TMPDIR", t.TempDir())
	sp, err := newBodySpool()
	if err != nil {
		t.Fatal(err)
	}
	if n := countSpools(t); n != 0 {
		t.Fatalf("%d spool file(s) visible while the spool is open", n)
	}
	if _, err := sp.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(sp)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if n := countSpools(t); n != 0 {
		t.Fatalf("%d spool file(s) left after close", n)
	}
}
