package repairsvc

import (
	"math"
	"sync"
	"testing"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/fairmetrics"
	"otfair/internal/rng"
	"otfair/internal/simulate"
)

// testData returns a designed plan plus research/archive tables from the
// paper's simulation scenario.
func testData(t testing.TB, seed uint64, nResearch, nArchive, nq int) (*core.Plan, *dataset.Table, *dataset.Table) {
	t.Helper()
	sampler, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	research, archive, err := sampler.ResearchArchive(rng.New(seed), nResearch, nArchive)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Design(research, core.Options{NQ: nq})
	if err != nil {
		t.Fatal(err)
	}
	return plan, research, archive
}

func tablesEqual(t *testing.T, a, b *dataset.Table) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("length mismatch: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.At(i), b.At(i)
		if ra.S != rb.S || ra.U != rb.U {
			t.Fatalf("record %d labels differ", i)
		}
		for k := range ra.X {
			if ra.X[k] != rb.X[k] {
				t.Fatalf("record %d feature %d: %v != %v", i, k, ra.X[k], rb.X[k])
			}
		}
	}
}

// TestEngineSerialByteIdentical pins the engine's workers=1 mode to the
// plain in-process Repairer: same seed, bit-identical output. This is the
// contract the serve-path equivalence rests on.
func TestEngineSerialByteIdentical(t *testing.T) {
	plan, _, archive := testData(t, 1, 300, 1500, 40)
	engine, err := NewEngine(plan, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, diag, err := engine.RepairTable(rng.New(11), archive)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := core.NewRepairer(plan, rng.New(11), core.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := rp.RepairTable(archive)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, got, want)
	if diag != rp.Diagnostics() {
		t.Errorf("diagnostics differ: %+v vs %+v", diag, rp.Diagnostics())
	}

	// Streaming mode, same contract.
	streamed, err := dataset.NewTable(archive.Dim(), archive.Names())
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := engine.RepairStream(rng.New(11), dataset.NewSliceStream(archive), streamed.Append)
	if err != nil {
		t.Fatal(err)
	}
	if n != archive.Len() {
		t.Fatalf("streamed %d of %d", n, archive.Len())
	}
	tablesEqual(t, streamed, want)
}

// TestEngineParallelMatchesCoreParallel pins workers=w to
// core.RepairTableParallel with the same w.
func TestEngineParallelMatchesCoreParallel(t *testing.T) {
	plan, _, archive := testData(t, 2, 300, 2000, 40)
	// The 1-record table exercises the worker clamp: both paths must fall
	// back to the same single Split(0) shard.
	tiny, err := dataset.NewTable(archive.Dim(), archive.Names())
	if err != nil {
		t.Fatal(err)
	}
	if err := tiny.Append(archive.At(0)); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []*dataset.Table{archive, tiny} {
		for _, workers := range []int{2, 4, 7} {
			engine, err := NewEngine(plan, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := engine.RepairTable(rng.New(3), tbl)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := core.RepairTableParallel(plan, rng.New(3), core.RepairOptions{}, tbl, workers)
			if err != nil {
				t.Fatal(err)
			}
			tablesEqual(t, got, want)
		}
	}
}

// TestEngineStreamDeterministicAndEffective checks the chunked parallel
// streaming mode: reproducible for fixed (seed, workers, chunk), and the
// output actually repairs.
func TestEngineStreamDeterministicAndEffective(t *testing.T) {
	plan, _, archive := testData(t, 3, 400, 3000, 50)
	engine, err := NewEngine(plan, Options{Workers: 4, ChunkSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *dataset.Table {
		out, err := dataset.NewTable(archive.Dim(), archive.Names())
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := engine.RepairStream(rng.New(5), dataset.NewSliceStream(archive), out.Append); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	tablesEqual(t, a, b)

	cfg := fairmetrics.Config{Estimator: fairmetrics.EstimatorPlugin}
	before, err := fairmetrics.E(archive, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after, err := fairmetrics.E(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(after < before/3) {
		t.Errorf("chunked parallel repair too weak: E %.4f -> %.4f", before, after)
	}
}

// TestEngineConcurrentRequests hammers one engine from several goroutines;
// under -race this certifies the shared-sampler path.
func TestEngineConcurrentRequests(t *testing.T) {
	plan, _, archive := testData(t, 4, 250, 800, 30)
	engine, err := NewEngine(plan, Options{Workers: 2, ChunkSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	outs := make([]*dataset.Table, 6)
	for g := range outs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out, _, err := engine.RepairTable(rng.New(99), archive)
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			outs[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(outs); g++ {
		tablesEqual(t, outs[0], outs[g])
	}
	if got := engine.Totals().Records; got != int64(6*archive.Len()) {
		t.Errorf("totals records = %d, want %d", got, 6*archive.Len())
	}
}

// TestCategoricalBaselineDistribution checks that the alias path and the
// O(n) categorical baseline sample the same repaired distribution: group
// means and variances agree within Monte-Carlo tolerance on a large
// archive. (Byte equality is impossible — the variate streams differ.)
func TestCategoricalBaselineDistribution(t *testing.T) {
	plan, _, archive := testData(t, 5, 400, 8000, 50)
	alias, err := NewEngine(plan, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	categorical, err := NewEngine(plan, Options{Workers: 1, Repair: core.RepairOptions{CategoricalDraws: true}})
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := alias.RepairTable(rng.New(6), archive)
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := categorical.RepairTable(rng.New(6), archive)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		for s := 0; s < 2; s++ {
			for k := 0; k < archive.Dim(); k++ {
				g := dataset.Group{U: u, S: s}
				ma, sa := meanStd(a.GroupColumn(g, k))
				mc, sc := meanStd(c.GroupColumn(g, k))
				if math.Abs(ma-mc) > 0.1 || math.Abs(sa-sc) > 0.1 {
					t.Errorf("group %v feature %d: alias (%.3f±%.3f) vs categorical (%.3f±%.3f)",
						g, k, ma, sa, mc, sc)
				}
			}
		}
	}
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}
