package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// TextContentType is the Prometheus text exposition content type served
// on /metrics.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (0.0.4): a # HELP and # TYPE line per family, then one
// sample line per series — counters and gauges directly, histograms as
// cumulative _bucket{le=...} series plus _sum and _count. Families appear
// in registration order, series in their registration order, so output is
// deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, fam := range fams {
		if fam.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam.name, strings.ReplaceAll(fam.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.kind)
		r.mu.Lock()
		sers := make([]*series, len(fam.series))
		copy(sers, fam.series)
		r.mu.Unlock()
		for _, s := range sers {
			switch {
			case s.h != nil:
				writeHistogram(bw, fam.name, s.labels, s.h.Snapshot())
			case s.fn != nil:
				writeSample(bw, fam.name, s.labels, s.fn())
			case s.c != nil:
				writeSample(bw, fam.name, s.labels, float64(s.c.Load()))
			case s.g != nil:
				writeSample(bw, fam.name, s.labels, float64(s.g.Load()))
			}
		}
	}
	return bw.Flush()
}

func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
}

// writeHistogram renders one histogram series: cumulative buckets with the
// le label appended to the series labels, then _sum and _count.
func writeHistogram(w io.Writer, name, labels string, s Snapshot) {
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatValue(s.Bounds[i])
		}
		if labels == "" {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels, le, cum)
		}
	}
	sum, count := name+"_sum", name+"_count"
	writeSample(w, sum, labels, s.Sum)
	if labels == "" {
		fmt.Fprintf(w, "%s %d\n", count, s.Count)
	} else {
		fmt.Fprintf(w, "%s{%s} %d\n", count, labels, s.Count)
	}
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trippable float, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Sample is one parsed exposition sample: a metric name, its sorted label
// rendering (`k="v",...`, "" for none) and the value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Key is the full series identity, name{labels}.
func (s Sample) Key() string {
	if s.Labels == "" {
		return s.Name
	}
	return s.Name + "{" + s.Labels + "}"
}

// ParseText parses Prometheus text exposition format back into samples —
// the validation half of the round-trip test, also used by the smoke and
// soak harnesses to assert a live /metrics scrape is well-formed. It
// checks structural invariants (every sample line parses, TYPE lines
// precede their samples, histogram buckets are cumulative) and returns
// every sample in input order.
func ParseText(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var samples []Sample
	typed := make(map[string]string) // family -> TYPE
	lastBucket := make(map[string]uint64)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("obs: line %d: unknown TYPE %q", line, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		fam := familyOf(s.Name)
		if _, ok := typed[fam]; !ok {
			return nil, fmt.Errorf("obs: line %d: sample %s precedes its # TYPE line", line, s.Name)
		}
		if strings.HasSuffix(s.Name, "_bucket") && typed[fam] == "histogram" {
			key := fam + "{" + stripLE(s.Labels) + "}"
			if uint64(s.Value) < lastBucket[key] {
				return nil, fmt.Errorf("obs: line %d: histogram %s buckets are not cumulative", line, key)
			}
			lastBucket[key] = uint64(s.Value)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// familyOf strips the histogram sample suffixes so _bucket/_sum/_count
// lines resolve to their family's TYPE entry.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if f, ok := strings.CutSuffix(name, suf); ok {
			return f
		}
	}
	return name
}

// stripLE removes the le label from a bucket's label rendering so buckets
// of one series group together.
func stripLE(labels string) string {
	var kept []string
	for _, part := range splitLabels(labels) {
		if !strings.HasPrefix(part, "le=") {
			kept = append(kept, part)
		}
	}
	return strings.Join(kept, ",")
}

// splitLabels splits `k="v",...` on commas outside quotes.
func splitLabels(labels string) []string {
	if labels == "" {
		return nil
	}
	var parts []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, labels[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, labels[start:])
	return parts
}

// parseSample parses one `name[{labels}] value [timestamp]` line.
func parseSample(text string) (Sample, error) {
	var s Sample
	rest := text
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", text)
	} else if rest[i] == '{' {
		s.Name = rest[:i]
		end := strings.LastIndex(rest, "}")
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", text)
		}
		s.Labels = rest[i+1 : end]
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		s.Name = rest[:i]
		rest = strings.TrimSpace(rest[i+1:])
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", text)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed sample value in %q", text)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	// Validate label syntax: every part must be k="v".
	for _, part := range splitLabels(s.Labels) {
		eq := strings.Index(part, "=")
		if eq <= 0 || len(part) < eq+3 || part[eq+1] != '"' || part[len(part)-1] != '"' {
			return s, fmt.Errorf("malformed label %q in %q", part, text)
		}
	}
	return s, nil
}

func parseValue(f string) (float64, error) {
	switch f {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(f, 64)
}
