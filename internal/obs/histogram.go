package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket lock-free histogram: one atomic counter per
// bucket plus an atomic count and (CAS-accumulated) sum. Bucket bounds are
// inclusive upper bounds in the Prometheus sense — an observation v lands
// in the first bucket with v <= bound, or the implicit +Inf bucket past
// the last. Observe is wait-free on the bucket counters and lock-free on
// the float sum; a nil *Histogram is the uninstrumented no-op.
//
// For per-record hot loops, Local hands out an unsynchronized per-shard
// recorder whose Flush folds a whole shard's observations into the shared
// histogram with one atomic add per nonzero bucket — the "mergeable
// per-shard shards" that keep recording off the atomic bus entirely.
//otfair:nilsafe nil histogram is the uninstrumented no-op on the record hot path
type Histogram struct {
	bounds  []float64 // sorted, strictly increasing upper bounds
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// NewHistogram builds a histogram over the given bucket upper bounds,
// which must be sorted and strictly increasing (a +Inf bucket is implicit
// and must not be passed). Panics on unsorted bounds — a bind-time
// programming error.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// bucketIndex returns the index of the bucket v falls in: the first bound
// with v <= bound, len(bounds) for the +Inf bucket. NaN lands in +Inf.
func (h *Histogram) bucketIndex(v float64) int {
	// sort.SearchFloat64s finds the first bound >= v, which is almost the
	// inclusive-upper-bound rule; the only disagreement is v exactly equal
	// to a bound, where >= and <= agree anyway. Binary search is
	// allocation-free and beats a linear scan on the ~20-bucket layouts.
	//otfair:nilrecv-ok only reachable through Observe, after its nil guard
	return sort.SearchFloat64s(h.bounds, v)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.addSum(v)
}

// ObserveDuration records a duration in seconds — the Prometheus unit for
// every _seconds histogram.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// addSum accumulates v into the float sum with a CAS loop (lock-free:
// some thread always makes progress).
func (h *Histogram) addSum(v float64) {
	for {
		//otfair:nilrecv-ok only reachable through Observe, after its nil guard
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Snapshot is a point-in-time copy of a histogram's state. Counts has one
// entry per bucket plus the +Inf bucket last; entries are per-bucket (not
// cumulative — exposition accumulates).
type Snapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram state. Buckets are read individually, so a
// snapshot taken under concurrent recording may be off by in-flight
// observations — fine for monitoring, which is the only consumer.
func (h *Histogram) Snapshot() Snapshot {
	if h == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the mean observation (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the bucket the rank falls in, the standard Prometheus
// histogram_quantile estimate. The +Inf bucket reports the last finite
// bound (there is nothing to interpolate toward); an empty histogram
// reports 0.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank {
			if i == len(s.Bounds) {
				// +Inf bucket: clamp to the largest finite bound.
				if len(s.Bounds) == 0 {
					return 0
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi
			}
			inBucket := float64(cum-c) // rank at bucket start
			return lo + (hi-lo)*(rank-inBucket)/float64(c)
		}
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Local is an unsynchronized recorder bound to one histogram, for one
// goroutine (a shard, a request) to batch observations without touching
// the shared atomics. Flush folds the batch into the shared histogram —
// one atomic add per nonzero bucket plus two for count and sum — and
// resets the recorder for reuse. A nil *Local is the uninstrumented no-op.
//otfair:nilsafe nil local follows its nil parent histogram through uninstrumented runs
type Local struct {
	h      *Histogram
	counts []uint64
	count  uint64
	sum    float64
}

// Local returns a new per-shard recorder (nil on a nil histogram, so the
// whole recording path stays nil-safe).
func (h *Histogram) Local() *Local {
	if h == nil {
		return nil
	}
	return &Local{h: h, counts: make([]uint64, len(h.counts))}
}

// Observe records one value into the local batch. No synchronization, no
// atomics: this is the per-record path.
func (l *Local) Observe(v float64) {
	if l == nil {
		return
	}
	l.counts[l.h.bucketIndex(v)]++
	l.count++
	l.sum += v
}

// ObserveDuration records a duration in seconds.
func (l *Local) ObserveDuration(d time.Duration) { l.Observe(d.Seconds()) }

// Flush merges the batch into the shared histogram and resets the
// recorder. Merge order across shards does not matter: every fold is a
// commutative atomic add, which is what the merge-invariance test pins.
func (l *Local) Flush() {
	if l == nil || l.count == 0 {
		return
	}
	for i, c := range l.counts {
		if c != 0 {
			l.h.counts[i].Add(c)
			l.counts[i] = 0
		}
	}
	l.h.count.Add(l.count)
	l.h.addSum(l.sum)
	l.count, l.sum = 0, 0
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and multiplying by factor — the standard layout for latencies and
// sizes. Panics on start <= 0, factor <= 1 or n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefLatencyBuckets spans 50 µs to ~26 s in 20 doubling buckets — wide
// enough for a sub-millisecond alias draw and a multi-gigabyte archival
// stream in the same histogram.
func DefLatencyBuckets() []float64 { return ExpBuckets(50e-6, 2, 20) }

// DefSizeBuckets spans 1 to ~1.05 M in 11 quadrupling buckets, for
// records-per-request style size distributions.
func DefSizeBuckets() []float64 { return ExpBuckets(1, 4, 11) }
