package obs

import (
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one segment of a request's life. The set is fixed so a
// trace's span slab is a flat array — no maps, no per-span allocation.
type Stage uint8

const (
	// StageAdmission covers the admission gate and parameter validation.
	StageAdmission Stage = iota
	// StageSpool covers copying the request body to the disk spool.
	StageSpool
	// StageDecode accumulates wire-format parsing (per record, sampled
	// requests only — see Trace.Sampled).
	StageDecode
	// StageShardExecute covers the repair engines and the shard runner.
	StageShardExecute
	// StageEncode accumulates wire-format rendering (per record, sampled
	// requests only).
	StageEncode
	// StageFlush covers the final response flush.
	StageFlush
	// NumStages is the span slab size.
	NumStages = int(StageFlush) + 1
)

var stageNames = [NumStages]string{"admission", "spool", "decode", "shard_execute", "encode", "flush"}

func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames returns the stage label values in slab order, for metric
// registration loops.
func StageNames() [NumStages]string { return stageNames }

// Trace is one request's trace: a generated request ID plus a preallocated
// span slab of cumulative per-stage durations. Traces are pooled by the
// Tracer; every method is nil-receiver safe so an untraced deployment
// (nil Tracer, nil Trace) pays one pointer check per instrumentation
// point.
//otfair:nilsafe nil trace means the request is unsampled; span adds are no-ops
type Trace struct {
	id      string
	seq     uint64
	start   time.Time
	stages  [NumStages]time.Duration
	mark    time.Time
	sampled bool
	idBuf   [16]byte
	hexBuf  [32]byte
}

// ID returns the request's hex ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Sampled reports whether this trace records fine-grained (per-record)
// stages — decode and encode — in addition to the coarse request-level
// spans every trace records. False on nil.
func (t *Trace) Sampled() bool {
	return t != nil && t.sampled
}

// Begin marks the start of a coarse stage. Stages are recorded
// cumulatively, so Begin/End pairs may repeat.
func (t *Trace) Begin(Stage) {
	if t == nil {
		return
	}
	t.mark = time.Now()
}

// End accumulates the time since the matching Begin into the stage's span.
func (t *Trace) End(st Stage) {
	if t == nil {
		return
	}
	t.stages[st] += time.Since(t.mark)
}

// Add accumulates an externally measured duration into a stage — the
// per-record path for sampled decode/encode spans.
func (t *Trace) Add(st Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.stages[st] += d
}

// Get returns a stage's accumulated duration (0 on nil).
func (t *Trace) Get(st Stage) time.Duration {
	if t == nil {
		return 0
	}
	return t.stages[st]
}

// Set replaces a stage's duration — used to back out sampled sub-spans
// from an enclosing wall measurement (shard_execute = run wall − decode −
// encode).
func (t *Trace) Set(st Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.stages[st] = d
}

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// SlowThreshold is the total request duration at and above which a
	// finished trace is recorded in the slow ring (0 = never).
	SlowThreshold time.Duration
	// SampleEvery enables fine-grained per-record stage timing on every
	// N-th request (1 = all, 0 = never). Coarse request-level spans are
	// always recorded; sampling only gates the spans that cost a clock
	// read per record.
	SampleEvery uint64
	// SlowRing bounds the retained slow-request records (default 16).
	SlowRing int
}

// SlowRequest is one retained slow-request record, surfaced in
// /v1/metrics so an operator can see where a slow request's time went
// without a tracing backend.
type SlowRequest struct {
	ID     string
	At     time.Time
	Total  time.Duration
	Stages [NumStages]time.Duration
	// Detail is the caller-composed context line (plan, record count,
	// status...) — obs stays ignorant of serving-layer vocabulary.
	Detail string
}

// TraceResult is the summary Finish returns, by value so the pooled Trace
// can be reclaimed immediately.
type TraceResult struct {
	ID     string
	Total  time.Duration
	Stages [NumStages]time.Duration
	Slow   bool
}

// Tracer generates request IDs and owns the trace pool and the
// slow-request ring. A nil *Tracer is the untraced no-op: Start returns a
// nil *Trace and every downstream method is a pointer check.
//otfair:nilsafe nil tracer disables request tracing entirely
type Tracer struct {
	opts TracerOptions
	base uint64
	seq  atomic.Uint64
	slow atomic.Uint64 // total slow requests ever recorded
	pool sync.Pool

	mu   sync.Mutex
	ring []SlowRequest
	next int
	full bool
}

// NewTracer builds a tracer. Request IDs mix a boot-time base with a
// sequence counter, so they are unique within a process and practically
// unique across restarts.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.SlowRing <= 0 {
		opts.SlowRing = 16
	}
	t := &Tracer{opts: opts, base: splitmix64(uint64(time.Now().UnixNano()))}
	t.pool.New = func() any { return new(Trace) }
	t.ring = make([]SlowRequest, opts.SlowRing)
	return t
}

// splitmix64 is the standard 64-bit finalizer — cheap, well mixed, and
// already used by faultinject for schedule phases.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Start begins one request trace: a pooled span slab with a fresh request
// ID. Returns nil on a nil tracer — the nil flows through every Trace
// method and costs callers one pointer check.
func (t *Tracer) Start() *Trace {
	if t == nil {
		return nil
	}
	tr := t.pool.Get().(*Trace)
	seq := t.seq.Add(1)
	tr.seq = seq
	tr.start = time.Now()
	tr.stages = [NumStages]time.Duration{}
	tr.sampled = t.opts.SampleEvery > 0 && seq%t.opts.SampleEvery == 0
	id := splitmix64(t.base + seq)
	for i := 0; i < 8; i++ {
		tr.idBuf[i] = byte(id >> (56 - 8*i))
	}
	for i := 8; i < 16; i++ {
		tr.idBuf[i] = byte(seq >> (120 - 8*i))
	}
	hex.Encode(tr.hexBuf[:], tr.idBuf[:])
	tr.id = string(tr.hexBuf[:]) // the one allocation per trace
	return tr
}

// Finish completes a trace: computes the total, records it in the slow
// ring when at or past the threshold, returns the summary by value and
// reclaims the trace. The trace must not be used afterwards. detail is
// only rendered into a SlowRequest when the trace is slow, so composing
// it can be gated on the caller's side with SlowThreshold in mind.
func (t *Tracer) Finish(tr *Trace, detail string) TraceResult {
	if t == nil || tr == nil {
		return TraceResult{}
	}
	res := TraceResult{ID: tr.id, Total: time.Since(tr.start), Stages: tr.stages}
	if t.opts.SlowThreshold > 0 && res.Total >= t.opts.SlowThreshold {
		res.Slow = true
		t.slow.Add(1)
		t.mu.Lock()
		t.ring[t.next] = SlowRequest{ID: res.ID, At: time.Now(), Total: res.Total, Stages: res.Stages, Detail: detail}
		t.next++
		if t.next == len(t.ring) {
			t.next, t.full = 0, true
		}
		t.mu.Unlock()
	}
	t.pool.Put(tr)
	return res
}

// SlowTotal reports how many requests ever crossed the slow threshold.
func (t *Tracer) SlowTotal() uint64 {
	if t == nil {
		return 0
	}
	return t.slow.Load()
}

// Slow snapshots the retained slow-request records, oldest first.
func (t *Tracer) Slow() []SlowRequest {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SlowRequest
	if t.full {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}
