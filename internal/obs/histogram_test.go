package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the Prometheus inclusive-upper-bound
// rule: an observation exactly equal to a bound lands in that bound's
// bucket, just above it lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	h := NewHistogram(bounds)
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // v <= 1 -> bucket 0
		{1.0000001, 1}, {2, 1},
		{3, 2}, {4, 2},
		{7.999, 3}, {8, 3},
		{8.001, 4}, {1e9, 4}, // +Inf bucket
		{math.Inf(1), 4},
		{-5, 0},
	}
	for _, c := range cases {
		if got := h.bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", s.Count, len(cases))
	}
	want := []uint64{4, 2, 2, 2, 3}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
}

// TestHistogramBoundaryProperty fuzzes the bucket rule against the
// reference linear scan across random bucket layouts.
func TestHistogramBoundaryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(24)
		bounds := make([]float64, 0, n)
		v := rng.Float64() * 10
		for len(bounds) < n {
			bounds = append(bounds, v)
			v += 0.01 + rng.Float64()*5
		}
		h := NewHistogram(bounds)
		for j := 0; j < 50; j++ {
			var x float64
			if rng.Intn(3) == 0 {
				x = bounds[rng.Intn(len(bounds))] // exact boundary hit
			} else {
				x = rng.Float64()*v*1.2 - 1
			}
			ref := len(bounds)
			for i, b := range bounds {
				if x <= b {
					ref = i
					break
				}
			}
			if got := h.bucketIndex(x); got != ref {
				t.Fatalf("bounds=%v x=%v: bucketIndex=%d ref=%d", bounds, x, got, ref)
			}
		}
	}
}

func TestNewHistogramRejectsUnsorted(t *testing.T) {
	for _, bad := range [][]float64{{2, 1}, {1, 1}, {1, 2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bad)
				}
			}()
			NewHistogram(bad)
		}()
	}
}

// TestHistogramConcurrentMergeInvariance is the core correctness test:
// recording the same multiset of observations through (a) direct atomic
// Observe from many goroutines, and (b) per-shard Local recorders flushed
// in arbitrary interleavings, must produce identical bucket counts, total
// count, and (exactly, since we use integer-valued floats) sum.
func TestHistogramConcurrentMergeInvariance(t *testing.T) {
	bounds := DefLatencyBuckets()
	const shards, perShard = 8, 5000
	// Deterministic per-shard observation sets (integer-valued so float
	// addition is associative and sums compare exactly).
	obs := make([][]float64, shards)
	rng := rand.New(rand.NewSource(42))
	for s := range obs {
		obs[s] = make([]float64, perShard)
		for i := range obs[s] {
			obs[s][i] = float64(rng.Intn(1 << 20))
		}
	}

	direct := NewHistogram(bounds)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for _, v := range obs[s] {
				direct.Observe(v)
			}
		}(s)
	}
	wg.Wait()

	local := NewHistogram(bounds)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			l := local.Local()
			for i, v := range obs[s] {
				l.Observe(v)
				if i%997 == 0 {
					l.Flush() // interleaved partial flushes
				}
			}
			l.Flush()
		}(s)
	}
	wg.Wait()

	a, b := direct.Snapshot(), local.Snapshot()
	if a.Count != b.Count || a.Count != shards*perShard {
		t.Fatalf("count mismatch: direct=%d local=%d want=%d", a.Count, b.Count, shards*perShard)
	}
	if a.Sum != b.Sum {
		t.Fatalf("sum mismatch: direct=%v local=%v", a.Sum, b.Sum)
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			t.Fatalf("bucket %d mismatch: direct=%d local=%d", i, a.Counts[i], b.Counts[i])
		}
	}
}

func TestLocalFlushResets(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	l := h.Local()
	l.Observe(0.5)
	l.Observe(1.5)
	l.Flush()
	l.Flush() // second flush must be a no-op
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != 2.0 {
		t.Fatalf("after flush: count=%d sum=%v", s.Count, s.Sum)
	}
	l.Observe(3)
	l.Flush()
	s = h.Snapshot()
	if s.Count != 3 || s.Counts[2] != 1 {
		t.Fatalf("after reuse: count=%d +Inf=%d", s.Count, s.Counts[2])
	}
}

func TestNilHistogramSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if l := h.Local(); l != nil {
		t.Fatal("nil histogram Local() should be nil")
	}
	var l *Local
	l.Observe(1)
	l.ObserveDuration(time.Second)
	l.Flush()
	s := h.Snapshot()
	if s.Count != 0 {
		t.Fatal("nil snapshot not empty")
	}
}

func TestSnapshotQuantileAndMean(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for i := 1; i <= 30; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if got := s.Mean(); math.Abs(got-15.5) > 1e-9 {
		t.Errorf("mean = %v, want 15.5", got)
	}
	// Uniform 1..30 over [0,10],(10,20],(20,30]: each bucket holds 10.
	if q := s.Quantile(0.5); math.Abs(q-15) > 1e-9 {
		t.Errorf("p50 = %v, want 15", q)
	}
	if q := s.Quantile(1.0); math.Abs(q-30) > 1e-9 {
		t.Errorf("p100 = %v, want 30", q)
	}
	if q := s.Quantile(0); q < 0 || q > 10 {
		t.Errorf("p0 = %v, want within first bucket", q)
	}
	// +Inf bucket clamps to last finite bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(100)
	if q := h2.Snapshot().Quantile(0.99); q != 1 {
		t.Errorf("+Inf quantile = %v, want clamp to 1", q)
	}
	var empty Snapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty snapshot quantile/mean should be 0")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	for _, lat := range [][]float64{DefLatencyBuckets(), DefSizeBuckets()} {
		for i := 1; i < len(lat); i++ {
			if !(lat[i] > lat[i-1]) {
				t.Fatal("default buckets not increasing")
			}
		}
	}
}

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Load() != 0 {
		t.Fatal("nil counter load")
	}
	var g *Gauge
	g.Set(5)
	g.Add(-1)
	if g.Load() != 0 {
		t.Fatal("nil gauge load")
	}
	cc := &Counter{}
	cc.Add(2)
	cc.Inc()
	if cc.Load() != 3 {
		t.Fatalf("counter = %d, want 3", cc.Load())
	}
	gg := &Gauge{}
	gg.Set(10)
	gg.Add(-3)
	if gg.Load() != 7 {
		t.Fatalf("gauge = %d, want 7", gg.Load())
	}
}
