package obs

import (
	"math"
	"strings"
	"testing"
)

// TestPrometheusRoundTrip renders a registry with every instrument kind and
// parses it back with ParseText, asserting the parsed samples match the
// registered state — the exposition-format validation the ISSUE calls for.
func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("otfair_requests_total", "Total requests.")
	c.Add(41)
	c.Inc()
	rl := r.CounterL("otfair_http_requests_total", "Requests by route.", "route", "repair", "code", "200")
	rl.Add(7)
	r.CounterL("otfair_http_requests_total", "Requests by route.", "route", "blind", "code", "200").Add(3)
	g := r.Gauge("otfair_inflight", "In-flight requests.")
	g.Set(5)
	r.GaugeFunc("otfair_store_mem_bytes", "Store bytes.", func() float64 { return 1024 })
	h := r.Histogram("otfair_request_seconds", "Request latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText failed on own output:\n%s\nerr: %v", text, err)
	}
	got := map[string]float64{}
	for _, s := range samples {
		got[s.Key()] = s.Value
	}
	want := map[string]float64{
		"otfair_requests_total":                                42,
		`otfair_http_requests_total{route="repair",code="200"}`: 7,
		`otfair_http_requests_total{route="blind",code="200"}`:  3,
		"otfair_inflight":                                       5,
		"otfair_store_mem_bytes":                                1024,
		`otfair_request_seconds_bucket{le="0.001"}`:             1,
		`otfair_request_seconds_bucket{le="0.01"}`:              1,
		`otfair_request_seconds_bucket{le="0.1"}`:               2,
		`otfair_request_seconds_bucket{le="+Inf"}`:              3,
		"otfair_request_seconds_count":                          3,
	}
	for k, v := range want {
		gv, ok := got[k]
		if !ok {
			t.Errorf("missing series %s in:\n%s", k, text)
			continue
		}
		if math.Abs(gv-v) > 1e-12 {
			t.Errorf("series %s = %v, want %v", k, gv, v)
		}
	}
	if sum := got["otfair_request_seconds_sum"]; math.Abs(sum-3.0505) > 1e-9 {
		t.Errorf("histogram sum = %v, want 3.0505", sum)
	}
	// TYPE lines must precede samples and appear once per family.
	if n := strings.Count(text, "# TYPE otfair_http_requests_total counter"); n != 1 {
		t.Errorf("TYPE line count = %d, want 1", n)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":  "foo 1\n",
		"unknown TYPE":        "# TYPE foo banana\nfoo 1\n",
		"bad value":           "# TYPE foo counter\nfoo abc\n",
		"unterminated labels": "# TYPE foo counter\nfoo{a=\"b\" 1\n",
		"malformed label":     "# TYPE foo counter\nfoo{ab} 1\n",
		"non-cumulative buckets": "# TYPE foo histogram\n" +
			"foo_bucket{le=\"1\"} 5\nfoo_bucket{le=\"+Inf\"} 3\n",
	}
	for name, text := range cases {
		if _, err := ParseText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: ParseText accepted %q", name, text)
		}
	}
}

func TestParseTextAcceptsSpecials(t *testing.T) {
	text := "# TYPE foo gauge\nfoo +Inf\n# TYPE bar gauge\nbar{x=\"a,b\"} -Inf\n# TYPE baz gauge\nbaz NaN\n"
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}
	if !math.IsInf(samples[0].Value, 1) || !math.IsInf(samples[1].Value, -1) || !math.IsNaN(samples[2].Value) {
		t.Fatalf("special values parsed wrong: %+v", samples)
	}
	if samples[1].Labels != `x="a,b"` {
		t.Fatalf("quoted comma label parsed wrong: %q", samples[1].Labels)
	}
}

func TestRegistryIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	h1 := r.Histogram("h_seconds", "help", []float64{1, 2})
	h2 := r.Histogram("h_seconds", "help", []float64{5, 6})
	if h1 != h2 {
		t.Fatal("re-registration returned a different histogram")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind conflict did not panic")
			}
		}()
		r.Gauge("x_total", "help")
	}()
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterL("esc_total", "h", "path", `a"b\c`+"\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("escaped output did not parse: %v\n%s", err, b.String())
	}
	if len(samples) != 1 || samples[0].Value != 1 {
		t.Fatalf("unexpected samples %+v", samples)
	}
}
