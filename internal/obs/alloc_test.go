package obs

import (
	"testing"
	"time"
)

// TestZeroAllocHotPath pins the overhead contract from DESIGN.md: every
// per-observation operation — counter adds, histogram observes (shared and
// Local), Local flushes, and trace stage recording — performs zero heap
// allocations. These are the primitives that sit on the 2.3 M rec/s repair
// hot paths; any regression here fails the build.
func TestZeroAllocHotPath(t *testing.T) {
	c := &Counter{}
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocs = %v, want 0", n)
	}
	g := &Gauge{}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocs = %v, want 0", n)
	}
	h := NewHistogram(DefLatencyBuckets())
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Errorf("Histogram.Observe allocs = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.ObserveDuration(time.Millisecond) }); n != 0 {
		t.Errorf("Histogram.ObserveDuration allocs = %v, want 0", n)
	}
	l := h.Local()
	if n := testing.AllocsPerRun(1000, func() { l.Observe(0.003) }); n != 0 {
		t.Errorf("Local.Observe allocs = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		l.Observe(1)
		l.Flush()
	}); n != 0 {
		t.Errorf("Local.Observe+Flush allocs = %v, want 0", n)
	}

	// Nil (uninstrumented) paths must also be free.
	var nc *Counter
	var nh *Histogram
	var nl *Local
	var ntr *Trace
	if n := testing.AllocsPerRun(1000, func() {
		nc.Add(1)
		nh.Observe(1)
		nl.Observe(1)
		nl.Flush()
		ntr.Add(StageDecode, 1)
		ntr.Begin(StageFlush)
		ntr.End(StageFlush)
	}); n != 0 {
		t.Errorf("nil instrument path allocs = %v, want 0", n)
	}

	// Trace stage recording on a live trace (Start/Finish allocate the hex
	// ID — that is per-request, not per-record — so only the stage ops are
	// pinned here).
	tc := NewTracer(TracerOptions{})
	tr := tc.Start()
	if n := testing.AllocsPerRun(1000, func() {
		tr.Begin(StageDecode)
		tr.End(StageDecode)
		tr.Add(StageEncode, time.Microsecond)
		_ = tr.Get(StageEncode)
		_ = tr.Sampled()
	}); n != 0 {
		t.Errorf("Trace stage ops allocs = %v, want 0", n)
	}
	tc.Finish(tr, "")

	// A pooled Start/Finish cycle costs exactly one allocation: the
	// request-ID string. Pin it so the pool keeps working.
	if n := testing.AllocsPerRun(1000, func() {
		tr := tc.Start()
		tc.Finish(tr, "")
	}); n > 1 {
		t.Errorf("Start/Finish cycle allocs = %v, want <= 1", n)
	}
}
