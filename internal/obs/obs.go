// Package obs is the serving stack's observability layer: a dependency-free
// metrics registry (atomic counters, gauges, fixed-bucket lock-free
// histograms with mergeable per-shard recorders), Prometheus text-format
// exposition, and a lightweight per-request tracer whose stage spans are
// recorded into preallocated slabs.
//
// The package exists so instrumentation can ride the 2.3 M rec/s hot paths
// without bending them: every instrument is nil-receiver safe (an
// uninstrumented deployment holds nil pointers and pays one pointer check,
// faultinject-style), a recording is a single atomic add, and the per-shard
// Local recorder batches a whole shard's observations into one atomic add
// per nonzero bucket at merge time. Nothing here allocates per observation
// — pinned by AllocsPerRun tests — and the registry depends only on the
// standard library.
//
// Naming follows Prometheus conventions: counters end in _total, durations
// are _seconds histograms, and label sets are fixed at registration time
// (vecs are for small closed label sets like route or stage, never for
// unbounded values like plan fingerprints — those stay in the JSON
// /v1/metrics endpoint where cardinality is the client's problem).
package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotone cumulative counter. The zero value is ready to use;
// a nil *Counter is the uninstrumented no-op.
//otfair:nilsafe nil counter is the uninstrumented no-op on the record hot path
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The zero value is ready to use;
// a nil *Gauge is the uninstrumented no-op.
//otfair:nilsafe nil gauge is the uninstrumented no-op on the record hot path
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// kind is the Prometheus metric type of a family.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (label set, instrument) pair inside a family. Exactly one
// of the instrument fields is set; fn-backed series are evaluated at
// exposition time so existing state (store stats, engine totals) can be
// exported without double counting.
type series struct {
	labels string // rendered `k="v",...` (no braces), "" for unlabelled
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family is one named metric with its help text and every registered
// label variant.
type family struct {
	name, help string
	kind       kind
	series     []*series
	byLabels   map[string]*series
}

// Registry is an ordered collection of metric families. Registration takes
// a mutex (bind-time, not hot-path); the instruments it hands out are
// lock-free. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// renderLabels turns k,v pairs into the canonical `k="v",...` fragment.
// Values are escaped per the exposition format (backslash, quote, newline).
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register resolves (or creates) the family and the series for a label
// set. Re-registering an identical (name, labels) pair returns the existing
// series — idempotent binds are what let several layers share one registry
// — while a name registered under two different kinds panics: that is a
// programming error, caught at bind time.
func (r *Registry) register(name, help string, k kind, labels []string) *series {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.byName[name]
	if !ok {
		fam = &family{name: name, help: help, kind: k, byLabels: make(map[string]*series)}
		r.byName[name] = fam
		r.families = append(r.families, fam)
	} else if fam.kind != k {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, fam.kind, k))
	}
	ls := renderLabels(labels)
	if s, ok := fam.byLabels[ls]; ok {
		return s
	}
	s := &series{labels: ls}
	fam.byLabels[ls] = s
	fam.series = append(fam.series, s)
	return s
}

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, help)
}

// CounterL registers (or returns) a counter with a fixed label set, given
// as alternating key, value strings.
func (r *Registry) CounterL(name, help string, labels ...string) *Counter {
	s := r.register(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil && s.fn == nil {
		s.c = &Counter{}
	}
	return s.c
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the adapter for pre-existing cumulative state (store
// stats, resilience counters) that must not be counted twice.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	s := r.register(name, help, kindCounter, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Gauge registers (or returns) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeL(name, help)
}

// GaugeL registers (or returns) a gauge with a fixed label set, given as
// alternating key, value strings — the settable counterpart of GaugeFunc
// for small closed label sets (state machines, per-artefact bindings).
func (r *Registry) GaugeL(name, help string, labels ...string) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil && s.fn == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram registers (or returns) an unlabelled histogram over the given
// bucket upper bounds (see NewHistogram for the bound contract).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramL(name, help, bounds)
}

// HistogramL registers (or returns) a histogram with a fixed label set.
// Re-registration with different bounds keeps the original's.
func (r *Registry) HistogramL(name, help string, bounds []float64, labels ...string) *Histogram {
	s := r.register(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = NewHistogram(bounds)
	}
	return s.h
}
