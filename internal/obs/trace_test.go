package obs

import (
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndTraceSafe(t *testing.T) {
	var tc *Tracer
	tr := tc.Start()
	if tr != nil {
		t.Fatal("nil tracer Start should return nil trace")
	}
	tr.Begin(StageDecode)
	tr.End(StageDecode)
	tr.Add(StageEncode, time.Millisecond)
	tr.Set(StageFlush, time.Millisecond)
	if tr.Get(StageDecode) != 0 || tr.ID() != "" || tr.Sampled() {
		t.Fatal("nil trace should be inert")
	}
	if res := tc.Finish(tr, "x"); res.ID != "" {
		t.Fatal("nil Finish should be zero")
	}
	if tc.Slow() != nil || tc.SlowTotal() != 0 {
		t.Fatal("nil tracer slow state should be empty")
	}
}

func TestTraceStagesAndIDs(t *testing.T) {
	tc := NewTracer(TracerOptions{SampleEvery: 2})
	seen := map[string]bool{}
	sampled := 0
	for i := 0; i < 10; i++ {
		tr := tc.Start()
		id := tr.ID()
		if len(id) != 32 {
			t.Fatalf("id %q: want 32 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
		if tr.Sampled() {
			sampled++
		}
		tr.Begin(StageAdmission)
		tr.End(StageAdmission)
		tr.Add(StageDecode, 3*time.Millisecond)
		tr.Add(StageDecode, 2*time.Millisecond)
		tr.Set(StageShardExecute, 7*time.Millisecond)
		if tr.Get(StageDecode) != 5*time.Millisecond {
			t.Fatalf("decode = %v, want 5ms", tr.Get(StageDecode))
		}
		res := tc.Finish(tr, "")
		if res.ID != id || res.Stages[StageShardExecute] != 7*time.Millisecond {
			t.Fatalf("finish result mismatch: %+v", res)
		}
		if res.Total < 0 {
			t.Fatal("negative total")
		}
	}
	if sampled != 5 {
		t.Fatalf("sampled %d of 10 with SampleEvery=2, want 5", sampled)
	}
	// Pooled reuse must reset stages.
	tr := tc.Start()
	if tr.Get(StageDecode) != 0 {
		t.Fatal("pooled trace retained stale stage data")
	}
	tc.Finish(tr, "")
}

func TestTracerSlowRing(t *testing.T) {
	tc := NewTracer(TracerOptions{SlowThreshold: time.Nanosecond, SlowRing: 3})
	for i := 0; i < 5; i++ {
		tr := tc.Start()
		time.Sleep(time.Microsecond)
		res := tc.Finish(tr, "detail")
		if !res.Slow {
			t.Fatal("request above threshold not marked slow")
		}
	}
	if tc.SlowTotal() != 5 {
		t.Fatalf("SlowTotal = %d, want 5", tc.SlowTotal())
	}
	slow := tc.Slow()
	if len(slow) != 3 {
		t.Fatalf("ring holds %d, want 3", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].At.Before(slow[i-1].At) {
			t.Fatal("slow ring not oldest-first")
		}
	}
	if slow[0].Detail != "detail" || slow[0].ID == "" {
		t.Fatalf("slow record incomplete: %+v", slow[0])
	}

	// Threshold 0 disables the ring entirely.
	off := NewTracer(TracerOptions{})
	tr := off.Start()
	time.Sleep(time.Microsecond)
	if res := off.Finish(tr, ""); res.Slow {
		t.Fatal("slow with zero threshold")
	}
	if len(off.Slow()) != 0 {
		t.Fatal("ring populated with zero threshold")
	}
}

func TestTracerConcurrentIDsUnique(t *testing.T) {
	tc := NewTracer(TracerOptions{})
	const workers, per = 8, 200
	var mu sync.Mutex
	seen := make(map[string]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]string, 0, per)
			for i := 0; i < per; i++ {
				tr := tc.Start()
				ids = append(ids, tr.ID())
				tc.Finish(tr, "")
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate id %s", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestStageNames(t *testing.T) {
	names := StageNames()
	want := []string{"admission", "spool", "decode", "shard_execute", "encode", "flush"}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("stage %d = %q, want %q", i, names[i], w)
		}
	}
	if StageShardExecute.String() != "shard_execute" {
		t.Fatal("Stage.String mismatch")
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range Stage.String")
	}
}
