package driftwatch

import (
	"strings"
	"testing"

	"otfair/internal/dataset"
	"otfair/internal/obs"
)

// splitWatcher builds a watcher and feeds it n labelled records with
// distinct feature values, so split halves can be compared by identity.
func splitWatcher(t *testing.T, n int, seed uint64) *Watcher {
	t.Helper()
	w := New("aaaabbbbccccdddd", Config{ReservoirSize: n, Seed: seed}, nil)
	for i := 0; i < n; i++ {
		w.Observe(dataset.Record{U: i % 2, S: (i / 2) % 2, X: []float64{float64(i), float64(i) * 0.5}})
	}
	return w
}

func TestReservoirSplitDisjointAndDeterministic(t *testing.T) {
	const n = 9
	judge, held := splitWatcher(t, n, 7).ReservoirSplit()
	// Even split, judge half taking the extra record on odd sizes.
	if len(judge) != 5 || len(held) != 4 {
		t.Fatalf("split sizes %d/%d, want 5/4", len(judge), len(held))
	}
	// Disjoint partition of exactly the observed records, identified by
	// their unique first feature.
	seen := make(map[float64]int, n)
	for _, r := range judge {
		seen[r.X[0]]++
	}
	for _, r := range held {
		seen[r.X[0]]++
	}
	if len(seen) != n {
		t.Fatalf("split covers %d distinct records, want %d", len(seen), n)
	}
	for x, c := range seen {
		if c != 1 {
			t.Fatalf("record x=%v appears %d times across the halves", x, c)
		}
	}
	// Deterministic given the traffic: an identically seeded watcher fed
	// the same records splits identically.
	judge2, held2 := splitWatcher(t, n, 7).ReservoirSplit()
	for i := range judge {
		if judge[i].X[0] != judge2[i].X[0] {
			t.Fatalf("judge half diverged at %d: %v vs %v", i, judge[i].X[0], judge2[i].X[0])
		}
	}
	for i := range held {
		if held[i].X[0] != held2[i].X[0] {
			t.Fatalf("held half diverged at %d: %v vs %v", i, held[i].X[0], held2[i].X[0])
		}
	}
	// A different seed shuffles differently (the halves are not just the
	// insertion order cut in two).
	judge3, _ := splitWatcher(t, n, 8).ReservoirSplit()
	diff := false
	for i := range judge {
		if judge[i].X[0] != judge3[i].X[0] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds 7 and 8 produced identical judge halves")
	}
}

func TestJudgeSplitCatchesJudgeHalfOverfit(t *testing.T) {
	cfg := Config{MaxERise: 0.01, MaxDamageRise: 0.05}
	good := CanaryStats{E: 0.5, Damage: 1.0, Records: 64}

	// A candidate that memorized the judge half: better E on exactly
	// those records, regressed on the disjoint held-out half. A
	// single-sample canary would swap it; the split gate must not.
	v := JudgeSplit(good, CanaryStats{E: 0.3, Damage: 1.0, Records: 64},
		good, CanaryStats{E: 0.9, Damage: 1.0, Records: 64}, cfg)
	if v.Pass {
		t.Fatal("overfit candidate passed the split canary")
	}
	if v.Slice != SliceHeldOut {
		t.Fatalf("failing slice = %q, want %q", v.Slice, SliceHeldOut)
	}
	if v.Reason != ReasonERegressed {
		t.Fatalf("reason = %q, want %q", v.Reason, ReasonERegressed)
	}
	if v.New.E != 0.9 {
		t.Fatalf("verdict carries E=%v, want the failing half's 0.9", v.New.E)
	}

	// A judge-half failure short-circuits and is attributed to the judge
	// slice.
	v = JudgeSplit(good, CanaryStats{E: 0.9, Damage: 1.0, Records: 64},
		good, good, cfg)
	if v.Pass || v.Slice != SliceJudge {
		t.Fatalf("judge-half failure: pass=%v slice=%q, want fail on %q", v.Pass, v.Slice, SliceJudge)
	}

	// A candidate good on both halves passes with the judge half's stats
	// and no slice attribution.
	v = JudgeSplit(good, CanaryStats{E: 0.45, Damage: 1.0, Records: 64},
		good, CanaryStats{E: 0.48, Damage: 1.02, Records: 64}, cfg)
	if !v.Pass || v.Slice != "" {
		t.Fatalf("clean candidate: pass=%v slice=%q", v.Pass, v.Slice)
	}
	if v.New.E != 0.45 {
		t.Fatalf("pass verdict carries E=%v, want the judge half's 0.45", v.New.E)
	}

	// An empty held-out half (tiny reservoir) is a rejection, not a pass:
	// the conservative empty-reservoir rule applies per half.
	v = JudgeSplit(good, good, CanaryStats{}, CanaryStats{}, cfg)
	if v.Pass || v.Reason != ReasonEmptyReservoir || v.Slice != SliceHeldOut {
		t.Fatalf("empty held half: pass=%v reason=%q slice=%q", v.Pass, v.Reason, v.Slice)
	}
}

func TestTickQuietDrainsIdleQuietPeriod(t *testing.T) {
	w := New("feedfacefeedface", Config{AlarmAfter: 2, QuietAfter: 3}, nil)
	drifted(w)
	drifted(w)
	if _, ok := w.ShouldRecalibrate(); !ok {
		t.Fatal("alarmed watcher refused recalibration")
	}
	w.Finish(OutcomeRefitFailed, "")
	if w.State() != StateRolledBack {
		t.Fatalf("state %v after refit_failed, want rolled back", w.State())
	}
	// No traffic arrives; timer ticks must drain the quiet period.
	w.TickQuiet()
	w.TickQuiet()
	if w.State() != StateRolledBack {
		t.Fatalf("quiet period drained early: state %v", w.State())
	}
	w.TickQuiet()
	if w.State() != StateOK {
		t.Fatalf("state %v after QuietAfter ticks, want ok", w.State())
	}
	// Further ticks on a settled watcher are no-ops.
	w.TickQuiet()
	if w.State() != StateOK {
		t.Fatalf("extra tick moved state to %v", w.State())
	}
	// And the machine re-arms on fresh drift after the idle drain.
	drifted(w)
	drifted(w)
	if _, ok := w.ShouldRecalibrate(); !ok {
		t.Fatal("watcher did not re-arm after timer-drained quiet period")
	}
}

func TestRefitSkippedStaleOutcome(t *testing.T) {
	reg := obs.NewRegistry()
	w := New("0123456789abcdef", Config{AlarmAfter: 1, QuietAfter: 1}, reg)
	drifted(w)
	if _, ok := w.ShouldRecalibrate(); !ok {
		t.Fatal("watcher refused recalibration")
	}
	w.Finish(OutcomeRefitSkippedStale, "")
	if w.State() != StateRolledBack {
		t.Fatalf("state %v after refit_skipped_stale, want rolled back (incumbent keeps serving)", w.State())
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	if !strings.Contains(buf.String(), `otfair_recalibrations_total{outcome="refit_skipped_stale"} 1`) {
		t.Fatalf("stale-skip outcome not counted:\n%s", buf.String())
	}
}
