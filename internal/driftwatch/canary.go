// Canary verdict: the quality gate between "we refitted a plan" and "we
// serve with it". The caller shadow-repairs the watcher's reservoir sample
// under the incumbent and the candidate, measures both sides with the same
// instruments the paper evaluates repair with — fairmetrics E (how fair is
// the repaired output) and Damage (how far records moved to get there) —
// and Judge applies the configured tolerances. The gate is deliberately
// conservative: an empty sample or a NaN metric is a rejection, not a
// shrug, because a swap that cannot be justified must not happen.
package driftwatch

import "math"

// Canary failure reasons (otfair_canary_failures_total{reason=...}).
const (
	// ReasonEmptyReservoir: no labelled traffic to canary on. Blind-only
	// deployments land here — an honest rejection, not an error.
	ReasonEmptyReservoir = "empty_reservoir"
	// ReasonNaNMetric: a metric on either side failed to evaluate; the
	// comparison is unjudgeable and the incumbent stays.
	ReasonNaNMetric = "nan_metric"
	// ReasonERegressed: the candidate's repaired output is less fair than
	// the incumbent's by more than Config.MaxERise.
	ReasonERegressed = "e_regressed"
	// ReasonDamageRegressed: the candidate moves records further than the
	// incumbent by more than Config.MaxDamageRise.
	ReasonDamageRegressed = "damage_regressed"
)

var failReasons = []string{ReasonEmptyReservoir, ReasonNaNMetric,
	ReasonERegressed, ReasonDamageRegressed}

// CanaryStats is one side's measurement: the reservoir sample repaired
// under one plan, evaluated with the serving configuration's fairness
// metric and the mean squared per-record displacement.
type CanaryStats struct {
	// E is fairmetrics E on the shadow-repaired sample (lower = fairer).
	E float64 `json:"e"`
	// Damage is the mean squared displacement between the sample and its
	// repair (fairmetrics.Damage).
	Damage float64 `json:"damage"`
	// Records is the sample size both metrics were computed on.
	Records int `json:"records"`
}

// Reservoir slices a split-canary verdict can fail on.
const (
	// SliceJudge is the half the canary primarily judges on.
	SliceJudge = "judge"
	// SliceHeldOut is the disjoint half a judge-pass must also survive.
	SliceHeldOut = "held_out"
)

// Verdict is Judge's decision with the evidence attached.
type Verdict struct {
	// Pass reports whether the candidate may be swapped in.
	Pass bool `json:"pass"`
	// Reason is the failure reason ("" on pass), one of the Reason
	// constants.
	Reason string `json:"reason,omitempty"`
	// Slice names the reservoir half a JudgeSplit verdict failed on
	// (SliceJudge or SliceHeldOut; "" on pass or plain Judge).
	Slice string `json:"slice,omitempty"`
	// Old and New are the incumbent's and candidate's measurements.
	Old CanaryStats `json:"old"`
	New CanaryStats `json:"new"`
}

// Judge compares the incumbent's and the candidate's canary measurements
// under cfg's tolerances. Ties pass: a candidate exactly as fair and as
// gentle as the incumbent is acceptable — the point of the refit is
// tracking the drifted population, not beating the old plan on old-plan
// terms.
func Judge(old, new CanaryStats, cfg Config) Verdict {
	cfg = cfg.withDefaults()
	v := Verdict{Old: old, New: new}
	if old.Records == 0 || new.Records == 0 {
		v.Reason = ReasonEmptyReservoir
		return v
	}
	if math.IsNaN(old.E) || math.IsNaN(new.E) ||
		math.IsNaN(old.Damage) || math.IsNaN(new.Damage) {
		v.Reason = ReasonNaNMetric
		return v
	}
	if new.E > old.E+cfg.MaxERise {
		v.Reason = ReasonERegressed
		return v
	}
	if new.Damage > old.Damage+cfg.MaxDamageRise {
		v.Reason = ReasonDamageRegressed
		return v
	}
	v.Pass = true
	return v
}

// JudgeSplit gates a candidate on two disjoint reservoir halves (see
// Watcher.ReservoirSplit): the verdict must pass Judge on the judge half
// AND on the held-out half. A refit that overfits the sample it is
// judged on — better E on exactly those records, worse everywhere else —
// passes a single-sample canary and regresses production; requiring the
// held-out half catches it. The returned verdict carries the failing
// half's stats and Slice name, or the judge half's stats on a full pass.
func JudgeSplit(judgeOld, judgeNew, heldOld, heldNew CanaryStats, cfg Config) Verdict {
	v := Judge(judgeOld, judgeNew, cfg)
	if !v.Pass {
		v.Slice = SliceJudge
		return v
	}
	h := Judge(heldOld, heldNew, cfg)
	if !h.Pass {
		h.Slice = SliceHeldOut
		return h
	}
	return v
}
