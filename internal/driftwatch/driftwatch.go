// Package driftwatch turns drift telemetry into action. The serving stack
// already measures drift — monitor raises KS/PSI alarms per (u,s,feature)
// cell and blindsvc tracks posterior-confidence drift per calibration — but
// until this package nothing acted on any of it. A Watcher folds those
// signals into a per-artefact state machine
//
//	ok → warning → alarmed → recalibrating → canarying → swapped
//	                                                   ↘ rolled-back
//
// and the recalibration loop (driven by the caller, repairsvc) uses the
// Watcher's reservoir of recent labelled traffic to canary a refitted plan
// before swapping it in: shadow-repair the sample under old and new,
// compare fairness (fairmetrics E) and per-record damage, and let Judge
// decide. A refit from a fresh research set can be *worse* than the stale
// plan it replaces — representation bias in the new sample, a bad upstream
// feed — so the canary verdict, not the refit, gates the swap.
//
// Every state, score, and transition is exported through internal/obs as
// bounded-cardinality Prometheus series (artefact label values come from
// the caller's fixed set of bound plan fingerprints, never from request
// input) and logged through slog with a per-loop run ID correlating the
// whole alarm → refit → canary → swap/rollback sequence. The Watcher is
// mutation-locked but scrape-safe: exposition-time closures read atomics,
// so a Prometheus scrape never contends with the serving path.
package driftwatch

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"

	"otfair/internal/dataset"
	"otfair/internal/obs"
	"otfair/internal/rng"
)

// State is one node of the per-artefact drift state machine. The numeric
// values are the wire contract of the otfair_drift_state gauge.
type State int

const (
	// StateOK: scores below alarm bounds, nothing in flight.
	StateOK State = iota
	// StateWarning: at least one score crossed its bound, not yet for
	// Config.AlarmAfter consecutive checks.
	StateWarning
	// StateAlarmed: the bound has held for AlarmAfter checks; a
	// recalibration loop may claim the artefact (ShouldRecalibrate).
	StateAlarmed
	// StateRecalibrating: a loop owns the artefact and is refitting.
	StateRecalibrating
	// StateCanarying: the refit is being shadow-compared against the
	// incumbent on the reservoir sample.
	StateCanarying
	// StateSwapped: the canary passed and the fingerprint swap landed;
	// quiet period running before the watcher re-arms.
	StateSwapped
	// StateRolledBack: the refit failed or the canary rejected it; the
	// incumbent stays and the quiet period guards against an alarm loop.
	StateRolledBack
)

// String names the state as exported in logs and transition labels.
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateWarning:
		return "warning"
	case StateAlarmed:
		return "alarmed"
	case StateRecalibrating:
		return "recalibrating"
	case StateCanarying:
		return "canarying"
	case StateSwapped:
		return "swapped"
	default:
		return "rolled_back"
	}
}

// states is the closed label set of the transitions counter, registered up
// front so every series exists (at zero) from the first scrape.
var states = []State{StateOK, StateWarning, StateAlarmed, StateRecalibrating,
	StateCanarying, StateSwapped, StateRolledBack}

// Recalibration outcomes (otfair_recalibrations_total{outcome=...}).
const (
	// OutcomeSwapped: canary passed, fingerprint swap landed.
	OutcomeSwapped = "swapped"
	// OutcomeRolledBack: canary rejected the refit; incumbent kept.
	OutcomeRolledBack = "rolled_back"
	// OutcomeRefitFailed: the refit itself failed (source unreadable,
	// feed down or invalid, design error) before any canary ran;
	// incumbent kept.
	OutcomeRefitFailed = "refit_failed"
	// OutcomeRefitSkippedStale: the feed answered but its content
	// fingerprint matches what the last completed loop already judged —
	// refitting would reproduce the same candidate, so the loop declines
	// and the quiet period absorbs the alarm.
	OutcomeRefitSkippedStale = "refit_skipped_stale"
)

var outcomes = []string{OutcomeSwapped, OutcomeRolledBack, OutcomeRefitFailed,
	OutcomeRefitSkippedStale}

// Config tunes the state machine and the canary verdict.
type Config struct {
	// AlarmAfter is how many consecutive alarming score updates promote
	// warning to alarmed (default 3) — one excursion is noise, a streak is
	// drift.
	AlarmAfter int
	// QuietAfter is how many observed records after a swap or rollback the
	// watcher stays disarmed (default 2048): post-swap windows still
	// straddle old traffic, and a rejected refit must not immediately
	// re-alarm into a refit loop.
	QuietAfter int
	// ReservoirSize caps the canary reservoir (default 512). Reservoir
	// sampling (algorithm R) keeps a uniform sample of the labelled
	// records seen since the last loop finished.
	ReservoirSize int
	// MaxERise is the largest fairness regression (new E minus old E on
	// the shadow-repaired reservoir) the canary accepts (default 0: the
	// refit must not be less fair than the incumbent; equal passes).
	MaxERise float64
	// MaxDamageRise is the largest damage increase (mean squared
	// displacement, new minus old) the canary accepts (default 0.25).
	MaxDamageRise float64
	// ConfidenceAlarm is the blind posterior-confidence drift magnitude
	// that counts as an alarming score (default 0.15). The exported
	// confidence score is drift/ConfidenceAlarm, so ≥ 1 means alarming —
	// the same convention the monitor's KS/PSI ratios use.
	ConfidenceAlarm float64
	// Seed drives reservoir sampling (default 1).
	Seed uint64
	// Logger receives transition events (nil = discard). Alarm and
	// rollback transitions log at Warn, everything else at Info; all lines
	// of one loop run carry the same run attribute.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.AlarmAfter == 0 {
		c.AlarmAfter = 3
	}
	if c.QuietAfter == 0 {
		c.QuietAfter = 2048
	}
	if c.ReservoirSize == 0 {
		c.ReservoirSize = 512
	}
	// A NaN bound would compare false against every canary rise and accept
	// every refit (and a NaN ConfidenceAlarm would poison the exported
	// drift/ConfidenceAlarm ratio), so non-finite thresholds fall back to
	// the defaults like unset ones do.
	if math.IsNaN(c.MaxERise) || math.IsInf(c.MaxERise, 0) {
		c.MaxERise = 0
	}
	if math.IsNaN(c.MaxDamageRise) || math.IsInf(c.MaxDamageRise, 0) || c.MaxDamageRise == 0 {
		c.MaxDamageRise = 0.25
	}
	if math.IsNaN(c.ConfidenceAlarm) || math.IsInf(c.ConfidenceAlarm, 0) || c.ConfidenceAlarm == 0 {
		c.ConfidenceAlarm = 0.15
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Watcher is the drift state machine for one artefact (one bound plan
// fingerprint). Mutating methods are safe for concurrent use; the metric
// closures handed to the registry read atomics so scrapes never block on
// the watcher's mutex.
type Watcher struct {
	cfg      Config
	artefact string

	state atomic.Int64
	// scores are Float64bits so GaugeFunc closures can read them lock-free.
	ksScore, psiScore, confScore atomic.Uint64

	mu       sync.Mutex
	hot      int    // consecutive alarming score updates
	quiet    int    // observations left before re-arming
	runs     int    // loop runs started (mints run IDs)
	runID    string // current (or last) loop run ID
	res      *reservoir
	lastOut  string // last Finish outcome, "" before any loop
	lastWhy  string // last canary failure reason, "" on pass
	resCount int64  // lifetime records offered to the reservoir

	trans   map[State]*obs.Counter
	recals  map[string]*obs.Counter
	canFail map[string]*obs.Counter
}

// New builds a watcher for one artefact and registers its Prometheus
// series with reg (nil = no metrics). The artefact label value must come
// from a bounded set — the caller's bound-plan fingerprints — never from
// raw request input; re-registering the same artefact rebinds the scrape
// closures to the new watcher, so eviction/rebind cycles do not leak
// series.
func New(artefact string, cfg Config, reg *obs.Registry) *Watcher {
	w := &Watcher{cfg: cfg.withDefaults(), artefact: artefact}
	w.res = newReservoir(w.cfg.ReservoirSize, w.cfg.Seed)
	w.cfg.Logger = w.cfg.Logger.With(
		slog.String("component", "driftwatch"), slog.String("artefact", artefact))
	if reg == nil {
		return w
	}
	reg.GaugeFunc("otfair_drift_state",
		"Drift state machine position per artefact (0=ok 1=warning 2=alarmed 3=recalibrating 4=canarying 5=swapped 6=rolled_back).",
		//otfair:cardinality-ok artefact values are bound-plan fingerprints, capped by the store's bind capacity
		func() float64 { return float64(w.State()) }, "artefact", artefact)
	for stat, v := range map[string]*atomic.Uint64{
		"ks": &w.ksScore, "psi": &w.psiScore, "confidence": &w.confScore,
	} {
		v := v
		reg.GaugeFunc("otfair_drift_score",
			"Continuous drift score per artefact and statistic; >= 1 means past the alarm bound.",
			func() float64 { return math.Float64frombits(v.Load()) },
			//otfair:cardinality-ok artefact values are bound-plan fingerprints, capped by the store's bind capacity
			"artefact", artefact, "stat", stat)
	}
	w.trans = make(map[State]*obs.Counter, len(states))
	for _, st := range states {
		w.trans[st] = reg.CounterL("otfair_drift_transitions_total",
			"Drift state machine transitions per artefact and destination state.",
			//otfair:cardinality-ok artefact values are bound-plan fingerprints, capped by the store's bind capacity
			"artefact", artefact, "to", st.String())
	}
	w.recals = make(map[string]*obs.Counter, len(outcomes))
	for _, o := range outcomes {
		w.recals[o] = reg.CounterL("otfair_recalibrations_total",
			"Completed recalibration loops by outcome.", "outcome", o)
	}
	w.canFail = make(map[string]*obs.Counter, len(failReasons))
	for _, r := range failReasons {
		w.canFail[r] = reg.CounterL("otfair_canary_failures_total",
			"Canary rejections by reason.", "reason", r)
	}
	return w
}

// State returns the current machine position.
func (w *Watcher) State() State { return State(w.state.Load()) }

// Artefact returns the fingerprint this watcher guards.
func (w *Watcher) Artefact() string { return w.artefact }

// RunID returns the current (or most recent) loop run ID, "" before the
// first alarm.
func (w *Watcher) RunID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.runID
}

// transition moves the machine, with mu held. Alarm and rollback page
// (Warn); everything else narrates (Info).
func (w *Watcher) transition(to State, attrs ...slog.Attr) {
	from := State(w.state.Load())
	if from == to {
		return
	}
	w.state.Store(int64(to))
	if c := w.trans[to]; c != nil {
		c.Inc()
	}
	level := slog.LevelInfo
	if to == StateAlarmed || to == StateRolledBack {
		level = slog.LevelWarn
	}
	base := []slog.Attr{
		slog.String("from", from.String()), slog.String("to", to.String()),
		slog.String("run", w.runID),
		slog.Float64("ks_score", math.Float64frombits(w.ksScore.Load())),
		slog.Float64("psi_score", math.Float64frombits(w.psiScore.Load())),
		slog.Float64("confidence_score", math.Float64frombits(w.confScore.Load())),
	}
	w.cfg.Logger.LogAttrs(context.Background(), level, "drift transition", append(base, attrs...)...)
}

// Observe feeds one served record to the watcher: labelled records enter
// the canary reservoir, and every record runs down the post-loop quiet
// period. Call it off the response path — the reservoir copies X.
func (w *Watcher) Observe(rec dataset.Record) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.quiet > 0 {
		w.quiet--
		if w.quiet == 0 {
			w.hot = 0
			w.transition(StateOK)
		}
	}
	if rec.S != dataset.SUnknown {
		w.resCount++
		w.res.add(rec)
	}
}

// TickQuiet runs one timer-driven quiet-period step. Traffic drains the
// post-loop quiet period through Observe; an idle artefact sees no
// traffic, so the drift timer substitutes its ticks — without this, a
// plan that drifted and then went quiet would stay disarmed forever and
// never recalibrate again.
func (w *Watcher) TickQuiet() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.quiet > 0 {
		w.quiet--
		if w.quiet == 0 {
			w.hot = 0
			w.transition(StateOK)
		}
	}
}

// SetScores records the monitor's current worst KS and PSI
// statistic/threshold ratios and runs the arming logic.
func (w *Watcher) SetScores(ks, psi float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ksScore.Store(math.Float64bits(ks))
	w.psiScore.Store(math.Float64bits(psi))
	w.arm()
}

// SetConfidenceDrift records the worst blind posterior-confidence drift
// magnitude across the artefact's bound calibrations; the exported score is
// drift/ConfidenceAlarm so ≥ 1 means alarming.
func (w *Watcher) SetConfidenceDrift(drift float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.confScore.Store(math.Float64bits(math.Abs(drift) / w.cfg.ConfidenceAlarm))
	w.arm()
}

// arm advances ok → warning → alarmed (or retreats to ok) from the current
// scores. Only the pre-loop states move; once a loop owns the artefact
// (recalibrating/canarying) or a quiet period runs, scores update for
// export but do not drive transitions. Caller holds mu.
func (w *Watcher) arm() {
	st := State(w.state.Load())
	if st != StateOK && st != StateWarning && st != StateAlarmed || w.quiet > 0 {
		return
	}
	worst := math.Max(math.Float64frombits(w.ksScore.Load()),
		math.Max(math.Float64frombits(w.psiScore.Load()),
			math.Float64frombits(w.confScore.Load())))
	if worst < 1 {
		w.hot = 0
		if st != StateOK {
			w.transition(StateOK)
		}
		return
	}
	w.hot++
	if st == StateOK {
		w.transition(StateWarning)
		st = StateWarning
	}
	if st == StateWarning && w.hot >= w.cfg.AlarmAfter {
		w.runs++
		w.runID = fmt.Sprintf("%s/run%d", shortID(w.artefact), w.runs)
		w.transition(StateAlarmed, slog.Int("hot_checks", w.hot))
	}
}

// ShouldRecalibrate atomically claims an alarmed artefact for a
// recalibration loop: exactly one caller gets (runID, true) per alarm, and
// the machine moves to recalibrating.
func (w *Watcher) ShouldRecalibrate() (runID string, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if State(w.state.Load()) != StateAlarmed {
		return "", false
	}
	w.transition(StateRecalibrating)
	return w.runID, true
}

// StartCanary marks the refit done and the shadow comparison running.
func (w *Watcher) StartCanary() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if State(w.state.Load()) == StateRecalibrating {
		w.transition(StateCanarying)
	}
}

// Finish ends the loop run: outcome is one of the Outcome constants,
// reason the canary failure reason ("" unless the canary rejected).
// The machine lands in swapped or rolled-back, the reservoir resets (the
// next canary must sample post-loop traffic), and the quiet period starts.
func (w *Watcher) Finish(outcome, reason string, attrs ...slog.Attr) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if c := w.recals[outcome]; c != nil {
		c.Inc()
	}
	if reason != "" {
		if c := w.canFail[reason]; c != nil {
			c.Inc()
		}
	}
	w.lastOut, w.lastWhy = outcome, reason
	w.hot = 0
	w.quiet = w.cfg.QuietAfter
	w.res = newReservoir(w.cfg.ReservoirSize, w.cfg.Seed+uint64(w.runs))
	w.resCount = 0
	to := StateRolledBack
	if outcome == OutcomeSwapped {
		to = StateSwapped
	}
	attrs = append(attrs, slog.String("outcome", outcome))
	if reason != "" {
		attrs = append(attrs, slog.String("reason", reason))
	}
	w.transition(to, attrs...)
}

// ReservoirSample returns a copy of the current canary reservoir.
func (w *Watcher) ReservoirSample() []dataset.Record {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.res.records()
}

// ReservoirSplit partitions a copy of the canary reservoir into a judge
// half and a held-out half: a Fisher–Yates shuffle driven by the
// reservoir's own seeded RNG, then an even split (the judge half takes
// the extra record on odd sizes). The two halves are disjoint uniform
// subsamples, so a candidate that merely memorizes the judge half cannot
// also pass on the held-out half. Deterministic given the traffic: the
// reservoir RNG's state is a pure function of the seed and the offered
// records, and the loop that calls this owns the reservoir until Finish
// resets it.
func (w *Watcher) ReservoirSplit() (judge, held []dataset.Record) {
	w.mu.Lock()
	defer w.mu.Unlock()
	recs := w.res.records()
	for i := len(recs) - 1; i > 0; i-- {
		j := w.res.r.IntN(i + 1)
		recs[i], recs[j] = recs[j], recs[i]
	}
	half := (len(recs) + 1) / 2
	return recs[:half], recs[half:]
}

// Logger returns the watcher's transition logger, pre-tagged with the
// artefact, for loop code that wants correlated lines between transitions.
func (w *Watcher) Logger() *slog.Logger { return w.cfg.Logger }

// Snapshot is the watcher's JSON-facing view (the /v1/metrics drift
// section of cmd/fairserved).
type Snapshot struct {
	Artefact        string  `json:"artefact"`
	State           string  `json:"state"`
	RunID           string  `json:"run_id,omitempty"`
	KSScore         float64 `json:"ks_score"`
	PSIScore        float64 `json:"psi_score"`
	ConfidenceScore float64 `json:"confidence_score"`
	ReservoirLen    int     `json:"reservoir_len"`
	QuietLeft       int     `json:"quiet_left,omitempty"`
	LastOutcome     string  `json:"last_outcome,omitempty"`
	LastReason      string  `json:"last_reason,omitempty"`
}

// Snapshot reports the current state for dashboards.
func (w *Watcher) Snapshot() Snapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Snapshot{
		Artefact:        w.artefact,
		State:           State(w.state.Load()).String(),
		RunID:           w.runID,
		KSScore:         math.Float64frombits(w.ksScore.Load()),
		PSIScore:        math.Float64frombits(w.psiScore.Load()),
		ConfidenceScore: math.Float64frombits(w.confScore.Load()),
		ReservoirLen:    w.res.len(),
		QuietLeft:       w.quiet,
		LastOutcome:     w.lastOut,
		LastReason:      w.lastWhy,
	}
}

// shortID truncates a fingerprint for run IDs and logs.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// reservoir is algorithm R: a uniform sample of the records offered so
// far, O(1) per offer, fixed memory.
type reservoir struct {
	cap  int
	r    *rng.RNG
	seen int64
	recs []dataset.Record
}

func newReservoir(capacity int, seed uint64) *reservoir {
	return &reservoir{cap: capacity, r: rng.New(seed)}
}

// add offers one record. X is copied only when the record is actually
// admitted — once the reservoir is warm almost every offer is a rejection,
// and the serve-path tap must not pay an allocation for those.
func (rv *reservoir) add(rec dataset.Record) {
	rv.seen++
	if len(rv.recs) < rv.cap {
		rec.X = append([]float64(nil), rec.X...)
		rv.recs = append(rv.recs, rec)
		return
	}
	if j := rv.r.IntN(int(rv.seen)); j < rv.cap {
		rec.X = append([]float64(nil), rec.X...)
		rv.recs[j] = rec
	}
}

func (rv *reservoir) len() int { return len(rv.recs) }

// records returns a copy of the sample (records share their X backing with
// the reservoir's own copies, which are never mutated).
func (rv *reservoir) records() []dataset.Record {
	return append([]dataset.Record(nil), rv.recs...)
}
