package driftwatch

import (
	"math"
	"strings"
	"testing"

	"otfair/internal/dataset"
	"otfair/internal/obs"
)

func healthy(w *Watcher) { w.SetScores(0.3, 0.2) }
func drifted(w *Watcher) { w.SetScores(1.8, 0.9) }

func TestStateMachineHappyPath(t *testing.T) {
	reg := obs.NewRegistry()
	w := New("aaaabbbbccccdddd", Config{AlarmAfter: 3, QuietAfter: 4}, reg)
	if w.State() != StateOK {
		t.Fatalf("initial state %v", w.State())
	}
	healthy(w)
	if w.State() != StateOK {
		t.Fatalf("healthy score moved state to %v", w.State())
	}
	drifted(w)
	if w.State() != StateWarning {
		t.Fatalf("first alarming score: state %v, want warning", w.State())
	}
	if _, ok := w.ShouldRecalibrate(); ok {
		t.Fatal("warning state offered recalibration")
	}
	drifted(w)
	drifted(w)
	if w.State() != StateAlarmed {
		t.Fatalf("after AlarmAfter alarming scores: state %v, want alarmed", w.State())
	}
	run, ok := w.ShouldRecalibrate()
	if !ok || run == "" {
		t.Fatalf("alarmed state refused recalibration (run %q, ok %v)", run, ok)
	}
	if !strings.HasPrefix(run, "aaaabbbbcccc/run") {
		t.Errorf("run ID %q not artefact-prefixed", run)
	}
	if _, ok := w.ShouldRecalibrate(); ok {
		t.Fatal("second claim succeeded; loop ownership not exclusive")
	}
	if w.State() != StateRecalibrating {
		t.Fatalf("state %v after claim, want recalibrating", w.State())
	}
	// Scores keep updating for export, but the loop owns the state now.
	drifted(w)
	if w.State() != StateRecalibrating {
		t.Fatalf("score update moved loop-owned state to %v", w.State())
	}
	w.StartCanary()
	if w.State() != StateCanarying {
		t.Fatalf("state %v, want canarying", w.State())
	}
	w.Finish(OutcomeSwapped, "")
	if w.State() != StateSwapped {
		t.Fatalf("state %v, want swapped", w.State())
	}
	// Quiet period: alarming scores must not re-arm until QuietAfter
	// observations have passed.
	drifted(w)
	if w.State() != StateSwapped {
		t.Fatalf("quiet period broken: state %v", w.State())
	}
	rec := dataset.Record{X: []float64{1, 2}, S: 0, U: 0}
	for i := 0; i < 4; i++ {
		w.Observe(rec)
	}
	if w.State() != StateOK {
		t.Fatalf("after quiet period: state %v, want ok", w.State())
	}
	// And the machine re-arms cleanly on fresh drift.
	drifted(w)
	drifted(w)
	drifted(w)
	if w.State() != StateAlarmed {
		t.Fatalf("re-armed machine at %v, want alarmed", w.State())
	}
	run2, ok := w.ShouldRecalibrate()
	if !ok || run2 == run {
		t.Fatalf("second loop run %q (first %q)", run2, run)
	}
}

func TestWarningRecedesToOK(t *testing.T) {
	w := New("feedfacefeedface", Config{AlarmAfter: 3}, nil)
	drifted(w)
	if w.State() != StateWarning {
		t.Fatalf("state %v", w.State())
	}
	healthy(w)
	if w.State() != StateOK {
		t.Fatalf("transient excursion stuck at %v", w.State())
	}
	// The hot streak must reset: two more excursions stay in warning.
	drifted(w)
	drifted(w)
	if w.State() != StateWarning {
		t.Fatalf("hot streak not reset: state %v", w.State())
	}
}

func TestConfidenceDriftArms(t *testing.T) {
	w := New("0123456789abcdef", Config{AlarmAfter: 2, ConfidenceAlarm: 0.1}, nil)
	w.SetConfidenceDrift(-0.05)
	if w.State() != StateOK {
		t.Fatalf("sub-threshold drift armed: %v", w.State())
	}
	w.SetConfidenceDrift(-0.2) // |drift|/alarm = 2 ≥ 1
	w.SetConfidenceDrift(0.15)
	if w.State() != StateAlarmed {
		t.Fatalf("confidence drift did not alarm: %v", w.State())
	}
	if s := w.Snapshot(); math.Abs(s.ConfidenceScore-1.5) > 1e-9 {
		t.Errorf("ConfidenceScore = %v, want 1.5", s.ConfidenceScore)
	}
}

func TestRollbackQuietPreventsAlarmLoop(t *testing.T) {
	w := New("deadbeefdeadbeef", Config{AlarmAfter: 1, QuietAfter: 8}, nil)
	drifted(w)
	if _, ok := w.ShouldRecalibrate(); !ok {
		t.Fatal("no claim")
	}
	w.StartCanary()
	w.Finish(OutcomeRolledBack, ReasonERegressed)
	if w.State() != StateRolledBack {
		t.Fatalf("state %v", w.State())
	}
	// Drift persists (the rejected refit didn't fix it) — but the quiet
	// period must hold the machine out of an immediate refit loop.
	for i := 0; i < 5; i++ {
		drifted(w)
	}
	if w.State() != StateRolledBack {
		t.Fatalf("rolled-back machine re-armed during quiet: %v", w.State())
	}
	s := w.Snapshot()
	if s.LastOutcome != OutcomeRolledBack || s.LastReason != ReasonERegressed {
		t.Errorf("snapshot outcome/reason = %q/%q", s.LastOutcome, s.LastReason)
	}
}

func TestReservoirUniformAndBounded(t *testing.T) {
	w := New("cafebabecafebabe", Config{ReservoirSize: 64}, nil)
	x := []float64{0}
	for i := 0; i < 10000; i++ {
		x[0] = float64(i)
		w.Observe(dataset.Record{X: x, S: i % 2, U: 0})
	}
	sample := w.ReservoirSample()
	if len(sample) != 64 {
		t.Fatalf("reservoir holds %d records, want 64", len(sample))
	}
	// Uniformity smoke check: the sample mean index of a uniform draw from
	// [0,10000) concentrates near 5000; σ of the mean ≈ 2887/8 ≈ 361.
	mean := 0.0
	for _, r := range sample {
		mean += r.X[0]
	}
	mean /= float64(len(sample))
	if mean < 3500 || mean > 6500 {
		t.Errorf("reservoir sample mean index %v; not plausibly uniform", mean)
	}
	// The reservoir copied X — mutating the caller's buffer must not
	// corrupt the sample.
	x[0] = math.Inf(1)
	for _, r := range sample {
		if math.IsInf(r.X[0], 1) {
			t.Fatal("reservoir aliases the caller's X buffer")
		}
	}
}

func TestReservoirSkipsUnlabelled(t *testing.T) {
	w := New("0000111122223333", Config{}, nil)
	w.Observe(dataset.Record{X: []float64{1}, S: dataset.SUnknown, U: 0})
	if n := len(w.ReservoirSample()); n != 0 {
		t.Fatalf("unlabelled record entered the reservoir (%d)", n)
	}
	w.Observe(dataset.Record{X: []float64{1}, S: 1, U: 0})
	if n := len(w.ReservoirSample()); n != 1 {
		t.Fatalf("labelled record missing (%d)", n)
	}
}

func TestJudgeVerdicts(t *testing.T) {
	cfg := Config{MaxERise: 0, MaxDamageRise: 0.25}
	ok := CanaryStats{E: 0.5, Damage: 1.0, Records: 100}
	cases := []struct {
		name   string
		old    CanaryStats
		new    CanaryStats
		pass   bool
		reason string
	}{
		{"better", ok, CanaryStats{E: 0.3, Damage: 0.9, Records: 100}, true, ""},
		// Equal E passes: tracking the drifted population is the goal, not
		// beating the incumbent.
		{"equal", ok, ok, true, ""},
		{"e rise", ok, CanaryStats{E: 0.6, Damage: 1.0, Records: 100}, false, ReasonERegressed},
		{"damage within", ok, CanaryStats{E: 0.5, Damage: 1.2, Records: 100}, true, ""},
		{"damage rise", ok, CanaryStats{E: 0.5, Damage: 1.3, Records: 100}, false, ReasonDamageRegressed},
		{"empty old", CanaryStats{}, ok, false, ReasonEmptyReservoir},
		{"empty new", ok, CanaryStats{}, false, ReasonEmptyReservoir},
		{"nan e", ok, CanaryStats{E: math.NaN(), Damage: 1, Records: 100}, false, ReasonNaNMetric},
		{"nan damage old", CanaryStats{E: 0.5, Damage: math.NaN(), Records: 100}, ok, false, ReasonNaNMetric},
	}
	for _, tc := range cases {
		v := Judge(tc.old, tc.new, cfg)
		if v.Pass != tc.pass || v.Reason != tc.reason {
			t.Errorf("%s: Judge = (pass %v, reason %q), want (%v, %q)",
				tc.name, v.Pass, v.Reason, tc.pass, tc.reason)
		}
	}
}

func TestMetricsExported(t *testing.T) {
	reg := obs.NewRegistry()
	w := New("1111222233334444", Config{AlarmAfter: 1, QuietAfter: 2}, reg)
	drifted(w)
	if _, ok := w.ShouldRecalibrate(); !ok {
		t.Fatal("no claim")
	}
	w.StartCanary()
	w.Finish(OutcomeSwapped, "")
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Name+"{"+s.Labels+"}"] = s.Value
	}
	art := `artefact="1111222233334444"`
	for key, want := range map[string]float64{
		"otfair_drift_state{" + art + "}":                                float64(StateSwapped),
		"otfair_drift_score{" + art + `,stat="ks"}`:                      1.8,
		"otfair_drift_transitions_total{" + art + `,to="warning"}`:       1,
		"otfair_drift_transitions_total{" + art + `,to="alarmed"}`:       1,
		"otfair_drift_transitions_total{" + art + `,to="recalibrating"}`: 1,
		"otfair_drift_transitions_total{" + art + `,to="canarying"}`:     1,
		"otfair_drift_transitions_total{" + art + `,to="swapped"}`:       1,
		"otfair_recalibrations_total{" + `outcome="swapped"}`:            1,
		"otfair_recalibrations_total{" + `outcome="rolled_back"}`:        0,
		"otfair_canary_failures_total{" + `reason="e_regressed"}`:        0,
	} {
		got, ok := byKey[key]
		if !ok {
			t.Errorf("series %s missing from exposition", key)
		} else if got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}
}

func TestRebindOverwritesScrapeClosures(t *testing.T) {
	// A plan eviction/rebind cycle creates a fresh watcher for the same
	// artefact; the registry must serve the new watcher's values, not the
	// dead one's.
	reg := obs.NewRegistry()
	old := New("5555666677778888", Config{}, reg)
	old.SetScores(0.9, 0.9)
	nw := New("5555666677778888", Config{}, reg)
	nw.SetScores(0.1, 0.1)
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Name == "otfair_drift_score" && strings.Contains(s.Labels, `stat="ks"`) {
			if s.Value != 0.1 {
				t.Errorf("rebind left stale scrape closure: ks score %v, want 0.1", s.Value)
			}
		}
	}
}
