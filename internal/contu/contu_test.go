package contu

import (
	"math"
	"testing"

	"otfair/internal/core"
	"otfair/internal/fairmetrics"
	"otfair/internal/rng"
)

// drawContinuous samples records with u ~ Uniform(0,1) and
// x | s,u ~ N(m_s(u), I₂) where the s-shift varies with u:
//
//	m_0(u) = (2u−1, 2u−1),   m_1(u) = m_0(u) + Δ(u)·(1,1),  Δ(u) = 2(1−u).
//
// The dependence of X on S given U changes along u, so a single global
// repair is systematically wrong somewhere — the regime binning exists for.
func drawContinuous(r *rng.RNG, n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		u := r.Float64()
		s := 0
		if r.Bernoulli(0.5) {
			s = 1
		}
		base := 2*u - 1
		shift := 0.0
		if s == 1 {
			shift = 2 * (1 - u)
		}
		recs[i] = Record{
			X: []float64{r.Normal(base+shift, 1), r.Normal(base+shift, 1)},
			S: s,
			U: u,
		}
	}
	return recs
}

func TestRecordValidate(t *testing.T) {
	good := Record{X: []float64{1, 2}, S: 0, U: 0.5}
	if err := good.Validate(2); err != nil {
		t.Fatal(err)
	}
	cases := []Record{
		{X: []float64{1}, S: 0, U: 0},                 // wrong dim
		{X: []float64{1, 2}, S: 7, U: 0},              // bad s
		{X: []float64{1, 2}, S: 0, U: math.NaN()},     // NaN u
		{X: []float64{1, 2}, S: 0, U: math.Inf(1)},    // Inf u
		{X: []float64{1, math.NaN()}, S: 0, U: 0},     // NaN x
		{X: []float64{math.Inf(-1), 2}, S: 0, U: 0.1}, // Inf x
	}
	for i, rec := range cases {
		if err := rec.Validate(2); err == nil {
			t.Errorf("case %d: invalid record accepted", i)
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = Record{X: []float64{0}, S: i % 2, U: float64(i)}
	}
	edges, err := quantileEdges(recs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 5 {
		t.Fatalf("edges = %v", edges)
	}
	if !math.IsInf(edges[0], -1) || !math.IsInf(edges[4], 1) {
		t.Error("outer edges must be infinite")
	}
	// Interior edges near the 25/50/75 percentiles of 0..99.
	for i, want := range []float64{24.75, 49.5, 74.25} {
		if math.Abs(edges[i+1]-want) > 1e-9 {
			t.Errorf("edge %d = %v, want %v", i+1, edges[i+1], want)
		}
	}
	// Degenerate u values cannot support many bins.
	same := make([]Record, 10)
	for i := range same {
		same[i] = Record{X: []float64{0}, S: i % 2, U: 1}
	}
	if _, err := quantileEdges(same, 4); err == nil {
		t.Error("duplicate edges accepted")
	}
}

func TestBinOf(t *testing.T) {
	edges := []float64{math.Inf(-1), 1, 2, math.Inf(1)}
	cases := []struct {
		u    float64
		want int
	}{
		{-5, 0}, {0.99, 0},
		{1, 1}, // half-open: edge belongs right
		{1.5, 1}, {1.999, 1},
		{2, 2}, {100, 2},
	}
	for _, c := range cases {
		if got := binOf(edges, c.u); got != c.want {
			t.Errorf("binOf(%v) = %d, want %d", c.u, got, c.want)
		}
	}
}

func TestDesignValidation(t *testing.T) {
	if _, err := Design(nil, 2, Options{}); err == nil {
		t.Error("empty research accepted")
	}
	r := rng.New(1)
	recs := drawContinuous(r, 200)
	if _, err := Design(recs, 3, Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Design(recs, 2, Options{Bins: -1}); err == nil {
		t.Error("negative bins accepted")
	}
	// One-sided bin: all s=1 records above the median u.
	var skew []Record
	for i := 0; i < 100; i++ {
		u := float64(i) / 100
		s := 0
		if u >= 0.5 {
			s = 1
		}
		skew = append(skew, Record{X: []float64{u, u}, S: s, U: u})
	}
	if _, err := Design(skew, 2, Options{Bins: 2}); err == nil {
		t.Error("one-sided bin accepted")
	}
}

func TestDesignStructure(t *testing.T) {
	r := rng.New(2)
	recs := drawContinuous(r, 1200)
	plan, err := Design(recs, 2, Options{Bins: 4, Core: core.Options{NQ: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bins() != 4 {
		t.Fatalf("bins = %d", plan.Bins())
	}
	if len(plan.Cells) != 4 || len(plan.Cells[0]) != 2 {
		t.Fatalf("cells shape %dx%d", len(plan.Cells), len(plan.Cells[0]))
	}
	// Centers must ascend and sit inside (0,1).
	for b := 0; b < 4; b++ {
		if plan.Centers[b] <= 0 || plan.Centers[b] >= 1 {
			t.Errorf("center %d = %v outside (0,1)", b, plan.Centers[b])
		}
		if b > 0 && plan.Centers[b] <= plan.Centers[b-1] {
			t.Errorf("centers not ascending: %v", plan.Centers)
		}
	}
}

func TestRepairerValidation(t *testing.T) {
	r := rng.New(3)
	recs := drawContinuous(r, 600)
	plan, err := Design(recs, 2, Options{Bins: 2, Core: core.Options{NQ: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRepairer(nil, rng.New(1), core.RepairOptions{}); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := NewRepairer(plan, nil, core.RepairOptions{}); err == nil {
		t.Error("nil rng accepted")
	}
	rp, err := NewRepairer(plan, rng.New(1), core.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rp.RepairRecord(Record{X: []float64{0}, S: 0, U: 0.5}); err == nil {
		t.Error("wrong dimension accepted")
	}
	if _, err := rp.RepairRecord(Record{X: []float64{0, 0}, S: 5, U: 0.5}); err == nil {
		t.Error("bad s accepted")
	}
}

func TestRepairReducesBinnedE(t *testing.T) {
	r := rng.New(4)
	research := drawContinuous(r, 1500)
	archive := drawContinuous(r, 4000)
	plan, err := Design(research, 2, Options{Bins: 4, Core: core.Options{NQ: 30}})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewRepairer(plan, rng.New(5), core.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := rp.RepairAll(archive)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fairmetrics.Config{Estimator: fairmetrics.EstimatorKDE}
	before, err := EBinned(archive, plan.Edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after, err := EBinned(repaired, plan.Edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before/3 {
		t.Errorf("binned E %v → %v, want at least a 3× reduction", before, after)
	}
	// Labels and u pass through untouched.
	for i := range repaired {
		if repaired[i].S != archive[i].S || repaired[i].U != archive[i].U {
			t.Fatalf("record %d labels changed", i)
		}
	}
	if d := rp.Diagnostics(); d.Repaired != int64(len(archive)*2) {
		t.Errorf("Repaired = %d, want %d", d.Repaired, len(archive)*2)
	}
}

func TestMoreBinsReduceConditioningBias(t *testing.T) {
	// Evaluated at a fine conditioning (8 evaluation bins), a 1-bin design
	// (ignore u) must leave more residual dependence than a 4-bin design:
	// the s-shift varies with u, so one global plan over-repairs some u and
	// under-repairs others.
	r := rng.New(6)
	research := drawContinuous(r, 2000)
	archive := drawContinuous(r, 5000)
	cfg := fairmetrics.Config{Estimator: fairmetrics.EstimatorKDE}

	evalEdges, err := quantileEdges(archive, 8)
	if err != nil {
		t.Fatal(err)
	}
	residual := map[int]float64{}
	for _, bins := range []int{1, 4} {
		plan, err := Design(research, 2, Options{Bins: bins, Core: core.Options{NQ: 30}})
		if err != nil {
			t.Fatal(err)
		}
		rp, err := NewRepairer(plan, rng.New(7), core.RepairOptions{})
		if err != nil {
			t.Fatal(err)
		}
		repaired, err := rp.RepairAll(archive)
		if err != nil {
			t.Fatal(err)
		}
		e, err := EBinned(repaired, evalEdges, cfg)
		if err != nil {
			t.Fatal(err)
		}
		residual[bins] = e
	}
	if residual[4] >= residual[1] {
		t.Errorf("4-bin residual %v not below 1-bin residual %v", residual[4], residual[1])
	}
}

func TestBlendingActivatesAndPreservesRepair(t *testing.T) {
	r := rng.New(8)
	research := drawContinuous(r, 1500)
	archive := drawContinuous(r, 2000)
	plan, err := Design(research, 2, Options{Bins: 4, Blend: true, Core: core.Options{NQ: 30}})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewRepairer(plan, rng.New(9), core.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := rp.RepairAll(archive)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Blended() == 0 {
		t.Error("blending never activated on interior u values")
	}
	cfg := fairmetrics.Config{Estimator: fairmetrics.EstimatorKDE}
	before, err := EBinned(archive, plan.Edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after, err := EBinned(repaired, plan.Edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before/2 {
		t.Errorf("blended repair: E %v → %v", before, after)
	}
}

func TestEBinnedValidation(t *testing.T) {
	if _, err := EBinned(nil, []float64{0, 1}, fairmetrics.Config{}); err == nil {
		t.Error("empty records accepted")
	}
	recs := []Record{{X: []float64{0, 0}, S: 0, U: 0.5}}
	if _, err := EBinned(recs, []float64{0}, fairmetrics.Config{}); err == nil {
		t.Error("single edge accepted")
	}
	// All one s-class: no bin evaluable.
	if _, err := EBinned(recs, []float64{math.Inf(-1), math.Inf(1)}, fairmetrics.Config{}); err == nil {
		t.Error("one-sided data accepted")
	}
}

func TestEBinnedSkipsOneSidedBins(t *testing.T) {
	// One evaluable bin plus one one-sided bin: the metric must use only
	// the evaluable one rather than erroring.
	r := rng.New(10)
	var recs []Record
	for i := 0; i < 400; i++ {
		s := i % 2
		shift := float64(s) * 2
		recs = append(recs, Record{X: []float64{r.Normal(shift, 1), r.Normal(shift, 1)}, S: s, U: 0.25})
	}
	for i := 0; i < 50; i++ {
		recs = append(recs, Record{X: []float64{r.Norm(), r.Norm()}, S: 0, U: 0.75})
	}
	e, err := EBinned(recs, []float64{math.Inf(-1), 0.5, math.Inf(1)}, fairmetrics.Config{Estimator: fairmetrics.EstimatorKDE})
	if err != nil {
		t.Fatal(err)
	}
	if e < 0.2 {
		t.Errorf("E = %v, want the separated bin's dependence to show", e)
	}
}
