package contu

import (
	"errors"
	"fmt"

	"otfair/internal/dataset"
	"otfair/internal/fairmetrics"
)

// EBinned evaluates the E metric (Definition 2.4) for continuous-u records
// by conditioning on the given bin edges: per bin the symmetrized KL between
// the s-conditional feature densities is computed and the bins are weighted
// by their record mass. Bins that lack an s-class are skipped and the
// weights renormalized — with many bins and finite data some one-sided bins
// are expected; an error is returned only when no bin is evaluable.
//
// Evaluating with finer edges than the design used reveals residual
// within-bin dependence — the conditioning bias of a too-coarse design —
// which is exactly what the X9 sweep measures.
func EBinned(records []Record, edges []float64, cfg fairmetrics.Config) (float64, error) {
	if len(records) == 0 {
		return 0, errors.New("contu: no records")
	}
	if len(edges) < 2 {
		return 0, errors.New("contu: need at least two edges")
	}
	bins := len(edges) - 1
	dim := len(records[0].X)
	tables := make([]*dataset.Table, bins)
	counts := make([]int, bins)
	for i, rec := range records {
		if err := rec.Validate(dim); err != nil {
			return 0, fmt.Errorf("contu: record %d: %w", i, err)
		}
		b := binOf(edges, rec.U)
		if tables[b] == nil {
			t, err := dataset.NewTable(dim, nil)
			if err != nil {
				return 0, err
			}
			tables[b] = t
		}
		// Within a bin the only conditioning left is the bin itself, so the
		// binary u slot is constant.
		if err := tables[b].Append(dataset.Record{X: rec.X, S: rec.S, U: 0}); err != nil {
			return 0, err
		}
		counts[b]++
	}
	total, weighted := 0, 0.0
	for b, t := range tables {
		if t == nil {
			continue
		}
		has := [2]bool{}
		for _, rec := range t.Records() {
			has[rec.S] = true
		}
		if !has[0] || !has[1] {
			continue // one-sided bin: E_b undefined
		}
		e, err := fairmetrics.E(t, cfg)
		if err != nil {
			return 0, fmt.Errorf("contu: bin %d: %w", b, err)
		}
		weighted += float64(counts[b]) * e
		total += counts[b]
	}
	if total == 0 {
		return 0, errors.New("contu: no bin contains both s-classes")
	}
	return weighted / float64(total), nil
}
