package contu

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestBinOfAlwaysInRangeProperty(t *testing.T) {
	f := func(rawEdges []float64, u float64) bool {
		if math.IsNaN(u) {
			return true
		}
		// Build a valid edge vector: sorted finite interiors, ±Inf outside.
		var interior []float64
		for _, e := range rawEdges {
			if !math.IsNaN(e) && !math.IsInf(e, 0) {
				interior = append(interior, e)
			}
		}
		sort.Float64s(interior)
		edges := make([]float64, 0, len(interior)+2)
		edges = append(edges, math.Inf(-1))
		edges = append(edges, interior...)
		edges = append(edges, math.Inf(1))
		b := binOf(edges, u)
		if b < 0 || b > len(edges)-2 {
			return false
		}
		// The located bin must actually contain u.
		return edges[b] <= u && (b == len(edges)-2 || u < edges[b+1] || edges[b+1] == edges[b])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantileEdgesMonotoneProperty(t *testing.T) {
	f := func(raw []float64, binsSeed uint8) bool {
		var us []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				us = append(us, math.Mod(v, 1e6))
			}
		}
		if len(us) < 8 {
			return true
		}
		bins := int(binsSeed%4) + 1
		recs := make([]Record, len(us))
		for i, u := range us {
			recs[i] = Record{X: []float64{0}, S: i % 2, U: u}
		}
		edges, err := quantileEdges(recs, bins)
		if err != nil {
			return true // duplicate quantiles are a legitimate rejection
		}
		if len(edges) != bins+1 {
			return false
		}
		for i := 1; i < len(edges); i++ {
			if edges[i] < edges[i-1] {
				return false
			}
		}
		return math.IsInf(edges[0], -1) && math.IsInf(edges[len(edges)-1], 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
