// Package contu generalizes the repair to a continuous unprotected
// attribute u ∈ R — the generalization Section VI of the paper singles out
// ("allow us to address the important generalization to continuous
// unprotected attributes, u ∈ R^{n_u}").
//
// The conditioning (X ⊥ S) | U of Definition 2.1 is discretized: the
// research u-values are split into B quantile bins, and one per-feature
// repair cell (support, KDE marginals, barycentric target, OT plans — the
// exact Algorithm-1 primitive, reused from internal/core) is designed per
// (bin, feature). At repair time a record's u selects its bin; optionally
// the two bins bracketing u blend stochastically, extending the paper's
// τ-Bernoulli grid-snap randomization (Eq. 14) from the feature axis to the
// u axis, so the effective plan varies continuously with u instead of
// jumping at bin edges.
//
// B trades conditioning bias against estimation variance: B = 1 ignores u
// entirely (repairing structural along with model unfairness — exactly what
// the paper's conditional definition exists to avoid), while large B starves
// each bin of research data. The X9 ablation sweeps B.
package contu

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"otfair/internal/core"
)

// Record is one observation with a continuous unprotected attribute:
// z = {x, s, u} with u ∈ R.
type Record struct {
	// X is the feature vector.
	X []float64
	// S is the binary protected attribute.
	S int
	// U is the continuous unprotected attribute.
	U float64
}

// Validate checks the record against the expected dimension.
func (r Record) Validate(dim int) error {
	if len(r.X) != dim {
		return fmt.Errorf("contu: record has %d features, want %d", len(r.X), dim)
	}
	if r.S != 0 && r.S != 1 {
		return fmt.Errorf("contu: invalid s label %d", r.S)
	}
	if math.IsNaN(r.U) || math.IsInf(r.U, 0) {
		return errors.New("contu: u is not finite")
	}
	for k, v := range r.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("contu: feature %d is not finite", k)
		}
	}
	return nil
}

// Options configures the binned design.
type Options struct {
	// Bins is the number of quantile bins B over u (default 4).
	Bins int
	// Blend enables stochastic blending between adjacent bins at repair
	// time (default off: hard binning).
	Blend bool
	// Core configures the per-cell Algorithm-1 design.
	Core core.Options
}

func (o Options) withDefaults() Options {
	if o.Bins == 0 {
		o.Bins = 4
	}
	return o
}

// Plan is the designed continuous-u repair: B bins × d features of
// Algorithm-1 cells plus the bin geometry.
type Plan struct {
	// Edges has length Bins+1: half-open bins [Edges[b], Edges[b+1]) with
	// the outermost edges at ±Inf so every u falls somewhere.
	Edges []float64
	// Centers[b] is the mean research u within bin b — the interpolation
	// anchor for blending.
	Centers []float64
	// Cells is indexed [bin][feature].
	Cells [][]*core.Cell
	// Dim is the feature dimension.
	Dim int
	// Opts records the design configuration.
	Opts Options
}

// Bins returns the number of u-bins.
func (p *Plan) Bins() int { return len(p.Centers) }

// Design learns the binned repair from s-labelled research records with
// continuous u. Every bin must contain both s-classes; if the quantile
// split leaves a bin one-sided, lower Bins.
func Design(research []Record, dim int, opts Options) (*Plan, error) {
	if len(research) == 0 {
		return nil, errors.New("contu: empty research set")
	}
	opts = opts.withDefaults()
	if opts.Bins < 1 {
		return nil, fmt.Errorf("contu: Bins must be positive, got %d", opts.Bins)
	}
	for i, rec := range research {
		if err := rec.Validate(dim); err != nil {
			return nil, fmt.Errorf("contu: research record %d: %w", i, err)
		}
	}
	edges, err := quantileEdges(research, opts.Bins)
	if err != nil {
		return nil, err
	}
	plan := &Plan{
		Edges:   edges,
		Centers: make([]float64, opts.Bins),
		Cells:   make([][]*core.Cell, opts.Bins),
		Dim:     dim,
		Opts:    opts,
	}
	for b := 0; b < opts.Bins; b++ {
		var members []Record
		uSum := 0.0
		for _, rec := range research {
			if binOf(edges, rec.U) == b {
				members = append(members, rec)
				uSum += rec.U
			}
		}
		if len(members) == 0 {
			return nil, fmt.Errorf("contu: bin %d is empty; lower Bins", b)
		}
		plan.Centers[b] = uSum / float64(len(members))
		plan.Cells[b] = make([]*core.Cell, dim)
		for k := 0; k < dim; k++ {
			var x0, x1 []float64
			for _, rec := range members {
				if rec.S == 0 {
					x0 = append(x0, rec.X[k])
				} else {
					x1 = append(x1, rec.X[k])
				}
			}
			if len(x0) == 0 || len(x1) == 0 {
				return nil, fmt.Errorf("contu: bin %d lacks an s-class (n0=%d, n1=%d); lower Bins", b, len(x0), len(x1))
			}
			cell, err := core.DesignCell(x0, x1, opts.Core)
			if err != nil {
				return nil, fmt.Errorf("contu: bin %d feature %d: %w", b, k, err)
			}
			plan.Cells[b][k] = cell
		}
	}
	return plan, nil
}

// quantileEdges returns Bins+1 edges with the interior edges at the
// 1/B, 2/B, … research u-quantiles and ±Inf outside, so archival u beyond
// the research range still bins.
func quantileEdges(research []Record, bins int) ([]float64, error) {
	us := make([]float64, len(research))
	for i, rec := range research {
		us[i] = rec.U
	}
	sort.Float64s(us)
	edges := make([]float64, bins+1)
	edges[0] = math.Inf(-1)
	edges[bins] = math.Inf(1)
	for b := 1; b < bins; b++ {
		q := float64(b) / float64(bins)
		pos := q * float64(len(us)-1)
		i := int(pos)
		frac := pos - float64(i)
		v := us[i]
		if i+1 < len(us) {
			v = us[i]*(1-frac) + us[i+1]*frac
		}
		edges[b] = v
	}
	for b := 1; b < bins; b++ {
		if !(edges[b] > edges[b-1]) && b > 1 {
			return nil, fmt.Errorf("contu: duplicate quantile edge at bin %d (u has too few distinct values for %d bins)", b, bins)
		}
	}
	return edges, nil
}

// binOf locates u's half-open bin [edges[b], edges[b+1]): the number of
// interior edges not exceeding u.
func binOf(edges []float64, u float64) int {
	interior := edges[1 : len(edges)-1]
	return sort.Search(len(interior), func(i int) bool { return interior[i] > u })
}
