package contu

import (
	"errors"
	"fmt"

	"otfair/internal/core"
	"otfair/internal/rng"
)

// Repairer applies a binned continuous-u Plan to off-sample records. Not
// safe for concurrent use: it owns an RNG stream.
type Repairer struct {
	plan  *Plan
	inner []*core.Repairer // one Algorithm-2 repairer per bin
	rng   *rng.RNG
	// blended counts records whose bin was drawn from the blending
	// Bernoulli rather than hard-assigned.
	blended int64
}

// NewRepairer binds a binned plan to a randomness source. The per-bin
// cells are wrapped in single-population core plans so the tested
// Algorithm-2 machinery (grid snap, row draw, alias caching, diagnostics)
// is reused verbatim.
func NewRepairer(plan *Plan, r *rng.RNG, opts core.RepairOptions) (*Repairer, error) {
	if plan == nil {
		return nil, errors.New("contu: nil plan")
	}
	if r == nil {
		return nil, errors.New("contu: nil rng")
	}
	rp := &Repairer{plan: plan, rng: r, inner: make([]*core.Repairer, plan.Bins())}
	for b := range rp.inner {
		binPlan := &core.Plan{
			Dim:   plan.Dim,
			Cells: [2][]*core.Cell{plan.Cells[b], plan.Cells[b]},
			Opts:  plan.Opts.Core,
		}
		inner, err := core.NewRepairer(binPlan, r, opts)
		if err != nil {
			return nil, err
		}
		rp.inner[b] = inner
	}
	return rp, nil
}

// Diagnostics aggregates the Algorithm-2 counters across bins.
func (rp *Repairer) Diagnostics() core.Diagnostics {
	var total core.Diagnostics
	for _, in := range rp.inner {
		d := in.Diagnostics()
		total.Repaired += d.Repaired
		total.Clamped += d.Clamped
		total.EmptyRowFallbacks += d.EmptyRowFallbacks
	}
	return total
}

// Blended reports how many records were repaired under a stochastically
// blended bin.
func (rp *Repairer) Blended() int64 { return rp.blended }

// chooseBin resolves the bin for a record's u. With blending enabled the
// two bins whose centers bracket u are mixed by a Bernoulli draw on the
// interpolation weight — the paper's Eq. (14) randomization applied to the
// u axis — so the effective repair varies continuously with u.
func (rp *Repairer) chooseBin(u float64) int {
	hard := binOf(rp.plan.Edges, u)
	if !rp.plan.Opts.Blend || rp.plan.Bins() == 1 {
		return hard
	}
	centers := rp.plan.Centers
	last := len(centers) - 1
	if u <= centers[0] || u >= centers[last] {
		return hard
	}
	// Bracketing centers around u.
	j := hard
	if u < centers[j] {
		j--
	}
	if j < 0 || j >= last {
		return hard
	}
	w := (u - centers[j]) / (centers[j+1] - centers[j])
	rp.blended++
	if rp.rng.Bernoulli(w) {
		return j + 1
	}
	return j
}

// RepairRecord repairs one record: its u selects (or blends) a bin, and
// every feature passes through that bin's Algorithm-2 repair. The repaired
// record keeps its original continuous u.
func (rp *Repairer) RepairRecord(rec Record) (Record, error) {
	if err := rec.Validate(rp.plan.Dim); err != nil {
		return Record{}, err
	}
	b := rp.chooseBin(rec.U)
	out := Record{X: make([]float64, len(rec.X)), S: rec.S, U: rec.U}
	for k, x := range rec.X {
		v, err := rp.inner[b].RepairValue(0, rec.S, k, x)
		if err != nil {
			return Record{}, fmt.Errorf("contu: bin %d feature %d: %w", b, k, err)
		}
		out.X[k] = v
	}
	return out, nil
}

// RepairAll repairs a slice of records in order.
func (rp *Repairer) RepairAll(recs []Record) ([]Record, error) {
	out := make([]Record, len(recs))
	for i, rec := range recs {
		r, err := rp.RepairRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("contu: record %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}
