package shardrun

import (
	"time"

	"otfair/internal/obs"
)

// Obs is the runner's instrumentation hook set, nil-safe in the same style
// as faultinject.Injector: a nil *Obs is the production no-op, and every
// record point costs exactly one pointer check. Fields are bound by the
// serving layer at registry-assembly time; any left nil are simply not
// recorded (the obs instruments are themselves nil-safe).
//
// The runner observes at shard and chunk granularity, never per record —
// the granularity at which instrumentation is free relative to the work.
//otfair:nilsafe nil Obs runs the shard runner uninstrumented
type Obs struct {
	// ShardSeconds observes each shard closure's wall time, panicking
	// shards included (their time was spent too).
	ShardSeconds *obs.Histogram
	// ChunkRecords observes the record count of each chunk delivered to
	// the drain in stream mode.
	ChunkRecords *obs.Histogram
	// Shards counts shard closures run; Panics counts the subset that
	// died and were converted to *ShardPanicError.
	Shards *obs.Counter
	Panics *obs.Counter
}

// shardDone records one finished shard closure.
func (o *Obs) shardDone(d time.Duration, panicked bool) {
	if o == nil {
		return
	}
	o.Shards.Inc()
	o.ShardSeconds.ObserveDuration(d)
	if panicked {
		o.Panics.Inc()
	}
}

// chunkDone records one chunk delivered to the drain.
func (o *Obs) chunkDone(n int) {
	if o == nil {
		return
	}
	o.ChunkRecords.Observe(float64(n))
}
