package shardrun

import (
	"context"
	"errors"
	"io"
	"testing"

	"otfair/internal/obs"
	"otfair/internal/rng"
)

func newObs() *Obs {
	return &Obs{
		ShardSeconds: obs.NewHistogram(obs.DefLatencyBuckets()),
		ChunkRecords: obs.NewHistogram(obs.DefSizeBuckets()),
		Shards:       &obs.Counter{},
		Panics:       &obs.Counter{},
	}
}

// TestTableObsCountsAndDeterminism pins that instrumentation records every
// shard exactly once and never perturbs the output: the same (seed, n,
// workers) run with and without Obs produces identical per-index values.
func TestTableObsCountsAndDeterminism(t *testing.T) {
	const n, workers = 100, 4
	run := func(o *Obs) []uint64 {
		out := make([]uint64, n)
		err := TableObs(context.Background(), rng.New(9), workers, n, o, func(w int, r *rng.RNG, lo, hi int) error {
			for i := lo; i < hi; i++ {
				out[i] = r.Uint64()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	o := newObs()
	a, b := run(o), run(nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d: instrumented %d != plain %d", i, a[i], b[i])
		}
	}
	if got := o.Shards.Load(); got != workers {
		t.Fatalf("Shards = %d, want %d", got, workers)
	}
	if got := o.ShardSeconds.Snapshot().Count; got != workers {
		t.Fatalf("ShardSeconds count = %d, want %d", got, workers)
	}
	if o.Panics.Load() != 0 {
		t.Fatalf("Panics = %d, want 0", o.Panics.Load())
	}
}

func TestObsCountsPanics(t *testing.T) {
	o := newObs()
	err := IsolatedObs(o, func() error { panic("boom") })
	var pe *ShardPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ShardPanicError", err)
	}
	if o.Panics.Load() != 1 || o.Shards.Load() != 1 {
		t.Fatalf("panics=%d shards=%d, want 1/1", o.Panics.Load(), o.Shards.Load())
	}
	// The panicking shard's time is still observed.
	if o.ShardSeconds.Snapshot().Count != 1 {
		t.Fatal("panicking shard's duration not observed")
	}
}

func TestStreamObsChunks(t *testing.T) {
	o := newObs()
	const total, chunkSize, workers = 10, 4, 2
	i := 0
	next := func() (int, error) {
		if i == total {
			return 0, io.EOF
		}
		i++
		return i, nil
	}
	var drained int
	err := Stream(context.Background(), rng.New(3), Options{Workers: workers, ChunkSize: chunkSize, Obs: o},
		next,
		func(chunk uint64, shard int, r *rng.RNG, in, out []int, lo, hi int) error {
			for j := lo; j < hi; j++ {
				out[j] = in[j] * 2
			}
			return nil
		},
		func(out []int) error { drained += len(out); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if drained != total {
		t.Fatalf("drained %d, want %d", drained, total)
	}
	// Chunks: 4, 4, 2 -> three chunk observations summing to 10.
	cs := o.ChunkRecords.Snapshot()
	if cs.Count != 3 || cs.Sum != float64(total) {
		t.Fatalf("chunk obs count=%d sum=%v, want 3/%d", cs.Count, cs.Sum, total)
	}
	// Shards: chunks of 4 fan to 2 shards, the tail chunk of 2 to 2.
	if got := o.Shards.Load(); got != 6 {
		t.Fatalf("Shards = %d, want 6", got)
	}
}

func TestNilObsSafe(t *testing.T) {
	var o *Obs
	o.shardDone(0, true)
	o.chunkDone(5)
	if err := IsolatedObs(nil, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}
