package shardrun

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"otfair/internal/rng"
)

// TestOptionsDefaults pins the defaulting rules both engines rely on.
func TestOptionsDefaults(t *testing.T) {
	o, err := Options{}.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if o.Workers < 1 {
		t.Errorf("defaulted Workers = %d, want >= 1", o.Workers)
	}
	if o.ChunkSize != DefaultChunkSize {
		t.Errorf("defaulted ChunkSize = %d, want %d", o.ChunkSize, DefaultChunkSize)
	}
	o, err = Options{Workers: 3, ChunkSize: 17}.WithDefaults()
	if err != nil || o.Workers != 3 || o.ChunkSize != 17 {
		t.Errorf("explicit options mangled: %+v, %v", o, err)
	}
}

// TestOptionsRejectNegative is the typed-error contract: nonsensical values
// fail loudly instead of being clamped.
func TestOptionsRejectNegative(t *testing.T) {
	for _, o := range []Options{{Workers: -1}, {ChunkSize: -4096}, {Workers: -7, ChunkSize: -1}} {
		_, err := o.WithDefaults()
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Fatalf("WithDefaults(%+v) = %v, want *OptionError", o, err)
		}
		if oe.Value >= 0 {
			t.Errorf("OptionError reports value %d for %+v", oe.Value, o)
		}
	}
}

// TestSlots pins the per-shard state sizing rule: bounded by the data,
// floored at one (the Split(0) shard runs even on empty input).
func TestSlots(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{1, 100, 1}, {4, 100, 4}, {100, 4, 4}, {1 << 30, 3, 3}, {8, 0, 1}, {0, 5, 1},
	}
	for _, c := range cases {
		if got := Slots(c.workers, c.n); got != c.want {
			t.Errorf("Slots(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

// tableTrace runs Table with a worker that records, per index, which shard
// repaired it and a value drawn from the shard's RNG stream — a stand-in
// for the engines' repairers that exposes both the partition and the
// stream assignment.
func tableTrace(t *testing.T, seed uint64, workers, n int) (shards []int, draws []uint64) {
	t.Helper()
	shards = make([]int, n)
	draws = make([]uint64, n)
	err := Table(context.Background(), rng.New(seed), workers, n, func(w int, r *rng.RNG, lo, hi int) error {
		for i := lo; i < hi; i++ {
			shards[i] = w
			draws[i] = r.Uint64()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return shards, draws
}

// TestTablePartitionProperty checks, over many (n, workers) shapes, that
// shards are contiguous, cover [0, n) exactly once, and that shard w's
// stream is r.Split(w) — with the clamp to a single Split(0) shard when
// the table is smaller than the fan-out.
func TestTablePartitionProperty(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		for _, workers := range []int{1, 2, 3, 8, 63, 200} {
			shards, draws := tableTrace(t, 42, workers, n)
			clamped := workers
			if clamped > n {
				clamped = n
			}
			if clamped < 1 {
				clamped = 1
			}
			r := rng.New(42)
			streams := make(map[int]*rng.RNG)
			prev := 0
			for i := 0; i < n; i++ {
				w := shards[i]
				if w < prev || w >= clamped {
					t.Fatalf("n=%d workers=%d: index %d on shard %d (clamped fan-out %d)", n, workers, i, w, clamped)
				}
				prev = w
				if _, ok := streams[w]; !ok {
					streams[w] = r.Split(uint64(w))
				}
				if want := streams[w].Uint64(); draws[i] != want {
					t.Fatalf("n=%d workers=%d: index %d drew %d, want %d from Split(%d)", n, workers, i, draws[i], want, w)
				}
			}
		}
	}
}

// TestTableClampInvariance is the property the engines' tiny-table pins
// rest on: once the fan-out exceeds the table, output is invariant to the
// exact worker count — every workers >= n produces the trace of workers
// == n (and n <= 1 always lands on the single Split(0) shard).
func TestTableClampInvariance(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 17} {
		base := n
		if base < 1 {
			base = 1
		}
		_, want := tableTrace(t, 7, base, n)
		for _, workers := range []int{n + 1, n + 3, 10 * (n + 1)} {
			_, got := tableTrace(t, 7, workers, n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d: workers=%d draw %d differs from workers=%d", n, workers, i, base)
				}
			}
		}
	}
}

// TestTableErrorPropagation returns the lowest-indexed shard error.
func TestTableErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	err := Table(context.Background(), rng.New(1), 4, 100, func(w int, r *rng.RNG, lo, hi int) error {
		if w >= 2 {
			return fmt.Errorf("shard %d: %w", w, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) || err.Error() != "shard 2: boom" {
		t.Fatalf("err = %v, want shard 2's", err)
	}
}

// sliceSource yields ints one at a time, ending with io.EOF.
func sliceSource(xs []int) func() (int, error) {
	i := 0
	return func() (int, error) {
		if i >= len(xs) {
			return 0, io.EOF
		}
		x := xs[i]
		i++
		return x, nil
	}
}

// rebufferedSource yields the same records but through an internal
// refill buffer of varying sizes — a reader with different framing.
func rebufferedSource(xs []int, frames []int) func() (int, error) {
	var buf []int
	next, fi := 0, 0
	return func() (int, error) {
		if len(buf) == 0 {
			if next >= len(xs) {
				return 0, io.EOF
			}
			size := frames[fi%len(frames)]
			fi++
			end := next + size
			if end > len(xs) {
				end = len(xs)
			}
			buf = xs[next:end]
			next = end
		}
		x := buf[0]
		buf = buf[1:]
		return x, nil
	}
}

// streamTrace captures everything observable about a Stream run: the
// (chunk, shard, lo, hi, first-draw) tuples and the drained output.
func streamTrace(t *testing.T, opts Options, next func() (int, error)) (calls []string, out []int) {
	t.Helper()
	var mu sync.Mutex
	err := Stream(context.Background(), rng.New(9), opts, next,
		func(chunk uint64, w int, r *rng.RNG, in, dst []int, lo, hi int) error {
			mu.Lock()
			calls = append(calls, fmt.Sprintf("c%d w%d [%d,%d) %d", chunk, w, lo, hi, r.Uint64()))
			mu.Unlock()
			for i := lo; i < hi; i++ {
				dst[i] = in[i] * 10
			}
			return nil
		},
		func(dst []int) error {
			out = append(out, dst...)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return calls, out
}

// TestStreamFramingInvariance pins the chunk-boundary contract: chunk
// boundaries (and therefore every per-(chunk, shard) RNG stream) depend
// only on ChunkSize and the record sequence, never on how the underlying
// reader frames its input.
func TestStreamFramingInvariance(t *testing.T) {
	xs := make([]int, 1000)
	for i := range xs {
		xs[i] = i
	}
	opts := Options{Workers: 3, ChunkSize: 64}
	callsA, outA := streamTrace(t, opts, sliceSource(xs))
	for _, frames := range [][]int{{1}, {7, 64, 3}, {1000}, {63, 65}} {
		callsB, outB := streamTrace(t, opts, rebufferedSource(xs, frames))
		if len(outA) != len(outB) || len(callsA) != len(callsB) {
			t.Fatalf("frames %v: shape differs", frames)
		}
		for i := range outA {
			if outA[i] != outB[i] {
				t.Fatalf("frames %v: output %d differs", frames, i)
			}
		}
		// Shard calls race within a chunk, so compare as multisets.
		seen := make(map[string]int)
		for _, c := range callsA {
			seen[c]++
		}
		for _, c := range callsB {
			seen[c]--
		}
		for c, n := range seen {
			if n != 0 {
				t.Fatalf("frames %v: call trace differs at %q", frames, c)
			}
		}
	}
}

// TestStreamSlowAdversarialSink drives the chunked runner with a sink that
// stalls (so shards of the next chunk would race a lagging drain if the
// runner ever let them) and checks full determinism across runs; the race
// job runs this under -race.
func TestStreamSlowAdversarialSink(t *testing.T) {
	xs := make([]int, 400)
	for i := range xs {
		xs[i] = 3 * i
	}
	run := func() []int {
		var out []int
		err := Stream(context.Background(), rng.New(5), Options{Workers: 4, ChunkSize: 32}, sliceSource(xs),
			func(chunk uint64, w int, r *rng.RNG, in, dst []int, lo, hi int) error {
				for i := lo; i < hi; i++ {
					dst[i] = in[i] + int(r.Uint64()%1000)
				}
				return nil
			},
			func(dst []int) error {
				time.Sleep(time.Millisecond)
				out = append(out, dst...)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(xs) {
		t.Fatalf("drained %d of %d", len(a), len(xs))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d nondeterministic: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestStreamErrors pins the abort semantics: a read error aborts before the
// partial chunk is repaired, a shard error aborts before drain, and a drain
// error stops the stream.
func TestStreamErrors(t *testing.T) {
	boom := errors.New("boom")
	copyShard := func(chunk uint64, w int, r *rng.RNG, in, dst []int, lo, hi int) error {
		copy(dst[lo:hi], in[lo:hi])
		return nil
	}

	reads := 0
	var drained int
	err := Stream(context.Background(), rng.New(1), Options{Workers: 2, ChunkSize: 4},
		func() (int, error) {
			reads++
			if reads > 6 {
				return 0, boom
			}
			return reads, nil
		},
		copyShard,
		func(dst []int) error { drained += len(dst); return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("read error not propagated: %v", err)
	}
	if drained != 4 {
		t.Errorf("drained %d records, want only the complete chunk (4)", drained)
	}

	drains := 0
	err = Stream(context.Background(), rng.New(1), Options{Workers: 2, ChunkSize: 4}, sliceSource([]int{1, 2, 3, 4, 5}),
		func(chunk uint64, w int, r *rng.RNG, in, dst []int, lo, hi int) error {
			if chunk == 1 {
				return boom
			}
			return copyShard(chunk, w, r, in, dst, lo, hi)
		},
		func(dst []int) error { drains++; return nil })
	if !errors.Is(err, boom) || drains != 1 {
		t.Fatalf("shard error: err=%v drains=%d, want boom after 1 drain", err, drains)
	}

	err = Stream(context.Background(), rng.New(1), Options{Workers: 2, ChunkSize: 4}, sliceSource([]int{1, 2, 3}),
		copyShard,
		func(dst []int) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("drain error not propagated: %v", err)
	}
}
