// Package shardrun is the deterministic chunked-shard runner shared by the
// serving engines. Both repairsvc.Engine (labelled streams) and
// blindsvc.Engine (s-unlabelled streams) batch Algorithm-2 traffic the same
// way — records repaired independently, fanned across contiguous shards on
// split RNG streams — because the paper's Algorithm 2 treats every archival
// record independently. Neither engine can import the other, so the
// machinery they used to duplicate (including the determinism-critical
// per-(chunk, shard) split formula) lives here; shardrun depends only on
// internal/rng.
//
// Determinism contract, pinned by the engines' differential tests:
//
//   - Table mode fans [0, n) across contiguous shards; shard w covers
//     [w·n/W, (w+1)·n/W) and draws from r.Split(w), where W is the worker
//     count clamped to n. A table smaller than two shards collapses to ONE
//     shard covering everything on r.Split(0) — the clamp rule
//     core.RepairTableParallel established.
//   - Stream mode reads chunks of Options.ChunkSize; shard w of chunk c
//     draws from r.Split(c·W + w) with W the configured (unclamped) worker
//     count, so the stream of a fixed (seed, workers, chunk size) is
//     reproducible regardless of scheduling and of how the reader frames
//     its input. The drain (sink) always runs serially, in input order,
//     from the calling goroutine, and at most one chunk is in memory.
//
// Cancellation contract (the resilience layer's addition): Table and
// Stream take a context and stop promptly when it is cancelled —
// between shards' launch in table mode, and between chunks (never inside
// a delivered chunk) in stream mode — returning ctx.Err(). Cancellation
// can only truncate output at those boundaries: every record the sink saw
// was produced by the same per-(chunk, shard) split stream it would have
// used in a full run, so a cancelled stream's output is a byte-identical
// prefix (at chunk granularity) of the uncancelled one. Worker panics are
// isolated per shard: a panicking shard closure fails the run with a
// typed *ShardPanicError carrying the shard's coordinates instead of
// killing the process.
package shardrun

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"otfair/internal/rng"
)

// DefaultChunkSize is the streaming chunk size used when Options.ChunkSize
// is zero.
const DefaultChunkSize = 4096

// Options are the sharding knobs both serving engines expose. The zero
// value means "defaults" (GOMAXPROCS workers, DefaultChunkSize records per
// chunk); negative values are rejected by WithDefaults rather than being
// silently clamped.
type Options struct {
	// Workers is the shard fan-out (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// ChunkSize is the number of records per parallel wave in stream mode
	// (0 = DefaultChunkSize). Larger chunks amortize fan-out overhead;
	// smaller chunks bound latency and memory.
	ChunkSize int
	// Obs receives shard/chunk timings and counts (nil = uninstrumented).
	// It never influences execution, so two runs differing only in Obs are
	// byte-identical.
	Obs *Obs
}

// OptionError reports a nonsensical Options field. Both engines used to
// clamp such values silently (and could drift in how); now there is one
// validation path and it is loud.
type OptionError struct {
	Field string
	Value int
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("shardrun: %s = %d is out of range (use 0 for the default)", e.Field, e.Value)
}

// WithDefaults validates o and fills in defaults: Workers 0 becomes
// GOMAXPROCS, ChunkSize 0 becomes DefaultChunkSize. Negative values return
// a *OptionError instead of being clamped.
func (o Options) WithDefaults() (Options, error) {
	if o.Workers < 0 {
		return o, &OptionError{Field: "Workers", Value: o.Workers}
	}
	if o.ChunkSize < 0 {
		return o, &OptionError{Field: "ChunkSize", Value: o.ChunkSize}
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ChunkSize == 0 {
		o.ChunkSize = DefaultChunkSize
	}
	return o, nil
}

// Slots returns how many shard slots a runner can actually use for n
// items — min(workers, n), floored at 1 (a single Split(0) shard runs even
// for empty input). Callers size their per-shard state (diagnostics,
// stats, scratch) with this instead of the raw worker count, so a
// request-supplied fan-out of a billion costs goroutines and memory
// proportional to the data, never to the number. The RNG split formulas
// are unaffected: they use the configured worker count, not the slot
// count.
func Slots(workers, n int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// firstErr returns the lowest-shard-index error, matching the aggregation
// order the engines always used.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ShardPanicError reports a panic inside one shard closure, converted to
// an error so a panicking worker fails only the request that ran it — the
// serving process and every other in-flight request survive. The shard's
// coordinates identify exactly which slice of which chunk was being
// repaired when the worker died.
type ShardPanicError struct {
	// Chunk is the stream-mode chunk index (always 0 in table mode).
	Chunk uint64
	// Stream reports which mode the shard ran in.
	Stream bool
	// Shard is the shard index; [Lo, Hi) is the index range it covered.
	Shard, Lo, Hi int
	// Value is the recovered panic value; Stack the worker's stack at the
	// point of the panic.
	Value any
	Stack []byte
}

func (e *ShardPanicError) Error() string {
	if e.Stream {
		return fmt.Sprintf("shardrun: panic in chunk %d shard %d [%d,%d): %v", e.Chunk, e.Shard, e.Lo, e.Hi, e.Value)
	}
	return fmt.Sprintf("shardrun: panic in shard %d [%d,%d): %v", e.Shard, e.Lo, e.Hi, e.Value)
}

// callShard runs one shard closure with panic isolation: a panic becomes
// a typed *ShardPanicError instead of unwinding into the runner (and,
// for goroutine shards, killing the process). With o non-nil the shard's
// wall time and outcome are recorded; the clock is only read when
// instrumented, so the uninstrumented cost is one pointer check.
func callShard(o *Obs, chunk uint64, stream bool, w, lo, hi int, f func() error) (err error) {
	var start time.Time
	if o != nil {
		start = time.Now() //otfair:nondet-ok shard wall-time instrumentation; outputs are merged by index, not by time
	}
	defer func() {
		v := recover()
		if v != nil {
			err = &ShardPanicError{Chunk: chunk, Stream: stream, Shard: w, Lo: lo, Hi: hi, Value: v, Stack: debug.Stack()}
		}
		if o != nil {
			//otfair:nondet-ok shard wall-time instrumentation; outputs are merged by index, not by time
			o.shardDone(time.Since(start), v != nil)
		}
	}()
	return f()
}

// Isolated runs f under the same panic isolation the shard runners apply,
// for the engines' serial (workers == 1) paths that bypass the fan-out:
// a panic inside f returns as a *ShardPanicError for shard 0 instead of
// unwinding into the caller.
func Isolated(f func() error) error {
	return IsolatedObs(nil, f)
}

// IsolatedObs is Isolated with the shard's wall time and outcome recorded
// on o (nil o = plain Isolated).
func IsolatedObs(o *Obs, f func() error) error {
	return callShard(o, 0, false, 0, 0, 0, f)
}

// Table fans the index range [0, n) across contiguous shards. Shard w
// covers [w·n/W, (w+1)·n/W) and receives the child stream r.Split(w),
// where W = min(workers, n); when fewer than two shards remain after the
// clamp, the whole range runs as one shard on r.Split(0) in the calling
// goroutine. The shard closure owns all per-shard state (repairers,
// diagnostics slots); Table only orchestrates. On error the
// lowest-indexed shard's error is returned; a panicking shard yields a
// *ShardPanicError. A ctx already cancelled at entry returns ctx.Err()
// before any shard runs (prompt cancellation inside a running shard is
// the closure's job — the engines check ctx at span granularity).
func Table(ctx context.Context, r *rng.RNG, workers, n int, shard func(shard int, r *rng.RNG, lo, hi int) error) error {
	return TableObs(ctx, r, workers, n, nil, shard)
}

// TableObs is Table with per-shard wall timings and counts recorded on o
// (nil o = plain Table). Instrumentation never influences the sharding or
// the split streams, so the output is byte-identical either way.
func TableObs(ctx context.Context, r *rng.RNG, workers, n int, o *Obs, shard func(shard int, r *rng.RNG, lo, hi int) error) error {
	if r == nil {
		return errors.New("shardrun: nil rng")
	}
	if shard == nil {
		return errors.New("shardrun: nil shard func")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return callShard(o, 0, false, 0, 0, n, func() error { return shard(0, r.Split(0), 0, n) })
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = callShard(o, 0, false, w, lo, hi, func() error { return shard(w, r.Split(uint64(w)), lo, hi) })
		}(w, lo, hi)
	}
	wg.Wait()
	return firstErr(errs)
}

// Stream consumes records from next (terminated by io.EOF) in chunks of
// opts.ChunkSize and fans each chunk across contiguous shards: shard w of
// chunk c covers [w·n/W', (w+1)·n/W') of the chunk (W' = Workers clamped
// to the chunk length) and receives the child stream
// r.Split(c·Workers + w) — the unclamped worker count keeps the split
// formula independent of how full the final chunk is. After a chunk's
// shards finish, drain is invoked serially from the calling goroutine with
// the chunk's outputs in input order; the caller sinks records and merges
// per-shard state there (in shard-index order, so floating-point
// accumulations stay bit-stable). The in/out buffers are reused across
// chunks — at most one chunk is in memory — so drain must not retain the
// slice.
//
// A read error aborts immediately (records already read in the aborted
// chunk are dropped, never repaired); a shard error aborts before drain,
// so a chunk reaches the sink all-or-nothing. Cancelling ctx aborts with
// ctx.Err() at the next chunk boundary — before the chunk is read, and
// again before it is drained — so a cancelled stream's sink saw a
// byte-identical prefix (whole chunks) of the uncancelled run's output.
func Stream[T any](
	ctx context.Context,
	r *rng.RNG,
	opts Options,
	next func() (T, error),
	shard func(chunk uint64, shard int, r *rng.RNG, in, out []T, lo, hi int) error,
	drain func(out []T) error,
) error {
	if r == nil {
		return errors.New("shardrun: nil rng")
	}
	if next == nil {
		return errors.New("shardrun: nil next func")
	}
	if shard == nil {
		return errors.New("shardrun: nil shard func")
	}
	if drain == nil {
		return errors.New("shardrun: nil drain func")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opts, err := opts.WithDefaults()
	if err != nil {
		return err
	}
	in := make([]T, 0, opts.ChunkSize)
	out := make([]T, opts.ChunkSize)
	var chunkIdx uint64
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		in = in[:0]
		var streamErr error
		for len(in) < opts.ChunkSize {
			rec, err := next()
			if err == io.EOF {
				streamErr = io.EOF
				break
			}
			if err != nil {
				return err
			}
			in = append(in, rec)
		}
		if len(in) > 0 {
			if err := runChunk(opts.Obs, r, chunkIdx, opts.Workers, in, out, shard); err != nil {
				return err
			}
			// Cancelled while the shards ran: drop the completed chunk
			// rather than drain it — the contract is truncation at a chunk
			// boundary, and a caller that cancelled wants no more output.
			if err := ctx.Err(); err != nil {
				return err
			}
			opts.Obs.chunkDone(len(in))
			if err := drain(out[:len(in)]); err != nil {
				return err
			}
			chunkIdx++
		}
		if streamErr == io.EOF {
			return nil
		}
	}
}

// runChunk fans one chunk across shards with the per-(chunk, shard) split
// formula.
func runChunk[T any](o *Obs, r *rng.RNG, chunk uint64, workers int, in, out []T, shard func(chunk uint64, shard int, r *rng.RNG, in, out []T, lo, hi int) error) error {
	n := len(in)
	streamStride := uint64(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return callShard(o, chunk, true, 0, 0, n, func() error {
			return shard(chunk, 0, r.Split(chunk*streamStride), in, out, 0, n)
		})
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = callShard(o, chunk, true, w, lo, hi, func() error {
				return shard(chunk, w, r.Split(chunk*streamStride+uint64(w)), in, out, lo, hi)
			})
		}(w, lo, hi)
	}
	wg.Wait()
	return firstErr(errs)
}
