package shardrun

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"otfair/internal/rng"
)

// TestTablePanicIsolation pins panic-to-error conversion in both the
// goroutine fan-out and the single-shard fast path: the panic becomes a
// typed *ShardPanicError carrying the shard's coordinates, and the other
// shards' work is unaffected (no process death, no corrupted slots).
func TestTablePanicIsolation(t *testing.T) {
	done := make([]bool, 4)
	err := Table(context.Background(), rng.New(1), 4, 400, func(w int, r *rng.RNG, lo, hi int) error {
		if w == 2 {
			panic(fmt.Sprintf("worker %d died", w))
		}
		done[w] = true
		return nil
	})
	var pe *ShardPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ShardPanicError", err)
	}
	if pe.Shard != 2 || pe.Stream || pe.Lo != 200 || pe.Hi != 300 {
		t.Fatalf("panic coordinates %+v, want shard 2 [200,300) table mode", pe)
	}
	if pe.Value != "worker 2 died" {
		t.Fatalf("panic value %v not preserved", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "TestTablePanicIsolation") {
		t.Fatal("panic stack not captured")
	}
	for _, w := range []int{0, 1, 3} {
		if !done[w] {
			t.Fatalf("healthy shard %d did not finish", w)
		}
	}

	// Single-shard fast path (workers clamped to 1) runs in the calling
	// goroutine; the recover must cover it too.
	err = Table(context.Background(), rng.New(1), 1, 10, func(w int, r *rng.RNG, lo, hi int) error {
		panic("serial shard died")
	})
	if !errors.As(err, &pe) || pe.Shard != 0 || pe.Hi != 10 {
		t.Fatalf("serial panic: err = %v, want shard 0 [0,10)", err)
	}
}

// TestStreamPanicIsolation pins the chunk coordinates on the typed error
// and that no drain happens for the poisoned chunk.
func TestStreamPanicIsolation(t *testing.T) {
	var drained int
	err := Stream(context.Background(), rng.New(1), Options{Workers: 2, ChunkSize: 4}, sliceSource([]int{1, 2, 3, 4, 5, 6, 7, 8}),
		func(chunk uint64, w int, r *rng.RNG, in, out []int, lo, hi int) error {
			if chunk == 1 && w == 1 {
				panic("chunk 1 shard 1 died")
			}
			copy(out[lo:hi], in[lo:hi])
			return nil
		},
		func(out []int) error { drained += len(out); return nil })
	var pe *ShardPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ShardPanicError", err)
	}
	if !pe.Stream || pe.Chunk != 1 || pe.Shard != 1 {
		t.Fatalf("panic coordinates %+v, want stream chunk 1 shard 1", pe)
	}
	if drained != 4 {
		t.Fatalf("drained %d records, want only the healthy chunk (4)", drained)
	}
}

// TestTableCancelledBeforeStart returns ctx.Err() without running any
// shard.
func TestTableCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := Table(ctx, rng.New(1), 2, 10, func(w int, r *rng.RNG, lo, hi int) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("shard ran despite cancelled context")
	}
}

// TestStreamCancellationPrefix is the determinism-under-cancellation
// contract: cancelling mid-stream yields ctx.Err(), and everything the
// sink saw is a whole-chunk prefix, byte-identical to the uncancelled run
// (the per-(chunk, shard) RNG pinning survives truncation).
func TestStreamCancellationPrefix(t *testing.T) {
	xs := make([]int, 256)
	for i := range xs {
		xs[i] = i
	}
	run := func(cancelAfterChunks int) ([]int, error) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var out []int
		chunks := 0
		err := Stream(ctx, rng.New(3), Options{Workers: 3, ChunkSize: 16}, sliceSource(xs),
			func(chunk uint64, w int, r *rng.RNG, in, dst []int, lo, hi int) error {
				for i := lo; i < hi; i++ {
					dst[i] = in[i] + int(r.Uint64()%1000)
				}
				return nil
			},
			func(dst []int) error {
				out = append(out, dst...)
				chunks++
				if chunks == cancelAfterChunks {
					cancel()
				}
				return nil
			})
		return out, err
	}
	full, err := run(0)
	if err != nil || len(full) != len(xs) {
		t.Fatalf("uncancelled run: %d records, err %v", len(full), err)
	}
	for _, after := range []int{1, 3, 7} {
		got, err := run(after)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel after %d chunks: err = %v, want context.Canceled", after, err)
		}
		if len(got) != after*16 {
			t.Fatalf("cancel after %d chunks: sank %d records, want %d (whole chunks)", after, len(got), after*16)
		}
		for i := range got {
			if got[i] != full[i] {
				t.Fatalf("cancel after %d chunks: output %d diverged (%d vs %d) — RNG pinning broken", after, i, got[i], full[i])
			}
		}
	}
}

// TestStreamCancelRace drives cancellation concurrently with shard work
// under -race: no matter when the cancel lands, the runner exits with
// either a clean EOF or ctx.Err(), never a corrupted chunk.
func TestStreamCancelRace(t *testing.T) {
	xs := make([]int, 512)
	for i := range xs {
		xs[i] = i
	}
	for trial := 0; trial < 8; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			cancel()
		}()
		var out []int
		err := Stream(ctx, rng.New(7), Options{Workers: 4, ChunkSize: 32}, sliceSource(xs),
			func(chunk uint64, w int, r *rng.RNG, in, dst []int, lo, hi int) error {
				copy(dst[lo:hi], in[lo:hi])
				return nil
			},
			func(dst []int) error { out = append(out, dst...); return nil })
		wg.Wait()
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d: err = %v", trial, err)
		}
		if len(out)%32 != 0 && len(out) != len(xs) {
			t.Fatalf("trial %d: sank %d records, not a whole-chunk prefix", trial, len(out))
		}
		for i := range out {
			if out[i] != xs[i] {
				t.Fatalf("trial %d: output %d corrupted", trial, i)
			}
		}
	}
}
