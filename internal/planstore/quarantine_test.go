package planstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"otfair/internal/faultinject"
)

// rawDecoder stores bytes as-is; corruption tests rely on the
// fingerprint check, not the decoder.
func rawDecoder(raw []byte) (any, error) { return append([]byte(nil), raw...), nil }

// openRaw opens a fresh Artefacts over dir with an empty cache, so Gets
// are forced to the disk path.
func openRaw(t *testing.T, dir string, opts Options) *Artefacts {
	t.Helper()
	a, err := OpenArtefacts(dir, "plan", rawDecoder, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestGetQuarantinesCorruptArtefact pins the integrity-that-acts
// contract: a file whose bytes no longer match its fingerprint is
// retried once, then moved to quarantine/ with a reason file, surfaced
// as a typed *CorruptArtefactError, and reads as a miss afterwards.
func TestGetQuarantinesCorruptArtefact(t *testing.T) {
	dir := t.TempDir()
	a := openRaw(t, dir, Options{})
	id, _, err := a.PutBytes([]byte("payload-one"), []byte("payload-one"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the live file behind the store's back.
	if err := os.WriteFile(filepath.Join(dir, id+".json"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Fresh store: cold cache, so Get must take the disk path.
	b := openRaw(t, dir, Options{})
	_, err = b.Get(id)
	var cerr *CorruptArtefactError
	if !errors.As(err, &cerr) {
		t.Fatalf("Get on corrupt file returned %v, want *CorruptArtefactError", err)
	}
	if cerr.Kind != "plan" || cerr.ID != id || !cerr.Quarantined {
		t.Errorf("error coordinates wrong: %+v", cerr)
	}

	qjson := filepath.Join(b.QuarantineDir(), id+".json")
	got, rerr := os.ReadFile(qjson)
	if rerr != nil {
		t.Fatalf("quarantined bytes missing: %v", rerr)
	}
	if !bytes.Equal(got, []byte("garbage")) {
		t.Errorf("quarantine holds %q, want the corrupt bytes", got)
	}
	reason, rerr := os.ReadFile(filepath.Join(b.QuarantineDir(), id+".reason"))
	if rerr != nil {
		t.Fatalf("reason file missing: %v", rerr)
	}
	if !bytes.Contains(reason, []byte(id)) || !bytes.Contains(reason, []byte("fingerprint")) {
		t.Errorf("reason file does not explain the condemnation: %q", reason)
	}

	// The live name is gone: subsequent reads are a miss, not a repeat
	// server error.
	if _, err := b.Get(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("post-quarantine Get returned %v, want ErrNotFound", err)
	}
	st := b.Stats()
	if st.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", st.Quarantined)
	}
	if st.ReadRetries != 1 {
		t.Errorf("ReadRetries = %d, want 1 (one retry before condemning)", st.ReadRetries)
	}
}

// TestGetQuarantinesDecodeFailure: a file whose bytes match the
// fingerprint but fail the decoder is condemned the same way.
func TestGetQuarantinesDecodeFailure(t *testing.T) {
	dir := t.TempDir()
	decodeErr := errors.New("structurally invalid")
	open := func() *Artefacts {
		a, err := OpenArtefacts(dir, "plan", func(raw []byte) (any, error) {
			if bytes.Contains(raw, []byte("poison")) {
				return nil, decodeErr
			}
			return raw, nil
		}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a := open()
	// PutBytes trusts the caller's decoded value, so the poison lands on
	// disk with a valid fingerprint.
	id, _, err := a.PutBytes([]byte("poison-payload"), []byte("poison-payload"))
	if err != nil {
		t.Fatal(err)
	}
	b := open()
	_, err = b.Get(id)
	var cerr *CorruptArtefactError
	if !errors.As(err, &cerr) {
		t.Fatalf("Get returned %v, want *CorruptArtefactError", err)
	}
	if !errors.Is(err, decodeErr) {
		t.Errorf("decode cause lost from chain: %v", err)
	}
	if _, err := b.Get(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("post-quarantine Get returned %v, want ErrNotFound", err)
	}
}

// TestGetRetryAbsorbsTransientReadFault: a read fault that fires once is
// retried and the caller never sees it — the retry exists precisely so
// one glitch does not condemn a healthy artefact.
func TestGetRetryAbsorbsTransientReadFault(t *testing.T) {
	dir := t.TempDir()
	a := openRaw(t, dir, Options{})
	id, _, err := a.PutBytes([]byte("healthy"), []byte("healthy"))
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(7).Set(faultinject.StoreRead, faultinject.Rule{Every: 1, Limit: 1})
	b := openRaw(t, dir, Options{Fault: inj})
	v, err := b.Get(id)
	if err != nil {
		t.Fatalf("Get with transient fault: %v", err)
	}
	if !bytes.Equal(v.([]byte), []byte("healthy")) {
		t.Errorf("retry served wrong bytes: %q", v)
	}
	st := b.Stats()
	if st.ReadRetries != 1 || st.Quarantined != 0 {
		t.Errorf("ReadRetries = %d, Quarantined = %d; want 1, 0", st.ReadRetries, st.Quarantined)
	}
	// The artefact stayed live.
	if _, err := os.Stat(filepath.Join(dir, id+".json")); err != nil {
		t.Errorf("healthy artefact was moved: %v", err)
	}
}

// TestGetMissIsNotRetried: ErrNotFound is a clean answer, not a fault —
// no retry, no quarantine, one Misses increment.
func TestGetMissIsNotRetried(t *testing.T) {
	a := openRaw(t, t.TempDir(), Options{})
	if _, err := a.Get("0123456789abcdef0123456789abcdef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on absent id: %v", err)
	}
	st := a.Stats()
	if st.Misses != 1 || st.ReadRetries != 0 {
		t.Errorf("Misses = %d, ReadRetries = %d; want 1, 0", st.Misses, st.ReadRetries)
	}
}

// TestTornWriteFaultDrivesQuarantine: the store.torn-write point commits
// truncated bytes under the live name (bypassing the atomic-rename
// protection exactly as a kernel crash would), and the next cold read
// condemns and quarantines them — the end-to-end path the soak drives.
func TestTornWriteFaultDrivesQuarantine(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(11).Set(faultinject.StoreTornWrite, faultinject.Rule{Every: 1, Limit: 1})
	a := openRaw(t, dir, Options{Fault: inj})
	payload := []byte("this payload is long enough to be torn in half")
	id, created, err := a.PutBytes(payload, payload)
	if err != nil || !created {
		t.Fatalf("PutBytes = (%v, %v)", created, err)
	}
	// The torn artefact must not be served from memory: the injector
	// skipped the LRU insert, so this Get decodes the damage from disk.
	_, err = a.Get(id)
	var cerr *CorruptArtefactError
	if !errors.As(err, &cerr) {
		t.Fatalf("Get after torn write returned %v, want *CorruptArtefactError", err)
	}
	if _, serr := os.Stat(filepath.Join(a.QuarantineDir(), id+".json")); serr != nil {
		t.Errorf("torn bytes not quarantined: %v", serr)
	}
	// Re-storing the true bytes resurrects the fingerprint (the rule that
	// makes quarantine safe under content addressing).
	if _, _, err := a.PutBytes(payload, payload); err != nil {
		t.Fatal(err)
	}
	if v, err := a.Get(id); err != nil || !bytes.Equal(v.([]byte), payload) {
		t.Errorf("re-Put did not restore the artefact: %v %v", v, err)
	}
}

// TestPruneSweepsQuarantine: quarantined evidence ages out under the
// same TTL as live artefacts — the sweep the old Prune (which skipped
// all directories) never did.
func TestPruneSweepsQuarantine(t *testing.T) {
	dir := t.TempDir()
	a := openRaw(t, dir, Options{})
	id, _, err := a.PutBytes([]byte("doomed"), []byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, id+".json"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	b := openRaw(t, dir, Options{})
	if _, err := b.Get(id); err == nil {
		t.Fatal("corrupt Get unexpectedly succeeded")
	}

	qjson := filepath.Join(b.QuarantineDir(), id+".json")
	qreason := filepath.Join(b.QuarantineDir(), id+".reason")

	// Fresh evidence survives a prune.
	if n, err := b.Prune(time.Hour); err != nil || n != 0 {
		t.Fatalf("Prune = (%d, %v), want (0, nil)", n, err)
	}
	if _, err := os.Stat(qjson); err != nil {
		t.Fatalf("fresh quarantine evidence swept: %v", err)
	}

	// Backdate it past the TTL: the sweep collects both files and counts
	// the artefact.
	old := time.Now().Add(-2 * time.Hour)
	for _, p := range []string{qjson, qreason} {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	n, err := b.Prune(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("Prune removed %d, want 1 (the quarantined artefact)", n)
	}
	for _, p := range []string{qjson, qreason} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s survived the sweep: %v", filepath.Base(p), err)
		}
	}
}

// TestWriteFaultSurfacesAsError: the store.write point fails PutBytes
// loudly and leaves no live file behind.
func TestWriteFaultSurfacesAsError(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(3).Set(faultinject.StoreWrite, faultinject.Rule{Every: 1, Limit: 1})
	a := openRaw(t, dir, Options{Fault: inj})
	payload := []byte("never lands")
	_, _, err := a.PutBytes(payload, payload)
	var ferr *faultinject.Error
	if !errors.As(err, &ferr) || ferr.Point != faultinject.StoreWrite {
		t.Fatalf("PutBytes = %v, want injected store.write fault", err)
	}
	// Second attempt (fault exhausted) succeeds.
	if _, created, err := a.PutBytes(payload, payload); err != nil || !created {
		t.Fatalf("retry PutBytes = (%v, %v), want created", created, err)
	}
}
