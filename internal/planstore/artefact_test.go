package planstore

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestDiscardTempSurfacesRemovalFailure pins the error-chain contract of
// the write path: when cleaning up an abandoned temp spool itself fails
// (full or read-only disk), the returned error must carry BOTH the write
// failure and the removal failure, so the operator can diagnose the disk
// instead of chasing only the first symptom.
func TestDiscardTempSurfacesRemovalFailure(t *testing.T) {
	a, err := OpenArtefacts(t.TempDir(), "plan", func(raw []byte) (any, error) { return raw, nil }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	writeErr := fmt.Errorf("planstore: writing abc: %w", errors.New("disk full"))
	rmErr := errors.New("read-only file system")
	old := removeFile
	removeFile = func(string) error { return rmErr }
	defer func() { removeFile = old }()

	got := a.discardTemp(writeErr, "/store/abc.tmp-1")
	if !errors.Is(got, writeErr) {
		t.Errorf("write error lost from chain: %v", got)
	}
	if !errors.Is(got, rmErr) {
		t.Errorf("removal error lost from chain: %v", got)
	}
	if !strings.Contains(got.Error(), "removing temp abc.tmp-1") {
		t.Errorf("removal failure not named: %v", got)
	}

	// A successful removal (or an already-gone file) adds nothing.
	removeFile = os.Remove
	if got := a.discardTemp(writeErr, "/nonexistent/abc.tmp-1"); !errors.Is(got, writeErr) || errors.Is(got, rmErr) {
		t.Errorf("clean discard mangled the error: %v", got)
	}
}

// TestDiscardTempIgnoresMissingFile: a temp file that vanished (e.g. a
// concurrent Prune past its TTL) is not an additional failure.
func TestDiscardTempIgnoresMissingFile(t *testing.T) {
	a, err := OpenArtefacts(t.TempDir(), "plan", func(raw []byte) (any, error) { return raw, nil }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	writeErr := errors.New("boom")
	got := a.discardTemp(writeErr, a.dir+"/gone.tmp-1")
	if got != writeErr {
		t.Errorf("missing temp file polluted the chain: %v", got)
	}
}
