// Refs: the one mutable namespace in an otherwise content-addressed store.
// Every artefact is immutable — a fingerprint always names the same bytes —
// so "replace the plan" cannot mean rewriting a file; it means repointing a
// name. A ref maps a lineage fingerprint (the artefact a deployment was
// originally bound to) to the currently active fingerprint for that
// lineage. The drift-recalibration loop swaps a refitted plan in by CAS-ing
// the lineage's ref from the incumbent to the candidate, and rolls back by
// simply not doing so: both "states" are plain, inspectable files, and the
// artefacts themselves are never touched, which is what makes swap and
// rollback trivially verifiable.
//
// Refs never sit on the serve path: repair requests pin explicit
// fingerprints and are served byte-identically whether or not any ref
// moves. The namespace is bookkeeping for the loop, the /v1/refs endpoint,
// and any client that wants "the current plan for this lineage".
package planstore

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// RefsDirName is the subdirectory (of a store root) holding refs.
const RefsDirName = "refs"

// ErrRefConflict reports a CompareAndSwap whose expected incumbent no
// longer matches — another loop run moved the ref first. The swap did not
// happen.
var ErrRefConflict = errors.New("planstore: ref changed concurrently")

// Refs is a directory of lineage → active fingerprint mappings. Both sides
// of every mapping are validated fingerprints, so a ref can never point
// outside the store's ID space. All methods are safe for concurrent use
// within one process; cross-process writers are serialized by the atomic
// rename, with last-writer-wins semantics.
type Refs struct {
	dir    string
	logger *slog.Logger
	mu     sync.Mutex
}

// OpenRefs creates (if needed) and opens the refs namespace under a store
// root. logger may be nil.
func OpenRefs(root string, logger *slog.Logger) (*Refs, error) {
	if root == "" {
		return nil, errors.New("planstore: empty refs root")
	}
	dir := filepath.Join(root, RefsDirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("planstore: creating %s: %w", dir, err)
	}
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &Refs{dir: dir, logger: logger.With(slog.String("component", "planstore"))}, nil
}

func (r *Refs) path(lineage string) string {
	return filepath.Join(r.dir, lineage+".ref")
}

// Get returns the active fingerprint for a lineage, or ErrNotFound when no
// ref has ever been set for it.
func (r *Refs) Get(lineage string) (string, error) {
	if !validID(lineage) {
		return "", fmt.Errorf("%w: %q", ErrBadID, lineage)
	}
	raw, err := os.ReadFile(r.path(lineage))
	if errors.Is(err, os.ErrNotExist) {
		return "", fmt.Errorf("%w: ref %s", ErrNotFound, lineage)
	}
	if err != nil {
		return "", fmt.Errorf("planstore: reading ref %s: %w", lineage, err)
	}
	id := strings.TrimSpace(string(raw))
	if !validID(id) {
		return "", fmt.Errorf("planstore: ref %s holds malformed target %q", lineage, id)
	}
	return id, nil
}

// Resolve returns the active fingerprint for a lineage, or the lineage
// itself when no ref exists — the identity mapping every artefact starts
// with. Malformed ref contents also resolve to the lineage: a damaged ref
// must degrade to the original binding, never to nothing.
func (r *Refs) Resolve(lineage string) string {
	id, err := r.Get(lineage)
	if err != nil {
		return lineage
	}
	return id
}

// CompareAndSwap repoints a lineage from the expected incumbent to the new
// active fingerprint. expected is what Resolve currently answers — the
// lineage itself when no ref exists yet. On mismatch it returns
// ErrRefConflict and the ref is untouched. The write is temp-file +
// rename, so a crash can never leave a torn ref.
func (r *Refs) CompareAndSwap(lineage, expected, active string) error {
	if !validID(lineage) {
		return fmt.Errorf("%w: %q", ErrBadID, lineage)
	}
	if !validID(active) {
		return fmt.Errorf("%w: %q", ErrBadID, active)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur := r.Resolve(lineage); cur != expected {
		return fmt.Errorf("%w: lineage %s is at %s, expected %s", ErrRefConflict, lineage, cur, expected)
	}
	tmp, err := os.CreateTemp(r.dir, lineage+".tmp-*")
	if err != nil {
		return fmt.Errorf("planstore: ref temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.WriteString(active + "\n"); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("planstore: writing ref %s: %w", lineage, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("planstore: syncing ref %s: %w", lineage, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("planstore: closing ref %s: %w", lineage, err)
	}
	if err := os.Rename(tmpName, r.path(lineage)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("planstore: committing ref %s: %w", lineage, err)
	}
	r.logger.Info("ref swapped", slog.String("lineage", lineage),
		slog.String("from", expected), slog.String("to", active))
	return nil
}

// Delete removes a lineage's ref, restoring the identity mapping. Deleting
// an absent ref is a no-op.
func (r *Refs) Delete(lineage string) error {
	if !validID(lineage) {
		return fmt.Errorf("%w: %q", ErrBadID, lineage)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := os.Remove(r.path(lineage)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("planstore: deleting ref %s: %w", lineage, err)
	}
	return nil
}

// List returns every lineage → active mapping, for the /v1/refs endpoint.
func (r *Refs) List() (map[string]string, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("planstore: listing %s: %w", r.dir, err)
	}
	out := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		lineage, ok := strings.CutSuffix(e.Name(), ".ref")
		if !ok || !validID(lineage) {
			continue
		}
		id, err := r.Get(lineage)
		if err != nil {
			continue
		}
		out[lineage] = id
	}
	return out, nil
}
