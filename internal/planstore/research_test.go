package planstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"otfair/internal/dataset"
)

func researchTable(t *testing.T, n, dim int, base float64) *dataset.Table {
	t.Helper()
	tbl := dataset.MustTable(dim, nil)
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		for k := range x {
			x[k] = base + float64(i) + float64(k)*0.25
		}
		if err := tbl.Append(dataset.Record{U: i % 2, S: (i / 2) % 2, X: x}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	return tbl
}

func TestResearchStoreRoundTrip(t *testing.T) {
	rs, err := OpenResearch(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	tbl := researchTable(t, 8, 2, 0)
	id, created, err := rs.Put(tbl)
	if err != nil || !created {
		t.Fatalf("put: id=%s created=%v err=%v", id, created, err)
	}
	if !rs.Has(id) {
		t.Fatalf("Has(%s) = false after put", id)
	}
	got, err := rs.Get(id)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if got.Len() != 8 || got.Dim() != 2 {
		t.Fatalf("round-tripped table %dx%d, want 8x2", got.Len(), got.Dim())
	}
	// Content addressing: the same records stage to the same id without a
	// second artefact.
	id2, created2, err := rs.Put(researchTable(t, 8, 2, 0))
	if err != nil {
		t.Fatalf("re-put: %v", err)
	}
	if created2 || id2 != id {
		t.Fatalf("re-put: id=%s created=%v, want existing %s", id2, created2, id)
	}
	ids, err := rs.IDs()
	if err != nil {
		t.Fatalf("ids: %v", err)
	}
	if len(ids) != 1 {
		t.Fatalf("store holds %d artefacts, want 1", len(ids))
	}
}

func TestResearchStoreRejectsEmptySet(t *testing.T) {
	rs, err := OpenResearch(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, _, err := rs.Put(nil); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, _, err := rs.Put(dataset.MustTable(2, nil)); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestResearchStoreLatestFollowsMTime(t *testing.T) {
	dir := t.TempDir()
	rs, err := OpenResearch(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, _, err := rs.Latest(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store Latest err = %v, want ErrNotFound", err)
	}
	idA, _, err := rs.Put(researchTable(t, 6, 2, 0))
	if err != nil {
		t.Fatalf("put A: %v", err)
	}
	idB, _, err := rs.Put(researchTable(t, 6, 2, 100))
	if err != nil {
		t.Fatalf("put B: %v", err)
	}
	// Pin mtimes so the ordering is explicit, not a race with the
	// filesystem clock: A is newer than B.
	now := time.Now()
	pin := func(id string, mt time.Time) {
		t.Helper()
		if err := os.Chtimes(filepath.Join(rs.Dir(), id+".json"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	pin(idA, now)
	pin(idB, now.Add(-time.Hour))
	latest, tbl, err := rs.Latest()
	if err != nil {
		t.Fatalf("latest: %v", err)
	}
	if latest != idA {
		t.Fatalf("latest = %s, want newer %s", latest, idA)
	}
	if tbl.At(0).X[0] != 0 {
		t.Fatalf("latest table starts at %v, want set A's 0", tbl.At(0).X[0])
	}
	// Staging a replacement set flips Latest to it.
	pin(idB, now.Add(time.Hour))
	latest, tbl, err = rs.Latest()
	if err != nil {
		t.Fatalf("latest after re-stage: %v", err)
	}
	if latest != idB {
		t.Fatalf("latest = %s, want re-staged %s", latest, idB)
	}
	if tbl.At(0).X[0] != 100 {
		t.Fatalf("latest table starts at %v, want set B's 100", tbl.At(0).X[0])
	}
	// Equal mtimes: the lexicographically greater id wins, so the answer
	// is stable across replicas whose clocks truncate to the same tick.
	pin(idA, now)
	pin(idB, now)
	want := idA
	if idB > idA {
		want = idB
	}
	latest, _, err = rs.Latest()
	if err != nil {
		t.Fatalf("latest with tied mtimes: %v", err)
	}
	if latest != want {
		t.Fatalf("tied mtimes: latest = %s, want lexicographically greater %s", latest, want)
	}
}
