// Package planstore is the durable design tier of the repair service: a
// disk-backed registry of serialized repair plans keyed by their 128-bit
// content fingerprint (core.Plan.Fingerprint), with an in-memory LRU of
// deserialized plans on top.
//
// The paper's whole deployment story is the design/apply split — Algorithm 1
// runs once on a small research set, Algorithm 2 then repairs unbounded
// archival torrents, possibly in other processes and long after design
// time. The store is the boundary object: cmd/repro and repair fleets warm
// start across process restarts by content hash, the serving layer
// (internal/repairsvc) resolves request plan IDs through it, and because
// the key is a content hash the store deduplicates structurally — designing
// the same plan twice, or uploading a plan a peer already designed, is a
// no-op write to the same file.
//
// Layout: one `<fingerprint>.json` per plan under the store directory, each
// exactly the canonical WriteJSON bytes. Writes go through a same-directory
// temp file and rename, so a crash mid-write can never leave a live
// truncated entry; Load re-validates every component through core.ReadPlan,
// so a corrupted file fails loudly instead of repairing data with garbage.
package planstore

import (
	"bytes"
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"otfair/internal/core"
)

// ErrNotFound reports a fingerprint absent from both memory and disk.
var ErrNotFound = errors.New("planstore: plan not found")

// ErrBadID reports a malformed fingerprint (not 32 lowercase hex chars) —
// a caller error, distinct from a store miss, so HTTP layers can map it to
// a 4xx instead of a server error.
var ErrBadID = errors.New("planstore: malformed plan id")

// Options configures a store.
type Options struct {
	// CacheSize bounds the in-memory LRU of deserialized plans
	// (default 64; minimum 1). Disk retention is unbounded — plans are
	// a few hundred kilobytes at paper scale and the store is the
	// durability tier.
	CacheSize int
}

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 64
	}
	return o
}

// Stats counts store traffic, DesignCacheStats-style: cumulative and
// monotone, for diagnostics and capacity planning.
type Stats struct {
	// MemHits are Gets served from the in-memory LRU.
	MemHits uint64
	// DiskHits are Gets that missed memory but loaded from disk.
	DiskHits uint64
	// Misses are Gets found nowhere.
	Misses uint64
	// Puts counts stores of new content; DupPuts counts content-identical
	// re-stores (deduplicated by fingerprint).
	Puts, DupPuts uint64
	// Evictions counts LRU drops (the disk copy always remains).
	Evictions uint64
}

// Store is a disk-backed plan registry with an in-memory LRU. All methods
// are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu    sync.Mutex
	cache map[string]*list.Element // fingerprint -> lru element
	lru   *list.List               // front = most recent; values are *cacheEntry
	stats Stats
}

type cacheEntry struct {
	id   string
	plan *core.Plan
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("planstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("planstore: creating %s: %w", dir, err)
	}
	return &Store{
		dir:   dir,
		opts:  opts.withDefaults(),
		cache: make(map[string]*list.Element),
		lru:   list.New(),
	}, nil
}

// Dir reports the store's root directory.
func (st *Store) Dir() string { return st.dir }

// validID reports whether id is a well-formed fingerprint — 32 lowercase
// hex characters. Everything else is rejected before touching the
// filesystem, which is also what keeps request-supplied IDs from escaping
// the store directory.
func validID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (st *Store) path(id string) string {
	return filepath.Join(st.dir, id+".json")
}

// Put persists a plan, returning its content fingerprint and whether this
// call created the entry. Storing content the store already holds is a
// cheap no-op (created == false). The fingerprint is computed from the one
// serialization Put performs anyway — identical to plan.Fingerprint().
func (st *Store) Put(plan *core.Plan) (id string, created bool, err error) {
	if plan == nil {
		return "", false, errors.New("planstore: nil plan")
	}
	raw, err := plan.MarshalCanonical()
	if err != nil {
		return "", false, err
	}
	id = core.FingerprintBytes(raw)
	path := st.path(id)
	if _, err := os.Stat(path); err == nil {
		// Content-addressed: an existing file with this name holds these
		// bytes already (or a corruption Load will catch loudly).
		st.mu.Lock()
		st.stats.DupPuts++
		st.touch(id, plan)
		st.mu.Unlock()
		return id, false, nil
	}
	// Same-directory temp file + rename: the live name either does not
	// exist or holds the complete bytes, never a torn write.
	tmp, err := os.CreateTemp(st.dir, id+".tmp-*")
	if err != nil {
		return "", false, fmt.Errorf("planstore: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", false, fmt.Errorf("planstore: writing %s: %w", id, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", false, fmt.Errorf("planstore: syncing %s: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", false, fmt.Errorf("planstore: closing %s: %w", id, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return "", false, fmt.Errorf("planstore: committing %s: %w", id, err)
	}
	st.mu.Lock()
	st.stats.Puts++
	st.touch(id, plan)
	st.mu.Unlock()
	return id, true, nil
}

// Get returns the plan with the given fingerprint, from memory when hot,
// from disk otherwise. The returned plan is shared and must be treated
// read-only (plans are immutable everywhere in this repository).
func (st *Store) Get(id string) (*core.Plan, error) {
	if !validID(id) {
		return nil, fmt.Errorf("%w: %q", ErrBadID, id)
	}
	st.mu.Lock()
	if el, ok := st.cache[id]; ok {
		st.lru.MoveToFront(el)
		st.stats.MemHits++
		plan := el.Value.(*cacheEntry).plan
		st.mu.Unlock()
		return plan, nil
	}
	st.mu.Unlock()

	raw, err := os.ReadFile(st.path(id))
	if errors.Is(err, os.ErrNotExist) {
		st.mu.Lock()
		st.stats.Misses++
		st.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err != nil {
		return nil, fmt.Errorf("planstore: opening %s: %w", id, err)
	}
	// Enforce content addressing on the read path too: ReadPlan validates
	// structure, not identity, so a file renamed or restored under the
	// wrong name would otherwise serve the wrong transport maps under this
	// fingerprint.
	if got := core.FingerprintBytes(raw); got != id {
		return nil, fmt.Errorf("planstore: plan %s: content fingerprint is %s (file corrupted or misnamed)", id, got)
	}
	plan, err := core.ReadPlan(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("planstore: plan %s: %w", id, err)
	}
	st.mu.Lock()
	st.stats.DiskHits++
	st.touch(id, plan)
	st.mu.Unlock()
	return plan, nil
}

// Has reports whether the fingerprint exists in memory or on disk, without
// deserializing.
func (st *Store) Has(id string) bool {
	if !validID(id) {
		return false
	}
	st.mu.Lock()
	_, hot := st.cache[id]
	st.mu.Unlock()
	if hot {
		return true
	}
	_, err := os.Stat(st.path(id))
	return err == nil
}

// Delete removes a plan from memory and disk. Deleting an absent plan is a
// no-op.
func (st *Store) Delete(id string) error {
	if !validID(id) {
		return fmt.Errorf("%w: %q", ErrBadID, id)
	}
	st.mu.Lock()
	if el, ok := st.cache[id]; ok {
		st.lru.Remove(el)
		delete(st.cache, id)
	}
	st.mu.Unlock()
	if err := os.Remove(st.path(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("planstore: deleting %s: %w", id, err)
	}
	return nil
}

// IDs lists every fingerprint persisted on disk, in directory order.
// Temp files from in-flight or crashed writes are excluded.
func (st *Store) IDs() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("planstore: listing %s: %w", st.dir, err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		id, ok := strings.CutSuffix(name, ".json")
		if !ok || !validID(id) {
			continue
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Stats returns a snapshot of the cumulative counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// touch inserts or refreshes an LRU entry; caller holds st.mu.
func (st *Store) touch(id string, plan *core.Plan) {
	if el, ok := st.cache[id]; ok {
		st.lru.MoveToFront(el)
		el.Value.(*cacheEntry).plan = plan
		return
	}
	st.cache[id] = st.lru.PushFront(&cacheEntry{id: id, plan: plan})
	for st.lru.Len() > st.opts.CacheSize {
		back := st.lru.Back()
		st.lru.Remove(back)
		delete(st.cache, back.Value.(*cacheEntry).id)
		st.stats.Evictions++
	}
}
