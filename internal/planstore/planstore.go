// Package planstore is the durable artefact tier of the repair service: a
// disk-backed, content-addressed registry of serialized deployment
// artefacts — repair plans, blind calibrations, design links — keyed by
// their 128-bit content fingerprint (core.FingerprintBytes), with an
// in-memory LRU of decoded values on top.
//
// The paper's whole deployment story is the design/apply split — Algorithm 1
// runs once on a small research set, Algorithm 2 then repairs unbounded
// archival torrents, possibly in other processes and long after design
// time. The store is the boundary object: cmd/repro and repair fleets warm
// start across process restarts by content hash, the serving layer
// (internal/repairsvc) resolves request artefact IDs through it, and because
// the key is a content hash the store deduplicates structurally — designing
// the same plan twice, or uploading an artefact a peer already designed, is
// a no-op write to the same file.
//
// Layout: one `<fingerprint>.json` per artefact under the namespace
// directory, each exactly the canonical serialized bytes; plans live at the
// store root (Store), calibrations under `calibrations/`
// (CalibrationStore), design warm-start links under `designs/`
// (DesignIndex). Writes go through a same-directory temp file and rename,
// so a crash mid-write can never leave a live truncated entry; every load
// re-validates through the artefact's full deserializer, so a corrupted
// file fails loudly instead of repairing data with garbage — loudly and
// terminally: a file that fails validation twice is moved to
// `quarantine/<id>.json` with a `<id>.reason` note and surfaces as a
// typed *CorruptArtefactError until the true bytes are re-stored.
package planstore

import (
	"bytes"
	"errors"
	"log/slog"
	"time"

	"otfair/internal/core"
	"otfair/internal/faultinject"
	"otfair/internal/obs"
)

// ErrNotFound reports a fingerprint absent from both memory and disk.
var ErrNotFound = errors.New("planstore: artefact not found")

// ErrBadID reports a malformed fingerprint (not 32 lowercase hex chars) —
// a caller error, distinct from a store miss, so HTTP layers can map it to
// a 4xx instead of a server error.
var ErrBadID = errors.New("planstore: malformed artefact id")

// Options configures a store.
type Options struct {
	// CacheSize bounds the in-memory LRU of decoded artefacts
	// (default 64; minimum 1). Disk retention is unbounded unless Prune is
	// called — artefacts are a few hundred kilobytes at paper scale and
	// the store is the durability tier.
	CacheSize int
	// Fault is the fault-injection harness (nil in production): reads
	// consult store.read, writes consult store.write and store.torn-write,
	// so the soak can exercise the retry and quarantine paths
	// deterministically.
	Fault *faultinject.Injector
	// Logger receives store lifecycle events (nil = discard): artefact
	// quarantines at Warn — an operator-actionable corruption — and Prune's
	// quarantine-evidence sweeps at Info, the same level convention the
	// drift loop's transition log uses.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 64
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	return o
}

// Stats counts store traffic, DesignCacheStats-style: cumulative and
// monotone, for diagnostics and capacity planning.
type Stats struct {
	// MemHits are Gets served from the in-memory LRU.
	MemHits uint64
	// DiskHits are Gets that missed memory but loaded from disk.
	DiskHits uint64
	// Misses are Gets found nowhere.
	Misses uint64
	// Puts counts stores of new content; DupPuts counts content-identical
	// re-stores (deduplicated by fingerprint).
	Puts, DupPuts uint64
	// Evictions counts LRU drops (the disk copy always remains).
	Evictions uint64
	// ReadRetries counts disk loads that failed once and were retried;
	// Quarantined counts artefacts moved to quarantine/ after the retry
	// also failed. Both feed the serving layer's resilience metrics.
	ReadRetries, Quarantined uint64
}

// fingerprint is the single hash-to-ID encoding every namespace keys by,
// shared with core.Plan.Fingerprint so plan IDs agree across layers.
func fingerprint(raw []byte) string { return core.FingerprintBytes(raw) }

// Store is the plan namespace: a disk-backed registry of repair plans at
// the store root. All methods are safe for concurrent use.
type Store struct {
	a *Artefacts
}

// Open creates (if needed) and opens a plan store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	a, err := OpenArtefacts(dir, "plan", func(raw []byte) (any, error) {
		return core.ReadPlan(bytes.NewReader(raw))
	}, opts)
	if err != nil {
		return nil, err
	}
	return &Store{a: a}, nil
}

// Dir reports the store's root directory.
func (st *Store) Dir() string { return st.a.Dir() }

// CacheCap reports the in-memory LRU capacity.
func (st *Store) CacheCap() int { return st.a.CacheCap() }

// Put persists a plan, returning its content fingerprint and whether this
// call created the entry. Storing content the store already holds is a
// cheap no-op (created == false). The fingerprint is computed from the one
// serialization Put performs anyway — identical to plan.Fingerprint().
func (st *Store) Put(plan *core.Plan) (id string, created bool, err error) {
	if plan == nil {
		return "", false, errors.New("planstore: nil plan")
	}
	raw, err := plan.MarshalCanonical()
	if err != nil {
		return "", false, err
	}
	return st.a.PutBytes(raw, plan)
}

// Get returns the plan with the given fingerprint, from memory when hot,
// from disk otherwise. The returned plan is shared and must be treated
// read-only (plans are immutable everywhere in this repository).
func (st *Store) Get(id string) (*core.Plan, error) {
	v, err := st.a.Get(id)
	if err != nil {
		return nil, err
	}
	return v.(*core.Plan), nil
}

// Has reports whether the fingerprint exists in memory or on disk, without
// deserializing.
func (st *Store) Has(id string) bool { return st.a.Has(id) }

// Delete removes a plan from memory and disk. Deleting an absent plan is a
// no-op.
func (st *Store) Delete(id string) error { return st.a.Delete(id) }

// IDs lists every plan fingerprint persisted on disk, in directory order.
// Temp files from in-flight or crashed writes are excluded.
func (st *Store) IDs() ([]string, error) { return st.a.IDs() }

// Prune removes every plan older than maxAge from disk and memory,
// together with abandoned temp files and aged-out quarantine/ evidence;
// see Artefacts.Prune for why content addressing makes TTL retention
// safe. It returns the number of plans removed.
func (st *Store) Prune(maxAge time.Duration) (int, error) { return st.a.Prune(maxAge) }

// QuarantineDir reports where corrupt plans are moved; see
// Artefacts.QuarantineDir.
func (st *Store) QuarantineDir() string { return st.a.QuarantineDir() }

// Stats returns a snapshot of the cumulative counters.
func (st *Store) Stats() Stats { return st.a.Stats() }

// SetReadLatency binds the histogram observing disk-read latencies; see
// Artefacts.SetReadLatency.
func (st *Store) SetReadLatency(h *obs.Histogram) { st.a.SetReadLatency(h) }

// NewestMTime reports the youngest plan's file modification time; see
// Artefacts.NewestMTime.
func (st *Store) NewestMTime() (time.Time, error) { return st.a.NewestMTime() }
