package planstore

import (
	"bytes"
	"errors"
	"path/filepath"
	"time"

	"otfair/internal/dataset"
	"otfair/internal/obs"
)

// researchNamespace is the subdirectory of a store root that holds staged
// research sets — candidate inputs for the drift loop's refits, delivered
// through POST /v1/research — keeping them out of the plan listing while
// every tier shares one -store directory.
const researchNamespace = "research"

// ResearchStore is the staged-research namespace of an artefact store:
// research tables (dataset.Table) persisted as canonical CSV keyed by
// content fingerprint, under `research/` of the store root. Staging is
// content-addressed like every other artefact tier, so re-delivering the
// same records is an idempotent no-op and a torn upload can never be
// mistaken for a research set (the fingerprint check quarantines it).
// All methods are safe for concurrent use.
type ResearchStore struct {
	a *Artefacts
}

// OpenResearch creates (if needed) and opens the research namespace under
// a store root — typically the same directory the plan Store is rooted
// at, so one -store flag provisions every tier.
func OpenResearch(root string, opts Options) (*ResearchStore, error) {
	a, err := OpenArtefacts(filepath.Join(root, researchNamespace), "research set", func(raw []byte) (any, error) {
		return dataset.ReadCSV(bytes.NewReader(raw))
	}, opts)
	if err != nil {
		return nil, err
	}
	return &ResearchStore{a: a}, nil
}

// Dir reports the namespace directory.
func (rs *ResearchStore) Dir() string { return rs.a.Dir() }

// Put persists a research set as canonical CSV, returning its content
// fingerprint and whether this call created the entry.
func (rs *ResearchStore) Put(tbl *dataset.Table) (id string, created bool, err error) {
	if tbl == nil || tbl.Len() == 0 {
		return "", false, errors.New("planstore: empty research set")
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		return "", false, err
	}
	return rs.a.PutBytes(buf.Bytes(), tbl)
}

// Get returns the research set with the given fingerprint; the returned
// table is shared and must be treated read-only.
func (rs *ResearchStore) Get(id string) (*dataset.Table, error) {
	v, err := rs.a.Get(id)
	if err != nil {
		return nil, err
	}
	return v.(*dataset.Table), nil
}

// Latest returns the most recently staged research set (newest file
// modification time, id tie-break) or ErrNotFound when nothing has been
// staged.
func (rs *ResearchStore) Latest() (string, *dataset.Table, error) {
	id, err := rs.a.LatestID()
	if err != nil {
		return "", nil, err
	}
	tbl, err := rs.Get(id)
	if err != nil {
		return "", nil, err
	}
	return id, tbl, nil
}

// Has reports whether the fingerprint exists in memory or on disk.
func (rs *ResearchStore) Has(id string) bool { return rs.a.Has(id) }

// Delete removes a research set from memory and disk.
func (rs *ResearchStore) Delete(id string) error { return rs.a.Delete(id) }

// IDs lists every research-set fingerprint persisted on disk.
func (rs *ResearchStore) IDs() ([]string, error) { return rs.a.IDs() }

// Prune removes every research set older than maxAge; see Artefacts.Prune.
func (rs *ResearchStore) Prune(maxAge time.Duration) (int, error) { return rs.a.Prune(maxAge) }

// Stats returns a snapshot of the cumulative counters.
func (rs *ResearchStore) Stats() Stats { return rs.a.Stats() }

// SetReadLatency binds the histogram observing disk-read latencies; see
// Artefacts.SetReadLatency.
func (rs *ResearchStore) SetReadLatency(h *obs.Histogram) { rs.a.SetReadLatency(h) }

// NewestMTime reports the youngest staged set's file modification time;
// see Artefacts.NewestMTime.
func (rs *ResearchStore) NewestMTime() (time.Time, error) { return rs.a.NewestMTime() }
