package planstore

import (
	"testing"

	"otfair/internal/obs"
)

// TestReadLatencyObservation pins the store's read-latency hook: memory
// hits never touch the histogram, disk reads (hits and misses alike)
// observe exactly once, and the binding can change while Gets run.
func TestReadLatencyObservation(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := obs.NewHistogram(obs.DefLatencyBuckets())
	st.SetReadLatency(h)

	plan := designTestPlan(t, 1, 30)
	id, _, err := st.Put(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Put leaves the plan hot: a Get is a memory hit, no disk read.
	if _, err := st.Get(id); err != nil {
		t.Fatal(err)
	}
	if got := h.Snapshot().Count; got != 0 {
		t.Fatalf("memory hit observed %d disk reads, want 0", got)
	}

	// A cold store must observe exactly one disk read per Get.
	st2, err := Open(st.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2.SetReadLatency(h)
	if _, err := st2.Get(id); err != nil {
		t.Fatal(err)
	}
	if got := h.Snapshot().Count; got != 1 {
		t.Fatalf("cold read observed %d, want 1", got)
	}
	// Warm now: no additional observation.
	if _, err := st2.Get(id); err != nil {
		t.Fatal(err)
	}
	if got := h.Snapshot().Count; got != 1 {
		t.Fatalf("warm read observed %d total, want 1", got)
	}
	// A miss is a disk attempt and observes too.
	if _, err := st2.Get("00000000000000000000000000000000"); err == nil {
		t.Fatal("expected miss")
	}
	if got := h.Snapshot().Count; got != 2 {
		t.Fatalf("miss observed %d total, want 2", got)
	}
	// Unbinding stops observation without breaking reads.
	st2.SetReadLatency(nil)
	if _, err := st2.Get("00000000000000000000000000000000"); err == nil {
		t.Fatal("expected miss")
	}
	if got := h.Snapshot().Count; got != 2 {
		t.Fatalf("unbound store observed %d total, want 2", got)
	}
}
