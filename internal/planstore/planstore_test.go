package planstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/rng"
)

// designTestPlan builds a small but non-trivial plan from synthetic
// bimodal research data.
func designTestPlan(t *testing.T, seed uint64, nq int) *core.Plan {
	t.Helper()
	r := rng.New(seed)
	tbl := dataset.MustTable(2, []string{"a", "b"})
	for u := 0; u < 2; u++ {
		for s := 0; s < 2; s++ {
			for i := 0; i < 60; i++ {
				if err := tbl.Append(dataset.Record{
					X: []float64{
						float64(u) + 2*float64(s) + r.Norm(),
						-float64(u) + 0.5*float64(s) + 0.7*r.Norm(),
					},
					S: s, U: u,
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	plan, err := core.Design(tbl, core.Options{NQ: nq})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestPutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := designTestPlan(t, 1, 30)
	id, _, err := st.Put(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Has(id) {
		t.Fatal("stored plan not visible")
	}
	got, err := st.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	// Memory hit returns the identical object.
	if got != plan {
		t.Error("LRU hit did not return the shared plan")
	}
	// A fresh store over the same directory must reload from disk with
	// identical canonical bytes.
	st2, err := Open(st.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := st2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := reloaded.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("disk round-trip changed the canonical plan bytes")
	}
	stats := st2.Stats()
	if stats.DiskHits != 1 || stats.MemHits != 0 {
		t.Errorf("fresh-store stats = %+v, want one disk hit", stats)
	}
}

func TestContentAddressing(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := designTestPlan(t, 2, 25)
	id1, _, err := st.Put(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Same content re-put (even via a serialization round-trip) dedupes to
	// the same fingerprint.
	raw, err := plan.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	clone, err := core.ReadPlan(bytesReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	id2, _, err := st.Put(clone)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Errorf("identical content hashed to %s and %s", id1, id2)
	}
	if got := st.Stats(); got.Puts != 1 || got.DupPuts != 1 {
		t.Errorf("stats = %+v, want 1 put + 1 dup", got)
	}
	// Different content gets a different fingerprint.
	other := designTestPlan(t, 3, 25)
	id3, _, err := st.Put(other)
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 {
		t.Error("distinct plans collided")
	}
	ids, err := st.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Errorf("IDs() = %v, want 2 entries", ids)
	}
}

func TestGetMissAndMalformedIDs(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("00000000000000000000000000000000"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing plan: err = %v, want ErrNotFound", err)
	}
	for _, id := range []string{"", "short", "../../../../etc/passwd", "ZZ000000000000000000000000000000", "0000000000000000000000000000000g"} {
		if _, err := st.Get(id); err == nil || errors.Is(err, os.ErrNotExist) {
			t.Errorf("malformed id %q not rejected up front", id)
		}
		if st.Has(id) {
			t.Errorf("Has(%q) = true", id)
		}
	}
	if got := st.Stats().Misses; got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
}

// TestCrashSafety simulates the two crash modes: a leftover temp file from
// a write that never committed, and a torn write landed on the live name by
// an agent that bypassed the store. The first must be invisible; the second
// must fail loudly on load, not deserialize garbage.
func TestCrashSafety(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := designTestPlan(t, 4, 20)
	id, _, err := st.Put(plan)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := plan.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}

	// Crash mode 1: an abandoned temp file. Listing must skip it and a
	// reopened store must still serve the committed plan.
	if err := os.WriteFile(filepath.Join(dir, id+".tmp-crashed"), raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := st2.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != id {
		t.Errorf("IDs with leftover temp = %v, want [%s]", ids, id)
	}
	if _, err := st2.Get(id); err != nil {
		t.Errorf("committed plan unreadable after simulated crash: %v", err)
	}

	// Crash mode 2: a truncated file on a live name. Get must error.
	tornID := "00112233445566778899aabbccddeeff"
	if err := os.WriteFile(filepath.Join(dir, tornID+".json"), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st3.Get(tornID); err == nil {
		t.Fatal("torn plan file deserialized without error")
	}

	// Mode 3: a structurally valid plan restored under the wrong name
	// (rsync mishap). Content addressing must hold on the read path.
	wrongID := "ffeeddccbbaa99887766554433221100"
	if err := os.WriteFile(filepath.Join(dir, wrongID+".json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st3.Get(wrongID); err == nil {
		t.Fatal("misnamed plan served under the wrong fingerprint")
	}
}

func TestLRUEviction(t *testing.T) {
	st, err := Open(t.TempDir(), Options{CacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for seed := uint64(10); seed < 14; seed++ {
		id, _, err := st.Put(designTestPlan(t, seed, 15))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if got := st.Stats().Evictions; got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
	// Evicted plans remain durable on disk.
	for _, id := range ids {
		if _, err := st.Get(id); err != nil {
			t.Errorf("plan %s lost after eviction: %v", id, err)
		}
	}
	st2 := st.Stats()
	if st2.DiskHits < 2 {
		t.Errorf("disk hits = %d, want >= 2 (evicted entries reload)", st2.DiskHits)
	}
}

// TestConcurrentAccess hammers one store from many goroutines; run under
// -race this is the store's concurrency certification.
func TestConcurrentAccess(t *testing.T) {
	st, err := Open(t.TempDir(), Options{CacheSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]*core.Plan, 4)
	ids := make([]string, 4)
	for i := range plans {
		plans[i] = designTestPlan(t, uint64(20+i), 12)
		id, _, err := st.Put(plans[i])
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := ids[(w+i)%len(ids)]
				if _, err := st.Get(id); err != nil {
					t.Errorf("concurrent get %s: %v", id, err)
					return
				}
				if i%10 == 0 {
					if _, _, err := st.Put(plans[(w+i)%len(plans)]); err != nil {
						t.Errorf("concurrent put: %v", err)
						return
					}
					st.Stats()
					st.Has(id)
				}
			}
		}(w)
	}
	wg.Wait()
}

func bytesReader(b []byte) *bytes.Reader { return bytes.NewReader(b) }
