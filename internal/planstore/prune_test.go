package planstore

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/rng"
)

// backdate pushes a file's mtime into the past so TTL retention sees it as
// stale without the test sleeping.
func backdate(t *testing.T, path string, age time.Duration) {
	t.Helper()
	old := time.Now().Add(-age)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
}

func TestPruneTTLRetention(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oldPlan := designTestPlan(t, 50, 15)
	oldID, _, err := st.Put(oldPlan)
	if err != nil {
		t.Fatal(err)
	}
	freshID, _, err := st.Put(designTestPlan(t, 51, 15))
	if err != nil {
		t.Fatal(err)
	}
	backdate(t, filepath.Join(dir, oldID+".json"), 48*time.Hour)

	removed, err := st.Prune(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Errorf("removed = %d, want 1", removed)
	}
	if st.Has(oldID) {
		t.Error("pruned plan still visible (stale LRU entry must be dropped too)")
	}
	if _, err := st.Get(oldID); err == nil {
		t.Error("pruned plan still served")
	}
	if _, err := st.Get(freshID); err != nil {
		t.Errorf("fresh plan lost by prune: %v", err)
	}

	// Content addressing makes retention safe: re-putting the pruned plan
	// restores it under the identical fingerprint.
	reID, created, err := st.Put(oldPlan)
	if err != nil {
		t.Fatal(err)
	}
	if reID != oldID || !created {
		t.Errorf("re-put after prune: id=%s created=%v, want %s/true", reID, created, oldID)
	}

	// A duplicate Put refreshes the TTL: an aged entry that is re-stored
	// counts as in use and survives the next prune.
	backdate(t, filepath.Join(dir, oldID+".json"), 48*time.Hour)
	if _, created, err := st.Put(oldPlan); err != nil || created {
		t.Fatalf("dup put: created=%v err=%v", created, err)
	}
	if removed, err := st.Prune(24 * time.Hour); err != nil || removed != 0 {
		t.Errorf("prune after refreshing dup put: removed=%d err=%v, want 0/nil", removed, err)
	}
	if !st.Has(oldID) {
		t.Error("re-stored plan pruned despite TTL refresh")
	}
}

// TestDesignIndexPrune covers link retention: aged links go, fresh links
// pointing at live plans stay, and a fresh link whose plan was pruned
// underneath (dangling) is collected too.
func TestDesignIndexPrune(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewDesignIndex(st)
	if err != nil {
		t.Fatal(err)
	}
	research := designTestResearch(t, 80)
	if _, err := ix.Design(research, core.Options{NQ: 15}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Design(research, core.Options{NQ: 18}); err != nil {
		t.Fatal(err)
	}
	links, err := os.ReadDir(filepath.Join(dir, designNamespace))
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 {
		t.Fatalf("links = %d, want 2", len(links))
	}
	// Age the first link past the cutoff.
	backdate(t, filepath.Join(dir, designNamespace, links[0].Name()), 48*time.Hour)
	if removed, err := ix.Prune(24 * time.Hour); err != nil || removed != 1 {
		t.Fatalf("prune aged link: removed=%d err=%v, want 1/nil", removed, err)
	}
	// Dangle the surviving link by deleting every plan; a fresh prune
	// collects it regardless of age.
	for _, id := range mustIDs(t, st) {
		if err := st.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if removed, err := ix.Prune(24 * time.Hour); err != nil || removed != 1 {
		t.Fatalf("prune dangling link: removed=%d err=%v, want 1/nil", removed, err)
	}
	left, err := os.ReadDir(filepath.Join(dir, designNamespace))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("links left after pruning: %d", len(left))
	}
}

func mustIDs(t *testing.T, st *Store) []string {
	t.Helper()
	ids, err := st.IDs()
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestPruneCrashSafety covers the crash interactions of retention: stale
// temp spools from crashed writes are collected, fresh temp files from
// in-flight writes are left alone, and a prune interrupted between unlinks
// (simulated by pruning twice with different cutoffs) leaves a store every
// survivor still loads cleanly from.
func TestPruneCrashSafety(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for seed := uint64(60); seed < 63; seed++ {
		id, _, err := st.Put(designTestPlan(t, seed, 12))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Age the first two entries differently.
	backdate(t, filepath.Join(dir, ids[0]+".json"), 72*time.Hour)
	backdate(t, filepath.Join(dir, ids[1]+".json"), 36*time.Hour)
	// A crashed write's abandoned spool, old enough to collect, and an
	// in-flight one that must survive.
	stale := filepath.Join(dir, ids[0]+".tmp-crashed")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	backdate(t, stale, 72*time.Hour)
	inflight := filepath.Join(dir, ids[2]+".tmp-live")
	if err := os.WriteFile(inflight, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	// First prune pass removes only the oldest plan — as if the process
	// died before a second pass with a tighter policy ran.
	if removed, err := st.Prune(48 * time.Hour); err != nil || removed != 1 {
		t.Fatalf("first prune: removed=%d err=%v, want 1/nil", removed, err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp spool survived prune")
	}
	if _, err := os.Stat(inflight); err != nil {
		t.Error("in-flight temp file collected by prune")
	}

	// A store reopened over the post-crash directory serves every survivor.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	left, err := st2.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 2 {
		t.Fatalf("IDs after interrupted retention = %v, want 2 survivors", left)
	}
	for _, id := range left {
		if _, err := st2.Get(id); err != nil {
			t.Errorf("survivor %s unreadable: %v", id, err)
		}
	}
	// The tighter second pass finishes the job.
	if removed, err := st2.Prune(24 * time.Hour); err != nil || removed != 1 {
		t.Fatalf("second prune: removed=%d err=%v, want 1/nil", removed, err)
	}
	if !st2.Has(ids[2]) {
		t.Error("youngest plan lost")
	}
	if _, err := st.Prune(0); err == nil {
		t.Error("non-positive prune age accepted")
	}
}

func TestDesignIndexWarmStart(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewDesignIndex(st)
	if err != nil {
		t.Fatal(err)
	}
	research := designTestResearch(t, 70)
	opts := core.Options{NQ: 20}

	plan, err := ix.Design(research, opts)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := ix.Stats(); h != 0 || m != 1 {
		t.Errorf("first design: hits=%d misses=%d, want 0/1", h, m)
	}
	// Same inputs warm-start, and a fresh index over the same directory
	// (another process) warm-starts from disk with identical canonical
	// bytes.
	again, err := ix.Design(research, opts)
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := ix.Stats(); h != 1 {
		t.Error("repeat design did not hit the disk tier")
	}
	if again != plan {
		t.Error("in-process warm start did not return the cached plan object")
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := NewDesignIndex(st2)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := ix2.Design(research, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := plan.MarshalCanonical()
	b, _ := reloaded.MarshalCanonical()
	if string(a) != string(b) {
		t.Error("cross-process warm start changed the canonical plan bytes")
	}
	if h, m := ix2.Stats(); h != 1 || m != 0 {
		t.Errorf("cross-process stats: hits=%d misses=%d, want 1/0", h, m)
	}

	// Different options are a different key.
	if _, err := ix.Design(research, core.Options{NQ: 25}); err != nil {
		t.Fatal(err)
	}
	if _, m := ix.Stats(); m != 2 {
		t.Error("changed options did not re-design")
	}

	// A dangling link (plan pruned underneath) self-heals.
	id, err := plan.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(id); err != nil {
		t.Fatal(err)
	}
	healed, err := ix.Design(research, opts)
	if err != nil {
		t.Fatal(err)
	}
	hid, err := healed.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if hid != id || !st.Has(id) {
		t.Error("dangling design link did not re-create the plan")
	}
}

// designTestResearch builds a synthetic bimodal research table for tests
// that exercise the design inputs rather than a finished plan.
func designTestResearch(t *testing.T, seed uint64) *dataset.Table {
	t.Helper()
	r := rng.New(seed)
	tbl := dataset.MustTable(2, []string{"a", "b"})
	for u := 0; u < 2; u++ {
		for s := 0; s < 2; s++ {
			for i := 0; i < 60; i++ {
				if err := tbl.Append(dataset.Record{
					X: []float64{
						float64(u) + 2*float64(s) + r.Norm(),
						-float64(u) + 0.5*float64(s) + 0.7*r.Norm(),
					},
					S: s, U: u,
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return tbl
}
