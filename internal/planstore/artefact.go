// The store machinery below is artefact-generic: the serving layer persists
// more than one kind of deployment artefact (repair plans, blind
// calibrations, design links), all with the same lifecycle — canonical
// serialized bytes, a 128-bit content fingerprint as the key, atomic
// temp-file-and-rename writes, loud validation on load, an in-memory LRU of
// decoded values on top of unbounded-by-default disk retention. Artefacts
// implements that lifecycle once; the typed stores (Store for plans,
// CalibrationStore for blind calibrations) are thin wrappers that pin the
// namespace and the decode function.
package planstore

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Decoder validates and deserializes one artefact's canonical bytes. It must
// fail loudly on corrupted input: the store trusts it as the read-path gate.
type Decoder func(raw []byte) (any, error)

// Artefacts is a disk-backed content-addressed registry for one artefact
// namespace, with an in-memory LRU of decoded values. All methods are safe
// for concurrent use.
type Artefacts struct {
	dir    string
	kind   string // artefact noun for error messages ("plan", "calibration")
	decode Decoder
	opts   Options

	mu    sync.Mutex
	cache map[string]*list.Element // fingerprint -> lru element
	lru   *list.List               // front = most recent; values are *cacheEntry
	stats Stats
}

type cacheEntry struct {
	id    string
	value any
}

// OpenArtefacts creates (if needed) and opens an artefact namespace rooted
// at dir. kind names the artefact in errors; decode gates every disk read.
func OpenArtefacts(dir, kind string, decode Decoder, opts Options) (*Artefacts, error) {
	if dir == "" {
		return nil, errors.New("planstore: empty directory")
	}
	if decode == nil {
		return nil, errors.New("planstore: nil decoder")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("planstore: creating %s: %w", dir, err)
	}
	return &Artefacts{
		dir:    dir,
		kind:   kind,
		decode: decode,
		opts:   opts.withDefaults(),
		cache:  make(map[string]*list.Element),
		lru:    list.New(),
	}, nil
}

// Dir reports the namespace's root directory.
func (a *Artefacts) Dir() string { return a.dir }

// CacheCap reports the (defaulted) LRU capacity — the most decoded
// artefacts the memory tier will hold, and therefore the most a prewarm
// walk can usefully load.
func (a *Artefacts) CacheCap() int { return a.opts.CacheSize }

// validID reports whether id is a well-formed fingerprint — 32 lowercase
// hex characters. Everything else is rejected before touching the
// filesystem, which is also what keeps request-supplied IDs from escaping
// the store directory.
func validID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (a *Artefacts) path(id string) string {
	return filepath.Join(a.dir, id+".json")
}

// PutBytes persists an artefact given its canonical bytes and the already
// decoded value (kept hot in the LRU), returning the content fingerprint
// and whether this call created the entry. Storing content the store
// already holds is a cheap no-op (created == false).
func (a *Artefacts) PutBytes(raw []byte, value any) (id string, created bool, err error) {
	id = fingerprint(raw)
	path := a.path(id)
	if _, err := os.Stat(path); err == nil {
		// Content-addressed: an existing file with this name holds these
		// bytes already (or a corruption the decoder will catch loudly).
		// Refresh the mtime so TTL retention (Prune) measures age since
		// the artefact was last stored, not since first creation — a
		// re-Put is a client saying "still in use".
		now := time.Now()
		os.Chtimes(path, now, now)
		a.mu.Lock()
		a.stats.DupPuts++
		a.touch(id, value)
		a.mu.Unlock()
		return id, false, nil
	}
	// Same-directory temp file + rename: the live name either does not
	// exist or holds the complete bytes, never a torn write.
	tmp, err := os.CreateTemp(a.dir, id+".tmp-*")
	if err != nil {
		return "", false, fmt.Errorf("planstore: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return "", false, a.discardTemp(fmt.Errorf("planstore: writing %s: %w", id, err), tmpName)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", false, a.discardTemp(fmt.Errorf("planstore: syncing %s: %w", id, err), tmpName)
	}
	if err := tmp.Close(); err != nil {
		return "", false, a.discardTemp(fmt.Errorf("planstore: closing %s: %w", id, err), tmpName)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return "", false, a.discardTemp(fmt.Errorf("planstore: committing %s: %w", id, err), tmpName)
	}
	a.mu.Lock()
	a.stats.Puts++
	a.touch(id, value)
	a.mu.Unlock()
	return id, true, nil
}

// removeFile is os.Remove, injectable so tests can force removal failures.
var removeFile = os.Remove

// discardTemp removes an abandoned temp file after a failed write, joining
// a removal failure into the returned error chain: on a full or read-only
// disk the operator must see both that the write failed and that its spool
// is still occupying space (TTL Prune will eventually collect it, but only
// if someone runs Prune).
func (a *Artefacts) discardTemp(writeErr error, tmpName string) error {
	if rerr := removeFile(tmpName); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
		return errors.Join(writeErr, fmt.Errorf("planstore: removing temp %s: %w", filepath.Base(tmpName), rerr))
	}
	return writeErr
}

// Get returns the artefact with the given fingerprint, from memory when
// hot, decoded from disk otherwise. The returned value is shared and must
// be treated read-only (all persisted artefacts are immutable).
func (a *Artefacts) Get(id string) (any, error) {
	if !validID(id) {
		return nil, fmt.Errorf("%w: %q", ErrBadID, id)
	}
	a.mu.Lock()
	if el, ok := a.cache[id]; ok {
		a.lru.MoveToFront(el)
		a.stats.MemHits++
		value := el.Value.(*cacheEntry).value
		a.mu.Unlock()
		return value, nil
	}
	a.mu.Unlock()

	raw, err := os.ReadFile(a.path(id))
	if errors.Is(err, os.ErrNotExist) {
		a.mu.Lock()
		a.stats.Misses++
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: %s %s", ErrNotFound, a.kind, id)
	}
	if err != nil {
		return nil, fmt.Errorf("planstore: opening %s: %w", id, err)
	}
	// Enforce content addressing on the read path too: the decoder
	// validates structure, not identity, so a file renamed or restored
	// under the wrong name would otherwise serve the wrong artefact under
	// this fingerprint.
	if got := fingerprint(raw); got != id {
		return nil, fmt.Errorf("planstore: %s %s: content fingerprint is %s (file corrupted or misnamed)", a.kind, id, got)
	}
	value, err := a.decode(raw)
	if err != nil {
		return nil, fmt.Errorf("planstore: %s %s: %w", a.kind, id, err)
	}
	a.mu.Lock()
	a.stats.DiskHits++
	a.touch(id, value)
	a.mu.Unlock()
	return value, nil
}

// Has reports whether the fingerprint exists in memory or on disk, without
// decoding.
func (a *Artefacts) Has(id string) bool {
	if !validID(id) {
		return false
	}
	a.mu.Lock()
	_, hot := a.cache[id]
	a.mu.Unlock()
	if hot {
		return true
	}
	_, err := os.Stat(a.path(id))
	return err == nil
}

// Delete removes an artefact from memory and disk. Deleting an absent
// artefact is a no-op.
func (a *Artefacts) Delete(id string) error {
	if !validID(id) {
		return fmt.Errorf("%w: %q", ErrBadID, id)
	}
	a.mu.Lock()
	if el, ok := a.cache[id]; ok {
		a.lru.Remove(el)
		delete(a.cache, id)
	}
	a.mu.Unlock()
	if err := os.Remove(a.path(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("planstore: deleting %s: %w", id, err)
	}
	return nil
}

// IDs lists every fingerprint persisted on disk, in directory order.
// Temp files from in-flight or crashed writes and nested namespace
// directories are excluded.
func (a *Artefacts) IDs() ([]string, error) {
	entries, err := os.ReadDir(a.dir)
	if err != nil {
		return nil, fmt.Errorf("planstore: listing %s: %w", a.dir, err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		id, ok := strings.CutSuffix(name, ".json")
		if !ok || !validID(id) {
			continue
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Prune enforces an age-based retention policy: every artefact whose file
// modification time is older than maxAge is removed from disk and dropped
// from the LRU, and so are abandoned temp files from crashed writes. It
// returns the number of artefacts removed.
//
// Content addressing is what makes TTL retention safe: a pruned artefact
// that is still needed is simply re-Put under the identical fingerprint by
// whoever holds it — retention never changes any surviving artefact's
// identity, and each removal is an independent atomic unlink, so a crash
// mid-prune leaves a smaller but fully consistent store.
func (a *Artefacts) Prune(maxAge time.Duration) (removed int, err error) {
	if maxAge <= 0 {
		return 0, errors.New("planstore: non-positive prune age")
	}
	entries, err := os.ReadDir(a.dir)
	if err != nil {
		return 0, fmt.Errorf("planstore: listing %s: %w", a.dir, err)
	}
	cutoff := time.Now().Add(-maxAge)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		info, ierr := e.Info()
		if ierr != nil {
			// Raced with a concurrent delete; nothing to prune.
			continue
		}
		if !info.ModTime().Before(cutoff) {
			// Younger than the TTL: live artefacts are retained, and —
			// critically — so are fresh .tmp- spools, whose atomic rename
			// may still be in flight in a concurrent PutBytes. Deleting one
			// would race the rename and fail the writer; only spools older
			// than the TTL are provably abandoned (a crashed write can
			// never be completed).
			continue
		}
		id, isLive := strings.CutSuffix(name, ".json")
		if isLive && validID(id) {
			if derr := a.Delete(id); derr != nil {
				return removed, derr
			}
			removed++
			continue
		}
		// Stale temp file (or foreign debris) past the age cutoff: the
		// spool is garbage.
		if strings.Contains(name, ".tmp-") {
			if rerr := removeFile(filepath.Join(a.dir, name)); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
				return removed, fmt.Errorf("planstore: pruning %s: %w", name, rerr)
			}
		}
	}
	return removed, nil
}

// Stats returns a snapshot of the cumulative counters.
func (a *Artefacts) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// touch inserts or refreshes an LRU entry; caller holds a.mu.
func (a *Artefacts) touch(id string, value any) {
	if el, ok := a.cache[id]; ok {
		a.lru.MoveToFront(el)
		el.Value.(*cacheEntry).value = value
		return
	}
	a.cache[id] = a.lru.PushFront(&cacheEntry{id: id, value: value})
	for a.lru.Len() > a.opts.CacheSize {
		back := a.lru.Back()
		a.lru.Remove(back)
		delete(a.cache, back.Value.(*cacheEntry).id)
		a.stats.Evictions++
	}
}
