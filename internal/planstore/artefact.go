// The store machinery below is artefact-generic: the serving layer persists
// more than one kind of deployment artefact (repair plans, blind
// calibrations, design links), all with the same lifecycle — canonical
// serialized bytes, a 128-bit content fingerprint as the key, atomic
// temp-file-and-rename writes, loud validation on load, an in-memory LRU of
// decoded values on top of unbounded-by-default disk retention. Artefacts
// implements that lifecycle once; the typed stores (Store for plans,
// CalibrationStore for blind calibrations) are thin wrappers that pin the
// namespace and the decode function.
package planstore

import (
	"container/list"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"otfair/internal/faultinject"
	"otfair/internal/obs"
)

// QuarantineDirName is the subdirectory (per namespace) that corrupt
// artefacts are moved to instead of being served or silently deleted:
// quarantine preserves the evidence for the operator while guaranteeing
// the bad bytes can never be decoded into a repair again. Each
// quarantined artefact leaves `<id>.json` (the corrupt bytes) and
// `<id>.reason` (why) behind; Prune sweeps both by age.
const QuarantineDirName = "quarantine"

// CorruptArtefactError reports an artefact whose disk bytes failed
// content-fingerprint or decode validation twice in a row and were moved
// to quarantine/. It is a terminal answer for this fingerprint — the
// entry is gone from the store until someone re-Puts the true bytes —
// and HTTP layers map it to a server error, not a miss.
type CorruptArtefactError struct {
	// Kind is the artefact noun ("plan", "calibration"); ID the
	// fingerprint the corrupt file was stored under.
	Kind, ID string
	// Quarantined reports whether the move to quarantine/ succeeded; when
	// false the corrupt file is still in place (e.g. a read-only disk)
	// and Err carries the move failure too.
	Quarantined bool
	// Err is the validation failure that condemned the artefact.
	Err error
}

func (e *CorruptArtefactError) Error() string {
	if !e.Quarantined {
		return fmt.Sprintf("planstore: %s %s is corrupt (quarantine failed): %v", e.Kind, e.ID, e.Err)
	}
	return fmt.Sprintf("planstore: %s %s is corrupt and was quarantined: %v", e.Kind, e.ID, e.Err)
}

func (e *CorruptArtefactError) Unwrap() error { return e.Err }

// Decoder validates and deserializes one artefact's canonical bytes. It must
// fail loudly on corrupted input: the store trusts it as the read-path gate.
type Decoder func(raw []byte) (any, error)

// Artefacts is a disk-backed content-addressed registry for one artefact
// namespace, with an in-memory LRU of decoded values. All methods are safe
// for concurrent use.
type Artefacts struct {
	dir    string
	kind   string // artefact noun for error messages ("plan", "calibration")
	decode Decoder
	opts   Options

	mu    sync.Mutex
	cache map[string]*list.Element // fingerprint -> lru element
	lru   *list.List               // front = most recent; values are *cacheEntry
	stats Stats

	// readLat, when set, observes the wall time of each disk read path
	// (memory misses only — retries and quarantine moves included, since
	// that is the latency the caller actually paid). An atomic pointer
	// because the store is opened before the serving layer assembles its
	// registry; SetReadLatency binds it later without racing live Gets.
	readLat atomic.Pointer[obs.Histogram]
}

// SetReadLatency binds the histogram that observes disk-read latencies
// (nil to unbind). Safe to call while Gets are in flight.
func (a *Artefacts) SetReadLatency(h *obs.Histogram) {
	a.readLat.Store(h)
}

type cacheEntry struct {
	id    string
	value any
}

// OpenArtefacts creates (if needed) and opens an artefact namespace rooted
// at dir. kind names the artefact in errors; decode gates every disk read.
func OpenArtefacts(dir, kind string, decode Decoder, opts Options) (*Artefacts, error) {
	if dir == "" {
		return nil, errors.New("planstore: empty directory")
	}
	if decode == nil {
		return nil, errors.New("planstore: nil decoder")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("planstore: creating %s: %w", dir, err)
	}
	return &Artefacts{
		dir:    dir,
		kind:   kind,
		decode: decode,
		opts:   opts.withDefaults(),
		cache:  make(map[string]*list.Element),
		lru:    list.New(),
	}, nil
}

// Dir reports the namespace's root directory.
func (a *Artefacts) Dir() string { return a.dir }

// CacheCap reports the (defaulted) LRU capacity — the most decoded
// artefacts the memory tier will hold, and therefore the most a prewarm
// walk can usefully load.
func (a *Artefacts) CacheCap() int { return a.opts.CacheSize }

// validID reports whether id is a well-formed fingerprint — 32 lowercase
// hex characters. Everything else is rejected before touching the
// filesystem, which is also what keeps request-supplied IDs from escaping
// the store directory.
func validID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (a *Artefacts) path(id string) string {
	return filepath.Join(a.dir, id+".json")
}

// PutBytes persists an artefact given its canonical bytes and the already
// decoded value (kept hot in the LRU), returning the content fingerprint
// and whether this call created the entry. Storing content the store
// already holds is a cheap no-op (created == false).
func (a *Artefacts) PutBytes(raw []byte, value any) (id string, created bool, err error) {
	id = fingerprint(raw)
	path := a.path(id)
	if _, err := os.Stat(path); err == nil {
		// Content-addressed: an existing file with this name holds these
		// bytes already (or a corruption the decoder will catch loudly).
		// Refresh the mtime so TTL retention (Prune) measures age since
		// the artefact was last stored, not since first creation — a
		// re-Put is a client saying "still in use".
		//otfair:nondet-ok TTL-retention mtime refresh; never reaches artefact bytes
		now := time.Now()
		os.Chtimes(path, now, now)
		a.mu.Lock()
		a.stats.DupPuts++
		a.touch(id, value)
		a.mu.Unlock()
		return id, false, nil
	}
	if ferr := a.opts.Fault.Err(faultinject.StoreWrite); ferr != nil {
		return "", false, fmt.Errorf("planstore: writing %s: %w", id, ferr)
	}
	// A fired torn-write fault commits truncated bytes under the live
	// name — exactly the corruption the temp-and-rename protocol exists
	// to rule out — and skips the LRU insert so the next Get must decode
	// the damage from disk. The soak drives the quarantine path with it.
	wr := a.opts.Fault.Corrupt(faultinject.StoreTornWrite, raw)
	torn := len(wr) != len(raw)
	// Same-directory temp file + rename: the live name either does not
	// exist or holds the complete bytes, never a torn write.
	tmp, err := os.CreateTemp(a.dir, id+".tmp-*")
	if err != nil {
		return "", false, fmt.Errorf("planstore: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(wr); err != nil {
		tmp.Close()
		return "", false, a.discardTemp(fmt.Errorf("planstore: writing %s: %w", id, err), tmpName)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", false, a.discardTemp(fmt.Errorf("planstore: syncing %s: %w", id, err), tmpName)
	}
	if err := tmp.Close(); err != nil {
		return "", false, a.discardTemp(fmt.Errorf("planstore: closing %s: %w", id, err), tmpName)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return "", false, a.discardTemp(fmt.Errorf("planstore: committing %s: %w", id, err), tmpName)
	}
	a.mu.Lock()
	a.stats.Puts++
	if !torn {
		a.touch(id, value)
	}
	a.mu.Unlock()
	return id, true, nil
}

// removeFile is os.Remove, injectable so tests can force removal failures.
var removeFile = os.Remove

// discardTemp removes an abandoned temp file after a failed write, joining
// a removal failure into the returned error chain: on a full or read-only
// disk the operator must see both that the write failed and that its spool
// is still occupying space (TTL Prune will eventually collect it, but only
// if someone runs Prune).
func (a *Artefacts) discardTemp(writeErr error, tmpName string) error {
	if rerr := removeFile(tmpName); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
		return errors.Join(writeErr, fmt.Errorf("planstore: removing temp %s: %w", filepath.Base(tmpName), rerr))
	}
	return writeErr
}

// Get returns the artefact with the given fingerprint, from memory when
// hot, decoded from disk otherwise. The returned value is shared and must
// be treated read-only (all persisted artefacts are immutable).
//
// A disk load that fails validation — wrong content fingerprint or a
// decode error — is retried once (a concurrent re-Put may have just
// replaced the file, and a transient I/O fault deserves a second read
// before condemning the bytes). If the retry fails the same way, the
// file is moved to quarantine/ with a reason file and Get returns a
// *CorruptArtefactError; the fingerprint then reads as ErrNotFound until
// the true bytes are re-Put.
func (a *Artefacts) Get(id string) (any, error) {
	if !validID(id) {
		return nil, fmt.Errorf("%w: %q", ErrBadID, id)
	}
	a.mu.Lock()
	if el, ok := a.cache[id]; ok {
		a.lru.MoveToFront(el)
		a.stats.MemHits++
		value := el.Value.(*cacheEntry).value
		a.mu.Unlock()
		return value, nil
	}
	a.mu.Unlock()

	if h := a.readLat.Load(); h != nil {
		start := time.Now() //otfair:nondet-ok read-latency histogram timing; never reaches artefact bytes
		defer func() { h.ObserveDuration(time.Since(start)) }()
	}
	value, err := a.loadDisk(id)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, err
		}
		a.mu.Lock()
		a.stats.ReadRetries++
		a.mu.Unlock()
		value, err = a.loadDisk(id)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				return nil, err
			}
			var terr *loadError
			if errors.As(err, &terr) && terr.corrupt {
				return nil, a.quarantine(id, err)
			}
			return nil, err
		}
	}
	a.mu.Lock()
	a.stats.DiskHits++
	a.touch(id, value)
	a.mu.Unlock()
	return value, nil
}

// loadError is one failed disk load; corrupt marks validation failures
// (fingerprint mismatch, decode error) as opposed to I/O trouble — only
// corruption condemns the file to quarantine.
type loadError struct {
	corrupt bool
	err     error
}

func (e *loadError) Error() string { return e.err.Error() }
func (e *loadError) Unwrap() error { return e.err }

// loadDisk performs one read-and-validate attempt. A miss is returned as
// ErrNotFound directly (never retried, never quarantined).
func (a *Artefacts) loadDisk(id string) (any, error) {
	if ferr := a.opts.Fault.Err(faultinject.StoreRead); ferr != nil {
		return nil, &loadError{err: fmt.Errorf("planstore: opening %s: %w", id, ferr)}
	}
	raw, err := os.ReadFile(a.path(id))
	if errors.Is(err, os.ErrNotExist) {
		a.mu.Lock()
		a.stats.Misses++
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: %s %s", ErrNotFound, a.kind, id)
	}
	if err != nil {
		return nil, &loadError{err: fmt.Errorf("planstore: opening %s: %w", id, err)}
	}
	// Enforce content addressing on the read path too: the decoder
	// validates structure, not identity, so a file renamed or restored
	// under the wrong name would otherwise serve the wrong artefact under
	// this fingerprint.
	if got := fingerprint(raw); got != id {
		return nil, &loadError{corrupt: true, err: fmt.Errorf("planstore: %s %s: content fingerprint is %s (file corrupted or misnamed)", a.kind, id, got)}
	}
	value, err := a.decode(raw)
	if err != nil {
		return nil, &loadError{corrupt: true, err: fmt.Errorf("planstore: %s %s: %w", a.kind, id, err)}
	}
	return value, nil
}

// QuarantineDir reports the namespace's quarantine directory (which may
// not exist yet — it is created on first quarantine).
func (a *Artefacts) QuarantineDir() string {
	return filepath.Join(a.dir, QuarantineDirName)
}

// quarantine moves a twice-condemned artefact file out of the live
// namespace into quarantine/ (same filesystem, so the move is an atomic
// rename: the file is always fully in one place or the other), drops any
// stale memory entry, records why in a sibling reason file, and returns
// the *CorruptArtefactError the caller surfaces. If the move itself
// fails, the error says so and the live file stays — better a loud
// repeat failure than losing the evidence.
func (a *Artefacts) quarantine(id string, cause error) error {
	cerr := &CorruptArtefactError{Kind: a.kind, ID: id, Err: cause}
	a.mu.Lock()
	if el, ok := a.cache[id]; ok {
		a.lru.Remove(el)
		delete(a.cache, id)
	}
	a.stats.Quarantined++
	a.mu.Unlock()
	qdir := a.QuarantineDir()
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		cerr.Err = errors.Join(cause, fmt.Errorf("planstore: creating %s: %w", qdir, err))
		return cerr
	}
	if err := os.Rename(a.path(id), filepath.Join(qdir, id+".json")); err != nil && !errors.Is(err, os.ErrNotExist) {
		cerr.Err = errors.Join(cause, fmt.Errorf("planstore: quarantining %s: %w", id, err))
		return cerr
	}
	cerr.Quarantined = true
	reason := fmt.Sprintf("kind: %s\nid: %s\nquarantined: %s\nreason: %v\n",
		//otfair:nondet-ok quarantine audit timestamp for operators; the live set never reads it back
		a.kind, id, time.Now().UTC().Format(time.RFC3339), cause)
	if err := os.WriteFile(filepath.Join(qdir, id+".reason"), []byte(reason), 0o644); err != nil {
		// The bad bytes are already out of the live set; a failed reason
		// file must not resurrect them. Surface it in the chain instead.
		cerr.Err = errors.Join(cause, fmt.Errorf("planstore: writing quarantine reason for %s: %w", id, err))
	}
	a.opts.Logger.Warn("artefact quarantined",
		slog.String("component", "planstore"), slog.String("kind", a.kind),
		slog.String("id", id), slog.Any("error", cause))
	return cerr
}

// Has reports whether the fingerprint exists in memory or on disk, without
// decoding.
func (a *Artefacts) Has(id string) bool {
	if !validID(id) {
		return false
	}
	a.mu.Lock()
	_, hot := a.cache[id]
	a.mu.Unlock()
	if hot {
		return true
	}
	_, err := os.Stat(a.path(id))
	return err == nil
}

// Delete removes an artefact from memory and disk. Deleting an absent
// artefact is a no-op.
func (a *Artefacts) Delete(id string) error {
	if !validID(id) {
		return fmt.Errorf("%w: %q", ErrBadID, id)
	}
	a.mu.Lock()
	if el, ok := a.cache[id]; ok {
		a.lru.Remove(el)
		delete(a.cache, id)
	}
	a.mu.Unlock()
	if err := os.Remove(a.path(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("planstore: deleting %s: %w", id, err)
	}
	return nil
}

// IDs lists every fingerprint persisted on disk, in directory order.
// Temp files from in-flight or crashed writes and nested namespace
// directories are excluded.
func (a *Artefacts) IDs() ([]string, error) {
	entries, err := os.ReadDir(a.dir)
	if err != nil {
		return nil, fmt.Errorf("planstore: listing %s: %w", a.dir, err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		id, ok := strings.CutSuffix(name, ".json")
		if !ok || !validID(id) {
			continue
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Prune enforces an age-based retention policy: every artefact whose file
// modification time is older than maxAge is removed from disk and dropped
// from the LRU, and so are abandoned temp files from crashed writes and
// aged-out quarantine/ evidence (corrupt bytes and reason files). It
// returns the number of artefacts removed, quarantined ones included.
//
// Content addressing is what makes TTL retention safe: a pruned artefact
// that is still needed is simply re-Put under the identical fingerprint by
// whoever holds it — retention never changes any surviving artefact's
// identity, and each removal is an independent atomic unlink, so a crash
// mid-prune leaves a smaller but fully consistent store.
func (a *Artefacts) Prune(maxAge time.Duration) (removed int, err error) {
	if maxAge <= 0 {
		return 0, errors.New("planstore: non-positive prune age")
	}
	entries, err := os.ReadDir(a.dir)
	if err != nil {
		return 0, fmt.Errorf("planstore: listing %s: %w", a.dir, err)
	}
	//otfair:nondet-ok prune cutoff for ops retention; stored artefact bytes are content-addressed and unaffected
	cutoff := time.Now().Add(-maxAge)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		info, ierr := e.Info()
		if ierr != nil {
			// Raced with a concurrent delete; nothing to prune.
			continue
		}
		if !info.ModTime().Before(cutoff) {
			// Younger than the TTL: live artefacts are retained, and —
			// critically — so are fresh .tmp- spools, whose atomic rename
			// may still be in flight in a concurrent PutBytes. Deleting one
			// would race the rename and fail the writer; only spools older
			// than the TTL are provably abandoned (a crashed write can
			// never be completed).
			continue
		}
		id, isLive := strings.CutSuffix(name, ".json")
		if isLive && validID(id) {
			if derr := a.Delete(id); derr != nil {
				return removed, derr
			}
			removed++
			continue
		}
		// Stale temp file (or foreign debris) past the age cutoff: the
		// spool is garbage.
		if strings.Contains(name, ".tmp-") {
			if rerr := removeFile(filepath.Join(a.dir, name)); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
				return removed, fmt.Errorf("planstore: pruning %s: %w", name, rerr)
			}
		}
	}
	// Sweep quarantine/ by the same age policy: quarantined bytes and
	// their reason files are operator evidence, not live data, and must
	// not accumulate forever. (The dir-skip in the main loop above is what
	// used to leave quarantine untouched.) Each quarantined artefact
	// counts once, by its .json; reason files ride along.
	qdir := a.QuarantineDir()
	qentries, qerr := os.ReadDir(qdir)
	if qerr != nil {
		if errors.Is(qerr, os.ErrNotExist) {
			return removed, nil
		}
		return removed, fmt.Errorf("planstore: listing %s: %w", qdir, qerr)
	}
	for _, e := range qentries {
		if e.IsDir() {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil || !info.ModTime().Before(cutoff) {
			continue
		}
		name := e.Name()
		if rerr := removeFile(filepath.Join(qdir, name)); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			return removed, fmt.Errorf("planstore: pruning quarantine/%s: %w", name, rerr)
		}
		if strings.HasSuffix(name, ".json") {
			removed++
			// Quarantined evidence leaving the store is an operator-visible
			// event — it was kept precisely to be looked at.
			a.opts.Logger.Info("pruned quarantined artefact",
				slog.String("component", "planstore"), slog.String("kind", a.kind),
				slog.String("id", strings.TrimSuffix(name, ".json")),
				slog.Duration("older_than", maxAge))
		}
	}
	return removed, nil
}

// NewestMTime reports the modification time of the youngest live artefact
// in the namespace (zero time when the namespace is empty). Scrape-time
// artefact-age gauges read it so stale-plan alerting works even with the
// drift watcher disabled.
func (a *Artefacts) NewestMTime() (time.Time, error) {
	entries, err := os.ReadDir(a.dir)
	if err != nil {
		return time.Time{}, fmt.Errorf("planstore: listing %s: %w", a.dir, err)
	}
	var newest time.Time
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		id, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok || !validID(id) {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			continue
		}
		if mt := info.ModTime(); mt.After(newest) {
			newest = mt
		}
	}
	return newest, nil
}

// LatestID reports the id of the youngest live artefact in the namespace
// (by file modification time, with the lexicographically greater id
// winning ties so the answer is total), or ErrNotFound when the
// namespace is empty. StagedSource resolves "the current staged research
// set" through it.
func (a *Artefacts) LatestID() (string, error) {
	entries, err := os.ReadDir(a.dir)
	if err != nil {
		return "", fmt.Errorf("planstore: listing %s: %w", a.dir, err)
	}
	var (
		newest   time.Time
		newestID string
	)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		id, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok || !validID(id) {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			continue
		}
		mt := info.ModTime()
		if mt.After(newest) || (mt.Equal(newest) && id > newestID) {
			newest, newestID = mt, id
		}
	}
	if newestID == "" {
		return "", fmt.Errorf("planstore: %s namespace is empty: %w", a.kind, ErrNotFound)
	}
	return newestID, nil
}

// Stats returns a snapshot of the cumulative counters.
func (a *Artefacts) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// touch inserts or refreshes an LRU entry; caller holds a.mu.
func (a *Artefacts) touch(id string, value any) {
	if el, ok := a.cache[id]; ok {
		a.lru.MoveToFront(el)
		el.Value.(*cacheEntry).value = value
		return
	}
	a.cache[id] = a.lru.PushFront(&cacheEntry{id: id, value: value})
	for a.lru.Len() > a.opts.CacheSize {
		back := a.lru.Back()
		a.lru.Remove(back)
		delete(a.cache, back.Value.(*cacheEntry).id)
		a.stats.Evictions++
	}
}
