package planstore

import (
	"bytes"
	"errors"
	"path/filepath"
	"time"

	"otfair/internal/blind"
	"otfair/internal/obs"
)

// calibrationNamespace is the subdirectory of a store root that holds the
// calibration artefacts, keeping them out of the plan listing while both
// tiers share one -store directory.
const calibrationNamespace = "calibrations"

// CalibrationStore is the blind-calibration namespace of an artefact
// store: fitted QDA/pooled models (blind.Calibration) keyed by content
// fingerprint, under `calibrations/` of the store root. All methods are
// safe for concurrent use.
type CalibrationStore struct {
	a *Artefacts
}

// OpenCalibrations creates (if needed) and opens the calibration namespace
// under a store root — typically the same directory a plan Store is rooted
// at, so one -store flag provisions both tiers.
func OpenCalibrations(root string, opts Options) (*CalibrationStore, error) {
	a, err := OpenArtefacts(filepath.Join(root, calibrationNamespace), "calibration", func(raw []byte) (any, error) {
		return blind.ReadCalibration(bytes.NewReader(raw))
	}, opts)
	if err != nil {
		return nil, err
	}
	return &CalibrationStore{a: a}, nil
}

// Dir reports the namespace directory.
func (cs *CalibrationStore) Dir() string { return cs.a.Dir() }

// CacheCap reports the in-memory LRU capacity.
func (cs *CalibrationStore) CacheCap() int { return cs.a.CacheCap() }

// Put persists a calibration, returning its content fingerprint and
// whether this call created the entry.
func (cs *CalibrationStore) Put(cal *blind.Calibration) (id string, created bool, err error) {
	if cal == nil {
		return "", false, errors.New("planstore: nil calibration")
	}
	raw, err := cal.MarshalCanonical()
	if err != nil {
		return "", false, err
	}
	return cs.a.PutBytes(raw, cal)
}

// Get returns the calibration with the given fingerprint; the returned
// value is shared and must be treated read-only.
func (cs *CalibrationStore) Get(id string) (*blind.Calibration, error) {
	v, err := cs.a.Get(id)
	if err != nil {
		return nil, err
	}
	return v.(*blind.Calibration), nil
}

// Has reports whether the fingerprint exists in memory or on disk.
func (cs *CalibrationStore) Has(id string) bool { return cs.a.Has(id) }

// Delete removes a calibration from memory and disk.
func (cs *CalibrationStore) Delete(id string) error { return cs.a.Delete(id) }

// IDs lists every calibration fingerprint persisted on disk.
func (cs *CalibrationStore) IDs() ([]string, error) { return cs.a.IDs() }

// Prune removes every calibration older than maxAge; see Artefacts.Prune.
func (cs *CalibrationStore) Prune(maxAge time.Duration) (int, error) { return cs.a.Prune(maxAge) }

// Stats returns a snapshot of the cumulative counters.
func (cs *CalibrationStore) Stats() Stats { return cs.a.Stats() }

// SetReadLatency binds the histogram observing disk-read latencies; see
// Artefacts.SetReadLatency.
func (cs *CalibrationStore) SetReadLatency(h *obs.Histogram) { cs.a.SetReadLatency(h) }

// NewestMTime reports the youngest calibration's file modification time;
// see Artefacts.NewestMTime.
func (cs *CalibrationStore) NewestMTime() (time.Time, error) { return cs.a.NewestMTime() }
