package planstore

import (
	"errors"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const (
	idA = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	idB = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
	idC = "cccccccccccccccccccccccccccccccc"
)

func TestRefsIdentityAndSwap(t *testing.T) {
	refs, err := OpenRefs(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := refs.Resolve(idA); got != idA {
		t.Fatalf("unset lineage resolves to %s, want identity", got)
	}
	if _, err := refs.Get(idA); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on unset lineage: %v, want ErrNotFound", err)
	}
	// First swap: expected is the identity mapping.
	if err := refs.CompareAndSwap(idA, idA, idB); err != nil {
		t.Fatal(err)
	}
	if got := refs.Resolve(idA); got != idB {
		t.Fatalf("after swap: %s, want %s", got, idB)
	}
	// Second swap must name the current incumbent, not the lineage.
	if err := refs.CompareAndSwap(idA, idA, idC); !errors.Is(err, ErrRefConflict) {
		t.Fatalf("stale expected accepted: %v", err)
	}
	if got := refs.Resolve(idA); got != idB {
		t.Fatalf("conflicting CAS moved the ref to %s", got)
	}
	if err := refs.CompareAndSwap(idA, idB, idC); err != nil {
		t.Fatal(err)
	}
	if got := refs.Resolve(idA); got != idC {
		t.Fatalf("chained swap: %s, want %s", got, idC)
	}
	// Rollback restores the identity mapping.
	if err := refs.Delete(idA); err != nil {
		t.Fatal(err)
	}
	if got := refs.Resolve(idA); got != idA {
		t.Fatalf("after delete: %s, want identity", got)
	}
}

func TestRefsValidation(t *testing.T) {
	refs, err := OpenRefs(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := refs.CompareAndSwap("../escape", idA, idB); !errors.Is(err, ErrBadID) {
		t.Errorf("path-escaping lineage accepted: %v", err)
	}
	if err := refs.CompareAndSwap(idA, idA, "JUNK"); !errors.Is(err, ErrBadID) {
		t.Errorf("malformed target accepted: %v", err)
	}
	if _, err := refs.Get("nope"); !errors.Is(err, ErrBadID) {
		t.Errorf("malformed lineage Get: %v", err)
	}
	// A damaged ref file degrades to the identity mapping, never to "".
	if err := os.WriteFile(filepath.Join(refs.dir, idA+".ref"), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := refs.Resolve(idA); got != idA {
		t.Fatalf("damaged ref resolves to %q, want identity", got)
	}
}

func TestRefsList(t *testing.T) {
	refs, err := OpenRefs(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := refs.CompareAndSwap(idA, idA, idB); err != nil {
		t.Fatal(err)
	}
	if err := refs.CompareAndSwap(idC, idC, idB); err != nil {
		t.Fatal(err)
	}
	m, err := refs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[idA] != idB || m[idC] != idB {
		t.Fatalf("List = %v", m)
	}
}

func TestNewestMTime(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mt, err := st.NewestMTime(); err != nil || !mt.IsZero() {
		t.Fatalf("empty store NewestMTime = %v, %v", mt, err)
	}
	plan := designTestPlan(t, 1, 30)
	id, _, err := st.Put(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Backdate the file, then re-Put: the dedup path refreshes mtime, so
	// NewestMTime must move forward again.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, id+".json"), old, old); err != nil {
		t.Fatal(err)
	}
	mt, err := st.NewestMTime()
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(mt); d < 50*time.Minute {
		t.Fatalf("backdated artefact age %v, want ~1h", d)
	}
	if _, _, err := st.Put(plan); err != nil {
		t.Fatal(err)
	}
	mt, err = st.NewestMTime()
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(mt); d > time.Minute {
		t.Fatalf("re-Put did not refresh NewestMTime (age %v)", d)
	}
}

func TestPruneLogsQuarantineSweep(t *testing.T) {
	var buf strings.Builder
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	dir := t.TempDir()
	st, err := Open(dir, Options{Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	// Fabricate aged-out quarantine evidence.
	qdir := st.QuarantineDir()
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{idA + ".json", idA + ".reason"} {
		p := filepath.Join(qdir, name)
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		old := time.Now().Add(-2 * time.Hour)
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := st.Prune(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	out := buf.String()
	if !strings.Contains(out, "pruned quarantined artefact") || !strings.Contains(out, idA) {
		t.Errorf("quarantine sweep not logged: %q", out)
	}
}
