package planstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"otfair/internal/core"
	"otfair/internal/dataset"
)

// designNamespace is the subdirectory of a store root that holds the
// design warm-start links.
const designNamespace = "designs"

// DesignIndex is the disk warm-start tier for Algorithm 1: a mapping from
// design *inputs* (research table + options) to the content fingerprint of
// the designed plan, layered over a plan Store. The store itself is
// content-addressed on outputs, so repeated designs of the same inputs
// always dedupe on disk — but without an input index every run still pays
// the full KDE + OT design cost before discovering that. The index closes
// the loop: cmd/repro (and anything else re-running experiment
// configurations) resolves the input key first and reloads the finished
// plan from the same disk tier the serving layer shares.
//
// Layout: one `<inputkey>.link` file per design under `designs/` of the
// store root, holding the plan fingerprint as JSON. Links are written
// atomically (temp file + rename) and are pure derived data: a dangling
// link — the plan was pruned — just falls back to a fresh design that
// re-creates both sides.
type DesignIndex struct {
	store *Store
	dir   string

	mu sync.Mutex
	// Hits and Misses count warm starts served from the disk tier vs
	// designs computed from scratch.
	hits, misses uint64
}

// NewDesignIndex opens (creating if needed) the design namespace under the
// store's root directory.
func NewDesignIndex(store *Store) (*DesignIndex, error) {
	if store == nil {
		return nil, errors.New("planstore: nil store")
	}
	dir := filepath.Join(store.Dir(), designNamespace)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("planstore: creating %s: %w", dir, err)
	}
	return &DesignIndex{store: store, dir: dir}, nil
}

// designKey fingerprints the design inputs: the research table's canonical
// CSV bytes plus every option field that shapes the output. Two calls with
// identical inputs share a key; any change to data or configuration yields
// a new one.
func designKey(research *dataset.Table, opts core.Options) (string, error) {
	var buf bytes.Buffer
	if err := research.WriteCSV(&buf); err != nil {
		return "", err
	}
	if err := json.NewEncoder(&buf).Encode(opts); err != nil {
		return "", err
	}
	return fingerprint(buf.Bytes()), nil
}

func (ix *DesignIndex) linkPath(key string) string {
	return filepath.Join(ix.dir, key+".link")
}

// Design returns the plan for (research, opts), warm-starting from the
// disk tier when this exact design has run before — in this process or any
// other sharing the store — and designing, persisting and indexing it
// otherwise. It is safe for concurrent use.
func (ix *DesignIndex) Design(research *dataset.Table, opts core.Options) (*core.Plan, error) {
	key, err := designKey(research, opts)
	if err != nil {
		return nil, err
	}
	if raw, err := os.ReadFile(ix.linkPath(key)); err == nil {
		id := strings.TrimSpace(string(raw))
		if plan, err := ix.store.Get(id); err == nil {
			ix.mu.Lock()
			ix.hits++
			ix.mu.Unlock()
			return plan, nil
		}
		// Dangling or corrupted link (the plan was pruned, or the file is
		// damaged): fall through to a fresh design that rewrites it.
	}
	plan, err := core.Design(research, opts)
	if err != nil {
		return nil, err
	}
	id, _, err := ix.store.Put(plan)
	if err != nil {
		return nil, err
	}
	if err := ix.writeLink(key, id); err != nil {
		return nil, err
	}
	ix.mu.Lock()
	ix.misses++
	ix.mu.Unlock()
	return plan, nil
}

// writeLink commits a link atomically, same-directory temp file + rename.
func (ix *DesignIndex) writeLink(key, id string) error {
	tmp, err := os.CreateTemp(ix.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("planstore: link temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.WriteString(id + "\n"); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("planstore: writing link %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("planstore: closing link %s: %w", key, err)
	}
	if err := os.Rename(tmpName, ix.linkPath(key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("planstore: committing link %s: %w", key, err)
	}
	return nil
}

// Stats reports warm starts served from the disk tier (hits) and designs
// computed from scratch (misses).
func (ix *DesignIndex) Stats() (hits, misses uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.hits, ix.misses
}

// Prune removes links older than maxAge, links whose target plan is no
// longer in the store (plan pruning leaves them dangling), and abandoned
// link temp files past the cutoff. Links are pure derived data, so
// removal is always safe — the worst case is one fresh design that
// re-creates both sides. It returns the number of links removed.
func (ix *DesignIndex) Prune(maxAge time.Duration) (removed int, err error) {
	if maxAge <= 0 {
		return 0, errors.New("planstore: non-positive prune age")
	}
	entries, err := os.ReadDir(ix.dir)
	if err != nil {
		return 0, fmt.Errorf("planstore: listing %s: %w", ix.dir, err)
	}
	//otfair:nondet-ok prune cutoff for ops retention; stored index bytes are content-addressed and unaffected
	cutoff := time.Now().Add(-maxAge)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		full := filepath.Join(ix.dir, name)
		key, isLink := strings.CutSuffix(name, ".link")
		if !isLink {
			if strings.Contains(name, ".tmp-") {
				if info, ierr := e.Info(); ierr == nil && info.ModTime().Before(cutoff) {
					os.Remove(full)
				}
			}
			continue
		}
		stale := false
		if info, ierr := e.Info(); ierr == nil && info.ModTime().Before(cutoff) {
			stale = true
		}
		if !stale {
			raw, rerr := os.ReadFile(full)
			if rerr != nil {
				continue // raced with a concurrent rewrite
			}
			stale = !ix.store.Has(strings.TrimSpace(string(raw)))
		}
		if !stale {
			continue
		}
		if rerr := os.Remove(full); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			return removed, fmt.Errorf("planstore: pruning link %s: %w", key, rerr)
		}
		removed++
	}
	return removed, nil
}
