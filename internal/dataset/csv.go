package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV layout: header "s,u,<feature names...>"; S is written as an empty
// field when unknown. This is the interchange format of the fairrepair CLI.

// WriteCSV writes the table with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"s", "u"}, t.names...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	row := make([]string, 2+t.dim)
	for i, r := range t.records {
		if r.S == SUnknown {
			row[0] = ""
		} else {
			row[0] = strconv.Itoa(r.S)
		}
		row[1] = strconv.Itoa(r.U)
		for k, v := range r.X {
			row[2+k] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table from the WriteCSV layout.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) < 3 || strings.TrimSpace(header[0]) != "s" || strings.TrimSpace(header[1]) != "u" {
		return nil, fmt.Errorf("dataset: header must start with s,u followed by features, got %v", header)
	}
	dim := len(header) - 2
	t, err := NewTable(dim, header[2:])
	if err != nil {
		return nil, err
	}
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line+1, err)
		}
		line++
		rec, err := parseRow(row, dim, line)
		if err != nil {
			return nil, err
		}
		if err := t.Append(rec); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
	}
	return t, nil
}

func parseRow(row []string, dim, line int) (Record, error) {
	if len(row) != dim+2 {
		return Record{}, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(row), dim+2)
	}
	rec := Record{X: make([]float64, dim)}
	sField := strings.TrimSpace(row[0])
	if sField == "" || sField == "?" {
		rec.S = SUnknown
	} else {
		s, err := strconv.Atoi(sField)
		if err != nil {
			return Record{}, fmt.Errorf("dataset: line %d: bad s %q", line, row[0])
		}
		rec.S = s
	}
	u, err := strconv.Atoi(strings.TrimSpace(row[1]))
	if err != nil {
		return Record{}, fmt.Errorf("dataset: line %d: bad u %q", line, row[1])
	}
	rec.U = u
	for k := 0; k < dim; k++ {
		v, err := strconv.ParseFloat(strings.TrimSpace(row[2+k]), 64)
		if err != nil {
			return Record{}, fmt.Errorf("dataset: line %d: bad feature %d %q", line, k, row[2+k])
		}
		rec.X[k] = v
	}
	return rec, nil
}
