package dataset

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"otfair/internal/rng"
)

// randomTable builds a random valid table from a seed for property tests.
func randomTable(seed uint64) *Table {
	r := rng.New(seed)
	dim := 1 + r.IntN(4)
	t := MustTable(dim, nil)
	n := 1 + r.IntN(60)
	for i := 0; i < n; i++ {
		rec := Record{X: make([]float64, dim), U: r.IntN(2)}
		switch r.IntN(3) {
		case 0:
			rec.S = 0
		case 1:
			rec.S = 1
		default:
			rec.S = SUnknown
		}
		for k := range rec.X {
			// Exercise exponents and negatives but stay finite.
			rec.X[k] = (r.Float64() - 0.5) * math.Pow(10, float64(r.IntN(13)-6))
		}
		if err := t.Append(rec); err != nil {
			panic(err)
		}
	}
	return t
}

func TestPropertyCSVRoundTripExact(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		orig := randomTable(seed)
		var buf bytes.Buffer
		if err := orig.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if back.Len() != orig.Len() || back.Dim() != orig.Dim() {
			return false
		}
		for i := 0; i < orig.Len(); i++ {
			a, b := orig.At(i), back.At(i)
			if a.S != b.S || a.U != b.U {
				return false
			}
			for k := range a.X {
				// 'g'/-1 formatting is lossless for float64.
				if a.X[k] != b.X[k] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestPropertySplitPartitions(t *testing.T) {
	err := quick.Check(func(seed uint64, frac uint8) bool {
		tbl := randomTable(seed)
		r := rng.New(seed + 1)
		nR := int(frac) % (tbl.Len() + 1)
		research, archive, err := tbl.Split(r, nR)
		if err != nil {
			return false
		}
		return research.Len()+archive.Len() == tbl.Len() && research.Len() == nR
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyPartitionCoversLabelled(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		tbl := randomTable(seed)
		labelled, unlabelled := tbl.Partition()
		count := 0
		for _, idx := range labelled {
			count += len(idx)
		}
		for _, idx := range unlabelled {
			count += len(idx)
		}
		return count == tbl.Len()
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyCountsConsistent(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		tbl := randomTable(seed)
		total := 0
		for _, n := range tbl.Counts() {
			total += n
		}
		return total == tbl.Len()
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
