package dataset

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Stream delivers records one at a time — the paper's "torrents of archival
// data" observed online (Section II). Implementations return io.EOF when
// exhausted.
type Stream interface {
	// Next returns the next record or io.EOF.
	Next() (Record, error)
	// Dim reports the feature dimension of the stream's records.
	Dim() int
}

// SliceStream adapts an in-memory table to the Stream interface.
type SliceStream struct {
	table *Table
	pos   int
}

// NewSliceStream wraps a table.
func NewSliceStream(t *Table) *SliceStream { return &SliceStream{table: t} }

// Next implements Stream.
func (s *SliceStream) Next() (Record, error) {
	if s.pos >= s.table.Len() {
		return Record{}, io.EOF
	}
	r := s.table.At(s.pos)
	s.pos++
	return r, nil
}

// Dim implements Stream.
func (s *SliceStream) Dim() int { return s.table.Dim() }

// CSVStream parses records incrementally from a CSV reader in the WriteCSV
// layout, holding only one row in memory at a time.
type CSVStream struct {
	cr   *csv.Reader
	dim  int
	line int
}

// NewCSVStream reads and validates the header, returning a stream over the
// remaining rows.
func NewCSVStream(r io.Reader) (*CSVStream, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading stream header: %w", err)
	}
	if len(header) < 3 || strings.TrimSpace(header[0]) != "s" || strings.TrimSpace(header[1]) != "u" {
		return nil, fmt.Errorf("dataset: stream header must start with s,u, got %v", header)
	}
	return &CSVStream{cr: cr, dim: len(header) - 2, line: 1}, nil
}

// Next implements Stream.
func (s *CSVStream) Next() (Record, error) {
	row, err := s.cr.Read()
	if err == io.EOF {
		return Record{}, io.EOF
	}
	if err != nil {
		return Record{}, fmt.Errorf("dataset: stream line %d: %w", s.line+1, err)
	}
	s.line++
	return parseRow(row, s.dim, s.line)
}

// Dim implements Stream.
func (s *CSVStream) Dim() int { return s.dim }

// ctxStream fails Next with ctx.Err() once the context is cancelled,
// checking every `every` records so the hot path pays a counter
// decrement, not a context poll, per record.
type ctxStream struct {
	inner Stream
	ctx   context.Context
	every int
	left  int
}

// WithContext wraps a stream so cancellation of ctx surfaces as a Next
// error within `every` records (every <= 1 checks on each record). The
// serving engines use it to honour per-request deadlines and client
// disconnects at record granularity without a context poll per record.
func WithContext(ctx context.Context, in Stream, every int) Stream {
	if ctx == nil {
		return in
	}
	if every < 1 {
		every = 1
	}
	return &ctxStream{inner: in, ctx: ctx, every: every}
}

// Next implements Stream.
func (s *ctxStream) Next() (Record, error) {
	if s.left <= 0 {
		if err := s.ctx.Err(); err != nil {
			return Record{}, err
		}
		s.left = s.every
	}
	s.left--
	return s.inner.Next()
}

// Dim implements Stream.
func (s *ctxStream) Dim() int { return s.inner.Dim() }

// Collect drains a stream into a table (for tests and small inputs; the
// repair path proper never needs to materialize a stream).
func Collect(s Stream) (*Table, error) {
	t, err := NewTable(s.Dim(), nil)
	if err != nil {
		return nil, err
	}
	for {
		r, err := s.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		if err := t.Append(r); err != nil {
			return nil, err
		}
	}
}
