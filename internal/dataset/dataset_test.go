package dataset

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"otfair/internal/rng"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tbl := MustTable(2, []string{"age", "hours"})
	recs := []Record{
		{X: []float64{25, 40}, S: 0, U: 0},
		{X: []float64{35, 45}, S: 1, U: 0},
		{X: []float64{45, 50}, S: 0, U: 1},
		{X: []float64{55, 38}, S: 1, U: 1},
		{X: []float64{30, 42}, S: SUnknown, U: 1},
	}
	if err := tbl.AppendAll(recs); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestRecordValidate(t *testing.T) {
	ok := Record{X: []float64{1, 2}, S: 1, U: 0}
	if err := ok.Validate(2); err != nil {
		t.Error(err)
	}
	cases := []Record{
		{X: []float64{1}, S: 0, U: 0},              // wrong dim
		{X: []float64{1, 2}, S: 2, U: 0},           // bad s
		{X: []float64{1, 2}, S: 0, U: 5},           // bad u
		{X: []float64{math.NaN(), 2}, S: 0, U: 0},  // NaN
		{X: []float64{math.Inf(1), 2}, S: 0, U: 0}, // Inf
	}
	for i, r := range cases {
		if err := r.Validate(2); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	unknown := Record{X: []float64{1, 2}, S: SUnknown, U: 1}
	if err := unknown.Validate(2); err != nil {
		t.Errorf("SUnknown rejected: %v", err)
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(0, nil); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := NewTable(2, []string{"a"}); err == nil {
		t.Error("name count mismatch accepted")
	}
	tbl, err := NewTable(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Names()[0] != "x1" || tbl.Names()[1] != "x2" {
		t.Errorf("default names = %v", tbl.Names())
	}
}

func TestAppendRejectsBadRecord(t *testing.T) {
	tbl := MustTable(2, nil)
	if err := tbl.Append(Record{X: []float64{1}, S: 0, U: 0}); err == nil {
		t.Error("bad record accepted")
	}
	if tbl.Len() != 0 {
		t.Error("failed append mutated table")
	}
}

func TestPartition(t *testing.T) {
	tbl := sampleTable(t)
	labelled, unlabelled := tbl.Partition()
	if len(labelled) != 4 {
		t.Fatalf("labelled groups = %d", len(labelled))
	}
	if got := labelled[Group{U: 0, S: 1}]; len(got) != 1 || got[0] != 1 {
		t.Errorf("group (0,1) = %v", got)
	}
	if got := unlabelled[1]; len(got) != 1 || got[0] != 4 {
		t.Errorf("unlabelled u=1 = %v", got)
	}
}

func TestGroupAndUColumns(t *testing.T) {
	tbl := sampleTable(t)
	col := tbl.GroupColumn(Group{U: 1, S: 0}, 0)
	if len(col) != 1 || col[0] != 45 {
		t.Errorf("GroupColumn = %v", col)
	}
	// UColumn pools both s values plus unknown-s records with that u.
	ucol := tbl.UColumn(1, 1)
	if len(ucol) != 3 {
		t.Errorf("UColumn = %v", ucol)
	}
}

func TestColumnPanicsOutOfRange(t *testing.T) {
	tbl := sampleTable(t)
	defer func() {
		if recover() == nil {
			t.Error("no panic for bad feature index")
		}
	}()
	tbl.GroupColumn(Group{U: 0, S: 0}, 5)
}

func TestProbabilities(t *testing.T) {
	tbl := sampleTable(t)
	if got := tbl.PrU(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("PrU = %v", got)
	}
	if got := tbl.PrSGivenU(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PrSGivenU(0) = %v", got)
	}
	// u=1 has one s=0, one s=1, one unknown -> 0.5 over labelled.
	if got := tbl.PrSGivenU(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PrSGivenU(1) = %v", got)
	}
	empty := MustTable(1, nil)
	if !math.IsNaN(empty.PrU()) || !math.IsNaN(empty.PrSGivenU(0)) {
		t.Error("empty-table probabilities not NaN")
	}
}

func TestSplitSizesAndDisjoint(t *testing.T) {
	tbl := MustTable(1, nil)
	for i := 0; i < 100; i++ {
		s := i % 2
		u := (i / 2) % 2
		if err := tbl.Append(Record{X: []float64{float64(i)}, S: s, U: u}); err != nil {
			t.Fatal(err)
		}
	}
	r := rng.New(5)
	research, archive, err := tbl.Split(r, 30)
	if err != nil {
		t.Fatal(err)
	}
	if research.Len() != 30 || archive.Len() != 70 {
		t.Fatalf("sizes %d/%d", research.Len(), archive.Len())
	}
	seen := make(map[float64]bool)
	for _, rec := range research.Records() {
		seen[rec.X[0]] = true
	}
	for _, rec := range archive.Records() {
		if seen[rec.X[0]] {
			t.Fatal("research and archive overlap")
		}
	}
	if _, _, err := tbl.Split(r, 101); err == nil {
		t.Error("oversized research accepted")
	}
	if _, _, err := tbl.Split(r, -1); err == nil {
		t.Error("negative research size accepted")
	}
}

func TestDropS(t *testing.T) {
	tbl := sampleTable(t)
	dropped := tbl.DropS()
	for _, r := range dropped.Records() {
		if r.S != SUnknown {
			t.Fatal("DropS left a label")
		}
	}
	// Original untouched.
	if tbl.At(0).S != 0 {
		t.Error("DropS mutated original")
	}
}

func TestCloneIndependence(t *testing.T) {
	tbl := sampleTable(t)
	cp := tbl.Clone()
	cp.Records()[0].X[0] = 999
	if tbl.At(0).X[0] == 999 {
		t.Error("clone shares feature storage")
	}
}

func TestCountsAndFeatureMatrix(t *testing.T) {
	tbl := sampleTable(t)
	counts := tbl.Counts()
	if counts[Group{U: 1, S: SUnknown}] != 1 {
		t.Errorf("unknown-s count = %d", counts[Group{U: 1, S: SUnknown}])
	}
	fm := tbl.FeatureMatrix()
	if len(fm) != 5 || fm[2][0] != 45 {
		t.Errorf("feature matrix wrong: %v", fm)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := sampleTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tbl.Len() || back.Dim() != tbl.Dim() {
		t.Fatalf("round-trip shape %d/%d", back.Len(), back.Dim())
	}
	for i := range tbl.Records() {
		a, b := tbl.At(i), back.At(i)
		if a.S != b.S || a.U != b.U {
			t.Errorf("record %d labels: %+v vs %+v", i, a, b)
		}
		for k := range a.X {
			if a.X[k] != b.X[k] {
				t.Errorf("record %d feature %d: %v vs %v", i, k, a.X[k], b.X[k])
			}
		}
	}
	if back.Names()[0] != "age" {
		t.Errorf("names lost: %v", back.Names())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",               // no header
		"a,b,c\n1,0,2",   // bad header
		"s,u\n0,1",       // no features
		"s,u,x\nbad,0,1", // bad s
		"s,u,x\n0,bad,1", // bad u
		"s,u,x\n0,0,bad", // bad feature
		"s,u,x\n0,0,1,9", // extra field
		"s,u,x\n7,0,1",   // s out of range
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestReadCSVUnknownSForms(t *testing.T) {
	in := "s,u,x\n,1,2.5\n?,0,3.5\n"
	tbl, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.At(0).S != SUnknown || tbl.At(1).S != SUnknown {
		t.Errorf("unknown s not parsed: %+v", tbl.Records())
	}
}

func TestSliceStream(t *testing.T) {
	tbl := sampleTable(t)
	s := NewSliceStream(tbl)
	if s.Dim() != 2 {
		t.Errorf("dim = %d", s.Dim())
	}
	n := 0
	for {
		_, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != tbl.Len() {
		t.Errorf("streamed %d of %d", n, tbl.Len())
	}
}

func TestCSVStream(t *testing.T) {
	tbl := sampleTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := NewCSVStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tbl.Len() {
		t.Errorf("collected %d of %d", back.Len(), tbl.Len())
	}
}

func TestCSVStreamBadHeader(t *testing.T) {
	if _, err := NewCSVStream(strings.NewReader("nope\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := NewCSVStream(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestCSVStreamPropagatesRowErrors(t *testing.T) {
	s, err := NewCSVStream(strings.NewReader("s,u,x\n0,0,oops\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err == nil || err == io.EOF {
		t.Errorf("bad row error = %v", err)
	}
}

func TestGroupsEnumeration(t *testing.T) {
	gs := Groups()
	if len(gs) != 4 {
		t.Fatalf("groups = %v", gs)
	}
	if gs[0].String() != "(u=0,s=0)" {
		t.Errorf("String = %q", gs[0].String())
	}
}
