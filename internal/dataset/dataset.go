// Package dataset provides the observation model of Section II of the
// paper: records z = {x, s, u} with a d-dimensional feature vector x, a
// binary protected attribute s (possibly unobserved), and a binary
// unprotected attribute u; tables of such records; the research/archive
// split; and (u,s)-group partitions that Algorithms 1 and 2 stratify over.
package dataset

import (
	"errors"
	"fmt"
	"math"
)

// SUnknown marks an unobserved protected attribute: archival data are
// S-unlabelled in the paper's general setting (Figure 1) until labels are
// estimated.
const SUnknown = -1

// Record is one composite observation z = {x, s, u}. S is 0, 1, or
// SUnknown; U is 0 or 1.
type Record struct {
	X []float64
	S int
	U int
}

// Validate checks label ranges and feature finiteness against dim.
func (r Record) Validate(dim int) error {
	if len(r.X) != dim {
		return fmt.Errorf("dataset: record has %d features, want %d", len(r.X), dim)
	}
	if r.S != 0 && r.S != 1 && r.S != SUnknown {
		return fmt.Errorf("dataset: invalid S label %d", r.S)
	}
	if r.U != 0 && r.U != 1 {
		return fmt.Errorf("dataset: invalid U label %d", r.U)
	}
	for k, v := range r.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dataset: non-finite feature %d (%v)", k, v)
		}
	}
	return nil
}

// Group identifies a (u, s) sub-population, the stratification unit of the
// entire repair pipeline.
type Group struct {
	U, S int
}

// String renders the group for diagnostics, e.g. "(u=1,s=0)".
func (g Group) String() string { return fmt.Sprintf("(u=%d,s=%d)", g.U, g.S) }

// Groups enumerates the four labelled (u, s) groups in a fixed order.
func Groups() []Group {
	return []Group{{U: 0, S: 0}, {U: 0, S: 1}, {U: 1, S: 0}, {U: 1, S: 1}}
}

// Table is an in-memory collection of records sharing a feature dimension
// and (optionally) feature names.
type Table struct {
	dim     int
	names   []string
	records []Record
}

// NewTable creates an empty table of the given feature dimension. names is
// optional; when provided it must have dim entries.
func NewTable(dim int, names []string) (*Table, error) {
	if dim <= 0 {
		return nil, errors.New("dataset: table dimension must be positive")
	}
	if names != nil && len(names) != dim {
		return nil, fmt.Errorf("dataset: %d feature names for dimension %d", len(names), dim)
	}
	var cp []string
	if names != nil {
		cp = append([]string(nil), names...)
	} else {
		cp = make([]string, dim)
		for k := range cp {
			cp[k] = fmt.Sprintf("x%d", k+1)
		}
	}
	return &Table{dim: dim, names: cp}, nil
}

// MustTable is NewTable that panics on error.
func MustTable(dim int, names []string) *Table {
	t, err := NewTable(dim, names)
	if err != nil {
		panic(err)
	}
	return t
}

// Append validates and adds a record.
func (t *Table) Append(r Record) error {
	if err := r.Validate(t.dim); err != nil {
		return err
	}
	t.records = append(t.records, r)
	return nil
}

// AppendAll appends each record, stopping at the first invalid one.
func (t *Table) AppendAll(rs []Record) error {
	for i, r := range rs {
		if err := t.Append(r); err != nil {
			return fmt.Errorf("dataset: record %d: %w", i, err)
		}
	}
	return nil
}

// Len reports the number of records.
func (t *Table) Len() int { return len(t.records) }

// Dim reports the feature dimension.
func (t *Table) Dim() int { return t.dim }

// Names returns the feature names (not a copy).
func (t *Table) Names() []string { return t.names }

// At returns record i (the record's feature slice is shared, not copied).
func (t *Table) At(i int) Record { return t.records[i] }

// Records returns the backing slice (not a copy); callers must not resize.
func (t *Table) Records() []Record { return t.records }

// Clone deep-copies the table, including feature vectors.
func (t *Table) Clone() *Table {
	out := &Table{dim: t.dim, names: append([]string(nil), t.names...)}
	out.records = make([]Record, len(t.records))
	for i, r := range t.records {
		out.records[i] = Record{X: append([]float64(nil), r.X...), S: r.S, U: r.U}
	}
	return out
}

// Partition maps each labelled (u,s) group to the indices of its records.
// Records with unknown S are returned under the second value keyed by u.
func (t *Table) Partition() (labelled map[Group][]int, unlabelled map[int][]int) {
	labelled = make(map[Group][]int)
	unlabelled = make(map[int][]int)
	for i, r := range t.records {
		if r.S == SUnknown {
			unlabelled[r.U] = append(unlabelled[r.U], i)
			continue
		}
		g := Group{U: r.U, S: r.S}
		labelled[g] = append(labelled[g], i)
	}
	return labelled, unlabelled
}

// GroupColumn extracts feature k of every record in the (u,s) group.
func (t *Table) GroupColumn(g Group, k int) []float64 {
	if k < 0 || k >= t.dim {
		panic(fmt.Sprintf("dataset: feature %d out of range %d", k, t.dim))
	}
	var out []float64
	for _, r := range t.records {
		if r.U == g.U && r.S == g.S {
			out = append(out, r.X[k])
		}
	}
	return out
}

// UColumn extracts feature k of every record with the given u, regardless
// of s — the pooled column that Algorithm 1 line 4 ranges over.
func (t *Table) UColumn(u, k int) []float64 {
	if k < 0 || k >= t.dim {
		panic(fmt.Sprintf("dataset: feature %d out of range %d", k, t.dim))
	}
	var out []float64
	for _, r := range t.records {
		if r.U == u {
			out = append(out, r.X[k])
		}
	}
	return out
}

// Counts tallies the group sizes; unknown-S records count under
// Group{U: u, S: SUnknown}.
func (t *Table) Counts() map[Group]int {
	out := make(map[Group]int)
	for _, r := range t.records {
		out[Group{U: r.U, S: r.S}]++
	}
	return out
}

// PrU estimates Pr[U = 1] empirically. It returns NaN for an empty table.
func (t *Table) PrU() float64 {
	if len(t.records) == 0 {
		return math.NaN()
	}
	n1 := 0
	for _, r := range t.records {
		if r.U == 1 {
			n1++
		}
	}
	return float64(n1) / float64(len(t.records))
}

// PrSGivenU estimates Pr[S = 1 | U = u] over labelled records. It returns
// NaN when the u-population has no labelled records.
func (t *Table) PrSGivenU(u int) float64 {
	n, n1 := 0, 0
	for _, r := range t.records {
		if r.U != u || r.S == SUnknown {
			continue
		}
		n++
		if r.S == 1 {
			n1++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return float64(n1) / float64(n)
}

// Shuffler is the subset of rng.RNG the split needs; declared locally to
// keep dataset free of a direct dependency on the rng package.
type Shuffler interface {
	Perm(n int) []int
}

// Split partitions the table into a research set of size nResearch and an
// archive holding the rest, sampling uniformly without replacement — the
// paper's nR ≪ nA research/archive split (Section II).
func (t *Table) Split(r Shuffler, nResearch int) (research, archive *Table, err error) {
	if nResearch < 0 || nResearch > len(t.records) {
		return nil, nil, fmt.Errorf("dataset: research size %d outside [0, %d]", nResearch, len(t.records))
	}
	perm := r.Perm(len(t.records))
	research = &Table{dim: t.dim, names: append([]string(nil), t.names...)}
	archive = &Table{dim: t.dim, names: append([]string(nil), t.names...)}
	for i, idx := range perm {
		if i < nResearch {
			research.records = append(research.records, t.records[idx])
		} else {
			archive.records = append(archive.records, t.records[idx])
		}
	}
	return research, archive, nil
}

// DropS returns a copy of the table with every protected label erased —
// the archival observation model zA = {xA, uA} of Section II.
func (t *Table) DropS() *Table {
	out := t.Clone()
	for i := range out.records {
		out.records[i].S = SUnknown
	}
	return out
}

// FeatureMatrix returns the n×d feature matrix (rows share the records'
// slices; callers must not mutate).
func (t *Table) FeatureMatrix() [][]float64 {
	out := make([][]float64, len(t.records))
	for i, r := range t.records {
		out[i] = r.X
	}
	return out
}
