package monitor

import (
	"errors"
	"fmt"

	"otfair/internal/dataset"
	"otfair/internal/kde"
	"otfair/internal/stat"
)

// Research-accrual stopping rule (Section VI: "a research question also
// arises in respect of stopping rules for learning of the marginals for the
// purpose of designing the OT plan"). Research data with s|u labels is the
// expensive resource the paper's whole design minimizes; the rule below
// says when enough has been collected: accrue in batches, re-estimate every
// (u,s,k) interpolated marginal on a fixed grid, and stop once the
// estimates have stopped moving.

// StoppingOptions configures the rule.
type StoppingOptions struct {
	// Batch is the accrual step size in records (default 50).
	Batch int
	// Tol is the mean L1 distance between consecutive marginal estimates
	// below which a step counts as converged (default 0.05).
	Tol float64
	// Patience is the number of consecutive converged steps required
	// (default 2).
	Patience int
	// NQ is the fixed evaluation grid resolution (default 50).
	NQ int
	// Kernel and Bandwidth configure the KDE (defaults: Gaussian,
	// Silverman).
	Kernel    kde.Kernel
	Bandwidth kde.Bandwidth
}

func (o StoppingOptions) withDefaults() StoppingOptions {
	if o.Batch == 0 {
		o.Batch = 50
	}
	if o.Tol == 0 {
		o.Tol = 0.05
	}
	if o.Patience == 0 {
		o.Patience = 2
	}
	if o.NQ == 0 {
		o.NQ = 50
	}
	return o
}

// StopPoint is one accrual step of the trace.
type StopPoint struct {
	// N is the research size after this step.
	N int
	// Delta is the mean L1 distance between this step's marginals and the
	// previous step's, averaged over (u,s,k) cells.
	Delta float64
}

// StoppingResult reports the rule's decision.
type StoppingResult struct {
	// NStop is the research size at which the rule stopped, or the full
	// table size if it never converged.
	NStop int
	// Converged reports whether the rule stopped before exhausting data.
	Converged bool
	// Trace lists every accrual step.
	Trace []StopPoint
}

// ResearchStoppingRule replays sequential research accrual over a labelled
// table (in its given order, which callers shuffle if needed) and applies
// the convergence rule. The evaluation grids are fixed from the full
// table's per-(u,k) ranges so successive estimates are comparable.
func ResearchStoppingRule(research *dataset.Table, opts StoppingOptions) (*StoppingResult, error) {
	if research == nil || research.Len() == 0 {
		return nil, errors.New("monitor: empty research table")
	}
	opts = opts.withDefaults()
	if opts.Batch < 1 || opts.Patience < 1 || opts.NQ < 2 {
		return nil, fmt.Errorf("monitor: invalid stopping options %+v", opts)
	}
	if opts.Tol <= 0 {
		return nil, errors.New("monitor: tolerance must be positive")
	}

	// Fixed grids from the full table.
	grids := make(map[[2]int][]float64) // (u,k) → grid
	for u := 0; u < 2; u++ {
		for k := 0; k < research.Dim(); k++ {
			col := research.UColumn(u, k)
			if len(col) == 0 {
				continue
			}
			lo, hi, err := stat.MinMax(col)
			if err != nil {
				return nil, err
			}
			if hi > lo {
				grids[[2]int{u, k}] = stat.Linspace(lo, hi, opts.NQ)
			}
		}
	}
	if len(grids) == 0 {
		return nil, errors.New("monitor: no non-degenerate (u,k) cell to track")
	}

	res := &StoppingResult{}
	var prev map[[3]int][]float64
	streak := 0
	for n := opts.Batch; ; n += opts.Batch {
		if n > research.Len() {
			n = research.Len()
		}
		cur, err := marginalsAt(research, n, grids, opts)
		if err != nil {
			return nil, fmt.Errorf("monitor: at n=%d: %w", n, err)
		}
		if prev != nil {
			delta, ok := meanL1(prev, cur)
			if ok {
				res.Trace = append(res.Trace, StopPoint{N: n, Delta: delta})
				if delta < opts.Tol {
					streak++
					if streak >= opts.Patience {
						res.NStop = n
						res.Converged = true
						return res, nil
					}
				} else {
					streak = 0
				}
			}
		}
		prev = cur
		if n == research.Len() {
			break
		}
	}
	res.NStop = research.Len()
	return res, nil
}

// marginalsAt estimates every (u,s,k) marginal from the first n records.
func marginalsAt(research *dataset.Table, n int, grids map[[2]int][]float64, opts StoppingOptions) (map[[3]int][]float64, error) {
	cols := make(map[[3]int][]float64)
	for i := 0; i < n; i++ {
		rec := research.At(i)
		if rec.S == dataset.SUnknown {
			continue
		}
		for k, x := range rec.X {
			key := [3]int{rec.U, rec.S, k}
			cols[key] = append(cols[key], x)
		}
	}
	out := make(map[[3]int][]float64)
	for key, col := range cols {
		grid := grids[[2]int{key[0], key[2]}]
		if grid == nil || len(col) < 2 {
			continue
		}
		est, err := kde.New(col, opts.Kernel, opts.Bandwidth)
		if err != nil {
			return nil, err
		}
		pmf, err := est.GridPMF(grid)
		if err != nil {
			// Early prefixes can sit entirely outside the full-range grid
			// only in pathological orderings; treat as not-yet-estimable.
			continue
		}
		out[key] = pmf
	}
	return out, nil
}

// meanL1 averages the L1 distance over cells present in both estimates.
func meanL1(a, b map[[3]int][]float64) (float64, bool) {
	sum, n := 0.0, 0
	for key, pa := range a {
		pb, ok := b[key]
		if !ok || len(pa) != len(pb) {
			continue
		}
		d := 0.0
		for i := range pa {
			diff := pa[i] - pb[i]
			if diff < 0 {
				diff = -diff
			}
			d += diff
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
