package monitor

import (
	"io"
	"testing"

	"otfair/internal/adult"
	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/kde"
	"otfair/internal/rng"
	"otfair/internal/simulate"
)

func designPaperPlan(t *testing.T, seed uint64, nR int) (*core.Plan, *simulate.Sampler) {
	t.Helper()
	sampler, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	research, _, err := sampler.ResearchArchive(rng.New(seed), nR, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Design(research, core.Options{NQ: 50})
	if err != nil {
		t.Fatal(err)
	}
	return plan, sampler
}

func TestNewValidation(t *testing.T) {
	plan, _ := designPaperPlan(t, 1, 600)
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := New(plan, Options{Window: 4}); err == nil {
		t.Error("tiny window accepted")
	}
	if _, err := New(plan, Options{Alpha: 2}); err == nil {
		t.Error("bad alpha accepted")
	}
}

func TestObserveValidation(t *testing.T) {
	plan, _ := designPaperPlan(t, 2, 600)
	m, err := New(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe(dataset.Record{X: []float64{0, 0}, S: 7, U: 0}); err == nil {
		t.Error("bad s accepted")
	}
	if _, err := m.Observe(dataset.Record{X: []float64{0}, S: 0, U: 0}); err == nil {
		t.Error("wrong dimension accepted")
	}
	// Unknown-s records are ignored, not errors.
	alarms, err := m.Observe(dataset.Record{X: []float64{0, 0}, S: dataset.SUnknown, U: 0})
	if err != nil || alarms != nil {
		t.Errorf("unknown s: got (%v, %v)", alarms, err)
	}
}

func TestStationaryStreamStaysQuiet(t *testing.T) {
	plan, sampler := designPaperPlan(t, 3, 1000)
	m, err := New(plan, Options{Window: 256})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	total := 0
	for i := 0; i < 20000; i++ {
		alarms, err := m.Observe(sampler.Draw(r))
		if err != nil {
			t.Fatal(err)
		}
		total += len(alarms)
	}
	// The reference pmfs carry smoothing and quantization bias, so allow a
	// rare excursion; a stationary stream must not page anyone.
	if total > 2 {
		t.Errorf("stationary stream raised %d alarms over 20k records", total)
	}
}

func TestDriftingStreamAlarms(t *testing.T) {
	plan, _ := designPaperPlan(t, 5, 1000)
	m, err := New(plan, Options{Window: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Drift the (u=0, s=1) group by 1.5σ via the drift stream substrate.
	ds, err := simulate.NewDriftStream(simulate.Paper(), rng.New(6), simulate.Drift{
		Group: map[dataset.Group][]float64{
			{U: 0, S: 1}: {1.5, 1.5},
		},
	}, 12000)
	if err != nil {
		t.Fatal(err)
	}
	var fired []Alarm
	for {
		rec, err := ds.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		alarms, err := m.Observe(rec)
		if err != nil {
			t.Fatal(err)
		}
		fired = append(fired, alarms...)
	}
	if len(fired) == 0 {
		t.Fatal("drifting stream raised no alarms")
	}
	// The drift is localized: late alarms (full drift) must point at the
	// drifted group. Early windows straddle the ramp, so check the last.
	last := fired[len(fired)-1]
	if last.U != 0 || last.S != 1 {
		t.Errorf("final alarm points at (u=%d,s=%d), want (0,1): %v", last.U, last.S, last)
	}
	if m.Fired() != int64(len(fired)) {
		t.Errorf("Fired() = %d, want %d", m.Fired(), len(fired))
	}
	// Cooldown keeps the alarm rate sane: far fewer alarms than records.
	if len(fired) > 200 {
		t.Errorf("%d alarms for 12k drifting records; cooldown broken", len(fired))
	}
}

func TestSnapshotDriftScores(t *testing.T) {
	plan, sampler := designPaperPlan(t, 12, 1000)
	m, err := New(plan, Options{Window: 256})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Snapshot(); s.MaxKSRatio != 0 || s.MaxPSIRatio != 0 {
		t.Errorf("empty monitor has nonzero drift scores: %+v", s)
	}
	// A stationary stream must populate the scores (windows fill, checks
	// run) while keeping them below the alarm bound.
	r := rng.New(13)
	for i := 0; i < 4000; i++ {
		if _, err := m.Observe(sampler.Draw(r)); err != nil {
			t.Fatal(err)
		}
	}
	quiet := m.Snapshot()
	if quiet.FullWindows == 0 {
		t.Fatal("no windows filled after 4000 records")
	}
	if quiet.MaxKSRatio <= 0 || quiet.MaxPSIRatio <= 0 {
		t.Errorf("filled windows left drift scores at zero: %+v", quiet)
	}
	if quiet.MaxKSRatio >= 1 {
		t.Errorf("stationary stream has alarming KS ratio %v", quiet.MaxKSRatio)
	}
	// A fully-drifted stream must push the KS score past the alarm bound.
	ds, err := simulate.NewDriftStream(simulate.Paper(), rng.New(14), simulate.Drift{
		Group: map[dataset.Group][]float64{
			{U: 0, S: 1}: {2.0, 2.0},
		},
	}, 8000)
	if err != nil {
		t.Fatal(err)
	}
	for {
		rec, err := ds.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Observe(rec); err != nil {
			t.Fatal(err)
		}
	}
	drifted := m.Snapshot()
	if drifted.MaxKSRatio <= 1 {
		t.Errorf("fully drifted stream left MaxKSRatio at %v, want > 1", drifted.MaxKSRatio)
	}
	if drifted.MaxKSRatio <= quiet.MaxKSRatio {
		t.Errorf("drift did not raise the KS score (%v → %v)", quiet.MaxKSRatio, drifted.MaxKSRatio)
	}
}

func TestAlarmStringRenders(t *testing.T) {
	a := Alarm{U: 1, S: 0, K: 1, Kind: AlarmPSI, Stat: 0.31, Threshold: 0.2, Window: 256, Seen: 4096}
	s := a.String()
	if s == "" {
		t.Fatal("empty alarm string")
	}
	for _, want := range []string{"u=1", "s=0", "k=1", "psi"} {
		if !contains(s, want) {
			t.Errorf("alarm string %q missing %q", s, want)
		}
	}
	if AlarmKS.String() != "ks" {
		t.Errorf("AlarmKS renders as %q", AlarmKS.String())
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestStoppingRuleConvergesBeforeExhaustion(t *testing.T) {
	sampler, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	research, _, err := sampler.ResearchArchive(rng.New(7), 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ResearchStoppingRule(research, StoppingOptions{Batch: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("rule never converged on 3000 Gaussian records: %+v", res.Trace)
	}
	if res.NStop >= 3000 {
		t.Errorf("NStop = %d, want convergence before exhaustion", res.NStop)
	}
	if res.NStop < 200 {
		t.Errorf("NStop = %d suspiciously early for 4-group KDE convergence", res.NStop)
	}
	// The trace's deltas must shrink overall: compare first vs last.
	if len(res.Trace) < 2 {
		t.Fatalf("trace too short: %+v", res.Trace)
	}
	if res.Trace[len(res.Trace)-1].Delta >= res.Trace[0].Delta {
		t.Errorf("deltas did not shrink: first %v, last %v",
			res.Trace[0].Delta, res.Trace[len(res.Trace)-1].Delta)
	}
}

func TestStoppingRuleToleranceMonotone(t *testing.T) {
	sampler, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	research, _, err := sampler.ResearchArchive(rng.New(8), 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := ResearchStoppingRule(research, StoppingOptions{Batch: 100, Tol: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := ResearchStoppingRule(research, StoppingOptions{Batch: 100, Tol: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if loose.NStop > tight.NStop {
		t.Errorf("loose tolerance stopped later (%d) than tight (%d)", loose.NStop, tight.NStop)
	}
}

func TestStoppingRuleValidation(t *testing.T) {
	if _, err := ResearchStoppingRule(nil, StoppingOptions{}); err == nil {
		t.Error("nil table accepted")
	}
	sampler, _ := simulate.NewSampler(simulate.Paper())
	research, _, _ := sampler.ResearchArchive(rng.New(9), 200, 0)
	if _, err := ResearchStoppingRule(research, StoppingOptions{Tol: -1}); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := ResearchStoppingRule(research, StoppingOptions{Batch: -5}); err == nil {
		t.Error("negative batch accepted")
	}
}

func TestStoppingRuleNonConvergent(t *testing.T) {
	// Too little data for the tight tolerance: the rule must run out and
	// report Converged = false with NStop = len.
	sampler, _ := simulate.NewSampler(simulate.Paper())
	research, _, _ := sampler.ResearchArchive(rng.New(10), 250, 0)
	res, err := ResearchStoppingRule(research, StoppingOptions{Batch: 50, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("impossible tolerance reported convergence")
	}
	if res.NStop != 250 {
		t.Errorf("NStop = %d, want 250", res.NStop)
	}
}

func TestDitherQuietsAtomicFeatures(t *testing.T) {
	// Adult-like synthetic features are integer-valued with a heavy
	// 40-hours atom; the KDE-smoothed reference then disagrees with the
	// raw empirical window systematically. Dithering the incoming values
	// by the design bandwidth (mirroring the repair path's KernelDither)
	// must remove most of those false alarms. Scott's bandwidth is used
	// because Silverman's IQR term collapses on atom-heavy columns.
	r := rng.New(11)
	research, _, err := adult.Synthesize(r, 3000)
	if err != nil {
		t.Fatal(err)
	}
	archive, _, err := adult.Synthesize(r.Split(1), 6000)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Design(research, core.Options{NQ: 100, Bandwidth: kde.Scott})
	if err != nil {
		t.Fatal(err)
	}
	count := func(dither bool) int64 {
		m, err := New(plan, Options{Window: 256, Dither: dither})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range archive.Records() {
			if _, err := m.Observe(rec); err != nil {
				t.Fatal(err)
			}
		}
		return m.Fired()
	}
	raw := count(false)
	dithered := count(true)
	if dithered > 3 {
		t.Errorf("dithered monitor raised %d alarms on an iid atomic stream", dithered)
	}
	if raw <= dithered {
		t.Errorf("dithering did not reduce alarms (%d → %d)", raw, dithered)
	}
}
