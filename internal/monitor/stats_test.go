package monitor

import (
	"math"
	"testing"

	"otfair/internal/rng"
	"otfair/internal/stat"
)

func TestKSStatisticIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	d, err := KSStatistic(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-12 {
		t.Errorf("KS(a,a) = %v", d)
	}
}

func TestKSStatisticDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	d, err := KSStatistic(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("KS(disjoint) = %v, want 1", d)
	}
}

func TestKSStatisticKnownValue(t *testing.T) {
	// a = {1,2}, b = {1.5}: after walking, max gap is 1/2.
	d, err := KSStatistic([]float64{1, 2}, []float64{1.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-12 {
		t.Errorf("KS = %v, want 0.5", d)
	}
}

func TestKSStatisticErrors(t *testing.T) {
	if _, err := KSStatistic(nil, []float64{1}); err == nil {
		t.Error("empty a accepted")
	}
	if _, err := KSStatistic([]float64{1}, nil); err == nil {
		t.Error("empty b accepted")
	}
}

func TestKSSameDistributionStaysUnderCritical(t *testing.T) {
	r := rng.New(1)
	reject := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		a := make([]float64, 200)
		b := make([]float64, 200)
		for j := range a {
			a[j] = r.Norm()
			b[j] = r.Norm()
		}
		d, err := KSStatistic(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d > KSCritical(len(a), len(b), 0.01) {
			reject++
		}
	}
	// Nominal level 1%; allow generous slack on 100 trials.
	if reject > 5 {
		t.Errorf("rejected %d/%d same-distribution pairs at α=0.01", reject, trials)
	}
}

func TestKSShiftedDistributionRejects(t *testing.T) {
	r := rng.New(2)
	a := make([]float64, 300)
	b := make([]float64, 300)
	for j := range a {
		a[j] = r.Norm()
		b[j] = r.Normal(1.0, 1) // 1σ mean shift
	}
	d, err := KSStatistic(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d <= KSCritical(len(a), len(b), 0.01) {
		t.Errorf("1σ shift not detected: KS=%v crit=%v", d, KSCritical(300, 300, 0.01))
	}
}

func TestKSCriticalEdgeCases(t *testing.T) {
	if !math.IsInf(KSCritical(0, 10, 0.05), 1) {
		t.Error("n=0 must be infinite")
	}
	if !math.IsInf(KSCritical(10, 10, 0), 1) {
		t.Error("alpha=0 must be infinite")
	}
	// Monotone in n: more data, tighter threshold.
	if KSCritical(100, 100, 0.05) <= KSCritical(400, 400, 0.05) {
		t.Error("critical value must shrink with n")
	}
	// Monotone in alpha: stricter level, wider threshold.
	if KSCritical(100, 100, 0.01) <= KSCritical(100, 100, 0.1) {
		t.Error("critical value must grow as alpha falls")
	}
}

func TestKSAgainstPMFExactMatch(t *testing.T) {
	// Sample drawn exactly at grid atoms with matching frequencies.
	grid := []float64{0, 1, 2, 3}
	pmf := []float64{0.25, 0.25, 0.25, 0.25}
	sample := []float64{0, 1, 2, 3}
	d, err := KSAgainstPMF(sample, grid, pmf)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-12 {
		t.Errorf("exact match KS = %v", d)
	}
}

func TestKSAgainstPMFShiftDetected(t *testing.T) {
	r := rng.New(3)
	grid := stat.Linspace(-4, 4, 81)
	pmf := make([]float64, len(grid))
	for i, g := range grid {
		pmf[i] = math.Exp(-g * g / 2)
	}
	norm, err := stat.Normalize(pmf)
	if err != nil {
		t.Fatal(err)
	}
	stationary := make([]float64, 400)
	shifted := make([]float64, 400)
	for i := range stationary {
		stationary[i] = r.Norm()
		shifted[i] = r.Normal(1.5, 1)
	}
	dStat, err := KSAgainstPMF(stationary, grid, norm)
	if err != nil {
		t.Fatal(err)
	}
	dShift, err := KSAgainstPMF(shifted, grid, norm)
	if err != nil {
		t.Fatal(err)
	}
	crit := KSOneSampleCritical(400, 0.01)
	if dStat > crit {
		t.Errorf("stationary sample rejected: KS=%v crit=%v", dStat, crit)
	}
	if dShift <= crit {
		t.Errorf("1.5σ shift missed: KS=%v crit=%v", dShift, crit)
	}
}

func TestKSAgainstPMFErrors(t *testing.T) {
	if _, err := KSAgainstPMF(nil, []float64{0}, []float64{1}); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := KSAgainstPMF([]float64{0}, []float64{0, 1}, []float64{1}); err == nil {
		t.Error("grid/pmf mismatch accepted")
	}
}

func TestPSIIdenticalAndShifted(t *testing.T) {
	p := []float64{0.2, 0.3, 0.5}
	psi, err := PSI(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if psi > 1e-12 {
		t.Errorf("PSI(p,p) = %v", psi)
	}
	q := []float64{0.5, 0.3, 0.2}
	psi, err = PSI(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if psi < 0.2 {
		t.Errorf("PSI of a hard swap = %v, want > 0.2", psi)
	}
	if _, err := PSI(p, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPSINonNegative(t *testing.T) {
	// PSI is a symmetrized KL-style quantity: non-negative for any pair.
	r := rng.New(4)
	for trial := 0; trial < 50; trial++ {
		p := make([]float64, 10)
		q := make([]float64, 10)
		for i := range p {
			p[i] = r.Float64()
			q[i] = r.Float64()
		}
		pn, _ := stat.Normalize(p)
		qn, _ := stat.Normalize(q)
		psi, err := PSI(pn, qn)
		if err != nil {
			t.Fatal(err)
		}
		if psi < 0 {
			t.Fatalf("PSI = %v < 0 for %v vs %v", psi, pn, qn)
		}
	}
}

func TestBinSample(t *testing.T) {
	grid := []float64{0, 1, 2}
	pmf, err := BinSample([]float64{-1, 0, 0.5, 1, 1.5, 99}, grid)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.0 / 6, 2.0 / 6, 2.0 / 6}
	for i := range want {
		if math.Abs(pmf[i]-want[i]) > 1e-12 {
			t.Errorf("bin %d = %v, want %v", i, pmf[i], want[i])
		}
	}
	if _, err := BinSample(nil, grid); err == nil {
		t.Error("empty sample accepted")
	}
}
