package monitor

import (
	"math"
	"testing"
	"testing/quick"
)

// sanitize maps arbitrary float64s into finite values so quick-generated
// samples are valid inputs.
func sanitize(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		out = append(out, math.Mod(x, 1e6))
	}
	return out
}

func TestKSStatisticRangeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		as, bs := sanitize(a), sanitize(b)
		if len(as) == 0 || len(bs) == 0 {
			return true
		}
		d, err := KSStatistic(as, bs)
		if err != nil {
			return false
		}
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKSStatisticSymmetryProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		as, bs := sanitize(a), sanitize(b)
		if len(as) == 0 || len(bs) == 0 {
			return true
		}
		d1, err1 := KSStatistic(as, bs)
		d2, err2 := KSStatistic(bs, as)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKSStatisticSelfZeroProperty(t *testing.T) {
	f := func(a []float64) bool {
		as := sanitize(a)
		if len(as) == 0 {
			return true
		}
		d, err := KSStatistic(as, as)
		return err == nil && d < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPSINonNegativeProperty(t *testing.T) {
	f := func(raw1, raw2 []float64) bool {
		if len(raw1) == 0 || len(raw1) != len(raw2) {
			return true
		}
		p := make([]float64, len(raw1))
		q := make([]float64, len(raw2))
		var sp, sq float64
		for i := range raw1 {
			p[i] = math.Abs(math.Mod(raw1[i], 100))
			q[i] = math.Abs(math.Mod(raw2[i], 100))
			if math.IsNaN(p[i]) {
				p[i] = 0
			}
			if math.IsNaN(q[i]) {
				q[i] = 0
			}
			sp += p[i]
			sq += q[i]
		}
		if sp == 0 || sq == 0 {
			return true
		}
		for i := range p {
			p[i] /= sp
			q[i] /= sq
		}
		psi, err := PSI(p, q)
		return err == nil && psi >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBinSampleIsPMFProperty(t *testing.T) {
	f := func(sample []float64, gridSeed uint8) bool {
		xs := sanitize(sample)
		if len(xs) == 0 {
			return true
		}
		n := int(gridSeed%20) + 2
		grid := make([]float64, n)
		for i := range grid {
			grid[i] = float64(i)
		}
		pmf, err := BinSample(xs, grid)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range pmf {
			if p < 0 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
