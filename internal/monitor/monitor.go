// Package monitor guards the stationarity assumption the paper's deployment
// mode rests on (Section IV requirement 2 and the Section VI discussion):
// repair plans are designed once on research data and then applied to
// unbounded archival torrents, which is only sound while the torrent keeps
// drawing from the design-time population. The stream monitor compares a
// rolling window of incoming feature values against the plan's own
// interpolated marginals (one-sample KS plus PSI) per (u,s,feature) cell
// and raises alarms when the plan has gone stale; the stopping rule answers
// the complementary design-time question — how much research data is enough
// (Section VI: "stopping rules for learning of the marginals").
package monitor

import (
	"errors"
	"fmt"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/kde"
	"otfair/internal/rng"
)

// AlarmKind labels which statistic tripped.
type AlarmKind int

const (
	// AlarmKS marks a one-sample Kolmogorov–Smirnov rejection.
	AlarmKS AlarmKind = iota
	// AlarmPSI marks a population-stability-index excursion.
	AlarmPSI
)

// String names the alarm kind.
func (k AlarmKind) String() string {
	if k == AlarmPSI {
		return "psi"
	}
	return "ks"
}

// Alarm reports one stale cell: the (u,s,feature) whose incoming window no
// longer matches the design-time marginal.
type Alarm struct {
	// U, S, K locate the cell.
	U, S, K int
	// Kind is the statistic that tripped.
	Kind AlarmKind
	// Stat is the observed statistic and Threshold the bound it crossed.
	Stat, Threshold float64
	// Window is the number of observations the statistic was computed on.
	Window int
	// Seen is the total number of records observed when the alarm fired.
	Seen int64
}

// String renders an alarm for logs.
func (a Alarm) String() string {
	return fmt.Sprintf("monitor: drift in (u=%d,s=%d,k=%d): %s=%.4f > %.4f (window %d, after %d records)",
		a.U, a.S, a.K, a.Kind, a.Stat, a.Threshold, a.Window, a.Seen)
}

// Options configures the stream monitor.
type Options struct {
	// Window is the per-cell rolling window length (default 256).
	Window int
	// CheckEvery runs the statistics once per this many observations in a
	// cell after its window first fills (default Window/4).
	CheckEvery int
	// Alpha is the KS test level (default 0.001). The reference marginal is
	// itself estimated from finite research data with KDE smoothing and
	// grid quantization, so the operating level is approximate; the default
	// is conservative to keep stationary streams quiet.
	Alpha float64
	// PSIWarn is the PSI alarm threshold (default 0.25, the upper edge of
	// the industry "major shift" convention — again conservative because
	// the expected-bin masses carry estimation error).
	PSIWarn float64
	// Cooldown suppresses repeat alarms from one cell for this many
	// observations after it fires (default Window), so a persistent drift
	// produces a report per window rather than per record.
	Cooldown int
	// Dither perturbs each incoming value by the cell's design bandwidth
	// before windowing, mirroring core.RepairOptions.KernelDither: the
	// reference pmfs are KDE-smoothed, so atomic or integer features (e.g.
	// Adult's 40-hours spike) otherwise register a permanent KS gap of
	// about half the atom's mass and page forever. Dithered inputs are
	// distributionally consistent with the smoothed reference. Off by
	// default; turn it on whenever the repair itself runs with dithering.
	Dither bool
	// Seed drives the dithering noise (default 1; only used with Dither).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Window == 0 {
		o.Window = 256
	}
	if o.CheckEvery == 0 {
		o.CheckEvery = o.Window / 4
		if o.CheckEvery == 0 {
			o.CheckEvery = 1
		}
	}
	if o.Alpha == 0 {
		o.Alpha = 0.001
	}
	if o.PSIWarn == 0 {
		o.PSIWarn = 0.25
	}
	if o.Cooldown == 0 {
		o.Cooldown = o.Window
	}
	return o
}

// cellState is one (u,s,k) rolling window.
type cellState struct {
	ring     []float64
	n        int   // filled length (≤ cap)
	next     int   // ring write position
	sinceChk int   // observations since last check
	cooldown int   // observations to skip alarming for
	observed int64 // lifetime observations
	// ksRatio and psiRatio are the statistic/threshold ratios of the most
	// recent check — a continuous drift score (≥ 1 means alarming), kept
	// even when no alarm fires so dashboards and the drift-watch loop can
	// see drift building and, after a recalibration, receding.
	ksRatio, psiRatio float64
}

// psiRef is the coarse-binned reference one cell's PSI compares against:
// roughly equal-expected-mass bins, the industry convention that keeps the
// index stable at rolling-window sample sizes (fine 50-state bins put ~5
// observations in each and the index never settles).
type psiRef struct {
	// edges are right-closed upper bounds in feature units; the last bin is
	// unbounded.
	edges    []float64
	expected []float64
}

// Monitor watches a record stream against a designed plan. Not safe for
// concurrent use.
type Monitor struct {
	plan  *core.Plan
	opts  Options
	cells map[[3]int]*cellState
	psi   map[[3]int]*psiRef
	rng   *rng.RNG // nil unless Options.Dither
	seen  int64
	fired int64
}

// New builds a monitor for the plan the deployment repairs with.
func New(plan *core.Plan, opts Options) (*Monitor, error) {
	if plan == nil {
		return nil, errors.New("monitor: nil plan")
	}
	opts = opts.withDefaults()
	if opts.Window < 8 {
		return nil, fmt.Errorf("monitor: window %d too small (minimum 8)", opts.Window)
	}
	if opts.Alpha <= 0 || opts.Alpha >= 1 {
		return nil, fmt.Errorf("monitor: alpha %v outside (0,1)", opts.Alpha)
	}
	m := &Monitor{
		plan:  plan,
		opts:  opts,
		cells: make(map[[3]int]*cellState),
		psi:   make(map[[3]int]*psiRef),
	}
	if opts.Dither {
		seed := opts.Seed
		if seed == 0 {
			seed = 1
		}
		m.rng = rng.New(seed)
	}
	return m, nil
}

// Seen returns the number of records observed.
func (m *Monitor) Seen() int64 { return m.seen }

// Fired returns the number of alarms raised so far.
func (m *Monitor) Fired() int64 { return m.fired }

// Summary is a point-in-time view of the monitor for serving dashboards
// (the /v1/metrics endpoint of cmd/fairserved) and logs.
type Summary struct {
	// Seen and Fired mirror the cumulative counters.
	Seen, Fired int64
	// WatchedCells is the number of (u,s,feature) cells with any
	// observations; FullWindows counts those whose rolling window has
	// filled, i.e. cells the statistics actually run on.
	WatchedCells, FullWindows int
	// MaxKSRatio and MaxPSIRatio are the worst statistic/threshold ratios
	// across cells at their most recent checks — continuous drift scores
	// where a value ≥ 1 means that statistic is past its alarm bound. Zero
	// until some cell's window has filled and been checked.
	MaxKSRatio, MaxPSIRatio float64
}

// Snapshot summarizes the monitor's current state. Like every Monitor
// method it must not race Observe; callers serialize access.
func (m *Monitor) Snapshot() Summary {
	s := Summary{Seen: m.seen, Fired: m.fired, WatchedCells: len(m.cells)}
	for _, cs := range m.cells {
		if cs.n == len(cs.ring) {
			s.FullWindows++
		}
		if cs.ksRatio > s.MaxKSRatio {
			s.MaxKSRatio = cs.ksRatio
		}
		if cs.psiRatio > s.MaxPSIRatio {
			s.MaxPSIRatio = cs.psiRatio
		}
	}
	return s
}

// Observe ingests one labelled record and returns any alarms it triggers
// (usually none). Records with unknown s are ignored: the monitor watches
// the same (u,s,k)-cells the plans are indexed by.
func (m *Monitor) Observe(rec dataset.Record) ([]Alarm, error) {
	if rec.S == dataset.SUnknown {
		return nil, nil
	}
	if rec.S != 0 && rec.S != 1 || rec.U != 0 && rec.U != 1 {
		return nil, fmt.Errorf("monitor: invalid labels (s=%d, u=%d)", rec.S, rec.U)
	}
	if len(rec.X) != m.plan.Dim {
		return nil, fmt.Errorf("monitor: record has %d features, want %d", len(rec.X), m.plan.Dim)
	}
	m.seen++
	var alarms []Alarm
	for k, x := range rec.X {
		key := [3]int{rec.U, rec.S, k}
		cs := m.cells[key]
		if cs == nil {
			cs = &cellState{ring: make([]float64, m.opts.Window)}
			m.cells[key] = cs
		}
		if m.rng != nil {
			cell := m.plan.Cell(rec.U, k)
			if h := cell.H[rec.S]; h > 0 && !cell.Degenerate {
				x += h * kde.Sample(m.plan.Opts.Kernel, m.rng)
			}
		}
		cs.ring[cs.next] = x
		cs.next = (cs.next + 1) % len(cs.ring)
		if cs.n < len(cs.ring) {
			cs.n++
		}
		cs.observed++
		cs.sinceChk++
		if cs.cooldown > 0 {
			cs.cooldown--
			continue
		}
		if cs.n < len(cs.ring) || cs.sinceChk < m.opts.CheckEvery {
			continue
		}
		cs.sinceChk = 0
		a, err := m.check(rec.U, rec.S, k, cs)
		if err != nil {
			return nil, err
		}
		if len(a) > 0 {
			cs.cooldown = m.opts.Cooldown
			m.fired += int64(len(a))
			alarms = append(alarms, a...)
		}
	}
	return alarms, nil
}

// check runs both statistics for one full window.
func (m *Monitor) check(u, s, k int, cs *cellState) ([]Alarm, error) {
	cell := m.plan.Cell(u, k)
	if cell.Degenerate {
		return nil, nil
	}
	window := make([]float64, cs.n)
	copy(window, cs.ring[:cs.n])

	var alarms []Alarm
	ks, err := KSAgainstPMF(window, cell.Q, cell.PMF[s])
	if err != nil {
		return nil, err
	}
	// The reference marginal was estimated from n_{R,u,s} research points,
	// so it carries sampling error of its own: the threshold is the
	// two-sample critical value with the research group as the second
	// sample. Without recorded group sizes, fall back to the (stricter)
	// one-sample bound.
	crit := KSOneSampleCritical(cs.n, m.opts.Alpha)
	if nRef := m.plan.GroupSizes[dataset.Group{U: u, S: s}]; nRef > 0 {
		crit = KSCritical(nRef, cs.n, m.opts.Alpha)
	}
	if crit > 0 {
		cs.ksRatio = ks / crit
	}
	if ks > crit {
		alarms = append(alarms, Alarm{U: u, S: s, K: k, Kind: AlarmKS, Stat: ks, Threshold: crit, Window: cs.n, Seen: m.seen})
	}
	ref := m.psiRef(u, s, k, cell)
	observed := binByEdges(window, ref.edges)
	psi, err := PSI(ref.expected, observed)
	if err != nil {
		return nil, err
	}
	// Under the null, PSI on B bins behaves like a scaled χ² with
	// expectation ≈ B·(1/n_window + 1/n_ref): both the window and the
	// research-estimated reference contribute sampling noise. Lift the
	// alarm threshold by twice that expectation so small research groups
	// do not page on their own estimation error.
	thr := m.opts.PSIWarn + 2*float64(psiBinCount)/float64(cs.n)
	if nRef := m.plan.GroupSizes[dataset.Group{U: u, S: s}]; nRef > 0 {
		thr += 2 * float64(psiBinCount) / float64(nRef)
	}
	if thr > 0 {
		cs.psiRatio = psi / thr
	}
	if psi > thr {
		alarms = append(alarms, Alarm{U: u, S: s, K: k, Kind: AlarmPSI, Stat: psi, Threshold: thr, Window: cs.n, Seen: m.seen})
	}
	return alarms, nil
}

// psiBinCount is the number of coarse PSI bins (the industry-standard
// decile convention).
const psiBinCount = 10

// psiRef builds (and caches) the coarse equal-mass binning of one cell's
// design pmf.
func (m *Monitor) psiRef(u, s, k int, cell *core.Cell) *psiRef {
	key := [3]int{u, s, k}
	if ref := m.psi[key]; ref != nil {
		return ref
	}
	ref := &psiRef{}
	cum, binMass := 0.0, 0.0
	bin := 1
	for i, p := range cell.PMF[s] {
		cum += p
		binMass += p
		if cum >= float64(bin)/psiBinCount && bin < psiBinCount && i < len(cell.Q)-1 {
			ref.edges = append(ref.edges, cell.Q[i])
			ref.expected = append(ref.expected, binMass)
			binMass = 0
			bin++
		}
	}
	ref.expected = append(ref.expected, binMass)
	m.psi[key] = ref
	return ref
}

// binByEdges histograms a sample into the right-closed bins bounded by
// edges (last bin unbounded) and normalizes to a pmf.
func binByEdges(sample, edges []float64) []float64 {
	counts := make([]float64, len(edges)+1)
	for _, x := range sample {
		b := 0
		for b < len(edges) && x > edges[b] {
			b++
		}
		counts[b]++
	}
	for i := range counts {
		counts[i] /= float64(len(sample))
	}
	return counts
}
