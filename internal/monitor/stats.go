package monitor

import (
	"errors"
	"math"
	"sort"
)

// Two-sample and one-sample distribution-shift statistics used by the
// stream monitor. All operate on raw samples or binned pmfs — no external
// dependencies, following the repository's stdlib-only rule.

// KSStatistic computes the two-sample Kolmogorov–Smirnov statistic
// sup_x |F_a(x) − F_b(x)| by the classic merge walk.
func KSStatistic(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, errors.New("monitor: KS needs two non-empty samples")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	i, j := 0, 0
	d := 0.0
	for i < len(as) && j < len(bs) {
		// Step past the smaller value in both samples at once so ties do
		// not register a spurious CDF gap.
		x := as[i]
		if bs[j] < x {
			x = bs[j]
		}
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if diff > d {
			d = diff
		}
	}
	return d, nil
}

// KSCritical returns the approximate two-sample KS rejection threshold at
// level alpha: c(α)·√((n+m)/(n·m)) with c(α) = √(−ln(α/2)/2). Valid for
// moderate sample sizes, which is all a rolling window provides.
func KSCritical(n, m int, alpha float64) float64 {
	if n <= 0 || m <= 0 || alpha <= 0 || alpha >= 1 {
		return math.Inf(1)
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(n+m)/(float64(n)*float64(m)))
}

// KSAgainstPMF computes the one-sample KS statistic between an empirical
// sample and a discrete reference distribution given as (ascending grid,
// pmf): sup |F̂_sample(x) − F_ref(x)| over the grid states. The reference
// CDF steps at grid points, so evaluating at them (and just before them)
// captures the supremum.
func KSAgainstPMF(sample, grid, pmf []float64) (float64, error) {
	if len(sample) == 0 {
		return 0, errors.New("monitor: empty sample")
	}
	if len(grid) != len(pmf) || len(grid) == 0 {
		return 0, errors.New("monitor: grid/pmf mismatch")
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	empAt := func(x float64) float64 {
		// Fraction of sample ≤ x.
		return float64(sort.SearchFloat64s(xs, math.Nextafter(x, math.Inf(1)))) / float64(len(xs))
	}
	d := 0.0
	cum := 0.0
	for i, g := range grid {
		// Just before the atom: reference CDF is cum, empirical at g⁻.
		before := float64(sort.SearchFloat64s(xs, g)) / float64(len(xs))
		if diff := math.Abs(before - cum); diff > d {
			d = diff
		}
		cum += pmf[i]
		if diff := math.Abs(empAt(g) - cum); diff > d {
			d = diff
		}
	}
	return d, nil
}

// KSOneSampleCritical is the one-sample KS threshold √(−ln(α/2)/2)/√n.
func KSOneSampleCritical(n int, alpha float64) float64 {
	if n <= 0 || alpha <= 0 || alpha >= 1 {
		return math.Inf(1)
	}
	return math.Sqrt(-math.Log(alpha/2)/2) / math.Sqrt(float64(n))
}

// PSI computes the population stability index between an expected and an
// actual pmf on shared bins:
//
//	PSI = Σ_i (actual_i − expected_i)·ln(actual_i / expected_i).
//
// Industry convention reads PSI < 0.1 as stable, 0.1–0.2 as moderate shift
// and > 0.2 as major shift. Bins are floored to keep the logs finite.
func PSI(expected, actual []float64) (float64, error) {
	if len(expected) != len(actual) || len(expected) == 0 {
		return 0, errors.New("monitor: PSI needs matching non-empty pmfs")
	}
	const floor = 1e-6
	psi := 0.0
	for i := range expected {
		e := math.Max(expected[i], floor)
		a := math.Max(actual[i], floor)
		psi += (a - e) * math.Log(a/e)
	}
	return psi, nil
}

// BinSample histograms a sample onto the half-open cells of an ascending
// grid (values below grid[0] land in bin 0, above grid[n-1] in bin n-1) and
// normalizes to a pmf — the binning PSI consumes.
func BinSample(sample, grid []float64) ([]float64, error) {
	if len(sample) == 0 || len(grid) == 0 {
		return nil, errors.New("monitor: empty sample or grid")
	}
	counts := make([]float64, len(grid))
	for _, x := range sample {
		i := sort.SearchFloat64s(grid, x)
		if i >= len(grid) {
			i = len(grid) - 1
		}
		counts[i]++
	}
	for i := range counts {
		counts[i] /= float64(len(sample))
	}
	return counts, nil
}
