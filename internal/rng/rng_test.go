package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 coincide on %d/100 draws", same)
	}
}

func TestSplitIndependentOfStreamPosition(t *testing.T) {
	a := New(7)
	b := New(7)
	// Advance a, not b: Split must still agree.
	for i := 0; i < 50; i++ {
		a.Float64()
	}
	ca := a.Split(3)
	cb := b.Split(3)
	for i := 0; i < 100; i++ {
		if ca.Float64() != cb.Float64() {
			t.Fatalf("split streams diverged at draw %d", i)
		}
	}
}

func TestSplitChildrenDecorrelated(t *testing.T) {
	parent := New(99)
	c0 := parent.Split(0)
	c1 := parent.Split(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if c0.Float64() == c1.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams coincide on %d/1000 draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform(-3,7) = %v out of range", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(2, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("mean = %v, want ~2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("variance = %v, want ~9", variance)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	f := float64(hits) / n
	if math.Abs(f-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", f)
	}
}

func TestBernoulliClamps(t *testing.T) {
	r := New(1)
	if r.Bernoulli(-0.5) {
		t.Error("Bernoulli(-0.5) returned true")
	}
	if !r.Bernoulli(1.5) {
		t.Error("Bernoulli(1.5) returned false")
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	r := New(17)
	w := []float64{1, 2, 3, 4}
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	for i, c := range counts {
		want := w[i] / 10
		got := float64(c) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d frequency = %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	r := New(1)
	for _, w := range [][]float64{{0, 0}, {-1, 2}, {math.NaN(), 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", w)
				}
			}()
			r.Categorical(w)
		}()
	}
}

func TestCategoricalSkipsZeroWeights(t *testing.T) {
	r := New(23)
	w := []float64{0, 1, 0, 0}
	for i := 0; i < 1000; i++ {
		if got := r.Categorical(w); got != 1 {
			t.Fatalf("Categorical([0,1,0,0]) = %d", got)
		}
	}
}

func TestMultinomialSumsToN(t *testing.T) {
	r := New(29)
	err := quick.Check(func(n uint8, a, b, c uint8) bool {
		w := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		counts := r.Multinomial(int(n), w)
		total := 0
		for _, v := range counts {
			if v < 0 {
				return false
			}
			total += v
		}
		return total == int(n)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMultinomialFrequencies(t *testing.T) {
	r := New(31)
	w := []float64{0.5, 0.5}
	counts := r.Multinomial(100000, w)
	f := float64(counts[0]) / 100000
	if math.Abs(f-0.5) > 0.01 {
		t.Errorf("Multinomial split = %v, want ~0.5", f)
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(37)
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d", got)
	}
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	r := New(41)
	w := []float64{0.1, 0.0, 0.4, 0.5}
	a := NewAlias(w)
	counts := make([]int, len(w))
	const n = 200000
	for i := 0; i < n; i++ {
		counts[a.Draw(r)]++
	}
	for i := range w {
		got := float64(counts[i]) / n
		if math.Abs(got-w[i]) > 0.01 {
			t.Errorf("alias category %d frequency = %v, want %v", i, got, w[i])
		}
	}
}

func TestAliasSingleCategory(t *testing.T) {
	r := New(43)
	a := NewAlias([]float64{3.5})
	for i := 0; i < 100; i++ {
		if a.Draw(r) != 0 {
			t.Fatal("single-category alias drew nonzero index")
		}
	}
}

func TestAliasZeroMassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAlias with zero mass did not panic")
		}
	}()
	NewAlias([]float64{0, 0, 0})
}

func TestAliasAgreesWithCategorical(t *testing.T) {
	// Property: alias-table frequencies match inversion-sampling frequencies
	// within Monte-Carlo noise on random weight vectors.
	r := New(47)
	for trial := 0; trial < 5; trial++ {
		n := 2 + r.IntN(20)
		w := make([]float64, n)
		for i := range w {
			w[i] = r.Float64()
		}
		total := 0.0
		for _, wi := range w {
			total += wi
		}
		a := NewAlias(w)
		countsA := make([]int, n)
		countsC := make([]int, n)
		const draws = 50000
		for i := 0; i < draws; i++ {
			countsA[a.Draw(r)]++
			countsC[r.Categorical(w)]++
		}
		for i := range w {
			fa := float64(countsA[i]) / draws
			fc := float64(countsC[i]) / draws
			want := w[i] / total
			if math.Abs(fa-want) > 0.02 || math.Abs(fc-want) > 0.02 {
				t.Errorf("trial %d category %d: alias %v categorical %v want %v", trial, i, fa, fc, want)
			}
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(53)
	idx := r.SampleWithoutReplacement(10, 10)
	seen := make(map[int]bool)
	for _, i := range idx {
		if i < 0 || i >= 10 || seen[i] {
			t.Fatalf("invalid sample %v", idx)
		}
		seen[i] = true
	}
	if len(seen) != 10 {
		t.Fatalf("expected 10 distinct, got %d", len(seen))
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k > n did not panic")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestMVNMomentsIdentity(t *testing.T) {
	r := New(59)
	m := MustMVN([]float64{1, -2}, Identity(2))
	const n = 100000
	sum := [2]float64{}
	for i := 0; i < n; i++ {
		v := m.Sample(r, nil)
		sum[0] += v[0]
		sum[1] += v[1]
	}
	if math.Abs(sum[0]/n-1) > 0.02 || math.Abs(sum[1]/n+2) > 0.02 {
		t.Errorf("MVN means = %v %v", sum[0]/n, sum[1]/n)
	}
}

func TestMVNCovariance(t *testing.T) {
	r := New(61)
	cov := [][]float64{{2, 0.8}, {0.8, 1}}
	m := MustMVN([]float64{0, 0}, cov)
	const n = 200000
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		v := m.Sample(r, nil)
		sxx += v[0] * v[0]
		sxy += v[0] * v[1]
		syy += v[1] * v[1]
	}
	if math.Abs(sxx/n-2) > 0.05 {
		t.Errorf("var(x) = %v, want ~2", sxx/n)
	}
	if math.Abs(sxy/n-0.8) > 0.05 {
		t.Errorf("cov(x,y) = %v, want ~0.8", sxy/n)
	}
	if math.Abs(syy/n-1) > 0.05 {
		t.Errorf("var(y) = %v, want ~1", syy/n)
	}
}

func TestMVNRejectsBadCovariance(t *testing.T) {
	if _, err := NewMVN([]float64{0, 0}, [][]float64{{1, 2}, {2, 1}}); err == nil {
		t.Error("indefinite covariance accepted")
	}
	if _, err := NewMVN([]float64{0}, [][]float64{{1, 0}, {0, 1}}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := NewMVN([]float64{0, 0}, [][]float64{{1}, {0, 1}}); err == nil {
		t.Error("ragged covariance accepted")
	}
}

func TestMVNSampleReusesDst(t *testing.T) {
	r := New(67)
	m := MustMVN([]float64{0}, Identity(1))
	dst := make([]float64, 1)
	out := m.Sample(r, dst)
	if &out[0] != &dst[0] {
		t.Error("Sample did not reuse dst")
	}
}

func TestSampleN(t *testing.T) {
	r := New(71)
	m := MustMVN([]float64{3, 4}, Identity(2))
	rows := m.SampleN(r, 17)
	if len(rows) != 17 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if len(row) != 2 {
			t.Fatalf("row has %d entries", len(row))
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(73)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(79)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	if math.Abs(sum/n-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", sum/n)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(83)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(1, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced %v", v)
		}
	}
}
