package rng

import (
	"fmt"
	"math"
)

// MVN samples from a multivariate normal N(mean, cov) via the Cholesky
// factor of the covariance. The paper's simulation study (Section V-A)
// draws bivariate Gaussian sub-groups; this type supports any dimension.
type MVN struct {
	mean []float64
	// chol is the lower-triangular Cholesky factor L with cov = L Lᵀ,
	// stored row-major.
	chol [][]float64
	dim  int
}

// NewMVN constructs a sampler for N(mean, cov). cov must be symmetric
// positive definite; otherwise an error describing the failing pivot is
// returned.
func NewMVN(mean []float64, cov [][]float64) (*MVN, error) {
	d := len(mean)
	if len(cov) != d {
		return nil, fmt.Errorf("rng: covariance has %d rows, mean has %d entries", len(cov), d)
	}
	for i := range cov {
		if len(cov[i]) != d {
			return nil, fmt.Errorf("rng: covariance row %d has %d entries, want %d", i, len(cov[i]), d)
		}
	}
	l, err := cholesky(cov)
	if err != nil {
		return nil, err
	}
	m := make([]float64, d)
	copy(m, mean)
	return &MVN{mean: m, chol: l, dim: d}, nil
}

// MustMVN is NewMVN that panics on error, for statically known-valid
// covariances such as the identity matrix of the simulation study.
func MustMVN(mean []float64, cov [][]float64) *MVN {
	m, err := NewMVN(mean, cov)
	if err != nil {
		panic(err)
	}
	return m
}

// Dim reports the dimensionality of the distribution.
func (m *MVN) Dim() int { return m.dim }

// Mean returns a copy of the mean vector.
func (m *MVN) Mean() []float64 {
	out := make([]float64, m.dim)
	copy(out, m.mean)
	return out
}

// Sample draws one vector, writing into dst if it has the right length and
// allocating otherwise, and returns it.
func (m *MVN) Sample(r *RNG, dst []float64) []float64 {
	if len(dst) != m.dim {
		dst = make([]float64, m.dim)
	}
	z := make([]float64, m.dim)
	for i := range z {
		z[i] = r.Norm()
	}
	for i := 0; i < m.dim; i++ {
		v := m.mean[i]
		for j := 0; j <= i; j++ {
			v += m.chol[i][j] * z[j]
		}
		dst[i] = v
	}
	return dst
}

// SampleN draws n vectors as an n×dim matrix.
func (m *MVN) SampleN(r *RNG, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = m.Sample(r, nil)
	}
	return out
}

// cholesky returns the lower-triangular factor L of a symmetric positive
// definite matrix, or an error naming the first non-positive pivot.
func cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("rng: covariance not positive definite (pivot %d = %g)", i, sum)
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// Identity returns the d×d identity matrix, the covariance used throughout
// the paper's simulation study.
func Identity(d int) [][]float64 {
	m := make([][]float64, d)
	for i := range m {
		m[i] = make([]float64, d)
		m[i][i] = 1
	}
	return m
}
