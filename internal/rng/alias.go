package rng

import "math"

// Alias is a Walker/Vose alias table for O(1) draws from a fixed discrete
// distribution. Algorithm 2 draws one categorical sample per archival point
// per feature from the same nQ plan rows, so the per-draw cost matters when
// repairing torrents of archival data; the alias table makes each draw two
// uniforms and one comparison regardless of nQ.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from the (possibly unnormalized)
// non-negative weight vector w. It panics on negative, NaN, or zero-total
// weights for the same reason Categorical does.
func NewAlias(w []float64) *Alias {
	n := len(w)
	if n == 0 {
		panic("rng: NewAlias called with empty weights")
	}
	total := 0.0
	for _, wi := range w {
		if wi < 0 || math.IsNaN(wi) {
			panic("rng: NewAlias called with negative or NaN weight")
		}
		total += wi
	}
	if total <= 0 {
		panic("rng: NewAlias called with zero total mass")
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	if n == 1 {
		// Degenerate table: exact monotone plan rows are 1–2 atoms, so the
		// eager per-plan sampler builds thousands of these; skip the
		// worklist machinery.
		a.prob[0] = 1
		return a
	}
	// Scaled probabilities: mean 1.
	scaled := make([]float64, n)
	for i, wi := range w {
		scaled[i] = wi * float64(n) / total
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]

		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		// Only reachable through floating-point round-off; these cells have
		// scaled mass within ulps of 1.
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Len reports the number of categories.
func (a *Alias) Len() int { return len(a.prob) }

// Draw returns a category index distributed according to the weights the
// table was built from.
func (a *Alias) Draw(r *RNG) int {
	i := r.IntN(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
