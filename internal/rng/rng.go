// Package rng provides the deterministic random-number machinery used by
// every stochastic component of the repository: the simulation generators
// (Section V-A of the paper), the two randomization steps of the off-sample
// repair (Algorithm 2), and the Monte-Carlo experiment harness.
//
// All randomness flows through an explicit *RNG value seeded by the caller,
// so every experiment in cmd/repro is exactly reproducible. Independent
// child generators for parallel Monte-Carlo replicates are derived with
// Split, which uses a SplitMix64-style hash of the parent seed and the child
// index so that replicate streams are decorrelated but stable.
package rng

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic pseudo-random generator with the sampling methods
// needed by the repair algorithms. It wraps the standard library's PCG
// source. An RNG is not safe for concurrent use; derive one per goroutine
// with Split.
type RNG struct {
	src *rand.Rand
	// seed records the construction seed so children can be derived
	// deterministically even after the stream has advanced.
	seed uint64
}

// New returns an RNG seeded with the given value. Two RNGs constructed with
// the same seed produce identical streams.
func New(seed uint64) *RNG {
	return &RNG{
		src:  rand.New(rand.NewPCG(seed, splitmix64(seed+0x9e3779b97f4a7c15))),
		seed: seed,
	}
}

// splitmix64 is the SplitMix64 finalizer, used to spread seeds so that
// consecutive integer seeds yield unrelated streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Seed reports the seed the generator was constructed with.
func (r *RNG) Seed() uint64 { return r.seed }

// Split derives an independent child generator for stream index i.
// Splitting is a pure function of (parent seed, i): it does not consume or
// depend on the parent's stream position, which lets parallel Monte-Carlo
// replicates be launched in any order with identical results.
func (r *RNG) Split(i uint64) *RNG {
	child := splitmix64(r.seed ^ splitmix64(i+1))
	return New(child)
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// IntN returns a uniform integer in [0, n). It panics if n <= 0, matching
// the standard library contract.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Uniform returns a uniform sample in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Norm returns a standard normal sample.
func (r *RNG) Norm() float64 { return r.src.NormFloat64() }

// Normal returns a sample from N(mean, stddev²).
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma²)); used by the synthetic Adult
// generator for right-skewed age-like quantities.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.src.NormFloat64())
}

// Bernoulli returns true with probability p. Probabilities outside [0, 1]
// are clamped, so callers may pass the raw interpolation ratio from
// Algorithm 2 line 6 without pre-clamping.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Exponential returns a sample from Exp(rate).
func (r *RNG) Exponential(rate float64) float64 {
	return r.src.ExpFloat64() / rate
}

// Categorical draws an index from the (possibly unnormalized) non-negative
// weight vector w by inversion. It panics if the total mass is not positive
// or if any weight is negative or NaN: a zero-mass row of an OT plan is a
// design bug upstream that must not be masked here.
//
// For repeated draws from the same weights prefer NewAlias, which is O(1)
// per draw after O(n) setup; Categorical is O(n) per draw.
func (r *RNG) Categorical(w []float64) int {
	total := 0.0
	for _, wi := range w {
		if wi < 0 || math.IsNaN(wi) {
			panic("rng: Categorical called with negative or NaN weight")
		}
		total += wi
	}
	if total <= 0 {
		panic("rng: Categorical called with zero total mass")
	}
	u := r.src.Float64() * total
	acc := 0.0
	for i, wi := range w {
		acc += wi
		if u < acc {
			return i
		}
	}
	// Floating-point slack: return the last strictly positive weight.
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	return len(w) - 1
}

// Multinomial draws counts of n trials across the weight vector w.
// The returned slice has len(w) entries summing to n.
func (r *RNG) Multinomial(n int, w []float64) []int {
	counts := make([]int, len(w))
	if n <= 0 {
		return counts
	}
	// Conditional binomial method: draw each cell's count as a binomial of
	// the remaining trials, conditioning on mass already placed.
	total := 0.0
	for _, wi := range w {
		if wi < 0 || math.IsNaN(wi) {
			panic("rng: Multinomial called with negative or NaN weight")
		}
		total += wi
	}
	if total <= 0 {
		panic("rng: Multinomial called with zero total mass")
	}
	remaining := n
	massLeft := total
	for i := 0; i < len(w)-1 && remaining > 0; i++ {
		p := w[i] / massLeft
		c := r.Binomial(remaining, p)
		counts[i] = c
		remaining -= c
		massLeft -= w[i]
		if massLeft <= 0 {
			break
		}
	}
	counts[len(w)-1] += remaining
	return counts
}

// Binomial draws the number of successes in n Bernoulli(p) trials.
// It uses direct simulation for small n and a normal approximation with
// correction is deliberately avoided: n is modest everywhere in this
// repository and exactness keeps the property tests sharp.
func (r *RNG) Binomial(n int, p float64) int {
	if p <= 0 || n <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Inversion by waiting times is O(np) expected; fine for our sizes.
	c := 0
	for i := 0; i < n; i++ {
		if r.src.Float64() < p {
			c++
		}
	}
	return c
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n) in random order. It panics if k > n.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("rng: SampleWithoutReplacement with k > n")
	}
	p := r.src.Perm(n)
	return p[:k]
}
