package experiment

import (
	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/planstore"
)

// designIndex, when set, routes every experiment design through the
// disk-backed artefact tier the serving layer shares, so repeated artefact
// runs warm-start finished plans by input hash instead of re-running the
// KDE + OT design (cmd/repro -store).
var designIndex *planstore.DesignIndex

// SetDesignStore installs (or, with nil, removes) the disk warm-start tier
// for experiment designs. Call before launching experiments; the harness
// designs from many goroutines and the index itself is concurrency-safe,
// but swapping it mid-run is not.
func SetDesignStore(ix *planstore.DesignIndex) { designIndex = ix }

// design is the single Algorithm-1 entry point for the experiment harness:
// core.Design, optionally warm-started through the plan store.
func design(research *dataset.Table, opts core.Options) (*core.Plan, error) {
	if designIndex != nil {
		return designIndex.Design(research, opts)
	}
	return core.Design(research, opts)
}
