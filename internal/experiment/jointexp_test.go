package experiment

import (
	"testing"
)

func TestAblationJointShape(t *testing.T) {
	cfg := quickSim()
	cfg.Reps = 2
	tbl, err := AblationJoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 scenarios × 3 repairs)", len(tbl.Rows))
	}
	byLabel := map[string][]Cell{}
	for _, row := range tbl.Rows {
		byLabel[row.Label] = row.Cells
	}
	// Structure-only scenario: the per-feature repair must leave the
	// joint dependence intact while the joint repair quenches it.
	noneEJ := byLabel["Structure-only (ρ = ±0.8) — none"][1].Mean
	marginalEJ := byLabel["Structure-only (ρ = ±0.8) — per-feature"][1].Mean
	jointEJ := byLabel["Structure-only (ρ = ±0.8) — joint"][1].Mean
	if marginalEJ < noneEJ/2 {
		t.Errorf("per-feature repair reduced structure-only EJoint %v → %v; it should be blind to it", noneEJ, marginalEJ)
	}
	if jointEJ > noneEJ/3 {
		t.Errorf("joint repair left EJoint %v of %v", jointEJ, noneEJ)
	}
	// Correlation gap mirrors the same split.
	noneGap := byLabel["Structure-only (ρ = ±0.8) — none"][2].Mean
	jointGap := byLabel["Structure-only (ρ = ±0.8) — joint"][2].Mean
	if jointGap > noneGap/2 {
		t.Errorf("joint repair left correlation gap %v of %v", jointGap, noneGap)
	}
	// Paper scenario: both repairs quench the per-feature E.
	nonePaperE := byLabel["Paper §V-A (mean shift) — none"][0].Mean
	for _, label := range []string{"Paper §V-A (mean shift) — per-feature", "Paper §V-A (mean shift) — joint"} {
		if got := byLabel[label][0].Mean; got > nonePaperE/2 {
			t.Errorf("%s: E %v of %v, want a clear reduction", label, got, nonePaperE)
		}
	}
	// The joint design must cost materially more than the per-feature one —
	// the curse of dimensionality the paper's stratification avoids.
	marginalMS := byLabel["Paper §V-A (mean shift) — per-feature"][4].Mean
	jointMS := byLabel["Paper §V-A (mean shift) — joint"][4].Mean
	if jointMS < 10*marginalMS {
		t.Errorf("joint design (%v ms) unexpectedly cheap vs per-feature (%v ms)", jointMS, marginalMS)
	}
}
