package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Cell is one rendered table entry, optionally carrying a ± spread.
type Cell struct {
	Mean   float64
	Std    float64
	HasStd bool
	// NA renders as "-" (e.g. geometric repair on archive data, which is
	// undefined — the dash in the paper's tables).
	NA bool
}

// NACell is the undefined-entry marker.
func NACell() Cell { return Cell{NA: true} }

// FromStat converts an aggregated measurement into a cell.
func FromStat(cs CellStat) Cell {
	return Cell{Mean: cs.Mean, Std: cs.Std, HasStd: cs.N > 1}
}

// String renders the cell as "m ± s", "m", or "-".
func (c Cell) String() string {
	if c.NA {
		return "-"
	}
	if c.HasStd {
		return fmt.Sprintf("%.4f ± %.4f", c.Mean, c.Std)
	}
	return fmt.Sprintf("%.4f", c.Mean)
}

// Row is one labelled table row.
type Row struct {
	Label string
	Cells []Cell
}

// Table is a rendered experiment artefact mirroring one paper table.
type Table struct {
	Title  string
	Note   string
	Header []string // len = 1 (row label column) + number of cells
	Rows   []Row
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	cols := len(t.Header)
	widths := make([]int, cols)
	for j, h := range t.Header {
		widths[j] = len(h)
	}
	cells := make([][]string, len(t.Rows))
	for i, row := range t.Rows {
		cells[i] = make([]string, cols)
		cells[i][0] = row.Label
		if len(row.Label) > widths[0] {
			widths[0] = len(row.Label)
		}
		for j, c := range row.Cells {
			s := c.String()
			cells[i][j+1] = s
			if j+1 < cols && len(s) > widths[j+1] {
				widths[j+1] = len(s)
			}
		}
	}
	line := func(parts []string) string {
		var b strings.Builder
		for j, p := range parts {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(p)
			for pad := len(p); pad < widths[j]; pad++ {
				b.WriteByte(' ')
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range cells {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	Err  []float64 // optional ± column, may be nil
}

// Figure is a rendered experiment artefact mirroring one paper figure:
// the numeric series plus an ASCII sketch.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render writes the series values as aligned columns followed by an ASCII
// chart of the curves.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", f.Title); err != nil {
		return err
	}
	for _, s := range f.Series {
		if _, err := fmt.Fprintf(w, "\nseries: %s\n", s.Name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %12s  %12s", f.XLabel, f.YLabel); err != nil {
			return err
		}
		if s.Err != nil {
			if _, err := fmt.Fprintf(w, "  %12s", "±"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "  %12.4g  %12.6g", s.X[i], s.Y[i]); err != nil {
				return err
			}
			if s.Err != nil {
				if _, err := fmt.Fprintf(w, "  %12.6g", s.Err[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return f.renderASCII(w)
}

// renderASCII sketches all series on one 60×16 grid, marking each series
// with a distinct rune.
func (f *Figure) renderASCII(w io.Writer) error {
	const width, height = 64, 16
	marks := []byte{'*', 'o', '+', 'x', '#'}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if !(maxX > minX) || math.IsInf(minX, 0) {
		return nil // nothing plottable
	}
	if !(maxY > minY) {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = mark
		}
	}
	if _, err := fmt.Fprintf(w, "\n%s vs %s  [y: %.3g .. %.3g]\n", f.YLabel, f.XLabel, minY, maxY); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "  |%s\n", string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width)); err != nil {
		return err
	}
	legend := make([]string, 0, len(f.Series))
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c %s", marks[si%len(marks)], s.Name))
	}
	_, err := fmt.Fprintf(w, "   x: %.4g .. %.4g   %s\n", minX, maxX, strings.Join(legend, "   "))
	return err
}
