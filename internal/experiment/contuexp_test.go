package experiment

import "testing"

func TestAblationContinuousUShape(t *testing.T) {
	cfg := quickSim()
	cfg.Reps = 3
	fig, err := AblationContinuousU(cfg, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(fig.Series))
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
		if len(s.X) != 2 {
			t.Fatalf("series %q has %d points", s.Name, len(s.X))
		}
	}
	none := byName["unrepaired"]
	hard := byName["repaired (hard bins)"]
	// Any repair beats none.
	for i := range hard.Y {
		if hard.Y[i] >= none.Y[i] {
			t.Errorf("B=%v: repaired %v not below unrepaired %v", hard.X[i], hard.Y[i], none.Y[i])
		}
	}
	// Conditioning on u (B=4) must beat ignoring it (B=1): the scenario's
	// s-shift varies with u by construction.
	if hard.Y[1] >= hard.Y[0] {
		t.Errorf("B=4 residual %v not below B=1 residual %v", hard.Y[1], hard.Y[0])
	}
	// With B=1 there is nothing to blend: both repaired series coincide.
	blended := byName["repaired (blended bins)"]
	if blended.Y[0] != hard.Y[0] {
		t.Errorf("B=1: blended %v differs from hard %v", blended.Y[0], hard.Y[0])
	}
}
