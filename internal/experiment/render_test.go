package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Note:   "note",
		Header: []string{"Row", "A", "B"},
		Rows: []Row{
			{Label: "first", Cells: []Cell{{Mean: 1}, {Mean: 2.5, Std: 0.5, HasStd: true}}},
			{Label: "second longer label", Cells: []Cell{NACell(), {Mean: 3}}},
		},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, note, header, rule, 2 rows -> 6? title+note+header+rule+2
		if len(lines) != 6 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	if !strings.Contains(out, "2.5000 ± 0.5000") {
		t.Errorf("spread cell missing:\n%s", out)
	}
	if !strings.Contains(out, "second longer label") {
		t.Errorf("label missing:\n%s", out)
	}
	// Header columns align with row columns: the rule line must be at least
	// as wide as the longest row.
	var ruleLen, maxLen int
	for _, l := range lines {
		if strings.HasPrefix(l, "---") {
			ruleLen = len(l)
		}
		if len(l) > maxLen {
			maxLen = len(l)
		}
	}
	if ruleLen == 0 {
		t.Error("no rule line")
	}
}

func TestFigureRenderSinglePoint(t *testing.T) {
	fig := &Figure{
		Title:  "single",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{2}}},
	}
	var buf bytes.Buffer
	// Single x value: no plottable span; numeric block still renders.
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "series: s") {
		t.Error("series header missing")
	}
}

func TestFigureRenderConstantY(t *testing.T) {
	fig := &Figure{
		Title:  "flat",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{{Name: "s", X: []float64{0, 1, 2}, Y: []float64{5, 5, 5}}},
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "+--") {
		t.Error("ASCII frame missing for constant series")
	}
}

func TestFigureRenderManySeriesMarks(t *testing.T) {
	fig := &Figure{Title: "m", XLabel: "x", YLabel: "y"}
	for i := 0; i < 6; i++ {
		fig.Series = append(fig.Series, Series{
			Name: string(rune('a' + i)),
			X:    []float64{0, 1},
			Y:    []float64{float64(i), float64(i + 1)},
		})
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// Marks cycle after 5 series; legend must list all six names.
	for i := 0; i < 6; i++ {
		if !strings.Contains(buf.String(), string(rune('a'+i))) {
			t.Errorf("legend missing series %c", 'a'+i)
		}
	}
}

func TestFromStat(t *testing.T) {
	c := FromStat(CellStat{Mean: 2, Std: 0.1, N: 5})
	if !c.HasStd || c.Mean != 2 {
		t.Errorf("FromStat = %+v", c)
	}
	single := FromStat(CellStat{Mean: 2, N: 1})
	if single.HasStd {
		t.Error("single-replicate cell claims a spread")
	}
}
