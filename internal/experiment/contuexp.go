package experiment

import (
	"fmt"

	"otfair/internal/contu"
	"otfair/internal/core"
	"otfair/internal/rng"
)

// drawContinuousU samples the continuous-u scenario used by X9: u ~ U(0,1),
// x | s,u ~ N(m_s(u), I₂) with m_0(u) = (2u−1)·(1,1) and an s-shift
// Δ(u) = 2(1−u) that decays along u, so the right conditioning is genuinely
// continuous: any fixed binning is an approximation whose bias X9 measures.
func drawContinuousU(r *rng.RNG, n int) []contu.Record {
	recs := make([]contu.Record, n)
	for i := range recs {
		u := r.Float64()
		s := 0
		if r.Bernoulli(0.5) {
			s = 1
		}
		base := 2*u - 1
		shift := 0.0
		if s == 1 {
			shift = 2 * (1 - u)
		}
		recs[i] = contu.Record{
			X: []float64{r.Normal(base+shift, 1), r.Normal(base+shift, 1)},
			S: s,
			U: u,
		}
	}
	return recs
}

// AblationContinuousU (X9) sweeps the number of design bins B for a
// continuous unprotected attribute (the Section VI generalization):
// residual archive dependence is evaluated at a fine fixed conditioning
// (16 evaluation bins), so B = 1 (ignore u) shows the conditioning bias of
// repairing structural along with model unfairness, while large B shows the
// estimation variance of starved bins. Blending (the Eq. 14 randomization
// applied to the u axis) is reported as a second series.
func AblationContinuousU(cfg SimConfig, binCounts []int) (*Figure, error) {
	cfg = cfg.withDefaults()
	if len(binCounts) == 0 {
		binCounts = []int{1, 2, 4, 8, 16}
	}
	const evalBins = 16
	hard := Series{Name: "repaired (hard bins)"}
	blended := Series{Name: "repaired (blended bins)"}
	none := Series{Name: "unrepaired"}
	for _, bins := range binCounts {
		stats, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed+uint64(bins)+91, func(rep int, r *rng.RNG) (map[string]float64, error) {
			research := drawContinuousU(r, cfg.NR*2)
			archive := drawContinuousU(r, cfg.NA)
			evalEdges := evaluationEdges(evalBins)
			out := make(map[string]float64)
			eNone, err := contu.EBinned(archive, evalEdges, cfg.Metric)
			if err != nil {
				return nil, err
			}
			out["none"] = eNone
			for _, blend := range []bool{false, true} {
				plan, err := contu.Design(research, 2, contu.Options{
					Bins: bins, Blend: blend, Core: core.Options{NQ: cfg.NQ},
				})
				if err != nil {
					return nil, fmt.Errorf("bins=%d blend=%v: %w", bins, blend, err)
				}
				rp, err := contu.NewRepairer(plan, r.Split(uint64(bins)), core.RepairOptions{})
				if err != nil {
					return nil, err
				}
				repaired, err := rp.RepairAll(archive)
				if err != nil {
					return nil, err
				}
				e, err := contu.EBinned(repaired, evalEdges, cfg.Metric)
				if err != nil {
					return nil, err
				}
				key := "hard"
				if blend {
					key = "blended"
				}
				out[key] = e
			}
			return out, nil
		})
		if err != nil {
			return nil, fmt.Errorf("bins=%d: %w", bins, err)
		}
		x := float64(bins)
		for _, pair := range []struct {
			s   *Series
			key string
		}{{&hard, "hard"}, {&blended, "blended"}, {&none, "none"}} {
			pair.s.X = append(pair.s.X, x)
			pair.s.Y = append(pair.s.Y, stats[pair.key].Mean)
			pair.s.Err = append(pair.s.Err, stats[pair.key].Std)
		}
	}
	return &Figure{
		Title: fmt.Sprintf("Ablation X9: continuous u — residual dependence vs design bins (nR=%d nA=%d nQ=%d, %d reps/point, %d eval bins)",
			cfg.NR*2, cfg.NA, cfg.NQ, cfg.Reps, evalBins),
		XLabel: "design bins B",
		YLabel: "E (archive, finely conditioned)",
		Series: []Series{none, hard, blended},
	}, nil
}

// evaluationEdges returns fixed uniform edges over (0,1) with infinite
// outer bins, shared across replicates so series are comparable.
func evaluationEdges(bins int) []float64 {
	edges := make([]float64, bins+1)
	edges[0] = -1e308
	edges[bins] = 1e308
	for b := 1; b < bins; b++ {
		edges[b] = float64(b) / float64(bins)
	}
	return edges
}
