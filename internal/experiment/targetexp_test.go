package experiment

import "testing"

func TestAblationTargetShape(t *testing.T) {
	tbl, err := AblationTarget(quickSim())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	byLabel := map[string][]Cell{}
	for _, row := range tbl.Rows {
		byLabel[row.Label] = row.Cells
	}
	none := byLabel["None"][0].Mean
	for _, label := range []string{"W2 barycenter (paper)", "Mixture (vertical average)", "Gaussian (moment-matched)"} {
		cells := byLabel[label]
		if cells[0].Mean >= none/2 {
			t.Errorf("%s: E %v of unrepaired %v, want a clear reduction", label, cells[0].Mean, none)
		}
		if cells[1].Mean <= 0 {
			t.Errorf("%s: non-positive damage %v", label, cells[1].Mean)
		}
		if cells[2].Mean <= 0 {
			t.Errorf("%s: non-positive transport cost %v", label, cells[2].Mean)
		}
	}
	// The barycenter is the minimal-transport target by construction.
	bary := byLabel["W2 barycenter (paper)"][2].Mean
	for _, label := range []string{"Mixture (vertical average)", "Gaussian (moment-matched)"} {
		if byLabel[label][2].Mean < bary*0.98 {
			t.Errorf("%s: transport cost %v undercuts the barycenter %v", label, byLabel[label][2].Mean, bary)
		}
	}
}
