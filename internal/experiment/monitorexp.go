package experiment

import (
	"fmt"
	"io"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/monitor"
	"otfair/internal/rng"
	"otfair/internal/simulate"
)

// AblationMonitor (X12) characterizes the stationarity guard: archival
// torrents drift the s=1 groups linearly up to a terminal magnitude, and
// the stream monitor reports whether it alarmed and how deep into the
// stream the first alarm fired. Drift 0 measures the false-alarm rate; the
// detection point should move earlier as the drift grows.
func AblationMonitor(cfg SimConfig, drifts []float64) (*Table, error) {
	cfg = cfg.withDefaults()
	if len(drifts) == 0 {
		drifts = []float64{0, 0.5, 1, 1.5, 2}
	}
	const streamLen = 12000
	rows := make([]Row, 0, len(drifts))
	for _, drift := range drifts {
		stats, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed+uint64(1000*drift)+121, func(rep int, r *rng.RNG) (map[string]float64, error) {
			sampler, err := simulate.NewSampler(simulate.Paper())
			if err != nil {
				return nil, err
			}
			research, _, err := drawWithAllGroups(sampler, r, cfg.NR, 0)
			if err != nil {
				return nil, err
			}
			plan, err := design(research, core.Options{NQ: cfg.NQ})
			if err != nil {
				return nil, err
			}
			m, err := monitor.New(plan, monitor.Options{Window: 256})
			if err != nil {
				return nil, err
			}
			ds, err := simulate.NewDriftStream(simulate.Paper(), r.Split(1), simulate.Drift{
				Group: map[dataset.Group][]float64{
					{U: 0, S: 1}: {drift, drift},
					{U: 1, S: 1}: {drift, drift},
				},
			}, streamLen)
			if err != nil {
				return nil, err
			}
			firstAlarm := 0.0
			alarmCount := 0.0
			for {
				rec, err := ds.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return nil, err
				}
				alarms, err := m.Observe(rec)
				if err != nil {
					return nil, err
				}
				if len(alarms) > 0 && firstAlarm == 0 {
					firstAlarm = float64(m.Seen())
				}
				alarmCount += float64(len(alarms))
			}
			detected := 0.0
			if alarmCount > 0 {
				detected = 1
			}
			out := map[string]float64{"detected": detected, "alarms": alarmCount}
			if detected == 1 {
				out["first"] = firstAlarm
			}
			return out, nil
		})
		if err != nil {
			return nil, fmt.Errorf("drift=%v: %w", drift, err)
		}
		firstCell := NACell()
		if stats["first"].N > 0 {
			firstCell = FromStat(stats["first"])
		}
		rows = append(rows, Row{
			Label: fmt.Sprintf("drift %.1fσ", drift),
			Cells: []Cell{FromStat(stats["detected"]), firstCell, FromStat(stats["alarms"])},
		})
	}
	return &Table{
		Title: "Ablation X12: drift-monitor operating characteristic (stationarity guard, Section IV req. 2)",
		Note: fmt.Sprintf("archival torrents of %d records with linearly ramped s=1 group drift; nR=%d nQ=%d, window 256, %d replicates. 'First alarm' averages detected replicates only.",
			streamLen, cfg.NR, cfg.NQ, cfg.Reps),
		Header: []string{"Terminal drift", "Detection rate", "First alarm (records)", "Alarms / stream"},
		Rows:   rows,
	}, nil
}

// AblationStopping (X13) exercises the Section VI stopping rule for
// research accrual: for each tolerance the rule reports how much research
// data it decided was enough. Looser tolerances stop earlier; the tight end
// should land near the n_R ≈ 10% knee the paper's Figure 3 finds.
func AblationStopping(cfg SimConfig, tols []float64) (*Table, error) {
	cfg = cfg.withDefaults()
	if len(tols) == 0 {
		tols = []float64{0.15, 0.10, 0.05, 0.03}
	}
	const pool = 3000
	rows := make([]Row, 0, len(tols))
	for _, tol := range tols {
		stats, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed+uint64(1000*tol)+131, func(rep int, r *rng.RNG) (map[string]float64, error) {
			sampler, err := simulate.NewSampler(simulate.Paper())
			if err != nil {
				return nil, err
			}
			research, _, err := sampler.ResearchArchive(r, pool, 0)
			if err != nil {
				return nil, err
			}
			res, err := monitor.ResearchStoppingRule(research, monitor.StoppingOptions{Batch: 50, Tol: tol})
			if err != nil {
				return nil, err
			}
			converged := 0.0
			if res.Converged {
				converged = 1
			}
			return map[string]float64{"nstop": float64(res.NStop), "converged": converged}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("tol=%v: %w", tol, err)
		}
		rows = append(rows, Row{
			Label: fmt.Sprintf("tol %.2f", tol),
			Cells: []Cell{FromStat(stats["nstop"]), FromStat(stats["converged"])},
		})
	}
	return &Table{
		Title: "Ablation X13: research-accrual stopping rule (Section VI)",
		Note: fmt.Sprintf("sequential accrual from a %d-record pool in batches of 50, patience 2; %d replicates. Compare the tight-tolerance n_stop with Figure 3's convergence knee.",
			pool, cfg.Reps),
		Header: []string{"Tolerance", "n_stop", "Converged"},
		Rows:   rows,
	}, nil
}
