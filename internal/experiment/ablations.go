package experiment

import (
	"fmt"
	"time"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/fairmetrics"
	"otfair/internal/rng"
	"otfair/internal/simulate"
)

// AblationSolver (X1) compares the three OT solvers on the simulation
// setting: repair quality (E on the archive) and design wall time.
func AblationSolver(cfg SimConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	solvers := []core.SolverKind{core.SolverMonotone, core.SolverSimplex, core.SolverSinkhorn}
	stats, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed+21, func(rep int, r *rng.RNG) (map[string]float64, error) {
		sampler, err := simulate.NewSampler(simulate.Paper())
		if err != nil {
			return nil, err
		}
		research, archive, err := sampler.ResearchArchive(r, cfg.NR, cfg.NA)
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64)
		for _, solver := range solvers {
			start := time.Now()
			// Deliberately core.Design, not the design() warm-start hook:
			// this ablation *measures* design cost per solver, so serving a
			// warm-started plan from the disk tier (cmd/repro -store) would
			// report a cache lookup as the solver's design time.
			plan, err := core.Design(research, core.Options{NQ: cfg.NQ, Solver: solver})
			if err != nil {
				return nil, fmt.Errorf("%v: %w", solver, err)
			}
			designMS := float64(time.Since(start).Microseconds()) / 1000
			repairer, err := core.NewRepairer(plan, r.Split(uint64(solver)+1), core.RepairOptions{})
			if err != nil {
				return nil, err
			}
			repaired, err := repairer.RepairTable(archive)
			if err != nil {
				return nil, err
			}
			e, err := fairmetrics.E(repaired, cfg.Metric)
			if err != nil {
				return nil, err
			}
			out[solver.String()+"/E"] = e
			out[solver.String()+"/design_ms"] = designMS
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	get := func(key string) Cell { return FromStat(stats[key]) }
	rows := make([]Row, 0, len(solvers))
	for _, s := range solvers {
		rows = append(rows, Row{
			Label: s.String(),
			Cells: []Cell{get(s.String() + "/E"), get(s.String() + "/design_ms")},
		})
	}
	return &Table{
		Title: "Ablation X1: OT solver choice (simulation setting)",
		Note: fmt.Sprintf("archive E after repair and Algorithm-1 design time; nR=%d nA=%d nQ=%d, %d replicates.",
			cfg.NR, cfg.NA, cfg.NQ, cfg.Reps),
		Header: []string{"Solver", "E (archive)", "Design (ms)"},
		Rows:   rows,
	}, nil
}

// AblationQuantile (X5) compares the distributional repair against the
// off-sample extension of the Feldman et al. quantile repair (the paper's
// [4]) on both splits of the simulation setting.
func AblationQuantile(cfg SimConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	stats, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed+41, func(rep int, r *rng.RNG) (map[string]float64, error) {
		sampler, err := simulate.NewSampler(simulate.Paper())
		if err != nil {
			return nil, err
		}
		research, archive, err := drawWithAllGroups(sampler, r, cfg.NR, cfg.NA)
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64)
		record := func(prefix string, t *dataset.Table) error {
			e, err := fairmetrics.E(t, cfg.Metric)
			if err != nil {
				return err
			}
			out[prefix] = e
			return nil
		}
		if err := record("none/archive", archive); err != nil {
			return nil, err
		}
		plan, err := design(research, core.Options{NQ: cfg.NQ})
		if err != nil {
			return nil, err
		}
		rp, err := core.NewRepairer(plan, r.Split(1), core.RepairOptions{})
		if err != nil {
			return nil, err
		}
		distA, err := rp.RepairTable(archive)
		if err != nil {
			return nil, err
		}
		if err := record("dist/archive", distA); err != nil {
			return nil, err
		}
		qp, err := core.DesignQuantile(research, 1)
		if err != nil {
			return nil, err
		}
		quantA, err := qp.RepairTable(archive)
		if err != nil {
			return nil, err
		}
		if err := record("quantile/archive", quantA); err != nil {
			return nil, err
		}
		dDist, err := fairmetrics.Damage(archive, distA)
		if err != nil {
			return nil, err
		}
		dQuant, err := fairmetrics.Damage(archive, quantA)
		if err != nil {
			return nil, err
		}
		out["dist/damage"] = dDist
		out["quantile/damage"] = dQuant
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	get := func(key string) Cell { return FromStat(stats[key]) }
	return &Table{
		Title: "Ablation X5: distributional (stochastic Kantorovich) vs quantile (deterministic Monge) off-sample repair",
		Note: fmt.Sprintf("archive split of the simulation setting; nR=%d nA=%d nQ=%d, %d replicates.",
			cfg.NR, cfg.NA, cfg.NQ, cfg.Reps),
		Header: []string{"Repair", "E (archive)", "Damage (MSD)"},
		Rows: []Row{
			{Label: "None", Cells: []Cell{get("none/archive"), NACell()}},
			{Label: "Distributional (Alg. 1+2)", Cells: []Cell{get("dist/archive"), get("dist/damage")}},
			{Label: "Quantile (Feldman [4], off-sample)", Cells: []Cell{get("quantile/archive"), get("quantile/damage")}},
		},
	}, nil
}

// AblationDrift (X6) violates the stationarity assumption: the archive's
// s=1 groups drift linearly away from the research population (differential
// drift, which changes the s-conditional relationship the plans were
// designed for) and the residual E after repair is measured as a function
// of the total drift in component-standard-deviation units.
func AblationDrift(cfg SimConfig, drifts []float64) (*Figure, error) {
	cfg = cfg.withDefaults()
	if len(drifts) == 0 {
		drifts = []float64{0, 0.25, 0.5, 1, 2}
	}
	repairedSeries := Series{Name: "archive (repaired)"}
	unrepairedSeries := Series{Name: "archive (unrepaired)"}
	for _, drift := range drifts {
		stats, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed+uint64(1000*drift)+51, func(rep int, r *rng.RNG) (map[string]float64, error) {
			sampler, err := simulate.NewSampler(simulate.Paper())
			if err != nil {
				return nil, err
			}
			research, _, err := drawWithAllGroups(sampler, r, cfg.NR, 0)
			if err != nil {
				return nil, err
			}
			ds, err := simulate.NewDriftStream(simulate.Paper(), r.Split(1), simulate.Drift{
				Group: map[dataset.Group][]float64{
					{U: 0, S: 1}: {drift, drift},
					{U: 1, S: 1}: {drift, drift},
				},
			}, cfg.NA)
			if err != nil {
				return nil, err
			}
			archive, err := ds.Table()
			if err != nil {
				return nil, err
			}
			plan, err := design(research, core.Options{NQ: cfg.NQ})
			if err != nil {
				return nil, err
			}
			rp, err := core.NewRepairer(plan, r.Split(2), core.RepairOptions{})
			if err != nil {
				return nil, err
			}
			repaired, err := rp.RepairTable(archive)
			if err != nil {
				return nil, err
			}
			eRep, err := fairmetrics.E(repaired, cfg.Metric)
			if err != nil {
				return nil, err
			}
			eNone, err := fairmetrics.E(archive, cfg.Metric)
			if err != nil {
				return nil, err
			}
			return map[string]float64{"repaired": eRep, "unrepaired": eNone}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("drift=%v: %w", drift, err)
		}
		repairedSeries.X = append(repairedSeries.X, drift)
		repairedSeries.Y = append(repairedSeries.Y, stats["repaired"].Mean)
		repairedSeries.Err = append(repairedSeries.Err, stats["repaired"].Std)
		unrepairedSeries.X = append(unrepairedSeries.X, drift)
		unrepairedSeries.Y = append(unrepairedSeries.Y, stats["unrepaired"].Mean)
		unrepairedSeries.Err = append(unrepairedSeries.Err, stats["unrepaired"].Std)
	}
	return &Figure{
		Title: fmt.Sprintf("Ablation X6: repair quality under archive drift (stationarity violation; nR=%d nA=%d nQ=%d, %d reps/point)",
			cfg.NR, cfg.NA, cfg.NQ, cfg.Reps),
		XLabel: "total drift (σ units)",
		YLabel: "E",
		Series: []Series{repairedSeries, unrepairedSeries},
	}, nil
}

// AblationPartial (X2) sweeps the partial-repair strength λ, reporting the
// residual dependence E and the data damage (mean squared displacement) —
// the trade-off Section VI defers to future work.
func AblationPartial(cfg SimConfig, amounts []float64) (*Figure, error) {
	cfg = cfg.withDefaults()
	if len(amounts) == 0 {
		amounts = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
	}
	eSeries := Series{Name: "E (archive)"}
	dSeries := Series{Name: "damage (MSD)"}
	for _, amount := range amounts {
		stats, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed+uint64(100*amount)+31, func(rep int, r *rng.RNG) (map[string]float64, error) {
			sampler, err := simulate.NewSampler(simulate.Paper())
			if err != nil {
				return nil, err
			}
			research, archive, err := sampler.ResearchArchive(r, cfg.NR, cfg.NA)
			if err != nil {
				return nil, err
			}
			plan, err := design(research, core.Options{NQ: cfg.NQ, Amount: amount, AmountSet: true})
			if err != nil {
				return nil, err
			}
			repairer, err := core.NewRepairer(plan, r.Split(1), core.RepairOptions{})
			if err != nil {
				return nil, err
			}
			repaired, err := repairer.RepairTable(archive)
			if err != nil {
				return nil, err
			}
			e, err := fairmetrics.E(repaired, cfg.Metric)
			if err != nil {
				return nil, err
			}
			dmg, err := fairmetrics.Damage(archive, repaired)
			if err != nil {
				return nil, err
			}
			return map[string]float64{"E": e, "damage": dmg}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("amount=%v: %w", amount, err)
		}
		eSeries.X = append(eSeries.X, amount)
		eSeries.Y = append(eSeries.Y, stats["E"].Mean)
		eSeries.Err = append(eSeries.Err, stats["E"].Std)
		dSeries.X = append(dSeries.X, amount)
		dSeries.Y = append(dSeries.Y, stats["damage"].Mean)
		dSeries.Err = append(dSeries.Err, stats["damage"].Std)
	}
	return &Figure{
		Title: fmt.Sprintf("Ablation X2: partial repair — residual dependence vs damage (nR=%d nA=%d nQ=%d, %d reps/point)",
			cfg.NR, cfg.NA, cfg.NQ, cfg.Reps),
		XLabel: "repair amount λ",
		YLabel: "value",
		Series: []Series{eSeries, dSeries},
	}, nil
}
