package experiment

import (
	"fmt"

	"otfair/internal/blind"
	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/fairmetrics"
	"otfair/internal/rng"
	"otfair/internal/simulate"
)

// reattachTrueS copies the generator's true s labels back onto a
// blind-repaired table so E — which conditions on the true s — is
// evaluable.
func reattachTrueS(repaired, truth *dataset.Table) *dataset.Table {
	out := repaired.Clone()
	for i := range out.Records() {
		out.Records()[i].S = truth.At(i).S
	}
	return out
}

// blindMethods are the label-free strategies X7 compares.
var blindMethods = []blind.Method{blind.MethodHard, blind.MethodDraw, blind.MethodMix, blind.MethodPooled}

// AblationBlind (X7) quantifies the price of missing s labels: the archive
// is stripped of its labels and repaired by each strategy of
// internal/blind, compared against the labelled repair and no repair. The
// paper's Section VI names s|u-unlabelled archives as the priority future
// work; this is the corresponding experiment.
func AblationBlind(cfg SimConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	stats, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed+61, func(rep int, r *rng.RNG) (map[string]float64, error) {
		sampler, err := simulate.NewSampler(simulate.Paper())
		if err != nil {
			return nil, err
		}
		research, archive, err := drawWithAllGroups(sampler, r, cfg.NR, cfg.NA)
		if err != nil {
			return nil, err
		}
		unlabelled := archive.DropS()
		plan, err := design(research, core.Options{NQ: cfg.NQ})
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64)
		record := func(prefix string, repaired *dataset.Table) error {
			e, err := fairmetrics.E(reattachTrueS(repaired, archive), cfg.Metric)
			if err != nil {
				return err
			}
			out[prefix+"/E"] = e
			dmg, err := fairmetrics.Damage(archive, repaired)
			if err != nil {
				return err
			}
			out[prefix+"/damage"] = dmg
			return nil
		}

		eNone, err := fairmetrics.E(archive, cfg.Metric)
		if err != nil {
			return nil, err
		}
		out["none/E"] = eNone

		// Oracle: the labelled repair the blind methods chase.
		rp, err := core.NewRepairer(plan, r.Split(1), core.RepairOptions{})
		if err != nil {
			return nil, err
		}
		labelled, err := rp.RepairTable(archive)
		if err != nil {
			return nil, err
		}
		if err := record("true", labelled); err != nil {
			return nil, err
		}

		// QDA accuracy on this replicate, for the note column.
		qda, err := blind.NewQDA(research)
		if err != nil {
			return nil, err
		}
		acc, err := qda.Accuracy(archive)
		if err != nil {
			return nil, err
		}
		out["qda/acc"] = acc

		for mi, method := range blindMethods {
			brp, err := blind.New(plan, research, r.Split(uint64(mi)+2), blind.Options{Method: method})
			if err != nil {
				return nil, fmt.Errorf("%v: %w", method, err)
			}
			repaired, err := brp.RepairTable(unlabelled)
			if err != nil {
				return nil, fmt.Errorf("%v: %w", method, err)
			}
			if err := record(method.String(), repaired); err != nil {
				return nil, err
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	get := func(key string) Cell { return FromStat(stats[key]) }
	rows := []Row{
		{Label: "None", Cells: []Cell{get("none/E"), NACell()}},
		{Label: "Labelled (oracle)", Cells: []Cell{get("true/E"), get("true/damage")}},
	}
	labels := map[blind.Method]string{
		blind.MethodHard:   "Blind: hard (MAP ŝ, QDA)",
		blind.MethodDraw:   "Blind: draw (ŝ ~ posterior)",
		blind.MethodMix:    "Blind: mix (per-feature posterior)",
		blind.MethodPooled: "Blind: pooled (group-blind transport)",
	}
	for _, m := range blindMethods {
		rows = append(rows, Row{Label: labels[m], Cells: []Cell{get(m.String() + "/E"), get(m.String() + "/damage")}})
	}
	return &Table{
		Title: "Ablation X7: repairing s|u-unlabelled archives (Section VI future work)",
		Note: fmt.Sprintf("archive E after repair without s labels; paper scenario, nR=%d nA=%d nQ=%d, %d replicates; QDA label accuracy %.3f. The overlapping groups (≈1σ apart) bound every posterior method; see the separation sweep.",
			cfg.NR, cfg.NA, cfg.NQ, cfg.Reps, stats["qda/acc"].Mean),
		Header: []string{"Repair", "E (archive)", "Damage (MSD)"},
		Rows:   rows,
	}, nil
}

// AblationBlindSeparation (X7b) sweeps the separation between the
// s-conditional components and reports the residual archive E for the
// labelled oracle, the MAP-label blind repair, and the fully group-blind
// pooled transport. As the groups separate the posterior sharpens and blind
// repair converges to the oracle, while the pooled map — which cannot split
// the mixture — stops helping at all.
func AblationBlindSeparation(cfg SimConfig, separations []float64) (*Figure, error) {
	cfg = cfg.withDefaults()
	if len(separations) == 0 {
		separations = []float64{0.5, 1, 2, 3, 4}
	}
	oracle := Series{Name: "labelled (oracle)"}
	hard := Series{Name: "blind: hard"}
	pooled := Series{Name: "blind: pooled"}
	none := Series{Name: "unrepaired"}
	for _, sep := range separations {
		sc := simulate.Scenario{
			Dim: 2,
			Mean: map[dataset.Group][]float64{
				{U: 0, S: 0}: {-sep, -sep},
				{U: 0, S: 1}: {0, 0},
				{U: 1, S: 0}: {sep, sep},
				{U: 1, S: 1}: {0, 0},
			},
			PrU0:       0.5,
			PrS0GivenU: [2]float64{0.3, 0.1},
		}
		stats, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed+uint64(100*sep)+71, func(rep int, r *rng.RNG) (map[string]float64, error) {
			sampler, err := simulate.NewSampler(sc)
			if err != nil {
				return nil, err
			}
			research, archive, err := drawWithAllGroups(sampler, r, cfg.NR, cfg.NA)
			if err != nil {
				return nil, err
			}
			unlabelled := archive.DropS()
			plan, err := design(research, core.Options{NQ: cfg.NQ})
			if err != nil {
				return nil, err
			}
			out := make(map[string]float64)
			eNone, err := fairmetrics.E(archive, cfg.Metric)
			if err != nil {
				return nil, err
			}
			out["none"] = eNone

			rp, err := core.NewRepairer(plan, r.Split(1), core.RepairOptions{})
			if err != nil {
				return nil, err
			}
			labelled, err := rp.RepairTable(archive)
			if err != nil {
				return nil, err
			}
			e, err := fairmetrics.E(labelled, cfg.Metric)
			if err != nil {
				return nil, err
			}
			out["oracle"] = e

			for mi, method := range []blind.Method{blind.MethodHard, blind.MethodPooled} {
				brp, err := blind.New(plan, research, r.Split(uint64(mi)+2), blind.Options{Method: method})
				if err != nil {
					return nil, err
				}
				repaired, err := brp.RepairTable(unlabelled)
				if err != nil {
					return nil, err
				}
				e, err := fairmetrics.E(reattachTrueS(repaired, archive), cfg.Metric)
				if err != nil {
					return nil, err
				}
				out[method.String()] = e
			}
			return out, nil
		})
		if err != nil {
			return nil, fmt.Errorf("separation=%v: %w", sep, err)
		}
		for _, pair := range []struct {
			s   *Series
			key string
		}{{&oracle, "oracle"}, {&hard, "hard"}, {&pooled, "pooled"}, {&none, "none"}} {
			pair.s.X = append(pair.s.X, sep)
			pair.s.Y = append(pair.s.Y, stats[pair.key].Mean)
			pair.s.Err = append(pair.s.Err, stats[pair.key].Std)
		}
	}
	return &Figure{
		Title: fmt.Sprintf("Ablation X7b: blind repair vs s-group separation (nR=%d nA=%d nQ=%d, %d reps/point)",
			cfg.NR, cfg.NA, cfg.NQ, cfg.Reps),
		XLabel: "component separation (σ units per coordinate)",
		YLabel: "E (archive)",
		Series: []Series{none, oracle, hard, pooled},
	}, nil
}
