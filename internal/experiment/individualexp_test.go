package experiment

import "testing"

func TestAblationIndividualShape(t *testing.T) {
	cfg := quickSim()
	cfg.Reps = 3
	fig, err := AblationIndividual(cfg, []int{5, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(fig.Series))
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	disp := byName["dispersion (Kantorovich)"]
	com := byName["comonotonicity (Kantorovich)"]
	// Brenier direction: dispersion falls, order preservation rises with nQ.
	if disp.Y[1] >= disp.Y[0] {
		t.Errorf("dispersion did not fall with nQ: %v → %v", disp.Y[0], disp.Y[1])
	}
	if com.Y[1] <= com.Y[0] {
		t.Errorf("comonotonicity did not rise with nQ: %v → %v", com.Y[0], com.Y[1])
	}
	// The Monge reference is flat in nQ and bounds the stochastic repair.
	dq := byName["dispersion (quantile/Monge ref)"]
	if dq.Y[0] > disp.Y[0] {
		t.Errorf("Monge dispersion %v above Kantorovich %v at coarse nQ", dq.Y[0], disp.Y[0])
	}
	cq := byName["comonotonicity (quantile/Monge ref)"]
	for i, v := range cq.Y {
		if v < 0.95 {
			t.Errorf("Monge comonotonicity[%d] = %v, want ≈ 1", i, v)
		}
	}
}
