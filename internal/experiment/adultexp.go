package experiment

import (
	"fmt"
	"math"

	"otfair/internal/adult"
	"otfair/internal/classify"
	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/fairmetrics"
	"otfair/internal/mixture"
	"otfair/internal/rng"
)

// AdultConfig parameterizes the Adult-income experiments (Section V-B).
type AdultConfig struct {
	// NR and NA are the research/archive sizes (paper: 10000 / 35222).
	NR, NA int
	// NQ is the support resolution (paper: 250).
	NQ int
	// Reps is the replicate count; the paper reports single-run numbers,
	// so the default is 5 to attach a spread without changing the story.
	Reps int
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed fixes the experiment stream.
	Seed uint64
	// DataPath optionally points at a real UCI adult.data file; when empty
	// the calibrated synthetic source is used (DESIGN.md §4 substitution).
	DataPath string
	// Metric configures the E estimator (zero value: plug-in, as in the
	// simulation experiments).
	Metric fairmetrics.Config
	// MetricSet marks Metric as caller-provided.
	MetricSet bool
}

// adultRepairOptions turn on kernel dithering and within-cell jitter for
// the Adult experiments: age and hours are integer-valued with a heavy
// point mass at 40 hours, and without dithering such atoms pass through
// only two plan rows and are displaced differently per s-group (see the
// RepairOptions doc comment; the paper defers non-continuous features to
// future work in Section VI).
var adultRepairOptions = core.RepairOptions{KernelDither: true, Jitter: true}

func (c AdultConfig) withDefaults() AdultConfig {
	if c.NR == 0 {
		c.NR = 10000
	}
	if c.NA == 0 {
		c.NA = 35222
	}
	if c.NQ == 0 {
		c.NQ = 250
	}
	if c.Reps == 0 {
		c.Reps = 5
	}
	if c.Seed == 0 {
		c.Seed = 20240320
	}
	if !c.MetricSet {
		c.Metric = fairmetrics.Config{Estimator: fairmetrics.EstimatorPlugin}
	}
	return c
}

// adultData produces the research/archive split plus aligned income labels
// for the archive (used by the downstream experiment).
func adultData(cfg AdultConfig, r *rng.RNG) (research, archive *dataset.Table, researchY, archiveY []int, err error) {
	var full *dataset.Table
	var income []int
	if cfg.DataPath != "" {
		full, income, _, err = adult.LoadFile(cfg.DataPath)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		if cfg.NR+cfg.NA > full.Len() {
			return nil, nil, nil, nil, fmt.Errorf("experiment: adult file has %d rows, need %d", full.Len(), cfg.NR+cfg.NA)
		}
	} else {
		full, income, err = adult.Synthesize(r, cfg.NR+cfg.NA)
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}
	// Split by permutation, carrying income along.
	perm := r.Perm(full.Len())
	research, err = dataset.NewTable(full.Dim(), full.Names())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	archive, err = dataset.NewTable(full.Dim(), full.Names())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	for i, idx := range perm {
		if i >= cfg.NR+cfg.NA {
			break
		}
		if i < cfg.NR {
			if err := research.Append(full.At(idx)); err != nil {
				return nil, nil, nil, nil, err
			}
			researchY = append(researchY, income[idx])
		} else {
			if err := archive.Append(full.At(idx)); err != nil {
				return nil, nil, nil, nil, err
			}
			archiveY = append(archiveY, income[idx])
		}
	}
	return research, archive, researchY, archiveY, nil
}

// adultReplicate mirrors simReplicate for the Adult setting.
func adultReplicate(cfg AdultConfig, r *rng.RNG) (map[string]float64, error) {
	research, archive, _, _, err := adultData(cfg, r)
	if err != nil {
		return nil, err
	}
	plan, err := design(research, core.Options{NQ: cfg.NQ})
	if err != nil {
		return nil, err
	}
	repairer, err := core.NewRepairer(plan, r.Split(1), adultRepairOptions)
	if err != nil {
		return nil, err
	}
	repairedResearch, err := repairer.RepairTable(research)
	if err != nil {
		return nil, err
	}
	repairedArchive, err := repairer.RepairTable(archive)
	if err != nil {
		return nil, err
	}
	geometric, err := core.GeometricRepair(research, 0.5)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	record := func(prefix string, t *dataset.Table) error {
		res, err := fairmetrics.Compute(t, cfg.Metric)
		if err != nil {
			return fmt.Errorf("%s: %w", prefix, err)
		}
		for k, e := range res.PerFeature {
			out[fmt.Sprintf("%s/k%d", prefix, k+1)] = e
		}
		out[prefix+"/agg"] = res.Aggregate
		return nil
	}
	if err := record("none/research", research); err != nil {
		return nil, err
	}
	if err := record("none/archive", archive); err != nil {
		return nil, err
	}
	if err := record("dist/research", repairedResearch); err != nil {
		return nil, err
	}
	if err := record("dist/archive", repairedArchive); err != nil {
		return nil, err
	}
	if err := record("geo/research", geometric); err != nil {
		return nil, err
	}
	return out, nil
}

// TableII reproduces Table II: E per feature (age, hours/week) on the Adult
// data, research and archive splits, unrepaired vs distributional vs
// geometric.
func TableII(cfg AdultConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	stats, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed, func(rep int, r *rng.RNG) (map[string]float64, error) {
		return adultReplicate(cfg, r)
	})
	if err != nil {
		return nil, err
	}
	get := func(key string) Cell { return FromStat(stats[key]) }
	source := "synthetic (calibrated; DESIGN.md §4)"
	if cfg.DataPath != "" {
		source = cfg.DataPath
	}
	return &Table{
		Title: "Table II: OT-based repairs of gender dependence in the Adult income data",
		Note: fmt.Sprintf("source=%s; E metric (%s estimator), %d replicates; nR=%d nA=%d nQ=%d. s=male, u=college+.",
			source, cfg.Metric.Estimator, cfg.Reps, cfg.NR, cfg.NA, cfg.NQ),
		Header: []string{"Repair", "Age (Research)", "Hours (Research)", "Age (Archive)", "Hours (Archive)"},
		Rows: []Row{
			{Label: "None", Cells: []Cell{
				get("none/research/k1"), get("none/research/k2"),
				get("none/archive/k1"), get("none/archive/k2"),
			}},
			{Label: "Distributional (ours)", Cells: []Cell{
				get("dist/research/k1"), get("dist/research/k2"),
				get("dist/archive/k1"), get("dist/archive/k2"),
			}},
			{Label: "Geometric [10]", Cells: []Cell{
				get("geo/research/k1"), get("geo/research/k2"),
				NACell(), NACell(),
			}},
		},
	}, nil
}

// Downstream quantifies the decision-level effect (experiment X3): a
// logistic income classifier trained on unrepaired vs repaired research
// data, scored on the matching archive for accuracy and u-conditional
// disparate impact (Definition 2.3).
func Downstream(cfg AdultConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	stats, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed+7, func(rep int, r *rng.RNG) (map[string]float64, error) {
		research, archive, researchY, archiveY, err := adultData(cfg, r)
		if err != nil {
			return nil, err
		}
		plan, err := design(research, core.Options{NQ: cfg.NQ})
		if err != nil {
			return nil, err
		}
		repairer, err := core.NewRepairer(plan, r.Split(1), adultRepairOptions)
		if err != nil {
			return nil, err
		}
		repairedResearch, err := repairer.RepairTable(research)
		if err != nil {
			return nil, err
		}
		repairedArchive, err := repairer.RepairTable(archive)
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64)
		eval := func(prefix string, trainT, testT *dataset.Table) error {
			model, err := classify.Train(trainT.FeatureMatrix(), researchY, classify.TrainOptions{Epochs: 200})
			if err != nil {
				return err
			}
			acc, err := model.Accuracy(testT.FeatureMatrix(), archiveY)
			if err != nil {
				return err
			}
			rates, err := classify.Rates(testT, model.Predict)
			if err != nil {
				return err
			}
			out[prefix+"/accuracy"] = acc
			for u := 0; u < 2; u++ {
				di := rates.DisparateImpact(u)
				if math.IsInf(di, 0) || math.IsNaN(di) {
					di = -1 // sentinel kept visible in the report
				}
				out[fmt.Sprintf("%s/DI(u=%d)", prefix, u)] = di
			}
			return nil
		}
		if err := eval("unrepaired", research, archive); err != nil {
			return nil, err
		}
		if err := eval("repaired", repairedResearch, repairedArchive); err != nil {
			return nil, err
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	get := func(key string) Cell { return FromStat(stats[key]) }
	return &Table{
		Title: "Downstream effect (X3): income classifier on unrepaired vs repaired Adult data",
		Note: fmt.Sprintf("logistic g(x); DI(g,u) per Definition 2.3 (1 = parity, EEOC threshold 0.8); %d replicates.",
			cfg.Reps),
		Header: []string{"Training data", "Accuracy", "DI(u=0)", "DI(u=1)"},
		Rows: []Row{
			{Label: "Unrepaired", Cells: []Cell{
				get("unrepaired/accuracy"), get("unrepaired/DI(u=0)"), get("unrepaired/DI(u=1)"),
			}},
			{Label: "Repaired (ours)", Cells: []Cell{
				get("repaired/accuracy"), get("repaired/DI(u=0)"), get("repaired/DI(u=1)"),
			}},
		},
	}, nil
}

// LabelEstimation quantifies the cost of estimating ŝ|u for unlabelled
// archives (experiment X4): repair quality with true labels vs GMM-EM
// estimated labels, plus the estimator's accuracy.
func LabelEstimation(cfg AdultConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	stats, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed+13, func(rep int, r *rng.RNG) (map[string]float64, error) {
		research, archive, _, _, err := adultData(cfg, r)
		if err != nil {
			return nil, err
		}
		plan, err := design(research, core.Options{NQ: cfg.NQ})
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64)
		eBefore, err := fairmetrics.E(archive, cfg.Metric)
		if err != nil {
			return nil, err
		}
		out["unrepaired/E"] = eBefore

		// True labels.
		repTrue, err := core.NewRepairer(plan, r.Split(1), adultRepairOptions)
		if err != nil {
			return nil, err
		}
		repairedTrue, err := repTrue.RepairTable(archive)
		if err != nil {
			return nil, err
		}
		eTrue, err := fairmetrics.E(repairedTrue, cfg.Metric)
		if err != nil {
			return nil, err
		}
		out["true-labels/E"] = eTrue

		// Estimated labels: drop S, estimate via per-u GMM anchored on the
		// research groups, repair with ŝ, then score E against TRUE labels
		// (fairness is judged on the real protected attribute).
		blind := archive.DropS()
		est, err := mixture.NewLabelEstimator(research, blind, r.Split(2), mixture.Options{})
		if err != nil {
			return nil, err
		}
		acc, err := est.Accuracy(archive)
		if err != nil {
			return nil, err
		}
		out["estimated-labels/accuracy"] = acc
		labelled, err := est.Label(blind)
		if err != nil {
			return nil, err
		}
		repEst, err := core.NewRepairer(plan, r.Split(3), adultRepairOptions)
		if err != nil {
			return nil, err
		}
		repairedEst, err := repEst.RepairTable(labelled)
		if err != nil {
			return nil, err
		}
		// Restore true labels for scoring.
		scored := repairedEst.Clone()
		for i := range scored.Records() {
			scored.Records()[i].S = archive.At(i).S
		}
		eEst, err := fairmetrics.E(scored, cfg.Metric)
		if err != nil {
			return nil, err
		}
		out["estimated-labels/E"] = eEst
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	get := func(key string) Cell { return FromStat(stats[key]) }
	return &Table{
		Title:  "Label estimation sensitivity (X4): repairing with true vs GMM-estimated s|u labels",
		Note:   fmt.Sprintf("E scored against true protected labels; %d replicates.", cfg.Reps),
		Header: []string{"Condition", "E (archive)", "Label accuracy"},
		Rows: []Row{
			{Label: "Unrepaired", Cells: []Cell{get("unrepaired/E"), NACell()}},
			{Label: "Repaired, true labels", Cells: []Cell{get("true-labels/E"), NACell()}},
			{Label: "Repaired, estimated labels", Cells: []Cell{get("estimated-labels/E"), get("estimated-labels/accuracy")}},
		},
	}, nil
}
