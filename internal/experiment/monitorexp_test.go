package experiment

import "testing"

func TestAblationMonitorShape(t *testing.T) {
	cfg := quickSim()
	cfg.Reps = 2
	tbl, err := AblationMonitor(cfg, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	quiet := tbl.Rows[0].Cells[0].Mean
	loud := tbl.Rows[1].Cells[0].Mean
	if quiet != 0 {
		t.Errorf("drift 0 detection rate = %v, want 0 (false alarms)", quiet)
	}
	if loud != 1 {
		t.Errorf("drift 2σ detection rate = %v, want 1", loud)
	}
	if tbl.Rows[0].Cells[1].NA != true {
		t.Error("undetected row must render first-alarm as N/A")
	}
	if tbl.Rows[1].Cells[2].Mean <= 0 {
		t.Error("detected drift must produce alarms")
	}
}

func TestAblationStoppingShape(t *testing.T) {
	cfg := quickSim()
	cfg.Reps = 2
	tbl, err := AblationStopping(cfg, []float64{0.15, 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	loose := tbl.Rows[0].Cells[0].Mean
	tight := tbl.Rows[1].Cells[0].Mean
	if loose > tight {
		t.Errorf("loose tolerance stopped later (%v) than tight (%v)", loose, tight)
	}
	for i, row := range tbl.Rows {
		if row.Cells[1].Mean != 1 {
			t.Errorf("row %d: convergence rate %v, want 1 on a 3000-record pool", i, row.Cells[1].Mean)
		}
	}
}
