// Package experiment is the reproduction harness: it regenerates every
// table and figure of the paper's evaluation (Section V) plus the ablations
// DESIGN.md commits to, on top of the core repair, the simulation and Adult
// substrates, and the fairness metrics. cmd/repro is a thin CLI over this
// package; bench_test.go wraps each experiment in a testing.B benchmark.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"otfair/internal/rng"
	"otfair/internal/stat"
)

// CellStat aggregates one reported value over Monte-Carlo replicates.
type CellStat struct {
	Mean, Std float64
	N         int
}

// MCFunc runs one replicate with its own deterministic RNG and returns the
// named measurements of that replicate.
type MCFunc func(rep int, r *rng.RNG) (map[string]float64, error)

// RunMC executes reps replicates of fn, fanning out over workers goroutines
// (0 = GOMAXPROCS), and reduces each named measurement to mean ± std.
// Replicate r uses the deterministic child stream Split(r) of the seed, so
// results are independent of scheduling order.
func RunMC(reps, workers int, seed uint64, fn MCFunc) (map[string]CellStat, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("experiment: reps must be positive, got %d", reps)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > reps {
		workers = reps
	}
	root := rng.New(seed)

	type outcome struct {
		vals map[string]float64
		err  error
	}
	results := make([]outcome, reps)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := range next {
				vals, err := fn(rep, root.Split(uint64(rep)))
				results[rep] = outcome{vals: vals, err: err}
			}
		}()
	}
	for rep := 0; rep < reps; rep++ {
		next <- rep
	}
	close(next)
	wg.Wait()

	acc := make(map[string]*stat.Welford)
	for rep, out := range results {
		if out.err != nil {
			return nil, fmt.Errorf("experiment: replicate %d: %w", rep, out.err)
		}
		for name, v := range out.vals {
			w, ok := acc[name]
			if !ok {
				w = &stat.Welford{}
				acc[name] = w
			}
			w.Add(v)
		}
	}
	final := make(map[string]CellStat, len(acc))
	for name, w := range acc {
		cs := CellStat{Mean: w.Mean(), N: w.N()}
		if w.N() > 1 {
			cs.Std = w.Std()
		}
		final[name] = cs
	}
	return final, nil
}

// SortedKeys returns the measurement names in lexicographic order, for
// stable rendering.
func SortedKeys(m map[string]CellStat) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
