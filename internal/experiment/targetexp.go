package experiment

import (
	"fmt"

	"otfair/internal/core"
	"otfair/internal/fairmetrics"
	"otfair/internal/rng"
	"otfair/internal/simulate"
)

// AblationTarget (X10) compares the repair-target families of Section VI:
// the paper's W2 barycenter against the vertical mixture average and the
// moment-matched Gaussian. Any s-invariant target quenches E; they differ
// in how much they damage the data — the barycenter is the minimal-
// transport compromise by construction, the mixture target forces both
// groups onto a bimodal shape, and the Gaussian is a parametric shortcut
// that is exact in this Gaussian scenario and biased outside it.
func AblationTarget(cfg SimConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	targets := []core.TargetKind{core.TargetBarycenter, core.TargetMixture, core.TargetGaussian}
	stats, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed+101, func(rep int, r *rng.RNG) (map[string]float64, error) {
		sampler, err := simulate.NewSampler(simulate.Paper())
		if err != nil {
			return nil, err
		}
		research, archive, err := drawWithAllGroups(sampler, r, cfg.NR, cfg.NA)
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64)
		eNone, err := fairmetrics.E(archive, cfg.Metric)
		if err != nil {
			return nil, err
		}
		out["none/E"] = eNone
		for ti, target := range targets {
			plan, err := design(research, core.Options{NQ: cfg.NQ, Target: target})
			if err != nil {
				return nil, fmt.Errorf("%v: %w", target, err)
			}
			rp, err := core.NewRepairer(plan, r.Split(uint64(ti)+1), core.RepairOptions{})
			if err != nil {
				return nil, err
			}
			repaired, err := rp.RepairTable(archive)
			if err != nil {
				return nil, err
			}
			e, err := fairmetrics.E(repaired, cfg.Metric)
			if err != nil {
				return nil, err
			}
			dmg, err := fairmetrics.Damage(archive, repaired)
			if err != nil {
				return nil, err
			}
			cost := 0.0
			for u := 0; u < 2; u++ {
				for k := 0; k < plan.Dim; k++ {
					cost += plan.TransportCost(u, k)
				}
			}
			key := target.String()
			out[key+"/E"] = e
			out[key+"/damage"] = dmg
			out[key+"/cost"] = cost
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	get := func(key string) Cell { return FromStat(stats[key]) }
	rows := []Row{{Label: "None", Cells: []Cell{get("none/E"), NACell(), NACell()}}}
	labels := map[core.TargetKind]string{
		core.TargetBarycenter: "W2 barycenter (paper)",
		core.TargetMixture:    "Mixture (vertical average)",
		core.TargetGaussian:   "Gaussian (moment-matched)",
	}
	for _, target := range targets {
		key := target.String()
		rows = append(rows, Row{Label: labels[target], Cells: []Cell{
			get(key + "/E"), get(key + "/damage"), get(key + "/cost"),
		}})
	}
	return &Table{
		Title: "Ablation X10: repair-target families (Section VI non-Wasserstein designs)",
		Note: fmt.Sprintf("archive split of the simulation setting; nR=%d nA=%d nQ=%d, %d replicates. Transport cost is Σ W2²(p_s, ν) over all (u,s,k) plans.",
			cfg.NR, cfg.NA, cfg.NQ, cfg.Reps),
		Header: []string{"Target", "E (archive)", "Damage (MSD)", "Transport cost"},
		Rows:   rows,
	}, nil
}
