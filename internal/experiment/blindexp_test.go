package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationBlindShape(t *testing.T) {
	tbl, err := AblationBlind(quickSim())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (none, oracle, 4 blind methods)", len(tbl.Rows))
	}
	byLabel := map[string][]Cell{}
	for _, row := range tbl.Rows {
		byLabel[row.Label] = row.Cells
	}
	none := byLabel["None"][0].Mean
	oracle := byLabel["Labelled (oracle)"][0].Mean
	hard := byLabel["Blind: hard (MAP ŝ, QDA)"][0].Mean
	pooled := byLabel["Blind: pooled (group-blind transport)"][0].Mean
	if !(oracle < hard) {
		t.Errorf("oracle E %v must beat blind-hard %v", oracle, hard)
	}
	if !(hard < none) {
		t.Errorf("blind-hard E %v must beat no repair %v", hard, none)
	}
	if !(pooled <= none*1.05) {
		t.Errorf("pooled E %v must not exceed unrepaired %v", pooled, none)
	}
	// Pooled moves every point by a common map, so it damages the least.
	oracleDmg := byLabel["Labelled (oracle)"][1].Mean
	pooledDmg := byLabel["Blind: pooled (group-blind transport)"][1].Mean
	if !(pooledDmg < oracleDmg) {
		t.Errorf("pooled damage %v must undercut oracle damage %v", pooledDmg, oracleDmg)
	}

	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "X7") {
		t.Error("rendered table must carry the experiment id")
	}
}

func TestAblationBlindSeparationShape(t *testing.T) {
	cfg := quickSim()
	cfg.Reps = 3
	fig, err := AblationBlindSeparation(cfg, []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(fig.Series))
	}
	series := map[string]Series{}
	for _, s := range fig.Series {
		series[s.Name] = s
		if len(s.X) != 2 || len(s.Y) != 2 {
			t.Fatalf("series %q has %d points, want 2", s.Name, len(s.X))
		}
	}
	// At wide separation the posterior is sharp: blind-hard must approach
	// the oracle (within 3×) while pooled stays near the unrepaired level.
	oracle := series["labelled (oracle)"].Y[1]
	hard := series["blind: hard"].Y[1]
	pooled := series["blind: pooled"].Y[1]
	none := series["unrepaired"].Y[1]
	if hard > 3*oracle+0.05 {
		t.Errorf("separated: blind-hard %v should approach oracle %v", hard, oracle)
	}
	if pooled < none/3 {
		t.Errorf("separated: pooled %v should stay near unrepaired %v (a common map cannot split the mixture)", pooled, none)
	}

	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "X7b") {
		t.Error("rendered figure must carry the experiment id")
	}
}
