package experiment

import (
	"fmt"
	"time"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/fairmetrics"
	"otfair/internal/joint"
	"otfair/internal/rng"
	"otfair/internal/simulate"
)

// oppositeCorrScenario carries all s-dependence in the joint structure:
// identical standard-normal per-feature marginals, correlation +rho for
// s=0 and −rho for s=1 in both u-populations.
func oppositeCorrScenario(rho float64) simulate.Scenario {
	pos := [][]float64{{1, rho}, {rho, 1}}
	neg := [][]float64{{1, -rho}, {-rho, 1}}
	zero := []float64{0, 0}
	return simulate.Scenario{
		Dim: 2,
		Mean: map[dataset.Group][]float64{
			{U: 0, S: 0}: zero, {U: 0, S: 1}: zero,
			{U: 1, S: 0}: zero, {U: 1, S: 1}: zero,
		},
		Cov: map[dataset.Group][][]float64{
			{U: 0, S: 0}: pos, {U: 0, S: 1}: neg,
			{U: 1, S: 0}: pos, {U: 1, S: 1}: neg,
		},
		PrU0:       0.5,
		PrS0GivenU: [2]float64{0.5, 0.5},
	}
}

// jointRepairMetrics runs both repairs on one draw and reports every metric
// the X8 comparison needs.
func jointRepairMetrics(sc simulate.Scenario, r *rng.RNG, cfg SimConfig, jointNQ int) (map[string]float64, error) {
	sampler, err := simulate.NewSampler(sc)
	if err != nil {
		return nil, err
	}
	research, archive, err := drawWithAllGroups(sampler, r, cfg.NR, cfg.NA)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	record := func(prefix string, tab *dataset.Table, repaired bool) error {
		e, err := fairmetrics.E(tab, cfg.Metric)
		if err != nil {
			return err
		}
		out[prefix+"/E"] = e
		ej, err := fairmetrics.EJoint(tab, fairmetrics.JointConfig{})
		if err != nil {
			return err
		}
		out[prefix+"/EJoint"] = ej
		gap, err := fairmetrics.CorrelationGap(tab)
		if err != nil {
			return err
		}
		out[prefix+"/corrgap"] = gap
		if repaired {
			dmg, err := fairmetrics.Damage(archive, tab)
			if err != nil {
				return err
			}
			out[prefix+"/damage"] = dmg
		}
		return nil
	}
	if err := record("none", archive, false); err != nil {
		return nil, err
	}

	start := time.Now()
	// Deliberately core.Design, not the design() warm-start hook: the
	// marginal design_ms column measures the real KDE + OT cost, which a
	// disk warm start (cmd/repro -store) would otherwise zero out.
	mPlan, err := core.Design(research, core.Options{NQ: cfg.NQ})
	if err != nil {
		return nil, err
	}
	out["marginal/design_ms"] = float64(time.Since(start).Microseconds()) / 1000
	mrp, err := core.NewRepairer(mPlan, r.Split(1), core.RepairOptions{})
	if err != nil {
		return nil, err
	}
	marginalOut, err := mrp.RepairTable(archive)
	if err != nil {
		return nil, err
	}
	if err := record("marginal", marginalOut, true); err != nil {
		return nil, err
	}

	start = time.Now()
	jPlan, err := joint.Design(research, joint.Options{NQ: jointNQ})
	if err != nil {
		return nil, err
	}
	out["joint/design_ms"] = float64(time.Since(start).Microseconds()) / 1000
	jrp, err := joint.NewRepairer(jPlan, r.Split(2))
	if err != nil {
		return nil, err
	}
	jointOut, err := jrp.RepairTable(archive)
	if err != nil {
		return nil, err
	}
	if err := record("joint", jointOut, true); err != nil {
		return nil, err
	}
	return out, nil
}

// AblationJoint (X8) measures the intra-feature-correlation trade-off the
// paper's Section VI defers: the feature-stratified repair (Algorithm 1)
// against the full multivariate repair on (a) the paper's mean-shifted
// scenario and (b) a structure-only scenario where both s-groups share
// identical per-feature marginals but opposite correlation signs — the
// regime the per-feature repair is provably blind to.
func AblationJoint(cfg SimConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	const jointNQ = 16
	scenarios := []struct {
		id string
		sc simulate.Scenario
	}{
		{"paper", simulate.Paper()},
		{"corr", oppositeCorrScenario(0.8)},
	}
	stats := make(map[string]CellStat)
	for _, sn := range scenarios {
		s, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed+81, func(rep int, r *rng.RNG) (map[string]float64, error) {
			return jointRepairMetrics(sn.sc, r, cfg, jointNQ)
		})
		if err != nil {
			return nil, fmt.Errorf("%s scenario: %w", sn.id, err)
		}
		for k, v := range s {
			stats[sn.id+"/"+k] = v
		}
	}
	get := func(key string) Cell { return FromStat(stats[key]) }
	var rows []Row
	for _, sn := range scenarios {
		label := map[string]string{"paper": "Paper §V-A (mean shift)", "corr": "Structure-only (ρ = ±0.8)"}[sn.id]
		rows = append(rows,
			Row{Label: label + " — none", Cells: []Cell{
				get(sn.id + "/none/E"), get(sn.id + "/none/EJoint"), get(sn.id + "/none/corrgap"), NACell(), NACell(),
			}},
			Row{Label: label + " — per-feature", Cells: []Cell{
				get(sn.id + "/marginal/E"), get(sn.id + "/marginal/EJoint"), get(sn.id + "/marginal/corrgap"),
				get(sn.id + "/marginal/damage"), get(sn.id + "/marginal/design_ms"),
			}},
			Row{Label: label + " — joint", Cells: []Cell{
				get(sn.id + "/joint/E"), get(sn.id + "/joint/EJoint"), get(sn.id + "/joint/corrgap"),
				get(sn.id + "/joint/damage"), get(sn.id + "/joint/design_ms"),
			}},
		)
	}
	return &Table{
		Title: "Ablation X8: feature-stratified (Algorithm 1) vs joint multivariate repair (Section VI trade-off)",
		Note: fmt.Sprintf("archive metrics; nR=%d nA=%d, per-feature nQ=%d, joint nQ=%d/dim, %d replicates. E is the per-feature metric; EJoint and the correlation gap capture the dependence the feature split cannot see.",
			cfg.NR, cfg.NA, cfg.NQ, jointNQ, cfg.Reps),
		Header: []string{"Scenario / repair", "E", "EJoint", "Corr gap", "Damage", "Design (ms)"},
		Rows:   rows,
	}, nil
}
