package experiment

import (
	"fmt"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/fairmetrics"
	"otfair/internal/rng"
	"otfair/internal/simulate"
)

// SimConfig parameterizes the simulation-study experiments (Section V-A).
type SimConfig struct {
	// NR and NA are the research/archive sizes (paper: 500 / 5000).
	NR, NA int
	// NQ is the interpolated support resolution (paper: 50).
	NQ int
	// Reps is the Monte-Carlo replicate count (paper: 200).
	Reps int
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed fixes the experiment stream.
	Seed uint64
	// Metric configures the E estimator. The zero value selects the
	// plug-in estimator, the convention consistent with the paper's
	// reported behaviour across sample sizes (see internal/fairmetrics and
	// EXPERIMENTS.md).
	Metric fairmetrics.Config
	// MetricSet marks Metric as caller-provided.
	MetricSet bool
}

func (c SimConfig) withDefaults() SimConfig {
	if c.NR == 0 {
		c.NR = 500
	}
	if c.NA == 0 {
		c.NA = 5000
	}
	if c.NQ == 0 {
		c.NQ = 50
	}
	if c.Reps == 0 {
		c.Reps = 200
	}
	if c.Seed == 0 {
		c.Seed = 20240320 // arXiv date of the paper; any fixed value works
	}
	if !c.MetricSet {
		c.Metric = fairmetrics.Config{Estimator: fairmetrics.EstimatorPlugin}
	}
	return c
}

// simReplicate draws one replicate of the paper's composite data set,
// designs the repair on the research part, and returns every E measurement
// Table I needs, keyed as "<repair>/<split>/k<feature>".
func simReplicate(cfg SimConfig, r *rng.RNG) (map[string]float64, error) {
	sampler, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		return nil, err
	}
	research, archive, err := drawWithAllGroups(sampler, r, cfg.NR, cfg.NA)
	if err != nil {
		return nil, err
	}
	plan, err := design(research, core.Options{NQ: cfg.NQ})
	if err != nil {
		return nil, err
	}
	repairer, err := core.NewRepairer(plan, r.Split(1), core.RepairOptions{})
	if err != nil {
		return nil, err
	}
	repairedResearch, err := repairer.RepairTable(research)
	if err != nil {
		return nil, err
	}
	repairedArchive, err := repairer.RepairTable(archive)
	if err != nil {
		return nil, err
	}
	geometric, err := core.GeometricRepair(research, 0.5)
	if err != nil {
		return nil, err
	}

	out := make(map[string]float64)
	record := func(prefix string, t *dataset.Table) error {
		res, err := fairmetrics.Compute(t, cfg.Metric)
		if err != nil {
			return fmt.Errorf("%s: %w", prefix, err)
		}
		for k, e := range res.PerFeature {
			out[fmt.Sprintf("%s/k%d", prefix, k+1)] = e
		}
		out[prefix+"/agg"] = res.Aggregate
		return nil
	}
	if err := record("none/research", research); err != nil {
		return nil, err
	}
	if err := record("none/archive", archive); err != nil {
		return nil, err
	}
	if err := record("dist/research", repairedResearch); err != nil {
		return nil, err
	}
	if err := record("dist/archive", repairedArchive); err != nil {
		return nil, err
	}
	if err := record("geo/research", geometric); err != nil {
		return nil, err
	}
	// Composite (research ∪ archive) repaired — what Figure 4 reports.
	composite := repairedResearch.Clone()
	for _, rec := range repairedArchive.Records() {
		if err := composite.Append(rec); err != nil {
			return nil, err
		}
	}
	if err := record("dist/composite", composite); err != nil {
		return nil, err
	}
	// Quantization damage of the composite repair: the cost side of the
	// nQ trade-off (coarse supports quench dependence but displace data).
	original := research.Clone()
	for _, rec := range archive.Records() {
		if err := original.Append(rec); err != nil {
			return nil, err
		}
	}
	dmg, err := fairmetrics.Damage(original, composite)
	if err != nil {
		return nil, err
	}
	out["dist/composite/damage"] = dmg
	return out, nil
}

// drawWithAllGroups redraws the research/archive split until every (u,s)
// research group holds at least two points (Algorithm 1 needs all four
// groups; at the Figure 3 extreme of nR = 25 the rarest group has an
// expected size of 1.25, so empty draws are routine rather than
// exceptional). Retries use derived deterministic streams.
func drawWithAllGroups(sampler *simulate.Sampler, r *rng.RNG, nR, nA int) (research, archive *dataset.Table, err error) {
	const maxTries = 200
	for try := 0; try < maxTries; try++ {
		rr := r
		if try > 0 {
			rr = r.Split(uint64(10_000 + try))
		}
		research, archive, err = sampler.ResearchArchive(rr, nR, nA)
		if err != nil {
			return nil, nil, err
		}
		counts := research.Counts()
		ok := true
		for _, g := range dataset.Groups() {
			if counts[g] < 2 {
				ok = false
				break
			}
		}
		if ok {
			return research, archive, nil
		}
	}
	return nil, nil, fmt.Errorf("experiment: no draw with all research groups populated after %d tries (nR=%d)", maxTries, nR)
}

// TableI reproduces Table I: E_k per feature for research and archive data,
// unrepaired vs distributional repair vs the geometric baseline (which is
// on-sample only, hence "-" in the archive columns), over Reps Monte-Carlo
// replicates.
func TableI(cfg SimConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	stats, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed, func(rep int, r *rng.RNG) (map[string]float64, error) {
		return simReplicate(cfg, r)
	})
	if err != nil {
		return nil, err
	}
	get := func(key string) Cell { return FromStat(stats[key]) }
	return &Table{
		Title: "Table I: OT-based repairs of simulated bivariate Gaussian sub-groups",
		Note: fmt.Sprintf("E metric (%s estimator), %d Monte-Carlo replicates; nR=%d nA=%d nQ=%d. Lower is better.",
			cfg.Metric.Estimator, cfg.Reps, cfg.NR, cfg.NA, cfg.NQ),
		Header: []string{"Repair", "E1 (Research)", "E2 (Research)", "E1 (Archive)", "E2 (Archive)"},
		Rows: []Row{
			{Label: "None", Cells: []Cell{
				get("none/research/k1"), get("none/research/k2"),
				get("none/archive/k1"), get("none/archive/k2"),
			}},
			{Label: "Distributional (ours)", Cells: []Cell{
				get("dist/research/k1"), get("dist/research/k2"),
				get("dist/archive/k1"), get("dist/archive/k2"),
			}},
			{Label: "Geometric [10]", Cells: []Cell{
				get("geo/research/k1"), get("geo/research/k2"),
				NACell(), NACell(),
			}},
		},
	}, nil
}

// Figure3 reproduces Figure 3: E (feature-aggregated) for repaired research
// and repaired archive data as the research size nR grows, with the
// unrepaired archive level as reference.
func Figure3(cfg SimConfig, nRs []int) (*Figure, error) {
	cfg = cfg.withDefaults()
	if len(nRs) == 0 {
		nRs = []int{25, 50, 100, 200, 350, 500, 750}
	}
	fig := &Figure{
		Title: fmt.Sprintf("Figure 3: E vs research size nR (nA=%d, nQ=%d, %d reps/point, %s estimator)",
			cfg.NA, cfg.NQ, cfg.Reps, cfg.Metric.Estimator),
		XLabel: "nR",
		YLabel: "E",
	}
	series := map[string]*Series{
		"research (repaired)": {Name: "research (repaired)"},
		"archive (repaired)":  {Name: "archive (repaired)"},
		"unrepaired":          {Name: "unrepaired"},
	}
	for _, nR := range nRs {
		run := cfg
		run.NR = nR
		stats, err := RunMC(run.Reps, run.Workers, run.Seed+uint64(nR), func(rep int, r *rng.RNG) (map[string]float64, error) {
			return simReplicate(run, r)
		})
		if err != nil {
			return nil, fmt.Errorf("nR=%d: %w", nR, err)
		}
		push := func(name, key string) {
			s := series[name]
			s.X = append(s.X, float64(nR))
			s.Y = append(s.Y, stats[key].Mean)
			s.Err = append(s.Err, stats[key].Std)
		}
		push("research (repaired)", "dist/research/agg")
		push("archive (repaired)", "dist/archive/agg")
		push("unrepaired", "none/archive/agg")
	}
	fig.Series = []Series{*series["research (repaired)"], *series["archive (repaired)"], *series["unrepaired"]}
	return fig, nil
}

// Figure4 reproduces Figure 4: E of the composite repaired data set
// (X_R ∪ X_A) as the interpolation resolution nQ grows.
func Figure4(cfg SimConfig, nQs []int) (*Figure, error) {
	cfg = cfg.withDefaults()
	if len(nQs) == 0 {
		nQs = []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
	}
	s := Series{Name: "composite E (repaired)"}
	d := Series{Name: "composite damage (MSD)"}
	for _, nQ := range nQs {
		run := cfg
		run.NQ = nQ
		stats, err := RunMC(run.Reps, run.Workers, run.Seed+uint64(1000+nQ), func(rep int, r *rng.RNG) (map[string]float64, error) {
			return simReplicate(run, r)
		})
		if err != nil {
			return nil, fmt.Errorf("nQ=%d: %w", nQ, err)
		}
		s.X = append(s.X, float64(nQ))
		s.Y = append(s.Y, stats["dist/composite/agg"].Mean)
		s.Err = append(s.Err, stats["dist/composite/agg"].Std)
		d.X = append(d.X, float64(nQ))
		d.Y = append(d.Y, stats["dist/composite/damage"].Mean)
		d.Err = append(d.Err, stats["dist/composite/damage"].Std)
	}
	return &Figure{
		Title: fmt.Sprintf("Figure 4: composite E and damage vs support resolution nQ (nR=%d, nA=%d, %d reps/point, %s estimator)",
			cfg.NR, cfg.NA, cfg.Reps, cfg.Metric.Estimator),
		XLabel: "nQ",
		YLabel: "value",
		Series: []Series{s, d},
	}, nil
}
