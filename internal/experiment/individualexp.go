package experiment

import (
	"fmt"

	"otfair/internal/core"
	"otfair/internal/fairmetrics"
	"otfair/internal/rng"
	"otfair/internal/simulate"
)

// AblationIndividual (X11) verifies the paper's Brenier prediction
// (Section VI): as n_Q → ∞ the Kantorovich plans converge to Monge maps, so
// the stochastic repair should stop splitting mass — feature-similar points
// become repaired similarly. The sweep reports the repair dispersion (std
// of repaired values within narrow input bins; 0 for a function) and the
// comonotonicity (order preservation; 1 for a monotone map) of the
// distributional repair as n_Q grows, with the deterministic quantile
// (Monge-style Feldman) repair as the reference.
func AblationIndividual(cfg SimConfig, nQs []int) (*Figure, error) {
	cfg = cfg.withDefaults()
	if len(nQs) == 0 {
		nQs = []int{5, 10, 25, 50, 100, 200}
	}
	const dispersionBins = 40
	dispersion := Series{Name: "dispersion (Kantorovich)"}
	comono := Series{Name: "comonotonicity (Kantorovich)"}
	dispersionQ := Series{Name: "dispersion (quantile/Monge ref)"}
	comonoQ := Series{Name: "comonotonicity (quantile/Monge ref)"}
	for _, nQ := range nQs {
		stats, err := RunMC(cfg.Reps, cfg.Workers, cfg.Seed+uint64(nQ)+111, func(rep int, r *rng.RNG) (map[string]float64, error) {
			sampler, err := simulate.NewSampler(simulate.Paper())
			if err != nil {
				return nil, err
			}
			research, archive, err := drawWithAllGroups(sampler, r, cfg.NR, cfg.NA)
			if err != nil {
				return nil, err
			}
			out := make(map[string]float64)

			plan, err := design(research, core.Options{NQ: nQ})
			if err != nil {
				return nil, err
			}
			rp, err := core.NewRepairer(plan, r.Split(1), core.RepairOptions{})
			if err != nil {
				return nil, err
			}
			repaired, err := rp.RepairTable(archive)
			if err != nil {
				return nil, err
			}
			d, err := fairmetrics.RepairDispersion(archive, repaired, dispersionBins)
			if err != nil {
				return nil, err
			}
			c, err := fairmetrics.Comonotonicity(archive, repaired)
			if err != nil {
				return nil, err
			}
			out["disp"] = d
			out["comono"] = c

			qp, err := core.DesignQuantile(research, 1)
			if err != nil {
				return nil, err
			}
			qRepaired, err := qp.RepairTable(archive)
			if err != nil {
				return nil, err
			}
			dq, err := fairmetrics.RepairDispersion(archive, qRepaired, dispersionBins)
			if err != nil {
				return nil, err
			}
			cq, err := fairmetrics.Comonotonicity(archive, qRepaired)
			if err != nil {
				return nil, err
			}
			out["dispQ"] = dq
			out["comonoQ"] = cq
			return out, nil
		})
		if err != nil {
			return nil, fmt.Errorf("nQ=%d: %w", nQ, err)
		}
		x := float64(nQ)
		for _, pair := range []struct {
			s   *Series
			key string
		}{
			{&dispersion, "disp"}, {&comono, "comono"},
			{&dispersionQ, "dispQ"}, {&comonoQ, "comonoQ"},
		} {
			pair.s.X = append(pair.s.X, x)
			pair.s.Y = append(pair.s.Y, stats[pair.key].Mean)
			pair.s.Err = append(pair.s.Err, stats[pair.key].Std)
		}
	}
	return &Figure{
		Title: fmt.Sprintf("Ablation X11: individual fairness vs n_Q — Brenier convergence to a Monge map (nR=%d nA=%d, %d reps/point)",
			cfg.NR, cfg.NA, cfg.Reps),
		XLabel: "support resolution n_Q",
		YLabel: "value",
		Series: []Series{dispersion, comono, dispersionQ, comonoQ},
	}, nil
}
