package experiment

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"otfair/internal/fairmetrics"
	"otfair/internal/rng"
)

// quickSim keeps test runtimes small while exercising the full pipeline.
func quickSim() SimConfig {
	return SimConfig{NR: 200, NA: 800, NQ: 30, Reps: 4, Seed: 11}
}

func quickAdult() AdultConfig {
	// Group sizes must stay large enough that the floored-histogram E
	// estimator's sparsity bias does not mask the repair (see EXPERIMENTS.md);
	// these are ~40% of the paper's sizes.
	return AdultConfig{NR: 4000, NA: 9000, NQ: 100, Reps: 2, Seed: 11}
}

func TestRunMCAggregates(t *testing.T) {
	stats, err := RunMC(10, 4, 3, func(rep int, r *rng.RNG) (map[string]float64, error) {
		return map[string]float64{"v": float64(rep)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats["v"].N != 10 || math.Abs(stats["v"].Mean-4.5) > 1e-12 {
		t.Errorf("stats = %+v", stats["v"])
	}
}

func TestRunMCDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(rep int, r *rng.RNG) (map[string]float64, error) {
		return map[string]float64{"x": r.Float64()}, nil
	}
	a, err := RunMC(8, 1, 42, fn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMC(8, 8, 42, fn)
	if err != nil {
		t.Fatal(err)
	}
	if a["x"].Mean != b["x"].Mean || a["x"].Std != b["x"].Std {
		t.Errorf("parallel aggregation differs: %+v vs %+v", a["x"], b["x"])
	}
}

func TestRunMCPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := RunMC(4, 2, 1, func(rep int, r *rng.RNG) (map[string]float64, error) {
		if rep == 2 {
			return nil, boom
		}
		return map[string]float64{"v": 1}, nil
	})
	if err == nil || !strings.Contains(err.Error(), "replicate 2") {
		t.Errorf("err = %v", err)
	}
	if _, err := RunMC(0, 1, 1, nil); err == nil {
		t.Error("zero reps accepted")
	}
}

func TestTableIShape(t *testing.T) {
	tbl, err := TableI(quickSim())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Paper shape contract: repaired << unrepaired on both splits; archive
	// repair weaker than research repair; geometric on-sample best or
	// comparable; geometric archive cells are N/A.
	none := tbl.Rows[0].Cells
	dist := tbl.Rows[1].Cells
	geo := tbl.Rows[2].Cells
	for k := 0; k < 2; k++ {
		if dist[k].Mean > none[k].Mean/3 {
			t.Errorf("research k=%d: repaired %v vs unrepaired %v", k, dist[k].Mean, none[k].Mean)
		}
		if dist[k+2].Mean > none[k+2].Mean/2 {
			t.Errorf("archive k=%d: repaired %v vs unrepaired %v", k, dist[k+2].Mean, none[k+2].Mean)
		}
		if !geo[k+2].NA {
			t.Error("geometric archive cell not N/A")
		}
		if geo[k].Mean > none[k].Mean/3 {
			t.Errorf("geometric k=%d too weak: %v vs %v", k, geo[k].Mean, none[k].Mean)
		}
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Distributional (ours)") || !strings.Contains(out, "-") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestTableIHistogramEstimatorMagnitude(t *testing.T) {
	// The floored-histogram estimator mode lands unrepaired research E in
	// the paper's printed magnitude regime (Table I reports ≈ 7.5).
	cfg := quickSim()
	cfg.NR = 500
	cfg.NA = 1000
	cfg.Reps = 3
	cfg.Metric = fairmetrics.Config{Estimator: fairmetrics.EstimatorHistogram}
	cfg.MetricSet = true
	tbl, err := TableI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e1 := tbl.Rows[0].Cells[0].Mean
	if e1 < 2 || e1 > 20 {
		t.Errorf("unrepaired research E1 = %v, want paper-scale", e1)
	}
}

func TestTableIRatiosMatchPaperShape(t *testing.T) {
	// Paper ratio contract at the reference setting: distributional repair
	// cuts research E by well over 5x; repaired archive sits above repaired
	// research; geometric is the strongest on-sample.
	cfg := SimConfig{NR: 500, NA: 2000, NQ: 50, Reps: 4, Seed: 3}
	tbl, err := TableI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	none := tbl.Rows[0].Cells
	dist := tbl.Rows[1].Cells
	geo := tbl.Rows[2].Cells
	for k := 0; k < 2; k++ {
		if none[k].Mean < 5*dist[k].Mean {
			t.Errorf("k=%d: research reduction only %vx", k, none[k].Mean/dist[k].Mean)
		}
		if dist[k+2].Mean < dist[k].Mean {
			t.Errorf("k=%d: archive E %v below research %v after repair", k, dist[k+2].Mean, dist[k].Mean)
		}
		if geo[k].Mean > dist[k].Mean {
			t.Errorf("k=%d: geometric %v not at least as strong as distributional %v", k, geo[k].Mean, dist[k].Mean)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	cfg := quickSim()
	cfg.Reps = 3
	fig, err := Figure3(cfg, []int{50, 200, 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	research := fig.Series[0]
	archive := fig.Series[1]
	unrepaired := fig.Series[2]
	if len(research.Y) != 3 {
		t.Fatalf("points = %d", len(research.Y))
	}
	// Shape: repaired curves decline with nR (first > last), archive above
	// research at convergence, both far below unrepaired.
	last := len(research.Y) - 1
	if research.Y[last] >= research.Y[0] {
		t.Errorf("research E did not fall with nR: %v", research.Y)
	}
	if archive.Y[last] < research.Y[last] {
		t.Errorf("archive E %v below research %v at max nR", archive.Y[last], research.Y[last])
	}
	if archive.Y[last] > unrepaired.Y[last]/2 {
		t.Errorf("archive E %v not well below unrepaired %v", archive.Y[last], unrepaired.Y[last])
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "archive (repaired)") {
		t.Error("render missing series")
	}
}

func TestFigure4Shape(t *testing.T) {
	cfg := quickSim()
	// nQ must stay well below the rarest research group size (the paper's
	// nQ ≪ nR regime); the sweep needs the paper's nR, not the quick one.
	cfg.NR = 500
	cfg.NA = 1500
	cfg.Reps = 3
	fig, err := Figure4(cfg, []int{5, 20, 45})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	s := fig.Series[0]
	if len(s.Y) != 3 {
		t.Fatalf("points = %d", len(s.Y))
	}
	// With a consistent estimator the repaired composite E is already
	// converged at small nQ and stays statistically flat and low (the
	// paper's "invariant above threshold" regime).
	for i, e := range s.Y {
		if e > 0.3 {
			t.Errorf("point %d: composite E = %v, want converged low value", i, e)
		}
	}
	// The nQ cost shows in quantization damage, which falls monotonically.
	dmg := fig.Series[1]
	if dmg.Y[len(dmg.Y)-1] >= dmg.Y[0] {
		t.Errorf("damage did not fall with nQ: %v", dmg.Y)
	}
}

func TestTableIIShape(t *testing.T) {
	tbl, err := TableII(quickAdult())
	if err != nil {
		t.Fatal(err)
	}
	none := tbl.Rows[0].Cells
	dist := tbl.Rows[1].Cells
	// Hours at least as separated as age before repair (paper ordering,
	// with slack for estimator noise).
	if none[1].Mean < 0.8*none[0].Mean {
		t.Errorf("unrepaired hours E %v well below age E %v", none[1].Mean, none[0].Mean)
	}
	// Repair reduces every column.
	for j := 0; j < 4; j++ {
		if dist[j].Mean >= none[j].Mean {
			t.Errorf("column %d not reduced: %v vs %v", j, dist[j].Mean, none[j].Mean)
		}
	}
	if !tbl.Rows[2].Cells[2].NA {
		t.Error("geometric archive cell not N/A")
	}
}

func TestDownstreamImprovesDI(t *testing.T) {
	tbl, err := Downstream(quickAdult())
	if err != nil {
		t.Fatal(err)
	}
	unrepaired := tbl.Rows[0].Cells
	repaired := tbl.Rows[1].Cells
	// DI moves towards 1 for both u groups after repair.
	for j := 1; j <= 2; j++ {
		before := unrepaired[j].Mean
		after := repaired[j].Mean
		if math.Abs(after-1) > math.Abs(before-1)+0.02 {
			t.Errorf("DI column %d worsened: %v -> %v", j, before, after)
		}
	}
	// Accuracy does not collapse (repair trades a few points at most here).
	if repaired[0].Mean < unrepaired[0].Mean-0.15 {
		t.Errorf("accuracy collapsed: %v -> %v", unrepaired[0].Mean, repaired[0].Mean)
	}
}

func TestLabelEstimationTable(t *testing.T) {
	tbl, err := LabelEstimation(quickAdult())
	if err != nil {
		t.Fatal(err)
	}
	unrepaired := tbl.Rows[0].Cells[0].Mean
	trueLabels := tbl.Rows[1].Cells[0].Mean
	estLabels := tbl.Rows[2].Cells[0].Mean
	acc := tbl.Rows[2].Cells[1].Mean
	if trueLabels >= unrepaired {
		t.Errorf("true-label repair did not reduce E: %v vs %v", trueLabels, unrepaired)
	}
	// The Adult gender groups overlap heavily in (age, hours), so GMM-EM
	// label recovery is weak (near chance) — that is the experiment's
	// finding; the repair with such labels must at least not inflate
	// dependence catastrophically.
	if acc <= 0.2 || acc > 1 {
		t.Errorf("label accuracy = %v", acc)
	}
	if estLabels > unrepaired*1.5 {
		t.Errorf("estimated-label repair blew up E: %v vs unrepaired %v", estLabels, unrepaired)
	}
}

func TestAblationSolver(t *testing.T) {
	cfg := quickSim()
	cfg.Reps = 2
	cfg.NQ = 20
	tbl, err := AblationSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if !(row.Cells[0].Mean > 0) || !(row.Cells[1].Mean > 0) {
			t.Errorf("row %s has empty cells: %+v", row.Label, row.Cells)
		}
	}
}

func TestAblationPartial(t *testing.T) {
	cfg := quickSim()
	cfg.Reps = 2
	fig, err := AblationPartial(cfg, []float64{0.25, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	e := fig.Series[0]
	dmg := fig.Series[1]
	if e.Y[1] >= e.Y[0] {
		t.Errorf("full repair E %v not below partial %v", e.Y[1], e.Y[0])
	}
	if dmg.Y[1] <= dmg.Y[0] {
		t.Errorf("full repair damage %v not above partial %v", dmg.Y[1], dmg.Y[0])
	}
}

func TestAblationQuantile(t *testing.T) {
	cfg := quickSim()
	cfg.Reps = 2
	tbl, err := AblationQuantile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	none := tbl.Rows[0].Cells[0].Mean
	dist := tbl.Rows[1].Cells[0].Mean
	quant := tbl.Rows[2].Cells[0].Mean
	if dist >= none || quant >= none {
		t.Errorf("repairs did not reduce E: none=%v dist=%v quant=%v", none, dist, quant)
	}
	if !(tbl.Rows[1].Cells[1].Mean > 0) || !(tbl.Rows[2].Cells[1].Mean > 0) {
		t.Error("damage cells empty")
	}
}

func TestAblationDrift(t *testing.T) {
	cfg := quickSim()
	cfg.Reps = 2
	fig, err := AblationDrift(cfg, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	repaired := fig.Series[0]
	if len(repaired.Y) != 2 {
		t.Fatalf("points = %d", len(repaired.Y))
	}
	// Stationarity violation degrades the repair: E at drift 2 above drift 0.
	if repaired.Y[1] <= repaired.Y[0] {
		t.Errorf("drift did not degrade repair: %v", repaired.Y)
	}
}

func TestCellRendering(t *testing.T) {
	if got := NACell().String(); got != "-" {
		t.Errorf("NA = %q", got)
	}
	c := Cell{Mean: 1.5}
	if got := c.String(); got != "1.5000" {
		t.Errorf("plain = %q", got)
	}
	c = Cell{Mean: 1.5, Std: 0.25, HasStd: true}
	if got := c.String(); got != "1.5000 ± 0.2500" {
		t.Errorf("spread = %q", got)
	}
}

func TestFigureRenderEmptySeries(t *testing.T) {
	fig := &Figure{Title: "empty", XLabel: "x", YLabel: "y"}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestMetricOverride(t *testing.T) {
	cfg := quickSim()
	cfg.Metric = fairmetrics.Config{Estimator: fairmetrics.EstimatorKDE}
	cfg.MetricSet = true
	cfg.Reps = 2
	tbl, err := TableI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// KDE estimator: unrepaired research E ≈ 0.5, not paper-scale 7.
	if tbl.Rows[0].Cells[0].Mean > 2 {
		t.Errorf("KDE-mode E = %v, expected ≈ 0.5", tbl.Rows[0].Cells[0].Mean)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]CellStat{"b": {}, "a": {}, "c": {}}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("keys = %v", keys)
	}
}
