// Package stat provides the descriptive statistics the repair pipeline
// depends on: moments for Silverman's bandwidth rule (Eq. 12 of the paper),
// quantiles for the exact 1-D Wasserstein machinery, ranges for the
// interpolated supports of Algorithm 1, and streaming accumulators for the
// archival (torrent) code paths where data cannot be held in memory.
package stat

import (
	"errors"
	"math"
	"sort"

	"otfair/internal/vec"
)

// ErrEmpty is returned by reducers that are undefined on empty input.
var ErrEmpty = errors.New("stat: empty sample")

// Mean returns the arithmetic mean. It returns NaN on empty input so that
// callers composing pipelines see the poison value rather than a silent 0.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return vec.Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance; NaN if n < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	return vec.SumSqDev(xs, Mean(xs)) / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation; NaN if n < 2.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopVariance returns the population (1/n) variance; NaN on empty input.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	return vec.SumSqDev(xs, Mean(xs)) / float64(n)
}

// MinMax returns the extrema of xs. It returns an error on empty input:
// Algorithm 1 line 4 builds the interpolation support from these values and
// an empty (u,s) research group must fail loudly at design time.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = vec.MinMax(xs)
	return lo, hi, nil
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of sorted data using linear
// interpolation between order statistics (the "type 7" estimator that R and
// NumPy default to). sorted must be ascending; Quantile panics if p is
// outside [0, 1].
func Quantile(sorted []float64, p float64) float64 {
	if p < 0 || p > 1 {
		panic("stat: quantile probability out of [0,1]")
	}
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	i := int(math.Floor(h))
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := h - float64(i)
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// Median returns the sample median of unsorted data.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return Quantile(cp, 0.5)
}

// IQR returns the interquartile range (Q3 − Q1) of unsorted data. It feeds
// Silverman's robust spread estimate.
func IQR(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return Quantile(cp, 0.75) - Quantile(cp, 0.25)
}

// Covariance returns the unbiased sample covariance of two equal-length
// samples; NaN if lengths differ or n < 2.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)-1)
}

// Correlation returns the Pearson correlation coefficient; NaN when either
// marginal is degenerate.
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return math.NaN()
	}
	return Covariance(xs, ys) / (sx * sy)
}

// Summary bundles the descriptive statistics reported by diagnostics and
// the CLI `evaluate` command.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Q1, Median, Q3 float64
}

// Summarize computes a Summary of xs. Quantile fields are NaN when n == 0.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		s.Mean, s.Std, s.Min, s.Max, s.Q1, s.Median, s.Q3 = nan, nan, nan, nan, nan, nan, nan
		return s
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	s.Mean = Mean(cp)
	s.Std = StdDev(cp)
	s.Min = cp[0]
	s.Max = cp[len(cp)-1]
	s.Q1 = Quantile(cp, 0.25)
	s.Median = Quantile(cp, 0.5)
	s.Q3 = Quantile(cp, 0.75)
	return s
}

// MeanStd returns the mean and unbiased standard deviation of xs in one
// pass; the Monte-Carlo harness reports every cell of the paper's tables as
// mean ± std over replicates.
func MeanStd(xs []float64) (mean, std float64) {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Mean(), w.Std()
}

// Linspace returns n uniformly spaced points from lo to hi inclusive —
// exactly the support construction of Algorithm 1 line 4:
// ζ_i = (n−i)/(n−1)·lo + (i−1)/(n−1)·hi. It panics if n < 2 when lo ≠ hi;
// n == 1 is allowed only for a degenerate (lo == hi) support.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		panic("stat: Linspace with n <= 0")
	}
	if n == 1 {
		if lo != hi {
			panic("stat: Linspace n == 1 with lo != hi")
		}
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	// Pin the endpoint exactly: downstream binary searches use Q[n-1] as the
	// clamping bound and must see the true maximum.
	out[n-1] = hi
	return out
}

// Sum returns the sum of xs (0 for empty input).
func Sum(xs []float64) float64 { return vec.Sum(xs) }

// Normalize scales non-negative weights into a probability vector in place
// and returns it. It returns ErrEmpty for empty input and an error when the
// total mass is not positive or any entry is negative/NaN.
func Normalize(w []float64) ([]float64, error) {
	if len(w) == 0 {
		return nil, ErrEmpty
	}
	total := 0.0
	for _, v := range w {
		if v < 0 || math.IsNaN(v) {
			return nil, errors.New("stat: Normalize with negative or NaN weight")
		}
		total += v
	}
	if total <= 0 {
		return nil, errors.New("stat: Normalize with zero total mass")
	}
	vec.Scale(1/total, w)
	return w, nil
}

// Column extracts feature column k from a row-major matrix. It is the
// bridge between the dataset's d-dimensional records and the per-feature
// (k-stratified) repair of Algorithm 1.
func Column(rows [][]float64, k int) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = r[k]
	}
	return out
}
