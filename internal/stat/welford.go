package stat

import "math"

// Welford is a numerically stable streaming accumulator for mean and
// variance (Welford's online algorithm). The archival repair path processes
// torrents of points sequentially; diagnostics use this type so that no
// buffering of the stream is required.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddAll folds a batch of observations.
func (w *Welford) AddAll(xs []float64) {
	for _, x := range xs {
		w.Add(x)
	}
}

// Merge combines another accumulator into this one (Chan et al. parallel
// update); used when per-goroutine accumulators are reduced.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// N reports the number of observations.
func (w *Welford) N() int { return w.n }

// Mean reports the running mean (NaN when empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance reports the unbiased running variance (NaN when n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// Std reports the unbiased running standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Min reports the smallest observation (NaN when empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max reports the largest observation (NaN when empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}
