package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Population variance is 4; unbiased is 4*8/7.
	if got := PopVariance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("PopVariance = %v", got)
	}
	if got := Variance(xs); !almostEq(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of singleton not NaN")
	}
}

func TestStdDevNonNegative(t *testing.T) {
	err := quick.Check(func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		if len(xs) < 2 {
			return true
		}
		return StdDev(xs) >= 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v %v %v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax(nil) err = %v", err)
	}
}

func TestQuantileType7(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3, 2},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for p > 1")
		}
	}()
	Quantile([]float64{1, 2}, 1.5)
}

func TestMedianIQR(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %v", got)
	}
	if got := IQR(xs); got != 2 {
		t.Errorf("IQR = %v", got)
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Correlation(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("Correlation = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Correlation(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("Correlation = %v, want -1", got)
	}
	if got := Covariance(xs, ys); !almostEq(got, 10.0/3, 1e-12) {
		t.Errorf("Covariance = %v", got)
	}
	if !math.IsNaN(Covariance(xs, ys[:2])) {
		t.Error("mismatched lengths not NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("Summarize = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("empty Summarize = %+v", empty)
	}
}

func TestLinspaceMatchesAlgorithmOneSupport(t *testing.T) {
	// Algorithm 1 line 4 with nQ=5, range [0, 8].
	q := Linspace(0, 8, 5)
	want := []float64{0, 2, 4, 6, 8}
	for i := range want {
		if !almostEq(q[i], want[i], 1e-12) {
			t.Errorf("Linspace[%d] = %v, want %v", i, q[i], want[i])
		}
	}
	if q[4] != 8 {
		t.Error("endpoint not pinned")
	}
}

func TestLinspaceDegenerate(t *testing.T) {
	if got := Linspace(3, 3, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("degenerate Linspace = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Linspace(0,1,1) did not panic")
		}
	}()
	Linspace(0, 1, 1)
}

func TestLinspaceEndpointsProperty(t *testing.T) {
	err := quick.Check(func(lo, span float64, n uint8) bool {
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(span) || math.IsInf(span, 0) {
			return true
		}
		// Keep magnitudes physical: huge values overflow hi-lo and are not a
		// regime the support construction needs to serve.
		lo = math.Mod(lo, 1e6)
		hi := lo + math.Mod(math.Abs(span), 1e6) + 1
		m := int(n%100) + 2
		q := Linspace(lo, hi, m)
		if len(q) != m || q[0] != lo || q[m-1] != hi {
			return false
		}
		for i := 1; i < m; i++ {
			if q[i] < q[i-1] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	w, err := Normalize([]float64{1, 3})
	if err != nil || !almostEq(w[0], 0.25, 1e-12) || !almostEq(w[1], 0.75, 1e-12) {
		t.Errorf("Normalize = %v, %v", w, err)
	}
	if _, err := Normalize([]float64{0, 0}); err == nil {
		t.Error("zero mass accepted")
	}
	if _, err := Normalize([]float64{-1, 2}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Normalize(nil); err != ErrEmpty {
		t.Error("empty input not ErrEmpty")
	}
}

func TestColumn(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	col := Column(rows, 1)
	if len(col) != 3 || col[0] != 2 || col[2] != 6 {
		t.Errorf("Column = %v", col)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{1.5, -2, 0, 4.25, 3, 3, -7}
	var w Welford
	w.AddAll(xs)
	if !almostEq(w.Mean(), Mean(xs), 1e-12) {
		t.Errorf("Welford mean %v vs %v", w.Mean(), Mean(xs))
	}
	if !almostEq(w.Variance(), Variance(xs), 1e-12) {
		t.Errorf("Welford var %v vs %v", w.Variance(), Variance(xs))
	}
	if w.Min() != -7 || w.Max() != 4.25 || w.N() != len(xs) {
		t.Errorf("Welford extremes %v %v %v", w.Min(), w.Max(), w.N())
	}
}

func TestWelfordMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	var a, b, whole Welford
	a.AddAll(xs[:3])
	b.AddAll(xs[3:])
	whole.AddAll(xs)
	a.Merge(b)
	if !almostEq(a.Mean(), whole.Mean(), 1e-12) || !almostEq(a.Variance(), whole.Variance(), 1e-12) {
		t.Errorf("merged %v/%v vs whole %v/%v", a.Mean(), a.Variance(), whole.Mean(), whole.Variance())
	}
	var empty Welford
	empty.Merge(a)
	if empty.N() != a.N() {
		t.Error("merge into empty lost observations")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 9.99, 10, -1, 11} {
		h.Add(x)
	}
	if h.Below != 1 || h.Above != 1 {
		t.Errorf("out-of-range counts %d %d", h.Below, h.Above)
	}
	// Bins: [0,2):2, [2,4):1, [8,10]:2.
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	pmf, err := h.PMF()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(Sum(pmf), 1, 1e-12) {
		t.Errorf("pmf sums to %v", Sum(pmf))
	}
	centers := h.Centers()
	if !almostEq(centers[0], 1, 1e-12) || !almostEq(centers[4], 9, 1e-12) {
		t.Errorf("centers = %v", centers)
	}
}

func TestHistogramRejectsBadGeometry(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("0 bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("hi == lo accepted")
	}
}

func TestECDFBasic(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {5, 1},
	}
	for _, c := range cases {
		if got := e.CDF(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := e.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := e.Quantile(1); got != 3 {
		t.Errorf("Quantile(1) = %v", got)
	}
}

func TestWeightedECDF(t *testing.T) {
	e, err := NewWeightedECDF([]float64{10, 0, 5}, []float64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.CDF(5); !almostEq(got, 0.75, 1e-12) {
		t.Errorf("CDF(5) = %v", got)
	}
	if got := e.Quantile(0.3); got != 5 {
		t.Errorf("Quantile(0.3) = %v", got)
	}
}

func TestECDFQuantileCDFInverseProperty(t *testing.T) {
	// Property: Quantile(CDF(x)) <= x for support points, and
	// CDF(Quantile(p)) >= p for all p in (0,1).
	e, err := NewECDF([]float64{0.3, 1.1, 2.2, 2.2, 5.5, -3})
	if err != nil {
		t.Fatal(err)
	}
	err = quick.Check(func(pRaw float64) bool {
		p := math.Mod(math.Abs(pRaw), 1)
		if p == 0 {
			return true
		}
		return e.CDF(e.Quantile(p)) >= p-1e-12
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestECDFErrors(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := NewWeightedECDF([]float64{1}, []float64{0}); err == nil {
		t.Error("zero total weight accepted")
	}
	if _, err := NewWeightedECDF([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewWeightedECDF([]float64{1}, []float64{-2}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{1, 2, 3, 4, 5})
	if !almostEq(m, 3, 1e-12) || !almostEq(s, math.Sqrt(2.5), 1e-12) {
		t.Errorf("MeanStd = %v %v", m, s)
	}
}
