package stat

import (
	"errors"
	"math"
	"sort"
)

// Histogram is a fixed-width binning of a 1-D sample. Besides diagnostics,
// it implements the grid-projection step used when a continuous quantile
// function must be re-expressed as a pmf on an interpolated support.
type Histogram struct {
	// Edges has len(Counts)+1 entries; bin i covers [Edges[i], Edges[i+1]),
	// with the final bin closed on the right.
	Edges  []float64
	Counts []float64
	// Below and Above count observations outside [Edges[0], Edges[last]].
	Below, Above int
}

// NewHistogram builds an empty histogram with nBins uniform bins over
// [lo, hi]. It returns an error for invalid geometry so callers surface
// configuration mistakes (e.g. nQ = 0 from a CLI flag) early.
func NewHistogram(lo, hi float64, nBins int) (*Histogram, error) {
	if nBins <= 0 {
		return nil, errors.New("stat: histogram needs at least one bin")
	}
	if !(hi > lo) {
		return nil, errors.New("stat: histogram needs hi > lo")
	}
	return &Histogram{
		Edges:  Linspace(lo, hi, nBins+1),
		Counts: make([]float64, nBins),
	}, nil
}

// Add folds one observation with unit weight.
func (h *Histogram) Add(x float64) { h.AddWeighted(x, 1) }

// AddWeighted folds one observation with the given weight.
func (h *Histogram) AddWeighted(x, w float64) {
	lo, hi := h.Edges[0], h.Edges[len(h.Edges)-1]
	switch {
	case x < lo:
		h.Below++
	case x > hi:
		h.Above++
	case x == hi:
		h.Counts[len(h.Counts)-1] += w
	default:
		width := (hi - lo) / float64(len(h.Counts))
		i := int((x - lo) / width)
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i] += w
	}
}

// PMF returns the bin masses normalized to sum to one. It returns an error
// when the histogram holds no in-range mass.
func (h *Histogram) PMF() ([]float64, error) {
	out := append([]float64(nil), h.Counts...)
	return Normalize(out)
}

// Centers returns the midpoints of the bins.
func (h *Histogram) Centers() []float64 {
	out := make([]float64, len(h.Counts))
	for i := range out {
		out[i] = 0.5 * (h.Edges[i] + h.Edges[i+1])
	}
	return out
}

// ECDF is an empirical cumulative distribution function over a sorted
// sample with optional weights. It supplies the quantile functions that the
// exact 1-D Wasserstein distance and barycenter are built from.
type ECDF struct {
	// xs is ascending; cum[i] is the cumulative probability mass at and
	// below xs[i]; cum[len-1] == 1.
	xs  []float64
	cum []float64
}

// NewECDF builds an ECDF from an unsorted unweighted sample.
func NewECDF(sample []float64) (*ECDF, error) {
	if len(sample) == 0 {
		return nil, ErrEmpty
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	w := make([]float64, len(xs))
	for i := range w {
		w[i] = 1
	}
	return newECDFSorted(xs, w)
}

// NewWeightedECDF builds an ECDF from support points and non-negative
// weights (a discrete pmf). Points need not be sorted.
func NewWeightedECDF(points, weights []float64) (*ECDF, error) {
	if len(points) == 0 {
		return nil, ErrEmpty
	}
	if len(points) != len(weights) {
		return nil, errors.New("stat: ECDF points/weights length mismatch")
	}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return points[idx[a]] < points[idx[b]] })
	xs := make([]float64, len(points))
	ws := make([]float64, len(points))
	for i, j := range idx {
		xs[i] = points[j]
		ws[i] = weights[j]
	}
	return newECDFSorted(xs, ws)
}

func newECDFSorted(xs, ws []float64) (*ECDF, error) {
	total := 0.0
	for _, w := range ws {
		if w < 0 || math.IsNaN(w) {
			return nil, errors.New("stat: ECDF with negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		return nil, errors.New("stat: ECDF with zero total mass")
	}
	cum := make([]float64, len(xs))
	acc := 0.0
	for i := range xs {
		acc += ws[i] / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1 // pin against round-off
	return &ECDF{xs: xs, cum: cum}, nil
}

// CDF evaluates the right-continuous empirical CDF at x.
func (e *ECDF) CDF(x float64) float64 {
	// Number of support points ≤ x.
	i := sort.SearchFloat64s(e.xs, x)
	// SearchFloat64s returns the first index with xs[i] >= x; advance over
	// ties equal to x to make the CDF right-continuous.
	for i < len(e.xs) && e.xs[i] == x {
		i++
	}
	if i == 0 {
		return 0
	}
	return e.cum[i-1]
}

// Quantile evaluates the generalized inverse CDF at probability p:
// the smallest support point x with CDF(x) ≥ p.
func (e *ECDF) Quantile(p float64) float64 {
	if p <= 0 {
		return e.xs[0]
	}
	if p >= 1 {
		return e.xs[len(e.xs)-1]
	}
	i := sort.Search(len(e.cum), func(i int) bool { return e.cum[i] >= p })
	if i == len(e.cum) {
		i = len(e.cum) - 1
	}
	return e.xs[i]
}

// Support returns the sorted support points of the ECDF.
func (e *ECDF) Support() []float64 { return e.xs }
