// Package adult provides the Section V-B substrate: the Adult income data
// set in the paper's encoding — s = 1 for males, u = 1 for college-level
// education or above, features X = (age, hours-per-week), the two
// continuous, non-near-identical columns the paper retains.
//
// Two sources are supported:
//
//  1. Load parses the genuine UCI `adult.data`/`adult.test` files when the
//     user has them (this environment is offline, so none ships here).
//  2. Synthesize (synth.go) generates a calibrated surrogate with the same
//     joint structure the experiment exercises; it is the default source
//     for the Table II reproduction and the substitution is documented in
//     DESIGN.md §4.
package adult

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"otfair/internal/dataset"
)

// FeatureNames are the retained continuous features, in table order.
var FeatureNames = []string{"age", "hours_per_week"}

// Dim is the retained feature dimension.
const Dim = 2

// collegeEducationNum is the UCI education-num threshold for "college-level
// education or above": 13 = Bachelors, then Masters, Prof-school, Doctorate.
const collegeEducationNum = 13

// Load parses the UCI Adult comma-separated format (15 fields per row, `?`
// for missing values, optional trailing period on income in adult.test).
// Rows missing any required field are skipped and counted. It returns the
// feature table, the income labels (1 for >50K) aligned with it, and the
// number of skipped rows.
func Load(r io.Reader) (*dataset.Table, []int, int, error) {
	t, err := dataset.NewTable(Dim, FeatureNames)
	if err != nil {
		return nil, nil, 0, err
	}
	var income []int
	skipped := 0
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" || strings.HasPrefix(raw, "|") { // adult.test banner line
			continue
		}
		rec, y, ok, err := parseAdultRow(raw)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("adult: line %d: %w", line, err)
		}
		if !ok {
			skipped++
			continue
		}
		if err := t.Append(rec); err != nil {
			return nil, nil, 0, fmt.Errorf("adult: line %d: %w", line, err)
		}
		income = append(income, y)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, 0, fmt.Errorf("adult: reading: %w", err)
	}
	if t.Len() == 0 {
		return nil, nil, 0, errors.New("adult: no usable rows")
	}
	return t, income, skipped, nil
}

// LoadFile is Load over a file path.
func LoadFile(path string) (*dataset.Table, []int, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("adult: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// UCI column indices in adult.data.
const (
	colAge          = 0
	colEducationNum = 4
	colSex          = 9
	colHours        = 12
	colIncome       = 14
	numCols         = 15
)

// parseAdultRow converts one raw UCI row. ok == false marks a row skipped
// for missing values; hard format violations return an error.
func parseAdultRow(raw string) (dataset.Record, int, bool, error) {
	fields := strings.Split(raw, ",")
	if len(fields) != numCols {
		return dataset.Record{}, 0, false, fmt.Errorf("got %d fields, want %d", len(fields), numCols)
	}
	for i := range fields {
		fields[i] = strings.TrimSpace(fields[i])
	}
	for _, idx := range []int{colAge, colEducationNum, colSex, colHours, colIncome} {
		if fields[idx] == "?" || fields[idx] == "" {
			return dataset.Record{}, 0, false, nil
		}
	}
	age, err := strconv.ParseFloat(fields[colAge], 64)
	if err != nil {
		return dataset.Record{}, 0, false, fmt.Errorf("bad age %q", fields[colAge])
	}
	eduNum, err := strconv.Atoi(fields[colEducationNum])
	if err != nil {
		return dataset.Record{}, 0, false, fmt.Errorf("bad education-num %q", fields[colEducationNum])
	}
	hours, err := strconv.ParseFloat(fields[colHours], 64)
	if err != nil {
		return dataset.Record{}, 0, false, fmt.Errorf("bad hours %q", fields[colHours])
	}
	var s int
	switch fields[colSex] {
	case "Male":
		s = 1
	case "Female":
		s = 0
	default:
		return dataset.Record{}, 0, false, fmt.Errorf("bad sex %q", fields[colSex])
	}
	u := 0
	if eduNum >= collegeEducationNum {
		u = 1
	}
	incomeField := strings.TrimSuffix(fields[colIncome], ".")
	var y int
	switch incomeField {
	case ">50K":
		y = 1
	case "<=50K":
		y = 0
	default:
		return dataset.Record{}, 0, false, fmt.Errorf("bad income %q", fields[colIncome])
	}
	return dataset.Record{X: []float64{age, hours}, S: s, U: u}, y, true, nil
}
