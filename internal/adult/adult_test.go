package adult

import (
	"math"
	"strings"
	"testing"

	"otfair/internal/dataset"
	"otfair/internal/fairmetrics"
	"otfair/internal/rng"
	"otfair/internal/stat"
)

const sampleRows = `39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K
50, Self-emp-not-inc, 83311, Bachelors, 13, Married-civ-spouse, Exec-managerial, Husband, White, Male, 0, 0, 13, United-States, <=50K
38, Private, 215646, HS-grad, 9, Divorced, Handlers-cleaners, Not-in-family, White, Male, 0, 0, 40, United-States, <=50K
28, Private, 338409, Bachelors, 13, Married-civ-spouse, Prof-specialty, Wife, Black, Female, 0, 0, 40, Cuba, >50K
37, Private, 284582, Masters, 14, Married-civ-spouse, Exec-managerial, Wife, White, Female, 0, 0, 40, United-States, >50K.
49, Private, ?, 9th, 5, Married-spouse-absent, Other-service, Not-in-family, Black, Female, 0, 0, 16, Jamaica, <=50K
52, ?, 209642, HS-grad, 9, Married-civ-spouse, Exec-managerial, Husband, White, Male, 0, 0, 45, United-States, >50K
`

func TestLoadParsesUCIFormat(t *testing.T) {
	tbl, income, skipped, err := Load(strings.NewReader(sampleRows))
	if err != nil {
		t.Fatal(err)
	}
	// All 7 rows have the required fields (the ? values are in unused
	// columns), so nothing is skipped.
	if skipped != 0 {
		t.Errorf("skipped = %d", skipped)
	}
	if tbl.Len() != 7 || len(income) != 7 {
		t.Fatalf("rows = %d, income = %d", tbl.Len(), len(income))
	}
	first := tbl.At(0)
	if first.X[0] != 39 || first.X[1] != 40 || first.S != 1 || first.U != 1 {
		t.Errorf("first record = %+v", first)
	}
	// HS-grad (education-num 9) is non-college.
	if tbl.At(2).U != 0 {
		t.Error("HS-grad mapped to college")
	}
	// Female wife with Bachelors.
	if r := tbl.At(3); r.S != 0 || r.U != 1 {
		t.Errorf("record 4 = %+v", r)
	}
	// adult.test trailing period on income.
	if income[4] != 1 {
		t.Error(">50K. not parsed")
	}
	if income[0] != 0 || income[3] != 1 {
		t.Errorf("income = %v", income)
	}
}

func TestLoadSkipsMissingRequiredFields(t *testing.T) {
	rows := `?, Private, 1, Bachelors, 13, x, x, x, x, Male, 0, 0, 40, US, <=50K
39, Private, 1, Bachelors, 13, x, x, x, x, ?, 0, 0, 40, US, <=50K
39, Private, 1, Bachelors, 13, x, x, x, x, Male, 0, 0, 40, US, <=50K
`
	tbl, _, skipped, err := Load(strings.NewReader(rows))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 || skipped != 2 {
		t.Errorf("len = %d, skipped = %d", tbl.Len(), skipped)
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []string{
		"1,2,3",
		"x, Private, 1, Bachelors, 13, x, x, x, x, Male, 0, 0, 40, US, <=50K",
		"39, Private, 1, Bachelors, nope, x, x, x, x, Male, 0, 0, 40, US, <=50K",
		"39, Private, 1, Bachelors, 13, x, x, x, x, Robot, 0, 0, 40, US, <=50K",
		"39, Private, 1, Bachelors, 13, x, x, x, x, Male, 0, 0, bad, US, <=50K",
		"39, Private, 1, Bachelors, 13, x, x, x, x, Male, 0, 0, 40, US, maybe",
	}
	for i, c := range cases {
		if _, _, _, err := Load(strings.NewReader(c + "\n")); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestLoadEmptyInput(t *testing.T) {
	if _, _, _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	// Banner and blank lines only.
	if _, _, _, err := Load(strings.NewReader("|1x90 test\n\n")); err == nil {
		t.Error("banner-only input accepted")
	}
}

func TestSynthesizeShapes(t *testing.T) {
	r := rng.New(1)
	tbl, income, err := Synthesize(r, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 20000 || len(income) != 20000 {
		t.Fatalf("sizes %d/%d", tbl.Len(), len(income))
	}
	if _, _, err := Synthesize(r, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestSynthesizeGroupProportions(t *testing.T) {
	r := rng.New(2)
	tbl, _, err := Synthesize(r, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.PrU(); math.Abs(got-0.25) > 0.01 {
		t.Errorf("Pr[u=1] = %v, want ~0.25", got)
	}
	if got := tbl.PrSGivenU(0); math.Abs(got-0.65) > 0.02 {
		t.Errorf("Pr[male|non-college] = %v", got)
	}
	if got := tbl.PrSGivenU(1); math.Abs(got-0.72) > 0.02 {
		t.Errorf("Pr[male|college] = %v", got)
	}
}

func TestSynthesizeFeatureRanges(t *testing.T) {
	r := rng.New(3)
	tbl, _, err := Synthesize(r, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tbl.Len(); i++ {
		rec := tbl.At(i)
		age, hours := rec.X[0], rec.X[1]
		if age < 17 || age > 90 || age != math.Round(age) {
			t.Fatalf("bad age %v", age)
		}
		if hours < 1 || hours > 99 || hours != math.Round(hours) {
			t.Fatalf("bad hours %v", hours)
		}
	}
}

func TestSynthesizeHoursPointMassAt40(t *testing.T) {
	r := rng.New(4)
	tbl, _, _ := Synthesize(r, 30000)
	at40 := 0
	for i := 0; i < tbl.Len(); i++ {
		if tbl.At(i).X[1] == 40 {
			at40++
		}
	}
	frac := float64(at40) / float64(tbl.Len())
	if frac < 0.35 || frac > 0.55 {
		t.Errorf("mass at 40h = %v, want ~0.45", frac)
	}
}

func TestSynthesizeGenderStructureMatchesPaper(t *testing.T) {
	// Hours must be the more gender-separated feature (paper Table II:
	// E_hours ≈ 2.7 > E_age ≈ 1.1 unrepaired), and college groups older.
	r := rng.New(5)
	tbl, _, _ := Synthesize(r, 40000)
	res, err := fairmetrics.Compute(tbl, fairmetrics.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eAge, eHours := res.PerFeature[0], res.PerFeature[1]
	if eHours <= eAge {
		t.Errorf("E_hours = %v not above E_age = %v", eHours, eAge)
	}
	if eAge <= 0 {
		t.Errorf("age carries no dependence: %v", eAge)
	}
	collegeAge := stat.Mean(tbl.UColumn(1, 0))
	nonCollegeAge := stat.Mean(tbl.UColumn(0, 0))
	if collegeAge <= nonCollegeAge {
		t.Errorf("college age %v not above non-college %v", collegeAge, nonCollegeAge)
	}
	// Males work longer hours on average within each u.
	for u := 0; u < 2; u++ {
		m := stat.Mean(tbl.GroupColumn(dataset.Group{U: u, S: 1}, 1))
		f := stat.Mean(tbl.GroupColumn(dataset.Group{U: u, S: 0}, 1))
		if m <= f {
			t.Errorf("u=%d male hours %v not above female %v", u, m, f)
		}
	}
}

func TestSynthesizeIncomeStructure(t *testing.T) {
	r := rng.New(6)
	tbl, income, _ := Synthesize(r, 40000)
	// Income should be biased towards college and male groups.
	var rate [2][2]float64
	var n [2][2]int
	for i := 0; i < tbl.Len(); i++ {
		rec := tbl.At(i)
		n[rec.U][rec.S]++
		rate[rec.U][rec.S] += float64(income[i])
	}
	for u := 0; u < 2; u++ {
		for s := 0; s < 2; s++ {
			rate[u][s] /= float64(n[u][s])
		}
	}
	if !(rate[1][1] > rate[0][1] && rate[1][0] > rate[0][0]) {
		t.Errorf("education gradient missing: %v", rate)
	}
	if !(rate[0][1] > rate[0][0] && rate[1][1] > rate[1][0]) {
		t.Errorf("gender gradient missing: %v", rate)
	}
	overall := 0.0
	for _, y := range income {
		overall += float64(y)
	}
	overall /= float64(len(income))
	// Adult's >50K share is ≈ 0.24; calibration should be in that region.
	if overall < 0.1 || overall > 0.45 {
		t.Errorf("Pr[>50K] = %v", overall)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, ia, _ := Synthesize(rng.New(7), 500)
	b, ib, _ := Synthesize(rng.New(7), 500)
	for i := 0; i < 500; i++ {
		if a.At(i).X[0] != b.At(i).X[0] || ia[i] != ib[i] {
			t.Fatal("synthesis not deterministic")
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, _, _, err := LoadFile("/nonexistent/adult.data"); err == nil {
		t.Error("missing file accepted")
	}
}
