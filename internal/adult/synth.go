package adult

import (
	"errors"
	"math"

	"otfair/internal/dataset"
	"otfair/internal/rng"
)

// Synthesize generates an Adult-like sample calibrated to the published
// structure that Section V-B's experiment exercises (see DESIGN.md §4 for
// the substitution rationale):
//
//   - Group proportions: Pr[u=1] ≈ 0.25 (college or above),
//     Pr[s=male|u] rising with education (≈0.65 non-college, ≈0.72 college),
//     matching Adult's male share of ≈0.67 overall.
//   - Age: integer-valued, right-skewed (17 + lognormal), clamped to
//     [17, 90]; college groups older, males slightly older than females.
//     Gender separation is modest — the paper measures unrepaired
//     E_age ≈ 1.1 against E_hours ≈ 2.7.
//   - Hours/week: integer-valued three-part mixture — a point mass at
//     exactly 40 (Adult's dominant value), a part-time lobe near 25, and an
//     over-time lobe near 50 — with women carrying more part-time mass and
//     men more over-time mass, so hours are the more gender-separated
//     feature, as in the paper.
//   - Income: Bernoulli with a logistic model over age, hours, u and a
//     residual male bias, for downstream disparate-impact experiments.
//
// It returns the feature table and the aligned income labels.
func Synthesize(r *rng.RNG, n int) (*dataset.Table, []int, error) {
	if n <= 0 {
		return nil, nil, errors.New("adult: sample size must be positive")
	}
	t, err := dataset.NewTable(Dim, FeatureNames)
	if err != nil {
		return nil, nil, err
	}
	income := make([]int, 0, n)
	for i := 0; i < n; i++ {
		rec, y := synthesizeOne(r)
		if err := t.Append(rec); err != nil {
			return nil, nil, err
		}
		income = append(income, y)
	}
	return t, income, nil
}

// groupParams hold the (u,s)-conditional generator settings.
type groupParams struct {
	// age = 17 + exp(N(ageMu, ageSigma)), rounded and clamped to [17,90].
	ageMu, ageSigma float64
	// hours mixture: exactly 40 w.p. p40; else part-time N(25,7²) w.p.
	// pPart/(1-p40); else over-time N(50,8²).
	p40, pPart float64
}

// params is indexed [u][s].
var params = [2][2]groupParams{
	{ // u = 0: non-college
		{ageMu: 2.90, ageSigma: 0.58, p40: 0.45, pPart: 0.35}, // s = 0: female
		{ageMu: 3.10, ageSigma: 0.48, p40: 0.45, pPart: 0.15}, // s = 1: male
	},
	{ // u = 1: college+
		{ageMu: 3.15, ageSigma: 0.48, p40: 0.50, pPart: 0.20}, // s = 0
		{ageMu: 3.35, ageSigma: 0.40, p40: 0.40, pPart: 0.08}, // s = 1
	},
}

// prU1 is Pr[college or above].
const prU1 = 0.25

// prMaleGivenU is Pr[s=1 | u].
var prMaleGivenU = [2]float64{0.65, 0.72}

func synthesizeOne(r *rng.RNG) (dataset.Record, int) {
	u := 0
	if r.Bernoulli(prU1) {
		u = 1
	}
	s := 0
	if r.Bernoulli(prMaleGivenU[u]) {
		s = 1
	}
	p := params[u][s]

	age := 17 + r.LogNormal(p.ageMu, p.ageSigma)
	age = math.Round(age)
	if age < 17 {
		age = 17
	}
	if age > 90 {
		age = 90
	}

	var hours float64
	switch {
	case r.Bernoulli(p.p40):
		hours = 40
	case r.Bernoulli(p.pPart / (1 - p.p40)):
		hours = math.Round(r.Normal(25, 7))
		if hours > 39 {
			hours = 39
		}
	default:
		hours = math.Round(r.Normal(50, 8))
		if hours < 41 {
			hours = 41
		}
	}
	if hours < 1 {
		hours = 1
	}
	if hours > 99 {
		hours = 99
	}

	// Income model: favours age (experience), hours, education, and carries
	// a residual male bias — the model unfairness the repair addresses.
	logit := -6.5 + 0.045*age + 0.05*hours + 1.4*float64(u) + 0.9*float64(s)
	y := 0
	if r.Bernoulli(1 / (1 + math.Exp(-logit))) {
		y = 1
	}
	return dataset.Record{X: []float64{age, hours}, S: s, U: u}, y
}
