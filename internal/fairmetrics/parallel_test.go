package fairmetrics

import (
	"math"
	"sync"
	"testing"

	"otfair/internal/dataset"
	"otfair/internal/rng"
)

// wideTable builds a labelled table with many features so the (u, k) cell
// fan-out actually spreads work.
func wideTable(t *testing.T, seed uint64, n, dim int) *dataset.Table {
	t.Helper()
	r := rng.New(seed)
	tbl, err := dataset.NewTable(dim, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		u, s := r.IntN(2), r.IntN(2)
		x := make([]float64, dim)
		for k := range x {
			x[k] = float64(u) + 0.8*float64(s)*float64(k%3) + r.Norm()
		}
		if err := tbl.Append(dataset.Record{X: x, S: s, U: u}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestComputeParallelMatchesSerial pins every estimator's parallel result
// to the serial one bit-for-bit: the cells are independent and assembled in
// fixed order, so no tolerance is needed.
func TestComputeParallelMatchesSerial(t *testing.T) {
	tbl := wideTable(t, 1, 600, 7)
	for _, est := range []Estimator{EstimatorKDE, EstimatorHistogram, EstimatorPlugin} {
		serial, err := Compute(tbl, Config{Estimator: est, Workers: 1})
		if err != nil {
			t.Fatalf("%v serial: %v", est, err)
		}
		parallel, err := Compute(tbl, Config{Estimator: est, Workers: 8})
		if err != nil {
			t.Fatalf("%v parallel: %v", est, err)
		}
		if serial.Aggregate != parallel.Aggregate {
			t.Errorf("%v: aggregate %v != %v", est, serial.Aggregate, parallel.Aggregate)
		}
		for k := range serial.PerFeature {
			if serial.PerFeature[k] != parallel.PerFeature[k] {
				t.Errorf("%v: feature %d: %v != %v", est, k, serial.PerFeature[k], parallel.PerFeature[k])
			}
		}
		if len(serial.Details) != len(parallel.Details) {
			t.Fatalf("%v: detail count %d != %d", est, len(serial.Details), len(parallel.Details))
		}
		for i := range serial.Details {
			if serial.Details[i] != parallel.Details[i] {
				t.Errorf("%v: detail %d: %+v != %+v", est, i, serial.Details[i], parallel.Details[i])
			}
		}
		if math.IsNaN(serial.Aggregate) {
			t.Errorf("%v: NaN aggregate", est)
		}
	}
}

// TestComputeParallelErrorOrder checks that a missing s-class fails with
// the same (first-cell-in-order) error regardless of worker count.
func TestComputeParallelErrorOrder(t *testing.T) {
	tbl, err := dataset.NewTable(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 50; i++ {
		// u=1 has only s=0: E_{u=1} undefined.
		tbl.Append(dataset.Record{X: []float64{r.Norm(), r.Norm()}, S: r.IntN(2), U: 0})
		tbl.Append(dataset.Record{X: []float64{r.Norm(), r.Norm()}, S: 0, U: 1})
	}
	serialErr := func() string {
		_, err := Compute(tbl, Config{Workers: 1})
		if err == nil {
			t.Fatal("serial: no error for missing s-class")
		}
		return err.Error()
	}()
	_, err = Compute(tbl, Config{Workers: 8})
	if err == nil {
		t.Fatal("parallel: no error for missing s-class")
	}
	if err.Error() != serialErr {
		t.Errorf("error order changed: %q vs %q", err.Error(), serialErr)
	}
}

// TestComputeConcurrentCallers runs Compute itself from many goroutines
// (each internally parallel); under -race this certifies the fan-out.
func TestComputeConcurrentCallers(t *testing.T) {
	tbl := wideTable(t, 3, 400, 5)
	want, err := Compute(tbl, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := Compute(tbl, Config{Workers: 4})
			if err != nil {
				t.Error(err)
				return
			}
			if got.Aggregate != want.Aggregate {
				t.Errorf("concurrent aggregate %v != %v", got.Aggregate, want.Aggregate)
			}
		}()
	}
	wg.Wait()
}
