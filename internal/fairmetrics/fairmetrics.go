// Package fairmetrics implements the paper's fairness measure for data:
// the per-feature s|u-dependence metric E_u (Definition 2.4, a symmetrized
// Kullback–Leibler divergence between the s-conditional feature densities)
// and its Pr[u]-weighted aggregate E (Eq. 3). Lower E means fairer data;
// E = 0 iff (X ⊥ S) | U feature-wise.
//
// The estimator follows the paper's KDE pipeline: Gaussian-kernel density
// estimates of f(x_k | s, u) evaluated on a shared uniform grid spanning
// the pooled sample range, floored and normalized into pmfs, then
// symmetrized discrete KL. The paper does not pin down the grid or floor
// conventions, so both are explicit Config knobs and EXPERIMENTS.md reports
// shape/ratio comparisons rather than absolute matches.
package fairmetrics

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"otfair/internal/dataset"
	"otfair/internal/divergence"
	"otfair/internal/kde"
	"otfair/internal/stat"
)

// Estimator selects how the s|u-conditional densities are estimated.
type Estimator int

const (
	// EstimatorKDE (default) smooths each conditional with a Gaussian KDE
	// before comparing: statistically consistent, converges to the true
	// symmetrized KL (e.g. 0.5 per feature for the paper's simulation).
	EstimatorKDE Estimator = iota
	// EstimatorHistogram compares raw binned frequencies with floored empty
	// bins. Support mismatch in the tails then dominates; sensitive to
	// small-sample sparsity.
	EstimatorHistogram
	// EstimatorPlugin is the Monte-Carlo plug-in estimator
	//   D̂(f0‖f1) = (1/n0) Σ_i [log f̂0(x_{0,i}) − log f̂1(x_{0,i})],
	// the average KDE log-likelihood ratio over the sample itself. Extreme
	// sample points in the opposite group's thin tail dominate, which
	// reproduces the paper's magnitude regime (unrepaired simulation
	// E ≈ 6–8, repaired ≈ 0.1 even for 25-point subgroups); it is the
	// estimator the reproduction harness uses for Tables I/II and
	// Figures 3/4.
	EstimatorPlugin
)

// String names the estimator for CLI flags and reports.
func (e Estimator) String() string {
	switch e {
	case EstimatorHistogram:
		return "histogram"
	case EstimatorPlugin:
		return "plugin"
	default:
		return "kde"
	}
}

// ParseEstimator resolves a CLI estimator name.
func ParseEstimator(name string) (Estimator, error) {
	switch name {
	case "kde", "":
		return EstimatorKDE, nil
	case "histogram":
		return EstimatorHistogram, nil
	case "plugin":
		return EstimatorPlugin, nil
	default:
		return 0, fmt.Errorf("fairmetrics: unknown estimator %q", name)
	}
}

// Config controls the E estimator.
type Config struct {
	// Estimator selects KDE (default) or histogram density estimation.
	Estimator Estimator
	// GridSize is the number of evaluation grid points (default 512 for
	// KDE, 64 bins for histogram).
	GridSize int
	// Floor is the probability floor before log-ratios (default
	// divergence.DefaultFloor).
	Floor float64
	// Kernel is the KDE kernel (default Gaussian, the paper's choice).
	Kernel kde.Kernel
	// Bandwidth is the KDE bandwidth rule (default Silverman, Eq. 12).
	Bandwidth kde.Bandwidth
	// PadBandwidths extends the evaluation grid beyond the pooled sample
	// range by this many (max) bandwidths so KDE tails are represented
	// (default 1).
	PadBandwidths float64
	// Workers fans the per-(u, feature) cell estimates across goroutines
	// (0 = GOMAXPROCS, 1 = serial). Each cell is independent and the
	// assembly order is fixed, so the result is identical for any worker
	// count.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.GridSize <= 0 {
		if c.Estimator == EstimatorHistogram {
			c.GridSize = 64
		} else {
			c.GridSize = 512
		}
	}
	if c.Floor <= 0 {
		c.Floor = divergence.DefaultFloor
	}
	if c.PadBandwidths < 0 {
		c.PadBandwidths = 0
	} else if c.PadBandwidths == 0 {
		c.PadBandwidths = 1
	}
	return c
}

// Detail records one (u, k) cell of the metric for diagnostics.
type Detail struct {
	U       int
	Feature int
	// EU is the symmetrized KL between f(x_k|s=0,u) and f(x_k|s=1,u).
	EU float64
	// WeightU is the empirical Pr[u] used in the aggregation.
	WeightU float64
	// N0, N1 are the per-s sample sizes the densities were fitted on.
	N0, N1 int
}

// Result carries E stratified every way the paper reports it.
type Result struct {
	// PerFeature[k] is E_k = Σ_u Pr[u]·E_{u,k} (the Table I / II cells).
	PerFeature []float64
	// Aggregate is the feature-average of PerFeature (the Figure 3/4 "E",
	// which the paper describes as E aggregated over both features).
	Aggregate float64
	// Details lists every (u, k) cell.
	Details []Detail
}

// Compute evaluates the E metric on the labelled records of a table.
// Records with unknown S are ignored. Every u-population present must
// contain both s-classes; a missing class is an error because E_u is then
// undefined.
func Compute(t *dataset.Table, cfg Config) (*Result, error) {
	if t == nil || t.Len() == 0 {
		return nil, errors.New("fairmetrics: empty table")
	}
	cfg = cfg.withDefaults()

	// Empirical Pr[u] over labelled records.
	nU := [2]int{}
	for _, r := range t.Records() {
		if r.S == dataset.SUnknown {
			continue
		}
		nU[r.U]++
	}
	total := nU[0] + nU[1]
	if total == 0 {
		return nil, errors.New("fairmetrics: no labelled records")
	}

	// Enumerate the (feature, u) cells in the fixed assembly order; each is
	// an independent density-estimation problem, which is what makes the
	// fan-out below deterministic: workers only write their own slot.
	type cellJob struct{ k, u int }
	var jobs []cellJob
	for k := 0; k < t.Dim(); k++ {
		for u := 0; u < 2; u++ {
			if nU[u] > 0 {
				jobs = append(jobs, cellJob{k: k, u: u})
			}
		}
	}
	details := make([]Detail, len(jobs))
	errs := make([]error, len(jobs))
	run := func(j int) {
		job := jobs[j]
		x0 := t.GroupColumn(dataset.Group{U: job.u, S: 0}, job.k)
		x1 := t.GroupColumn(dataset.Group{U: job.u, S: 1}, job.k)
		if len(x0) == 0 || len(x1) == 0 {
			errs[j] = fmt.Errorf("fairmetrics: u=%d population lacks an s-class (n0=%d, n1=%d)", job.u, len(x0), len(x1))
			return
		}
		eu, err := symKLOnSharedGrid(x0, x1, cfg)
		if err != nil {
			errs[j] = fmt.Errorf("fairmetrics: u=%d feature %d: %w", job.u, job.k, err)
			return
		}
		details[j] = Detail{
			U: job.u, Feature: job.k, EU: eu,
			WeightU: float64(nU[job.u]) / float64(total),
			N0:      len(x0), N1: len(x1),
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for j := range jobs {
			run(j)
			// Serial mode fails fast; jobs run in cell order, so this is
			// the same first-in-order error the scan below reports.
			if errs[j] != nil {
				return nil, errs[j]
			}
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range next {
					run(j)
				}
			}()
		}
		for j := range jobs {
			next <- j
		}
		close(next)
		wg.Wait()
	}
	// First error in cell order, so serial and parallel runs fail alike.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := &Result{PerFeature: make([]float64, t.Dim()), Details: details}
	for j, job := range jobs {
		res.PerFeature[job.k] += details[j].WeightU * details[j].EU
	}
	res.Aggregate = stat.Mean(res.PerFeature)
	return res, nil
}

// symKLOnSharedGrid estimates both conditional densities on a shared grid
// spanning the pooled range and returns the floored symmetrized KL.
func symKLOnSharedGrid(x0, x1 []float64, cfg Config) (float64, error) {
	switch cfg.Estimator {
	case EstimatorHistogram:
		return symKLHistogram(x0, x1, cfg)
	case EstimatorPlugin:
		return symKLPlugin(x0, x1, cfg)
	default:
		return symKLKDE(x0, x1, cfg)
	}
}

// symKLPlugin is the Monte-Carlo plug-in estimator: both KDEs are tabulated
// on a fine shared grid once (with the kernel-cutoff fast path) and
// evaluated at the sample points by linear interpolation; log-densities are
// floored at 1e-300 to stay finite under total underflow.
func symKLPlugin(x0, x1 []float64, cfg Config) (float64, error) {
	e0, err := kde.New(x0, cfg.Kernel, cfg.Bandwidth)
	if err != nil {
		return 0, err
	}
	e1, err := kde.New(x1, cfg.Kernel, cfg.Bandwidth)
	if err != nil {
		return 0, err
	}
	lo0, hi0, err := stat.MinMax(x0)
	if err != nil {
		return 0, err
	}
	lo1, hi1, err := stat.MinMax(x1)
	if err != nil {
		return 0, err
	}
	lo, hi := math.Min(lo0, lo1), math.Max(hi0, hi1)
	if !(hi > lo) {
		return 0, nil // degenerate pooled sample
	}
	// Fine tabulation grid: interpolation error is O((Δ/h)²) relative; with
	// 4096 cells it is far below the estimator's own Monte-Carlo noise.
	const gridN = 4096
	pad := 1e-9 * (hi - lo)
	grid := stat.Linspace(lo-pad, hi+pad, gridN)
	d0 := e0.EvalGrid(grid)
	d1 := e1.EvalGrid(grid)
	step := (grid[gridN-1] - grid[0]) / float64(gridN-1)
	logAt := func(dens []float64, x float64) float64 {
		pos := (x - grid[0]) / step
		i := int(pos)
		if i < 0 {
			i = 0
		}
		if i >= gridN-1 {
			i = gridN - 2
		}
		frac := pos - float64(i)
		v := dens[i]*(1-frac) + dens[i+1]*frac
		if v < 1e-300 {
			v = 1e-300
		}
		return math.Log(v)
	}
	mean01 := 0.0 // D(f0 ‖ f1) sampled under f0
	for _, x := range x0 {
		mean01 += logAt(d0, x) - logAt(d1, x)
	}
	mean01 /= float64(len(x0))
	mean10 := 0.0
	for _, x := range x1 {
		mean10 += logAt(d1, x) - logAt(d0, x)
	}
	mean10 /= float64(len(x1))
	e := 0.5*mean01 + 0.5*mean10
	if e < 0 {
		e = 0 // plug-in bias can go slightly negative for identical inputs
	}
	return e, nil
}

// symKLHistogram bins both samples onto shared uniform bins over the pooled
// range; empty bins are floored, so disjoint tails contribute large terms —
// the paper-scale convention.
func symKLHistogram(x0, x1 []float64, cfg Config) (float64, error) {
	lo0, hi0, err := stat.MinMax(x0)
	if err != nil {
		return 0, err
	}
	lo1, hi1, err := stat.MinMax(x1)
	if err != nil {
		return 0, err
	}
	lo, hi := math.Min(lo0, lo1), math.Max(hi0, hi1)
	if !(hi > lo) {
		return 0, nil // degenerate pooled sample: identical conditionals
	}
	h0, err := stat.NewHistogram(lo, hi, cfg.GridSize)
	if err != nil {
		return 0, err
	}
	h1, err := stat.NewHistogram(lo, hi, cfg.GridSize)
	if err != nil {
		return 0, err
	}
	for _, x := range x0 {
		h0.Add(x)
	}
	for _, x := range x1 {
		h1.Add(x)
	}
	p0, err := h0.PMF()
	if err != nil {
		return 0, err
	}
	p1, err := h1.PMF()
	if err != nil {
		return 0, err
	}
	return divergence.SymKLFloored(p0, p1, cfg.Floor)
}

// symKLKDE fits KDEs to both samples and evaluates them on a grid padded by
// the larger bandwidth.
func symKLKDE(x0, x1 []float64, cfg Config) (float64, error) {
	e0, err := kde.New(x0, cfg.Kernel, cfg.Bandwidth)
	if err != nil {
		return 0, err
	}
	e1, err := kde.New(x1, cfg.Kernel, cfg.Bandwidth)
	if err != nil {
		return 0, err
	}
	lo0, hi0, err := stat.MinMax(x0)
	if err != nil {
		return 0, err
	}
	lo1, hi1, err := stat.MinMax(x1)
	if err != nil {
		return 0, err
	}
	lo, hi := math.Min(lo0, lo1), math.Max(hi0, hi1)
	pad := cfg.PadBandwidths * math.Max(e0.Bandwidth(), e1.Bandwidth())
	lo, hi = lo-pad, hi+pad
	if !(hi > lo) {
		// Degenerate pooled sample (all values identical): the conditionals
		// coincide, so the dependence is zero by convention.
		return 0, nil
	}
	grid := stat.Linspace(lo, hi, cfg.GridSize)
	p0, err := e0.GridPMF(grid)
	if err != nil {
		return 0, err
	}
	p1, err := e1.GridPMF(grid)
	if err != nil {
		return 0, err
	}
	return divergence.SymKLFloored(p0, p1, cfg.Floor)
}

// EPerFeature is a convenience wrapper returning only the E_k vector.
func EPerFeature(t *dataset.Table, cfg Config) ([]float64, error) {
	res, err := Compute(t, cfg)
	if err != nil {
		return nil, err
	}
	return res.PerFeature, nil
}

// E is a convenience wrapper returning only the feature-aggregated metric.
func E(t *dataset.Table, cfg Config) (float64, error) {
	res, err := Compute(t, cfg)
	if err != nil {
		return 0, err
	}
	return res.Aggregate, nil
}

// MMDPerFeature evaluates a kernel-based alternative to E: the
// Pr[u]-weighted unbiased MMD² between the s|u-conditional samples of each
// feature (Gretton et al., the cross-covariance decoupling family the paper
// cites in Section II-A). Zero means the conditionals are indistinguishable
// to the RBF kernel; no density estimation or flooring is involved, so it
// cross-checks the KL-based estimators' conclusions.
func MMDPerFeature(t *dataset.Table, opts divergence.MMDOptions) ([]float64, error) {
	if t == nil || t.Len() == 0 {
		return nil, errors.New("fairmetrics: empty table")
	}
	nU := [2]int{}
	for _, r := range t.Records() {
		if r.S == dataset.SUnknown {
			continue
		}
		nU[r.U]++
	}
	total := nU[0] + nU[1]
	if total == 0 {
		return nil, errors.New("fairmetrics: no labelled records")
	}
	out := make([]float64, t.Dim())
	for k := 0; k < t.Dim(); k++ {
		for u := 0; u < 2; u++ {
			if nU[u] == 0 {
				continue
			}
			x0 := t.GroupColumn(dataset.Group{U: u, S: 0}, k)
			x1 := t.GroupColumn(dataset.Group{U: u, S: 1}, k)
			if len(x0) < 2 || len(x1) < 2 {
				return nil, fmt.Errorf("fairmetrics: u=%d population too small for MMD (n0=%d, n1=%d)", u, len(x0), len(x1))
			}
			res, err := divergence.MMD(x0, x1, opts)
			if err != nil {
				return nil, fmt.Errorf("fairmetrics: u=%d feature %d: %w", u, k, err)
			}
			v := res.Squared
			if v < 0 {
				v = 0 // unbiased estimator noise on identical inputs
			}
			out[k] += float64(nU[u]) / float64(total) * v
		}
	}
	return out, nil
}

// Damage quantifies the information cost of a repair as the mean squared
// displacement between original and repaired feature vectors, the
// repair-vs-damage trade-off the paper defers to future work (Section VI).
// Tables must be aligned record-for-record.
func Damage(before, after *dataset.Table) (float64, error) {
	if before == nil || after == nil {
		return 0, errors.New("fairmetrics: nil table")
	}
	if before.Len() != after.Len() || before.Dim() != after.Dim() {
		return 0, fmt.Errorf("fairmetrics: shape mismatch %dx%d vs %dx%d",
			before.Len(), before.Dim(), after.Len(), after.Dim())
	}
	if before.Len() == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := 0; i < before.Len(); i++ {
		a, b := before.At(i), after.At(i)
		for k := range a.X {
			d := a.X[k] - b.X[k]
			sum += d * d
		}
	}
	return sum / float64(before.Len()), nil
}
