package fairmetrics

import (
	"math"
	"testing"

	"otfair/internal/dataset"
	"otfair/internal/rng"
)

// monotoneRepair applies a deterministic increasing map per group.
func monotoneRepair(t *dataset.Table) *dataset.Table {
	out := t.Clone()
	for i := range out.Records() {
		for k := range out.Records()[i].X {
			out.Records()[i].X[k] = 2*out.Records()[i].X[k] + 1
		}
	}
	return out
}

// noisyRepair redraws outputs independently of inputs.
func noisyRepair(t *dataset.Table, r *rng.RNG) *dataset.Table {
	out := t.Clone()
	for i := range out.Records() {
		for k := range out.Records()[i].X {
			out.Records()[i].X[k] = r.Norm()
		}
	}
	return out
}

func individualTestTable(seed uint64, n int) *dataset.Table {
	r := rng.New(seed)
	tab := dataset.MustTable(2, nil)
	for i := 0; i < n; i++ {
		_ = tab.Append(dataset.Record{
			X: []float64{r.Norm(), r.Norm()},
			S: i % 2,
			U: (i / 2) % 2,
		})
	}
	return tab
}

func TestRepairDispersionMonotoneNearZero(t *testing.T) {
	tab := individualTestTable(1, 2000)
	repaired := monotoneRepair(tab)
	d, err := RepairDispersion(tab, repaired, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Within a 1/50-quantile input bin the monotone map's output spread is
	// tiny relative to the unit data scale.
	if d > 0.2 {
		t.Errorf("monotone dispersion = %v, want ≈ 0", d)
	}
}

func TestRepairDispersionNoisyIsLarge(t *testing.T) {
	tab := individualTestTable(2, 2000)
	repaired := noisyRepair(tab, rng.New(3))
	d, err := RepairDispersion(tab, repaired, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Independent standard-normal redraws have within-bin std ≈ 1.
	if math.Abs(d-1) > 0.2 {
		t.Errorf("noisy dispersion = %v, want ≈ 1", d)
	}
}

func TestRepairDispersionOrdering(t *testing.T) {
	tab := individualTestTable(4, 2000)
	mono, err := RepairDispersion(tab, monotoneRepair(tab), 40)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := RepairDispersion(tab, noisyRepair(tab, rng.New(5)), 40)
	if err != nil {
		t.Fatal(err)
	}
	if mono >= noisy/3 {
		t.Errorf("monotone dispersion %v not clearly below noisy %v", mono, noisy)
	}
}

func TestRepairDispersionValidation(t *testing.T) {
	tab := individualTestTable(6, 100)
	if _, err := RepairDispersion(nil, tab, 10); err == nil {
		t.Error("nil before accepted")
	}
	if _, err := RepairDispersion(tab, nil, 10); err == nil {
		t.Error("nil after accepted")
	}
	short := individualTestTable(7, 50)
	if _, err := RepairDispersion(tab, short, 10); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := RepairDispersion(tab, tab, 0); err == nil {
		t.Error("zero bins accepted")
	}
	tiny := individualTestTable(8, 8)
	if _, err := RepairDispersion(tiny, tiny, 50); err == nil {
		t.Error("all-groups-too-small case must error")
	}
}

func TestComonotonicityPolarCases(t *testing.T) {
	tab := individualTestTable(9, 1200)
	mono, err := Comonotonicity(tab, monotoneRepair(tab))
	if err != nil {
		t.Fatal(err)
	}
	if mono != 1 {
		t.Errorf("monotone comonotonicity = %v, want 1", mono)
	}
	// An order-reversing map scores 0.
	rev := tab.Clone()
	for i := range rev.Records() {
		for k := range rev.Records()[i].X {
			rev.Records()[i].X[k] = -rev.Records()[i].X[k]
		}
	}
	anti, err := Comonotonicity(tab, rev)
	if err != nil {
		t.Fatal(err)
	}
	if anti != 0 {
		t.Errorf("anti-monotone comonotonicity = %v, want 0", anti)
	}
	// Independent redraws hover at ½.
	noisy, err := Comonotonicity(tab, noisyRepair(tab, rng.New(10)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(noisy-0.5) > 0.05 {
		t.Errorf("noisy comonotonicity = %v, want ≈ 0.5", noisy)
	}
}

func TestComonotonicityValidation(t *testing.T) {
	tab := individualTestTable(11, 100)
	if _, err := Comonotonicity(nil, tab); err == nil {
		t.Error("nil before accepted")
	}
	short := individualTestTable(12, 40)
	if _, err := Comonotonicity(tab, short); err == nil {
		t.Error("shape mismatch accepted")
	}
	// All-ties input: no comparable pairs.
	constTab := dataset.MustTable(1, nil)
	for i := 0; i < 10; i++ {
		_ = constTab.Append(dataset.Record{X: []float64{1}, S: 0, U: 0})
	}
	if _, err := Comonotonicity(constTab, constTab); err == nil {
		t.Error("all-ties accepted")
	}
}
