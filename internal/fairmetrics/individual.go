package fairmetrics

import (
	"errors"
	"fmt"
	"sort"

	"otfair/internal/dataset"
	"otfair/internal/stat"
)

// Individual-fairness diagnostics for repairs, after Section VI of the
// paper: Kantorovich plans split mass, so two feature-identical records can
// be repaired differently; Monge maps are functions, so "feature-similar
// points are repaired similarly". Brenier's theorem says the Kantorovich
// plan converges to a Monge map as n_Q → ∞ — RepairDispersion and
// Comonotonicity make that convergence measurable (ablation X11).

// RepairDispersion quantifies how differently near-identical inputs are
// repaired: per (u,s) group and feature, the inputs are sorted and sliced
// into equal-count bins, and the standard deviation of the repaired values
// within each narrow input bin is averaged (weighted by bin size, then
// across groups/features by group size). A deterministic monotone (Monge)
// repair scores ≈ 0 — within-bin output spread then reflects only the bin's
// own input spread — while a mass-splitting stochastic repair scores on the
// order of the plan rows' conditional spread.
func RepairDispersion(before, after *dataset.Table, bins int) (float64, error) {
	if before == nil || after == nil {
		return 0, errors.New("fairmetrics: nil table")
	}
	if before.Len() != after.Len() || before.Dim() != after.Dim() {
		return 0, fmt.Errorf("fairmetrics: shape mismatch %d×%d vs %d×%d",
			before.Len(), before.Dim(), after.Len(), after.Dim())
	}
	if bins < 1 {
		return 0, fmt.Errorf("fairmetrics: bins must be positive, got %d", bins)
	}
	total, weighted := 0, 0.0
	for _, g := range dataset.Groups() {
		idx := groupIndices(before, g)
		if len(idx) < 2*bins {
			continue // too small to slice meaningfully
		}
		for k := 0; k < before.Dim(); k++ {
			pairs := make([][2]float64, len(idx))
			for i, id := range idx {
				pairs[i] = [2]float64{before.At(id).X[k], after.At(id).X[k]}
			}
			sort.Slice(pairs, func(a, b int) bool { return pairs[a][0] < pairs[b][0] })
			sum, n := 0.0, 0
			for b := 0; b < bins; b++ {
				lo := b * len(pairs) / bins
				hi := (b + 1) * len(pairs) / bins
				if hi-lo < 2 {
					continue
				}
				outs := make([]float64, 0, hi-lo)
				for _, p := range pairs[lo:hi] {
					outs = append(outs, p[1])
				}
				sum += stat.StdDev(outs) * float64(hi-lo)
				n += hi - lo
			}
			if n > 0 {
				weighted += sum
				total += n
			}
		}
	}
	if total == 0 {
		return 0, errors.New("fairmetrics: no group large enough for dispersion")
	}
	return weighted / float64(total), nil
}

// Comonotonicity measures order preservation: the fraction of strictly
// concordant (input, output) pairs per (u,s) group and feature, averaged
// with group-size weights. Pairs are taken deterministically at several
// index lags so the estimate needs no randomness source. A monotone map
// scores 1; independent redraws score ≈ 0.5; an order-reversing map scores
// 0. Ties in either coordinate are excluded.
func Comonotonicity(before, after *dataset.Table) (float64, error) {
	if before == nil || after == nil {
		return 0, errors.New("fairmetrics: nil table")
	}
	if before.Len() != after.Len() || before.Dim() != after.Dim() {
		return 0, fmt.Errorf("fairmetrics: shape mismatch %d×%d vs %d×%d",
			before.Len(), before.Dim(), after.Len(), after.Dim())
	}
	lags := []int{1, 3, 7, 13, 29}
	concordant, valid := 0, 0
	for _, g := range dataset.Groups() {
		idx := groupIndices(before, g)
		n := len(idx)
		if n < 2 {
			continue
		}
		for k := 0; k < before.Dim(); k++ {
			for _, lag := range lags {
				if lag >= n {
					break
				}
				for i := 0; i+lag < n; i++ {
					a, b := idx[i], idx[i+lag]
					dx := before.At(a).X[k] - before.At(b).X[k]
					dy := after.At(a).X[k] - after.At(b).X[k]
					if dx == 0 || dy == 0 {
						continue
					}
					valid++
					if (dx > 0) == (dy > 0) {
						concordant++
					}
				}
			}
		}
	}
	if valid == 0 {
		return 0, errors.New("fairmetrics: no comparable pairs (all ties)")
	}
	return float64(concordant) / float64(valid), nil
}

// groupIndices returns the record indices of one (u,s) group in order.
func groupIndices(t *dataset.Table, g dataset.Group) []int {
	var idx []int
	for i, rec := range t.Records() {
		if rec.U == g.U && rec.S == g.S {
			idx = append(idx, i)
		}
	}
	return idx
}
