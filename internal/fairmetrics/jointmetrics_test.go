package fairmetrics

import (
	"math"
	"testing"

	"otfair/internal/dataset"
	"otfair/internal/rng"
)

// corrTable builds a labelled table whose s-groups have correlation ±rho
// with standard-normal marginals (the structure-only dependence case), or
// identical correlation when rho1 == rho0.
func corrTable(t *testing.T, seed uint64, n int, rho0, rho1 float64) *dataset.Table {
	t.Helper()
	r := rng.New(seed)
	tab := dataset.MustTable(2, []string{"x1", "x2"})
	draw := func(rho float64) []float64 {
		z1 := r.Norm()
		z2 := rho*z1 + math.Sqrt(1-rho*rho)*r.Norm()
		return []float64{z1, z2}
	}
	for i := 0; i < n; i++ {
		u := i % 2
		if i%4 < 2 {
			_ = tab.Append(dataset.Record{X: draw(rho0), S: 0, U: u})
		} else {
			_ = tab.Append(dataset.Record{X: draw(rho1), S: 1, U: u})
		}
	}
	return tab
}

func TestEJointDetectsStructureOnlyDependence(t *testing.T) {
	// Opposite correlations, identical marginals: per-feature E sees almost
	// nothing, EJoint must light up.
	tab := corrTable(t, 1, 4000, 0.8, -0.8)
	perFeature, err := E(tab, Config{Estimator: EstimatorKDE})
	if err != nil {
		t.Fatal(err)
	}
	jointE, err := EJoint(tab, JointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if jointE < 5*perFeature {
		t.Errorf("EJoint %v should dominate per-feature E %v on structure-only dependence", jointE, perFeature)
	}
	if jointE < 0.2 {
		t.Errorf("EJoint = %v, want clearly positive for ±0.8 correlations", jointE)
	}
}

func TestEJointNearZeroForIdenticalConditionals(t *testing.T) {
	tab := corrTable(t, 2, 4000, 0.5, 0.5)
	jointE, err := EJoint(tab, JointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if jointE > 0.05 {
		t.Errorf("EJoint = %v for identically distributed s-groups, want ≈ 0", jointE)
	}
}

func TestEJointValidation(t *testing.T) {
	if _, err := EJoint(nil, JointConfig{}); err == nil {
		t.Error("nil table accepted")
	}
	empty := dataset.MustTable(2, nil)
	if _, err := EJoint(empty, JointConfig{}); err == nil {
		t.Error("empty table accepted")
	}
	unlabelled := dataset.MustTable(2, nil)
	_ = unlabelled.Append(dataset.Record{X: []float64{0, 0}, S: dataset.SUnknown, U: 0})
	if _, err := EJoint(unlabelled, JointConfig{}); err == nil {
		t.Error("all-unlabelled table accepted")
	}
	oneClass := dataset.MustTable(2, nil)
	for i := 0; i < 10; i++ {
		_ = oneClass.Append(dataset.Record{X: []float64{float64(i), 0}, S: 0, U: 0})
	}
	if _, err := EJoint(oneClass, JointConfig{}); err == nil {
		t.Error("missing s-class accepted")
	}
}

func TestEJointHandlesDegenerateAxis(t *testing.T) {
	// A globally constant feature collapses that axis; the metric must
	// still evaluate on the remaining structure.
	r := rng.New(3)
	tab := dataset.MustTable(2, nil)
	for i := 0; i < 400; i++ {
		u := i % 2
		s := (i / 2) % 2
		shift := float64(s) * 2
		_ = tab.Append(dataset.Record{X: []float64{r.Normal(shift, 1), 5}, S: s, U: u})
	}
	jointE, err := EJoint(tab, JointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if jointE <= 0.05 {
		t.Errorf("EJoint = %v, want positive for mean-shifted groups", jointE)
	}
}

func TestCorrelationGap(t *testing.T) {
	opposite := corrTable(t, 4, 4000, 0.8, -0.8)
	gap, err := CorrelationGap(opposite)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gap-1.6) > 0.15 {
		t.Errorf("gap = %v, want ≈ 1.6", gap)
	}
	same := corrTable(t, 5, 4000, 0.6, 0.6)
	gap, err = CorrelationGap(same)
	if err != nil {
		t.Fatal(err)
	}
	if gap > 0.1 {
		t.Errorf("gap = %v for equal correlations, want ≈ 0", gap)
	}
}

func TestCorrelationGapValidation(t *testing.T) {
	if _, err := CorrelationGap(nil); err == nil {
		t.Error("nil table accepted")
	}
	oneD := dataset.MustTable(1, nil)
	_ = oneD.Append(dataset.Record{X: []float64{1}, S: 0, U: 0})
	if _, err := CorrelationGap(oneD); err == nil {
		t.Error("1-D table accepted")
	}
	unlabelled := dataset.MustTable(2, nil)
	_ = unlabelled.Append(dataset.Record{X: []float64{0, 0}, S: dataset.SUnknown, U: 0})
	if _, err := CorrelationGap(unlabelled); err == nil {
		t.Error("all-unlabelled table accepted")
	}
}

func TestCorrelationDamage(t *testing.T) {
	tab := corrTable(t, 6, 2000, 0.7, 0.7)
	// Identity repair: zero damage.
	zero, err := CorrelationDamage(tab, tab)
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Errorf("identity damage = %v", zero)
	}
	// Shuffling one column within each group kills its correlation: damage
	// must approach |rho| = 0.7.
	r := rng.New(7)
	broken := tab.Clone()
	recs := broken.Records()
	byGroup := map[dataset.Group][]int{}
	for i, rec := range recs {
		g := dataset.Group{U: rec.U, S: rec.S}
		byGroup[g] = append(byGroup[g], i)
	}
	for _, idx := range byGroup {
		perm := r.Perm(len(idx))
		vals := make([]float64, len(idx))
		for i, id := range idx {
			vals[i] = recs[id].X[1]
		}
		for i, id := range idx {
			recs[id].X[1] = vals[perm[i]]
		}
	}
	dmg, err := CorrelationDamage(tab, broken)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dmg-0.7) > 0.1 {
		t.Errorf("shuffle damage = %v, want ≈ 0.7", dmg)
	}
}

func TestCorrelationDamageValidation(t *testing.T) {
	tab := corrTable(t, 8, 100, 0.5, 0.5)
	if _, err := CorrelationDamage(nil, tab); err == nil {
		t.Error("nil before accepted")
	}
	if _, err := CorrelationDamage(tab, nil); err == nil {
		t.Error("nil after accepted")
	}
	short := corrTable(t, 9, 40, 0.5, 0.5)
	if _, err := CorrelationDamage(tab, short); err == nil {
		t.Error("length mismatch accepted")
	}
	oneD := dataset.MustTable(1, nil)
	_ = oneD.Append(dataset.Record{X: []float64{1}, S: 0, U: 0})
	if _, err := CorrelationDamage(oneD, oneD); err == nil {
		t.Error("1-D table accepted")
	}
}
