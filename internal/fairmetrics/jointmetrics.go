package fairmetrics

import (
	"errors"
	"fmt"
	"math"

	"otfair/internal/dataset"
	"otfair/internal/divergence"
	"otfair/internal/kde"
	"otfair/internal/stat"
)

// JointConfig controls the joint (multivariate) dependence metric.
type JointConfig struct {
	// GridSize is the number of evaluation points per dimension (default 32;
	// the product grid has GridSize^d states).
	GridSize int
	// Floor is the probability floor before log-ratios (default
	// divergence.DefaultFloor).
	Floor float64
	// Kernel and Bandwidth configure the multivariate KDE (defaults:
	// Gaussian, Silverman).
	Kernel    kde.Kernel
	Bandwidth kde.Bandwidth
	// PadBandwidths extends the grid beyond the pooled range by this many
	// bandwidths per dimension (default 1).
	PadBandwidths float64
}

func (c JointConfig) withDefaults() JointConfig {
	if c.GridSize <= 0 {
		c.GridSize = 32
	}
	if c.Floor <= 0 {
		c.Floor = divergence.DefaultFloor
	}
	if c.PadBandwidths < 0 {
		c.PadBandwidths = 0
	} else if c.PadBandwidths == 0 {
		c.PadBandwidths = 1
	}
	return c
}

// EJoint is the multivariate counterpart of E (Definition 2.4 without the
// feature stratification): the Pr[u]-weighted symmetrized KL between the
// full d-dimensional s|u-conditional densities, estimated by product-kernel
// KDE on a shared product grid. Dependence that lives purely in the
// correlation structure — invisible to the per-feature E — shows up here;
// the joint-repair ablation (X8) relies on exactly that.
func EJoint(t *dataset.Table, cfg JointConfig) (float64, error) {
	if t == nil || t.Len() == 0 {
		return 0, errors.New("fairmetrics: empty table")
	}
	cfg = cfg.withDefaults()

	nU := [2]int{}
	for _, r := range t.Records() {
		if r.S == dataset.SUnknown {
			continue
		}
		nU[r.U]++
	}
	total := nU[0] + nU[1]
	if total == 0 {
		return 0, errors.New("fairmetrics: no labelled records")
	}

	e := 0.0
	for u := 0; u < 2; u++ {
		if nU[u] == 0 {
			continue
		}
		rows := [2][][]float64{}
		for _, rec := range t.Records() {
			if rec.U != u || rec.S == dataset.SUnknown {
				continue
			}
			rows[rec.S] = append(rows[rec.S], rec.X)
		}
		if len(rows[0]) == 0 || len(rows[1]) == 0 {
			return 0, fmt.Errorf("fairmetrics: u=%d population lacks an s-class (n0=%d, n1=%d)", u, len(rows[0]), len(rows[1]))
		}
		eu, err := jointSymKL(rows[0], rows[1], t.Dim(), cfg)
		if err != nil {
			return 0, fmt.Errorf("fairmetrics: u=%d: %w", u, err)
		}
		e += float64(nU[u]) / float64(total) * eu
	}
	return e, nil
}

// jointSymKL estimates the symmetrized KL between two d-dimensional samples
// via product-kernel KDEs tabulated on a shared product grid.
func jointSymKL(x0, x1 [][]float64, dim int, cfg JointConfig) (float64, error) {
	e0, err := kde.NewMulti(x0, cfg.Kernel, cfg.Bandwidth)
	if err != nil {
		return 0, err
	}
	e1, err := kde.NewMulti(x1, cfg.Kernel, cfg.Bandwidth)
	if err != nil {
		return 0, err
	}
	h0, h1 := e0.Bandwidths(), e1.Bandwidths()
	grids := make([][]float64, dim)
	for k := 0; k < dim; k++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, rows := range [][][]float64{x0, x1} {
			for _, row := range rows {
				if row[k] < lo {
					lo = row[k]
				}
				if row[k] > hi {
					hi = row[k]
				}
			}
		}
		pad := cfg.PadBandwidths * math.Max(h0[k], h1[k])
		if !(hi > lo) {
			// Degenerate axis: a single shared state contributes nothing.
			grids[k] = []float64{lo}
			continue
		}
		grids[k] = stat.Linspace(lo-pad, hi+pad, cfg.GridSize)
	}
	p0, err := e0.GridPMF(grids)
	if err != nil {
		return 0, err
	}
	p1, err := e1.GridPMF(grids)
	if err != nil {
		return 0, err
	}
	return divergence.SymKLFloored(p0, p1, cfg.Floor)
}

// CorrelationGap measures the s-dependence that lives in the pairwise
// correlation structure: the Pr[u]-weighted mean over u and feature pairs
// (j < k) of |ρ_{u,s=0}(j,k) − ρ_{u,s=1}(j,k)|. It is zero when both
// s-conditionals share their correlation matrices — a necessary condition
// for the conditional independence of Definition 2.1 that the per-feature E
// cannot detect.
func CorrelationGap(t *dataset.Table) (float64, error) {
	if t == nil || t.Len() == 0 {
		return 0, errors.New("fairmetrics: empty table")
	}
	if t.Dim() < 2 {
		return 0, errors.New("fairmetrics: correlation gap needs at least two features")
	}
	nU := [2]int{}
	for _, r := range t.Records() {
		if r.S == dataset.SUnknown {
			continue
		}
		nU[r.U]++
	}
	total := nU[0] + nU[1]
	if total == 0 {
		return 0, errors.New("fairmetrics: no labelled records")
	}
	pairs := t.Dim() * (t.Dim() - 1) / 2
	gap := 0.0
	for u := 0; u < 2; u++ {
		if nU[u] == 0 {
			continue
		}
		sum := 0.0
		for j := 0; j < t.Dim(); j++ {
			for k := j + 1; k < t.Dim(); k++ {
				r0 := stat.Correlation(t.GroupColumn(dataset.Group{U: u, S: 0}, j), t.GroupColumn(dataset.Group{U: u, S: 0}, k))
				r1 := stat.Correlation(t.GroupColumn(dataset.Group{U: u, S: 1}, j), t.GroupColumn(dataset.Group{U: u, S: 1}, k))
				if math.IsNaN(r0) || math.IsNaN(r1) {
					return 0, fmt.Errorf("fairmetrics: degenerate correlation in u=%d pair (%d,%d)", u, j, k)
				}
				sum += math.Abs(r0 - r1)
			}
		}
		gap += float64(nU[u]) / float64(total) * sum / float64(pairs)
	}
	return gap, nil
}

// CorrelationDamage measures how much a repair distorted the dependence
// structure: the mean over (u,s) groups and feature pairs of
// |ρ_before(j,k) − ρ_after(j,k)|. Low values mean the repair preserved the
// copula; the per-feature repair's independent redraws inflate it.
func CorrelationDamage(before, after *dataset.Table) (float64, error) {
	if before == nil || after == nil {
		return 0, errors.New("fairmetrics: nil table")
	}
	if before.Len() != after.Len() || before.Dim() != after.Dim() {
		return 0, fmt.Errorf("fairmetrics: shape mismatch %d×%d vs %d×%d",
			before.Len(), before.Dim(), after.Len(), after.Dim())
	}
	if before.Dim() < 2 {
		return 0, errors.New("fairmetrics: correlation damage needs at least two features")
	}
	pairs := before.Dim() * (before.Dim() - 1) / 2
	sum, groups := 0.0, 0
	for _, g := range dataset.Groups() {
		b0 := before.GroupColumn(g, 0)
		if len(b0) < 3 {
			continue
		}
		groups++
		for j := 0; j < before.Dim(); j++ {
			for k := j + 1; k < before.Dim(); k++ {
				rb := stat.Correlation(before.GroupColumn(g, j), before.GroupColumn(g, k))
				ra := stat.Correlation(after.GroupColumn(g, j), after.GroupColumn(g, k))
				if math.IsNaN(rb) || math.IsNaN(ra) {
					continue // constant column in this group: no dependence to damage
				}
				sum += math.Abs(rb-ra) / float64(pairs)
			}
		}
	}
	if groups == 0 {
		return 0, errors.New("fairmetrics: no group large enough for correlations")
	}
	return sum / float64(groups), nil
}
