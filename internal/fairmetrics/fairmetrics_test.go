package fairmetrics

import (
	"math"
	"testing"

	"otfair/internal/dataset"
	"otfair/internal/divergence"
	"otfair/internal/rng"
	"otfair/internal/simulate"
)

func TestComputeOnPaperScenario(t *testing.T) {
	s, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	tbl, err := s.Table(r, 5000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerFeature) != 2 {
		t.Fatalf("per-feature = %v", res.PerFeature)
	}
	// The true symmetrized KL for the scenario is 0.5 per feature
	// (unit-variance normals one mean apart in each u-group); the KDE
	// estimator should land near it.
	for k, e := range res.PerFeature {
		if e < 0.3 || e > 0.8 {
			t.Errorf("feature %d E = %v, want ≈ 0.5", k, e)
		}
	}
	if math.Abs(res.Aggregate-(res.PerFeature[0]+res.PerFeature[1])/2) > 1e-12 {
		t.Errorf("aggregate %v is not the feature mean of %v", res.Aggregate, res.PerFeature)
	}
	if len(res.Details) != 4 {
		t.Errorf("details = %d cells, want 4", len(res.Details))
	}
	wsum := 0.0
	for _, d := range res.Details {
		if d.EU < 0 {
			t.Errorf("negative E_u: %+v", d)
		}
		if d.Feature == 0 {
			wsum += d.WeightU
		}
	}
	if math.Abs(wsum-1) > 1e-12 {
		t.Errorf("u-weights sum to %v", wsum)
	}
}

func TestHistogramEstimatorPaperScale(t *testing.T) {
	// The histogram estimator with floored empty bins reproduces the
	// magnitude regime of the paper's Table I (unrepaired E ≈ 6–8 at
	// research-set sizes).
	s, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.Table(rng.New(6), 500)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(tbl, Config{Estimator: EstimatorHistogram})
	if err != nil {
		t.Fatal(err)
	}
	for k, e := range res.PerFeature {
		if e < 2 || e > 20 {
			t.Errorf("histogram feature %d E = %v, want paper-scale (2..20)", k, e)
		}
	}
	// KDE estimate on the same data must be far smaller.
	kdeRes, err := Compute(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if kdeRes.Aggregate >= res.Aggregate {
		t.Errorf("KDE E %v not below histogram E %v", kdeRes.Aggregate, res.Aggregate)
	}
}

func TestEstimatorString(t *testing.T) {
	if EstimatorKDE.String() != "kde" || EstimatorHistogram.String() != "histogram" {
		t.Error("estimator names wrong")
	}
}

func TestEZeroWhenConditionalsIdentical(t *testing.T) {
	// s assigned independently of x within each u: E should be near zero.
	r := rng.New(2)
	tbl := dataset.MustTable(1, nil)
	for i := 0; i < 4000; i++ {
		u := i % 2
		s := 0
		if r.Bernoulli(0.5) {
			s = 1
		}
		x := r.Normal(float64(u)*3, 1) // depends on u only
		if err := tbl.Append(dataset.Record{X: []float64{x}, S: s, U: u}); err != nil {
			t.Fatal(err)
		}
	}
	e, err := E(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e > 0.1 {
		t.Errorf("independent data E = %v, want ~0", e)
	}
}

func TestEDetectsSingleUnfairGroup(t *testing.T) {
	// Dependence only in u=1: the u=1 detail cells must dominate.
	r := rng.New(3)
	tbl := dataset.MustTable(1, nil)
	for i := 0; i < 6000; i++ {
		u := i % 2
		s := 0
		if r.Bernoulli(0.5) {
			s = 1
		}
		mean := 0.0
		if u == 1 && s == 1 {
			mean = 2
		}
		if err := tbl.Append(dataset.Record{X: []float64{r.Normal(mean, 1)}, S: s, U: u}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Compute(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var e0, e1 float64
	for _, d := range res.Details {
		if d.U == 0 {
			e0 = d.EU
		} else {
			e1 = d.EU
		}
	}
	if e1 < 5*e0 || e1 < 0.5 {
		t.Errorf("E_u0 = %v, E_u1 = %v: unfair group not isolated", e0, e1)
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil, Config{}); err == nil {
		t.Error("nil table accepted")
	}
	empty := dataset.MustTable(1, nil)
	if _, err := Compute(empty, Config{}); err == nil {
		t.Error("empty table accepted")
	}
	// Missing s-class within a u-population.
	oneClass := dataset.MustTable(1, nil)
	for i := 0; i < 10; i++ {
		oneClass.Append(dataset.Record{X: []float64{float64(i)}, S: 0, U: 0})
	}
	if _, err := Compute(oneClass, Config{}); err == nil {
		t.Error("single-class population accepted")
	}
	// Only unlabelled records.
	unl := dataset.MustTable(1, nil)
	unl.Append(dataset.Record{X: []float64{1}, S: dataset.SUnknown, U: 0})
	if _, err := Compute(unl, Config{}); err == nil {
		t.Error("fully unlabelled table accepted")
	}
}

func TestComputeIgnoresUnlabelled(t *testing.T) {
	r := rng.New(4)
	tbl := dataset.MustTable(1, nil)
	for i := 0; i < 2000; i++ {
		s := i % 2
		tbl.Append(dataset.Record{X: []float64{r.Normal(float64(s), 1)}, S: s, U: 0})
	}
	withNoise := tbl.Clone()
	// Adding unlabelled junk must not change the metric.
	for i := 0; i < 500; i++ {
		withNoise.Append(dataset.Record{X: []float64{r.Uniform(-100, 100)}, S: dataset.SUnknown, U: 0})
	}
	// Both-u requirement: metric runs with only u=0 present.
	e1, err := E(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := E(withNoise, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e1-e2) > 1e-9 {
		t.Errorf("unlabelled records changed E: %v vs %v", e1, e2)
	}
}

func TestEDegenerateFeatureIsZero(t *testing.T) {
	// A constant feature column carries no dependence.
	tbl := dataset.MustTable(1, nil)
	for i := 0; i < 100; i++ {
		tbl.Append(dataset.Record{X: []float64{5}, S: i % 2, U: 0})
	}
	e, err := E(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("constant-feature E = %v", e)
	}
}

func TestConfigKnobsChangeEstimate(t *testing.T) {
	s, _ := simulate.NewSampler(simulate.Paper())
	tbl, _ := s.Table(rng.New(5), 2000)
	loose, err := E(tbl, Config{Floor: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := E(tbl, Config{Floor: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	// A tighter floor exposes more tail mismatch, so the estimate grows.
	if tight <= loose {
		t.Errorf("floor 1e-15 E = %v not above floor 1e-3 E = %v", tight, loose)
	}
}

func TestMMDPerFeatureAgreesWithE(t *testing.T) {
	// The MMD cross-check must agree with E about which data set is fairer.
	s, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(21)
	unfair, err := s.Table(r, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// A fair table: s assigned independently of x.
	fair := dataset.MustTable(2, nil)
	for i := 0; i < 2000; i++ {
		u := i % 2
		sLabel := 0
		if r.Bernoulli(0.5) {
			sLabel = 1
		}
		fair.Append(dataset.Record{X: []float64{r.Norm(), r.Norm()}, S: sLabel, U: u})
	}
	mUnfair, err := MMDPerFeature(unfair, divergence.MMDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mFair, err := MMDPerFeature(fair, divergence.MMDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		if mUnfair[k] < 5*mFair[k] {
			t.Errorf("feature %d: MMD unfair %v vs fair %v — weak separation", k, mUnfair[k], mFair[k])
		}
	}
}

func TestMMDPerFeatureValidation(t *testing.T) {
	if _, err := MMDPerFeature(nil, divergence.MMDOptions{}); err == nil {
		t.Error("nil table accepted")
	}
	small := dataset.MustTable(1, nil)
	small.Append(dataset.Record{X: []float64{1}, S: 0, U: 0})
	small.Append(dataset.Record{X: []float64{2}, S: 1, U: 0})
	if _, err := MMDPerFeature(small, divergence.MMDOptions{}); err == nil {
		t.Error("too-small groups accepted")
	}
}

func TestDamage(t *testing.T) {
	a := dataset.MustTable(2, nil)
	b := dataset.MustTable(2, nil)
	a.Append(dataset.Record{X: []float64{0, 0}, S: 0, U: 0})
	b.Append(dataset.Record{X: []float64{3, 4}, S: 0, U: 0})
	d, err := Damage(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-25) > 1e-12 {
		t.Errorf("damage = %v, want 25", d)
	}
	if _, err := Damage(a, dataset.MustTable(1, nil)); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := Damage(nil, b); err == nil {
		t.Error("nil table accepted")
	}
	same, _ := Damage(a, a)
	if same != 0 {
		t.Errorf("self damage = %v", same)
	}
}
