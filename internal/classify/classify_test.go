package classify

import (
	"math"
	"testing"

	"otfair/internal/dataset"
	"otfair/internal/rng"
)

func TestTrainSeparable(t *testing.T) {
	r := rng.New(1)
	var rows [][]float64
	var labels []int
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			rows = append(rows, []float64{r.Normal(-2, 0.5)})
			labels = append(labels, 0)
		} else {
			rows = append(rows, []float64{r.Normal(2, 0.5)})
			labels = append(labels, 1)
		}
	}
	m, err := Train(rows, labels, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := m.Accuracy(rows, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.98 {
		t.Errorf("separable accuracy = %v", acc)
	}
	if p := m.Prob([]float64{3}); p < 0.9 {
		t.Errorf("Prob(3) = %v", p)
	}
	if p := m.Prob([]float64{-3}); p > 0.1 {
		t.Errorf("Prob(-3) = %v", p)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, TrainOptions{}); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Train([][]float64{{1}}, []int{0, 1}, TrainOptions{}); err == nil {
		t.Error("label count mismatch accepted")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []int{0, 1}, TrainOptions{}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := Train([][]float64{{1}}, []int{2}, TrainOptions{}); err == nil {
		t.Error("non-binary label accepted")
	}
	if _, err := Train([][]float64{{}}, []int{0}, TrainOptions{}); err == nil {
		t.Error("zero-dim accepted")
	}
}

func TestTrainConstantFeature(t *testing.T) {
	// Zero-variance feature must not produce NaNs (std floor).
	rows := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	labels := []int{0, 0, 1, 1}
	m, err := Train(rows, labels, TrainOptions{Epochs: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m.Prob([]float64{2.5, 5})) {
		t.Error("NaN probability with constant feature")
	}
}

func TestPredictThreshold(t *testing.T) {
	rows := [][]float64{{0}, {1}}
	labels := []int{0, 1}
	m, err := Train(rows, labels, TrainOptions{Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{1}) != 1 || m.Predict([]float64{0}) != 0 {
		t.Error("threshold misbehaves on training points")
	}
}

func biasedTable(t *testing.T) *dataset.Table {
	t.Helper()
	tbl := dataset.MustTable(1, nil)
	r := rng.New(2)
	// s=1 earns a higher feature, so a threshold rule favours s=1.
	for i := 0; i < 2000; i++ {
		u := i % 2
		s := 0
		if r.Bernoulli(0.5) {
			s = 1
		}
		x := r.Normal(float64(s)*2, 1)
		if err := tbl.Append(dataset.Record{X: []float64{x}, S: s, U: u}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestRatesAndDisparateImpact(t *testing.T) {
	tbl := biasedTable(t)
	threshold := func(x []float64) int {
		if x[0] > 1 {
			return 1
		}
		return 0
	}
	rates, err := Rates(tbl, threshold)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		di := rates.DisparateImpact(u)
		if math.IsNaN(di) || di > 0.5 {
			t.Errorf("u=%d DI = %v, expected strong disparity (<0.5)", u, di)
		}
		if rates.IsFair(u) {
			t.Errorf("u=%d flagged fair despite disparity", u)
		}
		if spd := rates.StatisticalParityDiff(u); spd >= 0 {
			t.Errorf("u=%d SPD = %v, expected negative", u, spd)
		}
	}
}

func TestFairRuleHasUnitDI(t *testing.T) {
	tbl := biasedTable(t)
	coin := 0
	fair := func(x []float64) int {
		coin++
		return coin % 2
	}
	rates, err := Rates(tbl, fair)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		di := rates.DisparateImpact(u)
		if math.Abs(di-1) > 0.15 {
			t.Errorf("u=%d DI of random rule = %v", u, di)
		}
		if !rates.IsFair(u) {
			t.Errorf("u=%d random rule flagged unfair (DI %v)", u, di)
		}
	}
}

func TestDisparateImpactEdgeCases(t *testing.T) {
	r := &GroupRates{}
	r.Rate[0][0] = 0.5
	r.Rate[0][1] = 0
	r.N[0][0], r.N[0][1] = 10, 10
	if di := r.DisparateImpact(0); !math.IsInf(di, 1) {
		t.Errorf("zero-denominator DI = %v", di)
	}
	r.Rate[0][0] = 0
	if di := r.DisparateImpact(0); di != 1 {
		t.Errorf("0/0 DI = %v, want 1", di)
	}
	r.Rate[1][0] = math.NaN()
	if di := r.DisparateImpact(1); !math.IsNaN(di) {
		t.Errorf("empty-group DI = %v", di)
	}
	if r.IsFair(1) {
		t.Error("NaN DI flagged fair")
	}
}

func TestRatesSkipsUnlabelled(t *testing.T) {
	tbl := dataset.MustTable(1, nil)
	tbl.Append(dataset.Record{X: []float64{1}, S: dataset.SUnknown, U: 0})
	tbl.Append(dataset.Record{X: []float64{1}, S: 0, U: 0})
	tbl.Append(dataset.Record{X: []float64{1}, S: 1, U: 0})
	rates, err := Rates(tbl, func([]float64) int { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if rates.N[0][0] != 1 || rates.N[0][1] != 1 {
		t.Errorf("counts = %v", rates.N)
	}
	if _, err := Rates(nil, func([]float64) int { return 0 }); err == nil {
		t.Error("nil table accepted")
	}
}

func TestEqualOpportunityDiff(t *testing.T) {
	tbl := dataset.MustTable(1, nil)
	// 4 positives per s-class in u=0; rule catches all s=1, half of s=0.
	y := []int{}
	for i := 0; i < 8; i++ {
		s := i % 2
		x := float64(i)
		tbl.Append(dataset.Record{X: []float64{x}, S: s, U: 0})
		y = append(y, 1)
	}
	rule := func(x []float64) int {
		if int(x[0])%2 == 1 { // all s=1 (odd indices)
			return 1
		}
		if x[0] >= 4 { // half of s=0
			return 1
		}
		return 0
	}
	d, err := EqualOpportunityDiff(tbl, y, rule, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-(-0.5)) > 1e-12 {
		t.Errorf("EO diff = %v, want -0.5", d)
	}
	if _, err := EqualOpportunityDiff(tbl, y[:2], rule, 0); err == nil {
		t.Error("misaligned outcomes accepted")
	}
	empty, err := EqualOpportunityDiff(tbl, y, rule, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(empty) {
		t.Errorf("empty-u EO = %v, want NaN", empty)
	}
}

func TestLogisticProbMonotonicInFeature(t *testing.T) {
	r := rng.New(3)
	var rows [][]float64
	var labels []int
	for i := 0; i < 300; i++ {
		x := r.Uniform(-3, 3)
		label := 0
		if x+0.3*r.Norm() > 0 {
			label = 1
		}
		rows = append(rows, []float64{x})
		labels = append(labels, label)
	}
	m, err := Train(rows, labels, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, x := range []float64{-2, -1, 0, 1, 2} {
		p := m.Prob([]float64{x})
		if p <= prev {
			t.Errorf("Prob not increasing at %v: %v <= %v", x, p, prev)
		}
		prev = p
	}
}
