// Package classify provides the downstream decision model of the paper's
// Figures 1–2 — a prediction rule ŷ = g(x) — and the u-conditional
// decision-fairness proxies of Section II-B: disparate impact
// (Definition 2.3), statistical parity difference, and equal opportunity.
// The repair experiments use it to show that quenching (X ⊥̸ S)|U also
// quenches classifier-level unfairness, and to quantify the accuracy cost.
package classify

import (
	"errors"
	"fmt"
	"math"

	"otfair/internal/dataset"
)

// Logistic is an L2-regularized logistic-regression classifier trained by
// full-batch gradient descent with feature standardization.
type Logistic struct {
	// weights has dim+1 entries; the last is the intercept.
	weights []float64
	// mean/std standardize inputs; std entries are never zero.
	mean, std []float64
	dim       int
}

// TrainOptions configures the optimizer.
type TrainOptions struct {
	// Epochs of full-batch gradient descent (default 500).
	Epochs int
	// LearningRate (default 0.5; features are standardized so this is safe).
	LearningRate float64
	// L2 regularization strength (default 1e-4).
	L2 float64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs <= 0 {
		o.Epochs = 500
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.5
	}
	if o.L2 < 0 {
		o.L2 = 0
	} else if o.L2 == 0 {
		o.L2 = 1e-4
	}
	return o
}

// Train fits a logistic model on rows (n×d) and binary labels.
func Train(rows [][]float64, labels []int, opts TrainOptions) (*Logistic, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("classify: empty training set")
	}
	if len(labels) != n {
		return nil, fmt.Errorf("classify: %d labels for %d rows", len(labels), n)
	}
	d := len(rows[0])
	if d == 0 {
		return nil, errors.New("classify: zero-dimensional features")
	}
	for i, row := range rows {
		if len(row) != d {
			return nil, fmt.Errorf("classify: row %d has %d features, want %d", i, len(row), d)
		}
		if labels[i] != 0 && labels[i] != 1 {
			return nil, fmt.Errorf("classify: label %d at row %d is not binary", labels[i], i)
		}
	}
	opts = opts.withDefaults()

	m := &Logistic{dim: d, mean: make([]float64, d), std: make([]float64, d)}
	for k := 0; k < d; k++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += rows[i][k]
		}
		m.mean[k] = sum / float64(n)
		v := 0.0
		for i := 0; i < n; i++ {
			diff := rows[i][k] - m.mean[k]
			v += diff * diff
		}
		s := math.Sqrt(v / float64(n))
		if s <= 0 || math.IsNaN(s) {
			s = 1
		}
		m.std[k] = s
	}

	z := make([][]float64, n)
	for i := range z {
		z[i] = make([]float64, d)
		for k := 0; k < d; k++ {
			z[i][k] = (rows[i][k] - m.mean[k]) / m.std[k]
		}
	}
	w := make([]float64, d+1)
	grad := make([]float64, d+1)
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		for i := 0; i < n; i++ {
			pred := sigmoid(dot(w, z[i]))
			errTerm := pred - float64(labels[i])
			for k := 0; k < d; k++ {
				grad[k] += errTerm * z[i][k]
			}
			grad[d] += errTerm
		}
		for k := 0; k < d; k++ {
			grad[k] = grad[k]/float64(n) + opts.L2*w[k]
		}
		grad[d] /= float64(n)
		for j := range w {
			w[j] -= opts.LearningRate * grad[j]
		}
	}
	m.weights = w
	return m, nil
}

// dot applies standardized weights: w[0..d-1]·z + w[d].
func dot(w, z []float64) float64 {
	s := w[len(w)-1]
	for k, v := range z {
		s += w[k] * v
	}
	return s
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Prob returns P(ŷ = 1 | x).
func (m *Logistic) Prob(x []float64) float64 {
	z := make([]float64, m.dim)
	for k := 0; k < m.dim; k++ {
		z[k] = (x[k] - m.mean[k]) / m.std[k]
	}
	return sigmoid(dot(m.weights, z))
}

// Predict thresholds Prob at ½, the rule g(x) of the paper.
func (m *Logistic) Predict(x []float64) int {
	if m.Prob(x) >= 0.5 {
		return 1
	}
	return 0
}

// Accuracy scores the classifier on rows/labels.
func (m *Logistic) Accuracy(rows [][]float64, labels []int) (float64, error) {
	if len(rows) == 0 || len(rows) != len(labels) {
		return 0, errors.New("classify: bad evaluation set")
	}
	hit := 0
	for i, row := range rows {
		if m.Predict(row) == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(rows)), nil
}

// Rule is any binary decision function over feature vectors, the g(·) the
// fairness proxies are defined on.
type Rule func(x []float64) int

// GroupRates collects P̂(g = 1 | s, u) per labelled group.
type GroupRates struct {
	// Rate[u][s] is the positive-decision rate; NaN when the group is empty.
	Rate [2][2]float64
	// N[u][s] is the group size.
	N [2][2]int
}

// Rates evaluates a decision rule's positive rates over the labelled
// records of a table.
func Rates(t *dataset.Table, g Rule) (*GroupRates, error) {
	if t == nil || t.Len() == 0 {
		return nil, errors.New("classify: empty table")
	}
	var pos [2][2]int
	out := &GroupRates{}
	for _, rec := range t.Records() {
		if rec.S == dataset.SUnknown {
			continue
		}
		out.N[rec.U][rec.S]++
		if g(rec.X) == 1 {
			pos[rec.U][rec.S]++
		}
	}
	for u := 0; u < 2; u++ {
		for s := 0; s < 2; s++ {
			if out.N[u][s] == 0 {
				out.Rate[u][s] = math.NaN()
				continue
			}
			out.Rate[u][s] = float64(pos[u][s]) / float64(out.N[u][s])
		}
	}
	return out, nil
}

// DisparateImpact returns the u-conditional DI of Definition 2.3:
// DI(g, u) = P(g=1|s=0,u) / P(g=1|s=1,u). NaN when either group is empty;
// +Inf when the denominator rate is zero but the numerator is not.
func (r *GroupRates) DisparateImpact(u int) float64 {
	num, den := r.Rate[u][0], r.Rate[u][1]
	if math.IsNaN(num) || math.IsNaN(den) {
		return math.NaN()
	}
	if den == 0 {
		if num == 0 {
			return 1 // neither group receives positives: no disparity
		}
		return math.Inf(1)
	}
	return num / den
}

// StatisticalParityDiff returns P(g=1|s=0,u) − P(g=1|s=1,u).
func (r *GroupRates) StatisticalParityDiff(u int) float64 {
	return r.Rate[u][0] - r.Rate[u][1]
}

// FairnessThreshold is the four-fifths rule threshold the EEOC guidance
// (and the paper, Section II-B) treats as the fair/unfair boundary.
const FairnessThreshold = 0.8

// IsFair applies the four-fifths rule symmetrically: min(DI, 1/DI) ≥ 0.8.
func (r *GroupRates) IsFair(u int) bool {
	di := r.DisparateImpact(u)
	if math.IsNaN(di) || math.IsInf(di, 0) || di == 0 {
		return false
	}
	if di > 1 {
		di = 1 / di
	}
	return di >= FairnessThreshold
}

// EqualOpportunityDiff returns TPR(s=0,u) − TPR(s=1,u) for a rule given
// ground-truth outcomes y (aligned with the table's records). Records with
// unknown S or y != 1 are skipped.
func EqualOpportunityDiff(t *dataset.Table, y []int, g Rule, u int) (float64, error) {
	if t == nil || len(y) != t.Len() {
		return 0, errors.New("classify: outcomes misaligned with table")
	}
	var pos, tp [2]int
	for i, rec := range t.Records() {
		if rec.S == dataset.SUnknown || rec.U != u || y[i] != 1 {
			continue
		}
		pos[rec.S]++
		if g(rec.X) == 1 {
			tp[rec.S]++
		}
	}
	if pos[0] == 0 || pos[1] == 0 {
		return math.NaN(), nil
	}
	return float64(tp[0])/float64(pos[0]) - float64(tp[1])/float64(pos[1]), nil
}
