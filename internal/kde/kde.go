// Package kde implements one-dimensional kernel density estimation.
//
// Algorithm 1 of the paper (Eq. 11–12) interpolates each (u,s)-conditional
// research marginal onto a uniform support Q via Gaussian-kernel KDE with
// Silverman's bandwidth; those interpolated pmfs are the inputs of the OT
// plan design. The E fairness metric (Def. 2.4) likewise compares KDE
// estimates of the s|u-conditional densities on a shared grid.
//
// The package hand-rolls everything on the standard library: kernels,
// bandwidth selectors (Silverman, Scott, and a least-squares cross-validation
// search), point and grid evaluation, and grid pmf extraction.
package kde

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"otfair/internal/stat"
	"otfair/internal/vec"
)

// Kernel identifies a smoothing kernel shape.
type Kernel int

const (
	// Gaussian is the paper's kernel (Eq. 12).
	Gaussian Kernel = iota
	// Epanechnikov is the asymptotically MSE-optimal compact kernel.
	Epanechnikov
	// Triangular is the tent kernel.
	Triangular
	// Uniform is the boxcar kernel.
	Uniform
	// Biweight is the quartic kernel.
	Biweight
)

// String names the kernel for diagnostics and CLI flags.
func (k Kernel) String() string {
	switch k {
	case Gaussian:
		return "gaussian"
	case Epanechnikov:
		return "epanechnikov"
	case Triangular:
		return "triangular"
	case Uniform:
		return "uniform"
	case Biweight:
		return "biweight"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// ParseKernel resolves a CLI/JSON kernel name.
func ParseKernel(name string) (Kernel, error) {
	switch name {
	case "gaussian", "":
		return Gaussian, nil
	case "epanechnikov":
		return Epanechnikov, nil
	case "triangular":
		return Triangular, nil
	case "uniform", "box":
		return Uniform, nil
	case "biweight", "quartic":
		return Biweight, nil
	default:
		return 0, fmt.Errorf("kde: unknown kernel %q", name)
	}
}

// invSqrt2Pi = 1/√(2π), the Gaussian kernel normalizer.
const invSqrt2Pi = 0.3989422804014327

// Eval evaluates the normalized kernel density at standardized distance u
// (i.e. (x−xi)/h). The caller divides by h to obtain the density.
func (k Kernel) Eval(u float64) float64 {
	switch k {
	case Gaussian:
		return invSqrt2Pi * math.Exp(-0.5*u*u)
	case Epanechnikov:
		if u < -1 || u > 1 {
			return 0
		}
		return 0.75 * (1 - u*u)
	case Triangular:
		a := math.Abs(u)
		if a > 1 {
			return 0
		}
		return 1 - a
	case Uniform:
		if u < -1 || u > 1 {
			return 0
		}
		return 0.5
	case Biweight:
		if u < -1 || u > 1 {
			return 0
		}
		q := 1 - u*u
		return 15.0 / 16.0 * q * q
	default:
		panic("kde: unknown kernel")
	}
}

// CutoffRadius reports the standardized distance beyond which the kernel is
// (numerically) zero; grid evaluation skips contributions outside it. The
// Gaussian kernel is truncated at 8.5σ where its value is ~1e-16 relative.
func (k Kernel) CutoffRadius() float64 {
	if k == Gaussian {
		return 8.5
	}
	return 1
}

// Bandwidth identifies a data-driven bandwidth rule.
type Bandwidth int

const (
	// Silverman is the paper's rule of thumb:
	// h = 0.9 · min(σ̂, IQR/1.34) · n^(−1/5).
	Silverman Bandwidth = iota
	// Scott is h = 1.06 · σ̂ · n^(−1/5).
	Scott
	// LSCV selects h by least-squares cross-validation over a log grid.
	LSCV
)

// String names the bandwidth rule.
func (b Bandwidth) String() string {
	switch b {
	case Silverman:
		return "silverman"
	case Scott:
		return "scott"
	case LSCV:
		return "lscv"
	default:
		return fmt.Sprintf("bandwidth(%d)", int(b))
	}
}

// ParseBandwidth resolves a CLI/JSON bandwidth rule name.
func ParseBandwidth(name string) (Bandwidth, error) {
	switch name {
	case "silverman", "":
		return Silverman, nil
	case "scott":
		return Scott, nil
	case "lscv", "cv":
		return LSCV, nil
	default:
		return 0, fmt.Errorf("kde: unknown bandwidth rule %q", name)
	}
}

// SilvermanBandwidth computes Silverman's rule-of-thumb bandwidth.
// For degenerate samples (zero spread) it falls back to a small positive
// width so the KDE remains a valid density concentrated at the atom.
func SilvermanBandwidth(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return 1
	}
	sigma := stat.StdDev(xs)
	iqr := stat.IQR(xs) / 1.34
	spread := sigma
	if iqr > 0 && iqr < spread {
		spread = iqr
	}
	if spread <= 0 || math.IsNaN(spread) {
		// All points identical (or IQR-degenerate with zero σ): any narrow
		// positive width represents the atom; scale-free fallback.
		m := math.Abs(stat.Mean(xs))
		if m == 0 {
			m = 1
		}
		spread = 1e-3 * m
	}
	return 0.9 * spread * math.Pow(float64(n), -0.2)
}

// ScottBandwidth computes Scott's normal-reference bandwidth.
func ScottBandwidth(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return 1
	}
	sigma := stat.StdDev(xs)
	if sigma <= 0 || math.IsNaN(sigma) {
		return SilvermanBandwidth(xs)
	}
	return 1.06 * sigma * math.Pow(float64(n), -0.2)
}

// NoiseSource is the randomness a kernel sampler needs; *rng.RNG satisfies
// it. Declared locally so kde stays dependency-free.
type NoiseSource interface {
	Float64() float64
	Norm() float64
}

// Sample draws from the kernel viewed as a density (standardized: the
// caller multiplies by the bandwidth). This powers kernel dithering in the
// repair path: perturbing a data point by h·Sample makes an atomic sample
// distributionally consistent with its KDE-smoothed pmf.
func Sample(k Kernel, r NoiseSource) float64 {
	switch k {
	case Gaussian:
		return r.Norm()
	case Uniform:
		return 2*r.Float64() - 1
	case Triangular:
		// Difference of two uniforms is triangular on [-1, 1].
		return r.Float64() - r.Float64()
	case Epanechnikov, Biweight:
		// Rejection against the boxcar majorizer; acceptance ≥ 5/8.
		peak := k.Eval(0)
		for {
			u := 2*r.Float64() - 1
			if r.Float64()*peak <= k.Eval(u) {
				return u
			}
		}
	default:
		panic("kde: unknown kernel")
	}
}

// Estimator is a fitted 1-D kernel density estimate. The sample is stored
// sorted ascending — the density is a symmetric sum over points, so order
// is irrelevant to the estimate, and sortedness lets grid evaluation skip
// every sample whose cutoff window has moved past the grid.
type Estimator struct {
	xs     []float64 // ascending
	kernel Kernel
	h      float64
}

// New fits a KDE to the sample with the given kernel and bandwidth rule.
func New(sample []float64, kernel Kernel, rule Bandwidth) (*Estimator, error) {
	if len(sample) == 0 {
		return nil, errors.New("kde: empty sample")
	}
	var h float64
	switch rule {
	case Silverman:
		h = SilvermanBandwidth(sample)
	case Scott:
		h = ScottBandwidth(sample)
	case LSCV:
		h = lscvBandwidth(sample, kernel)
	default:
		return nil, fmt.Errorf("kde: unknown bandwidth rule %v", rule)
	}
	return NewFixed(sample, kernel, h)
}

// NewFixed fits a KDE with an explicit bandwidth h > 0.
func NewFixed(sample []float64, kernel Kernel, h float64) (*Estimator, error) {
	if len(sample) == 0 {
		return nil, errors.New("kde: empty sample")
	}
	if !(h > 0) || math.IsInf(h, 0) {
		return nil, fmt.Errorf("kde: bandwidth must be positive and finite, got %v", h)
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	return &Estimator{xs: xs, kernel: kernel, h: h}, nil
}

// MustNew is New that panics on error, for tests and examples with
// statically valid inputs.
func MustNew(sample []float64, kernel Kernel, rule Bandwidth) *Estimator {
	e, err := New(sample, kernel, rule)
	if err != nil {
		panic(err)
	}
	return e
}

// Bandwidth reports the fitted bandwidth.
func (e *Estimator) Bandwidth() float64 { return e.h }

// Kernel reports the kernel in use.
func (e *Estimator) Kernel() Kernel { return e.kernel }

// N reports the sample size.
func (e *Estimator) N() int { return len(e.xs) }

// PDF evaluates the density estimate at x:
// f̂(x) = (1/nh) Σ_i K((x − x_i)/h).
func (e *Estimator) PDF(x float64) float64 {
	s := 0.0
	for _, xi := range e.xs {
		s += e.kernel.Eval((x - xi) / e.h)
	}
	return s / (float64(len(e.xs)) * e.h)
}

// EvalGrid evaluates the density on an ascending grid. It exploits the
// kernel cutoff: each sample point touches only the grid cells within
// CutoffRadius bandwidths, so the cost is O(n · r/Δ) instead of O(n·m).
// The grid must be ascending and uniformly spaced for the windowing to be
// exact; Grid pmf construction in this repository always satisfies that.
//
// The sample being sorted buys two accelerations on top of the windowing:
// samples whose window lies left of the grid are skipped, and the loop
// exits outright at the first sample whose window lies right of it. For
// the Gaussian kernel the per-window evaluation goes through the fused
// vec.GaussianAccum recurrence instead of one math.Exp per cell — the
// dominant cost of the whole metric pipeline before this path existed.
func (e *Estimator) EvalGrid(grid []float64) []float64 {
	m := len(grid)
	out := make([]float64, m)
	if m == 0 {
		return out
	}
	if m == 1 {
		out[0] = e.PDF(grid[0])
		return out
	}
	lo := grid[0]
	step := (grid[m-1] - grid[0]) / float64(m-1)
	if step <= 0 {
		// Degenerate grid: evaluate directly.
		for j, g := range grid {
			out[j] = e.PDF(g)
		}
		return out
	}
	radius := e.kernel.CutoffRadius() * e.h
	inv := 1 / (float64(len(e.xs)) * e.h)
	gaussian := e.kernel == Gaussian
	invH := 1 / e.h
	w := invSqrt2Pi * inv
	hiGrid := grid[m-1]
	for _, xi := range e.xs {
		if xi+radius < lo {
			continue // window entirely left of the grid
		}
		if xi-radius > hiGrid {
			break // sorted: every later sample is further right
		}
		jLo := int(math.Ceil((xi - radius - lo) / step))
		jHi := int(math.Floor((xi + radius - lo) / step))
		if jLo < 0 {
			jLo = 0
		}
		if jHi > m-1 {
			jHi = m - 1
		}
		if jHi < jLo {
			continue
		}
		if gaussian {
			u0 := (lo + float64(jLo)*step - xi) * invH
			vec.GaussianAccum(out[jLo:jHi+1], u0, step*invH, w)
			continue
		}
		for j := jLo; j <= jHi; j++ {
			out[j] += e.kernel.Eval((grid[j]-xi)/e.h) * inv
		}
	}
	return out
}

// GridPMF evaluates the density on the grid and normalizes it into a pmf —
// exactly the interpolated marginal p_{s,q} of Eq. (11). When the grid
// carries no mass (all samples far outside it), an error is returned: a
// support that misses its own research data indicates a design bug.
func (e *Estimator) GridPMF(grid []float64) ([]float64, error) {
	dens := e.EvalGrid(grid)
	pmf, err := stat.Normalize(dens)
	if err != nil {
		return nil, fmt.Errorf("kde: grid carries no density mass: %w", err)
	}
	return pmf, nil
}

// lscvBandwidth selects h minimizing the least-squares cross-validation
// criterion LSCV(h) = ∫f̂² − (2/n)Σ_i f̂_{−i}(x_i) over a 32-point log grid
// spanning [h_silverman/8, h_silverman*8]. The integral term is evaluated
// exactly for the Gaussian kernel and by grid quadrature otherwise.
func lscvBandwidth(xs []float64, kernel Kernel) float64 {
	n := len(xs)
	if n < 3 {
		return SilvermanBandwidth(xs)
	}
	h0 := SilvermanBandwidth(xs)
	if !(h0 > 0) {
		return 1
	}
	// Sort once: lscvScore builds Estimators around the slice directly and
	// EvalGrid requires ascending samples for its early-exit windowing.
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	best, bestScore := h0, math.Inf(1)
	const gridPoints = 32
	for i := 0; i < gridPoints; i++ {
		// log grid from h0/8 to h0*8
		f := float64(i) / float64(gridPoints-1)
		h := h0 / 8 * math.Pow(64, f)
		score := lscvScore(sorted, kernel, h)
		if score < bestScore {
			bestScore, best = score, h
		}
	}
	return best
}

// lscvScore evaluates the cross-validation criterion for one bandwidth.
// xs must be sorted ascending: both quadratic terms are symmetric in (i,j),
// so each is computed over i<j pairs only, and the inner loop stops at the
// kernel cutoff — O(n·band) instead of O(n²) for concentrated samples.
func lscvScore(xs []float64, kernel Kernel, h float64) float64 {
	n := float64(len(xs))
	// ∫ f̂² term.
	var integral float64
	if kernel == Gaussian {
		// Exact: ∫ f̂² = (1/n²) Σ_ij φ_{√2 h}(x_i − x_j).
		c := invSqrt2Pi / (math.Sqrt2 * h)
		reach := Gaussian.CutoffRadius() * math.Sqrt2 * h
		off := 0.0
		for i := range xs {
			for j := i + 1; j < len(xs); j++ {
				if xs[j]-xs[i] > reach {
					break
				}
				d := (xs[i] - xs[j]) / (math.Sqrt2 * h)
				off += c * math.Exp(-0.5*d*d)
			}
		}
		integral = (n*c + 2*off) / (n * n)
	} else {
		lo, hi, _ := stat.MinMax(xs)
		pad := kernel.CutoffRadius() * h
		grid := stat.Linspace(lo-pad, hi+pad, 512)
		est := &Estimator{xs: xs, kernel: kernel, h: h}
		dens := est.EvalGrid(grid)
		dx := grid[1] - grid[0]
		for _, d := range dens {
			integral += d * d * dx
		}
	}
	// Leave-one-out term: Σ_{i≠j} K((x_i−x_j)/h) over symmetric pairs.
	reach := kernel.CutoffRadius() * h
	var pairs float64
	for i := range xs {
		for j := i + 1; j < len(xs); j++ {
			if xs[j]-xs[i] > reach {
				break
			}
			pairs += kernel.Eval((xs[i] - xs[j]) / h)
		}
	}
	loo := 2 * pairs / ((n - 1) * h)
	return integral - 2*loo/n
}
