package kde

import (
	"math"
	"math/rand"
	"testing"
)

// referenceEvalGrid is the pre-vec seed implementation of EvalGrid (direct
// kernel evaluation per grid cell, samples in arbitrary order), kept as the
// numerical oracle for the fused fast path.
func referenceEvalGrid(xs []float64, kernel Kernel, h float64, grid []float64) []float64 {
	m := len(grid)
	out := make([]float64, m)
	if m == 0 {
		return out
	}
	lo := grid[0]
	step := (grid[m-1] - grid[0]) / float64(m-1)
	radius := kernel.CutoffRadius() * h
	inv := 1 / (float64(len(xs)) * h)
	for _, xi := range xs {
		jLo := int(math.Ceil((xi - radius - lo) / step))
		jHi := int(math.Floor((xi + radius - lo) / step))
		if jLo < 0 {
			jLo = 0
		}
		if jHi > m-1 {
			jHi = m - 1
		}
		for j := jLo; j <= jHi; j++ {
			out[j] += kernel.Eval((grid[j]-xi)/h) * inv
		}
	}
	return out
}

// TestEvalGridDifferential pins the vectorized EvalGrid against the seed
// implementation within 1e-9 on randomized samples, bandwidths and grids,
// for every kernel shape.
func TestEvalGridDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	kernels := []Kernel{Gaussian, Epanechnikov, Triangular, Uniform, Biweight}
	for trial := 0; trial < 60; trial++ {
		kernel := kernels[trial%len(kernels)]
		n := 2 + r.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			// Mixture with outliers so windows clip both grid edges.
			switch r.Intn(3) {
			case 0:
				xs[i] = r.NormFloat64()
			case 1:
				xs[i] = 3 + 0.1*r.NormFloat64()
			default:
				xs[i] = -5 + 4*r.Float64()
			}
		}
		h := math.Exp(r.Float64()*4 - 3)
		gridN := 2 + r.Intn(1000)
		lo := -6 + 2*r.Float64()
		hi := 2 + 3*r.Float64()
		grid := make([]float64, gridN)
		step := (hi - lo) / float64(gridN-1)
		for j := range grid {
			grid[j] = lo + float64(j)*step
		}
		grid[gridN-1] = hi

		est, err := NewFixed(xs, kernel, h)
		if err != nil {
			t.Fatal(err)
		}
		got := est.EvalGrid(grid)
		want := referenceEvalGrid(xs, kernel, h, grid)
		scale := 0.0
		for _, v := range want {
			if v > scale {
				scale = v
			}
		}
		for j := range got {
			if math.Abs(got[j]-want[j]) > 1e-9*(1+scale) {
				t.Fatalf("trial %d (%v): grid[%d] got %v want %v", trial, kernel, j, got[j], want[j])
			}
		}
	}
}

// referenceMultiGridPMF is the seed mixed-radix implementation of the
// product-kernel grid evaluation (unnormalized density part).
func referenceMultiGridPMF(rows [][]float64, kernel Kernel, h []float64, grids [][]float64) []float64 {
	d := len(h)
	total := 1
	for _, g := range grids {
		total *= len(g)
	}
	n := len(rows)
	kmat := make([][][]float64, d)
	for k := 0; k < d; k++ {
		kmat[k] = make([][]float64, n)
		for i, row := range rows {
			vals := make([]float64, len(grids[k]))
			for j, g := range grids[k] {
				vals[j] = kernel.Eval((g-row[k])/h[k]) / h[k]
			}
			kmat[k][i] = vals
		}
	}
	dens := make([]float64, total)
	idx := make([]int, d)
	for flat := 0; flat < total; flat++ {
		s := 0.0
		for i := 0; i < n; i++ {
			prod := 1.0
			for k := 0; k < d; k++ {
				prod *= kmat[k][i][idx[k]]
				if prod == 0 {
					break
				}
			}
			s += prod
		}
		dens[flat] = s
		for k := d - 1; k >= 0; k-- {
			idx[k]++
			if idx[k] < len(grids[k]) {
				break
			}
			idx[k] = 0
		}
	}
	total2 := 0.0
	for _, v := range dens {
		total2 += v
	}
	for i := range dens {
		dens[i] /= total2
	}
	return dens
}

// TestMultiGridPMFDifferential pins the restructured product-kernel grid
// evaluation against the seed mixed-radix walk within 1e-9.
func TestMultiGridPMFDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	kernels := []Kernel{Gaussian, Epanechnikov, Uniform}
	for trial := 0; trial < 30; trial++ {
		kernel := kernels[trial%len(kernels)]
		d := 1 + r.Intn(3)
		n := 3 + r.Intn(120)
		rows := make([][]float64, n)
		for i := range rows {
			row := make([]float64, d)
			for k := range row {
				row[k] = r.NormFloat64() * (1 + float64(k))
			}
			rows[i] = row
		}
		est, err := NewMulti(rows, kernel, Silverman)
		if err != nil {
			t.Fatal(err)
		}
		grids := make([][]float64, d)
		for k := range grids {
			mk := 2 + r.Intn(12)
			g := make([]float64, mk)
			lo, hi := -4.0-float64(k), 4.0+float64(k)
			for j := range g {
				g[j] = lo + (hi-lo)*float64(j)/float64(mk-1)
			}
			grids[k] = g
		}
		got, err := est.GridPMF(grids)
		if err != nil {
			// Compact kernels on coarse random grids can miss every sample
			// window; the seed path errors identically ("no density mass"),
			// so this trial is vacuous agreement.
			continue
		}
		want := referenceMultiGridPMF(rows, kernel, est.h, grids)
		for j := range got {
			if math.Abs(got[j]-want[j]) > 1e-9 {
				t.Fatalf("trial %d (%v, d=%d): state %d got %v want %v", trial, kernel, d, j, got[j], want[j])
			}
		}
	}
}

// BenchmarkEvalGridGaussian measures the fused Gaussian grid evaluation at
// the fairness-metric setting (n=2500 samples, 4096-cell grid).
func BenchmarkEvalGridGaussian(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	xs := make([]float64, 2500)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	est, err := New(xs, Gaussian, Silverman)
	if err != nil {
		b.Fatal(err)
	}
	grid := make([]float64, 4096)
	for j := range grid {
		grid[j] = -4 + 8*float64(j)/4095
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.EvalGrid(grid)
	}
}
