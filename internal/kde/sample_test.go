package kde

import (
	"math"
	"testing"

	"otfair/internal/rng"
)

// kernelVariance returns the analytic variance of each standardized kernel.
func kernelVariance(k Kernel) float64 {
	switch k {
	case Gaussian:
		return 1
	case Uniform:
		return 1.0 / 3
	case Triangular:
		return 1.0 / 6
	case Epanechnikov:
		return 1.0 / 5
	case Biweight:
		return 1.0 / 7
	default:
		panic("unknown")
	}
}

func TestSampleMomentsMatchKernels(t *testing.T) {
	r := rng.New(71)
	const n = 200000
	for _, k := range []Kernel{Gaussian, Uniform, Triangular, Epanechnikov, Biweight} {
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := Sample(k, r)
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean) > 0.01 {
			t.Errorf("kernel %v sample mean = %v", k, mean)
		}
		want := kernelVariance(k)
		if math.Abs(variance-want) > 0.02 {
			t.Errorf("kernel %v sample variance = %v, want %v", k, variance, want)
		}
	}
}

func TestSampleCompactKernelsBounded(t *testing.T) {
	r := rng.New(72)
	for _, k := range []Kernel{Uniform, Triangular, Epanechnikov, Biweight} {
		for i := 0; i < 5000; i++ {
			v := Sample(k, r)
			if v < -1 || v > 1 {
				t.Fatalf("kernel %v sample %v outside [-1,1]", k, v)
			}
		}
	}
}

func TestSampleDistributionShape(t *testing.T) {
	// Histogram of Epanechnikov samples tracks the density 0.75(1−u²).
	r := rng.New(73)
	const n = 400000
	const bins = 20
	counts := make([]float64, bins)
	for i := 0; i < n; i++ {
		v := Sample(Epanechnikov, r)
		b := int((v + 1) / 2 * bins)
		if b == bins {
			b--
		}
		counts[b]++
	}
	for b := 0; b < bins; b++ {
		center := -1 + (float64(b)+0.5)*2/bins
		want := 0.75 * (1 - center*center) * (2.0 / bins)
		got := counts[b] / n
		if math.Abs(got-want) > 0.005 {
			t.Errorf("bin %d: freq %v, want %v", b, got, want)
		}
	}
}
