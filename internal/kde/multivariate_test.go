package kde

import (
	"math"
	"testing"

	"otfair/internal/rng"
	"otfair/internal/stat"
)

func correlatedSample(r *rng.RNG, n int, rho float64) [][]float64 {
	rows := make([][]float64, n)
	c := math.Sqrt(1 - rho*rho)
	for i := range rows {
		z1 := r.Norm()
		z2 := rho*z1 + c*r.Norm()
		rows[i] = []float64{z1, z2}
	}
	return rows
}

func TestNewMultiValidation(t *testing.T) {
	if _, err := NewMulti(nil, Gaussian, Silverman); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := NewMulti([][]float64{{}}, Gaussian, Silverman); err == nil {
		t.Error("zero-dimensional sample accepted")
	}
	if _, err := NewMulti([][]float64{{1, 2}, {1}}, Gaussian, Silverman); err == nil {
		t.Error("ragged sample accepted")
	}
	if _, err := NewMulti([][]float64{{1, math.NaN()}}, Gaussian, Silverman); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := NewMulti([][]float64{{1, math.Inf(1)}}, Gaussian, Silverman); err == nil {
		t.Error("Inf accepted")
	}
}

func TestMultiBandwidthRate(t *testing.T) {
	// The multivariate rule rescales the 1-D n^{-1/5} rule to n^{-1/(d+4)};
	// for d = 2 the ratio must be n^{1/5 - 1/6} = n^{1/30}... against the
	// per-column 1-D Silverman value.
	r := rng.New(1)
	rows := correlatedSample(r, 1000, 0)
	e, err := NewMulti(rows, Gaussian, Silverman)
	if err != nil {
		t.Fatal(err)
	}
	h1 := SilvermanBandwidth(stat.Column(rows, 0))
	wantRatio := math.Pow(1000, -1.0/6) / math.Pow(1000, -0.2)
	if got := e.Bandwidths()[0] / h1; math.Abs(got-wantRatio) > 1e-9 {
		t.Errorf("bandwidth rate ratio = %v, want %v", got, wantRatio)
	}
	if e.Dim() != 2 || e.N() != 1000 {
		t.Errorf("Dim/N = %d/%d", e.Dim(), e.N())
	}
}

func TestMultiPDFIntegratesToOne(t *testing.T) {
	r := rng.New(2)
	rows := correlatedSample(r, 400, 0.5)
	e, err := NewMulti(rows, Gaussian, Silverman)
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoid-free Riemann sum over a wide box.
	const lo, hi = -6.0, 6.0
	const m = 120
	step := (hi - lo) / m
	sum := 0.0
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			x := []float64{lo + (float64(i)+0.5)*step, lo + (float64(j)+0.5)*step}
			sum += e.PDF(x) * step * step
		}
	}
	if math.Abs(sum-1) > 0.02 {
		t.Errorf("∫f̂ = %v, want ≈ 1", sum)
	}
}

func TestMultiPDFMatchesProductOfUnivariatesForIndependentKernels(t *testing.T) {
	// With one sample point the product-kernel density factorizes exactly:
	// f̂(x) = Π_k K((x_k − X_k)/h_k)/h_k.
	rows := [][]float64{{1, -2}}
	e, err := NewMulti(rows, Gaussian, Silverman)
	if err != nil {
		t.Fatal(err)
	}
	h := e.Bandwidths()
	x := []float64{1.3, -1.5}
	want := Gaussian.Eval((x[0]-1)/h[0]) / h[0] * Gaussian.Eval((x[1]+2)/h[1]) / h[1]
	if got := e.PDF(x); math.Abs(got-want) > 1e-12 {
		t.Errorf("PDF = %v, want %v", got, want)
	}
}

func TestMultiPDFWrongDimensionIsNaN(t *testing.T) {
	e, err := NewMulti([][]float64{{0, 0}}, Gaussian, Silverman)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(e.PDF([]float64{0})) {
		t.Error("wrong-dimension PDF should be NaN")
	}
}

func TestMultiGridPMFMatchesDirectEvaluation(t *testing.T) {
	// The separable accumulation must agree with direct PDF calls at every
	// product-grid node (up to normalization).
	r := rng.New(3)
	rows := correlatedSample(r, 60, 0.7)
	e, err := NewMulti(rows, Gaussian, Silverman)
	if err != nil {
		t.Fatal(err)
	}
	gx := stat.Linspace(-3, 3, 7)
	gy := stat.Linspace(-2, 2, 5)
	pmf, err := e.GridPMF([][]float64{gx, gy})
	if err != nil {
		t.Fatal(err)
	}
	if len(pmf) != 35 {
		t.Fatalf("pmf has %d states, want 35", len(pmf))
	}
	direct := make([]float64, 0, 35)
	total := 0.0
	for _, x := range gx {
		for _, y := range gy {
			v := e.PDF([]float64{x, y})
			direct = append(direct, v)
			total += v
		}
	}
	sum := 0.0
	for flat, p := range pmf {
		if p < 0 {
			t.Fatalf("negative pmf mass at %d", flat)
		}
		sum += p
		if want := direct[flat] / total; math.Abs(p-want) > 1e-9 {
			t.Fatalf("state %d: pmf %v, direct %v", flat, p, want)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pmf sums to %v", sum)
	}
}

func TestMultiGridPMFErrors(t *testing.T) {
	e, err := NewMulti([][]float64{{0, 0}, {1, 1}}, Gaussian, Silverman)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.GridPMF([][]float64{{0, 1}}); err == nil {
		t.Error("grid count mismatch accepted")
	}
	if _, err := e.GridPMF([][]float64{{0, 1}, {}}); err == nil {
		t.Error("empty axis accepted")
	}
	// A grid far outside the data support carries no mass for the compact
	// Epanechnikov kernel.
	ec, err := NewMulti([][]float64{{0, 0}, {1, 1}}, Epanechnikov, Silverman)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ec.GridPMF([][]float64{{100, 101}, {100, 101}}); err == nil {
		t.Error("zero-mass grid accepted")
	}
}

func TestMultiCapturesCorrelation(t *testing.T) {
	// The joint KDE must put more mass on the correlated diagonal than the
	// anti-diagonal; a product of independent marginals would not.
	r := rng.New(4)
	rows := correlatedSample(r, 2000, 0.85)
	e, err := NewMulti(rows, Gaussian, Silverman)
	if err != nil {
		t.Fatal(err)
	}
	onDiag := e.PDF([]float64{1, 1}) * e.PDF([]float64{-1, -1})
	offDiag := e.PDF([]float64{1, -1}) * e.PDF([]float64{-1, 1})
	if onDiag <= 2*offDiag {
		t.Errorf("diagonal mass %v not dominant over %v", onDiag, offDiag)
	}
}

func TestMultiScottAndLSCVRules(t *testing.T) {
	r := rng.New(5)
	rows := correlatedSample(r, 200, 0.3)
	for _, rule := range []Bandwidth{Scott, LSCV} {
		e, err := NewMulti(rows, Gaussian, rule)
		if err != nil {
			t.Fatalf("%v: %v", rule, err)
		}
		for k, h := range e.Bandwidths() {
			if !(h > 0) {
				t.Errorf("%v: bandwidth[%d] = %v", rule, k, h)
			}
		}
	}
}
