package kde

import (
	"math"
	"testing"
	"testing/quick"

	"otfair/internal/rng"
	"otfair/internal/stat"
)

func TestKernelsIntegrateToOne(t *testing.T) {
	kernels := []Kernel{Gaussian, Epanechnikov, Triangular, Uniform, Biweight}
	for _, k := range kernels {
		// Trapezoid over [-9, 9].
		const n = 20001
		grid := stat.Linspace(-9, 9, n)
		dx := grid[1] - grid[0]
		sum := 0.0
		for i, u := range grid {
			w := 1.0
			if i == 0 || i == n-1 {
				w = 0.5
			}
			sum += w * k.Eval(u) * dx
		}
		// The boxcar kernel's jump discontinuities at ±1 limit trapezoid
		// accuracy to O(dx); 1e-3 covers it while staying a real check.
		if math.Abs(sum-1) > 1e-3 {
			t.Errorf("kernel %v integrates to %v", k, sum)
		}
	}
}

func TestKernelsSymmetricNonNegative(t *testing.T) {
	kernels := []Kernel{Gaussian, Epanechnikov, Triangular, Uniform, Biweight}
	err := quick.Check(func(uRaw float64) bool {
		u := math.Mod(uRaw, 5)
		if math.IsNaN(u) {
			return true
		}
		for _, k := range kernels {
			if k.Eval(u) < 0 {
				return false
			}
			if math.Abs(k.Eval(u)-k.Eval(-u)) > 1e-15 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestKernelNames(t *testing.T) {
	for _, name := range []string{"gaussian", "epanechnikov", "triangular", "uniform", "biweight"} {
		k, err := ParseKernel(name)
		if err != nil {
			t.Fatalf("ParseKernel(%q): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("round-trip %q -> %q", name, k.String())
		}
	}
	if _, err := ParseKernel("lorentzian"); err == nil {
		t.Error("unknown kernel accepted")
	}
	if k, err := ParseKernel(""); err != nil || k != Gaussian {
		t.Error("empty kernel should default to gaussian")
	}
}

func TestBandwidthNames(t *testing.T) {
	for _, name := range []string{"silverman", "scott", "lscv"} {
		b, err := ParseBandwidth(name)
		if err != nil {
			t.Fatalf("ParseBandwidth(%q): %v", name, err)
		}
		if b.String() != name {
			t.Errorf("round-trip %q -> %q", name, b.String())
		}
	}
	if _, err := ParseBandwidth("oracle"); err == nil {
		t.Error("unknown rule accepted")
	}
}

func TestSilvermanKnownValue(t *testing.T) {
	// For a standard normal sample, Silverman ≈ 0.9·min(σ, IQR/1.34)·n^(-1/5).
	r := rng.New(1)
	n := 1000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm()
	}
	h := SilvermanBandwidth(xs)
	// σ≈1, IQR/1.34≈1: expected ≈ 0.9·n^(-0.2) ≈ 0.226.
	want := 0.9 * math.Pow(float64(n), -0.2)
	if math.Abs(h-want) > 0.05 {
		t.Errorf("Silverman h = %v, want ≈ %v", h, want)
	}
}

func TestSilvermanDegenerate(t *testing.T) {
	h := SilvermanBandwidth([]float64{5, 5, 5, 5})
	if !(h > 0) {
		t.Errorf("degenerate Silverman h = %v", h)
	}
	if !math.IsNaN(SilvermanBandwidth(nil)) {
		t.Error("empty Silverman not NaN")
	}
	if h := SilvermanBandwidth([]float64{2}); h != 1 {
		t.Errorf("singleton Silverman h = %v", h)
	}
}

func TestScottBandwidth(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Normal(0, 2)
	}
	h := ScottBandwidth(xs)
	want := 1.06 * 2 * math.Pow(500, -0.2)
	if math.Abs(h-want) > 0.1 {
		t.Errorf("Scott h = %v, want ≈ %v", h, want)
	}
}

func TestPDFRecoversNormal(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.Normal(1, 1.5)
	}
	e := MustNew(xs, Gaussian, Silverman)
	// Compare at a few points against the true density.
	for _, x := range []float64{-1, 0, 1, 2, 3} {
		truth := math.Exp(-0.5*(x-1)*(x-1)/(1.5*1.5)) / (1.5 * math.Sqrt(2*math.Pi))
		got := e.PDF(x)
		if math.Abs(got-truth) > 0.02 {
			t.Errorf("PDF(%v) = %v, truth %v", x, got, truth)
		}
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	r := rng.New(4)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = r.Normal(-2, 0.7)
	}
	for _, k := range []Kernel{Gaussian, Epanechnikov, Biweight} {
		e := MustNew(xs, k, Silverman)
		grid := stat.Linspace(-8, 4, 4001)
		dx := grid[1] - grid[0]
		sum := 0.0
		for _, g := range grid {
			sum += e.PDF(g) * dx
		}
		if math.Abs(sum-1) > 0.01 {
			t.Errorf("kernel %v KDE integrates to %v", k, sum)
		}
	}
}

func TestEvalGridMatchesPDF(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = r.Normal(0, 1)
	}
	for _, k := range []Kernel{Gaussian, Epanechnikov, Triangular, Uniform, Biweight} {
		e := MustNew(xs, k, Silverman)
		grid := stat.Linspace(-4, 4, 257)
		fast := e.EvalGrid(grid)
		for j, g := range grid {
			want := e.PDF(g)
			if math.Abs(fast[j]-want) > 1e-9*(1+want) {
				t.Errorf("kernel %v EvalGrid[%d] = %v, PDF = %v", k, j, fast[j], want)
			}
		}
	}
}

func TestEvalGridDegenerateGrid(t *testing.T) {
	e := MustNew([]float64{1, 2, 3}, Gaussian, Silverman)
	out := e.EvalGrid([]float64{2})
	if len(out) != 1 || out[0] != e.PDF(2) {
		t.Errorf("single-point grid mismatch: %v vs %v", out, e.PDF(2))
	}
	if got := e.EvalGrid(nil); len(got) != 0 {
		t.Errorf("empty grid returned %v", got)
	}
}

func TestGridPMF(t *testing.T) {
	r := rng.New(6)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Normal(0, 1)
	}
	e := MustNew(xs, Gaussian, Silverman)
	grid := stat.Linspace(-4, 4, 50)
	pmf, err := e.GridPMF(grid)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stat.Sum(pmf)-1) > 1e-12 {
		t.Errorf("pmf sums to %v", stat.Sum(pmf))
	}
	for _, p := range pmf {
		if p < 0 {
			t.Fatal("negative pmf entry")
		}
	}
}

func TestGridPMFNoMass(t *testing.T) {
	// Compact kernel far from the grid -> zero mass -> error.
	e, err := NewFixed([]float64{100}, Epanechnikov, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.GridPMF(stat.Linspace(0, 1, 10)); err == nil {
		t.Error("expected no-mass error")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, Gaussian, Silverman); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := NewFixed([]float64{1}, Gaussian, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := NewFixed([]float64{1}, Gaussian, math.Inf(1)); err == nil {
		t.Error("infinite bandwidth accepted")
	}
	if _, err := NewFixed([]float64{1}, Gaussian, math.NaN()); err == nil {
		t.Error("NaN bandwidth accepted")
	}
}

func TestEstimatorAccessors(t *testing.T) {
	e := MustNew([]float64{1, 2, 3}, Epanechnikov, Scott)
	if e.N() != 3 || e.Kernel() != Epanechnikov || !(e.Bandwidth() > 0) {
		t.Errorf("accessors: n=%d kernel=%v h=%v", e.N(), e.Kernel(), e.Bandwidth())
	}
}

func TestLSCVReasonable(t *testing.T) {
	// LSCV on a normal sample should pick a bandwidth within a factor ~3 of
	// Silverman (both estimate the same AMISE-optimal order).
	r := rng.New(7)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = r.Norm()
	}
	e := MustNew(xs, Gaussian, LSCV)
	hs := SilvermanBandwidth(xs)
	ratio := e.Bandwidth() / hs
	if ratio < 1.0/4 || ratio > 4 {
		t.Errorf("LSCV h = %v vs Silverman %v (ratio %v)", e.Bandwidth(), hs, ratio)
	}
}

func TestLSCVSmallSampleFallsBack(t *testing.T) {
	e := MustNew([]float64{1, 2}, Gaussian, LSCV)
	if e.Bandwidth() != SilvermanBandwidth([]float64{1, 2}) {
		t.Error("small-sample LSCV should fall back to Silverman")
	}
}

func TestEstimatorCopiesSample(t *testing.T) {
	xs := []float64{1, 2, 3}
	e := MustNew(xs, Gaussian, Silverman)
	before := e.PDF(2)
	xs[0] = 1000
	if e.PDF(2) != before {
		t.Error("estimator aliases caller's sample")
	}
}

func BenchmarkEvalGrid(b *testing.B) {
	r := rng.New(8)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Norm()
	}
	e := MustNew(xs, Gaussian, Silverman)
	grid := stat.Linspace(-4, 4, 250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EvalGrid(grid)
	}
}
