package kde

import (
	"errors"
	"fmt"
	"math"

	"otfair/internal/stat"
	"otfair/internal/vec"
)

// MultiEstimator is a fitted d-dimensional product-kernel density estimate
// with a diagonal bandwidth matrix:
//
//	f̂(x) = (1/n) Σ_i Π_k K((x_k − X_{ik})/h_k)/h_k.
//
// It powers the joint (non-feature-stratified) repair variant, which keeps
// the intra-feature correlation structure the per-feature split of
// Algorithm 1 discards (the trade-off Section VI of the paper defers to
// future work). Per-dimension bandwidths follow the configured 1-D rule
// scaled by the multivariate Silverman exponent n^{−1/(d+4)}.
type MultiEstimator struct {
	rows   [][]float64
	kernel Kernel
	h      []float64
}

// NewMulti fits a product-kernel KDE to rows (n×d).
func NewMulti(rows [][]float64, kernel Kernel, rule Bandwidth) (*MultiEstimator, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("kde: empty sample")
	}
	d := len(rows[0])
	if d == 0 {
		return nil, errors.New("kde: zero-dimensional sample")
	}
	for i, row := range rows {
		if len(row) != d {
			return nil, fmt.Errorf("kde: row %d has %d features, want %d", i, len(row), d)
		}
		for k, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("kde: row %d feature %d is not finite", i, k)
			}
		}
	}
	e := &MultiEstimator{rows: rows, kernel: kernel, h: make([]float64, d)}
	// The d-dimensional normal-reference rate is n^{−1/(d+4)}; the 1-D rules
	// bake in n^{−1/5}, so rescale their output to the multivariate rate.
	rate := math.Pow(float64(n), -1/(float64(d)+4)) / math.Pow(float64(n), -0.2)
	for k := 0; k < d; k++ {
		col := stat.Column(rows, k)
		var h float64
		switch rule {
		case Scott:
			h = ScottBandwidth(col)
		case LSCV:
			h = lscvBandwidth(col, kernel)
		default:
			h = SilvermanBandwidth(col)
		}
		if !(h > 0) || math.IsNaN(h) {
			return nil, fmt.Errorf("kde: degenerate bandwidth for dimension %d", k)
		}
		e.h[k] = h * rate
	}
	return e, nil
}

// Bandwidths returns the per-dimension bandwidths.
func (e *MultiEstimator) Bandwidths() []float64 {
	return append([]float64(nil), e.h...)
}

// Dim returns the feature dimension d.
func (e *MultiEstimator) Dim() int { return len(e.h) }

// N returns the sample size.
func (e *MultiEstimator) N() int { return len(e.rows) }

// PDF evaluates the density estimate at the d-dimensional point x.
func (e *MultiEstimator) PDF(x []float64) float64 {
	if len(x) != len(e.h) {
		return math.NaN()
	}
	total := 0.0
	for _, row := range e.rows {
		prod := 1.0
		for k := range x {
			prod *= e.kernel.Eval((x[k]-row[k])/e.h[k]) / e.h[k]
		}
		total += prod
	}
	return total / float64(len(e.rows))
}

// GridPMF evaluates the density on the product of per-dimension grids and
// normalizes it into a pmf over the flattened product support. The flat
// index is row-major: state (i_1, …, i_d) maps to ((i_1·m_2 + i_2)·m_3 + …).
// Separability of the product kernel keeps the cost at
// O(n·Σ m_k + n·Π m_k) instead of O(n·d·Π m_k).
func (e *MultiEstimator) GridPMF(grids [][]float64) ([]float64, error) {
	d := len(e.h)
	if len(grids) != d {
		return nil, fmt.Errorf("kde: %d grids for a %d-dimensional estimate", len(grids), d)
	}
	total := 1
	for k, g := range grids {
		if len(g) == 0 {
			return nil, fmt.Errorf("kde: empty grid for dimension %d", k)
		}
		total *= len(g)
	}
	// Per-sample, per-dimension kernel evaluations, one contiguous block per
	// dimension: kmat[k][i*m_k + j] = K((g_kj − X_ik)/h_k)/h_k.
	n := len(e.rows)
	kmat := make([][]float64, d)
	for k := 0; k < d; k++ {
		mk := len(grids[k])
		block := make([]float64, n*mk)
		for i, row := range e.rows {
			vals := block[i*mk : (i+1)*mk]
			for j, g := range grids[k] {
				vals[j] = e.kernel.Eval((g-row[k])/e.h[k]) / e.h[k]
			}
		}
		kmat[k] = block
	}
	// Row-major strides of the flattened product support.
	stride := make([]int, d)
	stride[d-1] = 1
	for k := d - 2; k >= 0; k-- {
		stride[k] = stride[k+1] * len(grids[k+1])
	}
	// Each sample contributes a rank-one tensor Π_k v_k; accumulate it by
	// walking the leading dimensions with running prefix products and
	// dispatching the innermost dimension as a fused axpy. Zero prefix
	// products (compact kernels outside their support) prune whole slabs.
	dens := make([]float64, total)
	var accum func(k, off, i int, prod float64)
	accum = func(k, off, i int, prod float64) {
		mk := len(grids[k])
		vals := kmat[k][i*mk : (i+1)*mk]
		if k == d-1 {
			vec.Axpy(prod, vals, dens[off:off+mk])
			return
		}
		for j, v := range vals {
			if p := prod * v; p != 0 {
				accum(k+1, off+j*stride[k], i, p)
			}
		}
	}
	for i := 0; i < n; i++ {
		accum(0, 0, i, 1)
	}
	pmf, err := stat.Normalize(dens)
	if err != nil {
		return nil, fmt.Errorf("kde: product grid carries no density mass: %w", err)
	}
	return pmf, nil
}
