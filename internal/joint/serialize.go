package joint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"otfair/internal/kde"
	"otfair/internal/ot"
)

// Joint plans are deployment artifacts exactly like the per-feature plans
// of internal/core: designed once, then applied to torrents, possibly in a
// different process. The JSON layout mirrors core's, with the product
// support stored as per-dimension grids (points are reconstructed, not
// stored — they are pure redundancy).

// jointPlanVersion is bumped when the layout changes incompatibly.
const jointPlanVersion = 1

type planJSON struct {
	Version int         `json:"version"`
	Dim     int         `json:"dim"`
	Names   []string    `json:"names"`
	Opts    optionsJSON `json:"options"`
	Cells   [2]cellJSON `json:"cells"`
}

type optionsJSON struct {
	NQ        int     `json:"nq"`
	T         float64 `json:"t"`
	Kernel    string  `json:"kernel"`
	Bandwidth string  `json:"bandwidth"`
	Epsilon   float64 `json:"epsilon,omitempty"`
	MaxStates int     `json:"max_states"`
}

type cellJSON struct {
	Grids [][]float64   `json:"grids"`
	PMF   [2][]float64  `json:"pmf"`
	Bary  []float64     `json:"bary"`
	Plans [2][]ot.Entry `json:"plans"`
}

// WriteJSON serializes the joint plan.
func (p *Plan) WriteJSON(w io.Writer) error {
	out := planJSON{
		Version: jointPlanVersion,
		Dim:     p.Dim,
		Names:   p.Names,
		Opts: optionsJSON{
			NQ:        p.Opts.NQ,
			T:         p.Opts.T,
			Kernel:    p.Opts.Kernel.String(),
			Bandwidth: p.Opts.Bandwidth.String(),
			Epsilon:   p.Opts.Epsilon,
			MaxStates: p.Opts.MaxStates,
		},
	}
	for u := 0; u < 2; u++ {
		cell := p.Cells[u]
		cj := cellJSON{
			Grids: cell.Grids,
			PMF:   cell.PMF,
			Bary:  cell.Bary,
		}
		for s := 0; s < 2; s++ {
			cj.Plans[s] = cell.Plans[s].Entries()
		}
		out.Cells[u] = cj
	}
	return json.NewEncoder(w).Encode(out)
}

// ReadPlan deserializes a joint plan written by WriteJSON, re-validating
// every component so corrupted files fail loudly.
func ReadPlan(r io.Reader) (*Plan, error) {
	var in planJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("joint: decoding plan: %w", err)
	}
	if in.Version != jointPlanVersion {
		return nil, fmt.Errorf("joint: plan version %d unsupported (want %d)", in.Version, jointPlanVersion)
	}
	if in.Dim <= 0 {
		return nil, errors.New("joint: plan has non-positive dimension")
	}
	kernel, err := kde.ParseKernel(in.Opts.Kernel)
	if err != nil {
		return nil, err
	}
	bandwidth, err := kde.ParseBandwidth(in.Opts.Bandwidth)
	if err != nil {
		return nil, err
	}
	plan := &Plan{
		Dim:   in.Dim,
		Names: in.Names,
		Opts: Options{
			NQ:        in.Opts.NQ,
			T:         in.Opts.T,
			Kernel:    kernel,
			Bandwidth: bandwidth,
			Epsilon:   in.Opts.Epsilon,
			MaxStates: in.Opts.MaxStates,
		},
	}
	for u := 0; u < 2; u++ {
		cell, err := cellFromJSON(in.Cells[u], in.Dim)
		if err != nil {
			return nil, fmt.Errorf("joint: plan cell u=%d: %w", u, err)
		}
		plan.Cells[u] = cell
	}
	return plan, nil
}

func cellFromJSON(cj cellJSON, dim int) (*Cell, error) {
	if len(cj.Grids) != dim {
		return nil, fmt.Errorf("cell has %d grid axes, want %d", len(cj.Grids), dim)
	}
	states := 1
	for k, g := range cj.Grids {
		if len(g) == 0 {
			return nil, fmt.Errorf("axis %d is empty", k)
		}
		for i := 1; i < len(g); i++ {
			if g[i] <= g[i-1] {
				return nil, fmt.Errorf("axis %d not ascending at state %d", k, i)
			}
		}
		states *= len(g)
	}
	if len(cj.Bary) != states {
		return nil, fmt.Errorf("barycenter has %d states, support has %d", len(cj.Bary), states)
	}
	cell := &Cell{Grids: cj.Grids, Bary: cj.Bary, Points: productPoints(cj.Grids)}
	for s := 0; s < 2; s++ {
		if len(cj.PMF[s]) != states {
			return nil, fmt.Errorf("pmf[%d] has %d states, support has %d", s, len(cj.PMF[s]), states)
		}
		cell.PMF[s] = cj.PMF[s]
		plan, err := ot.NewPlan(states, states, cj.Plans[s])
		if err != nil {
			return nil, fmt.Errorf("plan[%d]: %w", s, err)
		}
		if plan.TotalMass() <= 0 {
			return nil, fmt.Errorf("plan[%d] carries no mass", s)
		}
		cell.Plans[s] = plan
	}
	return cell, nil
}
