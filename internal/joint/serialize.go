package joint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"otfair/internal/kde"
	"otfair/internal/ot"
)

// Joint plans are deployment artifacts exactly like the per-feature plans
// of internal/core: designed once, then applied to torrents, possibly in a
// different process. The JSON layout mirrors core's, with the product
// support stored as per-dimension grids (points are reconstructed, not
// stored — they are pure redundancy).
//
// Version 2 adds the scaling-form cells the separable design produces: a
// factored plan is its two scaling vectors plus the per-axis Gibbs factors
// (Σ_k n_k² entries), so an 8 000-state design serializes in O(n) where the
// dense entry list would be O(n²). Version-1 documents (dense entries only)
// are still read.

// jointPlanVersion is bumped when the layout changes incompatibly.
const jointPlanVersion = 2

type planJSON struct {
	Version int         `json:"version"`
	Dim     int         `json:"dim"`
	Names   []string    `json:"names"`
	Opts    optionsJSON `json:"options"`
	Cells   [2]cellJSON `json:"cells"`
}

type optionsJSON struct {
	NQ        int     `json:"nq"`
	T         float64 `json:"t"`
	Kernel    string  `json:"kernel"`
	Bandwidth string  `json:"bandwidth"`
	Epsilon   float64 `json:"epsilon,omitempty"`
	MaxStates int     `json:"max_states"`
	Dense     bool    `json:"dense,omitempty"`
}

type cellJSON struct {
	Grids [][]float64  `json:"grids"`
	PMF   [2][]float64 `json:"pmf"`
	Bary  []float64    `json:"bary"`
	// Plans holds dense entry lists (the Dense oracle path and all
	// version-1 documents).
	Plans [2][]ot.Entry `json:"plans,omitempty"`
	// Scaled holds the cell's scaling-form plans (the separable path,
	// version ≥ 2).
	Scaled *scaledCellJSON `json:"scaled,omitempty"`
}

// scaledCellJSON holds a cell's factored plans π_s = diag(u_s)·K·diag(v_s).
// Both s-plans of a cell share one Kronecker kernel, so the per-axis
// factors are stored once per cell and the rebuilt plans share one
// operator again after a round-trip.
type scaledCellJSON struct {
	Factors [][]float64  `json:"factors"`
	U       [2][]float64 `json:"u"`
	V       [2][]float64 `json:"v"`
}

// WriteJSON serializes the joint plan.
func (p *Plan) WriteJSON(w io.Writer) error {
	out := planJSON{
		Version: jointPlanVersion,
		Dim:     p.Dim,
		Names:   p.Names,
		Opts: optionsJSON{
			NQ:        p.Opts.NQ,
			T:         p.Opts.T,
			Kernel:    p.Opts.Kernel.String(),
			Bandwidth: p.Opts.Bandwidth.String(),
			Epsilon:   p.Opts.Epsilon,
			MaxStates: p.Opts.MaxStates,
			Dense:     p.Opts.Dense,
		},
	}
	for u := 0; u < 2; u++ {
		cell := p.Cells[u]
		cj := cellJSON{
			Grids: cell.Grids,
			PMF:   cell.PMF,
			Bary:  cell.Bary,
		}
		var sharedKernel ot.KernelOp
		for s := 0; s < 2; s++ {
			switch plan := cell.Plans[s].(type) {
			case *ot.Plan:
				cj.Plans[s] = plan.Entries()
			case *ot.FactoredPlan:
				sep, ok := plan.Kernel().(*ot.SeparableKernel)
				if !ok {
					return fmt.Errorf("joint: cell u=%d s=%d: factored plan over a non-separable kernel is not serializable", u, s)
				}
				if cj.Scaled == nil {
					cj.Scaled = &scaledCellJSON{Factors: sep.Factors()}
					sharedKernel = plan.Kernel()
				} else if plan.Kernel() != sharedKernel {
					// The layout stores the factors once per cell, which is
					// only faithful when the cell's plans share one kernel —
					// as every designed cell does.
					return fmt.Errorf("joint: cell u=%d: factored plans do not share one kernel", u)
				}
				uVec, vVec := plan.Scalings()
				cj.Scaled.U[s], cj.Scaled.V[s] = uVec, vVec
			default:
				return fmt.Errorf("joint: cell u=%d s=%d: unserializable plan type %T", u, s, plan)
			}
		}
		out.Cells[u] = cj
	}
	return json.NewEncoder(w).Encode(out)
}

// ReadPlan deserializes a joint plan written by WriteJSON, re-validating
// every component so corrupted files fail loudly. Version 1 (dense-only)
// and version 2 (dense or scaling-form) documents are both accepted.
func ReadPlan(r io.Reader) (*Plan, error) {
	var in planJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("joint: decoding plan: %w", err)
	}
	if in.Version < 1 || in.Version > jointPlanVersion {
		return nil, fmt.Errorf("joint: plan version %d unsupported (want 1..%d)", in.Version, jointPlanVersion)
	}
	if in.Dim <= 0 {
		return nil, errors.New("joint: plan has non-positive dimension")
	}
	kernel, err := kde.ParseKernel(in.Opts.Kernel)
	if err != nil {
		return nil, err
	}
	bandwidth, err := kde.ParseBandwidth(in.Opts.Bandwidth)
	if err != nil {
		return nil, err
	}
	plan := &Plan{
		Dim:   in.Dim,
		Names: in.Names,
		Opts: Options{
			NQ:        in.Opts.NQ,
			T:         in.Opts.T,
			Kernel:    kernel,
			Bandwidth: bandwidth,
			Epsilon:   in.Opts.Epsilon,
			MaxStates: in.Opts.MaxStates,
			Dense:     in.Opts.Dense,
		},
	}
	for u := 0; u < 2; u++ {
		cell, err := cellFromJSON(in.Cells[u], in.Dim)
		if err != nil {
			return nil, fmt.Errorf("joint: plan cell u=%d: %w", u, err)
		}
		plan.Cells[u] = cell
	}
	return plan, nil
}

func cellFromJSON(cj cellJSON, dim int) (*Cell, error) {
	if len(cj.Grids) != dim {
		return nil, fmt.Errorf("cell has %d grid axes, want %d", len(cj.Grids), dim)
	}
	states := 1
	for k, g := range cj.Grids {
		if len(g) == 0 {
			return nil, fmt.Errorf("axis %d is empty", k)
		}
		for i := 1; i < len(g); i++ {
			if g[i] <= g[i-1] {
				return nil, fmt.Errorf("axis %d not ascending at state %d", k, i)
			}
		}
		states *= len(g)
	}
	if len(cj.Bary) != states {
		return nil, fmt.Errorf("barycenter has %d states, support has %d", len(cj.Bary), states)
	}
	cell := &Cell{Grids: cj.Grids, Bary: cj.Bary, Points: productPoints(cj.Grids)}
	// Scaling-form cells rebuild the cell's shared kernel exactly once;
	// NewSeparableFactors validates squareness and entry sanity, the dims
	// check pins the factor product to the grid's state count.
	var op *ot.SeparableKernel
	if cj.Scaled != nil {
		var err error
		op, err = ot.NewSeparableFactors(cj.Scaled.Factors)
		if err != nil {
			return nil, err
		}
		if n, _ := op.Dims(); n != states {
			return nil, fmt.Errorf("factors multiply to %d states, support has %d", n, states)
		}
	}
	for s := 0; s < 2; s++ {
		if len(cj.PMF[s]) != states {
			return nil, fmt.Errorf("pmf[%d] has %d states, support has %d", s, len(cj.PMF[s]), states)
		}
		cell.PMF[s] = cj.PMF[s]
		plan, err := planFromJSON(cj, op, s, states)
		if err != nil {
			return nil, fmt.Errorf("plan[%d]: %w", s, err)
		}
		if plan.TotalMass() <= 0 {
			return nil, fmt.Errorf("plan[%d] carries no mass", s)
		}
		cell.Plans[s] = plan
	}
	return cell, nil
}

// planFromJSON rebuilds one plan slot, preferring the scaling form when
// present. Exactly one representation must be populated per slot; both
// scaling-form slots share the cell's one rebuilt kernel.
func planFromJSON(cj cellJSON, op *ot.SeparableKernel, s, states int) (ot.RowPlan, error) {
	if cj.Scaled != nil && len(cj.Scaled.U[s]) > 0 {
		if len(cj.Plans[s]) > 0 {
			return nil, errors.New("both dense and scaled representations present")
		}
		return ot.NewFactoredPlan(op, cj.Scaled.U[s], cj.Scaled.V[s])
	}
	return ot.NewPlan(states, states, cj.Plans[s])
}
