package joint

import (
	"testing"
	"testing/quick"
)

func TestProductPointsFlatIndexInverseProperty(t *testing.T) {
	// For random small grid shapes, flatIndex must be the exact inverse of
	// the row-major expansion order productPoints uses.
	f := func(dims []uint8) bool {
		if len(dims) == 0 || len(dims) > 4 {
			return true
		}
		grids := make([][]float64, len(dims))
		total := 1
		for k, d := range dims {
			n := int(d%5) + 1
			total *= n
			grids[k] = make([]float64, n)
			for i := range grids[k] {
				grids[k][i] = float64(k*100 + i)
			}
		}
		if total > 4096 {
			return true
		}
		points := productPoints(grids)
		if len(points) != total {
			return false
		}
		idx := make([]int, len(grids))
		for flat := 0; flat < total; flat++ {
			if flatIndex(grids, idx) != flat {
				return false
			}
			for k := range grids {
				if points[flat][k] != grids[k][idx[k]] {
					return false
				}
			}
			for k := len(grids) - 1; k >= 0; k-- {
				idx[k]++
				if idx[k] < len(grids[k]) {
					break
				}
				idx[k] = 0
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
