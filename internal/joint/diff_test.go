package joint

import (
	"bytes"
	"math"
	"testing"

	"otfair/internal/dataset"
	"otfair/internal/ot"
	"otfair/internal/rng"
)

// TestSeparableDesignMatchesDenseOracle pins the default Kronecker-factored
// design against the Dense oracle path on randomized research draws: same
// grids and pmfs by construction, barycenters within 1e-9, and the plans'
// row conditionals — the multinomials Algorithm 2 actually samples — in
// close agreement. The plan-level tolerance is looser than the ot-level
// differential (1e-9 there, with both solvers driven to the fixpoint)
// because each design-path solver stops at its own default tolerance.
func TestSeparableDesignMatchesDenseOracle(t *testing.T) {
	for _, seed := range []uint64{31, 32} {
		research, _ := paperTables(t, seed, 500, 0)
		sep, err := Design(research, Options{NQ: 9})
		if err != nil {
			t.Fatal(err)
		}
		den, err := Design(research, Options{NQ: 9, Dense: true})
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 2; u++ {
			cs, cd := sep.Cells[u], den.Cells[u]
			if cs.States() != cd.States() {
				t.Fatalf("seed %d u=%d: states %d vs %d", seed, u, cs.States(), cd.States())
			}
			n := cs.States()
			for s := 0; s < 2; s++ {
				for j := range cs.PMF[s] {
					if cs.PMF[s][j] != cd.PMF[s][j] {
						t.Fatalf("seed %d u=%d s=%d: pmfs diverge at %d", seed, u, s, j)
					}
				}
			}
			for j := range cs.Bary {
				if d := math.Abs(cs.Bary[j] - cd.Bary[j]); d > 1e-9 {
					t.Fatalf("seed %d u=%d: barycenter[%d] differs by %v", seed, u, j, d)
				}
			}
			if _, ok := cs.Plans[0].(*ot.FactoredPlan); !ok {
				t.Fatalf("seed %d u=%d: separable design produced %T", seed, u, cs.Plans[0])
			}
			if _, ok := cd.Plans[0].(*ot.Plan); !ok {
				t.Fatalf("seed %d u=%d: dense design produced %T", seed, u, cd.Plans[0])
			}
			for s := 0; s < 2; s++ {
				for i := 0; i < n; i++ {
					if d := math.Abs(cs.Plans[s].RowMass(i) - cd.Plans[s].RowMass(i)); d > 1e-8 {
						t.Fatalf("seed %d u=%d s=%d: row mass %d differs by %v", seed, u, s, i, d)
					}
					gs := expandConditional(cs.Plans[s], i, n)
					gd := expandConditional(cd.Plans[s], i, n)
					if (gs == nil) != (gd == nil) {
						t.Fatalf("seed %d u=%d s=%d: row %d mass disagreement", seed, u, s, i)
					}
					for j := range gs {
						if d := math.Abs(gs[j] - gd[j]); d > 1e-6 {
							t.Fatalf("seed %d u=%d s=%d: conditional (%d,%d) differs by %v",
								seed, u, s, i, j, d)
						}
					}
				}
			}
		}
	}
}

func expandConditional(p ot.RowPlan, i, m int) []float64 {
	targets, probs, ok := p.RowConditional(i)
	if !ok {
		return nil
	}
	out := make([]float64, m)
	for k, j := range targets {
		out[j] = probs[k]
	}
	return out
}

// TestSeparableRepairDistributionMatchesDense runs both designs' repairers
// over the same archive and checks the repaired populations agree in
// distribution (per-coordinate group means): the two plans are the same
// transport up to solver tolerance, so the sampled repairs must land on the
// same law even though individual draws differ.
func TestSeparableRepairDistributionMatchesDense(t *testing.T) {
	research, archive := paperTables(t, 33, 600, 4000)
	sep, err := Design(research, Options{NQ: 12})
	if err != nil {
		t.Fatal(err)
	}
	den, err := Design(research, Options{NQ: 12, Dense: true})
	if err != nil {
		t.Fatal(err)
	}
	repair := func(p *Plan) *dataset.Table {
		rp, err := NewRepairer(p, rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		out, err := rp.RepairTable(archive)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := repair(sep), repair(den)
	for u := 0; u < 2; u++ {
		for s := 0; s < 2; s++ {
			g := dataset.Group{U: u, S: s}
			for k := 0; k < 2; k++ {
				ma := meanOf(a.GroupColumn(g, k))
				mb := meanOf(b.GroupColumn(g, k))
				if math.Abs(ma-mb) > 0.05 {
					t.Errorf("(u=%d,s=%d,k=%d): separable mean %v vs dense %v", u, s, k, ma, mb)
				}
			}
		}
	}
}

func meanOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TestDesignRejectsNaNOptions covers the comparison hole the range checks
// used to have: NaN compares false against every bound, so it needs an
// explicit rejection.
func TestDesignRejectsNaNOptions(t *testing.T) {
	research, _ := paperTables(t, 34, 200, 0)
	if _, err := Design(research, Options{T: math.NaN()}); err == nil {
		t.Error("NaN T accepted")
	}
	if _, err := Design(research, Options{Epsilon: math.NaN()}); err == nil {
		t.Error("NaN epsilon accepted")
	}
	if _, err := Design(research, Options{Epsilon: math.Inf(1)}); err == nil {
		t.Error("+Inf epsilon accepted")
	}
}

// TestDenseOracleCap: the Dense oracle path is capped at denseMaxStates no
// matter what MaxStates allows — beyond it the n² objects it materializes
// stop fitting in memory.
func TestDenseOracleCap(t *testing.T) {
	research, _ := paperTables(t, 35, 300, 0)
	if _, err := Design(research, Options{NQ: 100, Dense: true, MaxStates: 65536}); err == nil {
		t.Error("dense design above denseMaxStates accepted")
	}
	// The separable path handles the same size fine.
	if _, err := Design(research, Options{NQ: 100, MaxStates: 65536}); err != nil {
		t.Errorf("separable design at 10000 states failed: %v", err)
	}
}

// TestDenseSerializationRoundTrip keeps the dense oracle's entry-list
// serialization path exercised now that the default writes scaling form.
func TestDenseSerializationRoundTrip(t *testing.T) {
	research, archive := paperTables(t, 36, 300, 100)
	plan, err := Design(research, Options{NQ: 8, Dense: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Cells[0].Plans[0].(*ot.Plan); !ok {
		t.Fatalf("dense plan round-tripped as %T", got.Cells[0].Plans[0])
	}
	a, err := NewRepairer(plan, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRepairer(got, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	outA, err := a.RepairTable(archive)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := b.RepairTable(archive)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < outA.Len(); i++ {
		if outA.At(i).X[0] != outB.At(i).X[0] || outA.At(i).X[1] != outB.At(i).X[1] {
			t.Fatalf("record %d differs after dense round-trip", i)
		}
	}
}
