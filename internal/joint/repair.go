package joint

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"otfair/internal/dataset"
	"otfair/internal/rng"
)

// Diagnostics counts boundary conditions seen while repairing.
type Diagnostics struct {
	// Repaired is the number of records repaired.
	Repaired int64
	// Clamped counts coordinate values outside the support range.
	Clamped int64
	// EmptyRowFallbacks counts draws that landed on a zero-mass plan row
	// and fell back to the nearest-point row carrying mass.
	EmptyRowFallbacks int64
}

// Repairer applies a joint Plan to off-sample records — Algorithm 2
// generalized to whole feature vectors. Not safe for concurrent use: it
// owns an RNG stream.
type Repairer struct {
	plan *Plan
	rng  *rng.RNG
	diag Diagnostics
	// alias caches one sampler per (u, s, row): archival torrents revisit
	// the same rows constantly. The cache is bounded by total cached atoms
	// (aliasAtomBudget), not row count: entropic rows over an 8 000-state
	// product support carry thousands of atoms each, and the τ-Bernoulli
	// snap keeps discovering new rows over an unbounded torrent, so an
	// uncapped cache would grow to rows × states atoms. Eviction never
	// changes outputs — a rebuilt sampler is identical, the draw consumes
	// the same RNG stream.
	alias      map[aliasKey]*rowSampler
	aliasAtoms int
	// aliasBudget is aliasAtomBudget in production; tests shrink it to
	// force eviction on small plans.
	aliasBudget int
	// onEvict, when set (tests only), observes each eviction in order.
	onEvict func(aliasKey)
}

// aliasAtomBudget bounds the alias cache at ~4M cached atoms (≈128 MB of
// targets + probabilities + alias tables). Small cells (the 256-state
// NQ=16, d=2 design has at most 1 024 distinct keys) never evict; the
// 8 000-state designs cycle the working set instead of exhausting memory.
const aliasAtomBudget = 1 << 22

type aliasKey struct {
	u, s, row int
}

type rowSampler struct {
	targets []int
	table   *rng.Alias
	// hits counts cache lookups that found this sampler; eviction sheds
	// the coldest samplers first.
	hits uint64
}

// NewRepairer binds a joint plan to a randomness source.
func NewRepairer(plan *Plan, r *rng.RNG) (*Repairer, error) {
	if plan == nil {
		return nil, errors.New("joint: nil plan")
	}
	if r == nil {
		return nil, errors.New("joint: nil rng")
	}
	return &Repairer{plan: plan, rng: r, alias: make(map[aliasKey]*rowSampler), aliasBudget: aliasAtomBudget}, nil
}

// Diagnostics returns the counters accumulated so far.
func (rp *Repairer) Diagnostics() Diagnostics { return rp.diag }

// RepairRecord repairs one labelled record: every coordinate is snapped to
// its axis with the τ-Bernoulli randomization of Eq. (14), the flat product
// state selects the plan row, and the repaired vector is drawn in one piece
// from the row conditional (Eq. 15 over the product support).
func (rp *Repairer) RepairRecord(rec dataset.Record) (dataset.Record, error) {
	if rec.S != 0 && rec.S != 1 {
		return dataset.Record{}, errors.New("joint: record needs a binary s label (estimate it first, or use the blind repairer)")
	}
	if rec.U != 0 && rec.U != 1 {
		return dataset.Record{}, fmt.Errorf("joint: invalid u label %d", rec.U)
	}
	if len(rec.X) != rp.plan.Dim {
		return dataset.Record{}, fmt.Errorf("joint: record has %d features, want %d", len(rec.X), rp.plan.Dim)
	}
	cell := rp.plan.Cells[rec.U]
	idx := make([]int, rp.plan.Dim)
	for k, x := range rec.X {
		idx[k] = rp.snapToAxis(cell.Grids[k], x)
	}
	row := flatIndex(cell.Grids, idx)
	j := rp.drawTarget(cell, rec.U, rec.S, row)
	out := dataset.Record{X: append([]float64(nil), cell.Points[j]...), S: rec.S, U: rec.U}
	rp.diag.Repaired++
	return out, nil
}

// snapToAxis is Algorithm 2 lines 5–8 for one coordinate.
func (rp *Repairer) snapToAxis(grid []float64, x float64) int {
	n := len(grid)
	if n == 1 {
		if x != grid[0] {
			rp.diag.Clamped++
		}
		return 0
	}
	switch {
	case x <= grid[0]:
		if x < grid[0] {
			rp.diag.Clamped++
		}
		return 0
	case x >= grid[n-1]:
		if x > grid[n-1] {
			rp.diag.Clamped++
		}
		return n - 1
	}
	q := sort.SearchFloat64s(grid, x)
	if q == n || grid[q] > x {
		q--
	}
	if grid[q] == x {
		return q
	}
	tau := (x - grid[q]) / (grid[q+1] - grid[q])
	if rp.rng.Bernoulli(tau) {
		q++
	}
	return q
}

// drawTarget draws the repaired product state from plan row `row`.
func (rp *Repairer) drawTarget(cell *Cell, u, s, row int) int {
	key := aliasKey{u: u, s: s, row: row}
	sampler, ok := rp.alias[key]
	if !ok {
		r := rp.nearestMassiveRow(cell, s, row)
		if r != row {
			rp.diag.EmptyRowFallbacks++
		}
		targets, probs, ok := cell.Plans[s].RowConditional(r)
		if !ok {
			panic("joint: plan has no mass in any row")
		}
		sampler = &rowSampler{targets: targets, table: rng.NewAlias(probs)}
		if rp.aliasAtoms+len(targets) > rp.aliasBudget {
			rp.evictAliases()
		}
		rp.alias[key] = sampler
		rp.aliasAtoms += len(targets)
	}
	sampler.hits++
	return sampler.targets[sampler.table.Draw(rp.rng)]
}

// evictAliases sheds about a quarter of the budget, coldest samplers
// first with key order breaking ties — the victim set is a pure function
// of the access history, never of map iteration order. Rebuilt samplers
// are identical and the draw consumes the same RNG stream, so eviction
// cannot change a single output draw either way; determinism here keeps
// the cache's *working set* (and therefore rebuild cost and memory
// profile) reproducible across runs of the same torrent.
func (rp *Repairer) evictAliases() {
	type candidate struct {
		key   aliasKey
		atoms int
		hits  uint64
	}
	cands := make([]candidate, 0, len(rp.alias))
	//otfair:nondet-ok candidates are fully sorted below; map order is erased
	for k, cached := range rp.alias {
		cands = append(cands, candidate{key: k, atoms: len(cached.targets), hits: cached.hits})
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.hits != b.hits {
			return a.hits < b.hits
		}
		if a.key.u != b.key.u {
			return a.key.u < b.key.u
		}
		if a.key.s != b.key.s {
			return a.key.s < b.key.s
		}
		return a.key.row < b.key.row
	})
	shed := rp.aliasBudget / 4
	for _, c := range cands {
		rp.aliasAtoms -= c.atoms
		delete(rp.alias, c.key)
		if rp.onEvict != nil {
			rp.onEvict(c.key)
		}
		if shed -= c.atoms; shed <= 0 {
			return
		}
	}
}

// nearestMassiveRow returns row if it has mass, otherwise the row whose
// support point is closest in squared Euclidean distance among rows with
// mass. Sinkhorn plans are dense, so this path only triggers after the
// feasibility rounding zeroes a boundary row.
func (rp *Repairer) nearestMassiveRow(cell *Cell, s, row int) int {
	plan := cell.Plans[s]
	if plan.RowMass(row) > 0 {
		return row
	}
	best, bestDist := row, -1.0
	from := cell.Points[row]
	for i := range cell.Points {
		if plan.RowMass(i) <= 0 {
			continue
		}
		d := 0.0
		for k := range from {
			diff := from[k] - cell.Points[i][k]
			d += diff * diff
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// RepairStream consumes a record stream and emits repaired records to sink
// with O(1) memory, mirroring core.Repairer.RepairStream for the torrent
// deployment mode.
func (rp *Repairer) RepairStream(in dataset.Stream, sink func(dataset.Record) error) (int, error) {
	if in.Dim() != rp.plan.Dim {
		return 0, fmt.Errorf("joint: stream dimension %d does not match plan %d", in.Dim(), rp.plan.Dim)
	}
	n := 0
	for {
		rec, err := in.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		repaired, err := rp.RepairRecord(rec)
		if err != nil {
			return n, fmt.Errorf("joint: stream record %d: %w", n, err)
		}
		if err := sink(repaired); err != nil {
			return n, err
		}
		n++
	}
}

// RepairTable repairs every record of a table in order, returning a new
// table with identical labels.
func (rp *Repairer) RepairTable(t *dataset.Table) (*dataset.Table, error) {
	if t == nil {
		return nil, errors.New("joint: nil table")
	}
	if t.Dim() != rp.plan.Dim {
		return nil, fmt.Errorf("joint: table dimension %d does not match plan %d", t.Dim(), rp.plan.Dim)
	}
	out, err := dataset.NewTable(t.Dim(), t.Names())
	if err != nil {
		return nil, err
	}
	for i := 0; i < t.Len(); i++ {
		rec, err := rp.RepairRecord(t.At(i))
		if err != nil {
			return nil, fmt.Errorf("joint: record %d: %w", i, err)
		}
		if err := out.Append(rec); err != nil {
			return nil, fmt.Errorf("joint: record %d: %w", i, err)
		}
	}
	return out, nil
}
