// Package joint implements the multivariate (non-feature-stratified)
// variant of the paper's distributional repair. Algorithm 1 stratifies by
// feature to dodge the curse of dimensionality, "at the cost of neglecting
// the intra-feature correlation structure in the x_{u,s}" (Section VI). This
// package builds the joint repair that stratification avoids, so the
// trade-off can be measured instead of assumed:
//
//   - the support is the product grid Q_{u,1} × … × Q_{u,d} (n_Q^d states);
//   - the s|u-conditional joint pmfs come from a product-kernel multivariate
//     KDE (internal/kde.MultiEstimator);
//   - the fair target ν_u is the entropically regularized W₂ barycenter on
//     that support (iterative Bregman projections, Benamou et al. 2015);
//   - the plans π*_{u,s} are Sinkhorn plans from each joint marginal to ν_u;
//   - Algorithm 2's snap-and-draw randomization generalizes coordinate-wise:
//     a per-dimension Bernoulli grid snap followed by one categorical draw
//     from the plan row over all n_Q^d target states.
//
// Whole records move as units, so whatever dependence the barycenter
// carries is reproduced in the repaired output — the per-feature repair, by
// contrast, redraws each coordinate independently and can only preserve
// dependence up to its comonotone component. The cost is exponential in d:
// the product support has n_Q^d states and the plans n_Q^{2d} entries.
// Options.MaxStates guards against accidental blow-ups; the per-feature
// core package remains the deployment default, exactly as the paper argues.
package joint

import (
	"errors"
	"fmt"
	"math"

	"otfair/internal/dataset"
	"otfair/internal/kde"
	"otfair/internal/ot"
	"otfair/internal/stat"
)

// Options configures the joint design.
type Options struct {
	// NQ is the number of support states per dimension (default 20; the
	// product support then has NQ^d states).
	NQ int
	// T places the target on the W2 geodesic (default 0.5, the fair
	// barycenter).
	T float64
	// Kernel and Bandwidth configure the multivariate KDE (defaults:
	// Gaussian, Silverman — the paper's choices, at the d-dimensional rate).
	Kernel    kde.Kernel
	Bandwidth kde.Bandwidth
	// Epsilon is the entropic regularization shared by the barycenter and
	// the Sinkhorn plans (0 = scale-aware default).
	Epsilon float64
	// MaxStates caps the product-support size per u (default 65536).
	// Designs that would exceed it fail fast with a sizing error instead of
	// exhausting memory. The default separable design stores only the
	// Kronecker factors (Σ_k n_k² kernel entries) and O(n) vectors per
	// cell, so the cap guards vector memory, not the n²-entry dense objects
	// the pre-factorized design paid for; the Dense oracle path is
	// additionally capped at denseMaxStates regardless.
	MaxStates int
	// Dense forces the materialized-kernel design: an explicit n×n cost
	// matrix, the dense Bregman barycenter and log-domain Sinkhorn plans.
	// It is the differential oracle the separable path is pinned against
	// (within 1e-9) and is quadratic in the state count, hence the separate
	// denseMaxStates cap.
	Dense bool
}

// denseMaxStates caps the Dense oracle path: beyond it the n² cost matrix,
// Gibbs kernel and plans (512 MB of kernel alone at 8192 states) stop being
// an oracle and start being a memory incident.
const denseMaxStates = 8192

func (o Options) withDefaults() Options {
	if o.NQ == 0 {
		o.NQ = 20
	}
	if o.T == 0 {
		o.T = 0.5
	}
	if o.MaxStates == 0 {
		o.MaxStates = 65536
	}
	return o
}

func (o Options) validate() error {
	if o.NQ < 2 {
		return fmt.Errorf("joint: NQ must be at least 2, got %d", o.NQ)
	}
	// NaN compares false against both range bounds, so it must be rejected
	// explicitly before it reaches the solvers.
	if math.IsNaN(o.T) || o.T <= 0 || o.T >= 1 {
		return fmt.Errorf("joint: geodesic parameter T = %v outside (0,1)", o.T)
	}
	if math.IsNaN(o.Epsilon) || math.IsInf(o.Epsilon, 0) || o.Epsilon < 0 {
		return fmt.Errorf("joint: invalid epsilon %v", o.Epsilon)
	}
	return nil
}

// Cell is the designed joint repair state for one u-population.
type Cell struct {
	// Grids[k] is the per-dimension support (ascending, uniform).
	Grids [][]float64
	// Points is the flattened product support, row-major over Grids; each
	// entry is one d-dimensional state.
	Points [][]float64
	// PMF[s] is the joint KDE-interpolated marginal on Points.
	PMF [2][]float64
	// Bary is the entropic W2 barycenter on Points — the fair target ν_u.
	Bary []float64
	// Plans[s] is the Sinkhorn plan from PMF[s] to Bary: a lazily-rowed
	// *ot.FactoredPlan for the default separable design, a materialized
	// *ot.Plan for the Dense oracle.
	Plans [2]ot.RowPlan
}

// States returns the product-support size.
func (c *Cell) States() int { return len(c.Points) }

// Plan is the complete joint design: one Cell per u.
type Plan struct {
	// Dim is the feature dimension d.
	Dim int
	// Names are the feature names carried from the research table.
	Names []string
	// Cells is indexed by u.
	Cells [2]*Cell
	// Opts records the design configuration.
	Opts Options
}

// Design learns the joint repair from an s|u-labelled research table: per
// u-population it builds the product support, estimates both s-conditional
// joint pmfs, computes the entropic barycenter and solves the two Sinkhorn
// plans. All four (u,s) research groups must be non-empty.
func Design(research *dataset.Table, opts Options) (*Plan, error) {
	if research == nil || research.Len() == 0 {
		return nil, errors.New("joint: empty research table")
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	counts := research.Counts()
	for _, g := range dataset.Groups() {
		if counts[g] == 0 {
			return nil, fmt.Errorf("joint: research group %v is empty", g)
		}
	}
	plan := &Plan{
		Dim:   research.Dim(),
		Names: append([]string(nil), research.Names()...),
		Opts:  opts,
	}
	for u := 0; u < 2; u++ {
		cell, err := designCell(research, u, opts)
		if err != nil {
			return nil, fmt.Errorf("joint: designing u=%d: %w", u, err)
		}
		plan.Cells[u] = cell
	}
	return plan, nil
}

func designCell(research *dataset.Table, u int, opts Options) (*Cell, error) {
	d := research.Dim()
	cell := &Cell{Grids: make([][]float64, d)}
	states := 1
	for k := 0; k < d; k++ {
		pooled := research.UColumn(u, k)
		lo, hi, err := stat.MinMax(pooled)
		if err != nil {
			return nil, err
		}
		if hi > lo {
			cell.Grids[k] = stat.Linspace(lo, hi, opts.NQ)
		} else {
			// Constant dimension: a single-state axis.
			cell.Grids[k] = []float64{lo}
		}
		states *= len(cell.Grids[k])
	}
	if states > opts.MaxStates {
		return nil, fmt.Errorf("joint: product support has %d states (> MaxStates %d); lower NQ or use the per-feature repair",
			states, opts.MaxStates)
	}
	if opts.Dense && states > denseMaxStates {
		return nil, fmt.Errorf("joint: product support has %d states (> %d, the dense-oracle cap); drop Dense for the separable design",
			states, denseMaxStates)
	}
	cell.Points = productPoints(cell.Grids)

	for s := 0; s < 2; s++ {
		var rows [][]float64
		for _, rec := range research.Records() {
			if rec.U == u && rec.S == s {
				rows = append(rows, rec.X)
			}
		}
		est, err := kde.NewMulti(rows, opts.Kernel, opts.Bandwidth)
		if err != nil {
			return nil, fmt.Errorf("s=%d KDE: %w", s, err)
		}
		pmf, err := est.GridPMF(cell.Grids)
		if err != nil {
			return nil, fmt.Errorf("s=%d interpolation: %w", s, err)
		}
		cell.PMF[s] = pmf
	}

	if opts.Dense {
		return denseCell(cell, opts)
	}
	return separableCell(cell, opts)
}

// separableCell finishes a cell on the default Kronecker-factored path: on
// the product grid the squared-Euclidean Gibbs kernel is K₁ ⊗ … ⊗ K_d, so
// the barycenter and both plans run through axis contractions costing
// O(n·Σ_k n_k) per application — never materializing a cost matrix, a
// dense kernel, or a dense plan. The scale-aware ε default uses the exact
// maximum product cost Σ_k (hi_k − lo_k)², which is the corner-to-corner
// value the dense cost matrix's Max() reports.
func separableCell(cell *Cell, opts Options) (*Cell, error) {
	maxC := 0.0
	for _, g := range cell.Grids {
		r := g[len(g)-1] - g[0]
		maxC += r * r
	}
	eps := opts.Epsilon
	if eps <= 0 {
		eps = 5e-3 * (1 + maxC)
	}
	op, err := ot.NewSeparableGibbs(cell.Grids, eps)
	if err != nil {
		return nil, err
	}

	bary, err := ot.BregmanBarycenterOp(op,
		[][]float64{cell.PMF[0], cell.PMF[1]},
		[]float64{1 - opts.T, opts.T},
		ot.BregmanOptions{})
	if err != nil {
		return nil, fmt.Errorf("barycenter: %w", err)
	}
	cell.Bary = bary

	for s := 0; s < 2; s++ {
		res, err := ot.SinkhornOp(cell.PMF[s], bary, op, ot.SinkhornOptions{})
		if err != nil {
			return nil, fmt.Errorf("s=%d plan: %w", s, err)
		}
		cell.Plans[s] = res.Plan
	}
	return cell, nil
}

// denseCell finishes a cell on the materialized-kernel oracle path — the
// pre-factorization design kept verbatim so the separable path has a dense
// reference to be differentially pinned against.
func denseCell(cell *Cell, opts Options) (*Cell, error) {
	cost, err := ot.NewCostMatrixPoints(cell.Points, cell.Points, ot.SquaredEuclideanPoints)
	if err != nil {
		return nil, err
	}
	eps := opts.Epsilon
	if eps <= 0 {
		eps = 5e-3 * (1 + cost.Max())
	}

	bary, err := ot.BregmanBarycenterCost(cost,
		[][]float64{cell.PMF[0], cell.PMF[1]},
		[]float64{1 - opts.T, opts.T},
		ot.BregmanOptions{Epsilon: eps})
	if err != nil {
		return nil, fmt.Errorf("barycenter: %w", err)
	}
	cell.Bary = bary

	for s := 0; s < 2; s++ {
		res, err := ot.Sinkhorn(cell.PMF[s], bary, cost, ot.SinkhornOptions{Epsilon: eps})
		if err != nil {
			return nil, fmt.Errorf("s=%d plan: %w", s, err)
		}
		cell.Plans[s] = res.Plan
	}
	return cell, nil
}

// productPoints expands per-dimension grids into the row-major flattened
// product support.
func productPoints(grids [][]float64) [][]float64 {
	d := len(grids)
	total := 1
	for _, g := range grids {
		total *= len(g)
	}
	points := make([][]float64, total)
	idx := make([]int, d)
	for flat := 0; flat < total; flat++ {
		p := make([]float64, d)
		for k := 0; k < d; k++ {
			p[k] = grids[k][idx[k]]
		}
		points[flat] = p
		for k := d - 1; k >= 0; k-- {
			idx[k]++
			if idx[k] < len(grids[k]) {
				break
			}
			idx[k] = 0
		}
	}
	return points
}

// flatIndex converts a per-dimension multi-index to the row-major flat state.
func flatIndex(grids [][]float64, idx []int) int {
	flat := 0
	for k := range grids {
		flat = flat*len(grids[k]) + idx[k]
	}
	return flat
}
