package joint

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/rng"
	"otfair/internal/simulate"
	"otfair/internal/stat"
)

// paperTables draws research/archive data from the paper's simulation
// scenario.
func paperTables(t *testing.T, seed uint64, nR, nA int) (*dataset.Table, *dataset.Table) {
	t.Helper()
	sampler, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	research, archive, err := sampler.ResearchArchive(rng.New(seed), nR, nA)
	if err != nil {
		t.Fatal(err)
	}
	return research, archive
}

// oppositeCorrScenario builds the case the paper's feature stratification
// cannot see: both s-groups share identical per-feature marginals
// (N(0,1) each coordinate) but carry opposite-sign correlation ±rho, so all
// the s-dependence lives in the joint structure.
func oppositeCorrScenario(rho float64) simulate.Scenario {
	pos := [][]float64{{1, rho}, {rho, 1}}
	neg := [][]float64{{1, -rho}, {-rho, 1}}
	zero := []float64{0, 0}
	return simulate.Scenario{
		Dim: 2,
		Mean: map[dataset.Group][]float64{
			{U: 0, S: 0}: zero, {U: 0, S: 1}: zero,
			{U: 1, S: 0}: zero, {U: 1, S: 1}: zero,
		},
		Cov: map[dataset.Group][][]float64{
			{U: 0, S: 0}: pos, {U: 0, S: 1}: neg,
			{U: 1, S: 0}: pos, {U: 1, S: 1}: neg,
		},
		PrU0:       0.5,
		PrS0GivenU: [2]float64{0.5, 0.5},
	}
}

// groupCorrelation returns the Pearson correlation between features 0 and 1
// within one (u,s) group.
func groupCorrelation(t *dataset.Table, g dataset.Group) float64 {
	return stat.Correlation(t.GroupColumn(g, 0), t.GroupColumn(g, 1))
}

// corrGap is the mean over u of |ρ_{u,0} − ρ_{u,1}| — the joint dependence
// signal a per-feature metric cannot see.
func corrGap(t *dataset.Table) float64 {
	gap := 0.0
	for u := 0; u < 2; u++ {
		r0 := groupCorrelation(t, dataset.Group{U: u, S: 0})
		r1 := groupCorrelation(t, dataset.Group{U: u, S: 1})
		gap += math.Abs(r0 - r1)
	}
	return gap / 2
}

func TestDesignValidation(t *testing.T) {
	if _, err := Design(nil, Options{}); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := Design(dataset.MustTable(2, nil), Options{}); err == nil {
		t.Error("empty table accepted")
	}
	research, _ := paperTables(t, 1, 300, 0)
	if _, err := Design(research, Options{NQ: 1}); err == nil {
		t.Error("NQ=1 accepted")
	}
	if _, err := Design(research, Options{T: 2}); err == nil {
		t.Error("T=2 accepted")
	}
	if _, err := Design(research, Options{Epsilon: -1}); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := Design(research, Options{NQ: 100, MaxStates: 1000}); err == nil {
		t.Error("over-budget product support accepted")
	}
	// Missing group.
	partial := dataset.MustTable(2, nil)
	for i := 0; i < 50; i++ {
		_ = partial.Append(dataset.Record{X: []float64{float64(i), 1}, S: 0, U: 0})
	}
	if _, err := Design(partial, Options{}); err == nil {
		t.Error("missing research groups accepted")
	}
}

func TestDesignPlanStructure(t *testing.T) {
	research, _ := paperTables(t, 2, 500, 0)
	plan, err := Design(research, Options{NQ: 12})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Dim != 2 {
		t.Fatalf("dim = %d", plan.Dim)
	}
	for u := 0; u < 2; u++ {
		cell := plan.Cells[u]
		if got := cell.States(); got != 144 {
			t.Fatalf("u=%d: %d states, want 144", u, got)
		}
		if len(cell.Points) != len(cell.Bary) {
			t.Fatalf("u=%d: support/target size mismatch", u)
		}
		// Flat index must be row-major over the grids.
		for i0 := range cell.Grids[0] {
			for i1 := range cell.Grids[1] {
				flat := flatIndex(cell.Grids, []int{i0, i1})
				p := cell.Points[flat]
				if p[0] != cell.Grids[0][i0] || p[1] != cell.Grids[1][i1] {
					t.Fatalf("u=%d: flat %d decodes to %v, want (%v,%v)",
						u, flat, p, cell.Grids[0][i0], cell.Grids[1][i1])
				}
			}
		}
		for s := 0; s < 2; s++ {
			if err := cell.Plans[s].CheckMarginals(cell.PMF[s], cell.Bary, 1e-6); err != nil {
				t.Errorf("u=%d s=%d: %v", u, s, err)
			}
		}
		// Barycenter is a pmf.
		sum := 0.0
		for _, v := range cell.Bary {
			if v < 0 {
				t.Fatalf("u=%d: negative barycenter mass", u)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("u=%d: barycenter mass %v", u, sum)
		}
	}
}

func TestBarycenterBetweenMarginals(t *testing.T) {
	// The t=½ barycenter's mean must sit midway between the two component
	// means (exact for W2 barycenters of any measures).
	research, _ := paperTables(t, 3, 800, 0)
	plan, err := Design(research, Options{NQ: 16})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		cell := plan.Cells[u]
		meanOf := func(pmf []float64) [2]float64 {
			var m [2]float64
			for i, p := range pmf {
				m[0] += p * cell.Points[i][0]
				m[1] += p * cell.Points[i][1]
			}
			return m
		}
		m0, m1, mb := meanOf(cell.PMF[0]), meanOf(cell.PMF[1]), meanOf(cell.Bary)
		for k := 0; k < 2; k++ {
			want := (m0[k] + m1[k]) / 2
			if math.Abs(mb[k]-want) > 0.12 {
				t.Errorf("u=%d k=%d: barycenter mean %v, want ≈ %v", u, k, mb[k], want)
			}
		}
	}
}

func TestRepairerValidation(t *testing.T) {
	research, _ := paperTables(t, 4, 300, 0)
	plan, err := Design(research, Options{NQ: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRepairer(nil, rng.New(1)); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := NewRepairer(plan, nil); err == nil {
		t.Error("nil rng accepted")
	}
	rp, err := NewRepairer(plan, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rp.RepairRecord(dataset.Record{X: []float64{0, 0}, S: dataset.SUnknown, U: 0}); err == nil {
		t.Error("unlabelled record accepted")
	}
	if _, err := rp.RepairRecord(dataset.Record{X: []float64{0, 0}, S: 0, U: 3}); err == nil {
		t.Error("bad u accepted")
	}
	if _, err := rp.RepairRecord(dataset.Record{X: []float64{0}, S: 0, U: 0}); err == nil {
		t.Error("wrong dimension accepted")
	}
	if _, err := rp.RepairTable(nil); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := rp.RepairTable(dataset.MustTable(3, nil)); err == nil {
		t.Error("wrong-dimension table accepted")
	}
}

func TestRepairShapeProperties(t *testing.T) {
	research, archive := paperTables(t, 5, 500, 800)
	plan, err := Design(research, Options{NQ: 14})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewRepairer(plan, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	out, err := rp.RepairTable(archive)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != archive.Len() {
		t.Fatalf("cardinality %d, want %d", out.Len(), archive.Len())
	}
	for i, rec := range out.Records() {
		in := archive.At(i)
		if rec.S != in.S || rec.U != in.U {
			t.Fatalf("record %d: labels changed", i)
		}
		// Repaired vectors are product-support points.
		cell := plan.Cells[rec.U]
		found := false
		for _, p := range cell.Points {
			if p[0] == rec.X[0] && p[1] == rec.X[1] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("record %d: %v not on the product support", i, rec.X)
		}
	}
	if d := rp.Diagnostics(); d.Repaired != int64(archive.Len()) {
		t.Errorf("diagnostics.Repaired = %d, want %d", d.Repaired, archive.Len())
	}
}

func TestRepairClampsOutOfRange(t *testing.T) {
	research, _ := paperTables(t, 7, 400, 0)
	plan, err := Design(research, Options{NQ: 10})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewRepairer(plan, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rp.RepairRecord(dataset.Record{X: []float64{1e6, -1e6}, S: 0, U: 0}); err != nil {
		t.Fatal(err)
	}
	if d := rp.Diagnostics(); d.Clamped != 2 {
		t.Errorf("Clamped = %d, want 2", d.Clamped)
	}
}

func TestDegenerateDimension(t *testing.T) {
	// A constant feature collapses that axis to one state; the repair must
	// still work and return the constant on that axis.
	r := rng.New(9)
	research := dataset.MustTable(2, nil)
	for _, g := range dataset.Groups() {
		for i := 0; i < 60; i++ {
			shift := float64(g.S)
			_ = research.Append(dataset.Record{
				X: []float64{r.Normal(shift, 1), 7},
				S: g.S, U: g.U,
			})
		}
	}
	plan, err := Design(research, Options{NQ: 10})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		if got := plan.Cells[u].States(); got != 10 {
			t.Fatalf("u=%d: %d states, want 10 (10×1)", u, got)
		}
	}
	rp, err := NewRepairer(plan, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	out, err := rp.RepairRecord(dataset.Record{X: []float64{0.3, 7}, S: 0, U: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.X[1] != 7 {
		t.Errorf("degenerate axis produced %v, want 7", out.X[1])
	}
}

func TestJointRepairQuenchesCorrelationGapWherePerFeatureCannot(t *testing.T) {
	// The decisive case for the Section VI trade-off: identical per-feature
	// marginals, opposite joint correlation. The per-feature repair is blind
	// to the unfairness; the joint repair removes it.
	sampler, err := simulate.NewSampler(oppositeCorrScenario(0.8))
	if err != nil {
		t.Fatal(err)
	}
	research, archive, err := sampler.ResearchArchive(rng.New(11), 1200, 4000)
	if err != nil {
		t.Fatal(err)
	}

	gapBefore := corrGap(archive)
	if gapBefore < 1.2 {
		t.Fatalf("scenario broken: correlation gap %v, want ≈ 1.6", gapBefore)
	}

	// Per-feature (paper) repair.
	marginalPlan, err := core.Design(research, core.Options{NQ: 30})
	if err != nil {
		t.Fatal(err)
	}
	mrp, err := core.NewRepairer(marginalPlan, rng.New(12), core.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	marginalOut, err := mrp.RepairTable(archive)
	if err != nil {
		t.Fatal(err)
	}

	// Joint repair.
	jointPlan, err := Design(research, Options{NQ: 16})
	if err != nil {
		t.Fatal(err)
	}
	jrp, err := NewRepairer(jointPlan, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	jointOut, err := jrp.RepairTable(archive)
	if err != nil {
		t.Fatal(err)
	}

	gapJoint := corrGap(jointOut)
	gapMarginal := corrGap(marginalOut)
	if gapJoint > gapBefore/3 {
		t.Errorf("joint repair left correlation gap %v of %v", gapJoint, gapBefore)
	}
	if gapMarginal < gapBefore/3 {
		t.Errorf("per-feature repair 'fixed' the joint gap (%v of %v) — it should be unable to",
			gapMarginal, gapBefore)
	}
	if gapJoint >= gapMarginal {
		t.Errorf("joint gap %v not below per-feature gap %v", gapJoint, gapMarginal)
	}
}

func TestJointRepairShrinksGroupMeansGap(t *testing.T) {
	// On the paper's mean-shifted scenario the joint repair must pull the
	// two s-conditional mean vectors together within each u.
	research, archive := paperTables(t, 14, 800, 3000)
	plan, err := Design(research, Options{NQ: 16})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewRepairer(plan, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	out, err := rp.RepairTable(archive)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		for k := 0; k < 2; k++ {
			g0, g1 := dataset.Group{U: u, S: 0}, dataset.Group{U: u, S: 1}
			before := math.Abs(stat.Mean(archive.GroupColumn(g0, k)) - stat.Mean(archive.GroupColumn(g1, k)))
			after := math.Abs(stat.Mean(out.GroupColumn(g0, k)) - stat.Mean(out.GroupColumn(g1, k)))
			if u == 0 && before < 0.5 {
				t.Fatalf("scenario broken: u=0 gap %v", before)
			}
			if after > before/2 && before > 0.3 {
				t.Errorf("(u=%d,k=%d): mean gap %v → %v, want at least halved", u, k, before, after)
			}
		}
	}
}

func TestJointRepairDeterministicForSeed(t *testing.T) {
	research, archive := paperTables(t, 16, 400, 200)
	plan, err := Design(research, Options{NQ: 12})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *dataset.Table {
		rp, err := NewRepairer(plan, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		out, err := rp.RepairTable(archive)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := 0; i < a.Len(); i++ {
		if a.At(i).X[0] != b.At(i).X[0] || a.At(i).X[1] != b.At(i).X[1] {
			t.Fatalf("record %d differs across identical seeds", i)
		}
	}
}

func TestJointSerializationRoundTrip(t *testing.T) {
	research, archive := paperTables(t, 18, 400, 150)
	plan, err := Design(research, Options{NQ: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != plan.Dim || got.Opts.NQ != plan.Opts.NQ {
		t.Fatalf("round-trip lost configuration: %+v", got.Opts)
	}
	// The reloaded plan must repair identically for the same seed.
	a, err := NewRepairer(plan, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRepairer(got, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	outA, err := a.RepairTable(archive)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := b.RepairTable(archive)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < outA.Len(); i++ {
		if outA.At(i).X[0] != outB.At(i).X[0] || outA.At(i).X[1] != outB.At(i).X[1] {
			t.Fatalf("record %d differs after round-trip", i)
		}
	}
}

func TestJointReadPlanRejectsCorruption(t *testing.T) {
	research, _ := paperTables(t, 19, 300, 0)
	plan, err := Design(research, Options{NQ: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	if !strings.Contains(good, `"version":2`) {
		t.Fatalf("serialized plan does not carry version 2: %.80s", good)
	}
	cases := map[string]string{
		"garbage":     "{not json",
		"bad version": strings.Replace(good, `"version":2`, `"version":99`, 1),
		"bad dim":     strings.Replace(good, `"dim":2`, `"dim":0`, 1),
	}
	for name, body := range cases {
		if _, err := ReadPlan(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestJointRepairStreamMatchesTable(t *testing.T) {
	research, archive := paperTables(t, 20, 400, 120)
	plan, err := Design(research, Options{NQ: 10})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewRepairer(plan, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	viaTable, err := a.RepairTable(archive)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRepairer(plan, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	var got []dataset.Record
	n, err := b.RepairStream(dataset.NewSliceStream(archive), func(r dataset.Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != archive.Len() {
		t.Fatalf("stream repaired %d, want %d", n, archive.Len())
	}
	for i, rec := range got {
		want := viaTable.At(i)
		if rec.X[0] != want.X[0] || rec.X[1] != want.X[1] {
			t.Fatalf("record %d: stream %v vs table %v", i, rec.X, want.X)
		}
	}
}

func TestJointThreeDimensional(t *testing.T) {
	// d = 3: 8³ = 512 product states. Verifies the design and repair are
	// not hard-wired to d = 2 and that the MaxStates guard sizes correctly.
	r := rng.New(21)
	research := dataset.MustTable(3, nil)
	archive := dataset.MustTable(3, nil)
	draw := func(tab *dataset.Table, n int) {
		for i := 0; i < n; i++ {
			u := i % 2
			s := (i / 2) % 2
			shift := float64(s)
			rec := dataset.Record{
				X: []float64{r.Normal(shift, 1), r.Normal(shift, 1), r.Normal(-shift, 1)},
				S: s, U: u,
			}
			if err := tab.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	draw(research, 600)
	draw(archive, 1000)
	plan, err := Design(research, Options{NQ: 8})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		if got := plan.Cells[u].States(); got != 512 {
			t.Fatalf("u=%d: %d states, want 512", u, got)
		}
	}
	rp, err := NewRepairer(plan, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	out, err := rp.RepairTable(archive)
	if err != nil {
		t.Fatal(err)
	}
	// Mean gap between the s-groups must shrink on every coordinate.
	for k := 0; k < 3; k++ {
		g0, g1 := dataset.Group{U: 0, S: 0}, dataset.Group{U: 0, S: 1}
		before := math.Abs(stat.Mean(archive.GroupColumn(g0, k)) - stat.Mean(archive.GroupColumn(g1, k)))
		after := math.Abs(stat.Mean(out.GroupColumn(g0, k)) - stat.Mean(out.GroupColumn(g1, k)))
		if after >= before {
			t.Errorf("k=%d: mean gap %v → %v", k, before, after)
		}
	}
}
