package joint

import (
	"testing"

	"otfair/internal/dataset"
	"otfair/internal/rng"
)

// TestAliasEvictionOrderDeterministic pins the victim order: coldest
// sampler first, ties broken by (u, s, row) — never map iteration order.
func TestAliasEvictionOrderDeterministic(t *testing.T) {
	build := func() *Repairer {
		rp := &Repairer{alias: make(map[aliasKey]*rowSampler), aliasBudget: 400}
		add := func(u, s, row, atoms int, hits uint64) {
			rp.alias[aliasKey{u: u, s: s, row: row}] = &rowSampler{targets: make([]int, atoms), hits: hits}
			rp.aliasAtoms += atoms
		}
		add(1, 1, 9, 40, 5) // hot: must survive
		add(0, 1, 2, 40, 0) // cold, key order 2nd
		add(0, 0, 7, 40, 0) // cold, key order 1st
		add(1, 0, 1, 40, 2) // warm, evicted after the cold pair
		add(0, 1, 5, 40, 9) // hottest: must survive
		return rp
	}
	want := []aliasKey{{0, 0, 7}, {0, 1, 2}, {1, 0, 1}} // shed quota 100 atoms -> 3 victims
	for run := 0; run < 20; run++ {
		rp := build()
		var got []aliasKey
		rp.onEvict = func(k aliasKey) { got = append(got, k) }
		rp.evictAliases()
		if len(got) != len(want) {
			t.Fatalf("run %d: evicted %d samplers, want %d (%v)", run, len(got), len(want), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("run %d: eviction %d = %v, want %v", run, i, got[i], want[i])
			}
		}
		if rp.aliasAtoms != 2*40 {
			t.Fatalf("run %d: %d atoms left, want 80", run, rp.aliasAtoms)
		}
	}
}

// TestAliasEvictionPreservesRepairOutput is the differential test: a
// budget tiny enough to evict constantly must produce rows byte-identical
// to an effectively unbounded cache, and the eviction sequence itself must
// be stable across identical runs.
func TestAliasEvictionPreservesRepairOutput(t *testing.T) {
	research, archive := paperTables(t, 21, 400, 300)
	plan, err := Design(research, Options{NQ: 12})
	if err != nil {
		t.Fatal(err)
	}
	run := func(budget int) (*dataset.Table, []aliasKey) {
		rp, err := NewRepairer(plan, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		rp.aliasBudget = budget
		var evicted []aliasKey
		rp.onEvict = func(k aliasKey) { evicted = append(evicted, k) }
		out, err := rp.RepairTable(archive)
		if err != nil {
			t.Fatal(err)
		}
		return out, evicted
	}
	tiny1, ev1 := run(256)
	tiny2, ev2 := run(256)
	big, evBig := run(aliasAtomBudget)

	if len(ev1) == 0 {
		t.Fatal("tiny budget evicted nothing; the test exercises no eviction")
	}
	if len(evBig) != 0 {
		t.Fatalf("production budget evicted %d samplers on a toy plan", len(evBig))
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("eviction sequence length differs across identical runs: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("eviction %d differs across identical runs: %v vs %v", i, ev1[i], ev2[i])
		}
	}
	for i := 0; i < big.Len(); i++ {
		a, b, c := tiny1.At(i), tiny2.At(i), big.At(i)
		if a.S != c.S || a.U != c.U || b.S != c.S || b.U != c.U {
			t.Fatalf("record %d: labels differ across budgets", i)
		}
		for k := range c.X {
			if a.X[k] != c.X[k] || b.X[k] != c.X[k] {
				t.Fatalf("record %d coord %d: repaired value differs across cache budgets (%v, %v, %v)", i, k, a.X[k], b.X[k], c.X[k])
			}
		}
	}
}
