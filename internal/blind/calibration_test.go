package blind

import (
	"bytes"
	"strings"
	"testing"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/rng"
)

func fitCalibration(t *testing.T, plan *core.Plan, research *dataset.Table) *Calibration {
	t.Helper()
	cal, err := NewCalibration(plan, research)
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

// TestCalibrationRoundTrip pins the artefact contract: canonical bytes are
// stable, the fingerprint is a pure function of content, and a round-tripped
// calibration is behaviourally identical — posterior, confidence baseline
// and pooled plan all byte-equal the fresh fit.
func TestCalibrationRoundTrip(t *testing.T) {
	plan, research, archive := designOnScenario(t, 31, 300, 200)
	cal := fitCalibration(t, plan, research)

	raw, err := cal.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := cal.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("canonical serialization is not byte-stable")
	}
	id, err := cal.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if id != core.FingerprintBytes(raw) {
		t.Fatal("fingerprint disagrees with the canonical bytes")
	}

	loaded, err := ReadCalibration(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.PlanID() != cal.PlanID() || loaded.Dim() != cal.Dim() {
		t.Errorf("identity fields changed: %s/%d vs %s/%d", loaded.PlanID(), loaded.Dim(), cal.PlanID(), cal.Dim())
	}
	if loaded.ResearchConfidence() != cal.ResearchConfidence() || loaded.ResearchRecords() != cal.ResearchRecords() {
		t.Error("research baseline changed across the round trip")
	}
	reRaw, err := loaded.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, reRaw) {
		t.Fatal("serialize -> read -> serialize changed the canonical bytes")
	}

	// The QDA posterior survives exactly (float64 round-trips through JSON
	// bit-exactly at default precision).
	qda, err := NewQDA(research)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < archive.Len(); i++ {
		rec := archive.At(i)
		want, err := qda.Posterior(rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Posterior(rec)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("record %d: posterior %v != fresh QDA %v", i, got, want)
		}
	}

	// The reconstructed pooled plan equals the research-fitted one bit for
	// bit — both construction paths must share one cell builder.
	want, err := PooledPlan(plan, research)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.PooledPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, err := want.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	gotRaw, err := got.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantRaw, gotRaw) {
		t.Fatal("calibration-reconstructed pooled plan differs from the research-fitted one")
	}
}

// TestCalibratedRepairerByteIdentical pins NewCalibrated to New: for every
// method, the calibrated shared-sampler repairer reproduces the research-
// fitted repairer byte for byte at the same seed — including after a
// serialization round trip of the calibration.
func TestCalibratedRepairerByteIdentical(t *testing.T) {
	plan, research, archive := designOnScenario(t, 32, 300, 800)
	unlabelled := stripS(t, archive)
	cal := fitCalibration(t, plan, research)
	raw, err := cal.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCalibration(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	labelled, err := core.NewPlanSampler(plan)
	if err != nil {
		t.Fatal(err)
	}
	pooledPlan, err := loaded.PooledPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := core.NewPlanSampler(pooledPlan)
	if err != nil {
		t.Fatal(err)
	}
	smp := Samplers{Labelled: labelled, Pooled: pooled}

	for _, method := range []Method{MethodHard, MethodDraw, MethodMix, MethodPooled} {
		ref, err := New(plan, research, rng.New(77), Options{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.RepairTable(unlabelled)
		if err != nil {
			t.Fatal(err)
		}
		calrp, err := NewCalibrated(loaded, smp, rng.New(77), Options{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		got, err := calrp.RepairTable(unlabelled)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < want.Len(); i++ {
			wr, gr := want.At(i), got.At(i)
			for k := range wr.X {
				if wr.X[k] != gr.X[k] {
					t.Fatalf("method %v record %d feature %d: %v != %v", method, i, k, gr.X[k], wr.X[k])
				}
			}
		}
		if ref.Stats() != calrp.Stats() {
			t.Errorf("method %v: stats diverged: %+v vs %+v", method, calrp.Stats(), ref.Stats())
		}
	}
}

// TestCalibrationValidation exercises the loud-failure contract of
// ReadCalibration on corrupted artefacts.
func TestCalibrationValidation(t *testing.T) {
	plan, research, _ := designOnScenario(t, 33, 250, 10)
	cal := fitCalibration(t, plan, research)
	raw, err := cal.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(string) string{
		"garbage":       func(string) string { return "{not json" },
		"version":       func(s string) string { return strings.Replace(s, `"version":1`, `"version":99`, 1) },
		"dim":           func(s string) string { return strings.Replace(s, `"dim":2`, `"dim":0`, 1) },
		"plan":          func(s string) string { return strings.Replace(s, `"plan":"`+cal.PlanID()+`"`, `"plan":""`, 1) },
		"negative-mass": func(s string) string { return strings.Replace(s, `"pmf":[`, `"pmf":[-1,`, 1) },
	} {
		if _, err := ReadCalibration(strings.NewReader(mutate(string(raw)))); err == nil {
			t.Errorf("%s corruption deserialized without error", name)
		}
	}
}

// TestAmbiguityHistogram checks the Stats histogram: every imputed record
// lands in exactly one bin, and a well-separated scenario concentrates mass
// in the confident bins.
func TestAmbiguityHistogram(t *testing.T) {
	plan, research, archive := designOnScenario(t, 34, 300, 500)
	unlabelled := stripS(t, archive)
	rp, err := New(plan, research, rng.New(9), Options{Method: MethodDraw})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rp.RepairTable(unlabelled); err != nil {
		t.Fatal(err)
	}
	st := rp.Stats()
	var total int64
	for _, c := range st.AmbiguityBins {
		total += c
	}
	if total != st.Imputed {
		t.Errorf("histogram mass %d != imputed %d", total, st.Imputed)
	}
	if st.AmbiguityBins[0] == 0 {
		t.Error("separated scenario put no records in the confident bin")
	}
	var merged Stats
	merged.Merge(st)
	merged.Merge(st)
	if merged.Imputed != 2*st.Imputed || merged.AmbiguityBins[0] != 2*st.AmbiguityBins[0] {
		t.Error("Stats.Merge does not aggregate")
	}
}
