package blind

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"otfair/internal/dataset"
	"otfair/internal/rng"
)

// newPair builds the batched (default) repairer and a same-seed reference
// repairer whose per-record methods the tests replay directly. For the
// posterior methods the reference gets the QDA's own Posterior through
// Options — which must disable span batching (a caller-supplied func may be
// stateful) while evaluating identical values.
func newPair(t *testing.T, seed uint64, method Method) (batched, scalar *Repairer, research, archive *dataset.Table) {
	t.Helper()
	plan, research, archive := designOnScenario(t, seed, 400, 3000)
	var err error
	batched, err = New(plan, research, rng.New(seed), Options{Method: method})
	if err != nil {
		t.Fatal(err)
	}
	if method != MethodPooled && batched.bp == nil {
		t.Fatal("default repairer did not arm the batched posterior")
	}
	opts := Options{Method: method}
	if method != MethodPooled {
		qda, err := NewQDA(research)
		if err != nil {
			t.Fatal(err)
		}
		opts.Posterior = qda.Posterior
	}
	scalar, err = New(plan, research, rng.New(seed), opts)
	if err != nil {
		t.Fatal(err)
	}
	if method != MethodPooled && scalar.bp != nil {
		t.Fatal("custom-posterior repairer armed the batched path")
	}
	return batched, scalar, research, archive
}

// mixLabels relabels a third of the archive with its true s so the spans
// mix labelled and unlabelled records (the gather/scatter path).
func mixLabels(t *testing.T, archive *dataset.Table) *dataset.Table {
	t.Helper()
	out := archive.Clone()
	recs := out.Records()
	for i := range recs {
		if i%3 != 0 {
			recs[i].S = dataset.SUnknown
		}
	}
	return out
}

// TestRepairTableBatchedByteIdentical pins the span-batched RepairTable
// against the per-record sequence for every method, over a table larger
// than one span and with mixed labelled/unlabelled records.
func TestRepairTableBatchedByteIdentical(t *testing.T) {
	for _, method := range []Method{MethodHard, MethodDraw, MethodMix, MethodPooled} {
		t.Run(method.String(), func(t *testing.T) {
			batched, scalar, _, archive := newPair(t, 41, method)
			mixed := mixLabels(t, archive)
			outB, err := batched.RepairTable(mixed)
			if err != nil {
				t.Fatal(err)
			}
			outS, err := scalarRepairTable(scalar, mixed)
			if err != nil {
				t.Fatal(err)
			}
			if outB.Len() != outS.Len() {
				t.Fatalf("lengths %d vs %d", outB.Len(), outS.Len())
			}
			for i := 0; i < outB.Len(); i++ {
				a, b := outB.At(i), outS.At(i)
				if a.S != b.S || a.U != b.U || a.X[0] != b.X[0] || a.X[1] != b.X[1] {
					t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
				}
			}
			if batched.Stats() != scalar.Stats() {
				t.Fatalf("stats diverged: %+v vs %+v", batched.Stats(), scalar.Stats())
			}
		})
	}
}

// scalarRepairStream replays the pre-batching per-record stream loop — the
// reference sequence RepairStream must reproduce byte for byte.
func scalarRepairStream(rp *Repairer, in dataset.Stream, sink func(dataset.Record) error) (int, error) {
	n := 0
	for {
		rec, err := in.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		repaired, err := rp.RepairRecord(rec)
		if err != nil {
			return n, fmt.Errorf("blind: stream record %d: %w", n, err)
		}
		if err := sink(repaired); err != nil {
			return n, err
		}
		n++
	}
}

// scalarRepairTable replays the pre-batching per-record table loop — the
// reference sequence RepairTable's span path must reproduce byte for byte.
func scalarRepairTable(rp *Repairer, t *dataset.Table) (*dataset.Table, error) {
	out, err := dataset.NewTable(t.Dim(), t.Names())
	if err != nil {
		return nil, err
	}
	for i := 0; i < t.Len(); i++ {
		rec, err := rp.RepairRecord(t.At(i))
		if err != nil {
			return nil, err
		}
		if err := out.Append(rec); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TestRepairStreamBatchedByteIdentical pins the chunked stream path —
// batched posteriors, per-record sinking — against the scalar stream.
func TestRepairStreamBatchedByteIdentical(t *testing.T) {
	for _, method := range []Method{MethodHard, MethodDraw, MethodPooled} {
		t.Run(method.String(), func(t *testing.T) {
			batched, scalar, _, archive := newPair(t, 42, method)
			mixed := mixLabels(t, archive)

			var got []dataset.Record
			n, err := batched.RepairStream(dataset.NewSliceStream(mixed), func(r dataset.Record) error {
				got = append(got, r)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			var want []dataset.Record
			m, err := scalarRepairStream(scalar, dataset.NewSliceStream(mixed), func(r dataset.Record) error {
				want = append(want, r)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if n != m || n != mixed.Len() {
				t.Fatalf("counts %d vs %d (want %d)", n, m, mixed.Len())
			}
			for i := range got {
				if got[i].X[0] != want[i].X[0] || got[i].X[1] != want[i].X[1] || got[i].S != want[i].S {
					t.Fatalf("record %d differs: %+v vs %+v", i, got[i], want[i])
				}
			}
			if batched.Stats() != scalar.Stats() {
				t.Fatalf("stats diverged")
			}
		})
	}
}

// lockstepStream fails the test if a record is pulled before the previous
// one was sunk — the flow-through contract of the torrent deployment mode.
type lockstepStream struct {
	t    *testing.T
	recs []dataset.Record
	dim  int
	read int
	sunk *int
}

func (s *lockstepStream) Dim() int { return s.dim }

func (s *lockstepStream) Next() (dataset.Record, error) {
	if s.read > *s.sunk {
		s.t.Fatalf("stream pulled record %d before record %d was sunk", s.read, *s.sunk)
	}
	if s.read >= len(s.recs) {
		return dataset.Record{}, io.EOF
	}
	rec := s.recs[s.read]
	s.read++
	return rec, nil
}

// TestRepairStreamFlowThrough pins the liveness contract: RepairStream
// must repair and sink each record before pulling the next, never
// buffering a span — a live torrent's downstream cannot wait on a batch
// filling up.
func TestRepairStreamFlowThrough(t *testing.T) {
	batched, _, _, archive := newPair(t, 45, MethodDraw)
	mixed := mixLabels(t, archive)
	sunk := 0
	in := &lockstepStream{t: t, recs: mixed.Records(), dim: mixed.Dim(), sunk: &sunk}
	n, err := batched.RepairStream(in, func(dataset.Record) error {
		sunk++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != mixed.Len() || sunk != mixed.Len() {
		t.Fatalf("repaired %d, sunk %d, want %d", n, sunk, mixed.Len())
	}
}

// TestBatchedTableInvalidRecordKeepsScalarSemantics: a span containing an
// invalid record must fail with the same error position (and error text
// shape) as the per-record loop, via the scalar fallback.
func TestBatchedTableInvalidRecordKeepsScalarSemantics(t *testing.T) {
	batched, scalar, _, archive := newPair(t, 43, MethodDraw)
	bad := mixLabels(t, archive)
	recs := bad.Records()
	badIdx := 1500 // second span
	recs[badIdx].U = 7

	_, errB := batched.RepairTable(bad)
	_, errS := scalarRepairTable(scalar, bad)
	if errB == nil || errS == nil {
		t.Fatalf("invalid record accepted: batched=%v scalar=%v", errB, errS)
	}
	if !strings.Contains(errB.Error(), "1500") {
		t.Fatalf("batched error lost the record position: %v", errB)
	}
	if !strings.Contains(errB.Error(), "invalid u label") {
		t.Fatalf("unexpected batched error: %v", errB)
	}
	// Both paths consumed identical RNG up to the failure.
	if batched.Stats() != scalar.Stats() {
		t.Fatalf("stats diverged after failure: %+v vs %+v", batched.Stats(), scalar.Stats())
	}
}

// TestBatchedStreamInvalidRecordSinksPrefix: the stream path must sink
// every record before the invalid one (scalar fallback inside the span),
// mirroring the per-record stream's partial progress.
func TestBatchedStreamInvalidRecordSinksPrefix(t *testing.T) {
	batched, scalar, _, archive := newPair(t, 44, MethodDraw)
	bad := mixLabels(t, archive)
	recs := bad.Records()
	badIdx := 1100
	recs[badIdx] = dataset.Record{X: []float64{0}, S: dataset.SUnknown, U: 0} // wrong dim

	var got []dataset.Record
	n, errB := batched.RepairStream(dataset.NewSliceStream(bad), func(r dataset.Record) error {
		got = append(got, r)
		return nil
	})
	var want []dataset.Record
	m, errS := scalarRepairStream(scalar, dataset.NewSliceStream(bad), func(r dataset.Record) error {
		want = append(want, r)
		return nil
	})
	if errB == nil || errS == nil {
		t.Fatal("invalid record accepted")
	}
	if n != badIdx || m != badIdx {
		t.Fatalf("sunk counts %d / %d, want %d", n, m, badIdx)
	}
	if !strings.Contains(errB.Error(), "stream record 1100") {
		t.Fatalf("batched stream error lost position: %v", errB)
	}
	for i := range got {
		if got[i].X[0] != want[i].X[0] || got[i].X[1] != want[i].X[1] {
			t.Fatalf("record %d differs before the failure", i)
		}
	}
}
