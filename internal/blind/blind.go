// Package blind repairs archival data whose protected attribute s is
// unobserved — the priority future work named in Section VI of the paper
// ("a priority of our future work will be to extend our distributional
// OT-repair methods to s|u-unlabelled X_A", refs [37]–[39]).
//
// Algorithm 2 is s-indexed: it picks the plan π*_{u,s,k} by the record's s
// label. When archives carry no s, four deployment strategies are offered,
// ordered from most to least label information used:
//
//   - MethodHard:   impute the MAP label ŝ = argmax_s Pr[s|x,u] and run the
//     labelled repair — the paper's own suggestion (Section IV, Eq. 10).
//   - MethodDraw:   draw ŝ ~ Bernoulli(Pr[s=1|x,u]) once per record. The
//     repaired population then mixes the two conditional repair kernels with
//     exactly the posterior weights, removing MethodHard's decision-boundary
//     bias at the cost of extra randomness.
//   - MethodMix:    redraw ŝ independently for every feature — the full
//     posterior mixture of the per-feature repair kernels.
//   - MethodPooled: ignore s entirely and transport the pooled u-marginal
//     (Eq. 10's mixture) to the barycentric target — group-blind transport
//     in the sense of [37]. Needs no posterior model at all.
//
// The posterior for the first three methods defaults to a QDA fitted on the
// labelled research set (supervised, streaming-friendly); any other source —
// e.g. the unsupervised archive-fitted mixture.LabelEstimator.SPosterior —
// can be plugged in through Options.Posterior.
package blind

import (
	"errors"
	"fmt"
	"io"
	"math"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/rng"
)

// Method selects how the missing s label is handled at repair time.
type Method int

const (
	// MethodHard imputes the MAP label and applies the labelled repair.
	MethodHard Method = iota
	// MethodDraw draws one label per record from the posterior.
	MethodDraw
	// MethodMix draws an independent label per feature from the posterior.
	MethodMix
	// MethodPooled applies the single group-blind pooled transport.
	MethodPooled
)

// String names the method for flags and reports.
func (m Method) String() string {
	switch m {
	case MethodHard:
		return "hard"
	case MethodDraw:
		return "draw"
	case MethodMix:
		return "mix"
	case MethodPooled:
		return "pooled"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// ParseMethod resolves a method name.
func ParseMethod(name string) (Method, error) {
	switch name {
	case "hard", "":
		return MethodHard, nil
	case "draw":
		return MethodDraw, nil
	case "mix":
		return MethodMix, nil
	case "pooled", "blind":
		return MethodPooled, nil
	default:
		return 0, fmt.Errorf("blind: unknown method %q", name)
	}
}

// PosteriorFunc supplies Pr[s = 1 | x, u] for one record.
type PosteriorFunc func(dataset.Record) (float64, error)

// Options configures a blind Repairer.
type Options struct {
	// Method selects the label-handling strategy (default MethodHard).
	Method Method
	// Posterior overrides the posterior source for the hard/draw/mix
	// methods. Nil means "fit a QDA on the research table".
	Posterior PosteriorFunc
	// Repair is passed through to the underlying Algorithm-2 repairer.
	Repair core.RepairOptions
}

// Stats accumulates deployment counters beyond core.Diagnostics.
type Stats struct {
	// Records is the number of records repaired.
	Records int64
	// LabelsUsed counts records whose observed s label was trusted
	// directly (only records arriving with a label, never for
	// MethodPooled).
	LabelsUsed int64
	// Imputed counts records repaired under an estimated label.
	Imputed int64
	// ConfidenceSum accumulates max(γ, 1−γ) over imputed records; divide
	// by Imputed for the mean posterior confidence.
	ConfidenceSum float64
	// AmbiguityBins histograms the posterior ambiguity 1 − max(γ, 1−γ) of
	// imputed records in ten uniform bins on [0, 0.5]: bin 0 holds records
	// the posterior is nearly certain about, bin 9 records it finds
	// maximally ambiguous. The serving layer exposes it per calibration.
	AmbiguityBins [AmbiguityBinCount]int64
}

// AmbiguityBinCount is the resolution of Stats.AmbiguityBins.
const AmbiguityBinCount = 10

// Merge folds another counter set into s; the serving engine aggregates
// per-shard stats with it.
func (s *Stats) Merge(o Stats) {
	s.Records += o.Records
	s.LabelsUsed += o.LabelsUsed
	s.Imputed += o.Imputed
	s.ConfidenceSum += o.ConfidenceSum
	for i := range s.AmbiguityBins {
		s.AmbiguityBins[i] += o.AmbiguityBins[i]
	}
}

// MeanConfidence is the average MAP-posterior confidence over imputed
// records, zero when nothing was imputed.
func (s Stats) MeanConfidence() float64 {
	if s.Imputed == 0 {
		return 0
	}
	return s.ConfidenceSum / float64(s.Imputed)
}

// Repairer repairs records with unknown s. It is not safe for concurrent
// use: it owns an RNG stream, like core.Repairer.
type Repairer struct {
	method    Method
	posterior PosteriorFunc
	inner     *core.Repairer
	r         *rng.RNG
	stats     Stats
	dim       int
	// bp is the batched evaluator over the default QDA posterior, set only
	// when the posterior was NOT overridden through Options.Posterior. When
	// present, RepairTable and RepairStream evaluate posteriors in spans
	// through the vec-batched fast path (bit-identical to the scalar
	// posterior, so outputs are byte-identical); a custom posterior may be
	// stateful, so it always runs record by record.
	bp *BatchPosterior
}

// New builds a blind repairer from a designed labelled plan and the research
// table the plan was designed on. The research table is needed to fit the
// default QDA posterior (hard/draw/mix) or the pooled marginals
// (MethodPooled).
func New(plan *core.Plan, research *dataset.Table, r *rng.RNG, opts Options) (*Repairer, error) {
	if plan == nil {
		return nil, errors.New("blind: nil plan")
	}
	if r == nil {
		return nil, errors.New("blind: nil rng")
	}
	rp := &Repairer{method: opts.Method, r: r, dim: plan.Dim}
	switch opts.Method {
	case MethodHard, MethodDraw, MethodMix:
		post := opts.Posterior
		if post == nil {
			qda, err := NewQDA(research)
			if err != nil {
				return nil, err
			}
			post = qda.Posterior
			rp.bp = qda.Batch()
		}
		rp.posterior = post
		inner, err := core.NewRepairer(plan, r, opts.Repair)
		if err != nil {
			return nil, err
		}
		rp.inner = inner
	case MethodPooled:
		pooled, err := PooledPlan(plan, research)
		if err != nil {
			return nil, err
		}
		inner, err := core.NewRepairer(pooled, r, opts.Repair)
		if err != nil {
			return nil, err
		}
		rp.inner = inner
	default:
		return nil, fmt.Errorf("blind: unknown method %v", opts.Method)
	}
	return rp, nil
}

// Samplers bundles the precomputed draw state a calibrated blind repairer
// runs on: the labelled plan's alias tables (hard/draw/mix — both s-rows of
// every cell, mixed at draw time by the record's posterior) and the pooled
// plan's (MethodPooled). Both are immutable and shared across shards.
type Samplers struct {
	Labelled *core.PlanSampler
	Pooled   *core.PlanSampler
}

// NewCalibrated builds a blind repairer from a fitted calibration and
// precomputed samplers instead of the research table — the serving-layer
// constructor. The RNG consumption per record is identical to New's, so a
// calibrated repairer is byte-identical to a research-fitted one at the
// same seed when the calibration was fitted on the same research table.
// Options.Posterior still overrides the calibration's QDA when set; the
// method's sampler must be present in smp.
func NewCalibrated(cal *Calibration, smp Samplers, r *rng.RNG, opts Options) (*Repairer, error) {
	if cal == nil {
		return nil, errors.New("blind: nil calibration")
	}
	if r == nil {
		return nil, errors.New("blind: nil rng")
	}
	rp := &Repairer{method: opts.Method, r: r, dim: cal.dim}
	switch opts.Method {
	case MethodHard, MethodDraw, MethodMix:
		if smp.Labelled == nil {
			return nil, errors.New("blind: method needs the labelled sampler")
		}
		if smp.Labelled.Plan().Dim != cal.dim {
			return nil, fmt.Errorf("blind: labelled sampler dimension %d does not match calibration %d", smp.Labelled.Plan().Dim, cal.dim)
		}
		post := opts.Posterior
		if post == nil {
			post = cal.Posterior
			rp.bp = cal.QDA().Batch()
		}
		rp.posterior = post
		inner, err := core.NewRepairerShared(smp.Labelled, r, opts.Repair)
		if err != nil {
			return nil, err
		}
		rp.inner = inner
	case MethodPooled:
		if smp.Pooled == nil {
			return nil, errors.New("blind: pooled method needs the pooled sampler")
		}
		if smp.Pooled.Plan().Dim != cal.dim {
			return nil, fmt.Errorf("blind: pooled sampler dimension %d does not match calibration %d", smp.Pooled.Plan().Dim, cal.dim)
		}
		inner, err := core.NewRepairerShared(smp.Pooled, r, opts.Repair)
		if err != nil {
			return nil, err
		}
		rp.inner = inner
	default:
		return nil, fmt.Errorf("blind: unknown method %v", opts.Method)
	}
	return rp, nil
}

// Stats returns the counters accumulated so far.
func (rp *Repairer) Stats() Stats { return rp.stats }

// Diagnostics exposes the underlying Algorithm-2 counters.
func (rp *Repairer) Diagnostics() core.Diagnostics { return rp.inner.Diagnostics() }

// RepairRecord repairs one record whose S may be dataset.SUnknown. The
// output record keeps the input's S field: the repair never pretends an
// imputed label is an observation.
func (rp *Repairer) RepairRecord(rec dataset.Record) (dataset.Record, error) {
	out, done, err := rp.repairKnown(rec, nil)
	if done || err != nil {
		return out, err
	}
	gamma, err := rp.posterior(rec)
	if err != nil {
		return dataset.Record{}, fmt.Errorf("blind: posterior: %w", err)
	}
	return rp.repairImputed(rec, out, gamma)
}

// RepairRecordPosterior is RepairRecord with the posterior γ = Pr[s=1|x,u]
// supplied by the caller instead of evaluated here — the serving fast path,
// where BatchPosterior computes whole chunks of posteriors in one pass. It
// consumes the repairer's RNG stream exactly like RepairRecord, so when
// gamma equals what the repairer's own posterior would return the two are
// byte-identical. Records that never consult a posterior — an observed s,
// or the pooled method — ignore gamma entirely and behave exactly like
// RepairRecord.
func (rp *Repairer) RepairRecordPosterior(rec dataset.Record, gamma float64) (dataset.Record, error) {
	out, done, err := rp.repairKnown(rec, nil)
	if done || err != nil {
		return out, err
	}
	return rp.repairImputed(rec, out, gamma)
}

// RepairBatch repairs a span of records under precomputed posteriors
// (gammas[i] pairs with recs[i] and is ignored by records that never
// consult a posterior), writing record i's repair to out[i]. It applies
// RepairRecordPosterior's exact per-record sequence — same RNG
// consumption, same stats accumulation order, so outputs are
// byte-identical — but carves every output feature vector from one backing
// allocation, which is what keeps the serving engines' span loop off the
// per-record allocator. base offsets the record indices in error messages,
// so a caller feeding spans of a larger stream reports absolute positions.
func (rp *Repairer) RepairBatch(base int, recs []dataset.Record, gammas []float64, out []dataset.Record) error {
	if len(gammas) != len(recs) || len(out) != len(recs) {
		return errors.New("blind: batch length mismatch")
	}
	d := rp.dim
	xs := make([]float64, len(recs)*d)
	for i, rec := range recs {
		o, done, err := rp.repairKnown(rec, xs[i*d:(i+1)*d:(i+1)*d])
		if err != nil {
			return fmt.Errorf("blind: record %d: %w", base+i, err)
		}
		if !done {
			if o, err = rp.repairImputed(rec, o, gammas[i]); err != nil {
				return fmt.Errorf("blind: record %d: %w", base+i, err)
			}
		}
		out[i] = o
	}
	return nil
}

// repairKnown handles the posterior-free cases — validation, the pooled
// transport, and records arriving with an observed label. done reports
// that out is complete; otherwise the caller supplies a posterior and
// finishes with repairImputed. x, when non-nil, is the caller-provided
// backing for the output features (the batch path's bulk allocation).
func (rp *Repairer) repairKnown(rec dataset.Record, x []float64) (out dataset.Record, done bool, err error) {
	if rec.U != 0 && rec.U != 1 {
		return dataset.Record{}, false, fmt.Errorf("blind: invalid u label %d", rec.U)
	}
	if len(rec.X) != rp.dim {
		return dataset.Record{}, false, fmt.Errorf("blind: record has %d features, want %d", len(rec.X), rp.dim)
	}
	if x == nil {
		x = make([]float64, len(rec.X))
	}
	out = dataset.Record{X: x, S: rec.S, U: rec.U}
	rp.stats.Records++

	if rp.method == MethodPooled {
		// The pooled plan is identical in both s slots; apply as s = 0.
		for k, x := range rec.X {
			v, err := rp.inner.RepairValue(rec.U, 0, k, x)
			if err != nil {
				return dataset.Record{}, true, err
			}
			out.X[k] = v
		}
		return out, true, nil
	}

	// Hard / draw / mix: a record that arrives with an observed label needs
	// no imputation under any posterior method.
	if rec.S != dataset.SUnknown {
		rp.stats.LabelsUsed++
		for k, x := range rec.X {
			v, err := rp.inner.RepairValue(rec.U, rec.S, k, x)
			if err != nil {
				return dataset.Record{}, true, err
			}
			out.X[k] = v
		}
		return out, true, nil
	}
	return out, false, nil
}

// repairImputed finishes an unlabelled record under posterior gamma,
// accounting the imputation telemetry exactly like the inline path always
// did.
func (rp *Repairer) repairImputed(rec, out dataset.Record, gamma float64) (dataset.Record, error) {
	// NaN passes both comparisons below and would index the ambiguity
	// histogram with int(NaN); reject it explicitly.
	if math.IsNaN(gamma) || gamma < 0 || gamma > 1 {
		return dataset.Record{}, fmt.Errorf("blind: posterior %v outside [0,1]", gamma)
	}
	rp.stats.Imputed++
	conf := gamma
	if gamma < 0.5 {
		conf = 1 - gamma
	}
	rp.stats.ConfidenceSum += conf
	// Ambiguity 1 − conf lies in [0, 0.5]; scale to the bin count.
	bin := int((1 - conf) * 2 * AmbiguityBinCount)
	if bin >= AmbiguityBinCount {
		bin = AmbiguityBinCount - 1
	}
	rp.stats.AmbiguityBins[bin]++

	switch rp.method {
	case MethodHard:
		s := 0
		if gamma >= 0.5 {
			s = 1
		}
		for k, x := range rec.X {
			v, err := rp.inner.RepairValue(rec.U, s, k, x)
			if err != nil {
				return dataset.Record{}, err
			}
			out.X[k] = v
		}
	case MethodDraw:
		s := 0
		if rp.r.Bernoulli(gamma) {
			s = 1
		}
		for k, x := range rec.X {
			v, err := rp.inner.RepairValue(rec.U, s, k, x)
			if err != nil {
				return dataset.Record{}, err
			}
			out.X[k] = v
		}
	case MethodMix:
		for k, x := range rec.X {
			s := 0
			if rp.r.Bernoulli(gamma) {
				s = 1
			}
			v, err := rp.inner.RepairValue(rec.U, s, k, x)
			if err != nil {
				return dataset.Record{}, err
			}
			out.X[k] = v
		}
	}
	return out, nil
}

// blindSpan is the span size of the batched table/stream paths — the same
// block the serving engines and BatchPosterior use, so the gathered
// right-hand sides stay cache-resident.
const blindSpan = 1024

// batchable reports whether whole spans may run through the batched
// posterior path: the pooled method never consults a posterior at all, and
// the posterior methods qualify exactly when the default QDA is in use
// (BatchPosterior is bit-identical to it; a caller-supplied PosteriorFunc
// may be stateful and keeps the per-record order).
func (rp *Repairer) batchable() bool {
	return rp.method == MethodPooled || rp.bp != nil
}

// spanValid reports whether every record of a span would pass the
// per-record validation (u label and dimension — the checks both
// BatchPosterior and repairKnown apply up front). Spans containing an
// invalid record fall back to the scalar loop so error positions and the
// partial-progress semantics match the per-record path exactly.
func (rp *Repairer) spanValid(recs []dataset.Record) bool {
	for _, rec := range recs {
		if (rec.U != 0 && rec.U != 1) || len(rec.X) != rp.dim {
			return false
		}
	}
	return true
}

// spanPosteriors fills gammas[i] for every unlabelled record of a valid
// span through the batched QDA evaluator. Labelled slots (and every slot,
// for posterior-free methods) are not written — the reused buffer may
// carry stale values from earlier spans there — and are ignored
// downstream: RepairBatch never consults gamma for a record that arrives
// with a label.
func (rp *Repairer) spanPosteriors(recs []dataset.Record, gammas []float64) error {
	if rp.bp == nil || rp.method == MethodPooled {
		return nil
	}
	// Like the scalar path, only unlabelled records consult the posterior:
	// a mostly-labelled archive must not pay for discarded soft labels.
	// All-unlabelled spans (the common blind case) batch directly; mixed
	// spans gather the unlabelled subset and scatter the results back.
	unl := 0
	for _, rec := range recs {
		if rec.S == dataset.SUnknown {
			unl++
		}
	}
	switch {
	case unl == 0:
		return nil
	case unl == len(recs):
		return rp.bp.Posteriors(recs, gammas[:len(recs)])
	default:
		sub := make([]dataset.Record, 0, unl)
		idx := make([]int, 0, unl)
		for i, rec := range recs {
			if rec.S == dataset.SUnknown {
				sub = append(sub, rec)
				idx = append(idx, i)
			}
		}
		sg := make([]float64, unl)
		if err := rp.bp.Posteriors(sub, sg); err != nil {
			return err
		}
		for j, i := range idx {
			gammas[i] = sg[j]
		}
		return nil
	}
}

// RepairTable repairs every record of a table in order; records may be
// unlabelled. Cardinality and the (known) labels are preserved. Under the
// default QDA posterior the table runs in spans through BatchPosterior +
// RepairBatch — the same vec-batched fast path the serving engines use,
// byte-identical to the per-record sequence (identical RNG consumption and
// stats accumulation).
func (rp *Repairer) RepairTable(t *dataset.Table) (*dataset.Table, error) {
	if t == nil {
		return nil, errors.New("blind: nil table")
	}
	if t.Dim() != rp.dim {
		return nil, fmt.Errorf("blind: table dimension %d does not match plan %d", t.Dim(), rp.dim)
	}
	out, err := dataset.NewTable(t.Dim(), t.Names())
	if err != nil {
		return nil, err
	}
	recs := t.Records()
	var gammas []float64
	var span []dataset.Record
	if rp.batchable() {
		gammas = make([]float64, blindSpan)
		span = make([]dataset.Record, blindSpan)
	}
	for lo := 0; lo < len(recs); lo += blindSpan {
		hi := lo + blindSpan
		if hi > len(recs) {
			hi = len(recs)
		}
		if rp.batchable() && rp.spanValid(recs[lo:hi]) {
			if err := rp.spanPosteriors(recs[lo:hi], gammas); err != nil {
				return nil, fmt.Errorf("blind: posterior (span at %d): %w", lo, err)
			}
			if err := rp.RepairBatch(lo, recs[lo:hi], gammas[:hi-lo], span[:hi-lo]); err != nil {
				return nil, err
			}
			for i, rec := range span[:hi-lo] {
				if err := out.Append(rec); err != nil {
					return nil, fmt.Errorf("blind: record %d: %w", lo+i, err)
				}
			}
			continue
		}
		// Scalar fallback: custom posterior, or a span carrying a record
		// that must fail with the per-record error position.
		for i := lo; i < hi; i++ {
			rec, err := rp.RepairRecord(recs[i])
			if err != nil {
				return nil, fmt.Errorf("blind: record %d: %w", i, err)
			}
			if err := out.Append(rec); err != nil {
				return nil, fmt.Errorf("blind: record %d: %w", i, err)
			}
		}
	}
	return out, nil
}

// RepairStream consumes a record stream — possibly unlabelled — and emits
// repaired records to sink with O(1) memory, mirroring
// core.Repairer.RepairStream for the torrent deployment mode. Each record
// is repaired and sunk as soon as it arrives — the stream path never
// buffers, because a live torrent's downstream must not wait on a span
// filling up. Under the default QDA posterior, each unlabelled record's
// soft label still runs through the batched evaluator (a length-1 batch is
// bit-identical to the scalar posterior and skips its per-record prior
// logs), so the output is byte-identical to the per-record reference
// either way; whole-span batching is RepairTable's job.
func (rp *Repairer) RepairStream(in dataset.Stream, sink func(dataset.Record) error) (int, error) {
	if in.Dim() != rp.dim {
		return 0, fmt.Errorf("blind: stream dimension %d does not match plan %d", in.Dim(), rp.dim)
	}
	var one [1]dataset.Record
	var gamma [1]float64
	n := 0
	for {
		rec, err := in.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		var repaired dataset.Record
		if rp.bp != nil && rp.method != MethodPooled && rec.S == dataset.SUnknown &&
			(rec.U == 0 || rec.U == 1) && len(rec.X) == rp.dim {
			one[0] = rec
			if err := rp.bp.Posteriors(one[:], gamma[:]); err != nil {
				return n, fmt.Errorf("blind: stream record %d: posterior: %w", n, err)
			}
			repaired, err = rp.RepairRecordPosterior(rec, gamma[0])
		} else {
			// Labelled or posterior-free records never consult a posterior;
			// invalid records take this path too so the error position and
			// text match the per-record reference exactly.
			repaired, err = rp.RepairRecord(rec)
		}
		if err != nil {
			return n, fmt.Errorf("blind: stream record %d: %w", n, err)
		}
		if err := sink(repaired); err != nil {
			return n, err
		}
		n++
	}
}
