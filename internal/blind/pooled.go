package blind

import (
	"errors"
	"fmt"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/kde"
	"otfair/internal/ot"
)

// PooledPlan turns a designed core.Plan into a fully group-blind plan: for
// every (u, feature) cell it replaces the two s-indexed plans with a single
// OT plan from the pooled u-conditional mixture marginal
//
//	f(x|u) = Σ_s Pr̂[s|u]·f(x|s,u)           (Eq. 10)
//
// to the same barycentric target ν the labelled plan transports to. Applying
// it needs no s label at all — the Zhou–Marecek-style group-blind transport
// the paper's Section VI points to ([37]). The price is that the two
// s-conditionals are displaced by a common map, so the repair quenches less
// of the conditional dependence than a labelled or posterior-weighted one;
// the blind ablation experiment quantifies the gap.
//
// The returned plan shares the supports, barycenters and options of the
// input; both s slots of every cell hold the identical pooled transport, so
// core.Repairer machinery applies it unchanged whatever label a record
// carries.
func PooledPlan(plan *core.Plan, research *dataset.Table) (*core.Plan, error) {
	if plan == nil {
		return nil, errors.New("blind: nil plan")
	}
	if research == nil || research.Len() == 0 {
		return nil, errors.New("blind: empty research table")
	}
	if research.Dim() != plan.Dim {
		return nil, fmt.Errorf("blind: research dimension %d does not match plan %d", research.Dim(), plan.Dim)
	}
	out := &core.Plan{
		Dim:        plan.Dim,
		Names:      append([]string(nil), plan.Names...),
		Opts:       plan.Opts,
		GroupSizes: plan.GroupSizes,
	}
	for u := 0; u < 2; u++ {
		out.Cells[u] = make([]*core.Cell, plan.Dim)
		for k := 0; k < plan.Dim; k++ {
			cell, err := pooledCell(plan.Cell(u, k), research, u, k, plan.Opts)
			if err != nil {
				return nil, fmt.Errorf("blind: pooling (u=%d, k=%d): %w", u, k, err)
			}
			out.Cells[u][k] = cell
		}
	}
	return out, nil
}

// pooledCell rebuilds one cell around the pooled u-marginal.
func pooledCell(c *core.Cell, research *dataset.Table, u, k int, opts core.Options) (*core.Cell, error) {
	if c.Degenerate {
		return c, nil
	}
	pmf, h, err := pooledMarginalFor(c, research, u, k, opts)
	if err != nil {
		return nil, err
	}
	return pooledCellFromPMF(c, pmf, h)
}

// pooledMarginalFor estimates the pooled u-conditional marginal of Eq. (10)
// on the cell's support grid, returning the pmf and the KDE bandwidth it
// was smoothed with. Calibration fitting persists exactly this pair, so a
// calibration-reconstructed pooled plan is identical to a research-fitted
// one.
func pooledMarginalFor(c *core.Cell, research *dataset.Table, u, k int, opts core.Options) ([]float64, float64, error) {
	pooled := research.UColumn(u, k)
	est, err := kde.New(pooled, opts.Kernel, opts.Bandwidth)
	if err != nil {
		return nil, 0, fmt.Errorf("pooled KDE: %w", err)
	}
	pmf, err := est.GridPMF(c.Q)
	if err != nil {
		return nil, 0, fmt.Errorf("pooled interpolation: %w", err)
	}
	return pmf, est.Bandwidth(), nil
}

// pooledCellFromPMF assembles the group-blind cell from an already
// estimated pooled marginal: one monotone transport from the pooled pmf to
// the cell's barycentric target, planted in both s slots.
func pooledCellFromPMF(c *core.Cell, pmf []float64, h float64) (*core.Cell, error) {
	if len(pmf) != len(c.Q) {
		return nil, fmt.Errorf("pooled marginal has %d states, support has %d", len(pmf), len(c.Q))
	}
	mu, err := ot.OnGrid(c.Q, pmf)
	if err != nil {
		return nil, err
	}
	nu, err := ot.OnGrid(c.Q, c.Bary)
	if err != nil {
		return nil, err
	}
	plan, err := ot.Monotone(mu, nu)
	if err != nil {
		return nil, fmt.Errorf("pooled transport: %w", err)
	}
	return &core.Cell{
		Q:      c.Q,
		PMF:    [2][]float64{pmf, pmf},
		Bary:   c.Bary,
		Target: [2][]float64{c.Bary, c.Bary},
		Plans:  [2]*ot.Plan{plan, plan},
		H:      [2]float64{h, h},
	}, nil
}
