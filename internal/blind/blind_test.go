package blind

import (
	"math"
	"testing"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/fairmetrics"
	"otfair/internal/rng"
	"otfair/internal/simulate"
)

// designOnScenario draws research/archive tables from the paper's simulation
// scenario and designs the labelled plan.
func designOnScenario(t *testing.T, seed uint64, nR, nA int) (*core.Plan, *dataset.Table, *dataset.Table) {
	t.Helper()
	sampler, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	research, archive, err := sampler.ResearchArchive(r, nR, nA)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Design(research, core.Options{NQ: 50})
	if err != nil {
		t.Fatal(err)
	}
	return plan, research, archive
}

// stripS returns a copy of the table with all s labels removed.
func stripS(t *testing.T, in *dataset.Table) *dataset.Table {
	t.Helper()
	out := in.DropS()
	for _, rec := range out.Records() {
		if rec.S != dataset.SUnknown {
			t.Fatal("DropS left a label behind")
		}
	}
	return out
}

// reattachS copies the true labels from src onto dst record by record so E —
// which conditions on the true s — can be evaluated on blind-repaired data.
func reattachS(t *testing.T, dst, src *dataset.Table) *dataset.Table {
	t.Helper()
	if dst.Len() != src.Len() {
		t.Fatalf("length mismatch %d vs %d", dst.Len(), src.Len())
	}
	out := dst.Clone()
	for i := range out.Records() {
		out.Records()[i].S = src.At(i).S
	}
	return out
}

func TestParseMethodRoundTrip(t *testing.T) {
	for _, m := range []Method{MethodHard, MethodDraw, MethodMix, MethodPooled} {
		got, err := ParseMethod(m.String())
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got != m {
			t.Errorf("ParseMethod(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if _, err := ParseMethod("nonsense"); err == nil {
		t.Error("want error for unknown method")
	}
	if m, err := ParseMethod(""); err != nil || m != MethodHard {
		t.Errorf("empty name: got (%v, %v), want (hard, nil)", m, err)
	}
	if Method(99).String() == "" {
		t.Error("unknown method must still render")
	}
}

func TestNewErrors(t *testing.T) {
	plan, research, _ := designOnScenario(t, 1, 400, 100)
	r := rng.New(2)
	if _, err := New(nil, research, r, Options{}); err == nil {
		t.Error("nil plan: want error")
	}
	if _, err := New(plan, research, nil, Options{}); err == nil {
		t.Error("nil rng: want error")
	}
	if _, err := New(plan, nil, r, Options{Method: MethodPooled}); err == nil {
		t.Error("pooled without research: want error")
	}
	if _, err := New(plan, nil, r, Options{Method: MethodHard}); err == nil {
		t.Error("hard without research or posterior: want error")
	}
	if _, err := New(plan, research, r, Options{Method: Method(42)}); err == nil {
		t.Error("unknown method: want error")
	}
	// A custom posterior removes the research-table requirement.
	post := func(dataset.Record) (float64, error) { return 0.5, nil }
	if _, err := New(plan, nil, r, Options{Method: MethodDraw, Posterior: post}); err != nil {
		t.Errorf("custom posterior without research: %v", err)
	}
}

func TestRepairRecordValidation(t *testing.T) {
	plan, research, _ := designOnScenario(t, 3, 400, 100)
	rp, err := New(plan, research, rng.New(4), Options{Method: MethodHard})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rp.RepairRecord(dataset.Record{X: []float64{0, 0}, U: 5}); err == nil {
		t.Error("bad u: want error")
	}
	if _, err := rp.RepairRecord(dataset.Record{X: []float64{0}, U: 0}); err == nil {
		t.Error("wrong dimension: want error")
	}
}

func TestBadPosteriorSurfaces(t *testing.T) {
	plan, research, _ := designOnScenario(t, 5, 400, 100)
	bad := func(dataset.Record) (float64, error) { return 1.5, nil }
	rp, err := New(plan, research, rng.New(6), Options{Method: MethodDraw, Posterior: bad})
	if err != nil {
		t.Fatal(err)
	}
	rec := dataset.Record{X: []float64{0, 0}, U: 0, S: dataset.SUnknown}
	if _, err := rp.RepairRecord(rec); err == nil {
		t.Error("out-of-range posterior: want error")
	}
}

func TestBlindRepairPreservesShape(t *testing.T) {
	plan, research, archive := designOnScenario(t, 7, 500, 600)
	unlabelled := stripS(t, archive)
	for _, method := range []Method{MethodHard, MethodDraw, MethodMix, MethodPooled} {
		rp, err := New(plan, research, rng.New(8), Options{Method: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		out, err := rp.RepairTable(unlabelled)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if out.Len() != unlabelled.Len() {
			t.Errorf("%v: cardinality %d, want %d", method, out.Len(), unlabelled.Len())
		}
		for i, rec := range out.Records() {
			in := unlabelled.At(i)
			if rec.U != in.U {
				t.Fatalf("%v: record %d u changed", method, i)
			}
			if rec.S != dataset.SUnknown {
				t.Fatalf("%v: record %d fabricated an s label", method, i)
			}
			if len(rec.X) != 2 {
				t.Fatalf("%v: record %d dimension %d", method, i, len(rec.X))
			}
		}
		if st := rp.Stats(); st.Records != int64(unlabelled.Len()) {
			t.Errorf("%v: stats.Records = %d, want %d", method, st.Records, unlabelled.Len())
		}
	}
}

func TestBlindRepairedValuesLiveOnSupport(t *testing.T) {
	plan, research, archive := designOnScenario(t, 9, 500, 400)
	unlabelled := stripS(t, archive)
	rp, err := New(plan, research, rng.New(10), Options{Method: MethodPooled})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rp.RepairTable(unlabelled)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range out.Records() {
		for k, v := range rec.X {
			cell := plan.Cell(rec.U, k)
			found := false
			for _, q := range cell.Q {
				if v == q {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("record %d feature %d: value %v not on support", i, k, v)
			}
		}
	}
}

// separatedScenario is the paper's scenario with the s-groups pulled 4σ
// apart, so the QDA posterior is near-0/1 and label imputation is almost
// exact — the regime where blind repair should approach labelled repair.
func separatedScenario() simulate.Scenario {
	return simulate.Scenario{
		Dim: 2,
		Mean: map[dataset.Group][]float64{
			{U: 0, S: 0}: {-4, -4},
			{U: 0, S: 1}: {0, 0},
			{U: 1, S: 0}: {4, 4},
			{U: 1, S: 1}: {0, 0},
		},
		PrU0:       0.5,
		PrS0GivenU: [2]float64{0.3, 0.1},
	}
}

func designOnSeparated(t *testing.T, seed uint64, nR, nA int) (*core.Plan, *dataset.Table, *dataset.Table) {
	t.Helper()
	sampler, err := simulate.NewSampler(separatedScenario())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	research, archive, err := sampler.ResearchArchive(r, nR, nA)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Design(research, core.Options{NQ: 50})
	if err != nil {
		t.Fatal(err)
	}
	return plan, research, archive
}

func TestPosteriorMethodsQuenchEWhenSeparated(t *testing.T) {
	plan, research, archive := designOnSeparated(t, 11, 800, 2000)
	unlabelled := stripS(t, archive)
	cfg := fairmetrics.Config{Estimator: fairmetrics.EstimatorKDE}

	before, err := fairmetrics.E(archive, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []Method{MethodHard, MethodDraw, MethodMix} {
		rp, err := New(plan, research, rng.New(12), Options{Method: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		out, err := rp.RepairTable(unlabelled)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		after, err := fairmetrics.E(reattachS(t, out, archive), cfg)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if after >= before/2 {
			t.Errorf("%v: E %v → %v, want at least a 2× reduction", method, before, after)
		}
		if st := rp.Stats(); st.Imputed == 0 {
			t.Errorf("%v: no imputations recorded on an unlabelled archive", method)
		}
	}
}

func TestPosteriorMethodsReduceEOnOverlappingScenario(t *testing.T) {
	// On the paper's own scenario the s-groups are only ~1σ apart, so the
	// posterior is soft and blind repair is necessarily partial: E must
	// still fall, but nowhere near the labelled repair's reduction. This is
	// the quantitative price of missing labels that Section VI anticipates.
	plan, research, archive := designOnScenario(t, 11, 500, 2000)
	unlabelled := stripS(t, archive)
	cfg := fairmetrics.Config{Estimator: fairmetrics.EstimatorKDE}

	before, err := fairmetrics.E(archive, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []Method{MethodHard, MethodDraw, MethodMix} {
		rp, err := New(plan, research, rng.New(12), Options{Method: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		out, err := rp.RepairTable(unlabelled)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		after, err := fairmetrics.E(reattachS(t, out, archive), cfg)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if after >= before*0.8 {
			t.Errorf("%v: E %v → %v, want at least a 20%% reduction", method, before, after)
		}
	}
}

func TestPooledAchievesMarginalParity(t *testing.T) {
	// The group-blind pooled transport cannot promise conditional
	// independence (a common map preserves the s-ordering); its contract is
	// marginal parity: the repaired pooled u-marginal must sit close to the
	// barycentric target. Verify via mean/variance of the repaired pooled
	// column against the target pmf's moments.
	plan, research, archive := designOnSeparated(t, 25, 800, 4000)
	unlabelled := stripS(t, archive)
	rp, err := New(plan, research, rng.New(26), Options{Method: MethodPooled})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rp.RepairTable(unlabelled)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		for k := 0; k < 2; k++ {
			cell := plan.Cell(u, k)
			var wantMean, wantM2 float64
			for i, p := range cell.Bary {
				wantMean += p * cell.Q[i]
				wantM2 += p * cell.Q[i] * cell.Q[i]
			}
			wantStd := math.Sqrt(wantM2 - wantMean*wantMean)

			col := out.UColumn(u, k)
			gotMean := mean(col)
			var gotM2 float64
			for _, v := range col {
				gotM2 += (v - gotMean) * (v - gotMean)
			}
			gotStd := math.Sqrt(gotM2 / float64(len(col)))

			if math.Abs(gotMean-wantMean) > 0.25 {
				t.Errorf("(u=%d,k=%d): repaired pooled mean %v, target %v", u, k, gotMean, wantMean)
			}
			if math.Abs(gotStd-wantStd) > 0.35 {
				t.Errorf("(u=%d,k=%d): repaired pooled std %v, target %v", u, k, gotStd, wantStd)
			}
		}
	}
}

func TestHardMethodTrustsObservedLabels(t *testing.T) {
	plan, research, archive := designOnScenario(t, 13, 500, 300)
	rp, err := New(plan, research, rng.New(14), Options{Method: MethodHard})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rp.RepairTable(archive); err != nil {
		t.Fatal(err)
	}
	st := rp.Stats()
	if st.Imputed != 0 {
		t.Errorf("labelled archive: %d imputations, want 0", st.Imputed)
	}
	if st.LabelsUsed != int64(archive.Len()) {
		t.Errorf("LabelsUsed = %d, want %d", st.LabelsUsed, archive.Len())
	}
}

func TestHardMatchesLabelledRepairWhenPosteriorIsSharp(t *testing.T) {
	// With well-separated groups the QDA posterior is near-0/1, so MethodHard
	// on unlabelled data must agree with the labelled repair in distribution:
	// compare per-group means of the two repaired archives.
	plan, research, archive := designOnScenario(t, 15, 800, 3000)
	unlabelled := stripS(t, archive)

	inner, err := core.NewRepairer(plan, rng.New(16), core.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	labelledOut, err := inner.RepairTable(archive)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := New(plan, research, rng.New(16), Options{Method: MethodHard})
	if err != nil {
		t.Fatal(err)
	}
	blindOut, err := rp.RepairTable(unlabelled)
	if err != nil {
		t.Fatal(err)
	}
	blindOut = reattachS(t, blindOut, archive)
	for u := 0; u < 2; u++ {
		for k := 0; k < 2; k++ {
			a := mean(labelledOut.UColumn(u, k))
			b := mean(blindOut.UColumn(u, k))
			if math.Abs(a-b) > 0.15 {
				t.Errorf("(u=%d,k=%d): labelled mean %v vs blind-hard mean %v", u, k, a, b)
			}
		}
	}
}

func TestPooledCollapsesGroupGap(t *testing.T) {
	// The pooled transport sends the pooled u-marginal to the barycenter; the
	// repaired s-conditional means must be closer together than before.
	plan, research, archive := designOnScenario(t, 17, 500, 4000)
	unlabelled := stripS(t, archive)
	rp, err := New(plan, research, rng.New(18), Options{Method: MethodPooled})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rp.RepairTable(unlabelled)
	if err != nil {
		t.Fatal(err)
	}
	out = reattachS(t, out, archive)
	for k := 0; k < 2; k++ {
		// u=0 is the group with a genuine s-gap in the paper's scenario.
		g0 := dataset.Group{U: 0, S: 0}
		g1 := dataset.Group{U: 0, S: 1}
		gapBefore := math.Abs(mean(archive.GroupColumn(g0, k)) - mean(archive.GroupColumn(g1, k)))
		gapAfter := math.Abs(mean(out.GroupColumn(g0, k)) - mean(out.GroupColumn(g1, k)))
		if gapAfter >= gapBefore {
			t.Errorf("k=%d: pooled repair did not shrink the s-gap (%v → %v)", k, gapBefore, gapAfter)
		}
	}
}

func TestPosteriorMethodsBeatPooled(t *testing.T) {
	// Posterior-informed repair uses strictly more information than pooled
	// transport; on the well-separated simulation it must quench E harder.
	plan, research, archive := designOnScenario(t, 19, 800, 4000)
	unlabelled := stripS(t, archive)
	cfg := fairmetrics.Config{Estimator: fairmetrics.EstimatorKDE}

	es := map[Method]float64{}
	for _, method := range []Method{MethodDraw, MethodPooled} {
		rp, err := New(plan, research, rng.New(20), Options{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		out, err := rp.RepairTable(unlabelled)
		if err != nil {
			t.Fatal(err)
		}
		e, err := fairmetrics.E(reattachS(t, out, archive), cfg)
		if err != nil {
			t.Fatal(err)
		}
		es[method] = e
	}
	if es[MethodDraw] >= es[MethodPooled] {
		t.Errorf("draw E = %v not below pooled E = %v on separated groups", es[MethodDraw], es[MethodPooled])
	}
}

func TestRepairStreamMatchesTable(t *testing.T) {
	plan, research, archive := designOnScenario(t, 21, 500, 300)
	unlabelled := stripS(t, archive)

	rp1, err := New(plan, research, rng.New(22), Options{Method: MethodMix})
	if err != nil {
		t.Fatal(err)
	}
	viaTable, err := rp1.RepairTable(unlabelled)
	if err != nil {
		t.Fatal(err)
	}

	rp2, err := New(plan, research, rng.New(22), Options{Method: MethodMix})
	if err != nil {
		t.Fatal(err)
	}
	var got []dataset.Record
	n, err := rp2.RepairStream(dataset.NewSliceStream(unlabelled), func(rec dataset.Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != unlabelled.Len() {
		t.Fatalf("stream repaired %d records, want %d", n, unlabelled.Len())
	}
	// Identical seed ⇒ identical draws ⇒ identical outputs.
	for i, rec := range got {
		want := viaTable.At(i)
		for k := range rec.X {
			if rec.X[k] != want.X[k] {
				t.Fatalf("record %d feature %d: stream %v vs table %v", i, k, rec.X[k], want.X[k])
			}
		}
	}
}

func TestStatsMeanConfidence(t *testing.T) {
	var s Stats
	if s.MeanConfidence() != 0 {
		t.Error("empty stats must report zero confidence")
	}
	s.Imputed = 2
	s.ConfidenceSum = 1.8
	if math.Abs(s.MeanConfidence()-0.9) > 1e-12 {
		t.Errorf("MeanConfidence = %v, want 0.9", s.MeanConfidence())
	}
}

func TestPooledPlanErrors(t *testing.T) {
	plan, research, _ := designOnScenario(t, 23, 400, 100)
	if _, err := PooledPlan(nil, research); err == nil {
		t.Error("nil plan: want error")
	}
	if _, err := PooledPlan(plan, nil); err == nil {
		t.Error("nil research: want error")
	}
	wrongDim := dataset.MustTable(3, nil)
	_ = wrongDim.Append(dataset.Record{X: []float64{1, 2, 3}, S: 0, U: 0})
	if _, err := PooledPlan(plan, wrongDim); err == nil {
		t.Error("dimension mismatch: want error")
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
