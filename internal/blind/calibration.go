package blind

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"otfair/internal/core"
	"otfair/internal/dataset"
)

// A Calibration is the serializable fitted state a blind deployment needs
// beyond the labelled plan itself: the QDA posterior Pr[s|x,u] (for the
// hard/draw/mix methods) and the pooled u-conditional marginals on the
// plan's support grids (for the group-blind pooled transport), plus the
// research-time confidence baseline that serving-side drift is measured
// against.
//
// Like a plan, a calibration is designed once on the research set and then
// deployed against unbounded archival torrents — so it gets the same
// artefact treatment: canonical JSON bytes, a 128-bit content fingerprint,
// and a content-addressed store namespace (planstore.CalibrationStore).
// A calibration is bound to the plan it was fitted against (PlanID): the
// pooled marginals live on that plan's support grids.
type Calibration struct {
	planID             string
	dim                int
	qda                *QDA
	pooled             [2][]pooledMarginal
	researchConfidence float64
	researchRecords    int
}

// pooledMarginal is the persisted Eq.-(10) mixture marginal for one
// (u, feature) cell: the pmf on the cell's support grid and the KDE
// bandwidth it was smoothed with. Degenerate cells need no transport and
// store nothing.
type pooledMarginal struct {
	pmf        []float64
	h          float64
	degenerate bool
}

// NewCalibration fits a blind calibration on a fully labelled research
// table for the given designed plan: the QDA posterior, the pooled
// marginal of every non-degenerate (u, feature) cell, and the mean MAP
// confidence of the posterior on the research records themselves.
func NewCalibration(plan *core.Plan, research *dataset.Table) (*Calibration, error) {
	if plan == nil {
		return nil, errors.New("blind: nil plan")
	}
	if research == nil || research.Len() == 0 {
		return nil, errors.New("blind: empty research table")
	}
	if research.Dim() != plan.Dim {
		return nil, fmt.Errorf("blind: research dimension %d does not match plan %d", research.Dim(), plan.Dim)
	}
	planID, err := plan.Fingerprint()
	if err != nil {
		return nil, err
	}
	qda, err := NewQDA(research)
	if err != nil {
		return nil, err
	}
	cal := &Calibration{planID: planID, dim: plan.Dim, qda: qda}
	for u := 0; u < 2; u++ {
		cal.pooled[u] = make([]pooledMarginal, plan.Dim)
		for k := 0; k < plan.Dim; k++ {
			cell := plan.Cell(u, k)
			if cell.Degenerate {
				cal.pooled[u][k] = pooledMarginal{degenerate: true}
				continue
			}
			pmf, h, err := pooledMarginalFor(cell, research, u, k, plan.Opts)
			if err != nil {
				return nil, fmt.Errorf("blind: calibrating (u=%d, k=%d): %w", u, k, err)
			}
			cal.pooled[u][k] = pooledMarginal{pmf: pmf, h: h}
		}
	}
	// Research-time confidence baseline: the mean MAP-posterior confidence
	// over the records the posterior was fitted on. Serving reports the
	// drift of the live mean against this number.
	sum := 0.0
	for _, rec := range research.Records() {
		gamma, err := qda.Posterior(rec)
		if err != nil {
			return nil, err
		}
		sum += math.Max(gamma, 1-gamma)
	}
	cal.researchConfidence = sum / float64(research.Len())
	cal.researchRecords = research.Len()
	return cal, nil
}

// PlanID is the content fingerprint of the plan the calibration was fitted
// against.
func (c *Calibration) PlanID() string { return c.planID }

// Dim is the feature dimension the calibration covers.
func (c *Calibration) Dim() int { return c.dim }

// ResearchConfidence is the mean MAP-posterior confidence on the research
// set at fit time — the baseline per-calibration drift is measured from.
func (c *Calibration) ResearchConfidence() float64 { return c.researchConfidence }

// ResearchRecords is the research-set size the calibration was fitted on.
func (c *Calibration) ResearchRecords() int { return c.researchRecords }

// Posterior returns Pr[s = 1 | x, u] for one record, from the fitted QDA.
func (c *Calibration) Posterior(rec dataset.Record) (float64, error) {
	return c.qda.Posterior(rec)
}

// QDA exposes the fitted posterior model.
func (c *Calibration) QDA() *QDA { return c.qda }

// PooledPlan reconstructs the group-blind pooled plan from the persisted
// marginals, without the research table: each non-degenerate cell solves
// one monotone transport from its stored pooled pmf to the plan's
// barycentric target — exactly the cell PooledPlan builds from research
// data, so the two construction paths yield identical plans.
func (c *Calibration) PooledPlan(plan *core.Plan) (*core.Plan, error) {
	if plan == nil {
		return nil, errors.New("blind: nil plan")
	}
	if plan.Dim != c.dim {
		return nil, fmt.Errorf("blind: calibration dimension %d does not match plan %d", c.dim, plan.Dim)
	}
	out := &core.Plan{
		Dim:        plan.Dim,
		Names:      append([]string(nil), plan.Names...),
		Opts:       plan.Opts,
		GroupSizes: plan.GroupSizes,
	}
	for u := 0; u < 2; u++ {
		out.Cells[u] = make([]*core.Cell, plan.Dim)
		for k := 0; k < plan.Dim; k++ {
			cell := plan.Cell(u, k)
			pm := c.pooled[u][k]
			if cell.Degenerate {
				if !pm.degenerate {
					return nil, fmt.Errorf("blind: calibration expects non-degenerate cell (u=%d, k=%d)", u, k)
				}
				out.Cells[u][k] = cell
				continue
			}
			if pm.degenerate {
				return nil, fmt.Errorf("blind: calibration expects degenerate cell (u=%d, k=%d)", u, k)
			}
			pc, err := pooledCellFromPMF(cell, pm.pmf, pm.h)
			if err != nil {
				return nil, fmt.Errorf("blind: pooling (u=%d, k=%d): %w", u, k, err)
			}
			out.Cells[u][k] = pc
		}
	}
	return out, nil
}

// calibrationVersion is bumped when the serialized layout changes
// incompatibly.
const calibrationVersion = 1

type calibrationJSON struct {
	Version            int                `json:"version"`
	Plan               string             `json:"plan"`
	Dim                int                `json:"dim"`
	Prior              [2][2]float64      `json:"prior"`
	Components         [2][2]gaussianJSON `json:"components"`
	Pooled             [2][]pooledJSON    `json:"pooled"`
	ResearchConfidence float64            `json:"research_confidence"`
	ResearchRecords    int                `json:"research_records"`
}

type gaussianJSON struct {
	Mean    []float64 `json:"mean"`
	Chol    []float64 `json:"chol"`
	LogNorm float64   `json:"log_norm"`
}

type pooledJSON struct {
	PMF        []float64 `json:"pmf,omitempty"`
	H          float64   `json:"h,omitempty"`
	Degenerate bool      `json:"degenerate,omitempty"`
}

// WriteJSON serializes the calibration. Field order is fixed and slices are
// in fixed (u, s|k) order, so the bytes are a pure function of the fitted
// state — the property the content-addressed calibration store keys on.
func (c *Calibration) WriteJSON(w io.Writer) error {
	out := calibrationJSON{
		Version:            calibrationVersion,
		Plan:               c.planID,
		Dim:                c.dim,
		Prior:              c.qda.prior,
		ResearchConfidence: c.researchConfidence,
		ResearchRecords:    c.researchRecords,
	}
	for u := 0; u < 2; u++ {
		for s := 0; s < 2; s++ {
			g := c.qda.comp[u][s]
			out.Components[u][s] = gaussianJSON{Mean: g.mean, Chol: g.chol, LogNorm: g.logNorm}
		}
		out.Pooled[u] = make([]pooledJSON, len(c.pooled[u]))
		for k, pm := range c.pooled[u] {
			out.Pooled[u][k] = pooledJSON{PMF: pm.pmf, H: pm.h, Degenerate: pm.degenerate}
		}
	}
	return json.NewEncoder(w).Encode(out)
}

// MarshalCanonical returns the calibration's canonical serialized form —
// exactly the bytes WriteJSON emits.
func (c *Calibration) MarshalCanonical() ([]byte, error) {
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Fingerprint returns the 128-bit content hash of the canonical serialized
// calibration as a 32-character lowercase hex ID — the key the calibration
// store and the serving layer address calibrations by.
func (c *Calibration) Fingerprint() (string, error) {
	raw, err := c.MarshalCanonical()
	if err != nil {
		return "", err
	}
	return core.FingerprintBytes(raw), nil
}

// ReadCalibration deserializes a calibration written by WriteJSON,
// re-validating every component so a corrupted or hand-edited file fails
// loudly rather than soft-labelling archives with garbage.
func ReadCalibration(r io.Reader) (*Calibration, error) {
	var in calibrationJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("blind: decoding calibration: %w", err)
	}
	if in.Version != calibrationVersion {
		return nil, fmt.Errorf("blind: calibration version %d unsupported (want %d)", in.Version, calibrationVersion)
	}
	d := in.Dim
	if d <= 0 {
		return nil, errors.New("blind: calibration has non-positive dimension")
	}
	if in.Plan == "" {
		return nil, errors.New("blind: calibration carries no plan fingerprint")
	}
	qda := &QDA{dim: d, prior: in.Prior}
	for u := 0; u < 2; u++ {
		p0, p1 := in.Prior[u][0], in.Prior[u][1]
		if p0 < 0 || p1 < 0 || math.Abs(p0+p1-1) > 1e-9 {
			return nil, fmt.Errorf("blind: calibration priors for u=%d are not a distribution: %v, %v", u, p0, p1)
		}
		for s := 0; s < 2; s++ {
			g := in.Components[u][s]
			if len(g.Mean) != d {
				return nil, fmt.Errorf("blind: component (u=%d, s=%d) mean has %d entries, want %d", u, s, len(g.Mean), d)
			}
			if len(g.Chol) != d*(d+1)/2 {
				return nil, fmt.Errorf("blind: component (u=%d, s=%d) factor has %d entries, want %d", u, s, len(g.Chol), d*(d+1)/2)
			}
			for i := 0; i < d; i++ {
				if diag := g.Chol[i*(i+1)/2+i]; !(diag > 0) {
					return nil, fmt.Errorf("blind: component (u=%d, s=%d) factor is not positive definite", u, s)
				}
			}
			if math.IsNaN(g.LogNorm) || math.IsInf(g.LogNorm, 0) {
				return nil, fmt.Errorf("blind: component (u=%d, s=%d) has non-finite normalizer", u, s)
			}
			qda.comp[u][s] = &gaussian{mean: g.Mean, chol: g.Chol, logNorm: g.LogNorm}
		}
	}
	cal := &Calibration{
		planID:             in.Plan,
		dim:                d,
		qda:                qda,
		researchConfidence: in.ResearchConfidence,
		researchRecords:    in.ResearchRecords,
	}
	for u := 0; u < 2; u++ {
		if len(in.Pooled[u]) != d {
			return nil, fmt.Errorf("blind: calibration u=%d has %d pooled marginals, want %d", u, len(in.Pooled[u]), d)
		}
		cal.pooled[u] = make([]pooledMarginal, d)
		for k, pj := range in.Pooled[u] {
			if pj.Degenerate {
				if len(pj.PMF) != 0 {
					return nil, fmt.Errorf("blind: degenerate pooled cell (u=%d, k=%d) carries a pmf", u, k)
				}
				cal.pooled[u][k] = pooledMarginal{degenerate: true}
				continue
			}
			if len(pj.PMF) == 0 {
				return nil, fmt.Errorf("blind: pooled cell (u=%d, k=%d) has no pmf", u, k)
			}
			total := 0.0
			for _, p := range pj.PMF {
				if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
					return nil, fmt.Errorf("blind: pooled cell (u=%d, k=%d) pmf is not a distribution", u, k)
				}
				total += p
			}
			if total <= 0 {
				return nil, fmt.Errorf("blind: pooled cell (u=%d, k=%d) pmf carries no mass", u, k)
			}
			if !(pj.H >= 0) {
				return nil, fmt.Errorf("blind: pooled cell (u=%d, k=%d) has invalid bandwidth %v", u, k, pj.H)
			}
			cal.pooled[u][k] = pooledMarginal{pmf: pj.PMF, h: pj.H}
		}
	}
	return cal, nil
}
