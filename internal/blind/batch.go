package blind

import (
	"fmt"
	"math"

	"otfair/internal/dataset"
	"otfair/internal/vec"
)

// batchBlock bounds the scratch a BatchPosterior holds: records are
// processed in blocks of this many, so the centered right-hand-side matrix
// stays cache-resident (batchBlock·d floats) no matter how large a chunk
// the serving layer hands over.
const batchBlock = 1024

// BatchPosterior evaluates the fitted QDA posterior Pr[s = 1 | x, u] for
// whole chunks of records at once — the serving fast path. Instead of two
// log-density evaluations per record (each with its own stack scratch and
// a math.Log of the prior), a block's records are gathered per u-group,
// all four class log-likelihoods are computed with one blocked forward
// substitution over each class's contiguous Cholesky factor
// (vec.ForwardSubstQuad), and the posterior is a row-wise two-class
// softmax (vec.Softmax2) with the log-priors folded in once per evaluator.
//
// Every arithmetic step keeps the scalar evaluation's operand order, so
// Posteriors is bit-identical to calling QDA.Posterior record by record —
// the property that lets the serving engines batch the posterior while
// keeping their byte-identity pins to the scalar blind repairer. A
// BatchPosterior owns growable scratch and is not safe for concurrent use;
// create one per goroutine (shard).
type BatchPosterior struct {
	q *QDA
	// logPrior[u][s] = log(Pr̂[s|u] + 1e-300), the per-record math.Log the
	// scalar path pays twice per record, computed once here.
	logPrior [2][2]float64

	idx  []int     // record indices of the current u-group within a block
	b    []float64 // gathered raw feature rows, batchBlock×d row-major
	y    []float64 // substitution scratch, same shape as b
	quad []float64 // quadratic forms for one class
	l    [2][]float64
	p    []float64
}

// Batch returns a batched evaluator over the fitted posterior.
func (q *QDA) Batch() *BatchPosterior {
	bp := &BatchPosterior{q: q}
	for u := 0; u < 2; u++ {
		for s := 0; s < 2; s++ {
			bp.logPrior[u][s] = math.Log(q.prior[u][s] + 1e-300)
		}
	}
	return bp
}

// grow resizes *buf to n, reusing capacity across calls.
func grow(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// Posteriors fills dst[i] with Pr[s = 1 | recs[i]] for every record,
// bit-identical to QDA.Posterior on each record alone (including the
// revert-to-prior fallback when both class likelihoods underflow). All
// records are validated up front, so a bad record fails the whole batch
// before any work — the batch analogue of the scalar per-record errors.
func (bp *BatchPosterior) Posteriors(recs []dataset.Record, dst []float64) error {
	if len(dst) != len(recs) {
		return fmt.Errorf("blind: posterior batch has %d outputs for %d records", len(dst), len(recs))
	}
	d := bp.q.dim
	for i, rec := range recs {
		if rec.U != 0 && rec.U != 1 {
			return fmt.Errorf("blind: record %d: invalid u label %d", i, rec.U)
		}
		if len(rec.X) != d {
			return fmt.Errorf("blind: record %d has %d features, want %d", i, len(rec.X), d)
		}
	}
	for lo := 0; lo < len(recs); lo += batchBlock {
		hi := lo + batchBlock
		if hi > len(recs) {
			hi = len(recs)
		}
		bp.block(recs[lo:hi], dst[lo:hi])
	}
	return nil
}

// block evaluates one block, grouping records by u so each (u, s) factor is
// streamed once over its group's gathered right-hand sides.
func (bp *BatchPosterior) block(recs []dataset.Record, dst []float64) {
	q, d := bp.q, bp.q.dim
	for u := 0; u < 2; u++ {
		idx := bp.idx[:0]
		for i, rec := range recs {
			if rec.U == u {
				idx = append(idx, i)
			}
		}
		bp.idx = idx
		nu := len(idx)
		if nu == 0 {
			continue
		}
		// One raw gather per u-group; both class factors then stream the
		// same contiguous block (the kernel centers on the fly and leaves
		// the block untouched).
		b := grow(&bp.b, nu*d)
		y := grow(&bp.y, nu*d)
		quad := grow(&bp.quad, nu)
		for j, i := range idx {
			copy(b[j*d:j*d+d], recs[i].X)
		}
		for s := 0; s < 2; s++ {
			g := q.comp[u][s]
			vec.ForwardSubstQuad(g.chol, g.mean, d, b, y, quad)
			l := grow(&bp.l[s], nu)
			lp, ln := bp.logPrior[u][s], g.logNorm
			for j, qf := range quad {
				l[j] = lp + (ln - 0.5*qf)
			}
		}
		p := grow(&bp.p, nu)
		vec.Softmax2(p, bp.l[0], bp.l[1])
		for j, i := range idx {
			if math.IsNaN(p[j]) {
				// Both class likelihoods underflowed (or the features were
				// not finite): the data carries no information, so the
				// posterior reverts to the prior — the scalar fallback.
				dst[i] = q.prior[u][1]
				continue
			}
			dst[i] = p[j]
		}
	}
}
