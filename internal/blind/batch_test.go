package blind

import (
	"math"
	"testing"

	"otfair/internal/core"
	"otfair/internal/dataset"
	"otfair/internal/rng"
	"otfair/internal/simulate"
)

// TestBatchPosteriorMatchesScalar is the differential pin of the batched
// fast path: on simulated archives (drawn from the paper's scenario, plus
// shifted ones so the posterior sweeps its whole range) the batch output
// must match QDA.Posterior within 1e-12 on every record. The
// implementation keeps the scalar operand order, so the agreement is in
// fact bit-exact — asserted too, because the serving engines' byte-identity
// contracts depend on it.
func TestBatchPosteriorMatchesScalar(t *testing.T) {
	sampler, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	research, archive, err := sampler.ResearchArchive(rng.New(3), 400, 5000)
	if err != nil {
		t.Fatal(err)
	}
	qda, err := NewQDA(research)
	if err != nil {
		t.Fatal(err)
	}
	recs := archive.DropS().Records()
	// Push some records far from every component so underflow and extreme
	// log-likelihood gaps are exercised, not just the data bulk.
	r := rng.New(8)
	for i := range recs {
		if i%97 == 0 {
			shift := make([]float64, len(recs[i].X))
			for k, v := range recs[i].X {
				shift[k] = v + 1e4*r.Norm()
			}
			recs[i].X = shift
		}
	}

	bp := qda.Batch()
	got := make([]float64, len(recs))
	if err := bp.Posteriors(recs, got); err != nil {
		t.Fatal(err)
	}
	maxDiff := 0.0
	for i, rec := range recs {
		want, err := qda.Posterior(rec)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(got[i] - want); d > maxDiff {
			maxDiff = d
		}
		if got[i] != want {
			t.Errorf("record %d: batch %v != scalar %v (bit-exactness broken)", i, got[i], want)
		}
	}
	if maxDiff > 1e-12 {
		t.Errorf("max |batch - scalar| = %g, want <= 1e-12", maxDiff)
	}

	// A second pass over the same evaluator must reuse scratch cleanly.
	again := make([]float64, len(recs))
	if err := bp.Posteriors(recs, again); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("record %d: scratch reuse changed the result", i)
		}
	}
}

// TestBatchPosteriorValidation mirrors the scalar error contract and the
// length check.
func TestBatchPosteriorValidation(t *testing.T) {
	sampler, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	research, _, err := sampler.ResearchArchive(rng.New(4), 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	qda, err := NewQDA(research)
	if err != nil {
		t.Fatal(err)
	}
	bp := qda.Batch()
	good := research.At(0)
	if err := bp.Posteriors([]dataset.Record{good}, make([]float64, 2)); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := good
	bad.U = 2
	if err := bp.Posteriors([]dataset.Record{good, bad}, make([]float64, 2)); err == nil {
		t.Error("invalid u label accepted")
	}
	short := good
	short.X = short.X[:1]
	if err := bp.Posteriors([]dataset.Record{short}, make([]float64, 1)); err == nil {
		t.Error("wrong dimension accepted")
	}
}

// TestRepairRecordPosteriorByteIdentical pins the fast-path entry point:
// feeding RepairRecordPosterior the gamma the repairer's own posterior
// produces must consume the RNG stream identically to RepairRecord, for
// every method, including labelled records (which ignore gamma).
func TestRepairRecordPosteriorByteIdentical(t *testing.T) {
	sampler, err := simulate.NewSampler(simulate.Paper())
	if err != nil {
		t.Fatal(err)
	}
	research, archive, err := sampler.ResearchArchive(rng.New(5), 300, 400)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Design(research, core.Options{NQ: 40})
	if err != nil {
		t.Fatal(err)
	}
	qda, err := NewQDA(research)
	if err != nil {
		t.Fatal(err)
	}
	mixed := archive.Clone()
	for i := range mixed.Records() {
		if i%2 == 0 {
			mixed.Records()[i].S = dataset.SUnknown
		}
	}
	for _, method := range []Method{MethodHard, MethodDraw, MethodMix, MethodPooled} {
		ref, err := New(plan, research, rng.New(21), Options{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := New(plan, research, rng.New(21), Options{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < mixed.Len(); i++ {
			rec := mixed.At(i)
			want, err := ref.RepairRecord(rec)
			if err != nil {
				t.Fatal(err)
			}
			gamma := math.NaN()
			if method != MethodPooled && rec.S == dataset.SUnknown {
				if gamma, err = qda.Posterior(rec); err != nil {
					t.Fatal(err)
				}
			}
			got, err := fast.RepairRecordPosterior(rec, gamma)
			if err != nil {
				t.Fatal(err)
			}
			if got.S != want.S || got.U != want.U {
				t.Fatalf("method %v record %d: labels differ", method, i)
			}
			for k := range want.X {
				if got.X[k] != want.X[k] {
					t.Fatalf("method %v record %d feature %d: %v != %v", method, i, k, got.X[k], want.X[k])
				}
			}
		}
		if ref.Stats() != fast.Stats() {
			t.Errorf("method %v: stats differ: %+v vs %+v", method, ref.Stats(), fast.Stats())
		}
	}
}
