package blind

import (
	"math"
	"testing"

	"otfair/internal/dataset"
	"otfair/internal/rng"
)

// gaussianTable builds a labelled research table with two well-separated
// s-groups per u for QDA fitting.
func gaussianTable(t *testing.T, r *rng.RNG, n int, sep float64) *dataset.Table {
	t.Helper()
	tab := dataset.MustTable(2, []string{"x1", "x2"})
	for i := 0; i < n; i++ {
		u := i % 2
		s := (i / 2) % 2
		mu := 0.0
		if s == 1 {
			mu = sep
		}
		rec := dataset.Record{
			X: []float64{r.Normal(mu, 1), r.Normal(mu, 1)},
			S: s,
			U: u,
		}
		if err := tab.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestNewGaussianMomentRecovery(t *testing.T) {
	r := rng.New(7)
	n := 20000
	rows := make([][]float64, n)
	for i := range rows {
		// Correlated pair: x2 = 0.8·x1 + ε.
		x1 := r.Normal(2, 1.5)
		rows[i] = []float64{x1, 0.8*x1 + r.Normal(0, 0.5)}
	}
	g, err := newGaussian(rows)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.mean[0]-2) > 0.05 {
		t.Errorf("mean[0] = %v, want ≈ 2", g.mean[0])
	}
	if math.Abs(g.mean[1]-1.6) > 0.05 {
		t.Errorf("mean[1] = %v, want ≈ 1.6", g.mean[1])
	}
	// Var(x1) = 2.25; L₀₀ (packed index 0) = sqrt(2.25) = 1.5.
	if math.Abs(g.chol[0]-1.5) > 0.05 {
		t.Errorf("chol[0] = %v, want ≈ 1.5", g.chol[0])
	}
}

func TestGaussianLogPDFClosedForm(t *testing.T) {
	// A spherical fit: logPDF at the mean must equal the analytic
	// normalizer −(d/2)ln(2π) − ½ln|Σ|.
	r := rng.New(11)
	n := 50000
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{r.Norm(), r.Norm()}
	}
	g, err := newGaussian(rows)
	if err != nil {
		t.Fatal(err)
	}
	got := g.logPDF(g.mean)
	want := -math.Log(2 * math.Pi) // d=2, |Σ|≈1
	if math.Abs(got-want) > 0.05 {
		t.Errorf("logPDF(mean) = %v, want ≈ %v", got, want)
	}
	// One standard deviation out along x1 drops by ≈ ½.
	x := []float64{g.mean[0] + 1, g.mean[1]}
	if d := g.logPDF(g.mean) - g.logPDF(x); math.Abs(d-0.5) > 0.05 {
		t.Errorf("logPDF drop at 1σ = %v, want ≈ 0.5", d)
	}
}

func TestNewGaussianDegenerate(t *testing.T) {
	// A constant sample must still produce a proper (ridge-floored) density.
	rows := [][]float64{{1, 2}, {1, 2}, {1, 2}}
	g, err := newGaussian(rows)
	if err != nil {
		t.Fatalf("constant sample: %v", err)
	}
	if v := g.logPDF([]float64{1, 2}); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("logPDF at support point = %v, want finite", v)
	}
}

func TestNewGaussianErrors(t *testing.T) {
	if _, err := newGaussian(nil); err == nil {
		t.Error("empty sample: want error")
	}
	if _, err := newGaussian([][]float64{{}}); err == nil {
		t.Error("zero-dimensional sample: want error")
	}
	if _, err := newGaussian([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged sample: want error")
	}
}

func TestQDAPosteriorSeparatedGroups(t *testing.T) {
	r := rng.New(3)
	research := gaussianTable(t, r, 4000, 8)
	q, err := NewQDA(research)
	if err != nil {
		t.Fatal(err)
	}
	// Deep inside the s=0 component the posterior for s=1 is ≈ 0; deep
	// inside s=1 it is ≈ 1.
	for u := 0; u < 2; u++ {
		p0, err := q.Posterior(dataset.Record{X: []float64{0, 0}, U: u, S: dataset.SUnknown})
		if err != nil {
			t.Fatal(err)
		}
		if p0 > 0.05 {
			t.Errorf("u=%d: Pr[s=1 | x at s=0 mode] = %v, want ≈ 0", u, p0)
		}
		p1, err := q.Posterior(dataset.Record{X: []float64{8, 8}, U: u, S: dataset.SUnknown})
		if err != nil {
			t.Fatal(err)
		}
		if p1 < 0.95 {
			t.Errorf("u=%d: Pr[s=1 | x at s=1 mode] = %v, want ≈ 1", u, p1)
		}
	}
}

func TestQDAPosteriorBalancedMidpoint(t *testing.T) {
	r := rng.New(5)
	research := gaussianTable(t, r, 8000, 4)
	q, err := NewQDA(research)
	if err != nil {
		t.Fatal(err)
	}
	// gaussianTable assigns groups round-robin, so priors are balanced and
	// the midpoint posterior must be ≈ ½.
	p, err := q.Posterior(dataset.Record{X: []float64{2, 2}, U: 0, S: dataset.SUnknown})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 0.1 {
		t.Errorf("midpoint posterior = %v, want ≈ 0.5", p)
	}
}

func TestQDAClassifyAccuracyHigh(t *testing.T) {
	r := rng.New(17)
	research := gaussianTable(t, r, 2000, 6)
	probe := gaussianTable(t, r, 2000, 6)
	q, err := NewQDA(research)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := q.Accuracy(probe)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("accuracy = %v on 6σ-separated groups, want ≥ 0.95", acc)
	}
}

func TestQDAErrors(t *testing.T) {
	if _, err := NewQDA(nil); err == nil {
		t.Error("nil table: want error")
	}
	empty := dataset.MustTable(1, nil)
	if _, err := NewQDA(empty); err == nil {
		t.Error("empty table: want error")
	}
	// Missing (u=1, s=1) group.
	partial := dataset.MustTable(1, nil)
	for i := 0; i < 10; i++ {
		_ = partial.Append(dataset.Record{X: []float64{float64(i)}, S: 0, U: 0})
	}
	if _, err := NewQDA(partial); err == nil {
		t.Error("missing groups: want error")
	}

	r := rng.New(1)
	q, err := NewQDA(gaussianTable(t, r, 400, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Posterior(dataset.Record{X: []float64{0, 0}, U: 7}); err == nil {
		t.Error("bad u: want error")
	}
	if _, err := q.Posterior(dataset.Record{X: []float64{0}, U: 0}); err == nil {
		t.Error("wrong dimension: want error")
	}
	unlabelled := dataset.MustTable(2, nil)
	_ = unlabelled.Append(dataset.Record{X: []float64{0, 0}, S: dataset.SUnknown, U: 0})
	if _, err := q.Accuracy(unlabelled); err == nil {
		t.Error("no labelled records: want error")
	}
}

func TestQDAPriorImbalanceShiftsPosterior(t *testing.T) {
	// With 9:1 priors towards s=1, the midpoint posterior must exceed ½.
	r := rng.New(23)
	tab := dataset.MustTable(1, nil)
	for u := 0; u < 2; u++ {
		for i := 0; i < 100; i++ {
			_ = tab.Append(dataset.Record{X: []float64{r.Normal(0, 1)}, S: 0, U: u})
		}
		for i := 0; i < 900; i++ {
			_ = tab.Append(dataset.Record{X: []float64{r.Normal(4, 1)}, S: 1, U: u})
		}
	}
	q, err := NewQDA(tab)
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Posterior(dataset.Record{X: []float64{2}, U: 0, S: dataset.SUnknown})
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.7 {
		t.Errorf("posterior at midpoint with 9:1 prior = %v, want > 0.7", p)
	}
}
