package blind

import (
	"math"
	"testing"
	"testing/quick"

	"otfair/internal/dataset"
	"otfair/internal/rng"
)

func TestQDAPosteriorInUnitIntervalProperty(t *testing.T) {
	r := rng.New(41)
	q, err := NewQDA(gaussianTable(t, r, 800, 3))
	if err != nil {
		t.Fatal(err)
	}
	f := func(x1, x2 float64, uRaw bool) bool {
		if math.IsNaN(x1) || math.IsNaN(x2) || math.IsInf(x1, 0) || math.IsInf(x2, 0) {
			return true
		}
		u := 0
		if uRaw {
			u = 1
		}
		p, err := q.Posterior(dataset.Record{X: []float64{x1, x2}, U: u, S: dataset.SUnknown})
		if err != nil {
			return false
		}
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQDAClassifyConsistentWithPosteriorProperty(t *testing.T) {
	r := rng.New(43)
	q, err := NewQDA(gaussianTable(t, r, 800, 3))
	if err != nil {
		t.Fatal(err)
	}
	f := func(x1, x2 float64) bool {
		if math.IsNaN(x1) || math.IsNaN(x2) || math.IsInf(x1, 0) || math.IsInf(x2, 0) {
			return true
		}
		rec := dataset.Record{X: []float64{x1, x2}, U: 0, S: dataset.SUnknown}
		p, err1 := q.Posterior(rec)
		c, err2 := q.Classify(rec)
		if err1 != nil || err2 != nil {
			return false
		}
		if p >= 0.5 {
			return c == 1
		}
		return c == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
