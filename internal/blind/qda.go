package blind

import (
	"errors"
	"fmt"
	"math"

	"otfair/internal/dataset"
	"otfair/internal/vec"
)

// gaussian is a full-covariance multivariate normal fitted by maximum
// likelihood, evaluated through its Cholesky factor.
type gaussian struct {
	mean []float64
	// chol is the lower-triangular Cholesky factor of the (ridge-floored)
	// covariance, packed row-major without the zero upper triangle:
	// row i starts at i(i+1)/2 and holds i+1 entries. The packed layout
	// keeps the per-record forward substitution on one contiguous run of
	// memory — this is the innermost loop of the streaming soft-labeller.
	chol []float64
	// logNorm is the log normalizing constant −(d/2)·ln 2π − ½·ln|Σ|.
	logNorm float64
}

// newGaussian fits a d-dimensional Gaussian to rows. Covariances are floored
// by a relative ridge so that degenerate (constant or near-constant) research
// groups still yield a proper density.
func newGaussian(rows [][]float64) (*gaussian, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("blind: empty sample")
	}
	d := len(rows[0])
	if d == 0 {
		return nil, errors.New("blind: zero-dimensional sample")
	}
	mean := make([]float64, d)
	for _, row := range rows {
		if len(row) != d {
			return nil, fmt.Errorf("blind: ragged sample (row has %d features, want %d)", len(row), d)
		}
		for k, v := range row {
			mean[k] += v
		}
	}
	for k := range mean {
		mean[k] /= float64(n)
	}
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, row := range rows {
		for i := 0; i < d; i++ {
			di := row[i] - mean[i]
			for j := 0; j <= i; j++ {
				cov[i][j] += di * (row[j] - mean[j])
			}
		}
	}
	trace := 0.0
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			cov[i][j] /= float64(n)
			cov[j][i] = cov[i][j]
		}
		trace += cov[i][i]
	}
	// Ridge floor relative to the average variance keeps the factorization
	// positive definite for collinear or tiny groups.
	ridge := 1e-6 * (trace/float64(d) + 1e-12)
	for i := 0; i < d; i++ {
		cov[i][i] += ridge
	}
	chol, logDet, err := choleskyLogDet(cov)
	if err != nil {
		return nil, err
	}
	return &gaussian{
		mean:    mean,
		chol:    chol,
		logNorm: -0.5*float64(d)*math.Log(2*math.Pi) - 0.5*logDet,
	}, nil
}

// choleskyLogDet factors a symmetric positive-definite matrix and returns
// the packed lower factor together with the log determinant of the input.
func choleskyLogDet(a [][]float64) ([]float64, float64, error) {
	d := len(a)
	l := make([]float64, d*(d+1)/2)
	logDet := 0.0
	for i := 0; i < d; i++ {
		ri := i * (i + 1) / 2
		for j := 0; j <= i; j++ {
			rj := j * (j + 1) / 2
			sum := a[i][j] - vec.Dot(l[ri:ri+j], l[rj:rj+j])
			if i == j {
				if sum <= 0 {
					return nil, 0, errors.New("blind: covariance not positive definite")
				}
				l[ri+i] = math.Sqrt(sum)
				logDet += 2 * math.Log(l[ri+i])
			} else {
				l[ri+j] = sum / l[rj+j]
			}
		}
	}
	return l, logDet, nil
}

// qdaMaxStackDim bounds the stack-allocated substitution buffer; archival
// feature vectors beyond it (rare) fall back to a heap scratch.
const qdaMaxStackDim = 32

// logPDF evaluates the Gaussian log density via one forward substitution.
// It allocates nothing for d ≤ qdaMaxStackDim, which keeps the per-record
// posterior on the streaming path garbage-free.
func (g *gaussian) logPDF(x []float64) float64 {
	d := len(g.mean)
	// Solve L·y = (x − mean); then the quadratic form is ‖y‖².
	var stack [qdaMaxStackDim]float64
	var y []float64
	if d <= qdaMaxStackDim {
		y = stack[:d]
	} else {
		y = make([]float64, d)
	}
	q := 0.0
	for i := 0; i < d; i++ {
		ri := i * (i + 1) / 2
		sum := x[i] - g.mean[i] - vec.Dot(g.chol[ri:ri+i], y[:i])
		yi := sum / g.chol[ri+i]
		y[i] = yi
		q += yi * yi
	}
	return g.logNorm - 0.5*q
}

// QDA is a supervised quadratic-discriminant posterior Pr[s | x, u] fitted on
// the labelled research set: one full-covariance Gaussian per (u, s) group
// plus the empirical class priors Pr[s|u]. Unlike the unsupervised
// mixture.LabelEstimator — which needs the archive up front to fit its EM
// mixture — QDA is learned entirely at design time, so it can soft-label an
// unbounded archival stream record by record.
type QDA struct {
	comp  [2][2]*gaussian
	prior [2][2]float64 // prior[u][s] = Pr̂[s|u]
	dim   int
}

// NewQDA fits the class-conditional Gaussians and priors from a fully
// (u,s)-labelled research table. Every (u,s) group must be non-empty.
func NewQDA(research *dataset.Table) (*QDA, error) {
	if research == nil || research.Len() == 0 {
		return nil, errors.New("blind: empty research table")
	}
	q := &QDA{dim: research.Dim()}
	labelled, _ := research.Partition()
	for _, g := range dataset.Groups() {
		idx := labelled[g]
		if len(idx) == 0 {
			return nil, fmt.Errorf("blind: research group %v is empty; QDA needs every (u,s) group", g)
		}
		rows := make([][]float64, len(idx))
		for i, id := range idx {
			rows[i] = research.At(id).X
		}
		gg, err := newGaussian(rows)
		if err != nil {
			return nil, fmt.Errorf("blind: fitting group %v: %w", g, err)
		}
		q.comp[g.U][g.S] = gg
	}
	for u := 0; u < 2; u++ {
		n0 := len(labelled[dataset.Group{U: u, S: 0}])
		n1 := len(labelled[dataset.Group{U: u, S: 1}])
		q.prior[u][0] = float64(n0) / float64(n0+n1)
		q.prior[u][1] = float64(n1) / float64(n0+n1)
	}
	return q, nil
}

// Posterior returns Pr[s = 1 | x, u] for one record.
func (q *QDA) Posterior(rec dataset.Record) (float64, error) {
	if rec.U != 0 && rec.U != 1 {
		return 0, fmt.Errorf("blind: invalid u label %d", rec.U)
	}
	if len(rec.X) != q.dim {
		return 0, fmt.Errorf("blind: record has %d features, want %d", len(rec.X), q.dim)
	}
	l0 := math.Log(q.prior[rec.U][0]+1e-300) + q.comp[rec.U][0].logPDF(rec.X)
	l1 := math.Log(q.prior[rec.U][1]+1e-300) + q.comp[rec.U][1].logPDF(rec.X)
	m := math.Max(l0, l1)
	if math.IsInf(m, -1) || math.IsNaN(m) {
		// Both class likelihoods underflowed (the point is absurdly far
		// from every component): the data carries no information, so the
		// posterior reverts to the prior.
		return q.prior[rec.U][1], nil
	}
	e0, e1 := math.Exp(l0-m), math.Exp(l1-m)
	return e1 / (e0 + e1), nil
}

// Classify returns the MAP label ŝ for one record.
func (q *QDA) Classify(rec dataset.Record) (int, error) {
	p, err := q.Posterior(rec)
	if err != nil {
		return 0, err
	}
	if p >= 0.5 {
		return 1, nil
	}
	return 0, nil
}

// Accuracy reports the fraction of s-labelled records whose MAP label
// matches the recorded one.
func (q *QDA) Accuracy(t *dataset.Table) (float64, error) {
	n, hit := 0, 0
	for _, rec := range t.Records() {
		if rec.S == dataset.SUnknown {
			continue
		}
		s, err := q.Classify(rec)
		if err != nil {
			return 0, err
		}
		n++
		if s == rec.S {
			hit++
		}
	}
	if n == 0 {
		return 0, errors.New("blind: no labelled records to score")
	}
	return float64(hit) / float64(n), nil
}
