package divergence

import (
	"errors"
	"math"
	"sort"
)

// MMD implements the (squared) maximum mean discrepancy between two samples
// with a Gaussian RBF kernel — the kernel-based functional-decoupling
// family the paper points to in Section II-A (Gretton et al. 2005) as
// necessary/equivalent alternatives to its conditional-independence
// definition. MMD is a metric on distributions that needs no density
// estimation, no grid, and no floor, which makes it a useful third opinion
// next to the KL-based E estimators.

// MMDResult carries the unbiased estimate and the kernel width used.
type MMDResult struct {
	// Squared is the unbiased MMD² estimate (can be slightly negative for
	// identical distributions; that is the estimator's nature).
	Squared float64
	// Bandwidth is the RBF width actually used.
	Bandwidth float64
}

// MMDOptions configures the estimator.
type MMDOptions struct {
	// Bandwidth for the RBF kernel; 0 selects the median heuristic
	// (median pairwise distance of the pooled sample).
	Bandwidth float64
}

// MMD computes the unbiased MMD² estimate between two 1-D samples:
//
//	MMD² = E[k(x,x')] + E[k(y,y')] − 2·E[k(x,y)]
//
// with the diagonal excluded from the within-sample terms (Gretton et al.
// 2012, Eq. 3). Complexity is O((n+m)²); the fairness use case compares
// (u,s)-group columns, which are at most tens of thousands of points.
func MMD(xs, ys []float64, opts MMDOptions) (*MMDResult, error) {
	n, m := len(xs), len(ys)
	if n < 2 || m < 2 {
		return nil, errors.New("divergence: MMD needs at least 2 points per sample")
	}
	h := opts.Bandwidth
	if h <= 0 {
		h = medianHeuristic(xs, ys)
	}
	if h <= 0 {
		// Fully degenerate pooled sample: identical constants.
		return &MMDResult{Squared: 0, Bandwidth: 0}, nil
	}
	gamma := 1 / (2 * h * h)
	// All three Gram sums run over sorted copies with a band cutoff: beyond
	// reach the RBF kernel underflows float64 entirely (exp(−745) ≈ the
	// smallest denormal), so truncating the inner loops there changes the
	// estimate by strictly less than (n+m)²·1e−300 — nothing — while turning
	// concentrated samples from O(n²) into O(n·band).
	reach := math.Sqrt(745/gamma) + 1
	sx := append([]float64(nil), xs...)
	sy := append([]float64(nil), ys...)
	sort.Float64s(sx)
	sort.Float64s(sy)
	kxx := 2 * bandedGramSum(sx, gamma, reach) / (float64(n) * float64(n-1))
	kyy := 2 * bandedGramSum(sy, gamma, reach) / (float64(m) * float64(m-1))
	kxy := bandedCrossGramSum(sx, sy, gamma, reach) / (float64(n) * float64(m))
	return &MMDResult{Squared: kxx + kyy - 2*kxy, Bandwidth: h}, nil
}

// bandedGramSum returns Σ_{i<j} exp(−γ(x_i−x_j)²) over a sorted sample,
// stopping each inner scan at the underflow band.
func bandedGramSum(sorted []float64, gamma, reach float64) float64 {
	s := 0.0
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			d := sorted[j] - sorted[i]
			if d > reach {
				break
			}
			s += math.Exp(-gamma * d * d)
		}
	}
	return s
}

// bandedCrossGramSum returns Σ_ij exp(−γ(x_i−y_j)²) over two sorted
// samples with a sliding window: the window start advances monotonically
// with i, so the total work is O(n + m + pairs-within-band).
func bandedCrossGramSum(sx, sy []float64, gamma, reach float64) float64 {
	s := 0.0
	start := 0
	for _, x := range sx {
		for start < len(sy) && sy[start] < x-reach {
			start++
		}
		for j := start; j < len(sy); j++ {
			d := sy[j] - x
			if d > reach {
				break
			}
			s += math.Exp(-gamma * d * d)
		}
	}
	return s
}

// medianHeuristic returns the median absolute pairwise distance of the
// pooled sample, computed exactly for pools up to 2048 points and on a
// uniform subsample beyond that.
func medianHeuristic(xs, ys []float64) float64 {
	pool := make([]float64, 0, len(xs)+len(ys))
	pool = append(pool, xs...)
	pool = append(pool, ys...)
	const cap = 2048
	if len(pool) > cap {
		// Deterministic stride subsample keeps the heuristic stable.
		stride := len(pool) / cap
		sub := make([]float64, 0, cap)
		for i := 0; i < len(pool); i += stride {
			sub = append(sub, pool[i])
		}
		pool = sub
	}
	var dists []float64
	for i := 0; i < len(pool); i++ {
		for j := i + 1; j < len(pool); j++ {
			d := math.Abs(pool[i] - pool[j])
			if d > 0 {
				dists = append(dists, d)
			}
		}
	}
	if len(dists) == 0 {
		return 0
	}
	sort.Float64s(dists)
	return dists[len(dists)/2]
}

// MMDTest performs a permutation test of H0: both samples share a
// distribution, returning the p-value estimate over perms shuffles driven
// by the caller's uniform source (any func() float64 in [0,1)).
func MMDTest(xs, ys []float64, opts MMDOptions, perms int, uniform func() float64) (stat float64, pValue float64, err error) {
	if perms <= 0 {
		return 0, 0, errors.New("divergence: MMDTest needs at least one permutation")
	}
	base, err := MMD(xs, ys, opts)
	if err != nil {
		return 0, 0, err
	}
	// Fix the bandwidth across permutations so only the split varies.
	fixed := MMDOptions{Bandwidth: base.Bandwidth}
	pool := make([]float64, 0, len(xs)+len(ys))
	pool = append(pool, xs...)
	pool = append(pool, ys...)
	n := len(xs)
	exceed := 0
	for p := 0; p < perms; p++ {
		// Fisher–Yates with the provided uniform source.
		for i := len(pool) - 1; i > 0; i-- {
			j := int(uniform() * float64(i+1))
			if j > i {
				j = i
			}
			pool[i], pool[j] = pool[j], pool[i]
		}
		perm, err := MMD(pool[:n], pool[n:], fixed)
		if err != nil {
			return 0, 0, err
		}
		if perm.Squared >= base.Squared {
			exceed++
		}
	}
	return base.Squared, (float64(exceed) + 1) / (float64(perms) + 1), nil
}
