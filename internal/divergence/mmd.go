package divergence

import (
	"errors"
	"math"
	"sort"
)

// MMD implements the (squared) maximum mean discrepancy between two samples
// with a Gaussian RBF kernel — the kernel-based functional-decoupling
// family the paper points to in Section II-A (Gretton et al. 2005) as
// necessary/equivalent alternatives to its conditional-independence
// definition. MMD is a metric on distributions that needs no density
// estimation, no grid, and no floor, which makes it a useful third opinion
// next to the KL-based E estimators.

// MMDResult carries the unbiased estimate and the kernel width used.
type MMDResult struct {
	// Squared is the unbiased MMD² estimate (can be slightly negative for
	// identical distributions; that is the estimator's nature).
	Squared float64
	// Bandwidth is the RBF width actually used.
	Bandwidth float64
}

// MMDOptions configures the estimator.
type MMDOptions struct {
	// Bandwidth for the RBF kernel; 0 selects the median heuristic
	// (median pairwise distance of the pooled sample).
	Bandwidth float64
}

// MMD computes the unbiased MMD² estimate between two 1-D samples:
//
//	MMD² = E[k(x,x')] + E[k(y,y')] − 2·E[k(x,y)]
//
// with the diagonal excluded from the within-sample terms (Gretton et al.
// 2012, Eq. 3). Complexity is O((n+m)²); the fairness use case compares
// (u,s)-group columns, which are at most tens of thousands of points.
func MMD(xs, ys []float64, opts MMDOptions) (*MMDResult, error) {
	n, m := len(xs), len(ys)
	if n < 2 || m < 2 {
		return nil, errors.New("divergence: MMD needs at least 2 points per sample")
	}
	h := opts.Bandwidth
	if h <= 0 {
		h = medianHeuristic(xs, ys)
	}
	if h <= 0 {
		// Fully degenerate pooled sample: identical constants.
		return &MMDResult{Squared: 0, Bandwidth: 0}, nil
	}
	gamma := 1 / (2 * h * h)
	kxx := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := xs[i] - xs[j]
			kxx += math.Exp(-gamma * d * d)
		}
	}
	kxx = 2 * kxx / (float64(n) * float64(n-1))
	kyy := 0.0
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			d := ys[i] - ys[j]
			kyy += math.Exp(-gamma * d * d)
		}
	}
	kyy = 2 * kyy / (float64(m) * float64(m-1))
	kxy := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			d := xs[i] - ys[j]
			kxy += math.Exp(-gamma * d * d)
		}
	}
	kxy /= float64(n) * float64(m)
	return &MMDResult{Squared: kxx + kyy - 2*kxy, Bandwidth: h}, nil
}

// medianHeuristic returns the median absolute pairwise distance of the
// pooled sample, computed exactly for pools up to 2048 points and on a
// uniform subsample beyond that.
func medianHeuristic(xs, ys []float64) float64 {
	pool := make([]float64, 0, len(xs)+len(ys))
	pool = append(pool, xs...)
	pool = append(pool, ys...)
	const cap = 2048
	if len(pool) > cap {
		// Deterministic stride subsample keeps the heuristic stable.
		stride := len(pool) / cap
		sub := make([]float64, 0, cap)
		for i := 0; i < len(pool); i += stride {
			sub = append(sub, pool[i])
		}
		pool = sub
	}
	var dists []float64
	for i := 0; i < len(pool); i++ {
		for j := i + 1; j < len(pool); j++ {
			d := math.Abs(pool[i] - pool[j])
			if d > 0 {
				dists = append(dists, d)
			}
		}
	}
	if len(dists) == 0 {
		return 0
	}
	sort.Float64s(dists)
	return dists[len(dists)/2]
}

// MMDTest performs a permutation test of H0: both samples share a
// distribution, returning the p-value estimate over perms shuffles driven
// by the caller's uniform source (any func() float64 in [0,1)).
func MMDTest(xs, ys []float64, opts MMDOptions, perms int, uniform func() float64) (stat float64, pValue float64, err error) {
	if perms <= 0 {
		return 0, 0, errors.New("divergence: MMDTest needs at least one permutation")
	}
	base, err := MMD(xs, ys, opts)
	if err != nil {
		return 0, 0, err
	}
	// Fix the bandwidth across permutations so only the split varies.
	fixed := MMDOptions{Bandwidth: base.Bandwidth}
	pool := make([]float64, 0, len(xs)+len(ys))
	pool = append(pool, xs...)
	pool = append(pool, ys...)
	n := len(xs)
	exceed := 0
	for p := 0; p < perms; p++ {
		// Fisher–Yates with the provided uniform source.
		for i := len(pool) - 1; i > 0; i-- {
			j := int(uniform() * float64(i+1))
			if j > i {
				j = i
			}
			pool[i], pool[j] = pool[j], pool[i]
		}
		perm, err := MMD(pool[:n], pool[n:], fixed)
		if err != nil {
			return 0, 0, err
		}
		if perm.Squared >= base.Squared {
			exceed++
		}
	}
	return base.Squared, (float64(exceed) + 1) / (float64(perms) + 1), nil
}
