// Package divergence implements the divergence measures used to quantify
// s|u-dependence: the Kullback–Leibler divergence and its symmetrized form
// (Definition 2.4 of the paper), plus Jensen–Shannon, Hellinger, total
// variation and χ² for diagnostics and ablations. Closed-form Gaussian KL
// and a k-nearest-neighbour differential-KL estimator serve as validation
// oracles for the grid estimators.
package divergence

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"otfair/internal/vec"
)

// DefaultFloor is the probability floor applied to grid pmfs before taking
// log-ratios. The paper does not specify its convention; the floor keeps the
// estimator finite when the two conditionals have (numerically) disjoint
// tails — exactly the regime of well-separated unrepaired sub-groups.
const DefaultFloor = 1e-12

// errLength is returned when two pmfs have different support sizes.
var errLength = errors.New("divergence: pmf length mismatch")

// validatePair checks the two pmfs share a support size and are usable.
func validatePair(p, q []float64) error {
	if len(p) != len(q) {
		return errLength
	}
	if len(p) == 0 {
		return errors.New("divergence: empty pmfs")
	}
	for i := range p {
		if p[i] < 0 || q[i] < 0 || math.IsNaN(p[i]) || math.IsNaN(q[i]) {
			return fmt.Errorf("divergence: invalid mass at state %d (p=%v q=%v)", i, p[i], q[i])
		}
	}
	return nil
}

// floored returns a copy of p with every entry raised to at least floor and
// renormalized to unit mass.
func floored(p []float64, floor float64) []float64 {
	out := make([]float64, len(p))
	total := 0.0
	for i, v := range p {
		if v < floor {
			v = floor
		}
		out[i] = v
		total += v
	}
	vec.Scale(1/total, out)
	return out
}

// KL returns the Kullback–Leibler divergence D(p‖q) in nats between two
// discrete pmfs on a shared support, flooring both at DefaultFloor.
func KL(p, q []float64) (float64, error) {
	return KLFloored(p, q, DefaultFloor)
}

// KLFloored is KL with an explicit probability floor.
func KLFloored(p, q []float64, floor float64) (float64, error) {
	if err := validatePair(p, q); err != nil {
		return 0, err
	}
	if !(floor > 0) {
		return 0, errors.New("divergence: floor must be positive")
	}
	pf := floored(p, floor)
	qf := floored(q, floor)
	d := 0.0
	for i := range pf {
		d += pf[i] * math.Log(pf[i]/qf[i])
	}
	if d < 0 {
		// KL is non-negative; tiny negatives are floating-point round-off.
		d = 0
	}
	return d, nil
}

// SymKL returns the symmetrized KL of Definition 2.4:
// ½·D(p‖q) + ½·D(q‖p).
func SymKL(p, q []float64) (float64, error) {
	return SymKLFloored(p, q, DefaultFloor)
}

// SymKLFloored is SymKL with an explicit probability floor.
func SymKLFloored(p, q []float64, floor float64) (float64, error) {
	a, err := KLFloored(p, q, floor)
	if err != nil {
		return 0, err
	}
	b, err := KLFloored(q, p, floor)
	if err != nil {
		return 0, err
	}
	return 0.5*a + 0.5*b, nil
}

// JensenShannon returns the Jensen–Shannon divergence (base-e, in [0, ln 2]).
func JensenShannon(p, q []float64) (float64, error) {
	if err := validatePair(p, q); err != nil {
		return 0, err
	}
	pf := floored(p, DefaultFloor)
	qf := floored(q, DefaultFloor)
	m := make([]float64, len(pf))
	for i := range m {
		m[i] = 0.5 * (pf[i] + qf[i])
	}
	a, err := KLFloored(pf, m, DefaultFloor)
	if err != nil {
		return 0, err
	}
	b, err := KLFloored(qf, m, DefaultFloor)
	if err != nil {
		return 0, err
	}
	return 0.5*a + 0.5*b, nil
}

// Hellinger returns the Hellinger distance H(p,q) ∈ [0, 1].
func Hellinger(p, q []float64) (float64, error) {
	if err := validatePair(p, q); err != nil {
		return 0, err
	}
	s := 0.0
	for i := range p {
		d := math.Sqrt(p[i]) - math.Sqrt(q[i])
		s += d * d
	}
	h := math.Sqrt(0.5 * s)
	if h > 1 {
		h = 1
	}
	return h, nil
}

// TotalVariation returns TV(p,q) = ½ Σ|p−q| ∈ [0, 1].
func TotalVariation(p, q []float64) (float64, error) {
	if err := validatePair(p, q); err != nil {
		return 0, err
	}
	return 0.5 * vec.SumAbsDiff(p, q), nil
}

// ChiSquared returns the Pearson χ² divergence Σ (p−q)²/q with flooring.
func ChiSquared(p, q []float64) (float64, error) {
	if err := validatePair(p, q); err != nil {
		return 0, err
	}
	qf := floored(q, DefaultFloor)
	pf := floored(p, DefaultFloor)
	s := 0.0
	for i := range pf {
		d := pf[i] - qf[i]
		s += d * d / qf[i]
	}
	return s, nil
}

// GaussianKL returns the closed-form KL divergence
// D(N(m0,s0²) ‖ N(m1,s1²)) = ln(s1/s0) + (s0² + (m0−m1)²)/(2 s1²) − ½.
// It is the oracle the grid estimators are validated against in tests.
func GaussianKL(m0, s0, m1, s1 float64) float64 {
	return math.Log(s1/s0) + (s0*s0+(m0-m1)*(m0-m1))/(2*s1*s1) - 0.5
}

// GaussianSymKL returns the closed-form symmetrized KL between two normals;
// for equal variances it reduces to (m0−m1)²/(2σ²)·... specifically
// ½[D01 + D10].
func GaussianSymKL(m0, s0, m1, s1 float64) float64 {
	return 0.5*GaussianKL(m0, s0, m1, s1) + 0.5*GaussianKL(m1, s1, m0, s0)
}

// KNNKL estimates the differential KL divergence D(P‖Q) from samples using
// the 1-nearest-neighbour estimator of Wang, Kulkarni & Verdú (2009):
// D̂ = (1/n) Σ_i log(ν_i/ρ_i) + log(m/(n−1)), where ρ_i is the distance from
// x_i to its nearest neighbour in the P-sample and ν_i its distance to the
// nearest Q-sample point. It needs no grid or floor, which makes it a useful
// cross-check for the KDE-grid pipeline on continuous data.
func KNNKL(pSample, qSample []float64) (float64, error) {
	n, m := len(pSample), len(qSample)
	if n < 2 || m < 1 {
		return 0, errors.New("divergence: KNNKL needs ≥2 P samples and ≥1 Q sample")
	}
	ps := append([]float64(nil), pSample...)
	qs := append([]float64(nil), qSample...)
	sort.Float64s(ps)
	sort.Float64s(qs)
	const tiny = 1e-12
	sum := 0.0
	for i, x := range ps {
		rho := math.Inf(1)
		if i > 0 {
			rho = x - ps[i-1]
		}
		if i < n-1 {
			if d := ps[i+1] - x; d < rho {
				rho = d
			}
		}
		nu := nearestDistSorted(qs, x)
		if rho < tiny {
			rho = tiny
		}
		if nu < tiny {
			nu = tiny
		}
		sum += math.Log(nu / rho)
	}
	return sum/float64(n) + math.Log(float64(m)/float64(n-1)), nil
}

// KNNSymKL is the symmetrized kNN KL estimate ½[D̂(P‖Q) + D̂(Q‖P)].
func KNNSymKL(pSample, qSample []float64) (float64, error) {
	a, err := KNNKL(pSample, qSample)
	if err != nil {
		return 0, err
	}
	b, err := KNNKL(qSample, pSample)
	if err != nil {
		return 0, err
	}
	return 0.5*a + 0.5*b, nil
}

// nearestDistSorted returns the distance from x to the closest element of
// the ascending slice ys.
func nearestDistSorted(ys []float64, x float64) float64 {
	i := sort.SearchFloat64s(ys, x)
	best := math.Inf(1)
	if i < len(ys) {
		best = ys[i] - x
	}
	if i > 0 {
		if d := x - ys[i-1]; d < best {
			best = d
		}
	}
	return best
}
