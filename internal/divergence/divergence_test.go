package divergence

import (
	"math"
	"testing"
	"testing/quick"

	"otfair/internal/kde"
	"otfair/internal/rng"
	"otfair/internal/stat"
)

func TestKLIdentical(t *testing.T) {
	p := []float64{0.2, 0.3, 0.5}
	d, err := KL(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-12 {
		t.Errorf("KL(p,p) = %v", d)
	}
}

func TestKLKnownValue(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	want := 0.5*math.Log(2) + 0.5*math.Log(2.0/3)
	d, err := KL(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("KL = %v, want %v", d, want)
	}
}

func TestKLAsymmetric(t *testing.T) {
	p := []float64{0.9, 0.1}
	q := []float64{0.1, 0.9}
	a, _ := KL(p, q)
	b, _ := KL(q, p)
	s, _ := SymKL(p, q)
	if math.Abs(s-0.5*(a+b)) > 1e-12 {
		t.Errorf("SymKL %v != mean of %v, %v", s, a, b)
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	err := quick.Check(func(a, b, c, d uint8) bool {
		p := []float64{float64(a) + 1, float64(b) + 1}
		q := []float64{float64(c) + 1, float64(d) + 1}
		pn, _ := stat.Normalize(p)
		qn, _ := stat.Normalize(q)
		kl, err := KL(pn, qn)
		return err == nil && kl >= 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSymKLSymmetricProperty(t *testing.T) {
	err := quick.Check(func(a, b, c, d uint8) bool {
		p := []float64{float64(a) + 1, float64(b) + 1, 2}
		q := []float64{float64(c) + 1, float64(d) + 1, 3}
		pn, _ := stat.Normalize(p)
		qn, _ := stat.Normalize(q)
		s1, _ := SymKL(pn, qn)
		s2, _ := SymKL(qn, pn)
		return math.Abs(s1-s2) < 1e-12
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := KL([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := KL(nil, nil); err == nil {
		t.Error("empty pmfs accepted")
	}
	if _, err := KL([]float64{-0.1, 1.1}, []float64{0.5, 0.5}); err == nil {
		t.Error("negative mass accepted")
	}
	if _, err := KL([]float64{math.NaN(), 1}, []float64{0.5, 0.5}); err == nil {
		t.Error("NaN mass accepted")
	}
	if _, err := KLFloored([]float64{1, 0}, []float64{0, 1}, 0); err == nil {
		t.Error("zero floor accepted")
	}
}

func TestFlooringKeepsFinite(t *testing.T) {
	// Disjoint supports: without flooring KL is infinite.
	p := []float64{1, 0}
	q := []float64{0, 1}
	d, err := KL(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(d, 0) || math.IsNaN(d) {
		t.Errorf("floored KL not finite: %v", d)
	}
	if d < 10 {
		t.Errorf("disjoint-support KL suspiciously small: %v", d)
	}
}

func TestJensenShannonBounds(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	d, err := JensenShannon(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if d < math.Log(2)-1e-6 || d > math.Log(2)+1e-6 {
		t.Errorf("JS of disjoint = %v, want ln2 = %v", d, math.Log(2))
	}
	same, _ := JensenShannon(p, p)
	if same > 1e-9 {
		t.Errorf("JS(p,p) = %v", same)
	}
}

func TestHellingerKnown(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	h, err := Hellinger(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-1) > 1e-12 {
		t.Errorf("Hellinger disjoint = %v", h)
	}
	h2, _ := Hellinger(p, p)
	if h2 != 0 {
		t.Errorf("Hellinger(p,p) = %v", h2)
	}
}

func TestTotalVariation(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	tv, err := TotalVariation(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tv-0.25) > 1e-12 {
		t.Errorf("TV = %v", tv)
	}
}

func TestChiSquaredZeroOnIdentical(t *testing.T) {
	p := []float64{0.3, 0.7}
	c, err := ChiSquared(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if c > 1e-12 {
		t.Errorf("chi2(p,p) = %v", c)
	}
}

func TestGaussianKLClosedForm(t *testing.T) {
	// Equal variances: D = (Δm)²/2σ².
	if got := GaussianKL(0, 1, 1, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("GaussianKL = %v, want 0.5", got)
	}
	// Identical distributions.
	if got := GaussianKL(2, 3, 2, 3); math.Abs(got) > 1e-12 {
		t.Errorf("GaussianKL identical = %v", got)
	}
	// Symmetrized equal-variance: (Δm)²/σ²·1/2·2·(1/2)... = (Δm)²/(2σ²)
	// summed both ways = (Δm)²/σ² / ... compute: ½(0.5+0.5)=0.5 for Δm=1,σ=1.
	if got := GaussianSymKL(0, 1, 1, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("GaussianSymKL = %v, want 0.5", got)
	}
}

func TestGridKLMatchesGaussianOracle(t *testing.T) {
	// KDE-on-grid estimator should approach the closed-form KL for large,
	// well-separated-but-overlapping Gaussian samples.
	r := rng.New(9)
	n := 20000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(0, 1)
		ys[i] = r.Normal(0.5, 1)
	}
	ex := kde.MustNew(xs, kde.Gaussian, kde.Silverman)
	ey := kde.MustNew(ys, kde.Gaussian, kde.Silverman)
	grid := stat.Linspace(-5, 5.5, 1024)
	px, err := ex.GridPMF(grid)
	if err != nil {
		t.Fatal(err)
	}
	py, err := ey.GridPMF(grid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SymKL(px, py)
	if err != nil {
		t.Fatal(err)
	}
	want := GaussianSymKL(0, 1, 0.5, 1)
	// KDE smoothing biases KL downward slightly; accept 30% relative error.
	if math.Abs(got-want)/want > 0.3 {
		t.Errorf("grid SymKL = %v, oracle %v", got, want)
	}
}

func TestKNNKLMatchesGaussianOracle(t *testing.T) {
	r := rng.New(10)
	n := 8000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(0, 1)
		ys[i] = r.Normal(1, 1)
	}
	got, err := KNNSymKL(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := GaussianSymKL(0, 1, 1, 1) // = 1.0
	if math.Abs(got-want) > 0.25 {
		t.Errorf("kNN SymKL = %v, oracle %v", got, want)
	}
}

func TestKNNKLErrors(t *testing.T) {
	if _, err := KNNKL([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("too-small P sample accepted")
	}
	if _, err := KNNKL([]float64{1, 2}, nil); err == nil {
		t.Error("empty Q sample accepted")
	}
}

func TestKNNKLDuplicatePointsFinite(t *testing.T) {
	// Failure injection: duplicate points give zero NN distances; the
	// estimator must stay finite via its internal tiny-distance clamp.
	p := []float64{1, 1, 1, 2, 2}
	q := []float64{1, 1, 3}
	d, err := KNNKL(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(d, 0) || math.IsNaN(d) {
		t.Errorf("duplicate-point kNN KL = %v", d)
	}
}
