package divergence

import (
	"math"
	"testing"

	"otfair/internal/rng"
)

func TestMMDIdenticalDistributions(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 800)
	ys := make([]float64, 800)
	for i := range xs {
		xs[i] = r.Norm()
		ys[i] = r.Norm()
	}
	res, err := MMD(xs, ys, MMDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Squared) > 0.01 {
		t.Errorf("MMD² of identical normals = %v", res.Squared)
	}
	if res.Bandwidth <= 0 {
		t.Errorf("median-heuristic bandwidth = %v", res.Bandwidth)
	}
}

func TestMMDSeparatedDistributions(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Normal(0, 1)
		ys[i] = r.Normal(3, 1)
	}
	res, err := MMD(xs, ys, MMDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Squared < 0.2 {
		t.Errorf("MMD² of well-separated normals = %v", res.Squared)
	}
}

func TestMMDOrdering(t *testing.T) {
	// Larger mean shift -> larger MMD under a fixed bandwidth.
	r := rng.New(3)
	base := make([]float64, 400)
	for i := range base {
		base[i] = r.Norm()
	}
	prev := -math.MaxFloat64
	for _, shift := range []float64{0.5, 1, 2} {
		ys := make([]float64, 400)
		for i := range ys {
			ys[i] = r.Normal(shift, 1)
		}
		res, err := MMD(base, ys, MMDOptions{Bandwidth: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Squared <= prev {
			t.Errorf("MMD² not increasing at shift %v: %v <= %v", shift, res.Squared, prev)
		}
		prev = res.Squared
	}
}

func TestMMDValidation(t *testing.T) {
	if _, err := MMD([]float64{1}, []float64{1, 2}, MMDOptions{}); err == nil {
		t.Error("too-small sample accepted")
	}
}

func TestMMDDegenerateConstant(t *testing.T) {
	xs := []float64{5, 5, 5}
	ys := []float64{5, 5, 5, 5}
	res, err := MMD(xs, ys, MMDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Squared != 0 {
		t.Errorf("constant-sample MMD² = %v", res.Squared)
	}
}

func TestMMDSubsampledHeuristic(t *testing.T) {
	// Pool larger than the heuristic cap must still produce a sane width.
	r := rng.New(4)
	xs := make([]float64, 3000)
	ys := make([]float64, 3000)
	for i := range xs {
		xs[i] = r.Norm()
		ys[i] = r.Norm()
	}
	res, err := MMD(xs, ys, MMDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Median |X−X'| for standard normals is ≈ 1.349·0.6745 ≈ 0.95.
	if res.Bandwidth < 0.5 || res.Bandwidth > 2 {
		t.Errorf("heuristic bandwidth = %v", res.Bandwidth)
	}
}

func TestMMDPermutationTest(t *testing.T) {
	r := rng.New(5)
	same1 := make([]float64, 150)
	same2 := make([]float64, 150)
	diff := make([]float64, 150)
	for i := range same1 {
		same1[i] = r.Norm()
		same2[i] = r.Norm()
		diff[i] = r.Normal(2, 1)
	}
	_, pSame, err := MMDTest(same1, same2, MMDOptions{}, 100, r.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if pSame < 0.05 {
		t.Errorf("null p-value = %v, expected non-significant", pSame)
	}
	stat, pDiff, err := MMDTest(same1, diff, MMDOptions{}, 100, r.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if pDiff > 0.05 {
		t.Errorf("alternative p-value = %v (stat %v), expected significant", pDiff, stat)
	}
	if _, _, err := MMDTest(same1, same2, MMDOptions{}, 0, r.Float64); err == nil {
		t.Error("zero permutations accepted")
	}
}
