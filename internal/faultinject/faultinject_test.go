package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Err(StoreRead); err != nil {
		t.Fatalf("nil injector returned error: %v", err)
	}
	in.Delay(ShardSlow)
	in.Panic(ShardPanic)
	b := []byte("payload")
	if got := in.Corrupt(StoreTornWrite, b); string(got) != "payload" {
		t.Fatalf("nil injector corrupted bytes: %q", got)
	}
	if in.Hits(StoreRead) != 0 || in.Fired(StoreRead) != 0 {
		t.Fatal("nil injector counted hits")
	}
	if in.Snapshot() != nil {
		t.Fatal("nil injector returned a snapshot")
	}
}

func TestEveryNthSchedule(t *testing.T) {
	in := New(1).Set("p", Rule{Every: 3, Phase: 1})
	var fires []int
	for i := 0; i < 9; i++ {
		if err := in.Err("p"); err != nil {
			fires = append(fires, i)
			var ie *Error
			if !errors.As(err, &ie) || ie.Point != "p" {
				t.Fatalf("wrong error type/point: %v", err)
			}
		}
	}
	want := []int{1, 4, 7}
	if len(fires) != len(want) {
		t.Fatalf("fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fires, want)
		}
	}
	if in.Hits("p") != 9 || in.Fired("p") != 3 {
		t.Fatalf("hits=%d fired=%d, want 9/3", in.Hits("p"), in.Fired("p"))
	}
}

func TestSeededPhaseIsDeterministic(t *testing.T) {
	a := New(42).Set("p", Rule{Every: 7})
	b := New(42).Set("p", Rule{Every: 7})
	c := New(43).Set("p", Rule{Every: 7})
	if a.points["p"].rule.Phase != b.points["p"].rule.Phase {
		t.Fatal("same seed derived different phases")
	}
	// Not guaranteed distinct for every seed pair, but these two are.
	if a.points["p"].rule.Phase == c.points["p"].rule.Phase {
		t.Fatalf("seeds 42 and 43 derived the same phase %d", a.points["p"].rule.Phase)
	}
	if p := a.points["p"].rule.Phase; p >= 7 {
		t.Fatalf("phase %d out of range", p)
	}
}

func TestLimitCapsFirings(t *testing.T) {
	in := New(1).Set("p", Rule{Every: 1, Limit: 2})
	n := 0
	for i := 0; i < 10; i++ {
		if in.Err("p") != nil {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("fired %d times, want 2 (limit)", n)
	}
	if in.Fired("p") != 2 {
		t.Fatalf("Fired = %d, want 2", in.Fired("p"))
	}
}

func TestCustomError(t *testing.T) {
	sentinel := errors.New("boom")
	in := New(1).Set("p", Rule{Every: 1, Err: sentinel})
	if err := in.Err("p"); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}

func TestPanicCarriesPoint(t *testing.T) {
	in := New(1).Set("p", Rule{Every: 1})
	defer func() {
		v := recover()
		pv, ok := v.(PanicValue)
		if !ok || pv.Point != "p" {
			t.Fatalf("recovered %v, want PanicValue for p", v)
		}
	}()
	in.Panic("p")
	t.Fatal("did not panic")
}

func TestCorruptTruncates(t *testing.T) {
	in := New(1).Set("p", Rule{Every: 2, Phase: 0})
	b := []byte("0123456789")
	torn := in.Corrupt("p", b)
	if len(torn) != 5 || string(torn) != "01234" {
		t.Fatalf("torn = %q, want first half", torn)
	}
	if string(b) != "0123456789" {
		t.Fatal("original bytes mutated")
	}
	if got := in.Corrupt("p", b); len(got) != len(b) {
		t.Fatal("off-schedule hit still corrupted")
	}
}

func TestDelaySleeps(t *testing.T) {
	in := New(1).Set("p", Rule{Every: 1, Delay: 10 * time.Millisecond})
	start := time.Now()
	in.Delay("p")
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("slept %v, want >= 10ms", d)
	}
}

// TestConcurrentFireCountDeterministic pins the property the soak relies
// on: under arbitrary interleaving, the total number of firings is a pure
// function of seed, rule and hit count.
func TestConcurrentFireCountDeterministic(t *testing.T) {
	const workers, perWorker = 8, 1000
	in := New(99).Set("p", Rule{Every: 10})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				in.Err("p")
			}
		}()
	}
	wg.Wait()
	if got, want := in.Fired("p"), uint64(workers*perWorker/10); got != want {
		t.Fatalf("fired %d, want %d", got, want)
	}
	if snap := in.Snapshot(); snap["p"] != in.Fired("p") {
		t.Fatalf("snapshot %v disagrees with Fired %d", snap, in.Fired("p"))
	}
}
