// Package faultinject is the deterministic fault-injection harness behind
// the serving stack's resilience tests. Production code holds a
// *Injector that is nil in real deployments — every hook method is
// nil-receiver safe and compiles to a single pointer check — and the soak
// harness (`make soak`) arms one with a seeded schedule to drive store
// corruption, slow shards, worker panics and poisoned records through a
// live server.
//
// Schedules are deterministic by construction: each failure point carries
// an every-Nth rule whose phase is derived from (seed, point name), and a
// per-point atomic hit counter decides firing. Under concurrency the
// *which goroutine* observes a given firing is scheduling-dependent, but
// the multiset of outcomes — how many hits fire, at which hit indices —
// is a pure function of the seed and the rules, which is what lets the
// soak assert exact failure counts while requests race.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"
)

// The failure points the serving stack exposes. A point name is just a
// string — packages may add their own — but the cross-package ones are
// declared here so the soak harness and the hooks cannot drift.
const (
	// StoreRead fails an artefact read with an injected error before the
	// file is opened (planstore).
	StoreRead = "store.read"
	// StoreWrite fails an artefact write before the temp file is created
	// (planstore).
	StoreWrite = "store.write"
	// StoreTornWrite truncates an artefact's bytes on their way to disk,
	// simulating a torn write that the content-addressed read path must
	// catch and quarantine (planstore).
	StoreTornWrite = "store.torn-write"
	// ShardSlow delays a shard worker before it starts repairing
	// (repairsvc/blindsvc engines).
	ShardSlow = "shard.slow"
	// ShardPanic panics a shard worker, exercising shardrun's panic
	// isolation (repairsvc/blindsvc engines).
	ShardPanic = "shard.panic"
	// RecordPoison fails record validation mid-stream, exercising the
	// serving layer's malformed-input path (repairsvc server).
	RecordPoison = "record.poison"
	// FeedFetch fails a research-feed fetch attempt before the source is
	// consulted (researchfeed).
	FeedFetch = "feed.fetch"
	// FeedTimeout times out a research-feed fetch attempt, exercising
	// the retry/backoff ladder (researchfeed).
	FeedTimeout = "feed.timeout"
	// FeedTornBody truncates fetched research-feed bytes, simulating a
	// torn transfer the CSV parse must catch (researchfeed).
	FeedTornBody = "feed.torn-body"
	// FeedStale forces a not-modified answer from the research feed,
	// exercising the fingerprint-staleness path (researchfeed).
	FeedStale = "feed.stale"
)

// Rule schedules one failure point. The zero value never fires.
type Rule struct {
	// Every fires the point on every Every-th hit (1 = every hit,
	// 0 = never).
	Every uint64
	// Phase shifts which hit in each window of Every fires. When left
	// zero with Every > 1, Set derives it from the injector seed and the
	// point name, so different seeds stress different hit indices.
	Phase uint64
	// Limit caps the total number of firings (0 = unlimited).
	Limit uint64
	// Delay is how long ShardSlow-style points sleep when they fire.
	Delay time.Duration
	// Err overrides the injected error (default: a *Error).
	Err error
}

// Error is the default injected failure, typed so tests and status
// mapping can recognize synthetic faults.
type Error struct {
	Point string
	Fire  uint64 // 1-based firing index at this point
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected failure at %s (firing %d)", e.Point, e.Fire)
}

// PanicValue is what Panic points panic with, so recover sites can tell a
// synthetic panic from a real one in test assertions.
type PanicValue struct {
	Point string
	Fire  uint64
}

func (p PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (firing %d)", p.Point, p.Fire)
}

type point struct {
	rule  Rule
	hits  atomic.Uint64
	fired atomic.Uint64
}

// fire registers one hit and reports whether it fires, with the 1-based
// firing index.
func (p *point) fire() (uint64, bool) {
	if p.rule.Every == 0 {
		p.hits.Add(1)
		return 0, false
	}
	n := p.hits.Add(1) - 1 // 0-based hit index
	if n%p.rule.Every != p.rule.Phase {
		return 0, false
	}
	f := p.fired.Add(1)
	if p.rule.Limit > 0 && f > p.rule.Limit {
		return 0, false
	}
	return f, true
}

// Injector schedules failures for a set of named points. Configure every
// rule with Set before sharing the injector across goroutines; after that
// all hook methods are safe for concurrent use. A nil *Injector is the
// production no-op: every hook returns immediately.
//otfair:nilsafe nil injector is the production no-fault configuration
type Injector struct {
	seed   uint64
	points map[string]*point
}

// New returns an injector whose derived phases are a function of seed.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, points: make(map[string]*point)}
}

// Set installs (or replaces) the rule for a point. With Every > 1 and
// Phase zero, the phase is derived from (seed, name) so the same seed
// always stresses the same hit indices.
func (in *Injector) Set(name string, r Rule) *Injector {
	if r.Every > 1 && r.Phase == 0 {
		//otfair:nilrecv-ok setup-time builder reached via New; a nil here is a programming error worth the panic
		r.Phase = phase(in.seed, name) % r.Every
	}
	if r.Every > 0 {
		r.Phase %= r.Every
	}
	in.points[name] = &point{rule: r}
	return in
}

// phase mixes the seed with the point name (splitmix64 over an FNV of the
// name) to pick a deterministic schedule phase.
func phase(seed uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	z := seed ^ h.Sum64()
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (in *Injector) point(name string) *point {
	if in == nil {
		return nil
	}
	return in.points[name]
}

// Err registers a hit at the point and returns the injected error when
// the schedule fires, nil otherwise (and always nil on a nil injector).
func (in *Injector) Err(name string) error {
	p := in.point(name)
	if p == nil {
		return nil
	}
	f, ok := p.fire()
	if !ok {
		return nil
	}
	if p.rule.Err != nil {
		return p.rule.Err
	}
	return &Error{Point: name, Fire: f}
}

// Delay registers a hit and sleeps the rule's Delay when the schedule
// fires.
func (in *Injector) Delay(name string) {
	p := in.point(name)
	if p == nil {
		return
	}
	if _, ok := p.fire(); ok && p.rule.Delay > 0 {
		time.Sleep(p.rule.Delay)
	}
}

// Panic registers a hit and panics with a PanicValue when the schedule
// fires.
func (in *Injector) Panic(name string) {
	p := in.point(name)
	if p == nil {
		return
	}
	if f, ok := p.fire(); ok {
		panic(PanicValue{Point: name, Fire: f})
	}
}

// Corrupt registers a hit and, when the schedule fires, returns a torn
// copy of b — truncated to half its length — simulating a partial write.
// Otherwise (and always on a nil injector) it returns b unchanged.
func (in *Injector) Corrupt(name string, b []byte) []byte {
	p := in.point(name)
	if p == nil {
		return b
	}
	if _, ok := p.fire(); !ok {
		return b
	}
	torn := make([]byte, len(b)/2)
	copy(torn, b)
	return torn
}

// Hits reports how many times the point was reached (0 for unknown points
// and nil injectors).
func (in *Injector) Hits(name string) uint64 {
	p := in.point(name)
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// Fired reports how many times the point actually injected its failure.
func (in *Injector) Fired(name string) uint64 {
	p := in.point(name)
	if p == nil {
		return 0
	}
	f := p.fired.Load()
	if p.rule.Limit > 0 && f > p.rule.Limit {
		f = p.rule.Limit
	}
	return f
}

// Snapshot returns the fired count per configured point, for soak
// assertions and logs.
func (in *Injector) Snapshot() map[string]uint64 {
	if in == nil {
		return nil
	}
	out := make(map[string]uint64, len(in.points))
	for name := range in.points {
		out[name] = in.Fired(name)
	}
	return out
}
