// Package checktest is the fixture harness for the otfairlint analyzers —
// the offline stand-in for golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory of .go files forming one package. Expected
// findings are declared inline with trailing comments:
//
//	for k := range m { // want "range over map"
//
// Each quoted string is a regexp that must match exactly one diagnostic
// reported on that line; diagnostics without a matching want, and wants
// without a matching diagnostic, fail the test. The harness applies the
// same //otfair:* directive suppression as the cmd/otfairlint driver, so
// fixtures can assert both that a violation fires and that a reasoned
// directive silences it.
//
// Because several analyzers gate on the package import path (the
// determinism-critical set, the hook packages), Run takes the path to
// type-check the fixture under — a fixture checked as
// "otfair/internal/core" exercises the critical-path behavior, the same
// source under a neutral path asserts the analyzer stays quiet.
package checktest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"otfair/internal/analysis"
	"otfair/internal/analysis/load"
)

// Run type-checks the fixture directory under pkgPath and asserts the
// analyzer's diagnostics (after directive suppression) match the // want
// comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	pass, err := typeCheck(fset, files, pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	pass.Analyzer = a
	supp := analysis.NewSuppressor(fset, files)
	var got []analysis.Diagnostic
	pass.Report = func(d analysis.Diagnostic) {
		if a.Directive != "" && supp.Suppressed(a.Directive, d.Pos) {
			return
		}
		got = append(got, d)
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	compare(t, fset, files, got)
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("checktest: no .go files in %s", dir)
	}
	return files, nil
}

// moduleRoot is the repo root, used as the working directory for go list
// when resolving fixture imports.
func moduleRoot() string {
	_, file, _, _ := runtime.Caller(0)
	return filepath.Join(filepath.Dir(file), "..", "..", "..")
}

func typeCheck(fset *token.FileSet, files []*ast.File, pkgPath string) (*analysis.Pass, error) {
	var imports []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			if !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	sort.Strings(imports)
	imp, err := load.Importer(fset, moduleRoot(), imports...)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	info := load.NewInfo()
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("checktest: type-checking fixture as %s: %w", pkgPath, err)
	}
	return &analysis.Pass{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// want is one expected-diagnostic pattern at a file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants scans trailing `// want "re" ["re" ...]` comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func compare(t *testing.T, fset *token.FileSet, files []*ast.File, got []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
diags:
	for _, d := range got {
		pos := fset.Position(d.Pos)
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				continue diags
			}
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
