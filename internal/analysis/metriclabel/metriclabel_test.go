package metriclabel_test

import (
	"testing"

	"otfair/internal/analysis/checktest"
	"otfair/internal/analysis/metriclabel"
)

func TestLabels(t *testing.T) {
	checktest.Run(t, metriclabel.Analyzer, "testdata/labels", "example.com/fixture")
}
